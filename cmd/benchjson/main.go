// Command benchjson converts `go test -bench . -benchmem` output into the
// repo's BENCH_*.json format so benchmark baselines can be checked in and
// diffed. With -baseline it embeds a second (older) run and computes
// per-benchmark speedup and allocation-reduction summaries.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 | tee after.txt
//	benchjson -out BENCH_0003.json -commit $(git rev-parse --short HEAD) \
//	    -baseline before.txt -baseline-commit b64403c after.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// run is one `BenchmarkX  N  ns/op ...` line.
type run struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// block is one full `go test -bench` invocation.
type block struct {
	Commit string           `json:"commit,omitempty"`
	Goos   string           `json:"goos,omitempty"`
	Goarch string           `json:"goarch,omitempty"`
	Pkg    string           `json:"pkg,omitempty"`
	CPU    string           `json:"cpu,omitempty"`
	Runs   map[string][]run `json:"runs"`
}

// delta summarizes current vs baseline for one benchmark (means of the
// -count repetitions).
type delta struct {
	Benchmark      string  `json:"benchmark"`
	BaseNsPerOp    float64 `json:"baseline_ns_per_op"`
	CurNsPerOp     float64 `json:"current_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	BaseAllocs     float64 `json:"baseline_allocs_per_op"`
	CurAllocs      float64 `json:"current_allocs_per_op"`
	AllocReduction float64 `json:"alloc_reduction"`
}

type report struct {
	Note     string  `json:"note,omitempty"`
	Date     string  `json:"date,omitempty"`
	Count    string  `json:"count,omitempty"`
	Baseline *block  `json:"baseline,omitempty"`
	Current  block   `json:"current"`
	Summary  []delta `json:"summary,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "", "output file (default stdout)")
		note       = flag.String("note", "", "free-form note stored in the report")
		date       = flag.String("date", "", "run date stored in the report")
		count      = flag.String("count", "", "-count used for the runs")
		commit     = flag.String("commit", "", "commit of the current run")
		basePath   = flag.String("baseline", "", "older -bench output to embed for comparison")
		baseCommit = flag.String("baseline-commit", "", "commit of the baseline run")
	)
	flag.Parse()

	cur, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur.Commit = *commit
	rep := report{Note: *note, Date: *date, Count: *count, Current: *cur}

	if *basePath != "" {
		base, err := parseFile(*basePath)
		if err != nil {
			fatal(err)
		}
		base.Commit = *baseCommit
		rep.Baseline = base
		rep.Summary = summarize(base, cur)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// parseFile reads one `go test -bench` output (path "" or "-" = stdin).
func parseFile(path string) (*block, error) {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	b := &block{Runs: map[string][]run{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			b.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			b.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			b.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, rn, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			b.Runs[name] = append(b.Runs[name], rn)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Runs) == 0 {
		return nil, fmt.Errorf("%s: no Benchmark lines found", path)
	}
	return b, nil
}

// parseBenchLine splits "BenchmarkX-8  10  123 ns/op  4 MB/s  5 B/op  6 allocs/op".
func parseBenchLine(line string) (string, run, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", run{}, fmt.Errorf("too few fields")
	}
	name := strings.SplitN(f[0], "-", 2)[0] // strip GOMAXPROCS suffix
	var rn run
	var err error
	if rn.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return "", run{}, err
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			rn.NsPerOp, err = strconv.ParseFloat(v, 64)
		case "MB/s":
			rn.MBPerS, err = strconv.ParseFloat(v, 64)
		case "B/op":
			rn.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			rn.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
		}
		if err != nil {
			return "", run{}, err
		}
	}
	return name, rn, nil
}

func summarize(base, cur *block) []delta {
	var names []string
	for n := range cur.Runs {
		if _, ok := base.Runs[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	ds := make([]delta, 0, len(names))
	for _, n := range names {
		bNs, bAl := means(base.Runs[n])
		cNs, cAl := means(cur.Runs[n])
		d := delta{
			Benchmark:   n,
			BaseNsPerOp: round(bNs), CurNsPerOp: round(cNs),
			BaseAllocs: round(bAl), CurAllocs: round(cAl),
		}
		if cNs > 0 {
			d.Speedup = round(bNs / cNs)
		}
		if bAl > 0 {
			d.AllocReduction = round(1 - cAl/bAl)
		}
		ds = append(ds, d)
	}
	return ds
}

func means(rs []run) (ns, allocs float64) {
	for _, r := range rs {
		ns += r.NsPerOp
		allocs += float64(r.AllocsPerOp)
	}
	n := float64(len(rs))
	return ns / n, allocs / n
}

func round(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
