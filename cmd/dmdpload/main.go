// Command dmdpload is the load generator and correctness prober for the
// dmdpd daemon. It fires simulation jobs at a running daemon — zipf-
// skewed over a (benchmark x model) working set, from several tenants,
// optionally laced with chaos (worker panics, unmeetable deadlines,
// fault-injected runs) — and verifies the service invariants from the
// outside:
//
//   - exactly-once: every request terminates with exactly one classified
//     outcome; none hang, none vanish;
//   - no wrong bits: every 200 for the same (workload, config, budget)
//     carries the same stats_sha256, and with -verify each is checked
//     byte-for-byte against a direct in-process simulation;
//   - graceful degradation: sheds (429/503) and failures (500/504) are
//     counted, never fatal.
//
// Usage:
//
//	dmdpload -addr http://localhost:8080 -n 200 -c 16
//	dmdpload -n 500 -zipf 1.4 -tenants 4 -verify
//	dmdpload -n 300 -chaos          # needs a daemon started with -chaos
//
// Exit status: 0 when every invariant held, 1 otherwise.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dmdp/internal/cliutil"
	"dmdp/internal/config"
	"dmdp/internal/experiments"
	"dmdp/internal/sched"
)

type outcome struct {
	status  int
	kind    string
	key     string // workload/model/config digest on 200
	sha     string
	deduped bool
	latency time.Duration
	err     error // transport-level failure
}

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "daemon base URL")
		n       = flag.Int("n", 100, "total requests")
		c       = flag.Int("c", 8, "concurrent requesters")
		benchCS = flag.String("bench", "hmmer,bzip2,gcc,milc,mcf,lbm", "benchmark working set (comma-separated)")
		modelCS = flag.String("models", "baseline,nosq,dmdp,perfect", "model working set (comma-separated)")
		instr   = flag.String("instr", "50k", "instruction budget per job")
		zipfS   = flag.Float64("zipf", 1.2, "zipf skew over the working set (>1; larger = more head-heavy)")
		tenants = flag.Int("tenants", 3, "number of synthetic tenants")
		seed    = flag.Int64("seed", 1, "workload-mix seed (reproducible runs)")
		chaos   = flag.Bool("chaos", false, "mix in chaos jobs: worker panics, 1ms deadlines, fault injection")
		verify  = flag.Bool("verify", false, "after the run, re-simulate each observed result locally and compare bits")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
	)
	flag.Parse()

	budget, err := cliutil.ParseInstr(*instr)
	if err != nil {
		fatal(fmt.Errorf("-instr: %w", err))
	}
	benches := strings.Split(*benchCS, ",")
	models := strings.Split(*modelCS, ",")
	working := make([][2]string, 0, len(benches)*len(models))
	for _, b := range benches {
		for _, m := range models {
			working = append(working, [2]string{strings.TrimSpace(b), strings.TrimSpace(m)})
		}
	}
	if *zipfS <= 1 {
		fatal(fmt.Errorf("-zipf must be > 1"))
	}

	// Pre-plan every request so the mix is a pure function of -seed:
	// workers then just fire plan[i], and reruns are comparable.
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(working)-1))
	type plannedJob struct {
		body map[string]any
	}
	plan := make([]plannedJob, *n)
	for i := range plan {
		pick := working[zipf.Uint64()]
		body := map[string]any{
			"bench":  pick[0],
			"model":  pick[1],
			"budget": fmt.Sprint(budget),
			"tenant": fmt.Sprintf("tenant-%d", rng.Intn(*tenants)),
		}
		if *chaos {
			switch r := rng.Float64(); {
			case r < 0.15:
				body["chaos_panic"] = true
			case r < 0.25:
				body["deadline_ms"] = 1
				body["budget"] = fmt.Sprint(budget * 100)
			case r < 0.35:
				body["flip_rate"] = 0.01
				body["fault_seed"] = int64(i + 1)
			}
		}
		plan[i] = plannedJob{body: body}
	}

	client := &http.Client{Timeout: *timeout}
	outcomes := make([]outcome, *n)
	start := time.Now()
	// The daemon's own scheduling primitive drives the fan-out.
	sched.Pool(*c, *n, func(i int) {
		outcomes[i] = fire(client, *addr, plan[i].body)
	})
	elapsed := time.Since(start)

	// Classify and check invariants.
	var ok, dedup, shed429, shed503, panics, deadline504, failed500, transport, unclass int
	byKey := map[string]string{}
	var latencies []time.Duration
	bad := false
	for i, oc := range outcomes {
		if oc.err != nil {
			transport++
			fmt.Fprintf(os.Stderr, "dmdpload: request %d: %v\n", i, oc.err)
			continue
		}
		latencies = append(latencies, oc.latency)
		switch oc.status {
		case http.StatusOK:
			ok++
			if oc.deduped {
				dedup++
			}
			if prev, seen := byKey[oc.key]; seen && prev != oc.sha {
				bad = true
				fmt.Fprintf(os.Stderr, "dmdpload: WRONG BITS: key %s returned %s and %s\n", oc.key, prev, oc.sha)
			}
			byKey[oc.key] = oc.sha
		case http.StatusTooManyRequests:
			shed429++
		case http.StatusServiceUnavailable:
			shed503++
		case http.StatusGatewayTimeout:
			deadline504++
		case http.StatusInternalServerError:
			if oc.kind == "panic" {
				panics++
			} else {
				failed500++
			}
		default:
			unclass++
			bad = true
			fmt.Fprintf(os.Stderr, "dmdpload: request %d: unclassified status %d (%s)\n", i, oc.status, oc.kind)
		}
	}
	accounted := ok + shed429 + shed503 + deadline504 + panics + failed500 + transport + unclass
	if accounted != *n {
		bad = true
		fmt.Fprintf(os.Stderr, "dmdpload: LOST JOBS: %d fired, %d accounted\n", *n, accounted)
	}

	fmt.Printf("requests        %d in %.2fs (%.1f/s, concurrency %d)\n",
		*n, elapsed.Seconds(), float64(*n)/elapsed.Seconds(), *c)
	fmt.Printf("ok              %d (%d served deduped)\n", ok, dedup)
	fmt.Printf("shed            %d rate/queue (429), %d draining (503)\n", shed429, shed503)
	fmt.Printf("deadline        %d (504)\n", deadline504)
	fmt.Printf("panics isolated %d (500/panic)\n", panics)
	fmt.Printf("other failures  %d (500), %d transport, %d unclassified\n", failed500, transport, unclass)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(latencies)-1))
			return latencies[idx]
		}
		fmt.Printf("latency         p50 %s  p90 %s  p99 %s  max %s\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	}
	fmt.Printf("distinct runs   %d\n", len(byKey))

	if *verify {
		mismatches := verifyBits(byKey, budget)
		if mismatches > 0 {
			bad = true
		}
		fmt.Printf("verified        %d results against direct simulation, %d mismatches\n", len(byKey), mismatches)
	}
	if bad {
		fmt.Println("RESULT: FAIL (invariant violated; see stderr)")
		os.Exit(1)
	}
	fmt.Println("RESULT: OK (exactly-once, no wrong bits)")
}

// fire submits one job and classifies the response.
func fire(client *http.Client, addr string, body map[string]any) outcome {
	b, _ := json.Marshal(body)
	start := time.Now()
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		return outcome{err: err}
	}
	defer resp.Body.Close()
	oc := outcome{status: resp.StatusCode, latency: time.Since(start)}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		oc.err = fmt.Errorf("decode (%d): %w", resp.StatusCode, err)
		return oc
	}
	oc.kind, _ = out["kind"].(string)
	if resp.StatusCode == http.StatusOK {
		oc.sha, _ = out["stats_sha256"].(string)
		oc.deduped, _ = out["deduped"].(bool)
		w, _ := out["workload"].(string)
		m, _ := out["model"].(string)
		d, _ := out["config_digest"].(string)
		oc.key = w + "/" + m + "/" + d
	}
	return oc
}

// verifyBits re-simulates every observed clean result in-process and
// compares canonical encodings. Fault-injected runs have their own
// config digests; they were already cross-checked among themselves by
// the byKey consistency pass, and are skipped here (the local runner
// would reproduce them too, but the point of -verify is the clean path).
func verifyBits(byKey map[string]string, budget int64) int {
	r := experiments.NewRunner(experiments.Options{Budget: budget, Parallel: true})
	mismatches := 0
	for key, sha := range byKey {
		parts := strings.SplitN(key, "/", 3)
		if len(parts) != 3 || strings.HasPrefix(parts[0], "inline:") {
			continue
		}
		var model config.Model
		switch parts[1] {
		case "baseline":
			model = config.Baseline
		case "nosq":
			model = config.NoSQ
		case "dmdp":
			model = config.DMDP
		case "perfect":
			model = config.Perfect
		case "fnf":
			model = config.FnF
		default:
			continue
		}
		cfg := config.Default(model)
		if cfg.Digest().String() != parts[2] {
			continue // non-default config (chaos fault injection): skip
		}
		st, err := r.Run(parts[0], cfg, parts[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmdpload: verify %s: %v\n", key, err)
			mismatches++
			continue
		}
		enc := st.MarshalCanonical()
		if got := shaHex(enc); got != sha {
			fmt.Fprintf(os.Stderr, "dmdpload: verify %s: daemon %s, direct %s\n", key, sha, got)
			mismatches++
		}
	}
	return mismatches
}

func shaHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmdpload:", err)
	os.Exit(1)
}
