// Command dmdpd is the long-running simulation-as-a-service daemon:
// it accepts simulation jobs over HTTP (a named proxy benchmark or an
// inline assembly program, a machine model, an instruction budget),
// schedules them through a bounded priority queue with per-tenant rate
// limits, executes with per-job deadlines and panic isolation, dedups
// identical in-flight requests, and serves results from the shared
// artifact cache.
//
// Usage:
//
//	dmdpd -addr :8080 -j 8 -cache rw
//	dmdpd -rate 50 -burst 20 -maxactive 64 -timeout 30s
//	dmdpd -chaos                       # honor chaos_panic job requests
//
// Endpoints:
//
//	POST /v1/jobs   submit a job (see internal/dmdpserver for the body)
//	GET  /healthz   liveness (200 while the process runs)
//	GET  /readyz    readiness (503 once draining)
//	GET  /statz     scheduler + cache + simulation counters (JSON)
//
// On SIGTERM/SIGINT the daemon drains gracefully: /readyz flips to 503,
// new jobs shed with 503 + Retry-After, queued and running jobs finish
// (bounded by -draintimeout), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmdp/internal/cliutil"
	"dmdp/internal/dmdpserver"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		jobs         = flag.Int("j", 0, "concurrently executing simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "pending-job queue depth (0 = 256); overflow sheds with 429")
		rate         = flag.Float64("rate", 0, "per-tenant sustained admission rate, jobs/s (0 = unlimited)")
		burst        = flag.Int("burst", 0, "per-tenant admission burst (0 = 16 when -rate is set)")
		maxActive    = flag.Int("maxactive", 0, "per-tenant queued+running cap (0 = unlimited)")
		timeout      = flag.Duration("timeout", 0, "default per-job deadline for jobs without deadline_ms (0 = unbounded)")
		drainTimeout = flag.Duration("draintimeout", 60*time.Second, "graceful-drain bound on SIGTERM; in-flight jobs past it are cancelled")
		instr        = flag.String("instr", "300000", "default instruction budget for jobs that omit one")
		maxInstr     = flag.String("maxinstr", "100m", "largest budget a job may request")
		chaos        = flag.Bool("chaos", false, "honor chaos_panic job requests (fault-tolerance testing)")
		cache        = cliutil.RegisterCache(flag.CommandLine)
	)
	flag.Parse()

	budget, err := cliutil.ParseInstr(*instr)
	if err != nil {
		fatal(fmt.Errorf("-instr: %w", err))
	}
	maxBudget, err := cliutil.ParseInstr(*maxInstr)
	if err != nil {
		fatal(fmt.Errorf("-maxinstr: %w", err))
	}
	store, err := cache.Open()
	if err != nil {
		fatal(err)
	}

	srv := dmdpserver.New(dmdpserver.Config{
		Workers:         *jobs,
		QueueDepth:      *queue,
		TenantRate:      *rate,
		TenantBurst:     *burst,
		TenantMaxActive: *maxActive,
		DefaultTimeout:  *timeout,
		DefaultBudget:   budget,
		MaxBudget:       maxBudget,
		Cache:           store,
		Chaos:           *chaos,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dmdpd: listening on %s (chaos=%v, cache=%s)\n", *addr, *chaos, cache.Mode)

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "dmdpd: %v: draining (bound %s)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatal(err)
	}

	// Drain order: stop admitting (the scheduler sheds with 503 and
	// /readyz flips), let queued + running jobs finish, then close the
	// listener. Connections still streaming a result get a shutdown
	// grace period beyond the drain bound.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dmdpd: drain: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dmdpd: shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if line := store.Summary(); line != "" {
		fmt.Fprintln(os.Stderr, line)
	}
	fmt.Fprintln(os.Stderr, "dmdpd: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmdpd:", err)
	os.Exit(1)
}
