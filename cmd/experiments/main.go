// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments                     # everything, 300k instructions/proxy
//	experiments -only fig12,tab6    # a subset
//	experiments -instr 100000       # smaller budget
//	experiments -bench hmmer,bzip2  # benchmark subset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dmdp/internal/cliutil"
	"dmdp/internal/experiments"
	"dmdp/internal/profiling"
)

func main() {
	var (
		instr    = flag.String("instr", "300000", "instruction budget per proxy (accepts 300000, 300_000, 300k)")
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all 21)")
		listFlag = flag.Bool("list", false, "list experiment ids and exit")
		serial   = flag.Bool("serial", false, "disable parallel simulation")
		jobsFlag = flag.Int("j", 0, "worker-pool width for parallel simulation (0 = GOMAXPROCS)")
		outDir   = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file")
		timeout  = flag.Duration("timeout", 0, "wall-clock bound for the whole suite; on expiry in-flight runs cancel cleanly and partial results + the failure table still print (0 = none)")
		sample   = flag.String("sample", "", "samp-err sampling spec: auto | auto:K | COUNTxLEN, optionally +WARMUP (default: budget-derived)")
		ckpt     = flag.Bool("checkpoint", false, "persist/restore sampling checkpoints and plans in the artifact cache during samp-err")
		warmF    = flag.Bool("warm", false, "add functionally-warmed rows to samp-err (caches/TLB/predictors warmed from the profiling pass)")
		cache    = cliutil.RegisterCache(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	budget, err := cliutil.ParseInstr(*instr)
	if err != nil {
		fatal(fmt.Errorf("-instr: %w", err))
	}
	store, err := cache.Open()
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := experiments.Options{Budget: budget, Parallel: !*serial, Jobs: *jobsFlag, Cache: store, Context: ctx, SampleCheckpoint: *ckpt, SampleWarm: *warmF}
	if *sample != "" {
		opt.Sample, err = cliutil.ParseSampleSpec(*sample)
		if err != nil {
			fatal(fmt.Errorf("-sample: %w", err))
		}
	}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}
	r := experiments.NewRunner(opt)

	selected := experiments.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	// Warm-up executes the union of every selected experiment's declared
	// runs on the worker pool; rendering below then hits only warm cache.
	// Failed runs are negatively cached and surface in the failure table,
	// so a warm-up error is a warning, not a stop.
	if err := r.WarmUp(selected...); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: warm-up: %v (continuing)\n", err)
	}
	// One broken experiment (or benchmark) must not sink the rest of the
	// suite: failed experiments are counted, failed benchmark runs are
	// collected by the runner, and everything else still renders.
	brokenExperiments := 0
	for _, e := range selected {
		t0 := time.Now()
		out, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v (continuing)\n", e.ID, err)
			brokenExperiments++
			continue
		}
		fmt.Printf("==== %s — %s (%.1fs) ====\n", e.ID, e.Title, time.Since(t0).Seconds())
		fmt.Println(out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("total: %.1fs, budget %d instructions x %d benchmarks\n",
		time.Since(start).Seconds(), budget, len(r.Benchmarks()))
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "experiments: -timeout %s reached: in-flight runs were cancelled; results above and the failure table below are partial\n", *timeout)
	}
	if table := r.FailureTable(); table != "" {
		fmt.Println()
		fmt.Println("==== failed benchmark runs ====")
		fmt.Println(table)
	}
	// The cache summary goes to stderr: stdout must stay byte-identical
	// across cold, warm and disabled caches.
	if line := store.Summary(); line != "" {
		fmt.Fprintln(os.Stderr, line)
	}
	// Flush profiles before the explicit failure exit (os.Exit skips
	// deferred calls).
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	if brokenExperiments > 0 || len(r.Failures()) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
