// Command statsdigest prints a canonical per-(proxy, model) line of the
// architectural and microarchitectural counters of every simulation in
// the default suite. The output is a determinism oracle: two builds of
// the simulator are behaviorally identical iff their digests are
// byte-identical. Wall-clock observability counters (Stats.SimWallClock)
// are deliberately excluded — they are the only Stats fields allowed to
// differ between runs.
//
// Usage:
//
//	statsdigest                 # all 21 proxies x 5 models, 300k instructions
//	statsdigest -instr 50000    # smaller budget
//	statsdigest -bench hmmer    # one proxy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmdp"
)

func main() {
	var (
		instr = flag.Int64("instr", 300_000, "instruction budget per proxy")
		bench = flag.String("bench", "", "comma-separated proxy subset (default: all)")
	)
	flag.Parse()

	benches := dmdp.Workloads()
	if *bench != "" {
		benches = strings.Split(*bench, ",")
	}
	models := []dmdp.Model{dmdp.Baseline, dmdp.NoSQ, dmdp.DMDP, dmdp.Perfect, dmdp.FnF}

	bad := false
	for _, b := range benches {
		tr, err := dmdp.BuildWorkloadTrace(b, *instr)
		if err != nil {
			fmt.Printf("%-12s -        trace error: %v\n", b, err)
			bad = true
			continue
		}
		for _, m := range models {
			st, err := dmdp.Run(dmdp.DefaultConfig(m), tr)
			if err != nil {
				fmt.Printf("%-12s %-8s error: %v\n", b, m, err)
				bad = true
				continue
			}
			fmt.Printf("%-12s %-8s %s\n", b, m, digest(st))
		}
	}
	if bad {
		os.Exit(1)
	}
}

// digest renders every deterministic counter of one run. Field order is
// fixed; do not reorder (diffs against recorded digests would churn).
func digest(s *dmdp.Stats) string {
	return fmt.Sprintf("cyc=%d inst=%d uops=%d loads=%v loadt=%v lat=%v "+
		"lowconf=%d/%d/%v mpred=%d/%v reexec=%d stall=%d sbstall=%d "+
		"pred=%d cloak=%d delay=%d viol=%d inval=%d bmiss=%d fstall=%d "+
		"sc=%d/%d rr=%d rw=%d iqw=%d iqi=%d robw=%d sqs=%d tssbf=%d/%d "+
		"sdp=%d/%d ca=%d l2=%d dram=%d tlb=%d squash=%d miss=%.6f/%.6f oracle=%d",
		s.Cycles, s.Instructions, s.Uops, s.LoadCount, s.LoadExecTime, s.LoadLatency,
		s.LowConfCount, s.LowConfExecTime, s.LowConfOutcomes,
		s.DepMispredicts, s.DepMispredictsByCat, s.Reexecs, s.ReexecStallCycle, s.SBFullStall,
		s.Predications, s.Cloaks, s.DelayedLoads, s.Violations, s.Invalidations,
		s.BranchMispredicts, s.FetchStallCycles,
		s.StoresCommitted, s.StoresCoalesced, s.RegReads, s.RegWrites,
		s.IQWakeups, s.IQInserts, s.ROBWrites, s.SQSearches, s.TSSBFReads, s.TSSBFWrites,
		s.SDPReads, s.SDPWrites, s.CacheAccesses, s.L2Accesses, s.DRAMAccesses,
		s.TLBAccesses, s.SquashedUops, s.L1MissRate, s.L2MissRate, s.OracleChecks)
}
