// Command statsdigest prints a canonical per-(proxy, model) line of the
// architectural and microarchitectural counters of every simulation in
// the default suite. The output is a determinism oracle: two builds of
// the simulator are behaviorally identical iff their digests are
// byte-identical. Wall-clock observability counters (Stats.SimWallClock)
// are deliberately excluded — they are the only Stats fields allowed to
// differ between runs.
//
// Usage:
//
//	statsdigest                 # all 21 proxies x 5 models, 300k instructions
//	statsdigest -instr 50000    # smaller budget
//	statsdigest -bench hmmer    # one proxy
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"dmdp"
	"dmdp/internal/artifact"
	"dmdp/internal/cliutil"
)

func main() {
	var (
		instr = flag.String("instr", "300000", "instruction budget per proxy (accepts 300000, 300_000, 300k)")
		bench = flag.String("bench", "", "comma-separated proxy subset (default: all)")
		cache = cliutil.RegisterCache(flag.CommandLine)
	)
	flag.Parse()

	budget, err := cliutil.ParseInstr(*instr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsdigest: -instr:", err)
		os.Exit(1)
	}
	store, err := cache.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsdigest:", err)
		os.Exit(1)
	}

	benches := dmdp.Workloads()
	if *bench != "" {
		benches = strings.Split(*bench, ",")
	}
	models := []dmdp.Model{dmdp.Baseline, dmdp.NoSQ, dmdp.DMDP, dmdp.Perfect, dmdp.FnF}

	bad := false
	for _, b := range benches {
		tr, traceKey, err := buildTrace(store, b, budget)
		if err != nil {
			fmt.Printf("%-12s -        trace error: %v\n", b, err)
			bad = true
			continue
		}
		for _, m := range models {
			st, err := run(store, tr, traceKey, m, budget, b)
			if err != nil {
				fmt.Printf("%-12s %-8s error: %v\n", b, m, err)
				bad = true
				continue
			}
			fmt.Printf("%-12s %-8s %s\n", b, m, st.DigestLine())
		}
	}
	if line := store.Summary(); line != "" {
		fmt.Fprintln(os.Stderr, line)
	}
	if bad {
		os.Exit(1)
	}
}

// buildTrace fetches (or builds and persists) the proxy's trace through
// the artifact store. The trace is lazy for result-store hits only in
// the experiments runner; here the digest always needs the trace's
// benchmarks simulated, so the trace is resolved up front.
func buildTrace(store *artifact.Store, bench string, budget int64) (*dmdp.Trace, artifact.Key, error) {
	src, err := dmdp.WorkloadSource(bench)
	if err != nil {
		return nil, artifact.Key{}, err
	}
	key := artifact.TraceKey(sha256.Sum256([]byte(src)), budget)
	if tr, ok := store.LoadTrace(key); ok {
		return tr, key, nil
	}
	tr, err := dmdp.BuildWorkloadTrace(bench, budget)
	if err != nil {
		return nil, artifact.Key{}, err
	}
	store.StoreTrace(key, tr)
	return tr, key, nil
}

// run simulates one (proxy, model) pair through the result store. In
// verify mode a hit is re-simulated and compared; a mismatch is a hard
// error (and a non-zero exit).
func run(store *artifact.Store, tr *dmdp.Trace, traceKey artifact.Key, m dmdp.Model, budget int64, bench string) (*dmdp.Stats, error) {
	cfg := dmdp.DefaultConfig(m)
	key := artifact.ResultKey(traceKey, cfg.Digest(), budget)
	if st, path, ok := store.LoadStats(key); ok {
		if !store.VerifyEnabled() {
			return st, nil
		}
		fresh, err := dmdp.Run(cfg, tr)
		if err != nil {
			return nil, err
		}
		cb, fb := st.MarshalCanonical(), fresh.MarshalCanonical()
		if string(cb) != string(fb) {
			return nil, artifact.NewVerifyError(key, path, bench, m.String(), cb, fb)
		}
		return st, nil
	}
	st, err := dmdp.Run(cfg, tr)
	if err != nil {
		return nil, err
	}
	store.StoreStats(key, st)
	return st, nil
}
