// Command dmdpdbg is an interactive debugger for programs in the
// simulator's ISA: breakpoints, stepping, register/memory inspection and
// disassembly over the functional emulator.
//
// Usage:
//
//	dmdpdbg prog.s            # assembly source
//	dmdpdbg prog.dmo          # DMO1 binary object
//	dmdpdbg -bench hmmer      # debug a proxy benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"dmdp/internal/asm"
	"dmdp/internal/debug"
	"dmdp/internal/isa"
	"dmdp/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "debug a proxy benchmark instead of a file")
	flag.Parse()

	var p *isa.Program
	var err error
	switch {
	case *bench != "":
		s, ok := workload.Get(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err = s.Program()
	case flag.NArg() == 1:
		var data []byte
		data, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			if isa.IsObjectFile(data) {
				p, err = isa.UnmarshalProgram(data)
			} else {
				p, err = asm.Assemble(string(data))
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dmdpdbg [-bench name] [file.s|file.dmo]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	debug.New(p).Run(os.Stdin, os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmdpdbg:", err)
	os.Exit(1)
}
