// Command litmus verifies the multicore machine against the I2E
// reference executor: every named shape and any number of seeded random
// litmus tests run across interleaving seeds, and any final state
// outside the reference-allowed set is a consistency violation (exit 1),
// optionally delta-minimized to a small runnable repro.
//
// Usage:
//
//	litmus -model sc -seeds 100 -j 8
//	litmus -model tso -shapes SB,MP -random 50 -minimize
//	litmus -model sc -weaken -minimize     # the seeded bug must be caught
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/litmus"
	"dmdp/internal/progen"
)

func main() {
	var (
		modelName = flag.String("model", "sc", "memory model to enforce and verify: sc | tso")
		coreName  = flag.String("core", "dmdp", "per-core timing model: baseline | dmdp")
		shapes    = flag.String("shapes", "all", "comma-separated named shapes (SB,MP,LB,IRIW,CoRR), all, or none")
		random    = flag.Int("random", 0, "number of seeded random litmus tests to add")
		firstSeed = flag.Uint64("firstseed", 0, "first random-test generator seed")
		seeds     = flag.Int("seeds", 50, "interleaving seeds per test")
		jobs      = flag.Int("j", 1, "worker-pool width (the digest is identical at any width)")
		weaken    = flag.Bool("weaken", false, "run the deliberately weakened machine (enforcement off)")
		minimize  = flag.Bool("minimize", false, "ddmin the first violation to a small repro")
		verbose   = flag.Bool("v", false, "print per-test digest lines")
	)
	flag.Parse()

	model, err := core.ParseMemModel(*modelName)
	if err != nil {
		fatal(err)
	}
	var coreModel config.Model
	switch strings.ToLower(*coreName) {
	case "baseline":
		coreModel = config.Baseline
	case "dmdp":
		coreModel = config.DMDP
	default:
		fatal(fmt.Errorf("unknown core model %q (baseline|dmdp)", *coreName))
	}

	var names []string
	switch *shapes {
	case "all":
		names = progen.LitmusShapeNames()
	case "none", "":
	default:
		names = strings.Split(*shapes, ",")
	}
	tests, err := litmus.Suite(names, *random, *firstSeed)
	if err != nil {
		fatal(err)
	}
	if len(tests) == 0 {
		fatal(fmt.Errorf("no tests selected (-shapes none and -random 0)"))
	}

	opt := litmus.Options{
		Model: model, CoreModel: coreModel,
		Seeds: *seeds, Jobs: *jobs,
		Weaken: *weaken, Minimize: *minimize,
	}
	results, violations, err := litmus.CheckAll(tests, opt)
	if err != nil {
		fatal(err)
	}

	for _, r := range results {
		status := "ok"
		if len(r.Violations) > 0 {
			status = fmt.Sprintf("VIOLATED x%d", len(r.Violations))
		}
		fmt.Printf("%-12s %-3s allowed=%d covered=%d seeds=%d %s\n",
			r.Test, model, len(r.Allowed), r.Covered(), *seeds, status)
		if *verbose {
			for _, l := range r.DigestLines() {
				fmt.Println("  " + l)
			}
		}
	}
	fmt.Printf("digest %s\n", litmus.Digest(results))

	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "litmus: %d consistency violation(s) under %s\n", len(violations), model)
		for i := range violations {
			v := &violations[i]
			fmt.Fprintln(os.Stderr, "  "+v.Error())
			if v.Repro != nil {
				fmt.Fprintf(os.Stderr, "minimized repro (%d static instructions, %d trials):\n%s",
					v.Repro.Static, v.Repro.Trials, v.Repro.Source)
			}
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(1)
}
