// Command difftest sweeps seeded random programs (internal/progen)
// through the lockstep differential harness (internal/difftest): every
// program runs on all five timing models with the architectural emulator
// retiring in lockstep, and any divergence is minimized to a small
// runnable .s repro carrying its (seed, knobs) coordinates.
//
// The sweep is deterministic: per-seed stats digest lines are collected
// in seed order regardless of worker count, so the aggregate digest
// printed at the end is byte-identical across -j1/-j8 and across hosts.
// The artifact cache is deliberately not wired in (-cache accepts only
// "off"): a cached result could mask a divergence, and the whole point
// of the sweep is to re-execute.
//
// Usage:
//
//	difftest -seeds 10000 -j 4                # CI sweep
//	difftest -seed 123 -seeds 1 -preset stack # reproduce one program
//	difftest -seeds 25 -corrupt 1             # fault demo: must diverge
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"dmdp/internal/cliutil"
	"dmdp/internal/config"
	"dmdp/internal/difftest"
	"dmdp/internal/faults"
	"dmdp/internal/progen"
	"dmdp/internal/sched"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "first seed of the sweep")
		seeds     = flag.Int("seeds", 100, "number of seeds to sweep")
		preset    = flag.String("preset", "all", "knob preset name, or \"all\" to cycle presets per seed ("+strings.Join(progen.PresetNames(), ", ")+")")
		instr     = flag.String("instr", "3000", "dynamic instruction budget per program (accepts 3000, 3_000, 3k)")
		models    = flag.String("models", "", "comma-separated model subset (default: all five)")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "worker pool width")
		cache     = flag.String("cache", "off", "artifact cache mode; only \"off\" is accepted (cached results could mask divergence)")
		corrupt   = flag.Float64("corrupt", 0, "injected value-corruption rate per retiring load (fault demo)")
		faultseed = flag.Int64("faultseed", 1, "fault injector PRNG seed")
		prf       = flag.Int("prf", 0, "physical register file size override (0 = model default)")
		minimize  = flag.Bool("minimize", true, "delta-debug divergences to a small repro")
		outDir    = flag.String("out", "difftest-failures", "directory for divergence repro bundles")
		verbose   = flag.Bool("v", false, "print every per-seed digest line")
		timeout   = flag.Duration("timeout", 0, "wall-clock bound for the sweep; on expiry no new seeds start, in-flight seeds finish, and the partial summary prints (0 = none)")
	)
	flag.Parse()

	if *cache != "off" {
		fatal(fmt.Errorf("-cache %s: the differential sweep always re-executes; only -cache off is supported", *cache))
	}
	budget, err := cliutil.ParseInstr(*instr)
	if err != nil {
		fatal(fmt.Errorf("-instr: %w", err))
	}
	modelList, err := parseModels(*models)
	if err != nil {
		fatal(err)
	}
	opt := difftest.Options{Budget: budget, Models: modelList, PhysRegs: *prf}
	if *corrupt > 0 {
		opt.Faults = faults.Config{Seed: *faultseed, ValueCorruptRate: *corrupt}
	}
	presets := progen.Presets()
	if *preset != "all" {
		k, ok := progen.PresetByName(*preset)
		if !ok {
			fatal(fmt.Errorf("-preset %s: unknown (have %s, all)", *preset, strings.Join(progen.PresetNames(), ", ")))
		}
		presets = []progen.Preset{{Name: *preset, Knobs: k}}
	}

	// The sweep: one slot per seed, filled by the shared worker pool.
	// Writers only touch their own slot, so output is independent of
	// scheduling; divergences and infrastructure errors are collected
	// under a lock (order does not matter — any one fails the sweep).
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	lines := make([][]string, *seeds)
	var mu sync.Mutex
	var divs []*difftest.Divergence
	var infra []error
	started := sched.PoolCtx(ctx, *jobs, *seeds, func(i int) {
		s := *seed + uint64(i)
		p := presets[int(s)%len(presets)]
		ls, div, err := difftest.RunSeed(s, p.Name, p.Knobs, opt)
		switch {
		case err != nil:
			mu.Lock()
			infra = append(infra, err)
			mu.Unlock()
		case div != nil:
			mu.Lock()
			divs = append(divs, div)
			mu.Unlock()
		default:
			lines[i] = ls
		}
	})

	for _, err := range infra {
		fmt.Fprintln(os.Stderr, "difftest: generator/trace failure:", err)
	}

	if len(divs) > 0 {
		fmt.Fprintf(os.Stderr, "difftest: %d divergence(s) in %d seeds\n", len(divs), *seeds)
		d := divs[0]
		fmt.Fprint(os.Stderr, d.Bundle())
		if *minimize {
			r := d.Minimize(opt)
			path, err := writeRepro(*outDir, d, r)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "difftest: minimized to %d static instructions (%d trials), repro written to %s\n",
				r.Static, r.Trials, path)
			fmt.Fprintf(os.Stderr, "difftest: rerun with: difftest -seed %d -seeds 1 -preset %s -instr %d\n",
				d.Seed, d.Preset, budget)
		}
		os.Exit(1)
	}
	if len(infra) > 0 {
		os.Exit(1)
	}

	// A timed-out sweep still summarizes what ran, but claims no
	// aggregate digest: the digest is only meaningful (and comparable
	// across hosts and -j widths) over the full seed range.
	if started < *seeds {
		completed := 0
		for _, ls := range lines {
			if ls != nil {
				completed++
			}
		}
		fmt.Printf("difftest: PARTIAL sweep (-timeout %s): %d of %d seeds completed clean, %d never started; no aggregate digest for a partial range\n",
			*timeout, completed, *seeds, *seeds-started)
		os.Exit(1)
	}

	h := sha256.New()
	runs := 0
	for _, ls := range lines {
		for _, l := range ls {
			if *verbose {
				fmt.Println(l)
			}
			fmt.Fprintln(h, l)
			runs++
		}
	}
	nModels := len(opt.Models)
	if nModels == 0 {
		nModels = len(difftest.AllModels)
	}
	fmt.Printf("difftest: %d seeds x %d models clean, %d lockstep runs, digest %x\n",
		*seeds, nModels, runs, h.Sum(nil)[:8])
}

func parseModels(s string) ([]config.Model, error) {
	if s == "" {
		return nil, nil
	}
	byName := map[string]config.Model{}
	for _, m := range difftest.AllModels {
		byName[m.String()] = m
	}
	var out []config.Model
	for _, name := range strings.Split(s, ",") {
		m, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("-models: unknown model %q", name)
		}
		out = append(out, m)
	}
	return out, nil
}

func writeRepro(dir string, d *difftest.Divergence, r *difftest.Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("seed%d-%s-%s.s", d.Seed, d.Preset, d.Model))
	return path, os.WriteFile(path, []byte(d.ReproFile(r)), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "difftest:", err)
	os.Exit(1)
}
