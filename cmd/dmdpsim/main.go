// Command dmdpsim runs one proxy benchmark (or an assembly file) under
// one store-load communication model and prints the run's statistics.
//
// Usage:
//
//	dmdpsim -bench hmmer -model dmdp -instr 300000
//	dmdpsim -file prog.s -model nosq
//	dmdpsim -bench gcc -sample 10x1000+200
//	dmdpsim -bench gcc -instr 100M -sample auto -checkpoint -cache rw -j 8
//	dmdpsim -bench gcc -cache rw
//	dmdpsim -list
package main

import (
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmdp"
	"dmdp/internal/artifact"
	"dmdp/internal/asm"
	"dmdp/internal/cliutil"
	"dmdp/internal/core"
	"dmdp/internal/isa"
	"dmdp/internal/profiling"
	"dmdp/internal/sampling"
	"dmdp/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "hmmer", "proxy benchmark name (see -list)")
		file      = flag.String("file", "", "assembly file to run instead of a proxy benchmark")
		modelName = flag.String("model", "dmdp", "model: baseline | nosq | dmdp | perfect | fnf")
		instr     = flag.String("instr", "300000", "instruction budget (accepts 300000, 300_000, 300k)")
		sbSize    = flag.Int("sb", 0, "store buffer entries (0 = default 32)")
		width     = flag.Int("width", 0, "issue width (0 = default 8)")
		rob       = flag.Int("rob", 0, "ROB entries (0 = default 256)")
		physRegs  = flag.Int("physregs", 0, "physical registers (0 = default 320)")
		rmo       = flag.Bool("rmo", false, "use RMO consistency instead of TSO")
		cores     = flag.Int("cores", 1, "run N copies of the workload on an N-core machine over a shared L2 (timing-only)")
		mcSeed    = flag.Uint64("mcseed", 0, "multicore interleaving seed (with -cores > 1)")
		list      = flag.Bool("list", false, "list proxy benchmarks and exit")
		pipeview  = flag.Int("pipeview", 0, "render a pipeline view of the first N retired instructions")
		src       = flag.Bool("source", false, "print the benchmark's generated assembly and exit")
		sample    = flag.String("sample", "", "interval sampling: auto | auto:K | COUNTxLEN, optionally +WARMUP (e.g. auto:8+2k, 10x1000+200)")
		ckpt      = flag.Bool("checkpoint", false, "persist/restore sampling checkpoints and plans in the artifact cache (needs -cache rw or ro)")
		warmF     = flag.Bool("warm", false, "functionally warm caches/TLB/predictors from the profiling pass before each sampled interval (needs -sample; forced off with -flip)")
		jobs      = flag.Int("j", 1, "sampled-interval worker-pool width (results are byte-identical at any width)")
		sampFull  = flag.String("samplefull", "auto", "also simulate the full trace and report sampled-vs-full IPC error: auto (only for budgets <= 5M) | on | off")
		maxCycles = flag.Int64("maxcycles", 0, "abort with a diagnostic after N simulated cycles (0 = unlimited)")
		flipRate  = flag.Float64("flip", 0, "inject dependence-prediction flips at this rate (hardening demo)")
		faultSeed = flag.Int64("faultseed", 1, "fault injector seed (with -flip)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file")
		cache     = cliutil.RegisterCache(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dmdpsim:", err)
		}
	}()

	if *list {
		fmt.Println("Integer:", strings.Join(dmdp.IntWorkloads(), " "))
		fmt.Println("Float:  ", strings.Join(dmdp.FloatWorkloads(), " "))
		return
	}

	budget, err := cliutil.ParseInstr(*instr)
	if err != nil {
		fatal(fmt.Errorf("-instr: %w", err))
	}
	store, err := cache.Open()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if line := store.Summary(); line != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}()

	model, err := parseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	cfg := dmdp.DefaultConfig(model)
	if *sbSize > 0 {
		cfg = cfg.WithStoreBuffer(*sbSize)
	}
	if *width > 0 {
		cfg = cfg.WithIssueWidth(*width)
	}
	if *rob > 0 {
		cfg = cfg.WithROB(*rob)
	}
	if *physRegs > 0 {
		cfg = cfg.WithPhysRegs(*physRegs)
	}
	if *rmo {
		cfg = cfg.WithConsistency(dmdp.RMO)
	}
	if *maxCycles != 0 { // negative values reach Validate and are rejected there
		cfg = cfg.WithWatchdog(*maxCycles, 0)
	}
	if *flipRate != 0 {
		cfg = cfg.WithFaults(dmdp.FaultConfig{Seed: *faultSeed, PredictionFlipRate: *flipRate})
	}

	if *src {
		s, err := dmdp.WorkloadSource(*benchName)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
		return
	}

	// The workload's identity for the artifact cache is the SHA-256 of
	// the bytes it is built from: the generated proxy source, or the raw
	// -file contents (source or object alike).
	var sourceHash [sha256.Size]byte
	var fileData []byte
	if *file != "" {
		fileData, err = os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		sourceHash = sha256.Sum256(fileData)
	} else {
		s, err := dmdp.WorkloadSource(*benchName)
		if err != nil {
			fatal(err)
		}
		sourceHash = sha256.Sum256([]byte(s))
	}
	traceKey := artifact.TraceKey(sourceHash, budget)

	// loadTrace builds the trace through the trace store: decode on hit,
	// build + persist on miss.
	loadTrace := func() *dmdp.Trace {
		if tr, ok := store.LoadTrace(traceKey); ok {
			return tr
		}
		var tr *dmdp.Trace
		var err error
		switch {
		case *file != "" && len(fileData) >= 4 && string(fileData[:4]) == "DMO1":
			tr, err = dmdp.LoadObject(fileData, budget)
		case *file != "":
			tr, err = dmdp.BuildTrace(string(fileData), budget)
		default:
			tr, err = dmdp.BuildWorkloadTrace(*benchName, budget)
		}
		if err != nil {
			fatal(err)
		}
		store.StoreTrace(traceKey, tr)
		return tr
	}

	// loadProg assembles the workload without emulating it — the
	// streaming sampled path re-materializes only the planned intervals,
	// so 100M+ budgets never hold a full trace in memory.
	loadProg := func() (*isa.Program, error) {
		switch {
		case *file != "" && len(fileData) >= 4 && string(fileData[:4]) == "DMO1":
			return isa.UnmarshalProgram(fileData)
		case *file != "":
			return asm.Assemble(string(fileData))
		default:
			s, ok := workload.Get(*benchName)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", *benchName)
			}
			return s.Program()
		}
	}

	if *cores > 1 {
		if *rmo {
			fatal(fmt.Errorf("-cores requires TSO per-core consistency (drop -rmo)"))
		}
		if *sample != "" || *pipeview > 0 || *flipRate != 0 {
			fatal(fmt.Errorf("-cores is incompatible with -sample, -pipeview and -flip"))
		}
		runMulticore(cfg, model, *cores, *mcSeed, loadTrace())
		return
	}
	if *sample != "" {
		runSampled(sampleRun{
			cfg: cfg, model: model, budget: budget,
			spec: *sample, full: *sampFull, jobs: *jobs, checkpoint: *ckpt, warm: *warmF,
			store: store, traceKey: traceKey,
			loadTrace: loadTrace, loadProg: loadProg,
		})
		return
	}
	if *pipeview > 0 {
		st, pt, err := dmdp.RunTraced(cfg, loadTrace(), *pipeview)
		if err != nil {
			fatal(err)
		}
		pt.Render(os.Stdout)
		fmt.Println()
		printStats(model, st)
		return
	}

	// Plain runs go through the result store. Fault-injected runs are
	// deliberately never persisted: hardening demos should always
	// exercise the real simulator.
	useResults := store != nil && *flipRate == 0
	var resultKey artifact.Key
	if useResults {
		resultKey = artifact.ResultKey(traceKey, cfg.Digest(), budget)
		if st, path, ok := store.LoadStats(resultKey); ok {
			if store.VerifyEnabled() {
				fresh, err := dmdp.Run(cfg, loadTrace())
				if err != nil {
					fatal(err)
				}
				cb, fb := st.MarshalCanonical(), fresh.MarshalCanonical()
				if string(cb) != string(fb) {
					fatal(artifact.NewVerifyError(resultKey, path, workloadName(*benchName, *file), model.String(), cb, fb))
				}
			}
			printStats(model, st)
			return
		}
	}
	st, err := dmdp.Run(cfg, loadTrace())
	if err != nil {
		fatal(err)
	}
	if useResults {
		store.StoreStats(resultKey, st)
	}
	printStats(model, st)
}

func workloadName(bench, file string) string {
	if file != "" {
		return file
	}
	return bench
}

// Sampled-path budget thresholds: beyond materializeLimit the sampled
// run streams (the trace is never held in memory); beyond
// fullCompareLimit the -samplefull auto comparison is skipped (a full
// run would defeat the point of sampling a 100M budget).
const (
	materializeLimit = 16_000_000
	fullCompareLimit = 5_000_000
)

// sampleRun bundles everything the sampled path needs from main.
type sampleRun struct {
	cfg        dmdp.Config
	model      dmdp.Model
	budget     int64
	spec       string
	full       string // -samplefull: auto | on | off
	jobs       int
	checkpoint bool
	warm       bool
	store      *artifact.Store
	traceKey   artifact.Key
	loadTrace  func() *dmdp.Trace
	loadProg   func() (*isa.Program, error)
}

// runSampled exercises the checkpointed sampling methodology (paper §V):
// plan intervals (BBV phase clustering for auto specs, centered
// systematic sampling otherwise), simulate them on a deterministic
// worker pool, and combine by weight. Small budgets materialize the
// trace; large ones stream it, restoring intervals from architectural
// checkpoints. Timing goes to stderr so stdout stays byte-identical
// across hosts and -j widths.
func runSampled(r sampleRun) {
	spec, err := cliutil.ParseSampleSpec(r.spec)
	if err != nil {
		fatal(fmt.Errorf("-sample: %w", err))
	}
	switch r.full {
	case "auto", "on", "off":
	default:
		fatal(fmt.Errorf("-samplefull %q (want auto, on or off)", r.full))
	}
	compareFull := r.full == "on" || (r.full == "auto" && r.budget <= fullCompareLimit)

	req := sampling.Request{
		Spec: spec, Budget: r.budget, Jobs: r.jobs,
		Checkpoint: r.checkpoint, Store: r.store, TraceKey: r.traceKey,
		Warm: r.warm,
	}
	var fullTrace *dmdp.Trace
	if compareFull || r.budget <= materializeLimit {
		fullTrace = r.loadTrace()
		req.Trace = fullTrace
	} else {
		prog, err := r.loadProg()
		if err != nil {
			fatal(err)
		}
		req.Prog = prog
	}

	start := time.Now()
	out, err := sampling.Execute(context.Background(), r.cfg, req)
	if err != nil {
		fatal(err)
	}
	sampledWall := time.Since(start)

	path := "materialized"
	if out.Streamed {
		path = "streamed"
	}
	if out.PlanCached {
		path += " (cached plan)"
	}
	c := out.Combined
	fmt.Printf("model              %s\n", r.model)
	fmt.Printf("sampling spec      %s\n", spec.String())
	fmt.Printf("sampling path      %s\n", path)
	fmt.Printf("plan               %d intervals over %d entries\n", len(out.Plan.Intervals), out.Total)
	fmt.Printf("sampled instrs     %d of %d (%.1f%%)\n",
		c.TotalInstructions, out.Total,
		100*float64(c.TotalInstructions)/float64(out.Total))
	fmt.Printf("sampled IPC        %.4f\n", c.WeightedIPC)
	fmt.Printf("sampled MPKI       %.3f\n", c.WeightedMPKI)
	if compareFull {
		full, err := dmdp.Run(r.cfg, fullTrace)
		if err != nil {
			fatal(err)
		}
		fullIPC := full.IPC()
		fmt.Printf("full IPC           %.4f\n", fullIPC)
		fmt.Printf("full MPKI          %.3f\n", full.MPKI())
		fmt.Printf("IPC error          %+.2f%%\n", 100*(c.WeightedIPC-fullIPC)/fullIPC)
	}
	// Warming accounting goes to stderr with the timing: stdout must stay
	// byte-identical across -j widths and cold/warm artifact caches.
	if out.Warmed {
		fmt.Fprintf(os.Stderr, "functional warming warmed %d of %d intervals (%d cold starts), %.1f KiB of snapshots installed\n",
			out.WarmedIntervals, out.WarmedIntervals+out.ColdStartIntervals,
			out.ColdStartIntervals, float64(out.WarmSnapshotBytes)/1024)
		if out.WarmNanos > 0 {
			fmt.Fprintf(os.Stderr, "warming throughput %.1f Mentries/s over the profiling pass (%d entries)\n",
				float64(out.WarmEntries)*1e3/float64(out.WarmNanos), out.WarmEntries)
		}
	}
	fmt.Fprintf(os.Stderr, "sampled wall clock %.3fs (%d intervals, -j %d)\n",
		sampledWall.Seconds(), len(out.Plan.Intervals), r.jobs)
}

// runMulticore replicates the workload trace across an N-core machine
// over a shared L2 (timing-only: the semantic coupling layer is for
// litmus programs; proxy workloads measure contention and coherence
// traffic). Each core runs the same isolated trace, so the aggregate
// IPC against the single-core run isolates shared-hierarchy effects.
func runMulticore(cfg dmdp.Config, model dmdp.Model, n int, seed uint64, tr *dmdp.Trace) {
	mc := core.DefaultMachineConfig(n, model, core.MemTSO)
	mc.Core = cfg
	mc.Semantics = false
	mc.StallProb = 0 // deterministic lockstep; the seed only skews starts
	mc.Seed = seed
	traces := make([]*dmdp.Trace, n)
	for i := range traces {
		traces[i] = tr
	}
	m, err := core.NewMachine(mc, traces)
	if err != nil {
		fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model              %s\n", model)
	fmt.Printf("cores              %d (shared L2, seed %d)\n", n, seed)
	fmt.Printf("global cycles      %d\n", st.GlobalCycles)
	fmt.Printf("instructions       %d\n", st.Instructions)
	fmt.Printf("aggregate IPC      %.3f\n", st.IPC())
	fmt.Printf("remote invals      %d (T-SSBF stamps %d)\n", st.RemoteInvalidations, st.RemoteStamps)
	fmt.Printf("SB drains          %d\n", st.DrainEvents)
	for i := range st.PerCore {
		c := &st.PerCore[i]
		fmt.Printf("core %-2d            IPC %.3f, %d instr, %d reexecs, %d invals, L1 miss %.1f%%\n",
			i, c.IPC(), c.Instructions, c.Reexecs, c.Invalidations, 100*c.L1MissRate)
	}
	if st.SimWallClockNS > 0 {
		fmt.Fprintf(os.Stderr, "sim wall clock     %.3fs\n", float64(st.SimWallClockNS)/1e9)
	}
}

func parseModel(s string) (dmdp.Model, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return dmdp.Baseline, nil
	case "nosq":
		return dmdp.NoSQ, nil
	case "dmdp":
		return dmdp.DMDP, nil
	case "perfect":
		return dmdp.Perfect, nil
	case "fnf":
		return dmdp.FnF, nil
	}
	return 0, fmt.Errorf("unknown model %q (baseline|nosq|dmdp|perfect|fnf)", s)
}

func printStats(model dmdp.Model, st *dmdp.Stats) {
	e := dmdp.Energy(st)
	fmt.Printf("model              %s\n", model)
	fmt.Printf("instructions       %d\n", st.Instructions)
	fmt.Printf("uops               %d\n", st.Uops)
	fmt.Printf("cycles             %d\n", st.Cycles)
	fmt.Printf("IPC                %.3f\n", st.IPC())
	fmt.Printf("loads              %d (direct %d, bypass %d, delayed %d, predicated %d)\n",
		st.TotalLoads(), st.LoadCount[0], st.LoadCount[1], st.LoadCount[2], st.LoadCount[3])
	fmt.Printf("mean load time     %.2f cycles (p50<=%d, p90<=%d, p99<=%d)\n",
		st.MeanLoadExecTime(),
		st.LoadLatencyPercentile(50), st.LoadLatencyPercentile(90), st.LoadLatencyPercentile(99))
	fmt.Printf("low-conf loads     %d (mean %.2f cycles)\n", st.LowConfCount, st.MeanLowConfExecTime())
	fmt.Printf("cloaks             %d\n", st.Cloaks)
	fmt.Printf("predications       %d\n", st.Predications)
	fmt.Printf("delayed loads      %d\n", st.DelayedLoads)
	fmt.Printf("dep mispredicts    %d (%.2f MPKI; direct %d, bypass %d, delayed %d, predicated %d)\n",
		st.DepMispredicts, st.MPKI(),
		st.DepMispredictsByCat[0], st.DepMispredictsByCat[1], st.DepMispredictsByCat[2], st.DepMispredictsByCat[3])
	fmt.Printf("re-executions      %d (stall %.1f cyc/1k instr)\n", st.Reexecs, st.ReexecStallsPerKilo())
	fmt.Printf("SB-full stalls     %.1f cyc/1k instr\n", st.SBStallsPerKilo())
	fmt.Printf("branch mispredicts %d\n", st.BranchMispredicts)
	fmt.Printf("L1 miss rate       %.1f%%\n", 100*st.L1MissRate)
	fmt.Printf("energy             %.1f uJ (EPI %.1f pJ)\n", e.TotalPJ/1e6, e.EPI)
	fmt.Printf("EDP                %.3e pJ*cyc\n", e.EDP)
	fmt.Printf("oracle checks      %d\n", st.OracleChecks)
	if st.SimWallClockNS > 0 {
		fmt.Printf("sim wall clock     %.3fs (%.0f instr/s host throughput)\n",
			float64(st.SimWallClockNS)/1e9, st.SimIPS())
	}
	if st.Faults.Total() > 0 {
		fmt.Printf("injected faults    %d (flips %d, lowconf %d, predicate %d, inval %d, value %d)\n",
			st.Faults.Total(), st.Faults.PredictionFlips, st.Faults.ForcedLowConf,
			st.Faults.PredicateCorruptions, st.Faults.LineInvalidations, st.Faults.ValueCorruptions)
	}
}

// fatal prints the error — the full diagnostic bundle when the
// simulation died on a structured SimError — and exits non-zero.
func fatal(err error) {
	var se *dmdp.SimError
	if errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, "dmdpsim: simulation failed")
		fmt.Fprintln(os.Stderr, se.Bundle())
	} else {
		fmt.Fprintln(os.Stderr, "dmdpsim:", err)
	}
	os.Exit(1)
}
