// Command dmdpasm assembles and disassembles programs in the simulator's
// MIPS-I-like ISA.
//
// Usage:
//
//	dmdpasm prog.s            # assemble, print encoded words + disassembly
//	dmdpasm -run prog.s       # assemble and execute functionally
//	dmdpasm -run -max 1000 prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"dmdp/internal/asm"
	"dmdp/internal/emu"
	"dmdp/internal/isa"
)

func main() {
	var (
		run = flag.Bool("run", false, "execute the program functionally after assembling")
		max = flag.Int64("max", 1_000_000, "instruction budget for -run")
		out = flag.String("o", "", "write a DMO1 binary object instead of printing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dmdpasm [-run] [-max N] file.s")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var p *isa.Program
	if isa.IsObjectFile(data) {
		p, err = isa.UnmarshalProgram(data)
	} else {
		p, err = asm.Assemble(string(data))
	}
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		blob, err := p.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d instructions, %d data bytes, %d symbols\n",
			*out, len(p.Text), len(p.Data), len(p.Symbols))
		return
	}

	if !*run {
		fmt.Printf("# text @ 0x%08x, %d instructions; data @ 0x%08x, %d bytes; entry 0x%08x\n",
			p.TextBase, len(p.Text), p.DataBase, len(p.Data), p.Entry)
		for i, in := range p.Text {
			w, err := in.Encode()
			if err != nil {
				fatal(fmt.Errorf("instruction %d (%v): %w", i, in, err))
			}
			fmt.Printf("0x%08x: %08x  %s\n", p.TextBase+uint32(4*i), w, in)
		}
		return
	}

	tr, err := emu.Run(p, *max)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("executed %d instructions (halt=%v), %d loads, %d stores\n",
		len(tr.Entries), tr.HitHalt, tr.Loads, tr.Stores)
	e := emu.New(p)
	for i := int64(0); i < *max && !e.Halted(); i++ {
		if _, err := e.Step(); err != nil {
			fatal(err)
		}
	}
	fmt.Println("final registers:")
	for r := isa.Reg(0); r < isa.NumArchRegs; r++ {
		if e.Regs[r] != 0 {
			fmt.Printf("  %-6s = 0x%08x (%d)\n", r, e.Regs[r], int32(e.Regs[r]))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmdpasm:", err)
	os.Exit(1)
}
