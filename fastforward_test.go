package dmdp

import (
	"testing"
)

// TestFastForwardEquivalence proves the idle-cycle fast-forward is exact:
// for every proxy and every model, a run with fast-forward disabled and a
// run with it enabled must produce identical statistics (excluding only
// the host wall-clock field). The fast-forward may only skip cycles it
// can prove would mutate nothing, crediting the per-cycle stall counters
// for the skipped window, so any divergence here is a correctness bug in
// the skip condition or the deadline set, not a tolerance issue.
func TestFastForwardEquivalence(t *testing.T) {
	const budget = 6000
	models := []Model{Baseline, NoSQ, DMDP, Perfect, FnF}
	for _, bench := range Workloads() {
		tr, err := BuildWorkloadTrace(bench, budget)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		for _, m := range models {
			off, err := Run(DefaultConfig(m).WithFastForward(false), tr)
			if err != nil {
				t.Fatalf("%s/%v (ff off): %v", bench, m, err)
			}
			on, err := Run(DefaultConfig(m), tr)
			if err != nil {
				t.Fatalf("%s/%v (ff on): %v", bench, m, err)
			}
			a, b := *off, *on
			a.SimWallClockNS, b.SimWallClockNS = 0, 0
			if a != b {
				t.Errorf("%s/%v: stats differ with fast-forward on\noff: %+v\non:  %+v", bench, m, a, b)
			}
		}
	}
}

// TestFastForwardDisabledUnderFaultInjection: the injector draws from its
// PRNG every cycle, so skipping cycles would change the fault schedule.
// The core must keep stepping cycle by cycle (and stay deterministic)
// when faults are configured.
func TestFastForwardDisabledUnderFaultInjection(t *testing.T) {
	tr, err := BuildWorkloadTrace("mcf", 4000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(DMDP).WithFaults(FaultConfig{Seed: 7, ForceLowConfRate: 0.01})
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg.WithFastForward(false), tr)
	if err != nil {
		t.Fatal(err)
	}
	x, y := *a, *b
	x.SimWallClockNS, y.SimWallClockNS = 0, 0
	if x != y {
		t.Errorf("fault-injected run differs with the fast-forward switch: the injector must disable fast-forward\nff-default: %+v\nff-off:     %+v", x, y)
	}
}
