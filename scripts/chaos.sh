#!/usr/bin/env bash
# Daemon end-to-end chaos harness (CI: the daemon-e2e job).
#
# Builds dmdpd (race-instrumented) and dmdpload, then drives three
# phases against a live daemon:
#
#   1. clean load with -verify: every daemon result is re-simulated
#      in-process and compared byte-for-byte (stats_sha256);
#   2. chaos load: worker panics, unmeetable deadlines and
#      fault-injected runs mixed in — exactly-once accounting and
#      sha-consistency must hold throughout;
#   3. mid-flight SIGTERM: the daemon is terminated while jobs are in
#      the air — in-flight jobs must finish, new ones shed with 503,
#      the load run must lose nothing, and the daemon must exit 0.
#
# Exit 0 only when every phase holds its invariants.
set -euo pipefail

ADDR="127.0.0.1:${CHAOS_PORT:-18200}"
CHAOS_N="${CHAOS_N:-200}"
CHAOS_SECONDS="${CHAOS_SECONDS:-30}"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build (daemon race-instrumented) =="
go build -race -o "$WORK/dmdpd" ./cmd/dmdpd
go build -o "$WORK/dmdpload" ./cmd/dmdpload

start_daemon() {
  "$WORK/dmdpd" -addr "$ADDR" "$@" >"$WORK/dmdpd.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "daemon died on startup:"; cat "$WORK/dmdpd.log"; exit 1
    fi
    sleep 0.1
  done
  echo "daemon never became healthy"; cat "$WORK/dmdpd.log"; exit 1
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  local status=0
  wait "$DAEMON_PID" || status=$?
  DAEMON_PID=""
  return "$status"
}

echo "== phase 1: clean load, byte-identity verified against direct simulation =="
start_daemon -chaos -cache rw -cachedir "$WORK/cache"
"$WORK/dmdpload" -addr "http://$ADDR" -n "$CHAOS_N" -c 12 -seed 1 -verify

echo "== phase 2: chaos load (~${CHAOS_SECONDS}s: panics, deadlines, fault injection) =="
deadline=$((SECONDS + CHAOS_SECONDS))
round=0
while (( SECONDS < deadline )); do
  round=$((round + 1))
  "$WORK/dmdpload" -addr "http://$ADDR" -n "$CHAOS_N" -c 16 -chaos -seed "$round"
done
echo "chaos rounds: $round"

echo "== phase 2b: daemon still healthy and accounting balanced =="
curl -fsS "http://$ADDR/readyz" >/dev/null
statz="$(curl -fsS "http://$ADDR/statz")"
echo "$statz" | python3 -c '
import json, sys
s = json.load(sys.stdin)["sched"]
assert s["Accepted"] == s["Completed"] + s["Failed"], "books do not balance: %r" % s
assert s["QueueLen"] == 0 and s["Running"] == 0, "work stuck after load: %r" % s
assert s["Panics"] > 0, "chaos ran but no panics were isolated: %r" % s
print("accepted=%d completed=%d failed=%d panics=%d - books balance"
      % (s["Accepted"], s["Completed"], s["Failed"], s["Panics"]))
'

echo "== phase 3: SIGTERM mid-flight (graceful drain, nothing lost) =="
"$WORK/dmdpload" -addr "http://$ADDR" -n "$CHAOS_N" -c 8 -seed 3 \
  -bench lbm,mcf,sphinx3,wrf -instr 200k >"$WORK/drain-load.out" 2>&1 &
LOAD_PID=$!
sleep 1
stop_daemon || { echo "daemon exited non-zero on SIGTERM"; cat "$WORK/dmdpd.log"; exit 1; }
wait "$LOAD_PID" || { echo "load run lost jobs during drain:"; cat "$WORK/drain-load.out"; exit 1; }
cat "$WORK/drain-load.out"
grep -q "drained, exiting" "$WORK/dmdpd.log" || { echo "daemon did not drain cleanly:"; cat "$WORK/dmdpd.log"; exit 1; }

echo "== chaos harness: all phases green =="
