#!/bin/sh
# Record a benchmark baseline as BENCH_<NNNN>.json in the repo root.
#
# Usage:
#   scripts/bench.sh                  # next free BENCH number, default pattern
#   BENCH=Simulator scripts/bench.sh  # restrict -bench pattern
#   COUNT=10 scripts/bench.sh         # more repetitions
#   BASELINE=old.txt BASELINE_COMMIT=abc1234 scripts/bench.sh
#       also embed an older run (raw `go test -bench` output) and a
#       per-benchmark speedup / allocation-reduction summary.
#
# The raw `go test` output is kept next to the JSON as BENCH_<NNNN>.txt
# so future runs can be compared against it via BASELINE=.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${BENCH:-Fig2LoadDistribution|Fig12Speedup|TableVIMPKI|SimulatorThroughput|TraceBuild|TraceDecode|SuiteColdCache|SuiteWarmCache}"
COUNT="${COUNT:-5}"

# Baselines are numbered by the PR that recorded them; ID=BENCH_0007
# overrides, otherwise the next free number is used.
if [ -n "${ID:-}" ]; then
	id="$ID"
else
	n=0
	while [ -e "$(printf 'BENCH_%04d.json' "$n")" ]; do
		n=$((n + 1))
	done
	id=$(printf 'BENCH_%04d' "$n")
fi

echo "== $id: go test -run '^\$' -bench '$PATTERN' -benchmem -count $COUNT" >&2
go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" | tee "$id.txt"

set -- -out "$id.json" \
	-date "$(date -u +%Y-%m-%d)" \
	-count "$COUNT" \
	-commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)$(git diff --quiet HEAD 2>/dev/null || echo -dirty)"
if [ -n "${BASELINE:-}" ]; then
	set -- "$@" -baseline "$BASELINE" -baseline-commit "${BASELINE_COMMIT:-unknown}"
fi
if [ -n "${NOTE:-}" ]; then
	set -- "$@" -note "$NOTE"
fi
go run ./cmd/benchjson "$@" "$id.txt"
echo "wrote $id.json (raw output in $id.txt)" >&2
