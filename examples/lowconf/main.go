// Lowconf: dissect how the two store-queue-free designs treat
// low-confidence memory dependence predictions (paper Table V / Fig. 5).
// NoSQ parks such loads until the predicted store commits; DMDP issues
// them immediately under a predicate. The example prints the resulting
// execution-time gap and the ground-truth outcome mix.
package main

import (
	"fmt"
	"log"

	"dmdp"
)

func main() {
	const budget = 150_000
	benches := []string{"wrf", "milc", "gcc", "astar"}

	for _, bench := range benches {
		tr, err := dmdp.BuildWorkloadTrace(bench, budget)
		if err != nil {
			log.Fatal(err)
		}
		nosq, err := dmdp.Run(dmdp.DefaultConfig(dmdp.NoSQ), tr)
		if err != nil {
			log.Fatal(err)
		}
		dm, err := dmdp.Run(dmdp.DefaultConfig(dmdp.DMDP), tr)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", bench)
		fmt.Printf("  low-confidence loads: nosq %d (delayed), dmdp %d (predicated)\n",
			nosq.LowConfCount, dm.LowConfCount)
		fmt.Printf("  mean low-conf execution time: nosq %.2f cyc, dmdp %.2f cyc",
			nosq.MeanLowConfExecTime(), dm.MeanLowConfExecTime())
		if n := nosq.MeanLowConfExecTime(); n > 0 {
			fmt.Printf("  (saving %.1f%%)", 100*(n-dm.MeanLowConfExecTime())/n)
		}
		fmt.Println()
		if dm.LowConfCount > 0 {
			n := float64(dm.LowConfCount)
			fmt.Printf("  dmdp outcome mix: IndepStore %.1f%%, DiffStore %.1f%%, Correct %.1f%%\n",
				100*float64(dm.LowConfOutcomes[0])/n,
				100*float64(dm.LowConfOutcomes[1])/n,
				100*float64(dm.LowConfOutcomes[2])/n)
		}
		fmt.Printf("  IPC: nosq %.3f, dmdp %.3f (%+.2f%%)\n\n",
			nosq.IPC(), dm.IPC(), 100*(dm.IPC()/nosq.IPC()-1))
	}

	fmt.Println("paper: DMDP saves 54.48% of low-confidence load execution time on")
	fmt.Println("average (up to 79.25%), and IndepStore dominates the outcome mix —")
	fmt.Println("which is exactly the case predication handles without misprediction.")
}
