// Consistency: the multi-core hooks of paper §IV-F. A remote core's
// cache line invalidations are injected while a proxy runs: each
// invalidated line's words are written into the T-SSBF with SSNcommit+1,
// so every in-flight load that already read them re-executes at retire.
// Correctness is preserved by construction (the simulator verifies every
// retired load's value); the cost shows up as extra re-executions. The
// example also contrasts TSO with RMO store buffering.
package main

import (
	"fmt"
	"log"

	"dmdp"
)

func main() {
	const bench = "gcc"
	const budget = 150_000

	tr, err := dmdp.BuildWorkloadTrace(bench, budget)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (DMDP), %d instructions\n\n", bench, budget)
	fmt.Printf("%-28s %8s %10s %10s %8s\n", "configuration", "IPC", "reexecs", "invals", "MPKI")

	type cfgRow struct {
		name string
		cfg  dmdp.Config
	}
	rows := []cfgRow{
		{"TSO, quiet", dmdp.DefaultConfig(dmdp.DMDP)},
		{"TSO, invalidate/4k cycles", dmdp.DefaultConfig(dmdp.DMDP).WithInvalidations(4000)},
		{"TSO, invalidate/1k cycles", dmdp.DefaultConfig(dmdp.DMDP).WithInvalidations(1000)},
		{"RMO, quiet", dmdp.DefaultConfig(dmdp.DMDP).WithConsistency(dmdp.RMO)},
		{"RMO, invalidate/1k cycles", dmdp.DefaultConfig(dmdp.DMDP).WithConsistency(dmdp.RMO).WithInvalidations(1000)},
	}
	for _, r := range rows {
		st, err := dmdp.Run(r.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.3f %10d %10d %8.2f\n",
			r.name, st.IPC(), st.Reexecs, st.Invalidations, st.MPKI())
	}

	fmt.Println("\nInvalidated words enter the T-SSBF with SSNcommit+1 (paper §IV-F),")
	fmt.Println("forcing vulnerable in-flight loads to re-execute after the store")
	fmt.Println("buffer drains. The simulator's built-in soundness check proves no")
	fmt.Println("stale value ever retires.")
}
