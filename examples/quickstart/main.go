// Quickstart: simulate one SPEC proxy benchmark under all four
// store-load communication models and compare IPC — the reproduction's
// "hello world".
package main

import (
	"fmt"
	"log"

	"dmdp"
)

func main() {
	const bench = "hmmer" // the paper's most predictor-hostile benchmark
	const budget = 100_000

	fmt.Printf("benchmark %s, %d instructions\n\n", bench, budget)
	fmt.Printf("%-10s %8s %10s %8s %12s %12s\n",
		"model", "IPC", "loadtime", "MPKI", "cloaks", "predications")

	// Build the trace once and reuse it across models.
	tr, err := dmdp.BuildWorkloadTrace(bench, budget)
	if err != nil {
		log.Fatal(err)
	}

	var baseIPC float64
	for _, m := range []dmdp.Model{dmdp.Baseline, dmdp.NoSQ, dmdp.DMDP, dmdp.Perfect} {
		st, err := dmdp.Run(dmdp.DefaultConfig(m), tr)
		if err != nil {
			log.Fatal(err)
		}
		if m == dmdp.Baseline {
			baseIPC = st.IPC()
		}
		fmt.Printf("%-10s %8.3f %10.2f %8.2f %12d %12d   (%.2fx baseline)\n",
			m, st.IPC(), st.MeanLoadExecTime(), st.MPKI(),
			st.Cloaks, st.Predications, st.IPC()/baseIPC)
	}

	fmt.Println("\nDMDP converts low-confidence loads into predicated CMP/CMOV")
	fmt.Println("sequences instead of delaying them until the predicted store")
	fmt.Println("commits (NoSQ), removing the false dependence on store commit.")
}
