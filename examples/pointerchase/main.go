// Pointerchase: the paper's Figure 1 motivating example, written directly
// in the simulator's assembly. A pointer is read from a table each
// iteration and the pointed-to counter is incremented; consecutive equal
// pointers make the store-to-load dependence occasionally colliding (OC)
// — exactly the case where NoSQ must delay and DMDP predicates.
package main

import (
	"fmt"
	"log"

	"dmdp"
)

// The OC kernel of paper Fig. 1: for(i) { ptr = a[i]; x[ptr]++; }.
// Consecutive equal pointers collide at store distance 0; when the
// pointer moves on, the slot it lands on was last written long ago (its
// store has committed), which is exactly the IndepStore case DMDP's
// predication covers and NoSQ's delayed execution pays for.
const src = `
	.data
table:
	.word x0, x0, x1, x1, x1, x2, x3, x3
	.word x4, x4, x4, x5, x6, x6, x7, x7
x0:	.word 0
x1:	.word 0
x2:	.word 0
x3:	.word 0
x4:	.word 0
x5:	.word 0
x6:	.word 0
x7:	.word 0
	.text
main:
	li   $s0, 2000          # outer sweeps
outer:
	la   $t0, table
	li   $t1, 16
inner:
	lw   $t2, 0($t0)        # ptr = a[i]
	lw   $t3, 0($t2)        # x[ptr]      <- the OC load
	addi $t3, $t3, 1
	sw   $t3, 0($t2)        # x[ptr]++
	add  $v0, $v0, $t3      # a little work per element
	xor  $v1, $v1, $v0
	addi $t0, $t0, 4
	addi $t1, $t1, -1
	bnez $t1, inner
	addi $s0, $s0, -1
	bnez $s0, outer
	halt
`

func main() {
	tr, err := dmdp.BuildTrace(src, 120_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d instructions, %d loads, %d stores\n\n",
		len(tr.Entries), tr.Loads, tr.Stores)

	fmt.Printf("%-10s %8s %9s %9s %11s %7s\n",
		"model", "IPC", "delayed", "predic.", "reexecs", "MPKI")
	for _, m := range []dmdp.Model{dmdp.Baseline, dmdp.NoSQ, dmdp.DMDP, dmdp.Perfect} {
		st, err := dmdp.Run(dmdp.DefaultConfig(m), tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.3f %9d %9d %11d %7.2f\n",
			m, st.IPC(), st.DelayedLoads, st.Predications, st.Reexecs, st.MPKI())
	}

	fmt.Println("\nNoSQ handles the inconsistent dependence by delaying the load")
	fmt.Println("until the predicted store commits; DMDP compares the addresses")
	fmt.Println("with a CMP MicroOp and selects store data or cache data with")
	fmt.Println("two CMOVs, so the load's consumers never wait for store commit.")
}
