// Storebuffer: the paper's Figure 14 study on one benchmark — because
// SQ-free loads never search the store buffer, it can grow cheaply, and a
// bigger buffer hides more store misses. lbm (write-heavy streaming) is
// the most sensitive benchmark in the paper.
package main

import (
	"fmt"
	"log"

	"dmdp"
)

func main() {
	const bench = "lbm"
	const budget = 150_000

	tr, err := dmdp.BuildWorkloadTrace(bench, budget)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (DMDP), %d instructions\n\n", bench, budget)
	fmt.Printf("%6s %10s %10s %16s %14s\n",
		"SBsize", "cycles", "IPC", "SBstall/1k", "vs 16-entry")

	var base float64
	for _, n := range []int{16, 32, 64, 128} {
		cfg := dmdp.DefaultConfig(dmdp.DMDP).WithStoreBuffer(n)
		st, err := dmdp.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		if n == 16 {
			base = st.IPC()
		}
		fmt.Printf("%6d %10d %10.3f %16.1f %+13.2f%%\n",
			n, st.Cycles, st.IPC(), st.SBStallsPerKilo(), 100*(st.IPC()/base-1))
	}

	fmt.Println("\npaper (geomean over the suite): 32-entry +2.07% Int / +3.81% FP,")
	fmt.Println("64-entry +2.77% Int / +5.01% FP over 16 entries; stalls per 1k")
	fmt.Println("instructions drop 503.1 -> 220.5 -> 75.0.")
}
