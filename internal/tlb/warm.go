package tlb

import (
	"encoding/binary"
	"fmt"
)

// Functional-warming support: snapshot/restore of the TLB's tag state
// through a rank-normalized canonical encoding (see the cache package's
// warm codec for the normalization argument — only the relative LRU
// order matters for future replacement decisions, so serializing the
// entries oldest-to-youngest and reloading with used = 1..k is
// behavior-preserving).

// WarmStateLen returns the maximum encoded warm-state size.
func (t *TLB) WarmStateLen() int { return 2 + 4*t.cfg.Entries }

// AppendWarmState appends the canonical warm encoding: a 2-byte count
// followed by the valid VPNs oldest-to-youngest.
func (t *TLB) AppendWarmState(buf []byte) []byte {
	order := make([]int, 0, len(t.entries))
	for i := range t.entries {
		if !t.entries[i].valid {
			continue
		}
		j := len(order)
		order = append(order, i)
		for j > 0 && t.entries[order[j-1]].used > t.entries[i].used {
			order[j] = order[j-1]
			j--
		}
		order[j] = i
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(order)))
	for _, i := range order {
		buf = binary.LittleEndian.AppendUint32(buf, t.entries[i].vpn)
	}
	return buf
}

// LoadWarmState replaces the TLB's state with the encoded state and
// returns the bytes consumed. Counters are untouched.
func (t *TLB) LoadWarmState(buf []byte) (int, error) {
	if len(buf) < 2 {
		return 0, fmt.Errorf("tlb: warm state truncated")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if n > len(t.entries) {
		return 0, fmt.Errorf("tlb: warm state holds %d entries (tlb has %d)", n, len(t.entries))
	}
	off := 2
	if off+4*n > len(buf) {
		return 0, fmt.Errorf("tlb: warm state truncated")
	}
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	for k := 0; k < n; k++ {
		t.entries[k] = entry{
			vpn:   binary.LittleEndian.Uint32(buf[off:]),
			valid: true,
			used:  int64(k + 1),
		}
		off += 4
	}
	t.tick = int64(len(t.entries))
	return off, nil
}

// CopyWarmFrom transplants src's state into t (same geometry assumed).
// Counters are untouched.
func (t *TLB) CopyWarmFrom(src *TLB) {
	copy(t.entries, src.entries)
	t.tick = src.tick
}

// PageBytes exposes the page size so the warm hot loop can implement a
// last-VPN shortcut: consecutive accesses to the same page may skip the
// fully associative scan, because the entry they would touch is already
// the most recently used and re-bumping it does not change the relative
// LRU order the canonical encoding preserves.
func (t *TLB) PageBytes() uint32 { return t.cfg.PageBytes }
