// Package tlb models the translation lookaside buffer consulted by
// address-generation MicroOps. In DMDP the AGI translates the virtual
// address and stores the *physical* address in the address register, so
// retire-stage ordering checks need no extra translation (paper §IV-A);
// the VIPT L1 hides the translation latency for cache reads, but a TLB
// miss still delays the AGI by the page-walk penalty.
package tlb

// Config sets TLB geometry and the miss penalty.
type Config struct {
	Entries     int
	PageBytes   uint32
	MissPenalty int64
}

// DefaultConfig is a 64-entry fully associative TLB over 4 KiB pages with
// a 20-cycle walk.
func DefaultConfig() Config {
	return Config{Entries: 64, PageBytes: 4096, MissPenalty: 20}
}

type entry struct {
	vpn   uint32
	valid bool
	used  int64
}

// TLB is a fully associative, LRU-replaced translation buffer. The
// reproduction uses identity translation (virtual == physical); only the
// timing of misses matters.
type TLB struct {
	cfg     Config
	entries []entry
	tick    int64

	Accesses, Misses int64
}

// New builds a TLB.
func New(cfg Config) *TLB {
	return &TLB{cfg: cfg, entries: make([]entry, cfg.Entries)}
}

// Translate looks up addr's page and returns the extra latency the
// address-generation MicroOp incurs (0 on a hit, the walk penalty on a
// miss, which also fills the TLB).
func (t *TLB) Translate(addr uint32) int64 {
	t.tick++
	t.Accesses++
	vpn := addr / t.cfg.PageBytes
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.used = t.tick
			return 0
		}
		if !t.entries[victim].valid {
			continue
		}
		if !e.valid || e.used < t.entries[victim].used {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = entry{vpn: vpn, valid: true, used: t.tick}
	return t.cfg.MissPenalty
}

// MissRate returns Misses/Accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
