package tlb

import "testing"

func TestMissThenHit(t *testing.T) {
	b := New(Config{Entries: 4, PageBytes: 4096, MissPenalty: 20})
	if lat := b.Translate(0x1000); lat != 20 {
		t.Fatalf("cold miss latency %d", lat)
	}
	if lat := b.Translate(0x1ffc); lat != 0 {
		t.Fatalf("same-page hit latency %d", lat)
	}
	if lat := b.Translate(0x2000); lat != 20 {
		t.Fatalf("new page latency %d", lat)
	}
	if b.Accesses != 3 || b.Misses != 2 {
		t.Fatalf("stats %d/%d", b.Accesses, b.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	b := New(Config{Entries: 2, PageBytes: 4096, MissPenalty: 20})
	b.Translate(0x0000) // page 0
	b.Translate(0x1000) // page 1
	b.Translate(0x0000) // page 0 touched again
	b.Translate(0x2000) // evicts page 1
	if lat := b.Translate(0x0000); lat != 0 {
		t.Fatal("page 0 should have survived")
	}
	if lat := b.Translate(0x1000); lat != 20 {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestMissRate(t *testing.T) {
	b := New(DefaultConfig())
	b.Translate(0)
	b.Translate(0)
	b.Translate(4)
	b.Translate(8)
	if got := b.MissRate(); got != 0.25 {
		t.Fatalf("miss rate %f", got)
	}
}
