// Package config defines the simulated machine configurations: the
// baseline processor (the paper's Table III analog), the four store-load
// communication models and the alternative configurations evaluated in
// §VI (4-issue, 512-entry ROB, RMO, halved register file, store buffer
// sweeps).
package config

import (
	"dmdp/internal/bpred"
	"dmdp/internal/cache"
	"dmdp/internal/faults"
	"dmdp/internal/memdep"
	"dmdp/internal/tlb"
)

// DefaultNoRetireWindow is the watchdog's default deadlock threshold:
// consecutive cycles without a retirement before the core aborts with a
// diagnostic bundle.
const DefaultNoRetireWindow = 400_000

// Watchdog bounds a simulation run. A tripped watchdog aborts the run
// with a structured core.SimError carrying the pipeline state.
type Watchdog struct {
	// MaxCycles caps the total simulated cycles (0 = unlimited).
	MaxCycles int64
	// NoRetireWindow is the number of consecutive cycles without a
	// retirement before the core declares a deadlock (0 = the
	// DefaultNoRetireWindow).
	NoRetireWindow int64
}

// Model selects the store-load communication mechanism.
type Model int

// The four simulated models (paper §V).
const (
	// Baseline: unlimited associative store queue and load queue with
	// constant 4-cycle access, Store Sets scheduling, store buffer.
	Baseline Model = iota
	// NoSQ: store-queue-free; memory cloaking for confident
	// predictions, delayed execution for low-confidence loads.
	NoSQ
	// DMDP: store-queue-free; memory cloaking for confident
	// predictions, dynamic predication (CMP + 2 CMOVs) for
	// low-confidence loads. Biased confidence update (divide by two).
	DMDP
	// Perfect: oracle memory dependence predictor; no delays, no
	// mispredictions, no verification.
	Perfect
	// FnF: Fire-and-Forget (Subramaniam & Loh, §VII): store-queue-free
	// with *store-side* consumer prediction — the store forwards to its
	// predicted consumer load. Included to measure the paper's stated
	// reason for preferring NoSQ: store-side prediction is
	// path-insensitive.
	FnF
)

func (m Model) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case NoSQ:
		return "nosq"
	case DMDP:
		return "dmdp"
	case Perfect:
		return "perfect"
	case FnF:
		return "fnf"
	}
	return "model?"
}

// Consistency selects the store buffer's commit ordering.
type Consistency int

// Memory consistency models (paper §IV-F).
const (
	TSO Consistency = iota // stores commit in program order
	RMO                    // stores may commit out of order
)

func (c Consistency) String() string {
	if c == RMO {
		return "rmo"
	}
	return "tso"
}

// Config is the full machine description consumed by the core.
type Config struct {
	Model       Model
	Consistency Consistency

	// Pipeline widths and structure sizes.
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int
	ROBSize     int
	IQSize      int
	PhysRegs    int
	LoadPorts   int // cache read ports (LD issues per cycle)

	// Store buffer.
	StoreBufferSize int
	StoreCoalescing bool // coalesce consecutive same-word stores (TSO-safe)

	// Front-end timing.
	FrontEndDepth   int64 // fetch -> rename latency
	RedirectPenalty int64 // extra bubble after a branch misprediction resolves
	RecoveryPenalty int64 // extra bubble after a memory dependence recovery

	// Execution latencies (cycles).
	ALULat, MulLat, DivLat, FPLat, FPDivLat, AGILat, BranchLat int64

	// Substrates.
	Hierarchy cache.HierarchyConfig
	TLB       tlb.Config
	BPred     bpred.Config
	TSSBF     memdep.TSSBFConfig
	SDP       memdep.SDPConfig

	// Baseline-only structures.
	SSITEntries   int
	StoreSetCount int
	SQAccessLat   int64 // constant store-queue/store-buffer search latency

	// DistBits bounds the trainable store distance (6-bit field in the
	// paper's predictor entries).
	DistBits int

	// SilentStoreAwareUpdate trains the Store Distance Predictor on
	// every load re-execution (paper §IV-C a). When false, the original
	// policy applies: train only when the re-execution raises an
	// exception. The paper calls this policy "a double-edged sword"
	// (§VI-a) — the alt-silent experiment reproduces the comparison.
	SilentStoreAwareUpdate bool

	// UseTAGE replaces the two-table Store Distance Predictor with a
	// TAGE-like tagged geometric-history predictor (the adaptation of
	// Perais & Seznec's Instruction Distance Predictor the paper's
	// related-work section proposes, §VII).
	UseTAGE bool

	// InvalidationInterval, when positive, injects a remote-core cache
	// line invalidation every that-many cycles (multi-core consistency
	// traffic, paper §IV-F): a recently written line is dropped from the
	// hierarchy and its words enter the T-SSBF with SSNcommit+1, forcing
	// vulnerable in-flight loads to re-execute.
	InvalidationInterval int64

	// WarmupInstructions, when positive, discards the statistics of the
	// first N retired instructions: caches and predictors stay warm but
	// counters restart. The paper's checkpoints start cold and
	// compensate with 100M-instruction intervals (§V); explicit warmup
	// is the standard alternative for short intervals.
	WarmupInstructions int64

	// DisableFastForward turns off the idle-cycle fast-forward: when the
	// core proves a cycle changed nothing (fetch drained or stalled, no
	// uop ready, nothing retired, no store commit progress), it jumps
	// directly to the next deadline (event completion, store write-back,
	// front-end resume, re-execution finish, watchdog expiry) instead of
	// stepping empty cycles. The jump is exact — statistics are
	// bit-identical either way (see TestFastForwardEquivalence) — so the
	// switch exists only for that equivalence test and for debugging.
	DisableFastForward bool

	// Watchdog bounds runaway simulations (cycle budget + no-retire
	// deadlock window); see the Watchdog type.
	Watchdog Watchdog

	// Faults configures the deterministic fault injector used by the
	// hardening tests (zero value = injection disabled).
	Faults faults.Config
}

// Default returns the 8-wide baseline machine configuration for the given
// model (the reproduction's Table III analog).
func Default(model Model) Config {
	return Config{
		Model:       model,
		Consistency: TSO,

		FetchWidth:  8,
		RenameWidth: 8,
		IssueWidth:  8,
		RetireWidth: 8,
		ROBSize:     256,
		IQSize:      96,
		PhysRegs:    320,
		LoadPorts:   2,

		StoreBufferSize: 32,
		StoreCoalescing: true,

		FrontEndDepth:   6,
		RedirectPenalty: 6,
		RecoveryPenalty: 10,

		ALULat: 1, MulLat: 3, DivLat: 12, FPLat: 4, FPDivLat: 16,
		AGILat: 1, BranchLat: 1,

		Hierarchy: cache.DefaultHierarchyConfig(),
		TLB:       tlb.DefaultConfig(),
		BPred:     bpred.DefaultConfig(),
		TSSBF:     memdep.DefaultTSSBFConfig(),
		SDP:       memdep.DefaultSDPConfig(model == DMDP),

		SSITEntries:   4096,
		StoreSetCount: 256,
		SQAccessLat:   4,

		DistBits:               6,
		SilentStoreAwareUpdate: true,

		Watchdog: Watchdog{NoRetireWindow: DefaultNoRetireWindow},
	}
}

// WithWatchdog returns a copy with the watchdog bounds set (0 keeps a
// field at its unlimited/default behaviour).
func (c Config) WithWatchdog(maxCycles, noRetireWindow int64) Config {
	c.Watchdog = Watchdog{MaxCycles: maxCycles, NoRetireWindow: noRetireWindow}
	return c
}

// WithFastForward returns a copy with the idle-cycle fast-forward set
// (on by default; the off position exists for equivalence testing).
func (c Config) WithFastForward(on bool) Config {
	c.DisableFastForward = !on
	return c
}

// WithFaults returns a copy with the fault injector configured.
func (c Config) WithFaults(f faults.Config) Config {
	c.Faults = f
	return c
}

// WithSilentStorePolicy returns a copy with the silent-store-aware
// predictor update enabled or disabled (§VI-a ablation).
func (c Config) WithSilentStorePolicy(on bool) Config {
	c.SilentStoreAwareUpdate = on
	return c
}

// WithTAGE returns a copy using the TAGE-like Store Distance Predictor.
func (c Config) WithTAGE(on bool) Config {
	c.UseTAGE = on
	return c
}

// WithInvalidations returns a copy injecting a remote invalidation every
// interval cycles (0 disables).
func (c Config) WithInvalidations(interval int64) Config {
	c.InvalidationInterval = interval
	return c
}

// WithCoalescing returns a copy with store coalescing set (ablation).
func (c Config) WithCoalescing(on bool) Config {
	c.StoreCoalescing = on
	return c
}

// WithPrefetch returns a copy with the L1 next-line prefetcher set.
func (c Config) WithPrefetch(on bool) Config {
	c.Hierarchy.NextLinePrefetch = on
	return c
}

// WithTournamentBPred returns a copy using the bimodal+gshare tournament
// branch predictor.
func (c Config) WithTournamentBPred(on bool) Config {
	c.BPred.Tournament = on
	return c
}

// WithWarmup returns a copy that discards the first n retired
// instructions from the statistics.
func (c Config) WithWarmup(n int64) Config {
	c.WarmupInstructions = n
	return c
}

// MaxDist returns the largest trainable store distance.
func (c *Config) MaxDist() int64 { return 1<<c.DistBits - 1 }

// WithIssueWidth returns a copy with issue (and fetch/rename/retire)
// width set to w (the paper's 4-issue alternative).
func (c Config) WithIssueWidth(w int) Config {
	c.FetchWidth, c.RenameWidth, c.IssueWidth, c.RetireWidth = w, w, w, w
	return c
}

// WithROB returns a copy with the ROB size set (the 512-entry
// alternative). The IQ scales with it.
func (c Config) WithROB(n int) Config {
	c.ROBSize = n
	c.IQSize = n * 3 / 8
	return c
}

// WithPhysRegs returns a copy with the physical register file resized
// (the paper's 320 -> 160 pressure experiment).
func (c Config) WithPhysRegs(n int) Config {
	c.PhysRegs = n
	return c
}

// WithStoreBuffer returns a copy with the store buffer resized (Fig. 14).
func (c Config) WithStoreBuffer(n int) Config {
	c.StoreBufferSize = n
	return c
}

// WithConsistency returns a copy using the given consistency model.
func (c Config) WithConsistency(m Consistency) Config {
	c.Consistency = m
	return c
}

// Validate reports configuration errors a user build could hit.
func (c *Config) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.FetchWidth > 0 && c.RenameWidth > 0 && c.IssueWidth > 0 && c.RetireWidth > 0, "pipeline widths must be positive"},
		{c.ROBSize > 0 && c.IQSize > 0, "ROB and IQ must be positive"},
		{c.PhysRegs >= 64, "physical register file too small (need >= 64)"},
		{c.StoreBufferSize > 0, "store buffer must have at least one entry"},
		{c.LoadPorts > 0, "need at least one load port"},
		{c.DistBits > 0 && c.DistBits < 32, "DistBits out of range"},
		{c.Watchdog.MaxCycles >= 0 && c.Watchdog.NoRetireWindow >= 0, "watchdog bounds must be non-negative"},
		{c.Faults.Valid(), "fault injection rates must be probabilities in [0, 1]"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &Error{Msg: ch.msg}
		}
	}
	return nil
}

// Error is a configuration validation error.
type Error struct{ Msg string }

func (e *Error) Error() string { return "config: " + e.Msg }
