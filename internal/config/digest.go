package config

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"
)

// Digest is a stable content hash over every Config field. Two configs
// share a digest iff they describe the same machine, so run caches keyed
// by digest deduplicate identical simulations regardless of how callers
// label them. The hash covers nested structs recursively and includes
// field names, so adding, removing or renaming a field changes every
// digest (stale cross-build comparisons fail loudly rather than alias).
type Digest [sha256.Size]byte

// String renders the digest as hex (for logs and test failures).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns the first 12 hex digits, enough to disambiguate runs in
// human-facing tables.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// Digest returns the canonical content hash of the configuration.
func (c *Config) Digest() Digest {
	h := sha256.New()
	hashValue(h, reflect.ValueOf(*c))
	var d Digest
	h.Sum(d[:0])
	return d
}

// hashValue canonically serializes v into h. Only value kinds that can
// appear in a machine description are supported; anything reference-like
// (pointer, map, func, chan, interface) would make the digest unstable
// and panics so the config change that introduced it is caught in tests.
func hashValue(h hash.Hash, v reflect.Value) {
	var buf [8]byte
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			buf[0] = 1
		}
		h.Write(buf[:1])
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Int()))
		h.Write(buf[:])
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		binary.LittleEndian.PutUint64(buf[:], v.Uint())
		h.Write(buf[:])
	case reflect.Float32, reflect.Float64:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		h.Write(buf[:])
	case reflect.String:
		s := v.String()
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		fmt.Fprint(h, s)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			fmt.Fprint(h, t.Field(i).Name)
			hashValue(h, v.Field(i))
		}
	case reflect.Array, reflect.Slice:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Len()))
		h.Write(buf[:])
		for i := 0; i < v.Len(); i++ {
			hashValue(h, v.Index(i))
		}
	default:
		panic("config: Digest cannot hash field kind " + v.Kind().String())
	}
}
