package config

import (
	"reflect"
	"testing"
)

func TestDigestStableAndEqual(t *testing.T) {
	a := Default(DMDP)
	b := Default(DMDP)
	if a.Digest() != b.Digest() {
		t.Fatal("identical configs produced different digests")
	}
	if a.Digest() != a.Digest() {
		t.Fatal("digest is not deterministic across calls")
	}
	if a.Digest().String() == "" || a.Digest().Short() == "" {
		t.Fatal("digest renders empty")
	}
}

func TestDigestDistinguishesModels(t *testing.T) {
	seen := map[Digest]Model{}
	for _, m := range []Model{Baseline, NoSQ, DMDP, Perfect, FnF} {
		c := Default(m)
		d := c.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("models %v and %v share a digest", prev, m)
		}
		seen[d] = m
	}
}

// TestDigestCoversEveryField perturbs each leaf field of a default config
// and requires the digest to change: a field the hash skipped would let
// two different machines alias in the run cache.
func TestDigestCoversEveryField(t *testing.T) {
	base := Default(DMDP)
	baseDigest := base.Digest()

	var walk func(t *testing.T, v reflect.Value, path string)
	walk = func(t *testing.T, v reflect.Value, path string) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(t, v.Field(i), path+"."+v.Type().Field(i).Name)
			}
		case reflect.Bool:
			old := v.Bool()
			v.SetBool(!old)
			if base.Digest() == baseDigest {
				t.Errorf("%s: digest ignores field", path)
			}
			v.SetBool(old)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			old := v.Int()
			v.SetInt(old + 1)
			if base.Digest() == baseDigest {
				t.Errorf("%s: digest ignores field", path)
			}
			v.SetInt(old)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			old := v.Uint()
			v.SetUint(old + 1)
			if base.Digest() == baseDigest {
				t.Errorf("%s: digest ignores field", path)
			}
			v.SetUint(old)
		case reflect.Float32, reflect.Float64:
			old := v.Float()
			v.SetFloat(old + 0.5)
			if base.Digest() == baseDigest {
				t.Errorf("%s: digest ignores field", path)
			}
			v.SetFloat(old)
		case reflect.String:
			old := v.String()
			v.SetString(old + "x")
			if base.Digest() == baseDigest {
				t.Errorf("%s: digest ignores field", path)
			}
			v.SetString(old)
		default:
			t.Errorf("%s: unexpected field kind %v in Config", path, v.Kind())
		}
	}
	walk(t, reflect.ValueOf(&base).Elem(), "Config")

	if base.Digest() != baseDigest {
		t.Fatal("perturbation walk did not restore the config")
	}
}

func TestDigestWithHelpers(t *testing.T) {
	base := Default(DMDP)
	variants := []Config{
		base.WithStoreBuffer(16),
		base.WithIssueWidth(4),
		base.WithROB(512),
		base.WithPhysRegs(160),
		base.WithConsistency(RMO),
		base.WithTAGE(true),
		base.WithCoalescing(false),
		base.WithPrefetch(true),
		base.WithSilentStorePolicy(false),
		base.WithInvalidations(2000),
		base.WithWarmup(1000),
		base.WithFastForward(false),
	}
	seen := map[Digest]int{base.Digest(): -1}
	for i := range variants {
		d := variants[i].Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %d aliases variant %d", i, prev)
		}
		seen[d] = i
	}
}
