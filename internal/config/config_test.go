package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	for _, m := range []Model{Baseline, NoSQ, DMDP, Perfect} {
		cfg := Default(m)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if cfg.Model != m {
			t.Fatalf("model not set")
		}
	}
}

func TestBiasedConfidenceOnlyForDMDP(t *testing.T) {
	if !Default(DMDP).SDP.Biased {
		t.Fatal("DMDP must use the biased (divide-by-two) confidence update")
	}
	if Default(NoSQ).SDP.Biased {
		t.Fatal("NoSQ must use the balanced (-1) confidence update")
	}
}

func TestVariants(t *testing.T) {
	base := Default(DMDP)
	if c := base.WithIssueWidth(4); c.IssueWidth != 4 || c.FetchWidth != 4 || c.RetireWidth != 4 {
		t.Fatal("WithIssueWidth")
	}
	if c := base.WithROB(512); c.ROBSize != 512 || c.IQSize <= base.IQSize {
		t.Fatal("WithROB")
	}
	if c := base.WithPhysRegs(160); c.PhysRegs != 160 {
		t.Fatal("WithPhysRegs")
	}
	if c := base.WithStoreBuffer(16); c.StoreBufferSize != 16 {
		t.Fatal("WithStoreBuffer")
	}
	if c := base.WithConsistency(RMO); c.Consistency != RMO {
		t.Fatal("WithConsistency")
	}
	// Variants must not mutate the receiver.
	if base.IssueWidth != 8 || base.ROBSize != 256 {
		t.Fatal("variant mutated the base config")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.FetchWidth = 0; return c },
		func(c Config) Config { c.ROBSize = 0; return c },
		func(c Config) Config { c.PhysRegs = 10; return c },
		func(c Config) Config { c.StoreBufferSize = 0; return c },
		func(c Config) Config { c.LoadPorts = 0; return c },
		func(c Config) Config { c.DistBits = 0; return c },
	}
	for i, f := range bad {
		cfg := f(Default(DMDP))
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMaxDist(t *testing.T) {
	cfg := Default(DMDP)
	if cfg.MaxDist() != 63 {
		t.Fatalf("6-bit distance field: MaxDist = %d", cfg.MaxDist())
	}
}

func TestStringers(t *testing.T) {
	if Baseline.String() != "baseline" || DMDP.String() != "dmdp" ||
		NoSQ.String() != "nosq" || Perfect.String() != "perfect" {
		t.Fatal("model names")
	}
	if TSO.String() != "tso" || RMO.String() != "rmo" {
		t.Fatal("consistency names")
	}
}
