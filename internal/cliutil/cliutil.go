// Package cliutil holds flag helpers shared by the dmdp command-line
// tools, so the three binaries parse identical syntax for identical
// concepts (instruction budgets, artifact-cache configuration).
package cliutil

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"dmdp/internal/artifact"
	"dmdp/internal/sampling"
)

// ParseInstr parses an instruction-budget flag. Accepted forms:
// plain decimal ("300000"), Go-style underscore grouping ("300_000"),
// and a decimal with a k/K (×1e3), m/M (×1e6) or g/G/b/B (×1e9) suffix
// ("300k", "3M", "2G", "1b"). The budget must be positive and the scaled
// value must fit in int64 — huge inputs are rejected, never silently
// wrapped.
func ParseInstr(s string) (int64, error) {
	in := strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(in, "k"), strings.HasSuffix(in, "K"):
		mult, in = 1_000, in[:len(in)-1]
	case strings.HasSuffix(in, "m"), strings.HasSuffix(in, "M"):
		mult, in = 1_000_000, in[:len(in)-1]
	case strings.HasSuffix(in, "g"), strings.HasSuffix(in, "G"),
		strings.HasSuffix(in, "b"), strings.HasSuffix(in, "B"):
		mult, in = 1_000_000_000, in[:len(in)-1]
	}
	digits := strings.ReplaceAll(in, "_", "")
	// Reject forms ParseInt would take but we don't document, and
	// degenerate grouping like "_300" or "300__000".
	if digits == "" || strings.HasPrefix(in, "_") || strings.HasSuffix(in, "_") ||
		strings.Contains(in, "__") || strings.ContainsAny(in, "+- ") {
		return 0, fmt.Errorf("bad instruction budget %q", s)
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad instruction budget %q", s)
	}
	if n <= 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("instruction budget %q out of range", s)
	}
	return n * mult, nil
}

// ParseSampleSpec parses a -sample flag value:
//
//	auto            BBV phase detection with the default phase count
//	auto:K          BBV phase detection into at most K phases
//	COUNTxLEN       COUNT systematic intervals of LEN entries
//
// Either form takes an optional +WARMUP suffix (warm-up entries prepended
// per interval, excluded from statistics). COUNT, LEN, K and WARMUP all
// accept ParseInstr budget syntax ("10x1m+200k").
func ParseSampleSpec(s string) (sampling.Spec, error) {
	var spec sampling.Spec
	in := strings.TrimSpace(s)
	if in == "" {
		return spec, fmt.Errorf("empty sample spec")
	}
	if body, warm, ok := strings.Cut(in, "+"); ok {
		w, err := ParseInstr(warm)
		if err != nil || w > 1<<31 {
			return spec, fmt.Errorf("bad sample warmup in %q", s)
		}
		spec.Warmup, in = int(w), body
	}
	if in == "auto" || strings.HasPrefix(in, "auto:") {
		spec.Auto = true
		if k, ok := strings.CutPrefix(in, "auto:"); ok {
			n, err := ParseInstr(k)
			if err != nil || n > 1<<20 {
				return spec, fmt.Errorf("bad phase count in %q", s)
			}
			spec.K = int(n)
		}
		return spec, nil
	}
	count, length, ok := strings.Cut(in, "x")
	if !ok {
		return spec, fmt.Errorf("bad sample spec %q (want auto, auto:K or COUNTxLEN, optionally +WARMUP)", s)
	}
	c, err := ParseInstr(count)
	if err != nil || c > 1<<20 {
		return spec, fmt.Errorf("bad interval count in %q", s)
	}
	l, err := ParseInstr(length)
	if err != nil || l > 1<<31 {
		return spec, fmt.Errorf("bad interval length in %q", s)
	}
	spec.Count, spec.Len = int(c), int(l)
	return spec, nil
}

// CacheFlags carries the artifact-cache flag values registered by
// RegisterCache.
type CacheFlags struct {
	Mode string
	Dir  string
	Max  int64
}

// RegisterCache registers the -cache, -cachedir and -cachemax flags on
// fs with the shared defaults (cache off; os.UserCacheDir()/dmdp; 2 GiB
// cap).
func RegisterCache(fs *flag.FlagSet) *CacheFlags {
	c := &CacheFlags{}
	fs.StringVar(&c.Mode, "cache", "off",
		"persistent artifact cache: off | ro | rw | verify (verify re-simulates hits and fails on mismatch)")
	fs.StringVar(&c.Dir, "cachedir", artifact.DefaultDir(), "artifact cache directory")
	fs.Int64Var(&c.Max, "cachemax", artifact.DefaultMaxBytes,
		"artifact cache size cap in bytes (LRU-evicted)")
	return c
}

// Open opens the artifact store the flags describe (nil store when
// -cache off). Write failures — an unwritable -cachedir, ENOSPC during
// publish — degrade the store to read-only with a one-time warning on
// stderr instead of failing the run (stdout stays byte-identical).
func (c *CacheFlags) Open() (*artifact.Store, error) {
	mode, err := artifact.ParseMode(c.Mode)
	if err != nil {
		return nil, err
	}
	store, err := artifact.Open(c.Dir, mode, c.Max)
	if err != nil {
		return nil, err
	}
	store.SetWarnFn(func(msg string) { fmt.Fprintln(os.Stderr, msg) })
	return store, nil
}
