// Package cliutil holds flag helpers shared by the dmdp command-line
// tools, so the three binaries parse identical syntax for identical
// concepts (instruction budgets, artifact-cache configuration).
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dmdp/internal/artifact"
)

// ParseInstr parses an instruction-budget flag. Accepted forms:
// plain decimal ("300000"), Go-style underscore grouping ("300_000"),
// and a decimal with a k/K (×1e3) or m/M (×1e6) suffix ("300k", "3M").
// The budget must be positive.
func ParseInstr(s string) (int64, error) {
	in := strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(in, "k"), strings.HasSuffix(in, "K"):
		mult, in = 1_000, in[:len(in)-1]
	case strings.HasSuffix(in, "m"), strings.HasSuffix(in, "M"):
		mult, in = 1_000_000, in[:len(in)-1]
	}
	digits := strings.ReplaceAll(in, "_", "")
	// Reject forms ParseInt would take but we don't document, and
	// degenerate grouping like "_300" or "300__000".
	if digits == "" || strings.HasPrefix(in, "_") || strings.HasSuffix(in, "_") ||
		strings.Contains(in, "__") || strings.ContainsAny(in, "+- ") {
		return 0, fmt.Errorf("bad instruction budget %q", s)
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad instruction budget %q", s)
	}
	if n <= 0 || n > (1<<62)/mult {
		return 0, fmt.Errorf("instruction budget %q out of range", s)
	}
	return n * mult, nil
}

// CacheFlags carries the artifact-cache flag values registered by
// RegisterCache.
type CacheFlags struct {
	Mode string
	Dir  string
	Max  int64
}

// RegisterCache registers the -cache, -cachedir and -cachemax flags on
// fs with the shared defaults (cache off; os.UserCacheDir()/dmdp; 2 GiB
// cap).
func RegisterCache(fs *flag.FlagSet) *CacheFlags {
	c := &CacheFlags{}
	fs.StringVar(&c.Mode, "cache", "off",
		"persistent artifact cache: off | ro | rw | verify (verify re-simulates hits and fails on mismatch)")
	fs.StringVar(&c.Dir, "cachedir", artifact.DefaultDir(), "artifact cache directory")
	fs.Int64Var(&c.Max, "cachemax", artifact.DefaultMaxBytes,
		"artifact cache size cap in bytes (LRU-evicted)")
	return c
}

// Open opens the artifact store the flags describe (nil store when
// -cache off). Write failures — an unwritable -cachedir, ENOSPC during
// publish — degrade the store to read-only with a one-time warning on
// stderr instead of failing the run (stdout stays byte-identical).
func (c *CacheFlags) Open() (*artifact.Store, error) {
	mode, err := artifact.ParseMode(c.Mode)
	if err != nil {
		return nil, err
	}
	store, err := artifact.Open(c.Dir, mode, c.Max)
	if err != nil {
		return nil, err
	}
	store.SetWarnFn(func(msg string) { fmt.Fprintln(os.Stderr, msg) })
	return store, nil
}
