package cliutil

import (
	"flag"
	"testing"

	"dmdp/internal/sampling"
)

func TestParseInstr(t *testing.T) {
	good := map[string]int64{
		"1":                   1,
		"300000":              300_000,
		"300_000":             300_000,
		"1_000_000":           1_000_000,
		"300k":                300_000,
		"300K":                300_000,
		"3m":                  3_000_000,
		"3M":                  3_000_000,
		"1_5k":                15_000, // grouping is cosmetic, not positional
		" 20000 ":             20_000,
		"2g":                  2_000_000_000,
		"2G":                  2_000_000_000,
		"1b":                  1_000_000_000,
		"1B":                  1_000_000_000,
		"100M":                100_000_000,
		"9223372036854775807": 9_223_372_036_854_775_807, // exactly MaxInt64
	}
	for in, want := range good {
		got, err := ParseInstr(in)
		if err != nil || got != want {
			t.Errorf("ParseInstr(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	bad := []string{
		"", "0", "-5", "+5", "abc", "300kk", "k", "_300", "300_", "3__0",
		"1.5k", "0x10", "300 000", "1e6", "-1k", "9223372036854775807k",
		"g", "b", "-1g",
		// Silent int64 overflow: each of these wraps if multiplied
		// without the bound check.
		"9223372036854776k", "9223372036854775808", "10000000000000000000",
		"9300000000000000000", "19000000000g", "9223372036854b",
	}
	for _, in := range bad {
		if n, err := ParseInstr(in); err == nil {
			t.Errorf("ParseInstr(%q) = %d, want error", in, n)
		}
	}
	// The largest representable g-suffixed budget must still parse.
	if n, err := ParseInstr("9223372036g"); err != nil || n != 9_223_372_036_000_000_000 {
		t.Errorf("ParseInstr(9223372036g) = %d, %v", n, err)
	}
}

func TestParseSampleSpec(t *testing.T) {
	good := map[string]sampling.Spec{
		"auto":        {Auto: true},
		"auto:4":      {Auto: true, K: 4},
		"auto:12+2k":  {Auto: true, K: 12, Warmup: 2000},
		"auto+500":    {Auto: true, Warmup: 500},
		"10x1000":     {Count: 10, Len: 1000},
		"10x1m":       {Count: 10, Len: 1_000_000},
		"4x2k+500":    {Count: 4, Len: 2000, Warmup: 500},
		"100x1m+200k": {Count: 100, Len: 1_000_000, Warmup: 200_000},
		" 3x100 ":     {Count: 3, Len: 100},
	}
	for in, want := range good {
		got, err := ParseSampleSpec(in)
		if err != nil || got != want {
			t.Errorf("ParseSampleSpec(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	bad := []string{
		"", "x", "10x", "x1000", "10x-5", "0x100", "10x0", "auto:",
		"auto:0", "10x1000+", "autox3", "10x1000+bad", "auto:9999999999",
		"10y1000",
	}
	for _, in := range bad {
		if spec, err := ParseSampleSpec(in); err == nil {
			t.Errorf("ParseSampleSpec(%q) = %+v, want error", in, spec)
		}
	}
}

func TestRegisterCacheDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterCache(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Mode != "off" || c.Dir == "" || c.Max <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	s, err := c.Open()
	if s != nil || err != nil {
		t.Fatalf("off mode should open a nil store, got %v, %v", s, err)
	}
	if err := fs.Parse([]string{"-cache", "always"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestRegisterCacheRW(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterCache(fs)
	if err := fs.Parse([]string{"-cache", "rw", "-cachedir", t.TempDir(), "-cachemax", "1000000"}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Open()
	if err != nil || s == nil {
		t.Fatalf("Open: %v, %v", s, err)
	}
	if s.Mode().String() != "rw" {
		t.Fatalf("mode %v", s.Mode())
	}
}
