package cliutil

import (
	"flag"
	"testing"
)

func TestParseInstr(t *testing.T) {
	good := map[string]int64{
		"1":         1,
		"300000":    300_000,
		"300_000":   300_000,
		"1_000_000": 1_000_000,
		"300k":      300_000,
		"300K":      300_000,
		"3m":        3_000_000,
		"3M":        3_000_000,
		"1_5k":      15_000, // grouping is cosmetic, not positional
		" 20000 ":   20_000,
	}
	for in, want := range good {
		got, err := ParseInstr(in)
		if err != nil || got != want {
			t.Errorf("ParseInstr(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	bad := []string{
		"", "0", "-5", "+5", "abc", "300kk", "k", "_300", "300_", "3__0",
		"1.5k", "0x10", "300 000", "1e6", "-1k", "9223372036854775807k",
	}
	for _, in := range bad {
		if n, err := ParseInstr(in); err == nil {
			t.Errorf("ParseInstr(%q) = %d, want error", in, n)
		}
	}
}

func TestRegisterCacheDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterCache(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Mode != "off" || c.Dir == "" || c.Max <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	s, err := c.Open()
	if s != nil || err != nil {
		t.Fatalf("off mode should open a nil store, got %v, %v", s, err)
	}
	if err := fs.Parse([]string{"-cache", "always"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestRegisterCacheRW(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterCache(fs)
	if err := fs.Parse([]string{"-cache", "rw", "-cachedir", t.TempDir(), "-cachemax", "1000000"}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Open()
	if err != nil || s == nil {
		t.Fatalf("Open: %v, %v", s, err)
	}
	if s.Mode().String() != "rw" {
		t.Fatalf("mode %v", s.Mode())
	}
}
