package faults

import "testing"

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !c.Valid() {
		t.Fatal("zero config must be valid")
	}
	i := NewInjector(c)
	for k := 0; k < 100; k++ {
		if i.FlipPrediction() || i.ForceLowConf() || i.CorruptPredicate() ||
			i.InvalidateLine() || i.CorruptValue() {
			t.Fatal("disabled injector fired")
		}
	}
	if i.Counts.Total() != 0 {
		t.Fatalf("disabled injector counted %d faults", i.Counts.Total())
	}
	if i.WantsInvalidations() {
		t.Fatal("disabled injector wants invalidations")
	}
}

func TestValid(t *testing.T) {
	for _, c := range []Config{
		{PredictionFlipRate: -0.1},
		{ForceLowConfRate: 1.5},
		{ValueCorruptRate: 2},
	} {
		if c.Valid() {
			t.Errorf("%+v must be invalid", c)
		}
	}
	if !(Config{PredictionFlipRate: 1, ValueCorruptRate: 0.5}).Valid() {
		t.Error("in-range rates must be valid")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, PredictionFlipRate: 0.3, ValueCorruptRate: 0.1}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for k := 0; k < 1000; k++ {
		if a.FlipPrediction() != b.FlipPrediction() {
			t.Fatalf("flip decision %d diverged between same-seed injectors", k)
		}
		if a.CorruptValue() != b.CorruptValue() {
			t.Fatalf("corrupt decision %d diverged between same-seed injectors", k)
		}
	}
	if a.Counts != b.Counts {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts, b.Counts)
	}
	if a.Counts.PredictionFlips == 0 || a.Counts.ValueCorruptions == 0 {
		t.Fatalf("rates 0.3/0.1 over 1000 draws fired nothing: %+v", a.Counts)
	}
}

// Disabled classes must not consume PRNG state: interleaving calls to a
// zero-rate class cannot shift the decision stream of an active class.
func TestDisabledClassConsumesNoState(t *testing.T) {
	cfg := Config{Seed: 7, PredictionFlipRate: 0.5}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for k := 0; k < 500; k++ {
		b.ForceLowConf() // rate 0: must be a no-op on the stream
		b.CorruptValue()
		if a.FlipPrediction() != b.FlipPrediction() {
			t.Fatalf("decision %d shifted by disabled-class calls", k)
		}
	}
}

func TestSeedZeroBehavesAsOne(t *testing.T) {
	a := NewInjector(Config{Seed: 0, PredictionFlipRate: 0.5})
	b := NewInjector(Config{Seed: 1, PredictionFlipRate: 0.5})
	for k := 0; k < 100; k++ {
		if a.FlipPrediction() != b.FlipPrediction() {
			t.Fatalf("seed 0 and seed 1 diverged at decision %d", k)
		}
	}
}

func TestCountsTally(t *testing.T) {
	i := NewInjector(Config{Seed: 3, PredictionFlipRate: 1, PredicateCorruptRate: 1, LineInvalidateRate: 1})
	for k := 0; k < 5; k++ {
		i.FlipPrediction()
		i.CorruptPredicate()
	}
	i.InvalidateLine()
	want := Counts{PredictionFlips: 5, PredicateCorruptions: 5, LineInvalidations: 1}
	if i.Counts != want {
		t.Fatalf("counts %+v, want %+v", i.Counts, want)
	}
	if i.Counts.Total() != 11 {
		t.Fatalf("total %d, want 11", i.Counts.Total())
	}
	if !i.WantsInvalidations() {
		t.Fatal("invalidation class active but WantsInvalidations false")
	}
}
