// Package faults provides deterministic, seeded fault injection for the
// timing core's hardening tests.
//
// Two families of faults exist. Benign faults (prediction flips, forced
// low confidence, predicate corruption, cache line invalidations) attack
// the *speculative* machinery: the SVW/T-SSBF verification must absorb
// them and still converge to the architecturally correct final state —
// only IPC may change. Architectural corruption (value corruption at
// retire) attacks the *committed* state: the commit-time oracle must
// catch it and abort the run with a structured diagnostic.
//
// The injector is a plain seeded PRNG consulted at fixed points in the
// pipeline, so a given (program, config, seed) triple always injects the
// same faults at the same places — failures reproduce exactly.
package faults

import "math/rand"

// Config enables and rates the injector's fault classes. The zero value
// disables injection entirely. Rates are probabilities in [0, 1],
// evaluated once per opportunity (per prediction, per CMP, per cycle,
// per retiring load).
type Config struct {
	// Seed initializes the injector PRNG (0 behaves as 1).
	Seed int64

	// Benign faults: the recovery machinery must converge to the golden
	// architectural state.

	// PredictionFlipRate perturbs a store-distance prediction so the
	// load targets the wrong store (per SDP hit).
	PredictionFlipRate float64
	// ForceLowConfRate demotes a confident prediction to low confidence,
	// forcing the delay/predication path (per confident prediction).
	ForceLowConfRate float64
	// PredicateCorruptRate flips a computed CMOV predicate so the wrong
	// predication arm publishes the value (per CMP completion).
	PredicateCorruptRate float64
	// LineInvalidateRate invalidates a recently written cache line, as
	// remote-core consistency traffic would (per cycle).
	LineInvalidateRate float64

	// Architectural corruption: must be caught by the commit-time
	// oracle, never silently retired.

	// ValueCorruptRate corrupts a load's result at the moment it retires
	// (per retiring load).
	ValueCorruptRate float64
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.PredictionFlipRate > 0 || c.ForceLowConfRate > 0 ||
		c.PredicateCorruptRate > 0 || c.LineInvalidateRate > 0 ||
		c.ValueCorruptRate > 0
}

// Valid reports whether every rate is a probability.
func (c Config) Valid() bool {
	for _, r := range []float64{c.PredictionFlipRate, c.ForceLowConfRate,
		c.PredicateCorruptRate, c.LineInvalidateRate, c.ValueCorruptRate} {
		if r < 0 || r > 1 {
			return false
		}
	}
	return true
}

// Counts tallies the faults actually injected during one run; it is
// copied into the run's Stats so experiments can report them.
type Counts struct {
	PredictionFlips      int64
	ForcedLowConf        int64
	PredicateCorruptions int64
	LineInvalidations    int64
	ValueCorruptions     int64
}

// Total returns the number of faults injected across all classes.
func (c Counts) Total() int64 {
	return c.PredictionFlips + c.ForcedLowConf + c.PredicateCorruptions +
		c.LineInvalidations + c.ValueCorruptions
}

// Injector is one run's deterministic fault source. Not safe for
// concurrent use; each core owns its own injector.
type Injector struct {
	cfg Config
	rng *rand.Rand

	// Counts tallies injected faults by class.
	Counts Counts
}

// NewInjector builds an injector for cfg.
func NewInjector(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// roll draws one decision at the given rate. Disabled classes do not
// consume PRNG state: a given (config, seed) pair always draws the same
// decision stream, which is what makes failures reproduce exactly.
func (i *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return i.rng.Float64() < rate
}

// FlipPrediction reports whether to perturb this store-distance
// prediction.
func (i *Injector) FlipPrediction() bool {
	if i.roll(i.cfg.PredictionFlipRate) {
		i.Counts.PredictionFlips++
		return true
	}
	return false
}

// ForceLowConf reports whether to demote this confident prediction.
func (i *Injector) ForceLowConf() bool {
	if i.roll(i.cfg.ForceLowConfRate) {
		i.Counts.ForcedLowConf++
		return true
	}
	return false
}

// CorruptPredicate reports whether to flip this CMOV predicate.
func (i *Injector) CorruptPredicate() bool {
	if i.roll(i.cfg.PredicateCorruptRate) {
		i.Counts.PredicateCorruptions++
		return true
	}
	return false
}

// InvalidateLine reports whether to invalidate a recently written cache
// line this cycle.
func (i *Injector) InvalidateLine() bool {
	if i.roll(i.cfg.LineInvalidateRate) {
		i.Counts.LineInvalidations++
		return true
	}
	return false
}

// CorruptValue reports whether to corrupt this load's retiring value.
func (i *Injector) CorruptValue() bool {
	if i.roll(i.cfg.ValueCorruptRate) {
		i.Counts.ValueCorruptions++
		return true
	}
	return false
}

// WantsInvalidations reports whether the line-invalidation class is
// active (the core then tracks recently written lines).
func (i *Injector) WantsInvalidations() bool { return i.cfg.LineInvalidateRate > 0 }
