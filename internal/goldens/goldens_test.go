// Package goldens pins the simulator's behavior: the committed golden
// file under testdata/goldens/ holds one canonical Stats digest line per
// (proxy, model) pair, and this test fails on any drift. A behavioral
// change (however intentional) must be acknowledged by regenerating the
// file with
//
//	go test ./internal/goldens -run TestGoldenStatsDigests -update
//
// and committing the diff — which makes every digest change visible in
// review instead of discovered ad hoc inside individual PRs.
package goldens

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden digest file")

// goldenBudget is deliberately modest: large enough that every proxy
// reaches steady state and every model's mechanisms fire, small enough
// that the full 21x5 sweep stays a few seconds of `go test ./...`.
const goldenBudget = 50_000

const goldenPath = "testdata/goldens/statsdigest_50k.txt"

var models = []config.Model{
	config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF,
}

func renderAll(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "# golden statsdigest: %d proxies x %d models, %d-instruction budget\n",
		len(workload.Names()), len(models), goldenBudget)
	fmt.Fprintf(&b, "# regenerate: go test ./internal/goldens -run TestGoldenStatsDigests -update\n")
	for _, name := range workload.Names() {
		spec, ok := workload.Get(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		tr, err := spec.BuildTrace(goldenBudget)
		if err != nil {
			t.Fatalf("%s: trace: %v", name, err)
		}
		for _, m := range models {
			c, err := core.New(config.Default(m), tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m, err)
			}
			st, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m, err)
			}
			fmt.Fprintf(&b, "%-12s %-8s %s\n", name, m, st.DigestLine())
		}
	}
	return b.String()
}

func TestGoldenStatsDigests(t *testing.T) {
	got := renderAll(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (%v); generate it with -update", err)
	}
	if got == string(want) {
		return
	}
	// Drift: report the first few differing lines, not a wall of text.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	diffs := 0
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g == w {
			continue
		}
		if diffs < 5 {
			t.Errorf("line %d drifted:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
		diffs++
	}
	t.Fatalf("%d line(s) drifted from %s; if the behavior change is intended, regenerate with -update and commit the diff", diffs, goldenPath)
}
