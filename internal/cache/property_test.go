package cache

import (
	"math/rand"
	"testing"
)

// refCache is a straightforward reference model: per-set LRU lists.
type refCache struct {
	lineBytes int
	ways      int
	sets      map[uint32][]uint32 // set index -> line addrs, MRU first
	numSets   uint32
}

func newRefCache(cfg Config) *refCache {
	return &refCache{
		lineBytes: cfg.LineBytes,
		ways:      cfg.Ways,
		numSets:   uint32(cfg.SizeBytes / cfg.LineBytes / cfg.Ways),
		sets:      make(map[uint32][]uint32),
	}
}

func (r *refCache) access(addr uint32) bool {
	line := addr &^ uint32(r.lineBytes-1)
	si := (line / uint32(r.lineBytes)) % r.numSets
	set := r.sets[si]
	for i, l := range set {
		if l == line {
			// Move to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	// Miss: insert at MRU, evict LRU.
	set = append([]uint32{line}, set...)
	if len(set) > r.ways {
		set = set[:r.ways]
	}
	r.sets[si] = set
	return false
}

// TestCacheMatchesReferenceLRU drives the cache and the reference model
// with identical random access streams and requires identical hit/miss
// sequences.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	cfg := Config{SizeBytes: 2048, LineBytes: 64, Ways: 2, Latency: 1}
	c := NewCache(cfg)
	ref := newRefCache(cfg)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		addr := uint32(r.Intn(1 << 14))
		hit, _, _ := c.access(addr, r.Intn(3) == 0, true)
		want := ref.access(addr)
		if hit != want {
			t.Fatalf("access %d addr 0x%x: cache hit=%v, reference=%v", i, addr, hit, want)
		}
	}
	if c.Accesses != 20000 {
		t.Fatalf("accesses %d", c.Accesses)
	}
}

// TestHierarchyMonotoneTime: completion times never precede the request.
func TestHierarchyMonotoneTime(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	r := rand.New(rand.NewSource(5))
	now := int64(0)
	for i := 0; i < 5000; i++ {
		addr := uint32(r.Intn(1 << 22))
		done := h.Access(now, addr, r.Intn(4) == 0)
		if done < now {
			t.Fatalf("completion %d before request %d", done, now)
		}
		if r.Intn(2) == 0 {
			now = done
		} else {
			now += int64(r.Intn(10))
		}
	}
}
