// Package cache models the data cache hierarchy: a VIPT L1 (the paper
// reads the data and tag arrays in parallel with the TLB lookup, so
// non-bypassing loads pay no extra translation latency) backed by a
// unified L2 and DRAM, with MSHR-style merging of outstanding misses.
// Timing is returned as absolute completion cycles so the trace-driven
// core can schedule wakeups deterministically.
package cache

import (
	"dmdp/internal/dram"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int64 // access (hit) latency in cycles
	MSHRs     int   // max outstanding misses (0 = unlimited)
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	used  int64 // LRU timestamp
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint32
	tick     int64

	// Stats.
	Accesses, Misses, Evictions, Writebacks, Invalidations int64
}

// NewCache builds a cache level; size/line/ways must be powers of two and
// consistent.
func NewCache(cfg Config) *Cache {
	numSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, numSets),
		setShift: uint(log2(cfg.LineBytes)),
		setMask:  uint32(numSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func (c *Cache) setIndex(addr uint32) uint32 { return addr >> c.setShift & c.setMask }
func (c *Cache) tagOf(addr uint32) uint32    { return addr >> c.setShift / uint32(len(c.sets)) }

// LineAddr returns the line-aligned address.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ uint32(c.cfg.LineBytes-1)
}

// Lookup probes without modifying replacement state.
func (c *Cache) Lookup(addr uint32) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// access touches the line; returns hit and, on fill, whether a dirty line
// was evicted (with its reconstructed address for the writeback).
func (c *Cache) access(addr uint32, write bool, fill bool) (hit bool, wbAddr uint32, wb bool) {
	c.tick++
	c.Accesses++
	si := c.setIndex(addr)
	set := c.sets[si]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.tick
			if write {
				set[i].dirty = true
			}
			return true, 0, false
		}
	}
	c.Misses++
	if !fill {
		return false, 0, false
	}
	// Fill: evict LRU.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid {
		c.Evictions++
		if set[victim].dirty {
			c.Writebacks++
			wb = true
			wbAddr = (set[victim].tag*uint32(len(c.sets)) + si) << c.setShift
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, used: c.tick}
	return false, wbAddr, wb
}

// Invalidate drops the line containing addr (consistency hook). It
// reports whether the line was present.
func (c *Cache) Invalidate(addr uint32) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = line{}
			c.Invalidations++
			return true
		}
	}
	return false
}

// MissRate returns Misses/Accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// mshr tracks one outstanding line fill.
type mshr struct {
	lineAddr uint32
	readyAt  int64
}

// Hierarchy is the L1D + L2 + DRAM stack used by the cores.
type Hierarchy struct {
	L1D  *Cache
	L2   *Cache
	DRAM *dram.DRAM

	outstanding []mshr
	maxMSHRs    int
	prefetch    bool

	// Stats.
	L1Hits, L2Hits, DRAMFills, MSHRMerges, MSHRStalls, Prefetches int64
}

// HierarchyConfig collects the whole stack's parameters.
type HierarchyConfig struct {
	L1D  Config
	L2   Config
	DRAM dram.Config
	// NextLinePrefetch issues a tagged next-line prefetch on every L1
	// demand miss (sequential streams hide most of their miss latency).
	NextLinePrefetch bool
}

// DefaultHierarchyConfig mirrors the paper's 4-cycle L1 access and a
// contemporary L2/DRAM behind it.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:  Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, Latency: 4, MSHRs: 16},
		L2:   Config{SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, Latency: 12},
		DRAM: dram.DefaultConfig(),
	}
}

// NewHierarchy builds the full stack.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1D:      NewCache(cfg.L1D),
		L2:       NewCache(cfg.L2),
		DRAM:     dram.New(cfg.DRAM),
		maxMSHRs: cfg.L1D.MSHRs,
		prefetch: cfg.NextLinePrefetch,
	}
}

// Access performs a data access at cycle now and returns the absolute
// cycle at which the data is available (for loads) or accepted (for
// stores). Write misses allocate (write-allocate, write-back).
//
// Latency model: L1 hit = L1 latency; L2 hit = L1 + L2 latency; otherwise
// the DRAM completion time. The L1 tag is filled at access time but the
// line is tracked in an MSHR until its data returns, so accesses to a line
// in flight merge with (and wait for) the outstanding fill.
func (h *Hierarchy) Access(now int64, addr uint32, write bool) int64 {
	lineAddr := h.L1D.LineAddr(addr)
	h.pruneMSHRs(now)
	for _, m := range h.outstanding {
		if m.lineAddr == lineAddr {
			// The line is being filled: merge. Touch the L1 for
			// replacement/dirty state; it hits the pre-filled tag.
			h.L1D.access(addr, write, true)
			h.MSHRMerges++
			done := m.readyAt
			if min := now + h.L1D.cfg.Latency; done < min {
				done = min
			}
			return done
		}
	}

	hit, wbAddr, wb := h.L1D.access(addr, write, true)
	if wb {
		// Dirty eviction from L1 goes to L2.
		if _, wb2Addr, wb2 := h.L2.access(wbAddr, true, true); wb2 {
			h.DRAM.Access(now, wb2Addr, true) // occupies a bank; not waited on
		}
	}
	if hit {
		h.L1Hits++
		return now + h.L1D.cfg.Latency
	}

	start := now
	if h.maxMSHRs > 0 && len(h.outstanding) >= h.maxMSHRs {
		// All MSHRs busy: wait for the earliest to free.
		h.MSHRStalls++
		earliest := h.outstanding[0].readyAt
		for _, m := range h.outstanding[1:] {
			if m.readyAt < earliest {
				earliest = m.readyAt
			}
		}
		start = earliest
		h.pruneMSHRsAt(start)
	}

	var ready int64
	l2hit, wb2Addr, wb2 := h.L2.access(addr, false, true)
	if wb2 {
		h.DRAM.Access(start, wb2Addr, true)
	}
	if l2hit {
		h.L2Hits++
		ready = start + h.L1D.cfg.Latency + h.L2.cfg.Latency
	} else {
		h.DRAMFills++
		ready = h.DRAM.Access(start+h.L1D.cfg.Latency+h.L2.cfg.Latency, lineAddr, false)
	}
	h.outstanding = append(h.outstanding, mshr{lineAddr: lineAddr, readyAt: ready})

	if h.prefetch {
		h.prefetchLine(start, lineAddr+uint32(h.L1D.cfg.LineBytes))
	}
	return ready
}

// prefetchLine issues a non-blocking next-line fill: the line's tags are
// installed and an MSHR tracks the in-flight data, so a demand access
// merges with (and waits for) it instead of paying the full miss.
func (h *Hierarchy) prefetchLine(now int64, lineAddr uint32) {
	if h.L1D.Lookup(lineAddr) {
		return
	}
	for _, m := range h.outstanding {
		if m.lineAddr == lineAddr {
			return
		}
	}
	if h.maxMSHRs > 0 && len(h.outstanding) >= h.maxMSHRs {
		return // never stall a demand access for a prefetch
	}
	h.Prefetches++
	var ready int64
	l2hit, wbAddr, wb := h.L2.access(lineAddr, false, true)
	if wb {
		h.DRAM.Access(now, wbAddr, true)
	}
	if l2hit {
		ready = now + h.L1D.cfg.Latency + h.L2.cfg.Latency
	} else {
		ready = h.DRAM.Access(now+h.L1D.cfg.Latency+h.L2.cfg.Latency, lineAddr, false)
	}
	if _, wb1Addr, wb1 := h.L1D.access(lineAddr, false, true); wb1 {
		if _, wb2Addr, wb2 := h.L2.access(wb1Addr, true, true); wb2 {
			h.DRAM.Access(now, wb2Addr, true)
		}
	}
	h.outstanding = append(h.outstanding, mshr{lineAddr: lineAddr, readyAt: ready})
}

func (h *Hierarchy) pruneMSHRs(now int64) { h.pruneMSHRsAt(now) }

func (h *Hierarchy) pruneMSHRsAt(now int64) {
	kept := h.outstanding[:0]
	for _, m := range h.outstanding {
		if m.readyAt > now {
			kept = append(kept, m)
		}
	}
	h.outstanding = kept
}

// Invalidate drops the line from both levels (consistency hook) and
// reports whether it was present in L1.
func (h *Hierarchy) Invalidate(addr uint32) bool {
	inL1 := h.L1D.Invalidate(addr)
	h.L2.Invalidate(addr)
	return inL1
}

// L1Latency exposes the L1 hit latency (the paper's constant 4-cycle
// cache/SQ/SB access time).
func (h *Hierarchy) L1Latency() int64 { return h.L1D.cfg.Latency }

// LineBytes returns the L1 line size.
func (h *Hierarchy) LineBytes() int { return h.L1D.cfg.LineBytes }
