package cache

import (
	"encoding/binary"
	"fmt"
)

// Functional-warming support: the warm package drives a Cache as a pure
// tag-state model (WarmAccess) and snapshots/restores that state through
// a canonical byte encoding (AppendWarmState/LoadWarmState). The encoding
// is rank-normalized: ways are serialized oldest-to-youngest by LRU
// timestamp and reloaded with used = 1..k, so only the *relative*
// recency order — the part of the state that determines every future
// replacement decision — survives the round trip. Serialize-then-load is
// therefore behavior-preserving, and two states with equal tag content
// and equal recency order encode to identical bytes regardless of the
// absolute tick values they were built with.

// WarmAccess performs one functional (timing-free) access with fill: the
// tag, dirty and LRU state change exactly as in the timed access path,
// and the dirty-eviction writeback address is reported so a caller can
// propagate it down the hierarchy. Counters accumulate as usual; warm
// callers discard them.
func (c *Cache) WarmAccess(addr uint32, write bool) (hit bool, wbAddr uint32, wb bool) {
	return c.access(addr, write, true)
}

// warmLineBytes is the serialized size of one valid line.
const warmLineBytes = 4 + 1 // tag + dirty flag

// WarmStateLen returns the maximum encoded warm-state size for this
// cache (every set full).
func (c *Cache) WarmStateLen() int {
	return len(c.sets) * (1 + c.cfg.Ways*warmLineBytes)
}

// AppendWarmState appends the canonical warm encoding: per set, a count
// byte followed by the valid ways oldest-to-youngest, each as tag (4 LE
// bytes) and a dirty flag byte.
func (c *Cache) AppendWarmState(buf []byte) []byte {
	var orderBuf [64]int // way indices sorted by used; Ways is small
	order := orderBuf[:]
	if c.cfg.Ways > len(order) {
		order = make([]int, c.cfg.Ways)
	}
	for si := range c.sets {
		set := c.sets[si]
		n := 0
		for i := range set {
			if !set[i].valid {
				continue
			}
			// Insertion sort by LRU timestamp, oldest first.
			j := n
			for j > 0 && set[order[j-1]].used > set[i].used {
				order[j] = order[j-1]
				j--
			}
			order[j] = i
			n++
		}
		buf = append(buf, byte(n))
		for k := 0; k < n; k++ {
			l := &set[order[k]]
			buf = binary.LittleEndian.AppendUint32(buf, l.tag)
			d := byte(0)
			if l.dirty {
				d = 1
			}
			buf = append(buf, d)
		}
	}
	return buf
}

// LoadWarmState replaces the cache's tag state with the encoded state
// and returns the number of bytes consumed. The geometry must match the
// cache the state was captured from; any structural mismatch is an
// error and leaves no partial state behind the caller should trust.
// Counters are untouched.
func (c *Cache) LoadWarmState(buf []byte) (int, error) {
	off := 0
	for si := range c.sets {
		set := c.sets[si]
		if off >= len(buf) {
			return 0, fmt.Errorf("cache: warm state truncated at set %d", si)
		}
		n := int(buf[off])
		off++
		if n > c.cfg.Ways {
			return 0, fmt.Errorf("cache: warm state set %d holds %d ways (cache has %d)", si, n, c.cfg.Ways)
		}
		if off+n*warmLineBytes > len(buf) {
			return 0, fmt.Errorf("cache: warm state truncated in set %d", si)
		}
		for i := range set {
			set[i] = line{}
		}
		for k := 0; k < n; k++ {
			if d := buf[off+4]; d > 1 {
				return 0, fmt.Errorf("cache: warm state set %d has dirty byte %d", si, d)
			}
			set[k] = line{
				tag:   binary.LittleEndian.Uint32(buf[off:]),
				valid: true,
				dirty: buf[off+4] == 1,
				used:  int64(k + 1),
			}
			off += warmLineBytes
		}
	}
	c.tick = int64(c.cfg.Ways)
	return off, nil
}

// CopyWarmFrom transplants src's tag state into c (both caches must
// share a geometry). Counters are untouched; the copy is exact, so a
// state loaded from canonical bytes installs without re-normalizing.
func (c *Cache) CopyWarmFrom(src *Cache) {
	for si := range c.sets {
		copy(c.sets[si], src.sets[si])
	}
	c.tick = src.tick
}
