package cache

import (
	"testing"

	"dmdp/internal/dram"
)

func smallCfg() Config {
	return Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 4, MSHRs: 4}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(smallCfg())
	if hit, _, _ := c.access(0x1000, false, true); hit {
		t.Fatal("cold cache should miss")
	}
	if hit, _, _ := c.access(0x1000, false, true); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _, _ := c.access(0x103c, false, true); !hit {
		t.Fatal("same line should hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats %d/%d", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(smallCfg()) // 8 sets, 2 ways
	setStride := uint32(8 * 64)
	// Three lines mapping to set 0.
	a, b, d := uint32(0), setStride, 2*setStride
	c.access(a, false, true)
	c.access(b, false, true)
	c.access(a, false, true) // a more recent than b
	c.access(d, false, true) // evicts b (LRU)
	if !c.Lookup(a) || c.Lookup(b) || !c.Lookup(d) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := NewCache(smallCfg())
	setStride := uint32(8 * 64)
	c.access(0, true, true) // dirty
	c.access(setStride, false, true)
	_, wbAddr, wb := c.access(2*setStride, false, true) // evicts line 0 (dirty)
	if !wb || wbAddr != 0 {
		t.Fatalf("expected writeback of line 0, got wb=%v addr=0x%x", wb, wbAddr)
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks %d", c.Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewCache(smallCfg())
	c.access(0x2000, false, true)
	if !c.Invalidate(0x2000) {
		t.Fatal("invalidate missed present line")
	}
	if c.Lookup(0x2000) {
		t.Fatal("line still present after invalidate")
	}
	if c.Invalidate(0x2000) {
		t.Fatal("invalidate hit absent line")
	}
}

func hierCfg() HierarchyConfig {
	return HierarchyConfig{
		L1D:  Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 4, MSHRs: 2},
		L2:   Config{SizeBytes: 8192, LineBytes: 64, Ways: 4, Latency: 12},
		DRAM: dram.DefaultConfig(),
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewHierarchy(hierCfg())
	dramDone := h.Access(0, 0x10000, false) // cold: DRAM
	l1Done := h.Access(dramDone, 0x10000, false)
	if got := l1Done - dramDone; got != 4 {
		t.Fatalf("L1 hit latency %d, want 4", got)
	}
	if dramDone < 4+12 {
		t.Fatalf("DRAM fill latency %d implausibly low", dramDone)
	}
	// Evict from L1 but not L2, then re-access: L2 hit latency.
	h.Access(l1Done, 0x10000+1024, false) // maps to same L1 set
	h.Access(l1Done, 0x10000+2048, false) // evicts 0x10000 from L1
	if h.L1D.Lookup(0x10000) {
		t.Skip("line not evicted; geometry changed")
	}
	before := h.L2Hits
	done := h.Access(100000, 0x10000, false)
	if h.L2Hits != before+1 {
		t.Fatalf("expected an L2 hit")
	}
	if got := done - 100000; got != 4+12 {
		t.Fatalf("L2 hit latency %d, want 16", got)
	}
}

func TestMSHRMerge(t *testing.T) {
	h := NewHierarchy(hierCfg())
	a := h.Access(0, 0x20000, false)
	b := h.Access(1, 0x20004, false) // same line, outstanding
	if h.MSHRMerges != 1 {
		t.Fatalf("merges %d", h.MSHRMerges)
	}
	if b > a+4 {
		t.Fatalf("merged access %d should complete near %d", b, a)
	}
}

func TestMSHRStall(t *testing.T) {
	h := NewHierarchy(hierCfg())
	h.Access(0, 0x30000, false)
	h.Access(0, 0x40000, false)
	// Third distinct miss at cycle 0 with 2 MSHRs must stall.
	h.Access(0, 0x50000, false)
	if h.MSHRStalls != 1 {
		t.Fatalf("stalls %d", h.MSHRStalls)
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := NewHierarchy(hierCfg())
	done := h.Access(0, 0x60000, false)
	if !h.Invalidate(0x60000) {
		t.Fatal("invalidate missed")
	}
	// Next access must miss again (slower than an L1 hit).
	redo := h.Access(done, 0x60000, false)
	if redo-done <= 4 {
		t.Fatal("access after invalidate should miss")
	}
}

func TestMissRate(t *testing.T) {
	c := NewCache(smallCfg())
	c.access(0, false, true)
	c.access(0, false, true)
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %f", c.MissRate())
	}
}

func TestDeterministicHierarchy(t *testing.T) {
	run := func() []int64 {
		h := NewHierarchy(hierCfg())
		var out []int64
		now := int64(0)
		for i := 0; i < 500; i++ {
			addr := uint32((i * 977) % (1 << 16))
			now = h.Access(now, addr, i%4 == 0)
			out = append(out, now)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := hierCfg()
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg)
	// A demand miss on line X prefetches X+64.
	first := h.Access(0, 0x10000, false)
	if h.Prefetches != 1 {
		t.Fatalf("prefetches %d", h.Prefetches)
	}
	// Long after the prefetch data arrived, the sequential line is an
	// L1 hit.
	late := first + 1000
	seq := h.Access(late, 0x10040, false)
	if seq != late+h.L1D.cfg.Latency {
		t.Fatalf("prefetched line should hit L1: done %d, want %d", seq, late+h.L1D.cfg.Latency)
	}
	// Hitting the prefetched line must not issue another prefetch.
	if h.Prefetches != 1 {
		t.Fatalf("hits must not prefetch: %d", h.Prefetches)
	}
}

func TestPrefetchSpeedsUpStreams(t *testing.T) {
	run := func(pf bool) int64 {
		cfg := hierCfg()
		cfg.NextLinePrefetch = pf
		h := NewHierarchy(cfg)
		now := int64(0)
		for i := 0; i < 2000; i++ {
			now = h.Access(now, uint32(0x40000+i*8), false)
		}
		return now
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("prefetching stream took %d cycles, without %d", with, without)
	}
}

func TestPrefetchOffByDefault(t *testing.T) {
	h := NewHierarchy(hierCfg())
	h.Access(0, 0x10000, false)
	if h.Prefetches != 0 {
		t.Fatal("prefetcher must be off by default")
	}
}
