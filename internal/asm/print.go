package asm

import (
	"fmt"
	"strings"

	"dmdp/internal/isa"
)

// Print renders an assembled program back to source text that Assemble
// (with DefaultOptions) reproduces: same text stream, same data bytes,
// same entry point. It is the inverse direction of the round-trip
// property FuzzAsmRoundTrip checks — parse → print → parse must be a
// fixpoint. Instruction syntax comes from isa.Instr.String, whose every
// form the parser accepts (numeric branch displacements, hex jump
// targets, off(reg) memory operands).
//
// Limitations, by construction: label names other than the entry point
// are not reconstructed (branches print as numeric displacements, jumps
// as absolute targets) and non-default section bases cannot be
// expressed. Programs assembled with AssembleWithOptions and custom
// bases will not round-trip.
func Print(p *isa.Program) string {
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i, in := range p.Text {
		addr := p.TextBase + uint32(4*i)
		if addr == p.Entry && addr != p.TextBase {
			b.WriteString("main:\n")
		}
		fmt.Fprintf(&b, "\t%s\n", in)
	}
	if len(p.Data) > 0 {
		b.WriteString("\t.data\n")
		printData(&b, p.Data)
	}
	return b.String()
}

// printData emits the data image as .byte rows, collapsing long zero
// runs to .space (a .rept-heavy source can assemble megabytes of zeroed
// arrays; re-emitting those byte-by-byte would dwarf the program).
func printData(b *strings.Builder, data []byte) {
	const zeroRun = 16 // shortest run worth a .space
	for i := 0; i < len(data); {
		j := i
		for j < len(data) && data[j] == 0 {
			j++
		}
		if j-i >= zeroRun || (j == len(data) && j > i) {
			fmt.Fprintf(b, "\t.space %d\n", j-i)
			i = j
			continue
		}
		// One row of up to 16 non-run bytes.
		end := i + 16
		if end > len(data) {
			end = len(data)
		}
		vals := make([]string, 0, end-i)
		for ; i < end; i++ {
			vals = append(vals, fmt.Sprintf("0x%02x", data[i]))
		}
		fmt.Fprintf(b, "\t.byte %s\n", strings.Join(vals, ", "))
	}
}
