package asm_test

import (
	"bytes"
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/progen"
	"dmdp/internal/workload"
)

// FuzzAsmRoundTrip checks the parse → print → parse fixpoint: any source
// the assembler accepts must print (asm.Print) to source the assembler
// accepts again, producing the identical text stream, data image and
// entry point — and printing the reassembled program must reproduce the
// printed text byte-for-byte. Assembler rejections are fine (most
// mutated inputs don't assemble); panics and round-trip drift are not.
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add("\t.text\nmain:\n\tli $t0, 42\n\tsw $t0, 0($gp)\n\tlw $t1, 0($gp)\n\thalt\n")
	f.Add("\t.text\n\taddi $t0, $zero, -1\n\tbeq $t0, $zero, 2\n\tnop\n\tnop\n\thalt\n\t.data\nx:\n\t.word 1, 2, 3\n")
	f.Add("\t.text\n\tlui $t0, 0x1234\n\tori $t0, $t0, 0x5678\n\tjal 0x400010\n\thalt\n\tjr $ra\n")
	f.Add("\t.rept 4\n\taddiu $v0, $v0, 7\n\t.endr\n\thalt\n\t.data\n\t.space 64\n\t.byte 0xff, 1\n\t.asciiz \"hi\"\n")
	f.Add("\t.equ N, 12\n\tli $a0, N\nloop:\n\taddi $a0, $a0, -1\n\tbnez $a0, loop\n\thalt\n\t.data\n\t.align 3\n\t.half 9, 10\n")
	if spec, ok := workload.Get("mcf"); ok {
		f.Add(spec.Source())
	}
	f.Add(progen.Generate(1, progen.DefaultKnobs()))

	f.Fuzz(func(t *testing.T, src string) {
		p1, err := asm.Assemble(src)
		if err != nil {
			return // rejection is a fine outcome; only panics/drift are bugs
		}
		if len(p1.Text) > 1<<14 || len(p1.Data) > 1<<20 {
			return // .rept/.space blowups: printing cost, not coverage
		}
		out1 := asm.Print(p1)
		p2, err := asm.Assemble(out1)
		if err != nil {
			t.Fatalf("printed program does not reassemble: %v\nprinted:\n%s", err, out1)
		}
		if len(p1.Text) != len(p2.Text) {
			t.Fatalf("text length drifted: %d -> %d", len(p1.Text), len(p2.Text))
		}
		for i := range p1.Text {
			if p1.Text[i] != p2.Text[i] {
				t.Fatalf("instruction %d drifted: %q -> %q", i, p1.Text[i], p2.Text[i])
			}
		}
		if !bytes.Equal(p1.Data, p2.Data) {
			t.Fatalf("data image drifted (%d vs %d bytes)", len(p1.Data), len(p2.Data))
		}
		// The entry point is representable whenever it lies in the text
		// section (Print emits a main: label there); entries pointing
		// elsewhere (a main: label in .data) cannot round-trip.
		if e := p1.Entry; e >= p1.TextBase && e < p1.TextBase+uint32(4*len(p1.Text)) {
			if p2.Entry != e {
				t.Fatalf("entry drifted: 0x%x -> 0x%x", e, p2.Entry)
			}
		}
		if out2 := asm.Print(p2); out2 != out1 {
			t.Fatalf("print is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}
