package asm

import (
	"strings"
	"testing"

	"dmdp/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		.text
	main:
		addi $t0, $zero, 5
		add  $t1, $t0, $t0
		halt
	`)
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
	if p.Entry != p.TextBase {
		t.Fatalf("entry %x != text base %x", p.Entry, p.TextBase)
	}
	want := []isa.Instr{
		{Op: isa.OpADDI, Rt: isa.T0, Rs: isa.Zero, Imm: 5},
		{Op: isa.OpADD, Rd: isa.T1, Rs: isa.T0, Rt: isa.T0},
		{Op: isa.OpHALT},
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("instr %d = %v, want %v", i, p.Text[i], w)
		}
	}
}

func TestBranchLabelResolution(t *testing.T) {
	p := mustAssemble(t, `
	main:
		addi $t0, $zero, 10
	loop:
		addi $t0, $t0, -1
		bnez $t0, loop
		beq  $t0, $zero, done
		nop
	done:
		halt
	`)
	// bnez at index 2, loop at index 1: disp = (1-3) = -2
	if in := p.Text[2]; in.Op != isa.OpBNE || in.Imm != -2 {
		t.Fatalf("bnez = %v", in)
	}
	// beq at index 3, done at index 5: disp = 5-4 = 1
	if in := p.Text[3]; in.Op != isa.OpBEQ || in.Imm != 1 {
		t.Fatalf("beq = %v", in)
	}
}

func TestForwardAndBackwardJumps(t *testing.T) {
	p := mustAssemble(t, `
	main:
		j end
	mid:
		jr $ra
	end:
		jal mid
		halt
	`)
	endAddr := p.Symbols["end"]
	if in := p.Text[0]; in.Op != isa.OpJ || in.Target != endAddr>>2 {
		t.Fatalf("j = %v, end=0x%x", in, endAddr)
	}
	midAddr := p.Symbols["mid"]
	if in := p.Text[2]; in.Op != isa.OpJAL || in.Target != midAddr>>2 {
		t.Fatalf("jal = %v", in)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.data
	tbl:
		.word 1, 2, 0x10000, -1
	h:
		.half 0x1234
	b:
		.byte 7, 8
		.align 2
	arr:
		.space 16
	str:
		.asciiz "hi"
	`)
	if got := p.Symbols["tbl"]; got != p.DataBase {
		t.Fatalf("tbl at 0x%x", got)
	}
	// words: 1,2,0x10000,-1 → 16 bytes.
	if p.Symbols["h"] != p.DataBase+16 {
		t.Fatalf("h at 0x%x", p.Symbols["h"])
	}
	if p.Symbols["b"] != p.DataBase+18 {
		t.Fatalf("b at 0x%x", p.Symbols["b"])
	}
	if p.Symbols["arr"]%4 != 0 {
		t.Fatalf("arr not aligned: 0x%x", p.Symbols["arr"])
	}
	if p.Data[0] != 1 || p.Data[4] != 2 {
		t.Fatal("word data wrong")
	}
	if p.Data[12] != 0xff || p.Data[15] != 0xff {
		t.Fatal("-1 word wrong")
	}
	strOff := p.Symbols["str"] - p.DataBase
	if string(p.Data[strOff:strOff+2]) != "hi" || p.Data[strOff+2] != 0 {
		t.Fatal("asciiz wrong")
	}
}

func TestWordWithSymbol(t *testing.T) {
	p := mustAssemble(t, `
		.data
	a:
		.word 42
	ptr:
		.word a, a+4
	`)
	off := p.Symbols["ptr"] - p.DataBase
	got := uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 |
		uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
	if got != p.Symbols["a"] {
		t.Fatalf(".word a = 0x%x, want 0x%x", got, p.Symbols["a"])
	}
	got2 := uint32(p.Data[off+4]) | uint32(p.Data[off+5])<<8 |
		uint32(p.Data[off+6])<<16 | uint32(p.Data[off+7])<<24
	if got2 != p.Symbols["a"]+4 {
		t.Fatalf(".word a+4 = 0x%x", got2)
	}
}

func TestPseudoLi(t *testing.T) {
	p := mustAssemble(t, `
		li $t0, 5
		li $t1, -5
		li $t2, 0x9000
		li $t3, 0x12345678
		halt
	`)
	if p.Text[0].Op != isa.OpADDIU || p.Text[0].Imm != 5 {
		t.Fatalf("li small = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpADDIU || p.Text[1].Imm != -5 {
		t.Fatalf("li negative = %v", p.Text[1])
	}
	if p.Text[2].Op != isa.OpORI || p.Text[2].Imm != 0x9000 {
		t.Fatalf("li 0x9000 = %v", p.Text[2])
	}
	if p.Text[3].Op != isa.OpLUI || p.Text[3].Imm != 0x1234 {
		t.Fatalf("li big hi = %v", p.Text[3])
	}
	if p.Text[4].Op != isa.OpORI || p.Text[4].Imm != 0x5678 {
		t.Fatalf("li big lo = %v", p.Text[4])
	}
}

func TestPseudoLaAndMemAccess(t *testing.T) {
	p := mustAssemble(t, `
		.data
	buf:
		.space 64
		.text
	main:
		la $t0, buf
		lw $t1, 0($t0)
		sw $t1, 8($t0)
		halt
	`)
	if p.Text[0].Op != isa.OpLUI || p.Text[1].Op != isa.OpORI {
		t.Fatal("la expansion wrong")
	}
	hi := uint32(p.Text[0].Imm) << 16
	lo := uint32(p.Text[1].Imm)
	if hi|lo != p.Symbols["buf"] {
		t.Fatalf("la value 0x%x != buf 0x%x", hi|lo, p.Symbols["buf"])
	}
	if p.Text[3].Op != isa.OpSW || p.Text[3].Imm != 8 {
		t.Fatalf("sw = %v", p.Text[3])
	}
}

func TestSymbolOffsetOutOfRangeRejected(t *testing.T) {
	_, err := Assemble(`
		.data
	buf:
		.space 64
		.text
		sw $t1, buf+8($t0)
	`)
	if err == nil {
		t.Fatal("expected out-of-range offset error for absolute symbol offset")
	}
}

func TestLabelOffsetsAcrossPseudo(t *testing.T) {
	// Labels after multi-word pseudos must account for expansion.
	p := mustAssemble(t, `
	main:
		li $t0, 0x12345678
	after:
		halt
	`)
	if p.Symbols["after"] != p.TextBase+8 {
		t.Fatalf("after at 0x%x, want 0x%x", p.Symbols["after"], p.TextBase+8)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus $t0, $t1",
		"addi $t0, $t1",           // wrong arity
		"addi $t0, $t1, 99999999", // handled at encode level? resolve passes; but range enforced by emit? (kept permissive)
		"lw $t0, buf",             // missing (reg)
		"add $t0, $t1, $99",
		"j unknown_label",
		"beq $t0, $t1, nowhere",
		".data\n.word nope",
		"dup: nop\ndup: nop",
		"9bad: nop",
		".space 4", // data directive in .text
		".data\naddi $t0, $t0, 1",
		"jalr $t0, $t1, $t2",
		"sll $t0, $t1, 55",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			// addi range is checked at encode time, not assembly time.
			if strings.Contains(src, "99999999") {
				continue
			}
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	if err == nil {
		t.Fatal("expected error")
	}
	ae, ok := err.(*Error)
	if !ok || ae.Line != 3 {
		t.Fatalf("error = %v, want line 3", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p := mustAssemble(t, `
		# full-line comment
		nop   # trailing comment
		nop   ; alt comment
	`)
	if len(p.Text) != 2 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	p := mustAssemble(t, "a: b: nop\nhalt")
	if p.Symbols["a"] != p.Symbols["b"] {
		t.Fatal("stacked labels should share an address")
	}
}

func TestAllEncodableInstructionsAssemble(t *testing.T) {
	src := `
	main:
		add $t0, $t1, $t2
		addu $t0, $t1, $t2
		sub $t0, $t1, $t2
		subu $t0, $t1, $t2
		and $t0, $t1, $t2
		or $t0, $t1, $t2
		xor $t0, $t1, $t2
		nor $t0, $t1, $t2
		slt $t0, $t1, $t2
		sltu $t0, $t1, $t2
		sll $t0, $t1, 4
		srl $t0, $t1, 4
		sra $t0, $t1, 4
		sllv $t0, $t1, $t2
		srlv $t0, $t1, $t2
		srav $t0, $t1, $t2
		mul $t0, $t1, $t2
		mulh $t0, $t1, $t2
		div $t0, $t1, $t2
		rem $t0, $t1, $t2
		addi $t0, $t1, -4
		addiu $t0, $t1, 4
		andi $t0, $t1, 15
		ori $t0, $t1, 15
		xori $t0, $t1, 15
		slti $t0, $t1, 3
		sltiu $t0, $t1, 3
		lui $t0, 0x1234
		lb $t0, 0($t1)
		lbu $t0, 1($t1)
		lh $t0, 2($t1)
		lhu $t0, 2($t1)
		lw $t0, 4($t1)
		sb $t0, 0($t1)
		sh $t0, 2($t1)
		sw $t0, 4($t1)
		beq $t0, $t1, main
		bne $t0, $t1, main
		blez $t0, main
		bgtz $t0, main
		bltz $t0, main
		bgez $t0, main
		fadd $t0, $t1, $t2
		fmul $t0, $t1, $t2
		fdiv $t0, $t1, $t2
		j main
		jal main
		jalr $t1
		jalr $t0, $t1
		jr $ra
		nop
		halt
	`
	p := mustAssemble(t, src)
	// Every instruction must also encode and decode.
	for i, in := range p.Text {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("instr %d (%v) encode: %v", i, in, err)
		}
		if _, err := isa.Decode(w); err != nil {
			t.Fatalf("instr %d (%v) decode: %v", i, in, err)
		}
	}
}

func TestEquConstants(t *testing.T) {
	p := mustAssemble(t, `
	.equ SIZE, 16
	.equ MASK, 0xff
main:
	li $t0, SIZE
	andi $t1, $t0, MASK
	addi $t2, $zero, SIZE
	halt
	`)
	// li with a symbolic constant uses the two-word lui+ori form.
	if p.Text[0].Op != isa.OpLUI || p.Text[1].Op != isa.OpORI || p.Text[1].Imm != 16 {
		t.Fatalf("li SIZE = %v %v", p.Text[0], p.Text[1])
	}
	if p.Text[2].Imm != 0xff {
		t.Fatalf("andi MASK = %v", p.Text[2])
	}
	if p.Text[3].Imm != 16 {
		t.Fatalf("addi SIZE = %v", p.Text[3])
	}
}

func TestEquErrors(t *testing.T) {
	for _, src := range []string{
		".equ", ".equ X", ".equ 9bad, 1", ".equ X, nope",
		".equ X, 1\n.equ X, 2", // duplicate
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestReptExpansion(t *testing.T) {
	p := mustAssemble(t, `
main:
	.rept 3
	addi $t0, $t0, 1
	.endr
	halt
	`)
	if len(p.Text) != 4 {
		t.Fatalf("instructions %d, want 4", len(p.Text))
	}
	for i := 0; i < 3; i++ {
		if p.Text[i].Op != isa.OpADDI {
			t.Fatalf("instr %d = %v", i, p.Text[i])
		}
	}
}

func TestReptNested(t *testing.T) {
	p := mustAssemble(t, `
main:
	.rept 2
	.rept 3
	nop
	.endr
	addi $t0, $t0, 1
	.endr
	halt
	`)
	// 2 * (3 nops + 1 addi) + halt = 9
	if len(p.Text) != 9 {
		t.Fatalf("instructions %d, want 9", len(p.Text))
	}
}

func TestReptData(t *testing.T) {
	p := mustAssemble(t, `
	.data
tab:
	.rept 4
	.word 7
	.endr
	`)
	if len(p.Data) != 16 {
		t.Fatalf("data %d bytes", len(p.Data))
	}
	if p.Data[0] != 7 || p.Data[12] != 7 {
		t.Fatal("repeated words wrong")
	}
}

func TestReptErrors(t *testing.T) {
	for _, src := range []string{
		".rept 2\nnop\n",      // missing endr
		".endr",               // stray endr
		".rept nope\n.endr\n", // bad count
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
