// Package asm implements a two-pass assembler for the simulator's
// MIPS-I-like ISA. It supports .text/.data sections, labels, the usual
// data directives, and a small set of pseudo-instructions (li, la, move,
// b, beqz, bnez). Workload generators emit assembly source; this package
// turns it into an isa.Program.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"dmdp/internal/isa"
)

// Options configures section placement.
type Options struct {
	TextBase uint32 // default 0x0040_0000
	DataBase uint32 // default 0x1000_0000
}

// DefaultOptions mirror the conventional MIPS memory layout.
var DefaultOptions = Options{TextBase: 0x0040_0000, DataBase: 0x1000_0000}

// Assemble assembles src with DefaultOptions.
func Assemble(src string) (*isa.Program, error) {
	return AssembleWithOptions(src, DefaultOptions)
}

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// item is a parsed statement awaiting pass-2 resolution.
type item struct {
	line     int
	mnemonic string
	operands []string
	addr     uint32 // assigned in pass 1
	size     uint32 // bytes
	sec      section
}

type assembler struct {
	opt     Options
	symbols map[string]uint32
	items   []item
	text    []isa.Instr
	data    []byte
}

// AssembleWithOptions assembles src into a Program.
func AssembleWithOptions(src string, opt Options) (*isa.Program, error) {
	a := &assembler{opt: opt, symbols: make(map[string]uint32)}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	entry := opt.TextBase
	if e, ok := a.symbols["main"]; ok {
		entry = e
	}
	return &isa.Program{
		TextBase: opt.TextBase,
		Text:     a.text,
		DataBase: opt.DataBase,
		Data:     a.data,
		Entry:    entry,
		Symbols:  a.symbols,
	}, nil
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// expandRept rewrites .rept N / .endr blocks by textual repetition,
// keeping original line numbers for diagnostics (each copied line keeps
// its source line). Nesting is supported.
func expandRept(src string) (string, error) {
	type frame struct {
		count int
		lines []string
		start int
	}
	var out []string
	var stack []frame
	emit := func(l string) {
		if len(stack) > 0 {
			stack[len(stack)-1].lines = append(stack[len(stack)-1].lines, l)
			return
		}
		out = append(out, l)
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(raw)
		low := strings.ToLower(trimmed)
		switch {
		case strings.HasPrefix(low, ".rept"):
			nStr := strings.TrimSpace(trimmed[len(".rept"):])
			n, err := parseNum(nStr)
			if err != nil || n < 0 || n > 1<<20 {
				return "", errf(lineNo+1, "bad .rept count %q", nStr)
			}
			stack = append(stack, frame{count: int(n), start: lineNo + 1})
		case low == ".endr":
			if len(stack) == 0 {
				return "", errf(lineNo+1, ".endr without .rept")
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := 0; i < f.count; i++ {
				for _, l := range f.lines {
					emit(l)
				}
			}
		default:
			emit(raw)
		}
	}
	if len(stack) > 0 {
		return "", errf(stack[len(stack)-1].start, ".rept without .endr")
	}
	return strings.Join(out, "\n"), nil
}

// pass1 parses statements, expands pseudo-instruction sizes and assigns
// addresses to every item and label.
func (a *assembler) pass1(src string) error {
	src, err := expandRept(src)
	if err != nil {
		return err
	}
	sec := secText
	textAddr := a.opt.TextBase
	dataAddr := a.opt.DataBase

	cur := func() *uint32 {
		if sec == secText {
			return &textAddr
		}
		return &dataAddr
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off any labels.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				return errf(lineNo+1, "invalid label %q", label)
			}
			if _, dup := a.symbols[label]; dup {
				return errf(lineNo+1, "duplicate label %q", label)
			}
			a.symbols[label] = *cur()
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		operands := splitOperands(rest)

		if strings.HasPrefix(mnemonic, ".") {
			switch mnemonic {
			case ".text":
				sec = secText
				continue
			case ".data":
				sec = secData
				continue
			case ".globl", ".global", ".ent", ".end", ".set":
				continue // accepted and ignored
			case ".equ", ".eqv":
				// .equ name, value — define an assembly-time constant.
				if len(operands) != 2 {
					return errf(lineNo+1, "%s needs name, value", mnemonic)
				}
				if !validLabel(operands[0]) {
					return errf(lineNo+1, "bad constant name %q", operands[0])
				}
				if _, dup := a.symbols[operands[0]]; dup {
					return errf(lineNo+1, "duplicate symbol %q", operands[0])
				}
				v, err := parseNum(operands[1])
				if err != nil {
					return errf(lineNo+1, "bad constant value %q", operands[1])
				}
				a.symbols[operands[0]] = uint32(v)
				continue
			}
			size, err := directiveSize(lineNo+1, mnemonic, operands, *cur())
			if err != nil {
				return err
			}
			if sec == secText {
				return errf(lineNo+1, "data directive %s in .text section", mnemonic)
			}
			a.items = append(a.items, item{
				line: lineNo + 1, mnemonic: mnemonic, operands: operands,
				addr: *cur(), size: size, sec: sec,
			})
			*cur() += size
			continue
		}

		if sec != secText {
			return errf(lineNo+1, "instruction %q in .data section", mnemonic)
		}
		n, err := instrWords(lineNo+1, mnemonic, operands)
		if err != nil {
			return err
		}
		a.items = append(a.items, item{
			line: lineNo + 1, mnemonic: mnemonic, operands: operands,
			addr: textAddr, size: 4 * n, sec: secText,
		})
		textAddr += 4 * n
	}
	return nil
}

// validLabel accepts C-identifier-style labels (leading dot allowed for
// local labels).
func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// directiveSize returns the byte size a data directive occupies.
func directiveSize(line int, d string, ops []string, addr uint32) (uint32, error) {
	switch d {
	case ".word":
		return 4 * uint32(len(ops)), nil
	case ".half":
		return 2 * uint32(len(ops)), nil
	case ".byte":
		return uint32(len(ops)), nil
	case ".space":
		if len(ops) != 1 {
			return 0, errf(line, ".space needs one operand")
		}
		n, err := parseNum(ops[0])
		if err != nil || n < 0 {
			return 0, errf(line, "bad .space size %q", ops[0])
		}
		return uint32(n), nil
	case ".align":
		if len(ops) != 1 {
			return 0, errf(line, ".align needs one operand")
		}
		n, err := parseNum(ops[0])
		if err != nil || n < 0 || n > 12 {
			return 0, errf(line, "bad .align %q", ops[0])
		}
		align := uint32(1) << uint(n)
		return (align - addr%align) % align, nil
	case ".asciiz":
		if len(ops) < 1 {
			return 0, errf(line, ".asciiz needs a string")
		}
		s, err := strconv.Unquote(strings.Join(ops, ","))
		if err != nil {
			return 0, errf(line, "bad string literal")
		}
		return uint32(len(s)) + 1, nil
	}
	return 0, errf(line, "unknown directive %s", d)
}

// instrWords returns how many machine instructions a (possibly pseudo)
// mnemonic expands into.
func instrWords(line int, mnemonic string, ops []string) (uint32, error) {
	switch mnemonic {
	case "li":
		if len(ops) != 2 {
			return 0, errf(line, "li needs 2 operands")
		}
		v, err := parseNum(ops[1])
		if err != nil {
			// Symbolic constant (.equ) or label: always the two-word
			// lui+ori form, so pass-1 sizing never depends on symbol
			// definition order.
			return 2, nil
		}
		if v >= -0x8000 && v <= 0x7fff {
			return 1, nil
		}
		if v >= 0 && v <= 0xffff {
			return 1, nil // ori
		}
		return 2, nil // lui+ori
	case "la":
		return 2, nil
	case "move", "b", "beqz", "bnez":
		return 1, nil
	}
	if _, ok := isa.OpByName(mnemonic); !ok {
		return 0, errf(line, "unknown mnemonic %q", mnemonic)
	}
	return 1, nil
}

func parseNum(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow unsigned hex words like 0xdeadbeef.
		u, uerr := strconv.ParseUint(s, 0, 32)
		if uerr != nil {
			return 0, err
		}
		return int64(int32(u)), nil
	}
	return v, nil
}

// pass2 emits machine instructions and data bytes with symbols resolved.
func (a *assembler) pass2() error {
	for _, it := range a.items {
		if it.sec == secData {
			if err := a.emitData(it); err != nil {
				return err
			}
			continue
		}
		if err := a.emitInstr(it); err != nil {
			return err
		}
	}
	return nil
}

// resolve evaluates an operand that may be a number, a label, or
// label+offset / label-offset.
func (a *assembler) resolve(line int, s string) (int64, error) {
	if v, err := parseNum(s); err == nil {
		return v, nil
	}
	base := s
	var off int64
	for _, sep := range []string{"+", "-"} {
		if i := strings.LastIndex(s, sep); i > 0 {
			if v, err := parseNum(s[i+1:]); err == nil {
				base = strings.TrimSpace(s[:i])
				if sep == "-" {
					off = -v
				} else {
					off = v
				}
				break
			}
		}
	}
	if addr, ok := a.symbols[base]; ok {
		return int64(addr) + off, nil
	}
	return 0, errf(line, "undefined symbol %q", s)
}

func (a *assembler) emitData(it item) error {
	pad := func(n uint32) {
		for i := uint32(0); i < n; i++ {
			a.data = append(a.data, 0)
		}
	}
	// Fill any gap caused by .align.
	gap := it.addr - (a.opt.DataBase + uint32(len(a.data)))
	pad(gap)

	switch it.mnemonic {
	case ".word", ".half", ".byte":
		width := map[string]uint32{".word": 4, ".half": 2, ".byte": 1}[it.mnemonic]
		for _, op := range it.operands {
			v, err := a.resolve(it.line, op)
			if err != nil {
				return err
			}
			for b := uint32(0); b < width; b++ {
				a.data = append(a.data, byte(uint64(v)>>(8*b)))
			}
		}
	case ".space", ".align":
		pad(it.size)
	case ".asciiz":
		s, err := strconv.Unquote(strings.Join(it.operands, ","))
		if err != nil {
			return errf(it.line, "bad string literal")
		}
		a.data = append(a.data, []byte(s)...)
		a.data = append(a.data, 0)
	}
	return nil
}

func (a *assembler) reg(line int, s string) (isa.Reg, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return isa.NoReg, errf(line, "bad register %q", s)
	}
	if !r.Architectural() {
		return isa.NoReg, errf(line, "register %s is hardware-only", r)
	}
	return r, nil
}

// memOperand parses "off(reg)" / "(reg)" / "label".
func (a *assembler) memOperand(line int, s string) (isa.Reg, int32, error) {
	i := strings.Index(s, "(")
	if i < 0 {
		// Absolute address via symbol is not supported as a memory
		// operand (MIPS needs a base register); require the paren form.
		return isa.NoReg, 0, errf(line, "memory operand %q must be off(reg)", s)
	}
	j := strings.Index(s, ")")
	if j < i {
		return isa.NoReg, 0, errf(line, "malformed memory operand %q", s)
	}
	base, err := a.reg(line, strings.TrimSpace(s[i+1:j]))
	if err != nil {
		return isa.NoReg, 0, err
	}
	offStr := strings.TrimSpace(s[:i])
	var off int64
	if offStr != "" {
		off, err = a.resolve(line, offStr)
		if err != nil {
			return isa.NoReg, 0, err
		}
	}
	if off < -0x8000 || off > 0x7fff {
		return isa.NoReg, 0, errf(line, "offset %d out of range", off)
	}
	return base, int32(off), nil
}

// branchDisp computes the word displacement from the instruction at addr to
// the operand (label or literal displacement).
func (a *assembler) branchDisp(line int, addr uint32, s string) (int32, error) {
	if v, err := parseNum(s); err == nil {
		return int32(v), nil
	}
	target, err := a.resolve(line, s)
	if err != nil {
		return 0, err
	}
	disp := (target - int64(addr) - 4) / 4
	if disp < -0x8000 || disp > 0x7fff {
		return 0, errf(line, "branch to %q out of range (%d words)", s, disp)
	}
	return int32(disp), nil
}

func (a *assembler) emitInstr(it item) error {
	line := it.line
	ops := it.operands
	need := func(n int) error {
		if len(ops) != n {
			return errf(line, "%s needs %d operands, got %d", it.mnemonic, n, len(ops))
		}
		return nil
	}
	emit := func(in isa.Instr) { a.text = append(a.text, in) }

	switch it.mnemonic {
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		if v, err := parseNum(ops[1]); err == nil {
			switch {
			case v >= -0x8000 && v <= 0x7fff:
				emit(isa.Instr{Op: isa.OpADDIU, Rt: rt, Rs: isa.Zero, Imm: int32(v)})
			case v >= 0 && v <= 0xffff:
				emit(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: isa.Zero, Imm: int32(v)})
			default:
				u := uint32(v)
				emit(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(u >> 16)})
				emit(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: rt, Imm: int32(u & 0xffff)})
			}
			return nil
		}
		// Symbolic constant: matches the pass-1 two-word sizing.
		v, err := a.resolve(line, ops[1])
		if err != nil {
			return err
		}
		u := uint32(v)
		emit(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(u >> 16)})
		emit(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: rt, Imm: int32(u & 0xffff)})
		return nil
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		v, err := a.resolve(line, ops[1])
		if err != nil {
			return err
		}
		u := uint32(v)
		emit(isa.Instr{Op: isa.OpLUI, Rt: rt, Imm: int32(u >> 16)})
		emit(isa.Instr{Op: isa.OpORI, Rt: rt, Rs: rt, Imm: int32(u & 0xffff)})
		return nil
	case "move":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: isa.OpADDU, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil
	case "b":
		if err := need(1); err != nil {
			return err
		}
		disp, err := a.branchDisp(line, it.addr, ops[0])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: isa.OpBEQ, Rs: isa.Zero, Rt: isa.Zero, Imm: disp})
		return nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(line, it.addr, ops[1])
		if err != nil {
			return err
		}
		op := isa.OpBEQ
		if it.mnemonic == "bnez" {
			op = isa.OpBNE
		}
		emit(isa.Instr{Op: op, Rs: rs, Rt: isa.Zero, Imm: disp})
		return nil
	}

	op, _ := isa.OpByName(it.mnemonic)
	switch {
	case op == isa.OpNOP || op == isa.OpHALT:
		if err := need(0); err != nil {
			return err
		}
		emit(isa.Instr{Op: op})
	case op.IsMem():
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		base, off, err := a.memOperand(line, ops[1])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rt: rt, Rs: base, Imm: off})
	case op == isa.OpBEQ || op == isa.OpBNE:
		if err := need(3); err != nil {
			return err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(line, ops[1])
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(line, it.addr, ops[2])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rs: rs, Rt: rt, Imm: disp})
	case op.IsBranch(): // blez/bgtz/bltz/bgez
		if err := need(2); err != nil {
			return err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(line, it.addr, ops[1])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rs: rs, Imm: disp})
	case op == isa.OpJ || op == isa.OpJAL:
		if err := need(1); err != nil {
			return err
		}
		target, err := a.resolve(line, ops[0])
		if err != nil {
			return err
		}
		if target&3 != 0 {
			return errf(line, "jump target 0x%x not word aligned", target)
		}
		emit(isa.Instr{Op: op, Target: uint32(target) >> 2})
	case op == isa.OpJR:
		if err := need(1); err != nil {
			return err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rs: rs})
	case op == isa.OpJALR:
		var rd, rs isa.Reg
		var err error
		switch len(ops) {
		case 1:
			rd = isa.RA
			rs, err = a.reg(line, ops[0])
		case 2:
			rd, err = a.reg(line, ops[0])
			if err == nil {
				rs, err = a.reg(line, ops[1])
			}
		default:
			err = errf(line, "jalr needs 1 or 2 operands")
		}
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rd: rd, Rs: rs})
	case op == isa.OpLUI:
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		v, err := a.resolve(line, ops[1])
		if err != nil {
			return err
		}
		if v < 0 || v > 0xffff {
			return errf(line, "lui immediate %d out of range", v)
		}
		emit(isa.Instr{Op: op, Rt: rt, Imm: int32(v)})
	case op == isa.OpSLL || op == isa.OpSRL || op == isa.OpSRA:
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(line, ops[1])
		if err != nil {
			return err
		}
		sh, err := a.resolve(line, ops[2])
		if err != nil {
			return err
		}
		if sh < 0 || sh > 31 {
			return errf(line, "shift amount %d out of range", sh)
		}
		emit(isa.Instr{Op: op, Rd: rd, Rt: rt, Imm: int32(sh)})
	case isITypeMnemonic(op):
		if err := need(3); err != nil {
			return err
		}
		rt, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return err
		}
		v, err := a.resolve(line, ops[2])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rt: rt, Rs: rs, Imm: int32(v)})
	default: // three-register ALU / FP proxies
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return err
		}
		rt, err := a.reg(line, ops[2])
		if err != nil {
			return err
		}
		emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
	}
	return nil
}

func isITypeMnemonic(op isa.Op) bool {
	switch op {
	case isa.OpADDI, isa.OpADDIU, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSLTI, isa.OpSLTIU:
		return true
	}
	return false
}
