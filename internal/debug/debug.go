// Package debug implements the interactive debugger engine behind
// cmd/dmdpdbg: breakpoints, single-stepping, register and memory
// inspection, and disassembly over the functional emulator. The command
// interpreter reads/writes plain text so it is fully testable.
package debug

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dmdp/internal/emu"
	"dmdp/internal/isa"
)

// Session is one debugging session over a program.
type Session struct {
	prog   *isa.Program
	e      *emu.Emulator
	breaks map[uint32]bool
	steps  int64
}

// New starts a session at the program's entry point.
func New(p *isa.Program) *Session {
	return &Session{prog: p, e: emu.New(p), breaks: make(map[uint32]bool)}
}

// Halted reports whether the program has executed HALT.
func (s *Session) Halted() bool { return s.e.Halted() }

// PC returns the current program counter.
func (s *Session) PC() uint32 { return s.e.PC }

// Steps returns the number of instructions executed so far.
func (s *Session) Steps() int64 { return s.steps }

// resolve parses an address: hex/decimal literal or program symbol.
func (s *Session) resolve(tok string) (uint32, error) {
	if v, err := strconv.ParseUint(tok, 0, 32); err == nil {
		return uint32(v), nil
	}
	if a, ok := s.prog.Symbols[tok]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("debug: cannot resolve %q (not a number or symbol)", tok)
}

// step executes one instruction; returns false at HALT or on error.
func (s *Session) step(w io.Writer) bool {
	if s.e.Halted() {
		fmt.Fprintln(w, "program has halted")
		return false
	}
	if _, err := s.e.Step(); err != nil {
		fmt.Fprintln(w, "fault:", err)
		return false
	}
	s.steps++
	return true
}

// Exec interprets one command line; quit reports that the session should
// end.
func (s *Session) Exec(line string, w io.Writer) (quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "q", "quit", "exit":
		return true
	case "h", "help":
		s.help(w)
	case "s", "step":
		n := int64(1)
		if len(args) > 0 {
			if v, err := strconv.ParseInt(args[0], 0, 64); err == nil && v > 0 {
				n = v
			}
		}
		for i := int64(0); i < n; i++ {
			if !s.step(w) {
				break
			}
		}
		s.printLocation(w)
	case "c", "continue":
		max := int64(1_000_000)
		if len(args) > 0 {
			if v, err := strconv.ParseInt(args[0], 0, 64); err == nil && v > 0 {
				max = v
			}
		}
		for i := int64(0); i < max; i++ {
			if !s.step(w) {
				break
			}
			if s.breaks[s.e.PC] {
				fmt.Fprintf(w, "breakpoint at 0x%08x\n", s.e.PC)
				break
			}
		}
		s.printLocation(w)
	case "b", "break":
		if len(args) != 1 {
			fmt.Fprintln(w, "usage: break <addr|symbol>")
			return false
		}
		addr, err := s.resolve(args[0])
		if err != nil {
			fmt.Fprintln(w, err)
			return false
		}
		s.breaks[addr] = true
		fmt.Fprintf(w, "breakpoint set at 0x%08x\n", addr)
	case "d", "delete":
		if len(args) != 1 {
			fmt.Fprintln(w, "usage: delete <addr|symbol>")
			return false
		}
		addr, err := s.resolve(args[0])
		if err != nil {
			fmt.Fprintln(w, err)
			return false
		}
		delete(s.breaks, addr)
		fmt.Fprintf(w, "breakpoint cleared at 0x%08x\n", addr)
	case "r", "regs":
		s.printRegs(w)
	case "m", "mem":
		if len(args) < 1 {
			fmt.Fprintln(w, "usage: mem <addr|symbol> [words]")
			return false
		}
		addr, err := s.resolve(args[0])
		if err != nil {
			fmt.Fprintln(w, err)
			return false
		}
		n := 4
		if len(args) > 1 {
			if v, err := strconv.Atoi(args[1]); err == nil && v > 0 && v <= 64 {
				n = v
			}
		}
		for i := 0; i < n; i++ {
			a := addr + uint32(4*i)
			fmt.Fprintf(w, "0x%08x: 0x%08x\n", a, s.e.Mem.Word(a))
		}
	case "x", "disasm":
		pc := s.e.PC
		if len(args) > 0 {
			a, err := s.resolve(args[0])
			if err != nil {
				fmt.Fprintln(w, err)
				return false
			}
			pc = a
		}
		n := 8
		if len(args) > 1 {
			if v, err := strconv.Atoi(args[1]); err == nil && v > 0 && v <= 64 {
				n = v
			}
		}
		for i := 0; i < n; i++ {
			a := pc + uint32(4*i)
			in, ok := s.prog.InstrAt(a)
			if !ok {
				break
			}
			marker := "  "
			if a == s.e.PC {
				marker = "=>"
			}
			fmt.Fprintf(w, "%s 0x%08x: %s\n", marker, a, in)
		}
	case "i", "info":
		fmt.Fprintf(w, "pc 0x%08x, %d instructions executed, halted=%v\n",
			s.e.PC, s.steps, s.e.Halted())
		if len(s.breaks) > 0 {
			var addrs []uint32
			for a := range s.breaks {
				addrs = append(addrs, a)
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			for _, a := range addrs {
				fmt.Fprintf(w, "breakpoint 0x%08x\n", a)
			}
		}
	case "reset":
		s.e = emu.New(s.prog)
		s.steps = 0
		fmt.Fprintln(w, "reset to entry")
	default:
		fmt.Fprintf(w, "unknown command %q (try help)\n", cmd)
	}
	return false
}

func (s *Session) printLocation(w io.Writer) {
	if s.e.Halted() {
		fmt.Fprintf(w, "[halted after %d instructions]\n", s.steps)
		return
	}
	if in, ok := s.prog.InstrAt(s.e.PC); ok {
		fmt.Fprintf(w, "=> 0x%08x: %s\n", s.e.PC, in)
	} else {
		fmt.Fprintf(w, "=> 0x%08x: <outside text>\n", s.e.PC)
	}
}

func (s *Session) printRegs(w io.Writer) {
	for r := 0; r < isa.NumArchRegs; r++ {
		fmt.Fprintf(w, "%-6s 0x%08x", isa.Reg(r), s.e.Regs[r])
		if (r+1)%4 == 0 {
			fmt.Fprintln(w)
		} else {
			fmt.Fprint(w, "  ")
		}
	}
	fmt.Fprintf(w, "pc     0x%08x\n", s.e.PC)
}

func (s *Session) help(w io.Writer) {
	fmt.Fprint(w, `commands:
  step [n] (s)        execute n instructions
  continue [max] (c)  run until a breakpoint, HALT, or max instructions
  break <a> (b)       set a breakpoint at an address or symbol
  delete <a> (d)      clear a breakpoint
  regs (r)            dump architectural registers
  mem <a> [words] (m) dump memory words
  disasm [a [n]] (x)  disassemble
  info (i)            session status
  reset               restart at entry
  quit (q)            leave
`)
}

// Run drives a read-eval-print loop until quit/EOF.
func (s *Session) Run(in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(out, "dmdpdbg — type 'help' for commands")
	s.printLocation(out)
	for {
		fmt.Fprint(out, "(dbg) ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		if s.Exec(sc.Text(), out) {
			return
		}
	}
}
