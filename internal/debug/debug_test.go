package debug

import (
	"strings"
	"testing"

	"dmdp/internal/asm"
)

const dbgProg = `
	.data
val:	.word 0x1234
	.text
main:
	li $t0, 3
loop:
	addi $t0, $t0, -1
	bnez $t0, loop
target:
	la $t1, val
	lw $t2, 0($t1)
	halt
`

func newSession(t *testing.T) *Session {
	t.Helper()
	p, err := asm.Assemble(dbgProg)
	if err != nil {
		t.Fatal(err)
	}
	return New(p)
}

func exec(t *testing.T, s *Session, cmd string) string {
	t.Helper()
	var b strings.Builder
	if s.Exec(cmd, &b) {
		t.Fatalf("command %q quit the session", cmd)
	}
	return b.String()
}

func TestStepAdvances(t *testing.T) {
	s := newSession(t)
	exec(t, s, "step")
	if s.Steps() != 1 {
		t.Fatalf("steps %d", s.Steps())
	}
	exec(t, s, "s 3")
	if s.Steps() != 4 {
		t.Fatalf("steps %d", s.Steps())
	}
}

func TestBreakpointStopsContinue(t *testing.T) {
	s := newSession(t)
	out := exec(t, s, "break target")
	if !strings.Contains(out, "breakpoint set") {
		t.Fatalf("break output %q", out)
	}
	out = exec(t, s, "continue")
	if !strings.Contains(out, "breakpoint at") {
		t.Fatalf("continue output %q", out)
	}
	if s.PC() != mustSym(t, s, "target") {
		t.Fatalf("stopped at 0x%x", s.PC())
	}
}

func mustSym(t *testing.T, s *Session, name string) uint32 {
	t.Helper()
	a, ok := s.prog.Symbols[name]
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	return a
}

func TestContinueToHalt(t *testing.T) {
	s := newSession(t)
	out := exec(t, s, "continue")
	if !strings.Contains(out, "halted") {
		t.Fatalf("expected halt, got %q", out)
	}
	if !s.Halted() {
		t.Fatal("session not halted")
	}
	// Stepping after halt is a no-op with a message.
	out = exec(t, s, "step")
	if !strings.Contains(out, "halted") {
		t.Fatalf("step after halt: %q", out)
	}
}

func TestRegsAndMem(t *testing.T) {
	s := newSession(t)
	exec(t, s, "continue")
	regs := exec(t, s, "regs")
	if !strings.Contains(regs, "$t2") || !strings.Contains(regs, "0x00001234") {
		t.Fatalf("regs output missing load result:\n%s", regs)
	}
	mem := exec(t, s, "mem val 1")
	if !strings.Contains(mem, "0x00001234") {
		t.Fatalf("mem output %q", mem)
	}
}

func TestDisasm(t *testing.T) {
	s := newSession(t)
	out := exec(t, s, "disasm main 2")
	if !strings.Contains(out, "addiu") {
		t.Fatalf("disasm output %q", out)
	}
	if !strings.Contains(out, "=>") {
		t.Fatalf("current-pc marker missing: %q", out)
	}
}

func TestDeleteBreakpointAndInfo(t *testing.T) {
	s := newSession(t)
	exec(t, s, "break target")
	info := exec(t, s, "info")
	if !strings.Contains(info, "breakpoint 0x") {
		t.Fatalf("info missing breakpoint: %q", info)
	}
	exec(t, s, "delete target")
	out := exec(t, s, "continue")
	if strings.Contains(out, "breakpoint at") {
		t.Fatalf("deleted breakpoint still fired: %q", out)
	}
}

func TestReset(t *testing.T) {
	s := newSession(t)
	exec(t, s, "continue")
	exec(t, s, "reset")
	if s.Halted() || s.Steps() != 0 {
		t.Fatal("reset did not restart")
	}
}

func TestBadCommands(t *testing.T) {
	s := newSession(t)
	if out := exec(t, s, "bogus"); !strings.Contains(out, "unknown command") {
		t.Fatalf("bogus: %q", out)
	}
	if out := exec(t, s, "break nosuchsymbol"); !strings.Contains(out, "cannot resolve") {
		t.Fatalf("bad symbol: %q", out)
	}
	if out := exec(t, s, "mem"); !strings.Contains(out, "usage") {
		t.Fatalf("mem usage: %q", out)
	}
}

func TestQuit(t *testing.T) {
	s := newSession(t)
	var b strings.Builder
	if !s.Exec("quit", &b) {
		t.Fatal("quit should end the session")
	}
}

func TestREPL(t *testing.T) {
	s := newSession(t)
	in := strings.NewReader("step\nregs\nquit\n")
	var out strings.Builder
	s.Run(in, &out)
	if !strings.Contains(out.String(), "(dbg)") || !strings.Contains(out.String(), "$t0") {
		t.Fatalf("repl output:\n%s", out.String())
	}
}

func TestREPLEOF(t *testing.T) {
	s := newSession(t)
	var out strings.Builder
	s.Run(strings.NewReader(""), &out) // EOF immediately: must return
}
