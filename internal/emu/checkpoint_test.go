package emu

import (
	"context"
	"errors"
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// ckProg is a small loop with a rolling store/load working set so that
// checkpoints carry real dirty pages.
const ckProg = `
	li   $t0, 0          # i
	li   $t1, 2000       # iterations
	li   $t2, 0x1000     # buffer base
loop:
	sll  $t3, $t0, 2
	andi $t3, $t3, 0x0ffc
	add  $t4, $t2, $t3
	sw   $t0, 0($t4)
	lw   $t5, 0($t4)
	add  $t6, $t6, $t5
	addi $t0, $t0, 1
	bne  $t0, $t1, loop
	halt
`

func TestSnapshotResumeBitIdentical(t *testing.T) {
	p, err := asm.Assemble(ckProg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !full.HitHalt {
		t.Fatal("program should halt within budget")
	}

	// Re-run, snapshotting mid-execution, then resume and compare the
	// tail against the reference trace.
	const cut = 5_000
	e := New(p)
	init := e.Mem.Clone()
	dirty := map[uint32]bool{}
	for i := 0; i < cut; i++ {
		ent, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ent.IsStore() {
			for b := uint32(0); b < uint32(ent.Size); b++ {
				dirty[(ent.Addr+b)&^uint32(mem.PageSize-1)] = true
			}
		}
	}
	bases := make([]uint32, 0, len(dirty))
	for b := range dirty {
		bases = append(bases, b)
	}
	ck := e.Snapshot(bases)
	if ck.At != cut {
		t.Fatalf("snapshot At = %d, want %d", ck.At, cut)
	}
	if len(ck.Pages) == 0 {
		t.Fatal("expected dirty pages in the checkpoint")
	}

	r, err := Resume(p, init, ck)
	if err != nil {
		t.Fatal(err)
	}
	if r.InstrCount() != cut {
		t.Fatalf("resumed count = %d", r.InstrCount())
	}
	for i := cut; i < len(full.Entries); i++ {
		got, err := r.Step()
		if err != nil {
			t.Fatalf("resumed step %d: %v", i, err)
		}
		want := full.Entries[i]
		// The reference trace has been analyzed; compare the raw fields.
		want.StoresBefore, want.LoadsBefore, want.DepStore, want.DepOverlap = 0, 0, 0, 0
		if got != want {
			t.Fatalf("entry %d diverged after resume:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if !r.Halted() {
		t.Fatal("resumed run should halt where the reference did")
	}
}

func TestResumeRequiresArchState(t *testing.T) {
	if _, err := Resume(nil, mem.NewImage(), &Checkpoint{At: 5}); err == nil {
		t.Fatal("image-only checkpoint must not be resumable")
	}
}

func TestStepNHaltError(t *testing.T) {
	p, err := asm.Assemble("halt\n")
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	if err := e.StepN(1); err != nil {
		t.Fatal(err)
	}
	if err := e.StepN(1); err == nil {
		t.Fatal("StepN past halt must error")
	}
}

func TestRunCtxCancelsMidBuild(t *testing.T) {
	p, err := asm.Assemble(`
	loop:
		addi $t0, $t0, 1
		j    loop
	`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunCtx(ctx, p, 10_000_000)
	var bc *trace.BuildCanceled
	if !errors.As(err, &bc) {
		t.Fatalf("want *trace.BuildCanceled, got %v", err)
	}
	if bc.Entries <= 0 || bc.Entries >= 10_000_000 {
		t.Fatalf("cancel should fire mid-build, got %d entries", bc.Entries)
	}
}
