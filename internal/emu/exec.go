package emu

import (
	"fmt"

	"dmdp/internal/isa"
	"dmdp/internal/trace"
)

// Exec executes one instruction against an explicit architectural state:
// a register file plus load/store callbacks. It is the single source of
// ISA semantics, shared by the sequential Emulator, the multicore
// semantic coupling layer (which resolves load values from the global
// memory order), and the litmus I2E reference executor (which threads
// them through per-thread store buffers).
//
// regs is mutated in place ($zero and non-architectural registers are
// never written). The returned trace entry carries PC/Instr/Addr/Size/
// Value/Taken/Silent/Target exactly as Emulator.Step records them;
// ent.Target is the next PC. HALT is left to the caller to detect
// (in.Op == isa.OpHALT): Exec itself treats it as a no-op.
//
// For stores, load is invoked first on the same address to compute the
// Silent flag (store of an identical value); callers whose load callback
// has side effects must tolerate that probe.
func Exec(in isa.Instr, pc uint32, regs *[isa.NumArchRegs]uint32,
	load func(addr, size uint32) uint32,
	store func(addr, size, val uint32)) (trace.Entry, error) {

	rd := func(r isa.Reg) uint32 {
		if r == isa.Zero || !r.Architectural() {
			return 0
		}
		return regs[r]
	}
	wr := func(r isa.Reg, v uint32) {
		if r != isa.Zero && r.Architectural() {
			regs[r] = v
		}
	}
	branchTarget := func(taken bool) uint32 {
		if taken {
			return pc + 4 + uint32(in.Imm)<<2
		}
		return pc + 4
	}

	ent := trace.Entry{PC: pc, Instr: in}
	next := pc + 4

	rs, rt := rd(in.Rs), rd(in.Rt)
	switch in.Op {
	case isa.OpNOP:
	case isa.OpHALT:
	case isa.OpADD, isa.OpADDU:
		wr(in.Rd, rs+rt)
	case isa.OpSUB, isa.OpSUBU:
		wr(in.Rd, rs-rt)
	case isa.OpAND:
		wr(in.Rd, rs&rt)
	case isa.OpOR:
		wr(in.Rd, rs|rt)
	case isa.OpXOR:
		wr(in.Rd, rs^rt)
	case isa.OpNOR:
		wr(in.Rd, ^(rs | rt))
	case isa.OpSLT:
		wr(in.Rd, b2u(int32(rs) < int32(rt)))
	case isa.OpSLTU:
		wr(in.Rd, b2u(rs < rt))
	case isa.OpSLL:
		wr(in.Rd, rt<<uint32(in.Imm))
	case isa.OpSRL:
		wr(in.Rd, rt>>uint32(in.Imm))
	case isa.OpSRA:
		wr(in.Rd, uint32(int32(rt)>>uint32(in.Imm)))
	case isa.OpSLLV:
		wr(in.Rd, rt<<(rs&31))
	case isa.OpSRLV:
		wr(in.Rd, rt>>(rs&31))
	case isa.OpSRAV:
		wr(in.Rd, uint32(int32(rt)>>(rs&31)))
	case isa.OpMUL, isa.OpFMUL:
		wr(in.Rd, uint32(int64(int32(rs))*int64(int32(rt))))
	case isa.OpMULH:
		wr(in.Rd, uint32(uint64(int64(int32(rs))*int64(int32(rt)))>>32))
	case isa.OpDIVOP, isa.OpFDIV:
		wr(in.Rd, divS(rs, rt))
	case isa.OpREMOP:
		wr(in.Rd, remS(rs, rt))
	case isa.OpFADD:
		wr(in.Rd, rs+rt)
	case isa.OpADDI, isa.OpADDIU:
		wr(in.Rt, rs+uint32(in.Imm))
	case isa.OpANDI:
		wr(in.Rt, rs&uint32(uint16(in.Imm)))
	case isa.OpORI:
		wr(in.Rt, rs|uint32(uint16(in.Imm)))
	case isa.OpXORI:
		wr(in.Rt, rs^uint32(uint16(in.Imm)))
	case isa.OpSLTI:
		wr(in.Rt, b2u(int32(rs) < in.Imm))
	case isa.OpSLTIU:
		wr(in.Rt, b2u(rs < uint32(in.Imm)))
	case isa.OpLUI:
		wr(in.Rt, uint32(in.Imm)<<16)
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		addr := rs + uint32(in.Imm)
		size := in.Op.MemBytes()
		if addr%size != 0 {
			return trace.Entry{}, fmt.Errorf("emu: unaligned %s at 0x%08x (pc 0x%08x)", in.Op, addr, pc)
		}
		raw := load(addr, size)
		v := trace.ExtendLoad(in.Op, raw)
		wr(in.Rt, v)
		ent.Addr, ent.Size, ent.Value = addr, uint8(size), v
	case isa.OpSB, isa.OpSH, isa.OpSW:
		addr := rs + uint32(in.Imm)
		size := in.Op.MemBytes()
		if addr%size != 0 {
			return trace.Entry{}, fmt.Errorf("emu: unaligned %s at 0x%08x (pc 0x%08x)", in.Op, addr, pc)
		}
		mask := uint32(0xffffffff)
		if size < 4 {
			mask = 1<<(8*size) - 1
		}
		old := load(addr, size)
		ent.Silent = old == rt&mask
		store(addr, size, rt)
		ent.Addr, ent.Size, ent.Value = addr, uint8(size), rt
	case isa.OpBEQ:
		ent.Taken = rs == rt
		next = branchTarget(ent.Taken)
	case isa.OpBNE:
		ent.Taken = rs != rt
		next = branchTarget(ent.Taken)
	case isa.OpBLEZ:
		ent.Taken = int32(rs) <= 0
		next = branchTarget(ent.Taken)
	case isa.OpBGTZ:
		ent.Taken = int32(rs) > 0
		next = branchTarget(ent.Taken)
	case isa.OpBLTZ:
		ent.Taken = int32(rs) < 0
		next = branchTarget(ent.Taken)
	case isa.OpBGEZ:
		ent.Taken = int32(rs) >= 0
		next = branchTarget(ent.Taken)
	case isa.OpJ:
		ent.Taken = true
		next = in.Target << 2
	case isa.OpJAL:
		ent.Taken = true
		wr(isa.RA, pc+4)
		next = in.Target << 2
	case isa.OpJR:
		ent.Taken = true
		next = rs
	case isa.OpJALR:
		ent.Taken = true
		wr(in.Rd, pc+4)
		next = rs
	default:
		return trace.Entry{}, fmt.Errorf("emu: unimplemented op %s at 0x%08x", in.Op, pc)
	}

	ent.Target = next
	return ent, nil
}
