package emu

import (
	"context"
	"fmt"

	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// Checkpoint is a restorable snapshot of architectural state at an
// instruction boundary. The memory image is stored as a delta: only the
// pages dirtied since execution began, with their full content at capture
// time. Restoring overlays those pages on the pristine initial image, so
// every checkpoint is independently restorable (no chaining) and costs
// O(dirty pages) instead of O(instructions replayed).
type Checkpoint struct {
	// At is the number of instructions retired when the snapshot was
	// taken (the trace index of the next instruction to execute).
	At int64
	// PC and Regs are the architectural state (valid when HasArch).
	PC   uint32
	Regs [isa.NumArchRegs]uint32
	// HasArch distinguishes full architectural checkpoints (resumable by
	// the emulator) from image-only checkpoints used to rebuild interval
	// sub-traces from an already-materialized trace.
	HasArch bool
	// Pages maps page base address -> page content at capture time, for
	// every page written since the initial image.
	Pages map[uint32]*[mem.PageSize]byte
}

// Snapshot captures the emulator's architectural state as a checkpoint.
// dirty lists the base addresses of the pages written since execution
// began (the caller tracks them from the store entries it has seen);
// bases whose page was never materialized are skipped.
func (e *Emulator) Snapshot(dirty []uint32) *Checkpoint {
	ck := &Checkpoint{
		At:      e.count,
		PC:      e.PC,
		Regs:    e.Regs,
		HasArch: true,
		Pages:   make(map[uint32]*[mem.PageSize]byte, len(dirty)),
	}
	for _, base := range dirty {
		if pg, ok := e.Mem.PageCopy(base); ok {
			ck.Pages[base] = pg
		}
	}
	return ck
}

// RestoreImage overlays the checkpoint's dirty pages on a clone of the
// initial memory image, yielding memory as it was at ck.At.
func (ck *Checkpoint) RestoreImage(init *mem.Image) *mem.Image {
	img := init.Clone()
	for base, pg := range ck.Pages {
		img.SetPage(base, pg)
	}
	return img
}

// Resume reconstructs an emulator mid-execution from a checkpoint taken
// by Snapshot during an earlier run of the same program. Emulation is
// deterministic, so stepping the resumed emulator yields entries
// bit-identical to the original run from instruction ck.At onward.
func Resume(p *isa.Program, init *mem.Image, ck *Checkpoint) (*Emulator, error) {
	if !ck.HasArch {
		return nil, fmt.Errorf("emu: checkpoint at %d has no architectural state", ck.At)
	}
	return &Emulator{
		Prog:  p,
		Mem:   ck.RestoreImage(init),
		Regs:  ck.Regs,
		PC:    ck.PC,
		count: ck.At,
	}, nil
}

// StepN executes n instructions discarding their trace entries — the
// fast-forward used to roll from a checkpoint to an interval start.
func (e *Emulator) StepN(n int64) error {
	for i := int64(0); i < n; i++ {
		if e.halted {
			return fmt.Errorf("emu: halted after %d of %d fast-forward steps", i, n)
		}
		if _, err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunCtx is Run with cancellation: the build polls ctx periodically and
// aborts with a *trace.BuildCanceled error when it fires mid-build.
func RunCtx(ctx context.Context, p *isa.Program, max int64) (*trace.Trace, error) {
	e := New(p)
	init := e.Mem.Clone()
	return trace.CollectCtx(ctx, e, max, p, init)
}
