// Package emu implements the functional (architectural) emulator for the
// simulator's ISA. It is the golden model: it produces the correct-path
// dynamic trace that the timing cores replay, and its results are the
// reference against which speculative load values are verified.
package emu

import (
	"fmt"

	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// StackTop is the initial stack pointer (grows down).
const StackTop = 0x7fff_fff0

// Emulator executes a program architecturally, one instruction per Step.
type Emulator struct {
	Prog *isa.Program
	Mem  *mem.Image
	Regs [isa.NumArchRegs]uint32
	PC   uint32

	halted bool
	count  int64
}

// New loads the program image into a fresh memory and prepares the
// architectural state ($sp at StackTop, $gp at the data base).
func New(p *isa.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: mem.NewImage(), PC: p.Entry}
	e.Mem.SetBytes(p.DataBase, p.Data)
	e.Regs[isa.SP] = StackTop
	e.Regs[isa.GP] = p.DataBase
	return e
}

// Halted reports whether HALT has executed.
func (e *Emulator) Halted() bool { return e.halted }

// InstrCount returns the number of retired instructions.
func (e *Emulator) InstrCount() int64 { return e.count }

func (e *Emulator) reg(r isa.Reg) uint32 {
	if r == isa.Zero || !r.Architectural() {
		return 0
	}
	return e.Regs[r]
}

func (e *Emulator) setReg(r isa.Reg, v uint32) {
	if r != isa.Zero && r.Architectural() {
		e.Regs[r] = v
	}
}

// Step executes one instruction and returns its trace entry. The
// instruction semantics live in Exec; Step binds them to the emulator's
// private memory image and register file.
func (e *Emulator) Step() (trace.Entry, error) {
	if e.halted {
		return trace.Entry{}, fmt.Errorf("emu: step after halt")
	}
	in, ok := e.Prog.InstrAt(e.PC)
	if !ok {
		return trace.Entry{}, fmt.Errorf("emu: PC 0x%08x outside text", e.PC)
	}
	ent, err := Exec(in, e.PC, &e.Regs,
		func(addr, size uint32) uint32 { return e.Mem.Read(addr, size) },
		func(addr, size, val uint32) { e.Mem.Write(addr, size, val) })
	if err != nil {
		return trace.Entry{}, err
	}
	if in.Op == isa.OpHALT {
		e.halted = true
	}
	e.PC = ent.Target
	e.count++
	return ent, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int64(int32(a)) / int64(int32(b)))
}

func remS(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int64(int32(a)) % int64(int32(b)))
}

// Run assembles nothing: it simply executes the program for at most max
// instructions, collecting and analyzing the trace.
func Run(p *isa.Program, max int64) (*trace.Trace, error) {
	e := New(p)
	init := e.Mem.Clone()
	return trace.Collect(e, max, p, init)
}
