// Package emu implements the functional (architectural) emulator for the
// simulator's ISA. It is the golden model: it produces the correct-path
// dynamic trace that the timing cores replay, and its results are the
// reference against which speculative load values are verified.
package emu

import (
	"fmt"

	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// StackTop is the initial stack pointer (grows down).
const StackTop = 0x7fff_fff0

// Emulator executes a program architecturally, one instruction per Step.
type Emulator struct {
	Prog *isa.Program
	Mem  *mem.Image
	Regs [isa.NumArchRegs]uint32
	PC   uint32

	halted bool
	count  int64
}

// New loads the program image into a fresh memory and prepares the
// architectural state ($sp at StackTop, $gp at the data base).
func New(p *isa.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: mem.NewImage(), PC: p.Entry}
	e.Mem.SetBytes(p.DataBase, p.Data)
	e.Regs[isa.SP] = StackTop
	e.Regs[isa.GP] = p.DataBase
	return e
}

// Halted reports whether HALT has executed.
func (e *Emulator) Halted() bool { return e.halted }

// InstrCount returns the number of retired instructions.
func (e *Emulator) InstrCount() int64 { return e.count }

func (e *Emulator) reg(r isa.Reg) uint32 {
	if r == isa.Zero || !r.Architectural() {
		return 0
	}
	return e.Regs[r]
}

func (e *Emulator) setReg(r isa.Reg, v uint32) {
	if r != isa.Zero && r.Architectural() {
		e.Regs[r] = v
	}
}

// Step executes one instruction and returns its trace entry.
func (e *Emulator) Step() (trace.Entry, error) {
	if e.halted {
		return trace.Entry{}, fmt.Errorf("emu: step after halt")
	}
	in, ok := e.Prog.InstrAt(e.PC)
	if !ok {
		return trace.Entry{}, fmt.Errorf("emu: PC 0x%08x outside text", e.PC)
	}
	ent := trace.Entry{PC: e.PC, Instr: in}
	next := e.PC + 4

	rs, rt := e.reg(in.Rs), e.reg(in.Rt)
	switch in.Op {
	case isa.OpNOP:
	case isa.OpHALT:
		e.halted = true
	case isa.OpADD, isa.OpADDU:
		e.setReg(in.Rd, rs+rt)
	case isa.OpSUB, isa.OpSUBU:
		e.setReg(in.Rd, rs-rt)
	case isa.OpAND:
		e.setReg(in.Rd, rs&rt)
	case isa.OpOR:
		e.setReg(in.Rd, rs|rt)
	case isa.OpXOR:
		e.setReg(in.Rd, rs^rt)
	case isa.OpNOR:
		e.setReg(in.Rd, ^(rs | rt))
	case isa.OpSLT:
		e.setReg(in.Rd, b2u(int32(rs) < int32(rt)))
	case isa.OpSLTU:
		e.setReg(in.Rd, b2u(rs < rt))
	case isa.OpSLL:
		e.setReg(in.Rd, rt<<uint32(in.Imm))
	case isa.OpSRL:
		e.setReg(in.Rd, rt>>uint32(in.Imm))
	case isa.OpSRA:
		e.setReg(in.Rd, uint32(int32(rt)>>uint32(in.Imm)))
	case isa.OpSLLV:
		e.setReg(in.Rd, rt<<(rs&31))
	case isa.OpSRLV:
		e.setReg(in.Rd, rt>>(rs&31))
	case isa.OpSRAV:
		e.setReg(in.Rd, uint32(int32(rt)>>(rs&31)))
	case isa.OpMUL, isa.OpFMUL:
		e.setReg(in.Rd, uint32(int64(int32(rs))*int64(int32(rt))))
	case isa.OpMULH:
		e.setReg(in.Rd, uint32(uint64(int64(int32(rs))*int64(int32(rt)))>>32))
	case isa.OpDIVOP, isa.OpFDIV:
		e.setReg(in.Rd, divS(rs, rt))
	case isa.OpREMOP:
		e.setReg(in.Rd, remS(rs, rt))
	case isa.OpFADD:
		e.setReg(in.Rd, rs+rt)
	case isa.OpADDI, isa.OpADDIU:
		e.setReg(in.Rt, rs+uint32(in.Imm))
	case isa.OpANDI:
		e.setReg(in.Rt, rs&uint32(uint16(in.Imm)))
	case isa.OpORI:
		e.setReg(in.Rt, rs|uint32(uint16(in.Imm)))
	case isa.OpXORI:
		e.setReg(in.Rt, rs^uint32(uint16(in.Imm)))
	case isa.OpSLTI:
		e.setReg(in.Rt, b2u(int32(rs) < in.Imm))
	case isa.OpSLTIU:
		e.setReg(in.Rt, b2u(rs < uint32(in.Imm)))
	case isa.OpLUI:
		e.setReg(in.Rt, uint32(in.Imm)<<16)
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		addr := rs + uint32(in.Imm)
		size := in.Op.MemBytes()
		if addr%size != 0 {
			return trace.Entry{}, fmt.Errorf("emu: unaligned %s at 0x%08x (pc 0x%08x)", in.Op, addr, e.PC)
		}
		raw := e.Mem.Read(addr, size)
		v := trace.ExtendLoad(in.Op, raw)
		e.setReg(in.Rt, v)
		ent.Addr, ent.Size, ent.Value = addr, uint8(size), v
	case isa.OpSB, isa.OpSH, isa.OpSW:
		addr := rs + uint32(in.Imm)
		size := in.Op.MemBytes()
		if addr%size != 0 {
			return trace.Entry{}, fmt.Errorf("emu: unaligned %s at 0x%08x (pc 0x%08x)", in.Op, addr, e.PC)
		}
		mask := uint32(0xffffffff)
		if size < 4 {
			mask = 1<<(8*size) - 1
		}
		old := e.Mem.Read(addr, size)
		ent.Silent = old == rt&mask
		e.Mem.Write(addr, size, rt)
		ent.Addr, ent.Size, ent.Value = addr, uint8(size), rt
	case isa.OpBEQ:
		ent.Taken = rs == rt
		next = e.branchTarget(in, ent.Taken)
	case isa.OpBNE:
		ent.Taken = rs != rt
		next = e.branchTarget(in, ent.Taken)
	case isa.OpBLEZ:
		ent.Taken = int32(rs) <= 0
		next = e.branchTarget(in, ent.Taken)
	case isa.OpBGTZ:
		ent.Taken = int32(rs) > 0
		next = e.branchTarget(in, ent.Taken)
	case isa.OpBLTZ:
		ent.Taken = int32(rs) < 0
		next = e.branchTarget(in, ent.Taken)
	case isa.OpBGEZ:
		ent.Taken = int32(rs) >= 0
		next = e.branchTarget(in, ent.Taken)
	case isa.OpJ:
		ent.Taken = true
		next = in.Target << 2
	case isa.OpJAL:
		ent.Taken = true
		e.setReg(isa.RA, e.PC+4)
		next = in.Target << 2
	case isa.OpJR:
		ent.Taken = true
		next = rs
	case isa.OpJALR:
		ent.Taken = true
		e.setReg(in.Rd, e.PC+4)
		next = rs
	default:
		return trace.Entry{}, fmt.Errorf("emu: unimplemented op %s at 0x%08x", in.Op, e.PC)
	}

	ent.Target = next
	e.PC = next
	e.count++
	return ent, nil
}

func (e *Emulator) branchTarget(in isa.Instr, taken bool) uint32 {
	if taken {
		return e.PC + 4 + uint32(in.Imm)<<2
	}
	return e.PC + 4
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int64(int32(a)) / int64(int32(b)))
}

func remS(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return uint32(int64(int32(a)) % int64(int32(b)))
}

// Run assembles nothing: it simply executes the program for at most max
// instructions, collecting and analyzing the trace.
func Run(p *isa.Program, max int64) (*trace.Trace, error) {
	e := New(p)
	init := e.Mem.Clone()
	return trace.Collect(e, max, p, init)
}
