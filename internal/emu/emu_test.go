package emu

import (
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/isa"
)

func run(t *testing.T, src string, max int64) *Emulator {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	e := New(p)
	for i := int64(0); i < max && !e.Halted(); i++ {
		if _, err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return e
}

func TestArithmetic(t *testing.T) {
	e := run(t, `
		li $t0, 7
		li $t1, 3
		add $t2, $t0, $t1    # 10
		sub $t3, $t0, $t1    # 4
		mul $t4, $t0, $t1    # 21
		div $t5, $t0, $t1    # 2
		rem $t6, $t0, $t1    # 1
		slt $t7, $t1, $t0    # 1
		halt
	`, 100)
	want := map[isa.Reg]uint32{
		isa.T2: 10, isa.T3: 4, isa.T4: 21, isa.T5: 2, isa.T6: 1, isa.T7: 1,
	}
	for r, v := range want {
		if e.Regs[r] != v {
			t.Errorf("%s = %d, want %d", r, e.Regs[r], v)
		}
	}
}

func TestNegativeAndLogic(t *testing.T) {
	e := run(t, `
		li $t0, -8
		sra $t1, $t0, 2      # -2
		srl $t2, $t0, 28     # 0xf
		li $t3, 0x0ff0
		andi $t4, $t3, 0xff  # 0xf0
		ori $t5, $t3, 0xf    # 0x0fff
		xori $t6, $t3, 0xff0 # 0
		nor $t7, $zero, $zero # 0xffffffff
		halt
	`, 100)
	if int32(e.Regs[isa.T1]) != -2 {
		t.Errorf("sra = %d", int32(e.Regs[isa.T1]))
	}
	if e.Regs[isa.T2] != 0xf || e.Regs[isa.T4] != 0xf0 ||
		e.Regs[isa.T5] != 0xfff || e.Regs[isa.T6] != 0 ||
		e.Regs[isa.T7] != 0xffffffff {
		t.Error("logic ops wrong")
	}
}

func TestDivideByZeroIsZero(t *testing.T) {
	e := run(t, `
		li $t0, 9
		div $t1, $t0, $zero
		rem $t2, $t0, $zero
		halt
	`, 10)
	if e.Regs[isa.T1] != 0 || e.Regs[isa.T2] != 0 {
		t.Error("div/rem by zero must be 0")
	}
}

func TestLoop(t *testing.T) {
	e := run(t, `
		li $t0, 10
		li $t1, 0
	loop:
		add $t1, $t1, $t0
		addi $t0, $t0, -1
		bnez $t0, loop
		halt
	`, 1000)
	if e.Regs[isa.T1] != 55 {
		t.Errorf("sum = %d, want 55", e.Regs[isa.T1])
	}
	if !e.Halted() {
		t.Error("did not halt")
	}
}

func TestMemoryOps(t *testing.T) {
	e := run(t, `
		.data
	buf:
		.space 16
	val:
		.word 0x80018002
		.text
	main:
		la $t0, buf
		li $t1, 0x11223344
		sw $t1, 0($t0)
		lw $t2, 0($t0)        # 0x11223344
		lhu $t3, 0($t0)       # 0x3344
		lhu $t4, 2($t0)       # 0x1122
		lb $t5, 3($t0)        # 0x11
		sb $zero, 0($t0)
		lw $t6, 0($t0)        # 0x11223300
		la $t7, val
		lh $t8, 0($t7)        # sign-extended 0x8002
		lbu $t9, 1($t7)       # 0x80
		halt
	`, 100)
	if e.Regs[isa.T2] != 0x11223344 || e.Regs[isa.T3] != 0x3344 ||
		e.Regs[isa.T4] != 0x1122 || e.Regs[isa.T5] != 0x11 ||
		e.Regs[isa.T6] != 0x11223300 {
		t.Errorf("word/half/byte ops wrong: %x %x %x %x %x",
			e.Regs[isa.T2], e.Regs[isa.T3], e.Regs[isa.T4], e.Regs[isa.T5], e.Regs[isa.T6])
	}
	if e.Regs[isa.T8] != 0xffff8002 {
		t.Errorf("lh sign extension = %x", e.Regs[isa.T8])
	}
	if e.Regs[isa.T9] != 0x80 {
		t.Errorf("lbu = %x", e.Regs[isa.T9])
	}
}

func TestCallReturn(t *testing.T) {
	e := run(t, `
	main:
		li $a0, 5
		jal double
		move $t0, $v0
		jal double
		move $t1, $v0
		halt
	double:
		add $v0, $a0, $a0
		move $a0, $v0
		jr $ra
	`, 100)
	if e.Regs[isa.T0] != 10 || e.Regs[isa.T1] != 20 {
		t.Errorf("call results %d %d", e.Regs[isa.T0], e.Regs[isa.T1])
	}
}

func TestJalr(t *testing.T) {
	e := run(t, `
	main:
		la $t0, fn
		jalr $t9, $t0
		halt
	fn:
		li $v0, 42
		jr $t9
	`, 100)
	if e.Regs[isa.V0] != 42 {
		t.Errorf("jalr result %d", e.Regs[isa.V0])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	e := run(t, `
		li $t0, 5
		add $zero, $t0, $t0
		addi $zero, $t0, 1
		lui $zero, 0xffff
		move $t1, $zero
		halt
	`, 100)
	if e.Regs[isa.Zero] != 0 || e.Regs[isa.T1] != 0 {
		t.Error("$zero was modified")
	}
}

func TestUnalignedAccessFaults(t *testing.T) {
	p, err := asm.Assemble(`
		li $t0, 0x10000001
		lw $t1, 0($t0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	// li expands to lui+ori; the third step is the lw.
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Step(); err == nil {
		t.Fatal("expected unaligned fault")
	}
}

func TestPCOutsideTextFaults(t *testing.T) {
	p, err := asm.Assemble("nop") // falls off the end
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err == nil {
		t.Fatal("expected PC fault")
	}
}

func TestStepAfterHaltFails(t *testing.T) {
	p, _ := asm.Assemble("halt")
	e := New(p)
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err == nil {
		t.Fatal("expected error stepping after halt")
	}
}

func TestBranchVariants(t *testing.T) {
	e := run(t, `
		li $t0, -1
		li $t1, 1
		li $t9, 0
		bltz $t0, a
		ori $t9, $t9, 1   # skipped
	a:	bgez $t1, b
		ori $t9, $t9, 2   # skipped
	b:	blez $zero, c
		ori $t9, $t9, 4   # skipped
	c:	bgtz $t1, d
		ori $t9, $t9, 8   # skipped
	d:	bltz $t1, e
		ori $t9, $t9, 16  # executed
	e:	halt
	`, 100)
	if e.Regs[isa.T9] != 16 {
		t.Errorf("branch mask = %d, want 16", e.Regs[isa.T9])
	}
}

func TestSilentStoreFlag(t *testing.T) {
	p, err := asm.Assemble(`
		.data
	x:	.word 7
		.text
	main:
		la $t0, x
		li $t1, 7
		sw $t1, 0($t0)   # silent: writes the same 7
		li $t2, 8
		sw $t2, 0($t0)   # not silent
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	var silents []bool
	for _, en := range tr.Entries {
		if en.IsStore() {
			silents = append(silents, en.Silent)
		}
	}
	if len(silents) != 2 || !silents[0] || silents[1] {
		t.Errorf("silent flags = %v", silents)
	}
}

func TestRunCollectsTrace(t *testing.T) {
	p, err := asm.Assemble(`
		li $t0, 3
	loop:
		addi $t0, $t0, -1
		bnez $t0, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HitHalt {
		t.Error("should have halted")
	}
	// li + 3*(addi+bnez) + halt = 8 entries
	if len(tr.Entries) != 8 {
		t.Errorf("trace length %d, want 8", len(tr.Entries))
	}
	// Branch outcomes: taken, taken, not taken.
	var outcomes []bool
	for _, en := range tr.Entries {
		if en.Instr.Op.IsBranch() {
			outcomes = append(outcomes, en.Taken)
		}
	}
	want := []bool{true, true, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Errorf("branch %d taken=%v want %v", i, outcomes[i], want[i])
		}
	}
}

func TestInstrBudgetStopsRun(t *testing.T) {
	p, err := asm.Assemble(`
	loop:
		b loop
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.HitHalt || len(tr.Entries) != 50 {
		t.Errorf("budget run: halt=%v len=%d", tr.HitHalt, len(tr.Entries))
	}
}

func TestGPAndSPInitialized(t *testing.T) {
	p, _ := asm.Assemble("halt")
	e := New(p)
	if e.Regs[isa.SP] != StackTop {
		t.Error("sp not initialized")
	}
	if e.Regs[isa.GP] != p.DataBase {
		t.Error("gp not initialized")
	}
}

func TestMULHAndUnsignedCompares(t *testing.T) {
	e := run(t, `
		li $t0, 0x40000000
		li $t1, 4
		mulh $t2, $t0, $t1     # (2^30 * 4) >> 32 = 1
		li $t3, -1
		sltu $t4, $t0, $t3     # unsigned: 0x40000000 < 0xffffffff = 1
		slt  $t5, $t3, $t0     # signed: -1 < 2^30 = 1
		sltiu $t6, $t3, 5      # unsigned 0xffffffff < 5 = 0
		halt
	`, 100)
	if e.Regs[isa.T2] != 1 {
		t.Errorf("mulh = %d", e.Regs[isa.T2])
	}
	if e.Regs[isa.T4] != 1 || e.Regs[isa.T5] != 1 || e.Regs[isa.T6] != 0 {
		t.Errorf("compares: %d %d %d", e.Regs[isa.T4], e.Regs[isa.T5], e.Regs[isa.T6])
	}
}

func TestBranchTraceTargets(t *testing.T) {
	p, err := asm.Assemble(`
	main:
		beq $zero, $zero, skip
		nop
	skip:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Entries[0].Taken {
		t.Fatal("beq $zero,$zero must be taken")
	}
	if tr.Entries[0].Target != p.Symbols["skip"] {
		t.Fatalf("target 0x%x, want skip 0x%x", tr.Entries[0].Target, p.Symbols["skip"])
	}
	// The next executed entry is at the target.
	if tr.Entries[1].PC != p.Symbols["skip"] {
		t.Fatalf("fell through to 0x%x", tr.Entries[1].PC)
	}
}

func TestShiftVariableOps(t *testing.T) {
	// Variable shifts take (rd, rs=shift amount, rt=value): rd = rt
	// shifted by rs&31.
	e := run(t, `
		li $t0, 0xf0
		li $t1, 4
		sllv $t2, $t1, $t0    # 0xf0 << 4  = 0xf00
		srlv $t3, $t1, $t2    # 0xf00 >> 4 = 0xf0
		li $t4, -16
		li $t6, 8
		srav $t5, $t6, $t4    # -16 >> 8 (arith) = -1
		halt
	`, 100)
	if e.Regs[isa.T2] != 0xf00 || e.Regs[isa.T3] != 0xf0 {
		t.Errorf("sllv/srlv: %x %x", e.Regs[isa.T2], e.Regs[isa.T3])
	}
	if int32(e.Regs[isa.T5]) != -1 {
		t.Errorf("srav = %d", int32(e.Regs[isa.T5]))
	}
}
