package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := NewImage()
	if m.Word(0x1234) != 0 || m.Byte(0) != 0 || m.Half(0xffff_fffe) != 0 {
		t.Fatal("unwritten memory must read zero")
	}
}

func TestWordRoundTripLittleEndian(t *testing.T) {
	m := NewImage()
	m.SetWord(0x100, 0x11223344)
	if m.Byte(0x100) != 0x44 || m.Byte(0x103) != 0x11 {
		t.Fatal("not little endian")
	}
	if m.Word(0x100) != 0x11223344 {
		t.Fatal("word round trip failed")
	}
	if m.Half(0x100) != 0x3344 || m.Half(0x102) != 0x1122 {
		t.Fatal("half reads wrong")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := NewImage()
	addr := uint32(pageSize - 2) // word straddles the first page boundary
	m.SetWord(addr, 0xdeadbeef)
	if m.Word(addr) != 0xdeadbeef {
		t.Fatal("cross-page word failed")
	}
	if m.Pages() != 2 {
		t.Fatalf("expected 2 pages, got %d", m.Pages())
	}
}

func TestSizeDispatch(t *testing.T) {
	m := NewImage()
	m.Write(0x10, 4, 0xaabbccdd)
	if m.Read(0x10, 1) != 0xdd || m.Read(0x10, 2) != 0xccdd || m.Read(0x10, 4) != 0xaabbccdd {
		t.Fatal("sized reads wrong")
	}
	m.Write(0x10, 1, 0x11)
	if m.Read(0x10, 4) != 0xaabbcc11 {
		t.Fatal("byte write clobbered word")
	}
	m.Write(0x12, 2, 0x9988)
	if m.Read(0x10, 4) != 0x9988cc11 {
		t.Fatal("half write wrong")
	}
}

func TestSetBytesAndClone(t *testing.T) {
	m := NewImage()
	m.SetBytes(0x2000, []byte{1, 2, 3, 4, 5})
	c := m.Clone()
	m.SetByte(0x2000, 0xff)
	if c.Byte(0x2000) != 1 {
		t.Fatal("clone not independent")
	}
	if c.Byte(0x2004) != 5 {
		t.Fatal("clone lost data")
	}
}

func TestReadWriteProperty(t *testing.T) {
	m := NewImage()
	f := func(addr uint32, v uint32, size8 uint8) bool {
		size := uint32(1) << (size8 % 3) // 1, 2, 4
		m.Write(addr, size, v)
		mask := uint32(0xffffffff)
		if size < 4 {
			mask = 1<<(8*size) - 1
		}
		return m.Read(addr, size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
