// Package mem provides the sparse little-endian memory image shared by the
// functional emulator and the timing model (which maintains a second image
// reflecting only *committed* stores, so speculation outcomes can be
// decided exactly).
package mem

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// PageSize is the granularity of the sparse image, exported for
// serializers that persist images page by page.
const PageSize = pageSize

// Image is a sparse 32-bit byte-addressable memory. The zero value is an
// empty image; unwritten bytes read as zero.
type Image struct {
	pages map[uint32]*[pageSize]byte

	// One-slot translation cache: accesses cluster heavily within a page
	// (and a multi-byte access probes the map once per byte without it).
	lastPN   uint32
	lastPage *[pageSize]byte
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Image) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	if p := m.lastPage; p != nil && m.lastPN == pn {
		return p
	}
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// Byte returns the byte at addr.
func (m *Image) Byte(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// SetByte stores b at addr.
func (m *Image) SetByte(addr uint32, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Word returns the little-endian 32-bit word at addr (which may be
// unaligned; the emulator enforces alignment separately).
func (m *Image) Word(addr uint32) uint32 {
	return uint32(m.Byte(addr)) |
		uint32(m.Byte(addr+1))<<8 |
		uint32(m.Byte(addr+2))<<16 |
		uint32(m.Byte(addr+3))<<24
}

// SetWord stores the little-endian 32-bit word v at addr.
func (m *Image) SetWord(addr uint32, v uint32) {
	m.SetByte(addr, byte(v))
	m.SetByte(addr+1, byte(v>>8))
	m.SetByte(addr+2, byte(v>>16))
	m.SetByte(addr+3, byte(v>>24))
}

// Half returns the little-endian 16-bit halfword at addr.
func (m *Image) Half(addr uint32) uint16 {
	return uint16(m.Byte(addr)) | uint16(m.Byte(addr+1))<<8
}

// SetHalf stores the little-endian 16-bit halfword v at addr.
func (m *Image) SetHalf(addr uint32, v uint16) {
	m.SetByte(addr, byte(v))
	m.SetByte(addr+1, byte(v>>8))
}

// Read reads size (1, 2 or 4) bytes at addr as a zero-extended value.
func (m *Image) Read(addr, size uint32) uint32 {
	switch size {
	case 1:
		return uint32(m.Byte(addr))
	case 2:
		return uint32(m.Half(addr))
	default:
		return m.Word(addr)
	}
}

// Write writes the low size (1, 2 or 4) bytes of v at addr.
func (m *Image) Write(addr, size, v uint32) {
	switch size {
	case 1:
		m.SetByte(addr, byte(v))
	case 2:
		m.SetHalf(addr, uint16(v))
	default:
		m.SetWord(addr, v)
	}
}

// SetBytes copies data into memory starting at addr.
func (m *Image) SetBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.SetByte(addr+uint32(i), b)
	}
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	c := NewImage()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Pages returns the number of allocated pages (for footprint reporting).
func (m *Image) Pages() int { return len(m.pages) }

// ForEachPage calls fn for every allocated page in ascending page-number
// order with the page's base address and contents. The deterministic
// order makes serialized images canonical regardless of the map's
// iteration order.
func (m *Image) ForEachPage(fn func(base uint32, data *[PageSize]byte)) {
	pns := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	for i := 1; i < len(pns); i++ { // insertion sort; page counts are tiny
		for j := i; j > 0 && pns[j] < pns[j-1]; j-- {
			pns[j], pns[j-1] = pns[j-1], pns[j]
		}
	}
	for _, pn := range pns {
		fn(pn<<pageShift, m.pages[pn])
	}
}

// PageCopy returns a copy of the allocated page whose base address is
// base (page-aligned), or ok=false when that page was never written.
// Unlike the read accessors it does not touch the one-slot translation
// cache, so it is safe to call on an image shared by concurrent readers.
func (m *Image) PageCopy(base uint32) (*[PageSize]byte, bool) {
	p := m.pages[base>>pageShift]
	if p == nil {
		return nil, false
	}
	cp := new([pageSize]byte)
	*cp = *p
	return cp, true
}

// SetPage installs a full page at the page-aligned base address,
// overwriting any existing page (the deserialization counterpart of
// ForEachPage).
func (m *Image) SetPage(base uint32, data *[PageSize]byte) {
	if m.pages == nil {
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	p := new([pageSize]byte)
	*p = *data
	m.pages[base>>pageShift] = p
	m.lastPN, m.lastPage = base>>pageShift, p
}
