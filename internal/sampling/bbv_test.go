package sampling

import (
	"math"
	"testing"

	"dmdp/internal/isa"
	"dmdp/internal/trace"
)

// phaseEntries builds n synthetic entries that loop over blockCount
// distinct basic blocks rooted at basePC (each block: 3 plain ops then a
// control op), giving phases with disjoint PC footprints distinct BBVs.
func phaseEntries(n int, basePC uint32, blockCount int) []trace.Entry {
	var out []trace.Entry
	for len(out) < n {
		for b := 0; b < blockCount && len(out) < n; b++ {
			pc := basePC + uint32(b)*16
			out = append(out,
				trace.Entry{PC: pc, Instr: isa.Instr{Op: isa.OpADD}},
				trace.Entry{PC: pc + 4, Instr: isa.Instr{Op: isa.OpADDI}},
				trace.Entry{PC: pc + 8, Instr: isa.Instr{Op: isa.OpXOR}},
				trace.Entry{PC: pc + 12, Instr: isa.Instr{Op: isa.OpBNE}, Taken: true},
			)
		}
	}
	return out[:n]
}

func TestBBVAccumNormalizedAndDeterministic(t *testing.T) {
	ents := phaseEntries(400, 0x100, 5)
	var a, b BBVAccum
	for i := range ents {
		a.Add(&ents[i])
		b.Add(&ents[i])
	}
	va, vb := a.Finish(), b.Finish()
	if va != vb {
		t.Fatal("identical inputs must produce identical BBVs")
	}
	var sum float64
	for _, x := range va {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("BBV not L1-normalized: sum %f", sum)
	}
	// The accumulator must reset after Finish.
	for i := range ents {
		a.Add(&ents[i])
	}
	if a.Finish() != va {
		t.Fatal("accumulator not reset by Finish")
	}
}

func TestKmeansSeparatesPhases(t *testing.T) {
	// Two well-separated phases, interleaved A A A B B B A A A ...
	a := phaseEntries(300, 0x1000, 4)
	b := phaseEntries(300, 0x8000, 7)
	var ents []trace.Entry
	for blk := 0; blk < 6; blk++ {
		src := a
		if blk%2 == 1 {
			src = b
		}
		ents = append(ents, src...)
	}
	bbvs := ChunkBBVs(ents, 300)
	if len(bbvs) != 6 {
		t.Fatalf("chunks %d", len(bbvs))
	}
	assign := kmeans(bbvs, 2)
	for i := 2; i < len(assign); i += 2 {
		if assign[i] != assign[0] || assign[i+1] != assign[1] {
			t.Fatalf("phases not separated: %v", assign)
		}
	}
	if assign[0] == assign[1] {
		t.Fatalf("distinct phases merged: %v", assign)
	}
}

func TestKmeansDeterministic(t *testing.T) {
	ents := append(phaseEntries(1000, 0x100, 3), phaseEntries(1000, 0x9000, 9)...)
	bbvs := ChunkBBVs(ents, 100)
	a := kmeans(bbvs, 4)
	b := kmeans(bbvs, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("kmeans must be deterministic")
		}
	}
}

func TestAutoPlanWeightsAndAlignment(t *testing.T) {
	// 4 chunks of phase A, 2 of phase B: weights must be 2/3 and 1/3.
	a := phaseEntries(200, 0x1000, 4)
	b := phaseEntries(200, 0x8000, 7)
	var ents []trace.Entry
	for _, src := range [][]trace.Entry{a, a, b, a, b, a} {
		ents = append(ents, src...)
	}
	plan, err := AutoPlan(ChunkBBVs(ents, 200), 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Intervals) != 2 {
		t.Fatalf("intervals %d", len(plan.Intervals))
	}
	var wsum float64
	prev := -1
	for _, iv := range plan.Intervals {
		if iv.Start%200 != 0 || iv.End != iv.Start+200 {
			t.Fatalf("interval [%d,%d) not chunk-aligned", iv.Start, iv.End)
		}
		if iv.Start <= prev {
			t.Fatal("intervals must ascend")
		}
		prev = iv.Start
		wsum += iv.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum %f", wsum)
	}
	w0 := plan.Intervals[0].Weight
	w1 := plan.Intervals[1].Weight
	hi, lo := math.Max(w0, w1), math.Min(w0, w1)
	if math.Abs(hi-4.0/6) > 1e-9 || math.Abs(lo-2.0/6) > 1e-9 {
		t.Fatalf("weights %f/%f, want 4/6 and 2/6", hi, lo)
	}
}

func TestAutoPlanErrors(t *testing.T) {
	if _, err := AutoPlan(nil, 100, 2); err == nil {
		t.Fatal("no chunks must fail")
	}
	if _, err := AutoPlan(make([][BBVDim]float64, 3), 0, 2); err == nil {
		t.Fatal("zero chunk length must fail")
	}
}
