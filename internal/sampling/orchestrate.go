package sampling

import (
	"context"
	"fmt"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/isa"
	"dmdp/internal/trace"
	"dmdp/internal/warm"
)

// Request describes one sampled simulation for Execute. Exactly one of
// Trace (an already-materialized trace) or Prog (streamed emulation, for
// budgets too large to materialize) must be set.
type Request struct {
	Spec   Spec
	Budget int64
	// Jobs is the interval worker-pool width (<=1 serial). Results are
	// byte-identical at any width.
	Jobs int
	// Checkpoint enables persisting/consuming checkpoints (and, on the
	// streaming path, plans) in Store under TraceKey.
	Checkpoint bool
	Store      *artifact.Store
	TraceKey   artifact.Key
	// Warm enables functional warming: cache/TLB/predictor tag state is
	// modelled during the profiling pass and installed before each
	// interval's detailed simulation. Ignored (forced off) under fault
	// injection, like fast-forward: a corrupted run must execute every
	// instruction of every model the same way.
	Warm bool

	Trace *trace.Trace
	Prog  *isa.Program
}

// Outcome is a sampled simulation result plus the plan that produced it.
type Outcome struct {
	Combined *Combined
	Plan     Plan
	// Total is the executed/observed instruction count the plan was laid
	// out over; Streamed reports the streaming (never-materialized) path.
	Total    int64
	Streamed bool
	// PlanCached reports that the plan (and stream geometry) came from
	// the artifact cache, skipping the profiling pass entirely.
	PlanCached bool

	// Warmed reports that functional warming was active for this run
	// (requested and not disabled by fault injection).
	Warmed bool
	// WarmedIntervals/ColdStartIntervals count intervals that installed
	// warm state vs. those that fell back to a cold start (missing or
	// corrupt warm artifacts). Cold starts are correct but less
	// representative; samp-err labels them.
	WarmedIntervals    int64
	ColdStartIntervals int64
	// WarmSnapshotBytes totals the warm snapshot bytes installed.
	WarmSnapshotBytes int64
	// WarmEntries/WarmNanos account the profiling-pass warming work
	// (throughput = WarmEntries / WarmNanos; zero when the plan cache
	// skipped the profiling pass).
	WarmEntries int64
	WarmNanos   int64
}

// autoChunkLen picks the BBV chunk length (= checkpoint spacing and
// representative interval length) for an auto plan: 1% of the budget,
// clamped to [1k, 1M] and to the budget itself.
func autoChunkLen(budget int64) int {
	c := budget / 100
	if c < 1000 {
		c = 1000
	}
	if c > 1_000_000 {
		c = 1_000_000
	}
	if c > budget {
		c = budget
	}
	return int(c)
}

// Execute plans and runs one sampled simulation end to end:
//
//   - materialized path (req.Trace): the plan is computed over the trace
//     (BBV clustering for auto specs, centered systematic sampling
//     otherwise) and intervals are extracted in one rolling pass — or
//     restored from persisted image checkpoints when Checkpoint is set.
//   - streaming path (req.Prog): one chunked emulator pass computes BBVs
//     and captures architectural checkpoints without materializing the
//     trace; intervals are then re-materialized independently (and in
//     parallel) from their nearest checkpoint. With Checkpoint set, the
//     plan and checkpoints persist, so a re-run skips the profiling pass.
//
// Either way the intervals run on a deterministic worker pool and combine
// into a Combined that is byte-identical at any Jobs width.
func Execute(ctx context.Context, cfg config.Config, req Request) (*Outcome, error) {
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	if (req.Trace == nil) == (req.Prog == nil) {
		return nil, fmt.Errorf("sampling: exactly one of Trace or Prog must be set")
	}
	if req.Trace != nil {
		return executeMaterialized(ctx, cfg, req)
	}
	return executeStreamed(ctx, cfg, req)
}

// warmConfig resolves the functional-warming configuration for a
// request: nil when warming is off or fault injection forces it off.
func warmConfig(cfg config.Config, req Request) *warm.Config {
	if !req.Warm || cfg.Faults.Enabled() {
		return nil
	}
	wc := warm.ConfigFrom(cfg)
	return &wc
}

// fillWarmOutcome copies a source's warming accounting into the outcome.
func fillWarmOutcome(out *Outcome, src Source) {
	ws, ok := src.(warmStatsSource)
	if !ok {
		return
	}
	out.Warmed = true
	out.WarmedIntervals, out.ColdStartIntervals, out.WarmSnapshotBytes = ws.warmStats()
}

func executeMaterialized(ctx context.Context, cfg config.Config, req Request) (*Outcome, error) {
	tr := req.Trace
	total := len(tr.Entries)
	var plan Plan
	var err error
	if req.Spec.Auto {
		chunkLen := autoChunkLen(int64(total))
		plan, err = AutoPlan(ChunkBBVs(tr.Entries, chunkLen), chunkLen, req.Spec.Phases())
	} else {
		plan, err = Uniform(total, req.Spec.Len, req.Spec.Count)
	}
	if err != nil {
		return nil, err
	}
	plan.Warmup = req.Spec.Warmup
	wcfg := warmConfig(cfg, req)
	src, err := NewTraceSource(tr, plan, req.Store, req.TraceKey, req.Checkpoint, wcfg)
	if err != nil {
		return nil, err
	}
	comb, err := RunPlan(ctx, cfg, plan, src, req.Jobs)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Combined: comb, Plan: plan, Total: int64(total)}
	if wcfg != nil {
		fillWarmOutcome(out, src)
	}
	return out, nil
}

func executeStreamed(ctx context.Context, cfg config.Config, req Request) (*Outcome, error) {
	// Checkpoint spacing is budget-derived for systematic specs too, not
	// Spec.Len: tying it to the interval length made `-sample 1x1000` at a
	// 100M budget snapshot 100k checkpoints (each an O(dirty pages) delta —
	// quadratic, effectively a hang), while a 50M interval length would
	// have buffered a 2.8 GB chunk. Interval extraction only needs *some*
	// checkpoint at or before each begin; the spacing bounds the re-emulated
	// prefix, so 1% of budget (clamped to [1k, 1M]) serves every spec.
	chunkLen := autoChunkLen(req.Budget)
	out := &Outcome{Streamed: true}
	wcfg := warmConfig(cfg, req)
	var plan Plan

	// A cached plan (only trusted when checkpoints were persisted with
	// it) skips the profiling pass: the stream is reopened with just the
	// recorded geometry and intervals restore from stored checkpoints.
	// With warming requested, the cached plan is only honored when warm
	// state is actually reconstructible for it — otherwise a cold earlier
	// run would pin every warm re-run to cold starts forever; one fresh
	// profiling pass recaptures (and persists) the warm state instead.
	planKey := artifact.PlanKey(req.TraceKey, req.Spec.String(), PlannerVersion)
	var stream *Stream
	if req.Checkpoint && req.Store != nil {
		if rec, ok := req.Store.LoadPlan(planKey); ok && rec.ChunkLen == int64(chunkLen) && planRecordValid(rec) {
			s := OpenStream(req.Prog, chunkLen, rec.Total, rec.HitHalt, req.Store, req.TraceKey, wcfg)
			p := planFromRecord(rec)
			if wcfg == nil || s.warmPlanUsable(p) {
				plan, stream = p, s
				out.Total, out.PlanCached = rec.Total, true
			}
		}
	}
	if stream == nil {
		s, err := BuildStream(ctx, req.Prog, req.Budget, chunkLen, req.Store, req.TraceKey, req.Checkpoint, wcfg)
		if err != nil {
			return nil, err
		}
		if req.Spec.Auto {
			plan, err = s.AutoPlan(req.Spec.Phases())
		} else {
			plan, err = Uniform(int(s.Total), req.Spec.Len, req.Spec.Count)
		}
		if err != nil {
			return nil, err
		}
		plan.Warmup = req.Spec.Warmup
		if req.Checkpoint && req.Store != nil {
			req.Store.StorePlan(planKey, planToRecord(plan, s))
		}
		stream, out.Total = s, s.Total
		out.WarmEntries, out.WarmNanos = s.WarmEntries, s.WarmNanos
	}
	plan.Warmup = req.Spec.Warmup
	src := stream.Source(plan)
	comb, err := RunPlan(ctx, cfg, plan, src, req.Jobs)
	if err != nil {
		return nil, err
	}
	out.Combined, out.Plan = comb, plan
	if wcfg != nil {
		fillWarmOutcome(out, src)
	}
	return out, nil
}

// ChunkBBVs computes the basic-block vector of every full chunkLen-sized
// chunk of entries (the materialized-trace counterpart of the streaming
// profiling pass).
func ChunkBBVs(entries []trace.Entry, chunkLen int) [][BBVDim]float64 {
	var out [][BBVDim]float64
	var acc BBVAccum
	for i := 0; i+chunkLen <= len(entries); i += chunkLen {
		for j := i; j < i+chunkLen; j++ {
			acc.Add(&entries[j])
		}
		out = append(out, acc.Finish())
	}
	return out
}

func planToRecord(p Plan, s *Stream) *artifact.PlanRecord {
	rec := &artifact.PlanRecord{
		ChunkLen: int64(s.ChunkLen),
		Total:    s.Total,
		Warmup:   int64(p.Warmup),
		HitHalt:  s.HitHalt,
	}
	for _, iv := range p.Intervals {
		rec.Intervals = append(rec.Intervals, artifact.PlanInterval{
			Start: int64(iv.Start), End: int64(iv.End), Weight: iv.Weight,
		})
	}
	return rec
}

func planFromRecord(rec *artifact.PlanRecord) Plan {
	p := Plan{Warmup: int(rec.Warmup)}
	for _, iv := range rec.Intervals {
		p.Intervals = append(p.Intervals, Interval{
			Start: int(iv.Start), End: int(iv.End), Weight: iv.Weight,
		})
	}
	return p
}

// planRecordValid sanity-checks a decoded plan record before trusting it
// (a structurally valid file can still carry an impossible plan).
func planRecordValid(rec *artifact.PlanRecord) bool {
	if rec.Total <= 0 || len(rec.Intervals) == 0 || rec.Warmup < 0 {
		return false
	}
	for _, iv := range rec.Intervals {
		if iv.Start < 0 || iv.End <= iv.Start || iv.End > rec.Total || iv.Weight <= 0 {
			return false
		}
	}
	return true
}
