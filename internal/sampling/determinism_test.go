package sampling

import (
	"bytes"
	"context"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

// sliceSource is the roll-forward reference: every interval is extracted
// with the legacy Slice (O(Start) image replay per interval), no
// checkpoints anywhere.
type sliceSource struct {
	tr   *trace.Trace
	plan Plan
}

func (s sliceSource) IntervalTrace(i int) (*trace.Trace, int, error) {
	begin, warm := beginOf(s.plan, i)
	sub, err := Slice(s.tr, Interval{Start: begin, End: s.plan.Intervals[i].End})
	return sub, warm, err
}

// TestCheckpointRestoreBitIdenticalAllProxies is the full determinism
// sweep: for every proxy benchmark and every model, intervals restored
// from persisted checkpoints must produce combined statistics
// byte-identical to the legacy roll-forward Slice path, serially and at
// -j8. This is the contract that lets checkpointed sampling replace
// roll-forward wholesale: faster, never different.
func TestCheckpointRestoreBitIdenticalAllProxies(t *testing.T) {
	const (
		budget      = 24_000
		intervalLen = 1_200
		count       = 3
		warmup      = 240
	)
	store, err := artifact.Open(t.TempDir(), artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	models := []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF}
	ctx := context.Background()
	for _, name := range workload.Names() {
		s, ok := workload.Get(name)
		if !ok {
			t.Fatalf("unknown proxy %s", name)
		}
		tr, err := s.BuildTrace(budget)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plan, err := Uniform(len(tr.Entries), intervalLen, count)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plan.Warmup = warmup
		key := artifact.TraceKey(s.SourceHash(), budget)

		// Cold source publishes checkpoints; warm source restores them.
		if _, err := NewTraceSource(tr, plan, store, key, true, nil); err != nil {
			t.Fatalf("%s cold source: %v", name, err)
		}
		warm, err := NewTraceSource(tr, plan, store, key, true, nil)
		if err != nil {
			t.Fatalf("%s warm source: %v", name, err)
		}
		ref := sliceSource{tr: tr, plan: plan}

		// Interval extraction must agree entry for entry before any
		// simulation: a checkpoint restore is just a faster roll-forward.
		for i := range plan.Intervals {
			a, warmA, err := ref.IntervalTrace(i)
			if err != nil {
				t.Fatalf("%s slice %d: %v", name, i, err)
			}
			b, warmB, err := warm.IntervalTrace(i)
			if err != nil {
				t.Fatalf("%s restore %d: %v", name, i, err)
			}
			if warmA != warmB || len(a.Entries) != len(b.Entries) {
				t.Fatalf("%s interval %d shape: warm %d/%d len %d/%d",
					name, i, warmA, warmB, len(a.Entries), len(b.Entries))
			}
			for j := range a.Entries {
				if a.Entries[j] != b.Entries[j] {
					t.Fatalf("%s interval %d entry %d differs between Slice and checkpoint restore",
						name, i, j)
				}
			}
		}

		for _, m := range models {
			cfg := config.Default(m)
			want, err := RunPlan(ctx, cfg, plan, ref, 1)
			if err != nil {
				t.Fatalf("%s/%s slice run: %v", name, m, err)
			}
			enc := want.MarshalCanonical()
			for _, jobs := range []int{1, 8} {
				got, err := RunPlan(ctx, cfg, plan, warm, jobs)
				if err != nil {
					t.Fatalf("%s/%s -j%d: %v", name, m, jobs, err)
				}
				if !bytes.Equal(enc, got.MarshalCanonical()) {
					t.Fatalf("%s/%s: checkpoint-restored -j%d result differs from roll-forward Slice",
						name, m, jobs)
				}
			}
		}
	}
}
