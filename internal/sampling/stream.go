package sampling

import (
	"context"
	"fmt"

	"dmdp/internal/artifact"
	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// Stream is the checkpointed, chunked view of one program's execution:
// the product of a single emulator pass that never materializes the full
// trace. It records per-chunk basic-block vectors (for phase detection)
// and captures an architectural checkpoint at every chunk boundary, so
// any interval can later be re-materialized by restoring the nearest
// checkpoint and re-emulating at most one chunk — instead of replaying
// from instruction zero.
type Stream struct {
	Prog *isa.Program
	// Init is the pristine initial memory image (program data segment).
	Init *mem.Image
	// ChunkLen is the checkpoint spacing and BBV chunk length.
	ChunkLen int
	// Total is the number of instructions actually executed (below the
	// budget when the program halted early); HitHalt reports which.
	Total   int64
	HitHalt bool
	// BBVs holds one basic-block vector per full chunk, in chunk order
	// (empty for streams reopened from a cached plan).
	BBVs [][BBVDim]float64

	store    *artifact.Store
	traceKey artifact.Key
	// cks holds in-memory checkpoints keyed by instruction index. When a
	// writable store persists checkpoints, only checkpoint 0 is kept here
	// (the store serves the rest); otherwise all boundaries are kept.
	cks map[int64]*emu.Checkpoint
}

// BuildStream executes prog for at most budget instructions in chunks of
// chunkLen, computing per-chunk BBVs and capturing a checkpoint at every
// chunk boundary. With persist set and a writable store, checkpoints are
// published under (traceKey, boundary index) and dropped from memory.
// Cancellation surfaces as *trace.BuildCanceled.
func BuildStream(ctx context.Context, prog *isa.Program, budget int64, chunkLen int, store *artifact.Store, traceKey artifact.Key, persist bool) (*Stream, error) {
	if chunkLen <= 0 {
		return nil, fmt.Errorf("sampling: chunk length %d must be positive", chunkLen)
	}
	e := emu.New(prog)
	s := &Stream{
		Prog:     prog,
		Init:     e.Mem.Clone(),
		ChunkLen: chunkLen,
		store:    store,
		traceKey: traceKey,
		cks:      map[int64]*emu.Checkpoint{},
	}
	offload := persist && store != nil && store.Mode() != artifact.RO
	dirty := map[uint32]bool{}
	var bases []uint32 // reused dirty-base scratch
	var acc BBVAccum

	s.addCheckpoint(e.Snapshot(nil), offload) // boundary 0: no dirty pages yet
	total, hitHalt, err := trace.ForEachChunk(ctx, e, budget, chunkLen,
		func(start int64, chunk []trace.Entry) error {
			for i := range chunk {
				ent := &chunk[i]
				if ent.IsStore() {
					for b := uint32(0); b < uint32(ent.Size); b++ {
						dirty[(ent.Addr+b)&^uint32(mem.PageSize-1)] = true
					}
				}
			}
			if len(chunk) == chunkLen {
				for i := range chunk {
					acc.Add(&chunk[i])
				}
				s.BBVs = append(s.BBVs, acc.Finish())
			}
			end := start + int64(len(chunk))
			if end < budget && !e.Halted() {
				bases = bases[:0]
				for base := range dirty {
					bases = append(bases, base)
				}
				s.addCheckpoint(e.Snapshot(bases), offload)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	s.Total, s.HitHalt = total, hitHalt
	return s, nil
}

func (s *Stream) addCheckpoint(ck *emu.Checkpoint, offload bool) {
	if offload {
		s.store.StoreCheckpoint(artifact.CheckpointKey(s.traceKey, ck.At), ck)
		if ck.At != 0 {
			return
		}
	}
	s.cks[ck.At] = ck
}

// OpenStream reopens a stream whose plan (and therefore chunk geometry
// and totals) was loaded from the plan cache, without re-executing the
// program. Interval extraction restores persisted checkpoints; any miss
// degrades to re-emulation from an earlier boundary or from the start.
func OpenStream(prog *isa.Program, chunkLen int, total int64, hitHalt bool, store *artifact.Store, traceKey artifact.Key) *Stream {
	e := emu.New(prog)
	return &Stream{
		Prog:     prog,
		Init:     e.Mem.Clone(),
		ChunkLen: chunkLen,
		Total:    total,
		HitHalt:  hitHalt,
		store:    store,
		traceKey: traceKey,
		cks:      map[int64]*emu.Checkpoint{},
	}
}

// AutoPlan clusters the stream's BBVs into at most k phases.
func (s *Stream) AutoPlan(k int) (Plan, error) {
	return AutoPlan(s.BBVs, s.ChunkLen, k)
}

// checkpointAt returns the checkpoint at instruction index at, consulting
// memory first, then the store. Nil when neither has a usable one.
func (s *Stream) checkpointAt(at int64) *emu.Checkpoint {
	if ck := s.cks[at]; ck != nil {
		return ck
	}
	if ck, ok := s.store.LoadCheckpoint(artifact.CheckpointKey(s.traceKey, at)); ok && ck.At == at && ck.HasArch {
		return ck
	}
	return nil
}

// resumeAt returns an emulator positioned at instruction index begin by
// restoring the nearest checkpoint at or below begin and fast-forwarding
// the remainder. Missing or corrupt checkpoints degrade to the next
// older boundary and ultimately to re-emulation from the program start —
// slower, never wrong.
func (s *Stream) resumeAt(begin int64) (*emu.Emulator, error) {
	for ci := begin / int64(s.ChunkLen); ci >= 0; ci-- {
		at := ci * int64(s.ChunkLen)
		ck := s.checkpointAt(at)
		if ck == nil {
			continue
		}
		e, err := emu.Resume(s.Prog, s.Init, ck)
		if err != nil {
			continue
		}
		if err := e.StepN(begin - at); err != nil {
			return nil, err
		}
		return e, nil
	}
	e := emu.New(s.Prog)
	if err := e.StepN(begin); err != nil {
		return nil, err
	}
	return e, nil
}

// Source binds a plan to the stream for RunPlan. Interval extraction is
// safe for concurrent workers: each call resumes its own emulator, and
// the shared checkpoint map is read-only after the build.
func (s *Stream) Source(plan Plan) Source {
	return &streamSource{s: s, plan: plan}
}

type streamSource struct {
	s    *Stream
	plan Plan
}

func (ss *streamSource) IntervalTrace(i int) (*trace.Trace, int, error) {
	iv := ss.plan.Intervals[i]
	if iv.Start < 0 || int64(iv.End) > ss.s.Total || iv.Start >= iv.End {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d) out of range (stream %d)",
			iv.Start, iv.End, ss.s.Total)
	}
	begin, warm := beginOf(ss.plan, i)
	e, err := ss.s.resumeAt(int64(begin))
	if err != nil {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d): %w", iv.Start, iv.End, err)
	}
	init := e.Mem.Clone()
	sub, err := trace.Collect(e, int64(iv.End-begin), ss.s.Prog, init)
	if err != nil {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d): %w", iv.Start, iv.End, err)
	}
	if len(sub.Entries) != iv.End-begin {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d): stream replay produced %d of %d entries",
			iv.Start, iv.End, len(sub.Entries), iv.End-begin)
	}
	// Match the materialized Slice contract: an interval is an excerpt,
	// not a program that halted.
	sub.HitHalt = false
	return sub, warm, nil
}
