package sampling

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dmdp/internal/artifact"
	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
	"dmdp/internal/warm"
)

// Stream is the checkpointed, chunked view of one program's execution:
// the product of a single emulator pass that never materializes the full
// trace. It records per-chunk basic-block vectors (for phase detection)
// and captures an architectural checkpoint at every chunk boundary, so
// any interval can later be re-materialized by restoring the nearest
// checkpoint and re-emulating at most one chunk — instead of replaying
// from instruction zero.
type Stream struct {
	Prog *isa.Program
	// Init is the pristine initial memory image (program data segment).
	Init *mem.Image
	// ChunkLen is the checkpoint spacing and BBV chunk length.
	ChunkLen int
	// Total is the number of instructions actually executed (below the
	// budget when the program halted early); HitHalt reports which.
	Total   int64
	HitHalt bool
	// BBVs holds one basic-block vector per full chunk, in chunk order
	// (empty for streams reopened from a cached plan).
	BBVs [][BBVDim]float64

	store    *artifact.Store
	traceKey artifact.Key
	// cks holds in-memory checkpoints keyed by instruction index. When a
	// writable store persists checkpoints, only checkpoint 0 is kept here
	// (the store serves the rest); otherwise all boundaries are kept.
	cks map[int64]*emu.Checkpoint

	// Functional warming (nil warmCfg = off): warms caches full warm
	// snapshots per boundary — captured live by BuildStream, or
	// reconstructed on demand from persisted DMDPCKP2 delta records.
	warmCfg    *warm.Config
	warmParams [32]byte
	warmMu     sync.Mutex
	warms      map[int64][]byte
	// WarmEntries/WarmNanos account the profiling-pass warming work for
	// the throughput counter (zero for reopened streams).
	WarmEntries int64
	WarmNanos   int64
}

// BuildStream executes prog for at most budget instructions in chunks of
// chunkLen, computing per-chunk BBVs and capturing a checkpoint at every
// chunk boundary. With persist set and a writable store, checkpoints are
// published under (traceKey, boundary index) and dropped from memory.
// Cancellation surfaces as *trace.BuildCanceled.
//
// With wcfg set, the same single pass also drives the functional warm
// models (internal/warm) over every executed entry and snapshots the
// warm state at each checkpointed boundary; with persist set, snapshots
// are additionally published as DMDPCKP2 records, delta-compressed
// against the previous boundary with a keyframe every warmKeyEvery
// boundaries.
func BuildStream(ctx context.Context, prog *isa.Program, budget int64, chunkLen int, store *artifact.Store, traceKey artifact.Key, persist bool, wcfg *warm.Config) (*Stream, error) {
	if chunkLen <= 0 {
		return nil, fmt.Errorf("sampling: chunk length %d must be positive", chunkLen)
	}
	e := emu.New(prog)
	s := &Stream{
		Prog:     prog,
		Init:     e.Mem.Clone(),
		ChunkLen: chunkLen,
		store:    store,
		traceKey: traceKey,
		cks:      map[int64]*emu.Checkpoint{},
	}
	s.setWarmCfg(wcfg)
	offload := persist && store != nil && store.Mode() != artifact.RO
	dirty := map[uint32]bool{}
	var bases []uint32 // reused dirty-base scratch
	var acc BBVAccum

	var ws *warm.State
	var prevSnap []byte // previous boundary snapshot (delta base)
	var prevAt int64
	sinceKey := 0
	if wcfg != nil {
		ws = warm.New(*wcfg)
		prevSnap, prevAt = s.captureWarm(ws, 0, nil, -1, offload)
	}

	s.addCheckpoint(e.Snapshot(nil), offload) // boundary 0: no dirty pages yet
	total, hitHalt, err := trace.ForEachChunk(ctx, e, budget, chunkLen,
		func(start int64, chunk []trace.Entry) error {
			if ws != nil {
				t0 := time.Now()
				ws.UpdateChunk(chunk)
				s.WarmNanos += time.Since(t0).Nanoseconds()
				s.WarmEntries += int64(len(chunk))
			}
			for i := range chunk {
				ent := &chunk[i]
				if ent.IsStore() {
					for b := uint32(0); b < uint32(ent.Size); b++ {
						dirty[(ent.Addr+b)&^uint32(mem.PageSize-1)] = true
					}
				}
			}
			if len(chunk) == chunkLen {
				for i := range chunk {
					acc.Add(&chunk[i])
				}
				s.BBVs = append(s.BBVs, acc.Finish())
			}
			end := start + int64(len(chunk))
			if end < budget && !e.Halted() {
				bases = bases[:0]
				for base := range dirty {
					bases = append(bases, base)
				}
				s.addCheckpoint(e.Snapshot(bases), offload)
				if ws != nil {
					sinceKey++
					if sinceKey >= warmKeyEvery {
						sinceKey = 0
					}
					base := prevSnap
					baseAt := prevAt
					if sinceKey == 0 {
						base, baseAt = nil, -1 // keyframe
					}
					prevSnap, prevAt = s.captureWarm(ws, end, base, baseAt, offload)
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	s.Total, s.HitHalt = total, hitHalt
	return s, nil
}

// warmKeyEvery is the keyframe cadence for persisted warm-state deltas:
// a corrupt or evicted record costs at most this many chain links, and
// reconstruction depth stays bounded.
const warmKeyEvery = 16

func (s *Stream) setWarmCfg(wcfg *warm.Config) {
	s.warmCfg = wcfg
	if wcfg != nil {
		s.warmParams = wcfg.ParamsHash()
		s.warms = map[int64][]byte{}
	}
}

// captureWarm snapshots ws at boundary at, caches the snapshot in
// memory, and (when offloading) publishes it as a DMDPCKP2 record —
// delta-compressed against base/baseAt, or a self-contained keyframe
// when baseAt is -1. Returns the snapshot for use as the next delta
// base.
func (s *Stream) captureWarm(ws *warm.State, at int64, base []byte, baseAt int64, offload bool) ([]byte, int64) {
	snap := ws.Snapshot()
	s.warmMu.Lock()
	s.warms[at] = snap
	s.warmMu.Unlock()
	if offload {
		payload := snap
		if baseAt >= 0 {
			payload = warm.EncodeDelta(base, snap)
		}
		s.store.StoreWarm(artifact.WarmKey(s.traceKey, at, s.warmParams),
			&artifact.WarmRecord{At: at, BaseAt: baseAt, Payload: payload})
	}
	return snap, at
}

func (s *Stream) addCheckpoint(ck *emu.Checkpoint, offload bool) {
	if offload {
		s.store.StoreCheckpoint(artifact.CheckpointKey(s.traceKey, ck.At), ck)
		if ck.At != 0 {
			return
		}
	}
	s.cks[ck.At] = ck
}

// OpenStream reopens a stream whose plan (and therefore chunk geometry
// and totals) was loaded from the plan cache, without re-executing the
// program. Interval extraction restores persisted checkpoints; any miss
// degrades to re-emulation from an earlier boundary or from the start.
// With wcfg set, warm snapshots reconstruct from persisted DMDPCKP2
// records; a missing or corrupt record cold-starts the affected
// intervals.
func OpenStream(prog *isa.Program, chunkLen int, total int64, hitHalt bool, store *artifact.Store, traceKey artifact.Key, wcfg *warm.Config) *Stream {
	e := emu.New(prog)
	s := &Stream{
		Prog:     prog,
		Init:     e.Mem.Clone(),
		ChunkLen: chunkLen,
		Total:    total,
		HitHalt:  hitHalt,
		store:    store,
		traceKey: traceKey,
		cks:      map[int64]*emu.Checkpoint{},
	}
	s.setWarmCfg(wcfg)
	return s
}

// AutoPlan clusters the stream's BBVs into at most k phases.
func (s *Stream) AutoPlan(k int) (Plan, error) {
	return AutoPlan(s.BBVs, s.ChunkLen, k)
}

// checkpointAt returns the checkpoint at instruction index at, consulting
// memory first, then the store. Nil when neither has a usable one.
func (s *Stream) checkpointAt(at int64) *emu.Checkpoint {
	if ck := s.cks[at]; ck != nil {
		return ck
	}
	if ck, ok := s.store.LoadCheckpoint(artifact.CheckpointKey(s.traceKey, at)); ok && ck.At == at && ck.HasArch {
		return ck
	}
	return nil
}

// resumeAt returns an emulator positioned at instruction index begin by
// restoring the nearest checkpoint at or below begin and fast-forwarding
// the remainder. Missing or corrupt checkpoints degrade to the next
// older boundary and ultimately to re-emulation from the program start —
// slower, never wrong.
func (s *Stream) resumeAt(begin int64) (*emu.Emulator, error) {
	for ci := begin / int64(s.ChunkLen); ci >= 0; ci-- {
		at := ci * int64(s.ChunkLen)
		ck := s.checkpointAt(at)
		if ck == nil {
			continue
		}
		e, err := emu.Resume(s.Prog, s.Init, ck)
		if err != nil {
			continue
		}
		if err := e.StepN(begin - at); err != nil {
			return nil, err
		}
		return e, nil
	}
	e := emu.New(s.Prog)
	if err := e.StepN(begin); err != nil {
		return nil, err
	}
	return e, nil
}

// warmAt returns the full warm snapshot at boundary at, consulting the
// in-memory cache first and then reconstructing from persisted DMDPCKP2
// records (walking delta chains back to a keyframe). Nil when the state
// is unavailable or corrupt — the caller degrades to a cold start.
func (s *Stream) warmAt(at int64) []byte {
	return s.warmAtDepth(at, 4*warmKeyEvery)
}

func (s *Stream) warmAtDepth(at int64, depth int) []byte {
	if depth <= 0 || at < 0 {
		return nil // hostile or cyclic delta chain: give up, cold-start
	}
	s.warmMu.Lock()
	snap, ok := s.warms[at]
	s.warmMu.Unlock()
	if ok {
		return snap
	}
	rec, ok := s.store.LoadWarm(artifact.WarmKey(s.traceKey, at, s.warmParams))
	if !ok || rec.At != at {
		return nil
	}
	if rec.BaseAt == -1 {
		snap = rec.Payload
	} else {
		base := s.warmAtDepth(rec.BaseAt, depth-1)
		if base == nil {
			return nil
		}
		var err error
		if snap, err = warm.ApplyDelta(base, rec.Payload); err != nil {
			return nil
		}
	}
	s.warmMu.Lock()
	s.warms[at] = snap
	s.warmMu.Unlock()
	return snap
}

// warmPlanUsable reports whether persisted warm state can serve the
// plan's intervals, by probing the highest checkpoint boundary any
// interval resumes from (reconstruction is cached, so the probe's work
// is not wasted). It is a heuristic gate for the plan cache: boundary
// chains usually persist or vanish together, and any straggler interval
// still degrades to a cold start individually at run time.
func (s *Stream) warmPlanUsable(plan Plan) bool {
	if s.warmCfg == nil || len(plan.Intervals) == 0 {
		return false
	}
	maxBegin := 0
	for i := range plan.Intervals {
		if b, _ := beginOf(plan, i); b > maxBegin {
			maxBegin = b
		}
	}
	at := maxBegin / s.ChunkLen * s.ChunkLen
	if at == 0 {
		return true // fresh empty state is definitionally available
	}
	return s.warmAt(int64(at)) != nil
}

// resumeWarmAt returns an emulator positioned at instruction index begin
// plus the warm snapshot at begin, by restoring the nearest usable
// checkpoint and rolling forward while feeding the roll-forward entries
// to the warm model. The warm decision happens at the single boundary
// whose checkpoint the resume actually uses: if warm state is
// unavailable there, the interval cold-starts (nil snapshot) — the
// result is then a superset of the cold path's work, never different
// work. Boundary 0 always warms (the empty state is definitionally
// available).
func (s *Stream) resumeWarmAt(begin int64) (*emu.Emulator, []byte, error) {
	for ci := begin / int64(s.ChunkLen); ci >= 0; ci-- {
		at := ci * int64(s.ChunkLen)
		var e *emu.Emulator
		if ck := s.checkpointAt(at); ck != nil {
			var err error
			if e, err = emu.Resume(s.Prog, s.Init, ck); err != nil {
				e = nil
			}
		}
		if e == nil {
			if at != 0 {
				continue
			}
			e = emu.New(s.Prog) // boundary 0 needs no stored checkpoint
		}
		var ws *warm.State
		if at == 0 {
			ws = warm.New(*s.warmCfg)
		} else if snap := s.warmAt(at); snap != nil {
			var err error
			if ws, err = warm.FromSnapshot(*s.warmCfg, snap); err != nil {
				ws = nil
			}
		}
		if ws == nil {
			// Cold start: plain roll-forward, exactly the unwarmed path.
			if err := e.StepN(begin - at); err != nil {
				return nil, nil, err
			}
			return e, nil, nil
		}
		if begin > at {
			rolled, _, err := trace.ForEachChunk(context.Background(), e, begin-at, warmRollChunk,
				func(_ int64, chunk []trace.Entry) error {
					ws.UpdateChunk(chunk)
					return nil
				})
			if err != nil {
				return nil, nil, err
			}
			if rolled != begin-at {
				return nil, nil, fmt.Errorf("sampling: roll-forward from %d executed %d of %d instructions",
					at, rolled, begin-at)
			}
		}
		return e, ws.Snapshot(), nil
	}
	// No usable checkpoint anywhere: unreachable, since boundary 0
	// synthesizes a fresh emulator; kept for symmetry with resumeAt.
	e := emu.New(s.Prog)
	if err := e.StepN(begin); err != nil {
		return nil, nil, err
	}
	return e, nil, nil
}

// warmRollChunk is the buffered chunk length for warm roll-forwards: big
// enough to amortize the callback, small enough to stay cache-friendly.
const warmRollChunk = 1 << 16

// Source binds a plan to the stream for RunPlan. Interval extraction is
// safe for concurrent workers: each call resumes its own emulator, and
// the shared checkpoint map is read-only after the build (the warm
// snapshot cache has its own lock).
func (s *Stream) Source(plan Plan) Source {
	src := &streamSource{s: s, plan: plan}
	if s.warmCfg != nil {
		src.wc = newWarmCollector(len(plan.Intervals))
	}
	return src
}

type streamSource struct {
	s    *Stream
	plan Plan
	wc   *warmCollector // nil = warming off
}

func (ss *streamSource) IntervalTrace(i int) (*trace.Trace, int, error) {
	iv := ss.plan.Intervals[i]
	if iv.Start < 0 || int64(iv.End) > ss.s.Total || iv.Start >= iv.End {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d) out of range (stream %d)",
			iv.Start, iv.End, ss.s.Total)
	}
	begin, warmN := beginOf(ss.plan, i)
	var e *emu.Emulator
	var err error
	if ss.wc != nil {
		var snap []byte
		e, snap, err = ss.s.resumeWarmAt(int64(begin))
		if err == nil {
			ss.wc.set(i, snap, iv.Start, iv.End)
		}
	} else {
		e, err = ss.s.resumeAt(int64(begin))
	}
	if err != nil {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d): %w", iv.Start, iv.End, err)
	}
	init := e.Mem.Clone()
	sub, err := trace.Collect(e, int64(iv.End-begin), ss.s.Prog, init)
	if err != nil {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d): %w", iv.Start, iv.End, err)
	}
	if len(sub.Entries) != iv.End-begin {
		return nil, 0, fmt.Errorf("sampling: interval [%d,%d): stream replay produced %d of %d entries",
			iv.Start, iv.End, len(sub.Entries), iv.End-begin)
	}
	// Match the materialized Slice contract: an interval is an excerpt,
	// not a program that halted.
	sub.HitHalt = false
	return sub, warmN, nil
}

func (ss *streamSource) IntervalWarm(i int) []byte { return ss.wc.get(i) }
func (ss *streamSource) WarmInstallFailed(i int)   { ss.wc.installFailed(i) }
func (ss *streamSource) warmStats() (int64, int64, int64) {
	return ss.wc.stats()
}
