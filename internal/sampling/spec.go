package sampling

import "fmt"

// DefaultPhases is the cluster count used by auto plans when the spec
// does not name one.
const DefaultPhases = 8

// Spec is a parsed -sample flag: either an automatic BBV/k-means plan
// ("auto", "auto:K", optionally "+WARMUP") or an explicit systematic plan
// ("COUNTxLEN", optionally "+WARMUP").
type Spec struct {
	// Auto selects BBV phase detection; K is the cluster count (0 means
	// DefaultPhases).
	Auto bool
	K    int
	// Count intervals of Len entries each (explicit plans only).
	Count, Len int
	// Warmup entries are prepended to each interval and excluded from
	// the statistics.
	Warmup int
}

// Phases returns the resolved cluster count for auto specs.
func (s Spec) Phases() int {
	if s.K > 0 {
		return s.K
	}
	return DefaultPhases
}

// String renders the canonical spec form (resolved defaults included).
// It doubles as the spec component of persisted plan cache keys, so two
// specs that plan identically must render identically.
func (s Spec) String() string {
	if s.Auto {
		return fmt.Sprintf("auto:%d+%d", s.Phases(), s.Warmup)
	}
	return fmt.Sprintf("%dx%d+%d", s.Count, s.Len, s.Warmup)
}

// Validate rejects specs that cannot produce a plan.
func (s Spec) Validate() error {
	if s.Warmup < 0 {
		return fmt.Errorf("sampling: negative warmup %d", s.Warmup)
	}
	if s.Auto {
		if s.K < 0 {
			return fmt.Errorf("sampling: negative phase count %d", s.K)
		}
		return nil
	}
	if s.Count <= 0 || s.Len <= 0 {
		return fmt.Errorf("sampling: explicit spec needs positive COUNTxLEN, got %dx%d", s.Count, s.Len)
	}
	return nil
}
