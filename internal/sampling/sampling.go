// Package sampling implements interval sampling in the spirit of the
// paper's SimPoint methodology (§V): instead of simulating a whole
// program, weighted intervals are simulated independently — each from a
// cold start, like the paper's checkpoints, which carry only the memory
// image and architectural registers — and their statistics are combined
// by weight. The paper compensates for cold predictors with large (100M)
// intervals; this package makes the interval length a parameter.
package sampling

import (
	"context"
	"fmt"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/trace"
)

// Interval is a half-open [Start, End) range of trace indices with a
// SimPoint-style weight.
type Interval struct {
	Start, End int
	Weight     float64
}

// Plan is a set of intervals to simulate.
type Plan struct {
	Intervals []Interval
	// Warmup prepends up to this many trace entries before each
	// interval; they execute (warming caches and predictors) but their
	// statistics are discarded. The paper's checkpoints start cold and
	// compensate with interval size (§V); warmup is the explicit
	// alternative.
	Warmup int
}

// WithWarmup returns a copy of the plan using n warmup entries per
// interval.
func (p Plan) WithWarmup(n int) Plan {
	p.Warmup = n
	return p
}

// Uniform builds a plan of count intervals of length intervalLen spread
// evenly across a trace of traceLen entries, equally weighted (systematic
// sampling — the degenerate SimPoint configuration).
//
// Each interval is centered within its stride (SMARTS-style systematic
// sampling). Starting intervals at i*stride instead would bias sampling
// toward the head: entry 0 would always be measured and the traceLen mod
// count tail would never be, which systematically misestimates programs
// whose phases drift over time.
func Uniform(traceLen, intervalLen, count int) (Plan, error) {
	if traceLen <= 0 || intervalLen <= 0 || count <= 0 {
		return Plan{}, fmt.Errorf("sampling: non-positive plan parameters")
	}
	if intervalLen*count > traceLen {
		return Plan{}, fmt.Errorf("sampling: %d intervals of %d exceed trace length %d",
			count, intervalLen, traceLen)
	}
	var p Plan
	for i := 0; i < count; i++ {
		// Center of stride i in real arithmetic is (2i+1)*traceLen/(2*count);
		// consecutive centers are >= stride >= intervalLen apart, so the
		// intervals never overlap.
		center := ((2*int64(i) + 1) * int64(traceLen)) / int64(2*count)
		start := int(center) - intervalLen/2
		if start < 0 {
			start = 0
		}
		if start+intervalLen > traceLen {
			start = traceLen - intervalLen
		}
		p.Intervals = append(p.Intervals, Interval{
			Start:  start,
			End:    start + intervalLen,
			Weight: 1.0 / float64(count),
		})
	}
	return p, nil
}

// Slice extracts one interval as a standalone trace: the memory image is
// rolled forward to the interval start (exactly what the paper's
// checkpoints capture — "the complete memory data segment, the register
// file and the PC"; caches and predictors start cold), and the
// dependence analysis is recomputed within the interval, so loads whose
// writers predate the interval read their values from the image, as on
// the real checkpointed machine.
func Slice(tr *trace.Trace, iv Interval) (*trace.Trace, error) {
	if iv.Start < 0 || iv.End > len(tr.Entries) || iv.Start >= iv.End {
		return nil, fmt.Errorf("sampling: interval [%d,%d) out of range (trace %d)",
			iv.Start, iv.End, len(tr.Entries))
	}
	img := tr.InitMem.Clone()
	for i := 0; i < iv.Start; i++ {
		e := &tr.Entries[i]
		if e.IsStore() {
			img.Write(e.Addr, uint32(e.Size), e.Value)
		}
	}
	sub := &trace.Trace{
		Prog:    tr.Prog,
		Entries: append([]trace.Entry(nil), tr.Entries[iv.Start:iv.End]...),
		InitMem: img,
		HitHalt: false,
	}
	sub.Analyze()
	return sub, nil
}

// IntervalResult pairs an interval with its simulation statistics.
type IntervalResult struct {
	Interval Interval
	Stats    *core.Stats
}

// Combined is the weighted aggregate of a sampled simulation.
type Combined struct {
	Results []IntervalResult
	// WeightedIPC combines interval IPCs by weight (the SimPoint
	// estimator for whole-program IPC).
	WeightedIPC float64
	// WeightedMPKI combines memory dependence mispredictions per 1k
	// instructions by weight.
	WeightedMPKI float64
	// TotalInstructions and TotalCycles sum over the simulated
	// intervals (unweighted).
	TotalInstructions, TotalCycles int64
}

// Run simulates every interval of the plan under cfg and combines the
// results by weight. It is the serial convenience wrapper around RunPlan;
// use RunPlan directly for parallel execution, checkpoint-backed interval
// extraction or cancellation.
func Run(tr *trace.Trace, cfg config.Config, plan Plan) (*Combined, error) {
	src, err := NewTraceSource(tr, plan, nil, artifact.Key{}, false, nil)
	if err != nil {
		return nil, err
	}
	return RunPlan(context.Background(), cfg, plan, src, 1)
}
