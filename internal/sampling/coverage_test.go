package sampling

import "testing"

// TestUniformCoverage pins the SMARTS-style centering fix: intervals are
// centered within their strides, so the trace tail is reachable and entry
// 0 is not unconditionally sampled (the old i*stride placement always
// measured entry 0 and never the traceLen mod count remainder).
func TestUniformCoverage(t *testing.T) {
	cases := []struct{ traceLen, intervalLen, count int }{
		{100_000, 1_000, 10},
		{100, 10, 3},
		{99_999, 777, 13},
		{60_000, 18_000, 3},
		{50, 10, 5}, // tight packing: stride == intervalLen
		{1, 1, 1},
	}
	for _, c := range cases {
		p, err := Uniform(c.traceLen, c.intervalLen, c.count)
		if err != nil {
			t.Fatalf("Uniform(%d,%d,%d): %v", c.traceLen, c.intervalLen, c.count, err)
		}
		if len(p.Intervals) != c.count {
			t.Fatalf("Uniform(%d,%d,%d): %d intervals", c.traceLen, c.intervalLen, c.count, len(p.Intervals))
		}
		stride := c.traceLen / c.count
		prevEnd := 0
		for i, iv := range p.Intervals {
			if iv.Start < 0 || iv.End > c.traceLen || iv.End-iv.Start != c.intervalLen {
				t.Fatalf("case %+v interval %d out of bounds: [%d,%d)", c, i, iv.Start, iv.End)
			}
			if iv.Start < prevEnd {
				t.Fatalf("case %+v interval %d overlaps previous (start %d < prev end %d)",
					c, i, iv.Start, prevEnd)
			}
			prevEnd = iv.End
		}
		// Tail coverage: the last interval must land inside the final
		// stride, i.e. past the region the head-biased plan could reach.
		last := p.Intervals[c.count-1]
		if last.End <= c.traceLen-stride {
			t.Errorf("case %+v: tail never sampled (last end %d, final stride starts at %d)",
				c, last.End, c.traceLen-stride)
		}
		// No head bias: when the stride leaves room, entry 0 is not part
		// of the sample.
		if stride > c.intervalLen && p.Intervals[0].Start == 0 {
			t.Errorf("case %+v: entry 0 always sampled (head bias)", c)
		}
	}
}

// The old placement sampled [0,1000) and stopped at 91000 for this shape;
// centered sampling must include the 10_000-entry remainder region.
func TestUniformTailRemainderSampled(t *testing.T) {
	p, err := Uniform(100_000+9_999, 1_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	last := p.Intervals[len(p.Intervals)-1]
	if last.End <= 100_000 {
		t.Fatalf("remainder tail unsampled: last interval [%d,%d)", last.Start, last.End)
	}
}
