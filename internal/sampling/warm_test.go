package sampling

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/warm"
)

// TestWarmStreamMatchesMaterialized is the functional-warming
// equivalence oracle: the streamed path's snapshot-restore-continue
// warm state must install byte-identically to the materialized path's
// continuous rolling pass, so the combined stats match exactly.
func TestWarmStreamMatchesMaterialized(t *testing.T) {
	cfg := config.Default(config.DMDP)
	spec := Spec{Count: 4, Len: 2_000, Warmup: 500}
	mat, str := execRequest(t, "gcc", 50_000)
	mat.Spec, str.Spec = spec, spec
	mat.Warm, str.Warm = true, true

	a, err := Execute(context.Background(), cfg, mat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*Outcome{a, b} {
		if !o.Warmed {
			t.Fatal("outcome not marked warmed")
		}
		if o.ColdStartIntervals != 0 {
			t.Fatalf("%d cold-start intervals with everything available", o.ColdStartIntervals)
		}
		if o.WarmedIntervals != int64(len(o.Plan.Intervals)) {
			t.Fatalf("warmed %d of %d intervals", o.WarmedIntervals, len(o.Plan.Intervals))
		}
		if o.WarmSnapshotBytes == 0 {
			t.Fatal("no warm snapshot bytes accounted")
		}
	}
	if !bytes.Equal(a.Combined.MarshalCanonical(), b.Combined.MarshalCanonical()) {
		t.Fatalf("warmed streamed result differs from materialized:\nmat IPC %f\nstr IPC %f",
			a.Combined.WeightedIPC, b.Combined.WeightedIPC)
	}
}

// TestWarmChangesSampledResult pins that warming actually installs
// state with observable effect — guarding against a silent no-op
// install (e.g. a broken transplant that leaves the core cold).
func TestWarmChangesSampledResult(t *testing.T) {
	cfg := config.Default(config.DMDP)
	// No detailed warmup: every cold interval then starts from empty
	// caches, so installing warm state must move IPC.
	spec := Spec{Count: 4, Len: 2_000}
	_, cold := execRequest(t, "mcf", 50_000)
	cold.Spec = spec
	warmReq := cold
	warmReq.Warm = true

	a, err := Execute(context.Background(), cfg, cold)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), cfg, warmReq)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Combined.MarshalCanonical(), b.Combined.MarshalCanonical()) {
		t.Fatal("warming had no effect on a cache-sensitive workload with zero warmup")
	}
}

// TestWarmParallelByteIdentical: the -j determinism contract holds with
// warming on.
func TestWarmParallelByteIdentical(t *testing.T) {
	cfg := config.Default(config.DMDP)
	spec := Spec{Count: 6, Len: 1_500, Warmup: 300}
	_, str := execRequest(t, "mcf", 40_000)
	str.Spec, str.Warm = spec, true
	var ref []byte
	for _, jobs := range []int{1, 2, 8} {
		req := str
		req.Jobs = jobs
		out, err := Execute(context.Background(), cfg, req)
		if err != nil {
			t.Fatal(err)
		}
		enc := out.Combined.MarshalCanonical()
		if ref == nil {
			ref = enc
		} else if !bytes.Equal(ref, enc) {
			t.Fatalf("warmed -j%d result differs from -j1", jobs)
		}
	}
}

// TestWarmArtifactCycle drives warm-state persistence end to end: the
// first warmed checkpointed run publishes plan, checkpoints and
// DMDPCKP2 warm records; the second reuses all three (skipping the
// profiling pass) byte-identically; corrupting the warm records makes
// the plan-cache probe fail and the third run falls back to one fresh
// profiling pass — again byte-identical, never wrong.
func TestWarmArtifactCycle(t *testing.T) {
	dir := t.TempDir()
	store, err := artifact.Open(dir, artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(config.DMDP)
	spec := Spec{Auto: true, K: 3, Warmup: 200}
	_, str := execRequest(t, "astar", 40_000)
	str.Spec, str.Checkpoint, str.Store, str.Warm = spec, true, store, true

	first, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCached {
		t.Fatal("first run cannot hit the plan cache")
	}
	if !first.Warmed || first.ColdStartIntervals != 0 {
		t.Fatalf("first run warming: %+v", first)
	}
	if first.WarmEntries == 0 || first.WarmNanos == 0 {
		t.Fatal("profiling pass did not account warming work")
	}
	ref := first.Combined.MarshalCanonical()

	warmFiles := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".warm") {
			warmFiles++
		}
	}
	if warmFiles == 0 {
		t.Fatal("no warm-state records were persisted")
	}

	second, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCached {
		t.Fatal("second run should reuse the cached plan")
	}
	if second.ColdStartIntervals != 0 {
		t.Fatalf("%d cold starts with persisted warm state", second.ColdStartIntervals)
	}
	if !bytes.Equal(ref, second.Combined.MarshalCanonical()) {
		t.Fatal("store-restored warm run differs from the building run")
	}
	if c := store.Counters(); c.WarmHits == 0 {
		t.Fatalf("second run served no warm records from the store: %+v", c)
	}

	// Corrupt every warm record. The plan-cache probe must notice and
	// re-profile rather than pinning every interval to a cold start.
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".warm") {
			path := filepath.Join(dir, de.Name())
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)/2] ^= 0xff
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	third, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if third.PlanCached {
		t.Fatal("third run trusted a plan whose warm state is corrupt")
	}
	if third.ColdStartIntervals != 0 {
		t.Fatalf("re-profiled run cold-started %d intervals", third.ColdStartIntervals)
	}
	if !bytes.Equal(ref, third.Combined.MarshalCanonical()) {
		t.Fatal("re-profiled (corrupt-warm-record) run differs from the building run")
	}
}

// TestWarmMissingStateColdStarts forces per-interval degradation: warm
// snapshots dropped for every non-zero boundary must cold-start exactly
// the intervals that resume from those boundaries — with a successful
// run and honest accounting, never an error.
func TestWarmMissingStateColdStarts(t *testing.T) {
	cfg := config.Default(config.DMDP)
	_, str := execRequest(t, "gcc", 50_000)
	wc := warm.ConfigFrom(cfg)
	s, err := BuildStream(context.Background(), str.Prog, str.Budget, autoChunkLen(str.Budget),
		nil, str.TraceKey, false, &wc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Uniform(int(s.Total), 2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan.Warmup = 500

	s.warmMu.Lock()
	for at := range s.warms {
		if at != 0 {
			delete(s.warms, at)
		}
	}
	s.warmMu.Unlock()

	src := s.Source(plan)
	if _, err := RunPlan(context.Background(), cfg, plan, src, 2); err != nil {
		t.Fatal(err)
	}
	warmed, cold, _ := src.(*streamSource).warmStats()
	if cold == 0 {
		t.Fatal("no interval cold-started with all non-zero warm snapshots dropped")
	}
	if warmed+cold != int64(len(plan.Intervals)) {
		t.Fatalf("accounting: %d warmed + %d cold != %d intervals", warmed, cold, len(plan.Intervals))
	}
}

// TestWarmDisabledUnderFaults: fault injection forces warming off, like
// fast-forward — a corrupted run must execute every model in full.
func TestWarmDisabledUnderFaults(t *testing.T) {
	cfg := config.Default(config.DMDP)
	cfg.Faults.PredictionFlipRate = 1e-6
	cfg.Faults.Seed = 1
	if !cfg.Faults.Enabled() {
		t.Skip("fault config shape changed; update the test")
	}
	_, str := execRequest(t, "gcc", 30_000)
	str.Spec, str.Warm = Spec{Count: 2, Len: 1_000}, true
	out, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if out.Warmed || out.WarmedIntervals != 0 {
		t.Fatalf("warming ran under fault injection: %+v", out)
	}
}
