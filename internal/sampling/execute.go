package sampling

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/sched"
)

// RunPlan simulates every interval of the plan under cfg on a worker pool
// of the given width and combines the results by weight.
//
// Determinism: workers claim intervals by index and write results into
// their slot, and the weighted combine walks the slots in plan order with
// the exact accumulation sequence of the original serial Run — so the
// Combined (including its canonical encoding) is byte-identical at any
// jobs width.
func RunPlan(ctx context.Context, cfg config.Config, plan Plan, src Source, jobs int) (*Combined, error) {
	n := len(plan.Intervals)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty plan")
	}
	if jobs <= 0 {
		jobs = 1
	}
	type slot struct {
		stats *core.Stats
		err   error
	}
	slots := make([]slot, n)
	started := sched.PoolCtx(ctx, jobs, n, func(i int) {
		iv := plan.Intervals[i]
		sub, warm, err := src.IntervalTrace(i)
		if err != nil {
			slots[i].err = err
			return
		}
		runCfg := cfg
		runCfg.WarmupInstructions = int64(warm)
		c, err := core.New(runCfg, sub)
		if err != nil {
			slots[i].err = err
			return
		}
		// Functional warming: install the pre-interval tag state before
		// the first cycle. A rejected snapshot leaves the core cold (the
		// install is transactional) and degrades this interval to a cold
		// start — never a failure, never divergent state.
		if wp, ok := src.(warmProvider); ok {
			if snap := wp.IntervalWarm(i); snap != nil {
				if ierr := c.InstallWarmState(snap); ierr != nil {
					fmt.Fprintf(os.Stderr,
						"sampling: warning: interval [%d,%d): %v; cold-starting (event=warm_install_rejected)\n",
						iv.Start, iv.End, ierr)
					wp.WarmInstallFailed(i)
				}
			}
		}
		st, err := c.RunContext(ctx)
		if err != nil {
			slots[i].err = fmt.Errorf("sampling: interval [%d,%d): %w", iv.Start, iv.End, err)
			return
		}
		if st.Instructions != int64(iv.End-iv.Start) {
			slots[i].err = fmt.Errorf("sampling: interval [%d,%d) measured %d instructions",
				iv.Start, iv.End, st.Instructions)
			return
		}
		slots[i].stats = st
	})
	if started < n {
		return nil, fmt.Errorf("sampling: canceled after %d of %d intervals: %w", started, n, ctx.Err())
	}
	var out Combined
	var wsum float64
	for i, iv := range plan.Intervals {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		st := slots[i].stats
		out.Results = append(out.Results, IntervalResult{Interval: iv, Stats: st})
		out.WeightedIPC += iv.Weight * st.IPC()
		out.WeightedMPKI += iv.Weight * st.MPKI()
		out.TotalInstructions += st.Instructions
		out.TotalCycles += st.Cycles
		wsum += iv.Weight
	}
	if wsum > 0 {
		out.WeightedIPC /= wsum
		out.WeightedMPKI /= wsum
	}
	return &out, nil
}

// MarshalCanonical encodes the combined result in a fixed-width,
// schedule-independent form: per interval (in plan order) the bounds,
// weight bits and the canonical stats encoding (which deliberately
// excludes wall-clock time), then the weighted aggregates. Two sampled
// runs with identical inputs produce identical bytes regardless of -j
// width — the determinism oracle CI diffs.
func (c *Combined) MarshalCanonical() []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.Results)))
	for _, r := range c.Results {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Interval.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Interval.End))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Interval.Weight))
		buf = append(buf, r.Stats.MarshalCanonical()...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.WeightedIPC))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.WeightedMPKI))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.TotalInstructions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.TotalCycles))
	return buf
}
