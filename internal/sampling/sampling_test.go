package sampling

import (
	"math"
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

func buildTrace(t *testing.T, bench string, n int64) *trace.Trace {
	t.Helper()
	s, ok := workload.Get(bench)
	if !ok {
		t.Fatalf("unknown bench %s", bench)
	}
	tr, err := s.BuildTrace(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUniformPlan(t *testing.T) {
	p, err := Uniform(100_000, 5_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Intervals) != 4 {
		t.Fatalf("intervals %d", len(p.Intervals))
	}
	var w float64
	for i, iv := range p.Intervals {
		if iv.End-iv.Start != 5000 {
			t.Fatalf("interval %d length %d", i, iv.End-iv.Start)
		}
		if iv.End > 100_000 {
			t.Fatalf("interval %d out of range", i)
		}
		w += iv.Weight
	}
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("weights sum to %f", w)
	}
}

func TestUniformPlanErrors(t *testing.T) {
	if _, err := Uniform(0, 10, 1); err == nil {
		t.Error("zero trace length must fail")
	}
	if _, err := Uniform(100, 60, 2); err == nil {
		t.Error("oversubscribed plan must fail")
	}
	if _, err := Uniform(100, 10, 0); err == nil {
		t.Error("zero count must fail")
	}
}

func TestSliceRollsMemoryForward(t *testing.T) {
	tr := buildTrace(t, "perl", 20_000)
	sub, err := Slice(tr, Interval{Start: 10_000, End: 12_000, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Entries) != 2000 {
		t.Fatalf("slice length %d", len(sub.Entries))
	}
	// The slice must be runnable and sound: the core's internal value
	// check fails if the rolled-forward image were wrong.
	c, err := core.New(config.Default(config.DMDP), sub)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 2000 {
		t.Fatalf("retired %d", st.Instructions)
	}
}

func TestSliceBounds(t *testing.T) {
	tr := buildTrace(t, "perl", 5_000)
	bad := []Interval{
		{Start: -1, End: 10},
		{Start: 0, End: 6000},
		{Start: 100, End: 100},
		{Start: 200, End: 100},
	}
	for i, iv := range bad {
		if _, err := Slice(tr, iv); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunCombinesWeights(t *testing.T) {
	tr := buildTrace(t, "gcc", 30_000)
	plan, err := Uniform(len(tr.Entries), 3_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Run(tr, config.Default(config.DMDP), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(comb.Results) != 3 {
		t.Fatalf("results %d", len(comb.Results))
	}
	if comb.TotalInstructions != 9000 {
		t.Fatalf("instructions %d", comb.TotalInstructions)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range comb.Results {
		ipc := r.Stats.IPC()
		lo, hi = math.Min(lo, ipc), math.Max(hi, ipc)
	}
	if comb.WeightedIPC < lo-1e-9 || comb.WeightedIPC > hi+1e-9 {
		t.Fatalf("weighted IPC %f outside [%f,%f]", comb.WeightedIPC, lo, hi)
	}
}

// TestSamplingConvergesWithIntervalLength: each interval starts cold
// (empty caches and predictors — the paper's checkpoints behave the same,
// §V, which is why it uses 100M-instruction intervals). Longer intervals
// must therefore estimate the full-simulation IPC strictly better than
// very short ones.
func TestSamplingConvergesWithIntervalLength(t *testing.T) {
	tr := buildTrace(t, "sjeng", 60_000)
	full, err := core.New(config.Default(config.DMDP), tr)
	if err != nil {
		t.Fatal(err)
	}
	fst, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	estimate := func(intervalLen, count int) float64 {
		plan, err := Uniform(len(tr.Entries), intervalLen, count)
		if err != nil {
			t.Fatal(err)
		}
		comb, err := Run(tr, config.Default(config.DMDP), plan)
		if err != nil {
			t.Fatal(err)
		}
		return comb.WeightedIPC
	}
	short := estimate(1_000, 3)
	long := estimate(18_000, 3)
	errShort := math.Abs(short/fst.IPC() - 1)
	errLong := math.Abs(long/fst.IPC() - 1)
	if errLong >= errShort {
		t.Fatalf("longer intervals should converge: short err %.3f, long err %.3f (full %.3f, short %.3f, long %.3f)",
			errShort, errLong, fst.IPC(), short, long)
	}
	if errLong > 0.5 {
		t.Fatalf("18k-instruction intervals still %.0f%% off the full run", 100*errLong)
	}
}

func TestRunEmptyPlan(t *testing.T) {
	tr := buildTrace(t, "perl", 2_000)
	if _, err := Run(tr, config.Default(config.DMDP), Plan{}); err == nil {
		t.Fatal("empty plan must fail")
	}
}

// TestWarmupImprovesShortIntervals: with explicit warmup, short intervals
// approximate the full run much better than cold-start ones.
func TestWarmupImprovesShortIntervals(t *testing.T) {
	tr := buildTrace(t, "sjeng", 60_000)
	full, err := core.New(config.Default(config.DMDP), tr)
	if err != nil {
		t.Fatal(err)
	}
	fst, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Uniform(len(tr.Entries), 2_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(tr, config.Default(config.DMDP), plan)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(tr, config.Default(config.DMDP), plan.WithWarmup(6_000))
	if err != nil {
		t.Fatal(err)
	}
	errCold := math.Abs(cold.WeightedIPC/fst.IPC() - 1)
	errWarm := math.Abs(warm.WeightedIPC/fst.IPC() - 1)
	if errWarm >= errCold {
		t.Fatalf("warmup should improve the estimate: cold err %.3f, warm err %.3f (full %.3f cold %.3f warm %.3f)",
			errCold, errWarm, fst.IPC(), cold.WeightedIPC, warm.WeightedIPC)
	}
	if errWarm > 0.4 {
		t.Fatalf("warmed short intervals still %.0f%% off", 100*errWarm)
	}
}
