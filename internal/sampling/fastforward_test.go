package sampling

import (
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/workload"
)

// TestSampledFastForwardEquivalence covers the -sample COUNTxLEN[+WARMUP]
// × idle-cycle fast-forward interaction: for every proxy and model, a
// sampled run must produce identical per-interval statistics and
// identical weighted aggregates with fast-forward on and off. Sampled
// intervals stress the mechanism differently from full runs (PR 3's
// equivalence test): each interval starts mid-trace on a rolled-forward
// memory image and retires through a warmup boundary, which resets the
// counters the fast-forward credits.
func TestSampledFastForwardEquivalence(t *testing.T) {
	const (
		budget      = 12_000
		intervalLen = 500
		count       = 4
		warmup      = 150
	)
	models := []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF}
	for _, bench := range workload.Names() {
		spec, ok := workload.Get(bench)
		if !ok {
			t.Fatalf("workload %q missing", bench)
		}
		tr, err := spec.BuildTrace(budget)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		plan, err := Uniform(len(tr.Entries), intervalLen, count)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		plan = plan.WithWarmup(warmup)
		for _, m := range models {
			off, err := Run(tr, config.Default(m).WithFastForward(false), plan)
			if err != nil {
				t.Fatalf("%s/%v (ff off): %v", bench, m, err)
			}
			on, err := Run(tr, config.Default(m), plan)
			if err != nil {
				t.Fatalf("%s/%v (ff on): %v", bench, m, err)
			}
			if len(off.Results) != len(on.Results) {
				t.Fatalf("%s/%v: interval counts differ: %d vs %d", bench, m, len(off.Results), len(on.Results))
			}
			for i := range off.Results {
				a, b := *off.Results[i].Stats, *on.Results[i].Stats
				a.SimWallClockNS, b.SimWallClockNS = 0, 0
				if a != b {
					t.Errorf("%s/%v interval %d [%d,%d): stats differ with fast-forward on\noff: %s\non:  %s",
						bench, m, i, off.Results[i].Interval.Start, off.Results[i].Interval.End,
						a.DigestLine(), b.DigestLine())
				}
			}
			if off.WeightedIPC != on.WeightedIPC || off.WeightedMPKI != on.WeightedMPKI ||
				off.TotalInstructions != on.TotalInstructions || off.TotalCycles != on.TotalCycles {
				t.Errorf("%s/%v: weighted aggregates differ with fast-forward on\noff: ipc=%v mpki=%v inst=%d cyc=%d\non:  ipc=%v mpki=%v inst=%d cyc=%d",
					bench, m,
					off.WeightedIPC, off.WeightedMPKI, off.TotalInstructions, off.TotalCycles,
					on.WeightedIPC, on.WeightedMPKI, on.TotalInstructions, on.TotalCycles)
			}
		}
	}
}
