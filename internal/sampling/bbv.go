package sampling

import (
	"fmt"
	"math"

	"dmdp/internal/trace"
)

// BBV-style phase detection (SimPoint, Sherwood et al.): execution is cut
// into fixed-length chunks; each chunk is summarized by a basic-block
// vector — how many instructions it spent in each basic block, hashed
// into a fixed number of dimensions and L1-normalized. k-means clusters
// the vectors, and one representative chunk per cluster, weighted by
// cluster population, becomes the sampling plan.
const (
	// BBVDim is the dimensionality of the hashed basic-block vectors.
	BBVDim = 32
	// PlannerVersion is part of persisted plan keys: bumping it after any
	// change to the BBV/clustering algorithm invalidates cached plans.
	PlannerVersion = 1
	// maxKMeansIters bounds Lloyd iterations; assignments almost always
	// stabilize far earlier.
	maxKMeansIters = 64
)

// BBVAccum incrementally builds the basic-block vector of one chunk.
// Feed it every entry of the chunk in order, then call Finish.
type BBVAccum struct {
	vec        [BBVDim]float64
	blockPC    uint32
	blockLen   int
	haveLeader bool
}

// Add accounts one dynamic instruction. A basic block ends at every
// control-flow instruction (branch, jump, call, return); the block is
// identified by its leader PC and weighted by its dynamic length.
func (a *BBVAccum) Add(e *trace.Entry) {
	if !a.haveLeader {
		a.blockPC, a.haveLeader = e.PC, true
	}
	a.blockLen++
	if e.Instr.Op.IsControl() {
		a.flush()
	}
}

func (a *BBVAccum) flush() {
	if a.blockLen == 0 {
		return
	}
	a.vec[hash32(a.blockPC)%BBVDim] += float64(a.blockLen)
	a.blockLen, a.haveLeader = 0, false
}

// Finish flushes the trailing partial block, L1-normalizes the vector and
// resets the accumulator for the next chunk.
func (a *BBVAccum) Finish() [BBVDim]float64 {
	a.flush()
	v := a.vec
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum > 0 {
		for i := range v {
			v[i] /= sum
		}
	}
	a.vec = [BBVDim]float64{}
	return v
}

// hash32 is a splitmix-style avalanche of the block leader PC, so nearby
// PCs spread over the vector dimensions.
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func distSq(a, b *[BBVDim]float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

// kmeans clusters the vectors into at most k clusters and returns the
// per-vector cluster assignment. Fully deterministic: farthest-point
// (maximin) initialization seeded at vector 0, lowest-index tie-breaks,
// and a fixed iteration cap — no RNG anywhere, so the same trace always
// yields the same plan.
func kmeans(vecs [][BBVDim]float64, k int) []int {
	n := len(vecs)
	if k > n {
		k = n
	}
	centers := make([][BBVDim]float64, 0, k)
	centers = append(centers, vecs[0])
	minD := make([]float64, n)
	for i := range vecs {
		minD[i] = distSq(&vecs[i], &centers[0])
	}
	for len(centers) < k {
		far, farD := 0, -1.0
		for i, d := range minD {
			if d > farD {
				far, farD = i, d
			}
		}
		centers = append(centers, vecs[far])
		c := &centers[len(centers)-1]
		for i := range vecs {
			if d := distSq(&vecs[i], c); d < minD[i] {
				minD[i] = d
			}
		}
	}
	assign := make([]int, n)
	for iter := 0; iter < maxKMeansIters; iter++ {
		changed := false
		for i := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := distSq(&vecs[i], &centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i], changed = best, true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; an emptied cluster is reseeded with the
		// point farthest from its current center (lowest index wins).
		var sums [][BBVDim]float64 = make([][BBVDim]float64, len(centers))
		counts := make([]int, len(centers))
		for i, c := range assign {
			counts[c]++
			for d := range sums[c] {
				sums[c][d] += vecs[i][d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i := range vecs {
					if d := distSq(&vecs[i], &centers[c]); d > farD {
						far, farD = i, d
					}
				}
				centers[c] = vecs[far]
				continue
			}
			for d := range centers[c] {
				centers[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return assign
}

// AutoPlan clusters per-chunk BBVs into (at most) k phases and returns
// the SimPoint-style plan: per cluster, the member chunk closest to the
// centroid (lowest index on ties) is simulated with weight proportional
// to the cluster's population. chunkLen is the BBV chunk length; only
// full chunks participate (a trailing partial chunk is not represented).
func AutoPlan(bbvs [][BBVDim]float64, chunkLen, k int) (Plan, error) {
	if len(bbvs) == 0 {
		return Plan{}, fmt.Errorf("sampling: no full chunks to cluster (trace shorter than one chunk)")
	}
	if chunkLen <= 0 || k <= 0 {
		return Plan{}, fmt.Errorf("sampling: non-positive auto-plan parameters")
	}
	assign := kmeans(bbvs, k)
	nc := 0
	for _, c := range assign {
		if c+1 > nc {
			nc = c + 1
		}
	}
	// Centroids of the final assignment.
	centroids := make([][BBVDim]float64, nc)
	counts := make([]int, nc)
	for i, c := range assign {
		counts[c]++
		for d := range centroids[c] {
			centroids[c][d] += bbvs[i][d]
		}
	}
	for c := range centroids {
		if counts[c] > 0 {
			for d := range centroids[c] {
				centroids[c][d] /= float64(counts[c])
			}
		}
	}
	// Representative chunk per non-empty cluster.
	type rep struct {
		chunk int
		w     float64
	}
	var reps []rep
	for c := 0; c < nc; c++ {
		if counts[c] == 0 {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for i, a := range assign {
			if a != c {
				continue
			}
			if d := distSq(&bbvs[i], &centroids[c]); d < bestD {
				best, bestD = i, d
			}
		}
		reps = append(reps, rep{chunk: best, w: float64(counts[c]) / float64(len(bbvs))})
	}
	// Plan intervals in ascending start order (deterministic output and
	// the order the rolling slice builder wants).
	for i := 1; i < len(reps); i++ {
		for j := i; j > 0 && reps[j].chunk < reps[j-1].chunk; j-- {
			reps[j], reps[j-1] = reps[j-1], reps[j]
		}
	}
	var p Plan
	for _, r := range reps {
		p.Intervals = append(p.Intervals, Interval{
			Start:  r.chunk * chunkLen,
			End:    (r.chunk + 1) * chunkLen,
			Weight: r.w,
		})
	}
	return p, nil
}
