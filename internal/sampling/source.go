package sampling

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"dmdp/internal/artifact"
	"dmdp/internal/emu"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
	"dmdp/internal/warm"
)

// Source supplies the standalone sub-trace for each interval of a plan.
// IntervalTrace must be safe for concurrent calls with distinct indices
// (RunPlan invokes it from pool workers).
type Source interface {
	// IntervalTrace returns interval i extended backwards by the plan's
	// warmup (clamped at the trace start) as a runnable trace, plus the
	// number of warmup entries actually prepended.
	IntervalTrace(i int) (*trace.Trace, int, error)
}

// warmProvider is the optional Source extension for functional warming.
// RunPlan type-asserts for it after IntervalTrace succeeds.
type warmProvider interface {
	// IntervalWarm returns the warm snapshot to install before running
	// interval i, or nil for a cold start. Only valid after
	// IntervalTrace(i) returned, from the same worker.
	IntervalWarm(i int) []byte
	// WarmInstallFailed records that interval i's snapshot was rejected
	// at install time and the interval ran cold.
	WarmInstallFailed(i int)
}

// warmCollector accumulates per-interval warm snapshots and the
// warmed/cold accounting shared by both sources. A nil snapshot is a
// cold start; the first one emits a structured warning (subsequent ones
// only count, to keep a badly degraded cache from flooding stderr).
type warmCollector struct {
	snaps     [][]byte
	warmed    atomic.Int64
	cold      atomic.Int64
	snapBytes atomic.Int64
	warnOnce  sync.Once
}

func newWarmCollector(n int) *warmCollector {
	return &warmCollector{snaps: make([][]byte, n)}
}

func (wc *warmCollector) set(i int, snap []byte, start, end int) {
	wc.snaps[i] = snap
	if snap != nil {
		wc.warmed.Add(1)
		wc.snapBytes.Add(int64(len(snap)))
		return
	}
	wc.cold.Add(1)
	wc.warnOnce.Do(func() {
		fmt.Fprintf(os.Stderr,
			"sampling: warning: warm state unavailable for interval [%d,%d); cold-starting (event=warm_cold_start)\n",
			start, end)
	})
}

// get, installFailed and stats tolerate a nil collector (warming off):
// the sources satisfy the warm interfaces unconditionally.
func (wc *warmCollector) get(i int) []byte {
	if wc == nil {
		return nil
	}
	return wc.snaps[i]
}

func (wc *warmCollector) installFailed(i int) {
	if wc == nil {
		return
	}
	wc.warmed.Add(-1)
	wc.cold.Add(1)
	wc.snapBytes.Add(-int64(len(wc.snaps[i])))
}

func (wc *warmCollector) stats() (warmed, cold, snapBytes int64) {
	if wc == nil {
		return 0, 0, 0
	}
	return wc.warmed.Load(), wc.cold.Load(), wc.snapBytes.Load()
}

// warmStatsSource lets Execute read the accounting back out of a source
// after RunPlan finishes.
type warmStatsSource interface {
	warmStats() (warmed, cold, snapBytes int64)
}

// traceSource extracts intervals from a fully materialized trace. The
// sub-traces are built eagerly in a single forward pass over the parent
// trace (one rolling memory image, cloned at each interval begin), so a
// k-interval plan costs O(traceLen + k·pages) instead of the O(k·traceLen)
// of calling Slice per interval.
type traceSource struct {
	subs  []*trace.Trace
	warms []int
	wc    *warmCollector // nil = warming off
}

func (s *traceSource) IntervalTrace(i int) (*trace.Trace, int, error) {
	return s.subs[i], s.warms[i], nil
}

func (s *traceSource) IntervalWarm(i int) []byte { return s.wc.get(i) }
func (s *traceSource) WarmInstallFailed(i int)   { s.wc.installFailed(i) }
func (s *traceSource) warmStats() (int64, int64, int64) {
	return s.wc.stats()
}

// beginOf returns the warmup-extended begin of interval i under the plan.
func beginOf(plan Plan, i int) (begin, warm int) {
	iv := plan.Intervals[i]
	warm = plan.Warmup
	if warm > iv.Start {
		warm = iv.Start
	}
	return iv.Start - warm, warm
}

// NewTraceSource builds the interval source for a materialized trace.
//
// When useCkpt is true and store is non-nil, each interval begin is first
// looked up in the checkpoint store (keyed by traceKey and the begin
// index): hits restore the memory image in microseconds; misses fall back
// to the rolling forward pass and publish an image checkpoint for next
// time. Corrupt checkpoints decode as misses, so a damaged cache degrades
// to re-extraction, never to wrong results.
//
// With wcfg set, one additional rolling pass drives the functional warm
// models over the entries preceding each interval begin and captures a
// snapshot per interval. The trace is fully present, so the materialized
// path never cold-starts — and because the streamed path's snapshots are
// restore-continue equivalent to this continuous pass, the two paths
// install byte-identical warm state for identical plans.
func NewTraceSource(tr *trace.Trace, plan Plan, store *artifact.Store, traceKey artifact.Key, useCkpt bool, wcfg *warm.Config) (Source, error) {
	if len(plan.Intervals) == 0 {
		return nil, fmt.Errorf("sampling: empty plan")
	}
	n := len(plan.Intervals)
	src := &traceSource{subs: make([]*trace.Trace, n), warms: make([]int, n)}
	begins := make([]int, n)
	for i := range plan.Intervals {
		iv := plan.Intervals[i]
		if iv.Start < 0 || iv.End > len(tr.Entries) || iv.Start >= iv.End {
			return nil, fmt.Errorf("sampling: interval [%d,%d) out of range (trace %d)",
				iv.Start, iv.End, len(tr.Entries))
		}
		begins[i], src.warms[i] = beginOf(plan, i)
	}
	if wcfg != nil {
		src.wc = newWarmCollector(n)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return begins[order[a]] < begins[order[b]] })
		ws := warm.New(*wcfg)
		cursor := 0
		for _, i := range order {
			for ; cursor < begins[i]; cursor++ {
				ws.Update(&tr.Entries[cursor])
			}
			iv := plan.Intervals[i]
			src.wc.set(i, ws.Snapshot(), iv.Start, iv.End)
		}
	}

	// Restore what we can from the checkpoint store.
	pending := make([]int, 0, n)
	for i, begin := range begins {
		if useCkpt && store != nil {
			if ck, ok := store.LoadCheckpoint(artifact.CheckpointKey(traceKey, int64(begin))); ok && ck.At == int64(begin) {
				src.subs[i] = subTrace(tr, begin, plan.Intervals[i].End, ck.RestoreImage(tr.InitMem))
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return src, nil
	}

	// One rolling pass for the rest, ascending by begin index. The image
	// is cloned at each begin; with checkpointing on, the dirty-page delta
	// against InitMem is also published for the next run.
	sort.Slice(pending, func(a, b int) bool { return begins[pending[a]] < begins[pending[b]] })
	img := tr.InitMem.Clone()
	dirty := map[uint32]bool{}
	cursor := 0
	for _, i := range pending {
		begin := begins[i]
		for ; cursor < begin; cursor++ {
			e := &tr.Entries[cursor]
			if e.IsStore() {
				img.Write(e.Addr, uint32(e.Size), e.Value)
				for b := uint32(0); b < uint32(e.Size); b++ {
					dirty[(e.Addr+b)&^uint32(mem.PageSize-1)] = true
				}
			}
		}
		src.subs[i] = subTrace(tr, begin, plan.Intervals[i].End, img.Clone())
		if useCkpt && store != nil {
			store.StoreCheckpoint(artifact.CheckpointKey(traceKey, int64(begin)), imageCheckpoint(int64(begin), img, dirty))
		}
	}
	return src, nil
}

// subTrace assembles the standalone trace for [begin,end) on top of the
// given pre-rolled memory image. Entries are copied because Analyze
// rewrites the per-entry dependence fields relative to the sub-trace.
func subTrace(tr *trace.Trace, begin, end int, img *mem.Image) *trace.Trace {
	sub := &trace.Trace{
		Prog:    tr.Prog,
		Entries: append([]trace.Entry(nil), tr.Entries[begin:end]...),
		InitMem: img,
		HitHalt: false,
	}
	sub.Analyze()
	return sub
}

// imageCheckpoint captures the dirty pages of img as an image-only
// checkpoint (no architectural state: a materialized trace already knows
// every entry, only the memory image needs restoring).
func imageCheckpoint(at int64, img *mem.Image, dirty map[uint32]bool) *emu.Checkpoint {
	ck := &emu.Checkpoint{At: at, Pages: make(map[uint32]*[mem.PageSize]byte, len(dirty))}
	for base := range dirty {
		if pg, ok := img.PageCopy(base); ok {
			ck.Pages[base] = pg
		}
	}
	return ck
}
