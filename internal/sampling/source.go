package sampling

import (
	"fmt"
	"sort"

	"dmdp/internal/artifact"
	"dmdp/internal/emu"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// Source supplies the standalone sub-trace for each interval of a plan.
// IntervalTrace must be safe for concurrent calls with distinct indices
// (RunPlan invokes it from pool workers).
type Source interface {
	// IntervalTrace returns interval i extended backwards by the plan's
	// warmup (clamped at the trace start) as a runnable trace, plus the
	// number of warmup entries actually prepended.
	IntervalTrace(i int) (*trace.Trace, int, error)
}

// traceSource extracts intervals from a fully materialized trace. The
// sub-traces are built eagerly in a single forward pass over the parent
// trace (one rolling memory image, cloned at each interval begin), so a
// k-interval plan costs O(traceLen + k·pages) instead of the O(k·traceLen)
// of calling Slice per interval.
type traceSource struct {
	subs  []*trace.Trace
	warms []int
}

func (s *traceSource) IntervalTrace(i int) (*trace.Trace, int, error) {
	return s.subs[i], s.warms[i], nil
}

// beginOf returns the warmup-extended begin of interval i under the plan.
func beginOf(plan Plan, i int) (begin, warm int) {
	iv := plan.Intervals[i]
	warm = plan.Warmup
	if warm > iv.Start {
		warm = iv.Start
	}
	return iv.Start - warm, warm
}

// NewTraceSource builds the interval source for a materialized trace.
//
// When useCkpt is true and store is non-nil, each interval begin is first
// looked up in the checkpoint store (keyed by traceKey and the begin
// index): hits restore the memory image in microseconds; misses fall back
// to the rolling forward pass and publish an image checkpoint for next
// time. Corrupt checkpoints decode as misses, so a damaged cache degrades
// to re-extraction, never to wrong results.
func NewTraceSource(tr *trace.Trace, plan Plan, store *artifact.Store, traceKey artifact.Key, useCkpt bool) (Source, error) {
	if len(plan.Intervals) == 0 {
		return nil, fmt.Errorf("sampling: empty plan")
	}
	n := len(plan.Intervals)
	src := &traceSource{subs: make([]*trace.Trace, n), warms: make([]int, n)}
	begins := make([]int, n)
	for i := range plan.Intervals {
		iv := plan.Intervals[i]
		if iv.Start < 0 || iv.End > len(tr.Entries) || iv.Start >= iv.End {
			return nil, fmt.Errorf("sampling: interval [%d,%d) out of range (trace %d)",
				iv.Start, iv.End, len(tr.Entries))
		}
		begins[i], src.warms[i] = beginOf(plan, i)
	}

	// Restore what we can from the checkpoint store.
	pending := make([]int, 0, n)
	for i, begin := range begins {
		if useCkpt && store != nil {
			if ck, ok := store.LoadCheckpoint(artifact.CheckpointKey(traceKey, int64(begin))); ok && ck.At == int64(begin) {
				src.subs[i] = subTrace(tr, begin, plan.Intervals[i].End, ck.RestoreImage(tr.InitMem))
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return src, nil
	}

	// One rolling pass for the rest, ascending by begin index. The image
	// is cloned at each begin; with checkpointing on, the dirty-page delta
	// against InitMem is also published for the next run.
	sort.Slice(pending, func(a, b int) bool { return begins[pending[a]] < begins[pending[b]] })
	img := tr.InitMem.Clone()
	dirty := map[uint32]bool{}
	cursor := 0
	for _, i := range pending {
		begin := begins[i]
		for ; cursor < begin; cursor++ {
			e := &tr.Entries[cursor]
			if e.IsStore() {
				img.Write(e.Addr, uint32(e.Size), e.Value)
				for b := uint32(0); b < uint32(e.Size); b++ {
					dirty[(e.Addr+b)&^uint32(mem.PageSize-1)] = true
				}
			}
		}
		src.subs[i] = subTrace(tr, begin, plan.Intervals[i].End, img.Clone())
		if useCkpt && store != nil {
			store.StoreCheckpoint(artifact.CheckpointKey(traceKey, int64(begin)), imageCheckpoint(int64(begin), img, dirty))
		}
	}
	return src, nil
}

// subTrace assembles the standalone trace for [begin,end) on top of the
// given pre-rolled memory image. Entries are copied because Analyze
// rewrites the per-entry dependence fields relative to the sub-trace.
func subTrace(tr *trace.Trace, begin, end int, img *mem.Image) *trace.Trace {
	sub := &trace.Trace{
		Prog:    tr.Prog,
		Entries: append([]trace.Entry(nil), tr.Entries[begin:end]...),
		InitMem: img,
		HitHalt: false,
	}
	sub.Analyze()
	return sub
}

// imageCheckpoint captures the dirty pages of img as an image-only
// checkpoint (no architectural state: a materialized trace already knows
// every entry, only the memory image needs restoring).
func imageCheckpoint(at int64, img *mem.Image, dirty map[uint32]bool) *emu.Checkpoint {
	ck := &emu.Checkpoint{At: at, Pages: make(map[uint32]*[mem.PageSize]byte, len(dirty))}
	for base := range dirty {
		if pg, ok := img.PageCopy(base); ok {
			ck.Pages[base] = pg
		}
	}
	return ck
}
