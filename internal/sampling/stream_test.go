package sampling

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/workload"
)

func execRequest(t *testing.T, bench string, budget int64) (Request, Request) {
	t.Helper()
	s, ok := workload.Get(bench)
	if !ok {
		t.Fatalf("unknown bench %s", bench)
	}
	tr, err := s.BuildTrace(budget)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	key := artifact.TraceKey(s.SourceHash(), budget)
	mat := Request{Budget: budget, Trace: tr, TraceKey: key}
	str := Request{Budget: budget, Prog: prog, TraceKey: key}
	return mat, str
}

// TestStreamMatchesMaterialized is the core equivalence oracle of the
// streaming path: re-materializing intervals from checkpoints + emulator
// replay must give byte-identical combined stats to slicing a fully
// materialized trace.
func TestStreamMatchesMaterialized(t *testing.T) {
	cfg := config.Default(config.DMDP)
	spec := Spec{Count: 4, Len: 2_000, Warmup: 500}
	mat, str := execRequest(t, "gcc", 50_000)
	mat.Spec, str.Spec = spec, spec

	a, err := Execute(context.Background(), cfg, mat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Streamed || a.Streamed {
		t.Fatal("path selection wrong")
	}
	if !bytes.Equal(a.Combined.MarshalCanonical(), b.Combined.MarshalCanonical()) {
		t.Fatalf("streamed result differs from materialized:\nmat IPC %f\nstr IPC %f",
			a.Combined.WeightedIPC, b.Combined.WeightedIPC)
	}
}

func TestStreamAutoPlanMatchesMaterializedAuto(t *testing.T) {
	cfg := config.Default(config.DMDP)
	spec := Spec{Auto: true, K: 4}
	mat, str := execRequest(t, "sjeng", 60_000)
	mat.Spec, str.Spec = spec, spec
	a, err := Execute(context.Background(), cfg, mat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan.Intervals) == 0 || len(a.Plan.Intervals) > 4 {
		t.Fatalf("auto plan size %d", len(a.Plan.Intervals))
	}
	if !bytes.Equal(a.Combined.MarshalCanonical(), b.Combined.MarshalCanonical()) {
		t.Fatal("auto plans diverge between materialized and streamed paths")
	}
}

// TestExecuteParallelByteIdentical: the -j determinism contract at the
// Execute level (the full 21-proxy sweep lives in the root package's
// determinism test).
func TestExecuteParallelByteIdentical(t *testing.T) {
	cfg := config.Default(config.DMDP)
	spec := Spec{Count: 6, Len: 1_500, Warmup: 300}
	_, str := execRequest(t, "mcf", 40_000)
	str.Spec = spec
	var ref []byte
	for _, jobs := range []int{1, 2, 8} {
		req := str
		req.Jobs = jobs
		out, err := Execute(context.Background(), cfg, req)
		if err != nil {
			t.Fatal(err)
		}
		enc := out.Combined.MarshalCanonical()
		if ref == nil {
			ref = enc
		} else if !bytes.Equal(ref, enc) {
			t.Fatalf("-j%d result differs from -j1", jobs)
		}
	}
}

// TestCheckpointWarmAndCorruptDegrade drives the full persistence cycle:
// cold run publishes plan+checkpoints, warm run restores them (skipping
// the profiling pass), and corrupting every checkpoint degrades to
// re-simulation with identical results.
func TestCheckpointWarmAndCorruptDegrade(t *testing.T) {
	dir := t.TempDir()
	store, err := artifact.Open(dir, artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(config.DMDP)
	spec := Spec{Auto: true, K: 3, Warmup: 200}
	_, str := execRequest(t, "astar", 40_000)
	str.Spec, str.Checkpoint, str.Store = spec, true, store

	cold, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCached {
		t.Fatal("cold run cannot hit the plan cache")
	}
	ref := cold.Combined.MarshalCanonical()

	warm, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PlanCached {
		t.Fatal("warm run should reuse the cached plan")
	}
	if !bytes.Equal(ref, warm.Combined.MarshalCanonical()) {
		t.Fatal("warm (checkpoint-restored) result differs from cold")
	}

	// Corrupt every checkpoint: the plan still loads, every restore
	// misses, and interval extraction degrades to re-emulation from the
	// program start — slower, byte-identical.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".ckpt") {
			path := filepath.Join(dir, de.Name())
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)/2] ^= 0xff
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no checkpoints were persisted")
	}
	degraded, err := Execute(context.Background(), cfg, str)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, degraded.Combined.MarshalCanonical()) {
		t.Fatal("degraded (corrupt-checkpoint) result differs from cold")
	}
}

// TestTraceSourceCheckpointRestore: the materialized path's image
// checkpoints round-trip through the store and reproduce exactly what
// the rolling pass (and the legacy per-interval Slice) computes.
func TestTraceSourceCheckpointRestore(t *testing.T) {
	store, err := artifact.Open(t.TempDir(), artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	mat, _ := execRequest(t, "perl", 30_000)
	plan, err := Uniform(len(mat.Trace.Entries), 2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan.Warmup = 400

	cold, err := NewTraceSource(mat.Trace, plan, store, mat.TraceKey, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewTraceSource(mat.Trace, plan, store, mat.TraceKey, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store.Counters().CheckpointHits != int64(len(plan.Intervals)) {
		t.Fatalf("warm source should restore every interval: %+v", store.Counters())
	}
	for i := range plan.Intervals {
		a, warmA, err := cold.IntervalTrace(i)
		if err != nil {
			t.Fatal(err)
		}
		b, warmB, err := warm.IntervalTrace(i)
		if err != nil {
			t.Fatal(err)
		}
		begin, wantWarm := beginOf(plan, i)
		if warmA != wantWarm || warmB != wantWarm {
			t.Fatalf("interval %d warm %d/%d, want %d", i, warmA, warmB, wantWarm)
		}
		ref, err := Slice(mat.Trace, Interval{Start: begin, End: plan.Intervals[i].End, Weight: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Entries) != len(ref.Entries) || len(b.Entries) != len(ref.Entries) {
			t.Fatalf("interval %d length mismatch", i)
		}
		for j := range ref.Entries {
			if a.Entries[j] != ref.Entries[j] || b.Entries[j] != ref.Entries[j] {
				t.Fatalf("interval %d entry %d differs from Slice reference", i, j)
			}
		}
	}
}

// Checkpoint spacing on the streamed path must be budget-derived, never
// the spec's interval length: a `1x1000` spec at a 100M budget once
// snapshotted a checkpoint every 1000 entries — 100k O(dirty pages)
// deltas, quadratic work that looked like a hang — while a huge interval
// length would have buffered the whole chunk in memory. The store must
// hold ~budget/autoChunkLen checkpoints regardless of Spec.Len.
func TestSystematicSpecChunkingIsBudgetDerived(t *testing.T) {
	const budget = 100_000
	dir := t.TempDir()
	store, err := artifact.Open(dir, artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, str := execRequest(t, "gcc", budget)
	str.Spec = Spec{Count: 1, Len: 10}
	str.Checkpoint, str.Store = true, store

	if _, err := Execute(context.Background(), config.Default(config.DMDP), str); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			ckpts++
		}
	}
	want := int(budget) / autoChunkLen(budget)
	if ckpts < want/2 || ckpts > 2*want {
		t.Fatalf("store holds %d checkpoints for a %d budget (chunking tied to Spec.Len=10?); want ~%d", ckpts, budget, want)
	}
}
