// Package profiling wires the standard -cpuprofile/-memprofile flags used
// by the simulator commands. It is a thin wrapper over runtime/pprof that
// keeps the two binaries' flag handling identical.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that finishes the CPU profile and, when memPath is
// non-empty, writes an allocation profile there. Call stop exactly once,
// after the workload finished — deferring it from main works because the
// commands exit by returning, not by os.Exit, on the success path.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush unreached garbage so allocs settle
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
