package trace

import (
	"context"
	"errors"
	"testing"
	"time"

	"dmdp/internal/isa"
)

// countStepper emits deterministic entries (PC = 4*index) until haltAt
// instructions have been produced (never halts when haltAt < 0).
type countStepper struct {
	n      int64
	haltAt int64
}

func (s *countStepper) Step() (Entry, error) {
	e := Entry{PC: uint32(4 * s.n), Instr: isa.Instr{Op: isa.OpADDI}}
	s.n++
	return e, nil
}

func (s *countStepper) Halted() bool { return s.haltAt >= 0 && s.n >= s.haltAt }

func TestCollectCtxCancelsMidBuild(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // fires at the first poll boundary, mid-build
	const max = 50_000
	_, err := CollectCtx(ctx, &countStepper{haltAt: -1}, max, nil, nil)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	var bc *BuildCanceled
	if !errors.As(err, &bc) {
		t.Fatalf("want *BuildCanceled, got %T: %v", err, err)
	}
	if bc.Entries <= 0 || bc.Entries >= max {
		t.Fatalf("cancel should fire mid-build: %d entries of %d", bc.Entries, max)
	}
	// The structured error must still satisfy the generic cancellation
	// checks used by the experiments runner and the daemon.
	if !errors.Is(err, context.Canceled) {
		t.Fatal("BuildCanceled must unwrap to context.Canceled")
	}
}

func TestCollectCtxDeadlineUnwraps(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := CollectCtx(ctx, &countStepper{haltAt: -1}, 50_000, nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestCollectCtxMatchesCollect(t *testing.T) {
	a, err := Collect(&countStepper{haltAt: 100}, 1000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectCtx(context.Background(), &countStepper{haltAt: 100}, 1000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) || !a.HitHalt || !b.HitHalt {
		t.Fatalf("mismatch: %d vs %d entries", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestForEachChunk(t *testing.T) {
	var starts []int64
	var lens []int
	var pcs []uint32
	total, halt, err := ForEachChunk(context.Background(), &countStepper{haltAt: -1}, 25, 10,
		func(start int64, chunk []Entry) error {
			starts = append(starts, start)
			lens = append(lens, len(chunk))
			for i := range chunk {
				pcs = append(pcs, chunk[i].PC)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if total != 25 || halt {
		t.Fatalf("total %d halt %v", total, halt)
	}
	wantStarts := []int64{0, 10, 20}
	wantLens := []int{10, 10, 5}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] || lens[i] != wantLens[i] {
			t.Fatalf("chunk %d: start %d len %d", i, starts[i], lens[i])
		}
	}
	for i, pc := range pcs {
		if pc != uint32(4*i) {
			t.Fatalf("entry %d: pc %#x", i, pc)
		}
	}
}

func TestForEachChunkHalt(t *testing.T) {
	var n int
	total, halt, err := ForEachChunk(context.Background(), &countStepper{haltAt: 7}, 100, 4,
		func(start int64, chunk []Entry) error { n += len(chunk); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 || !halt || n != 7 {
		t.Fatalf("total %d halt %v seen %d", total, halt, n)
	}
}

func TestForEachChunkCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ForEachChunk(ctx, &countStepper{haltAt: -1}, 1_000_000, 1024,
		func(int64, []Entry) error { return nil })
	var bc *BuildCanceled
	if !errors.As(err, &bc) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want BuildCanceled wrapping context.Canceled, got %v", err)
	}
}

func TestForEachChunkFnError(t *testing.T) {
	sentinel := errors.New("stop")
	_, _, err := ForEachChunk(context.Background(), &countStepper{haltAt: -1}, 100, 10,
		func(int64, []Entry) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}
