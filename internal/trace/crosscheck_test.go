package trace_test

import (
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/emu"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

// TestLoadValuesReconstructible cross-checks the emulator and the
// dependence analysis: replaying every store that precedes a load onto
// the initial memory image must reproduce exactly the value the load
// observed. This is the property the timing core's committed-image
// mechanism relies on.
func TestLoadValuesReconstructible(t *testing.T) {
	for _, bench := range []string{"perl", "bzip2", "hmmer"} {
		s, _ := workload.Get(bench)
		tr, err := s.BuildTrace(15_000)
		if err != nil {
			t.Fatal(err)
		}
		img := tr.InitMem.Clone()
		for i := range tr.Entries {
			e := &tr.Entries[i]
			switch {
			case e.IsStore():
				img.Write(e.Addr, uint32(e.Size), e.Value)
			case e.IsLoad():
				got := trace.ExtendLoad(e.Instr.Op, img.Read(e.Addr, uint32(e.Size)))
				if got != e.Value {
					t.Fatalf("%s: load at entry %d (pc 0x%x): replayed 0x%x, trace says 0x%x",
						bench, i, e.PC, got, e.Value)
				}
			}
		}
	}
}

// TestDepStoreValueConsistency: when a load's youngest colliding store
// fully covers it, forwarding that store's value must reproduce the
// load's architectural value (the cloaking correctness condition).
func TestDepStoreValueConsistency(t *testing.T) {
	src := `
	.data
buf:	.space 64
	.text
main:
	la $t9, buf
	li $t0, 500
loop:
	andi $t1, $t0, 28
	add  $t2, $t9, $t1
	sw   $t0, 0($t2)
	lw   $t3, 0($t2)     # always fully covered by the sw above
	sh   $t0, 32($t9)
	lhu  $t4, 32($t9)    # halfword forwarding
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.Run(p, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if !e.IsLoad() || e.DepStore == 0 || e.DepOverlap != trace.OverlapFull {
			continue
		}
		sIdx := tr.EntryBySeq(e.DepStore)
		if sIdx < 0 {
			t.Fatalf("entry %d: colliding store seq %d not found", i, e.DepStore)
		}
		if got := trace.ForwardValue(&tr.Entries[sIdx], e); got != e.Value {
			t.Fatalf("entry %d: forwarded 0x%x, architectural 0x%x", i, got, e.Value)
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d fully-covered loads checked", checked)
	}
}
