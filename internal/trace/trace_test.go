package trace

import (
	"testing"
	"testing/quick"

	"dmdp/internal/isa"
)

func ld(op isa.Op, addr uint32) Entry {
	return Entry{Instr: isa.Instr{Op: op}, Addr: addr, Size: uint8(op.MemBytes())}
}

func st(op isa.Op, addr, val uint32) Entry {
	return Entry{Instr: isa.Instr{Op: op}, Addr: addr, Size: uint8(op.MemBytes()), Value: val}
}

func TestBAB(t *testing.T) {
	cases := []struct {
		addr, size uint32
		want       uint8
	}{
		{0x100, 4, 0b1111},
		{0x100, 2, 0b0011},
		{0x102, 2, 0b1100},
		{0x101, 1, 0b0010},
		{0x103, 1, 0b1000},
	}
	for _, c := range cases {
		if got := BAB(c.addr, c.size); got != c.want {
			t.Errorf("BAB(0x%x,%d) = %04b, want %04b", c.addr, c.size, got, c.want)
		}
	}
}

func TestAnalyzeBasicDependence(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		st(isa.OpSW, 0x100, 1), // seq 1
		st(isa.OpSW, 0x200, 2), // seq 2
		ld(isa.OpLW, 0x100),    // depends on seq 1, dist 1
		st(isa.OpSW, 0x100, 3), // seq 3
		ld(isa.OpLW, 0x100),    // depends on seq 3, dist 0
		ld(isa.OpLW, 0x300),    // no dependence
	}}
	tr.Analyze()
	e := tr.Entries
	if e[0].StoreSeq() != 1 || e[1].StoreSeq() != 2 || e[3].StoreSeq() != 3 {
		t.Fatal("store seqs wrong")
	}
	if e[2].DepStore != 1 || e[2].DepDist() != 1 || e[2].DepOverlap != OverlapFull {
		t.Fatalf("load1 dep = %d dist %d %v", e[2].DepStore, e[2].DepDist(), e[2].DepOverlap)
	}
	if e[4].DepStore != 3 || e[4].DepDist() != 0 {
		t.Fatalf("load2 dep = %d dist %d", e[4].DepStore, e[4].DepDist())
	}
	if e[5].DepStore != 0 || e[5].DepOverlap != OverlapNone {
		t.Fatalf("load3 dep = %d %v", e[5].DepStore, e[5].DepOverlap)
	}
	if tr.Stores != 3 || tr.Loads != 3 {
		t.Fatalf("counts %d %d", tr.Stores, tr.Loads)
	}
}

func TestAnalyzePartialOverlap(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		st(isa.OpSW, 0x100, 0x11223344), // seq 1: whole word
		st(isa.OpSB, 0x100, 0x55),       // seq 2: low byte only
		ld(isa.OpLW, 0x100),             // youngest writer of byte0 is 2, bytes1-3 is 1 -> partial on 2
		ld(isa.OpLB, 0x100),             // fully covered by seq 2
		ld(isa.OpLH, 0x102),             // bytes 2-3 only: full on seq 1
	}}
	tr.Analyze()
	e := tr.Entries
	if e[2].DepStore != 2 || e[2].DepOverlap != OverlapPartial {
		t.Fatalf("lw dep=%d %v", e[2].DepStore, e[2].DepOverlap)
	}
	if e[3].DepStore != 2 || e[3].DepOverlap != OverlapFull {
		t.Fatalf("lb dep=%d %v", e[3].DepStore, e[3].DepOverlap)
	}
	if e[4].DepStore != 1 || e[4].DepOverlap != OverlapFull {
		t.Fatalf("lh dep=%d %v", e[4].DepStore, e[4].DepOverlap)
	}
}

func TestAnalyzeIdempotent(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		st(isa.OpSW, 0x100, 1),
		ld(isa.OpLW, 0x100),
	}}
	tr.Analyze()
	first := append([]Entry(nil), tr.Entries...)
	tr.Analyze()
	for i := range first {
		if first[i] != tr.Entries[i] {
			t.Fatalf("entry %d changed on re-analyze", i)
		}
	}
}

func TestEntryBySeq(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		ld(isa.OpLW, 0x500),
		st(isa.OpSW, 0x100, 1), // seq 1 at idx 1
		ld(isa.OpLW, 0x100),
		st(isa.OpSW, 0x104, 2), // seq 2 at idx 3
		st(isa.OpSW, 0x108, 3), // seq 3 at idx 4
	}}
	tr.Analyze()
	for seq, wantIdx := range map[int64]int{1: 1, 2: 3, 3: 4} {
		if got := tr.EntryBySeq(seq); got != wantIdx {
			t.Errorf("EntryBySeq(%d) = %d, want %d", seq, got, wantIdx)
		}
	}
	if tr.EntryBySeq(0) != -1 || tr.EntryBySeq(4) != -1 || tr.EntryBySeq(-2) != -1 {
		t.Error("out-of-range seq should return -1")
	}
}

func TestForwardValueWordToWord(t *testing.T) {
	s := st(isa.OpSW, 0x100, 0xdeadbeef)
	l := ld(isa.OpLW, 0x100)
	if got := ForwardValue(&s, &l); got != 0xdeadbeef {
		t.Fatalf("got 0x%x", got)
	}
}

func TestForwardValueWordToHalf(t *testing.T) {
	s := st(isa.OpSW, 0x100, 0x11228002)
	lo := ld(isa.OpLHU, 0x100)
	hi := ld(isa.OpLHU, 0x102)
	his := ld(isa.OpLH, 0x100)
	if ForwardValue(&s, &lo) != 0x8002 {
		t.Error("low half wrong")
	}
	if ForwardValue(&s, &hi) != 0x1122 {
		t.Error("high half wrong (shift by address bits)")
	}
	if ForwardValue(&s, &his) != 0xffff8002 {
		t.Error("sign extension wrong")
	}
}

func TestForwardValueByte(t *testing.T) {
	s := st(isa.OpSW, 0x100, 0x11223384)
	b3 := ld(isa.OpLBU, 0x103)
	if ForwardValue(&s, &b3) != 0x11 {
		t.Error("byte 3 wrong")
	}
	sb := ld(isa.OpLB, 0x100)
	if ForwardValue(&s, &sb) != 0xffffff84 {
		t.Error("lb sign extension wrong")
	}
}

func TestForwardValueHalfToByte(t *testing.T) {
	s := st(isa.OpSH, 0x102, 0xbbaa)
	l := ld(isa.OpLBU, 0x103)
	if got := ForwardValue(&s, &l); got != 0xbb {
		t.Fatalf("got 0x%x", got)
	}
}

func TestExtendLoad(t *testing.T) {
	if ExtendLoad(isa.OpLW, 0xffffffff) != 0xffffffff {
		t.Error("lw must pass through")
	}
	if ExtendLoad(isa.OpLB, 0x80) != 0xffffff80 || ExtendLoad(isa.OpLBU, 0x80) != 0x80 {
		t.Error("byte extension wrong")
	}
	if ExtendLoad(isa.OpLH, 0x8000) != 0xffff8000 || ExtendLoad(isa.OpLHU, 0xff8000) != 0x8000 {
		t.Error("half extension wrong")
	}
}

// Property: the youngest colliding store reported by Analyze always has a
// smaller sequence number than StoresBefore+1 and never exceeds the number
// of stores.
func TestAnalyzeDepBounds(t *testing.T) {
	f := func(ops []uint16) bool {
		var entries []Entry
		for _, o := range ops {
			addr := uint32(o%64) * 4
			if o&1 == 0 {
				entries = append(entries, st(isa.OpSW, addr, uint32(o)))
			} else {
				entries = append(entries, ld(isa.OpLW, addr))
			}
		}
		tr := &Trace{Entries: entries}
		tr.Analyze()
		for i := range tr.Entries {
			e := &tr.Entries[i]
			if e.IsLoad() {
				if e.DepStore < 0 || e.DepStore > e.StoresBefore {
					return false
				}
				if e.DepStore > 0 && e.DepDist() != e.StoresBefore-e.DepStore {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for word-aligned word stores/loads, the forwarded value always
// equals the store value.
func TestForwardValueWordProperty(t *testing.T) {
	f := func(addr, val uint32) bool {
		a := addr &^ 3
		s := st(isa.OpSW, a, val)
		l := ld(isa.OpLW, a)
		return ForwardValue(&s, &l) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
