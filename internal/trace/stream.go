package trace

import (
	"context"
	"fmt"

	"dmdp/internal/isa"
	"dmdp/internal/mem"
)

// buildPollInterval is how many emulated instructions may pass between
// context polls during a trace build. It mirrors the timing core's
// cancelPollInterval: one select per instruction would dominate the
// emulator's step cost, while 4096 keeps cancellation latency at a few
// microseconds of emulated work.
const buildPollInterval = 4096

// BuildCanceled is the structured error returned when a context fires
// mid-build. It records how far the build got and unwraps to the
// underlying context error so errors.Is(err, context.Canceled) — and
// therefore experiments.IsCanceled — keep working unchanged.
type BuildCanceled struct {
	// Entries is the number of trace entries collected before the
	// cancellation was observed.
	Entries int64
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

func (e *BuildCanceled) Error() string {
	return fmt.Sprintf("trace: build canceled after %d entries: %v", e.Entries, e.Cause)
}

func (e *BuildCanceled) Unwrap() error { return e.Cause }

// CollectCtx is Collect with cancellation: it polls ctx every
// buildPollInterval instructions and aborts with *BuildCanceled when the
// context fires. A nil ctx behaves like context.Background().
func CollectCtx(ctx context.Context, s Stepper, max int64, prog *isa.Program, initMem *mem.Image) (*Trace, error) {
	t := &Trace{Prog: prog, InitMem: initMem}
	if max > 0 {
		t.Entries = make([]Entry, 0, max)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	poll := 0
	for int64(len(t.Entries)) < max && !s.Halted() {
		if poll++; poll >= buildPollInterval && done != nil {
			poll = 0
			select {
			case <-done:
				return nil, &BuildCanceled{Entries: int64(len(t.Entries)), Cause: ctx.Err()}
			default:
			}
		}
		e, err := s.Step()
		if err != nil {
			return nil, fmt.Errorf("trace: at entry %d: %w", len(t.Entries), err)
		}
		t.Entries = append(t.Entries, e)
	}
	t.HitHalt = s.Halted()
	t.Analyze()
	return t, nil
}

// ForEachChunk streams at most max instructions from s in fixed-length
// chunks without materializing the whole trace: fn is invoked once per
// chunk with the index of the chunk's first instruction and the raw
// entries. The final chunk may be shorter than chunkLen. The entries are
// raw (Analyze has not run, so StoresBefore/LoadsBefore/DepStore are
// zero) and the slice is a reused buffer — fn must not retain it past
// the call. A non-nil error from fn aborts the stream.
//
// Returns the total number of instructions executed and whether the
// program reached HALT before the budget. Cancellation follows the same
// buildPollInterval contract as CollectCtx and surfaces as *BuildCanceled.
func ForEachChunk(ctx context.Context, s Stepper, max int64, chunkLen int, fn func(start int64, chunk []Entry) error) (total int64, hitHalt bool, err error) {
	if chunkLen <= 0 {
		return 0, false, fmt.Errorf("trace: chunk length %d must be positive", chunkLen)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	buf := make([]Entry, 0, chunkLen)
	poll := 0
	for total < max && !s.Halted() {
		if poll++; poll >= buildPollInterval && done != nil {
			poll = 0
			select {
			case <-done:
				return total, false, &BuildCanceled{Entries: total, Cause: ctx.Err()}
			default:
			}
		}
		e, err := s.Step()
		if err != nil {
			return total, false, fmt.Errorf("trace: at entry %d: %w", total, err)
		}
		buf = append(buf, e)
		total++
		if len(buf) == chunkLen {
			if err := fn(total-int64(chunkLen), buf); err != nil {
				return total, false, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := fn(total-int64(len(buf)), buf); err != nil {
			return total, false, err
		}
	}
	return total, s.Halted(), nil
}
