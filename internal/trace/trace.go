// Package trace defines the dynamic instruction trace produced by the
// functional emulator and the ground-truth memory dependence analysis the
// timing models consume.
//
// The timing simulation is trace-driven over the architecturally correct
// path: speculation outcomes (would this cloaked/predicated/delayed load
// have obtained the right value?) are decided exactly by combining the
// per-entry ground truth computed here with the committed-memory image the
// core maintains cycle by cycle.
package trace

import (
	"dmdp/internal/isa"
	"dmdp/internal/mem"
)

// Overlap classifies how the youngest store writing any byte of a load
// relates to the load's accessed bytes.
type Overlap uint8

// Overlap classes.
const (
	OverlapNone    Overlap = iota // no store in the trace wrote these bytes
	OverlapFull                   // the youngest colliding store covers every load byte
	OverlapPartial                // it covers only part of the load
)

func (o Overlap) String() string {
	switch o {
	case OverlapFull:
		return "full"
	case OverlapPartial:
		return "partial"
	}
	return "none"
}

// Entry is one dynamic instruction on the correct path.
//
// The field order is load-bearing: entries are stored verbatim (little
// endian, no padding between records) by the persistent artifact cache,
// so the layout below IS the trace store's on-disk record format.
// Reordering, resizing or adding a field changes the format — bump
// internal/artifact's trace format version when touching this struct
// (the artifact package asserts the 56-byte layout at init and falls
// back to cache misses if the compiled layout ever deviates). Derivable
// per-entry values (store/load sequence numbers, store distance) are
// deliberately methods, not fields: they cost nothing to recompute and
// would fatten every record on disk and in memory.
type Entry struct {
	PC    uint32
	Instr isa.Instr

	// Target is the architectural next PC (valid for branches and
	// jumps).
	Target uint32

	// Memory (valid for loads and stores).
	Addr  uint32
	Value uint32 // loads: final register result; stores: raw data register value

	// Taken reports whether a branch was taken.
	Taken bool
	// Silent marks stores that rewrote identical bytes.
	Silent bool
	// DepOverlap classifies the byte overlap with DepStore (filled by
	// Analyze for loads).
	DepOverlap Overlap
	// Size is the access width in bytes (1, 2 or 4).
	Size uint8

	// StoresBefore counts dynamic stores that precede this entry; it
	// equals the store sequence number (SSN) the rename stage observes
	// when this entry renames on the correct path.
	StoresBefore int64
	// LoadsBefore counts dynamic loads that precede this entry (the
	// load sequence number space used by the Fire-and-Forget model).
	LoadsBefore int64
	// DepStore is the StoreSeq of the youngest store that wrote any byte
	// this load reads (0 if the location was never stored to in this
	// trace; filled by Analyze for loads).
	DepStore int64
}

// StoreSeq returns this store's 1-based dynamic sequence number (0 for
// non-stores). On the correct path it equals the SSN the core assigns.
func (e *Entry) StoreSeq() int64 {
	if e.IsStore() {
		return e.StoresBefore + 1
	}
	return 0
}

// LoadSeq returns this load's 1-based dynamic sequence number (0 for
// non-loads).
func (e *Entry) LoadSeq() int64 {
	if e.IsLoad() {
		return e.LoadsBefore + 1
	}
	return 0
}

// DepDist returns StoresBefore - DepStore, the store-distance ground
// truth the Store Distance Predictor tries to learn (0 means the
// colliding store is the most recent store, or that the load has no
// colliding store at all).
func (e *Entry) DepDist() int64 {
	if e.DepStore == 0 {
		return 0
	}
	return e.StoresBefore - e.DepStore
}

// IsLoad reports whether the entry is a load.
func (e *Entry) IsLoad() bool { return e.Instr.Op.IsLoad() }

// IsStore reports whether the entry is a store.
func (e *Entry) IsStore() bool { return e.Instr.Op.IsStore() }

// WordAddr returns the word-aligned address of the access.
func (e *Entry) WordAddr() uint32 { return e.Addr &^ 3 }

// BAB returns the 4-bit byte-access-bits mask of the access within its
// word (paper §IV-D): bit i set means byte i of the word is accessed.
func (e *Entry) BAB() uint8 {
	return BAB(e.Addr, uint32(e.Size))
}

// BAB computes byte access bits for an access of size bytes at addr.
func BAB(addr, size uint32) uint8 {
	return uint8((1<<size - 1) << (addr & 3))
}

// Trace is a collected correct-path execution.
type Trace struct {
	Prog    *isa.Program
	Entries []Entry
	// InitMem is the memory image before the first instruction executed;
	// the timing core clones it as its committed-state image.
	InitMem *mem.Image
	// Stores counts dynamic stores; Loads counts dynamic loads.
	Stores, Loads int64
	// HitHalt reports whether execution reached HALT before the budget.
	HitHalt bool
}

// Stepper produces trace entries one instruction at a time (implemented by
// the functional emulator).
type Stepper interface {
	Step() (Entry, error)
	Halted() bool
}

// Collect runs s for at most max instructions (HALT stops earlier),
// analyzes memory dependences and returns the trace. InitMem must be a
// snapshot of memory before the first Step. Collect cannot be canceled;
// use CollectCtx when a deadline may fire mid-build.
func Collect(s Stepper, max int64, prog *isa.Program, initMem *mem.Image) (*Trace, error) {
	return CollectCtx(nil, s, max, prog, initMem)
}

// Analyze computes, for every load, the youngest store writing any of its
// bytes, the overlap class and the store distance; for every store, its
// sequence number and the silent flag is expected to have been set by the
// emulator. Analyze is idempotent.
func (t *Trace) Analyze() {
	// lastWriter maps word address -> per-byte youngest writer StoreSeq.
	lastWriter := make(map[uint32]*[4]int64)
	writerFor := func(word uint32) *[4]int64 {
		w := lastWriter[word]
		if w == nil {
			w = new([4]int64)
			lastWriter[word] = w
		}
		return w
	}
	var storeSeq, loadSeq int64
	t.Loads, t.Stores = 0, 0
	byteWriters := make([]int64, 0, 4)
	for i := range t.Entries {
		e := &t.Entries[i]
		e.StoresBefore = storeSeq
		e.LoadsBefore = loadSeq
		switch {
		case e.IsStore():
			storeSeq++
			t.Stores++
			w := writerFor(e.WordAddr())
			for b := uint32(0); b < uint32(e.Size); b++ {
				w[(e.Addr+b)&3] = storeSeq
			}
		case e.IsLoad():
			loadSeq++
			t.Loads++
			w := lastWriter[e.WordAddr()]
			byteWriters = byteWriters[:0]
			var youngest int64
			for b := uint32(0); b < uint32(e.Size); b++ {
				var ws int64
				if w != nil {
					ws = w[(e.Addr+b)&3]
				}
				byteWriters = append(byteWriters, ws)
				if ws > youngest {
					youngest = ws
				}
			}
			e.DepStore = youngest
			if youngest == 0 {
				e.DepOverlap = OverlapNone
				continue
			}
			full := true
			for _, ws := range byteWriters {
				if ws != youngest {
					full = false
					break
				}
			}
			// Full forwarding additionally requires the store to
			// *contain* the load (no forwarding from a narrower
			// store even if it is the youngest writer of every
			// load byte — that can only happen when sizes match).
			if full {
				e.DepOverlap = OverlapFull
			} else {
				e.DepOverlap = OverlapPartial
			}
		}
	}
}

// EntryBySeq returns the index of the store with the given StoreSeq using
// binary search over the monotone StoresBefore field. Returns -1 when the
// seq is not in the trace.
func (t *Trace) EntryBySeq(seq int64) int {
	if seq <= 0 || seq > t.Stores {
		return -1
	}
	lo, hi := 0, len(t.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.Entries[mid].StoresBefore < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first entry with StoresBefore >= seq; the store itself is
	// the previous entry with StoreSeq == seq.
	for i := lo - 1; i >= 0 && i > lo-16; i-- {
		if t.Entries[i].StoreSeq() == seq {
			return i
		}
	}
	// Fallback linear scan (should not happen).
	for i := range t.Entries {
		if t.Entries[i].StoreSeq() == seq {
			return i
		}
	}
	return -1
}

// ForwardValue computes the register value a load obtains when the store
// entry st forwards to load entry ld (full containment assumed). It
// applies the word-relative shift and the load's masking and sign/zero
// extension (paper §IV-D).
func ForwardValue(st, ld *Entry) uint32 {
	// Materialize the store's bytes within its word, then extract the
	// load's bytes.
	var word [4]byte
	for b := uint32(0); b < uint32(st.Size); b++ {
		word[(st.Addr+b)&3] = byte(st.Value >> (8 * b))
	}
	var v uint32
	for b := uint32(0); b < uint32(ld.Size); b++ {
		v |= uint32(word[(ld.Addr+b)&3]) << (8 * b)
	}
	return ExtendLoad(ld.Instr.Op, v)
}

// ExtendLoad applies the sign/zero extension of a load opcode to the raw
// bytes v.
func ExtendLoad(op isa.Op, v uint32) uint32 {
	switch op {
	case isa.OpLB:
		return uint32(int32(int8(v)))
	case isa.OpLBU:
		return v & 0xff
	case isa.OpLH:
		return uint32(int32(int16(v)))
	case isa.OpLHU:
		return v & 0xffff
	}
	return v
}
