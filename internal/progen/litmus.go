package progen

import (
	"fmt"
	"strings"

	"dmdp/internal/isa"
)

// This file generates multi-threaded litmus tests for the multicore
// machine (internal/core.Machine) and its I2E reference checker
// (internal/litmus). A litmus test is a single assembly source with one
// entry label per thread (thread0:, thread1:, ...) over a shared .data
// section, plus an observation spec naming the registers and shared
// words that make up the final state.
//
// The trace-driven multicore design imposes one invariant on every
// litmus program: control flow, memory addresses and store values must
// not depend on values loaded from shared memory (each core replays an
// isolated per-thread trace; only loaded VALUES are re-resolved at
// retire). The generator guarantees this structurally — shared loads
// only ever target dedicated observation registers that nothing reads,
// addresses come from `la`, and stores write constants.
//
// Thread body layout (the prelude engineers a real race window):
//
//	threadK: la pointers (shared vars, private line)
//	         warm loads of every shared line this thread loads
//	         counted delay loop      (lets the warming misses settle)
//	         cold private-line load  (widens the speculation window:
//	                                  racing loads sample long before
//	                                  they can retire)
//	         racing load/store sequence
//	         halt
//
// Register conventions (fixed, so the event extractor can distinguish
// racing loads from plumbing): observation registers $t0..$t6; $t7
// store-data; $t8 warm/window scratch; $t9 delay counter; $s0..$s3
// shared-variable pointers; $s7 private-line pointer.

// LitmusObs is one observed slot of a litmus test's final state: a
// register of one thread, or (Thread == -1) a shared memory word.
type LitmusObs struct {
	Thread int
	Reg    isa.Reg // register observations
	Sym    string  // memory observations: shared-variable symbol
	Name   string  // stable display name, e.g. "0:t3" or "mem:x"
}

// LitmusTest is a generated multi-threaded litmus program.
type LitmusTest struct {
	Name    string
	Threads int
	Source  string
	Shared  []string // shared-variable symbols (each one aligned word)
	Obs     []LitmusObs
}

// litmusOp is one racing operation of one thread.
type litmusOp struct {
	store  bool
	v      int    // shared-variable index
	off    uint32 // byte offset inside the variable's word
	size   uint32 // 1, 2 or 4
	val    uint32 // store data
	reg    string // load destination ($t0..$t6)
	signed bool   // lb/lh instead of lbu/lhu
}

// obsRegPool are the per-thread observation registers, in allocation
// order. Litmus threads are capped at len(obsRegPool) racing loads.
var obsRegPool = []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6"}

// LitmusMaxLoads is the per-thread racing-load cap (len(obsRegPool)).
const LitmusMaxLoads = 7

const litmusDelayIters = 150

var loadMnemonic = map[uint32][2]string{1: {"lbu", "lb"}, 2: {"lhu", "lh"}, 4: {"lw", "lw"}}
var storeMnemonic = map[uint32]string{1: "sb", 2: "sh", 4: "sw"}

// buildLitmus assembles the source and observation spec for the given
// per-thread racing sequences. vars names the shared variables;
// sameLine packs them into one cache line (false-sharing stress)
// instead of one line each.
func buildLitmus(name string, vars []string, sameLine bool, threads [][]litmusOp) LitmusTest {
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	line("# litmus %s: %d threads, %d shared vars", name, len(threads), len(vars))
	line("\t.data")
	for i, v := range vars {
		if i == 0 || !sameLine {
			line("\t.align 6")
		}
		line("%s:\t.word 0", v)
	}
	for k := range threads {
		line("\t.align 6")
		line("t%d_priv:\t.word 0", k)
	}
	line("\t.text")

	var obs []LitmusObs
	for k, ops := range threads {
		line("thread%d:", k)
		// Pointer setup: $s0..$s3 for shared vars, $s7 for the private line.
		used := map[int]bool{}
		loads := false
		for _, op := range ops {
			used[op.v] = true
			loads = loads || !op.store
		}
		for v := range vars {
			if used[v] {
				line("\tla $s%d, %s", v, vars[v])
			}
		}
		if loads {
			line("\tla $s7, t%d_priv", k)
			// Warm every shared line this thread loads.
			warmed := map[int]bool{}
			for _, op := range ops {
				if !op.store && !warmed[op.v] {
					warmed[op.v] = true
					line("\tlw $t8, 0($s%d)", op.v)
				}
			}
		}
		line("\tli $t9, %d", litmusDelayIters)
		line("t%d_d:\taddi $t9, $t9, -1", k)
		line("\tbnez $t9, t%d_d", k)
		if loads {
			line("\tlw $t8, 0($s7)")
		}
		for _, op := range ops {
			if op.store {
				line("\tli $t7, %d", op.val)
				line("\t%s $t7, %d($s%d)", storeMnemonic[op.size], op.off, op.v)
				continue
			}
			mn := loadMnemonic[op.size][0]
			if op.signed {
				mn = loadMnemonic[op.size][1]
			}
			line("\t%s %s, %d($s%d)", mn, op.reg, op.off, op.v)
			r, _ := isa.RegByName(op.reg)
			obs = append(obs, LitmusObs{
				Thread: k, Reg: r,
				Name: fmt.Sprintf("%d:%s", k, strings.TrimPrefix(op.reg, "$")),
			})
		}
		line("\thalt")
	}
	for _, v := range vars {
		obs = append(obs, LitmusObs{Thread: -1, Sym: v, Name: "mem:" + v})
	}
	return LitmusTest{
		Name:    name,
		Threads: len(threads),
		Source:  b.String(),
		Shared:  append([]string(nil), vars...),
		Obs:     obs,
	}
}

func st(v int, val uint32) litmusOp { return litmusOp{store: true, v: v, size: 4, val: val} }
func ld(v int, reg string) litmusOp { return litmusOp{v: v, size: 4, reg: reg} }

// LitmusShapes returns the classic named shapes: store buffering (SB),
// message passing (MP), load buffering (LB), independent reads of
// independent writes (IRIW) and coherent read-read (CoRR).
func LitmusShapes() []LitmusTest {
	return []LitmusTest{
		buildLitmus("SB", []string{"x", "y"}, false, [][]litmusOp{
			{st(0, 1), ld(1, "$t0")},
			{st(1, 1), ld(0, "$t0")},
		}),
		buildLitmus("MP", []string{"data", "flag"}, false, [][]litmusOp{
			{st(0, 1), st(1, 1)},
			{ld(1, "$t0"), ld(0, "$t1")},
		}),
		buildLitmus("LB", []string{"x", "y"}, false, [][]litmusOp{
			{ld(0, "$t0"), st(1, 1)},
			{ld(1, "$t0"), st(0, 1)},
		}),
		buildLitmus("IRIW", []string{"x", "y"}, false, [][]litmusOp{
			{st(0, 1)},
			{st(1, 1)},
			{ld(0, "$t0"), ld(1, "$t1")},
			{ld(1, "$t0"), ld(0, "$t1")},
		}),
		buildLitmus("CoRR", []string{"x"}, false, [][]litmusOp{
			{st(0, 1), st(0, 2)},
			{ld(0, "$t0"), ld(0, "$t1")},
		}),
	}
}

// LitmusShapeByName resolves a named shape (case-sensitive).
func LitmusShapeByName(name string) (LitmusTest, bool) {
	for _, s := range LitmusShapes() {
		if s.Name == name {
			return s, true
		}
	}
	return LitmusTest{}, false
}

// LitmusShapeNames lists the named shapes in declaration order.
func LitmusShapeNames() []string {
	shapes := LitmusShapes()
	names := make([]string, len(shapes))
	for i, s := range shapes {
		names[i] = s.Name
	}
	return names
}

// GenerateLitmus produces a seeded random litmus test: 2-4 threads over
// 1-3 shared words (sometimes deliberately packed into one cache line),
// each thread racing 1-5 word or sub-word accesses with constant store
// data. The output is a pure function of the seed.
func GenerateLitmus(seed uint64) LitmusTest {
	r := rng{s: seed}
	nThreads := 2 + r.intn(3)
	nVars := 1 + r.intn(3)
	sameLine := nVars > 1 && r.chance(0.3)
	vars := []string{"x", "y", "z"}[:nVars]

	// Per-thread op budget shrinks with the thread count: the reference
	// executor's state space is the product of per-thread interleaving
	// positions (and, under TSO, drain points), so 4 threads x 5 ops
	// would enumerate millions of final states. 2x5, 3x3 and 4x2 keep
	// every generated test exhaustively checkable.
	maxOps := []int{5, 3, 2}[nThreads-2]
	threads := make([][]litmusOp, nThreads)
	for k := range threads {
		nOps := 1 + r.intn(maxOps)
		if nOps > LitmusMaxLoads {
			nOps = LitmusMaxLoads
		}
		loadCount := 0
		for i := 0; i < nOps; i++ {
			v := r.intn(nVars)
			size := uint32(4)
			if r.chance(0.3) {
				size = []uint32{1, 2}[r.intn(2)]
			}
			off := uint32(r.intn(int(4/size))) * size
			if r.chance(0.5) || loadCount == LitmusMaxLoads {
				// Store data is a nonzero constant identifying (thread, op):
				// fits a byte so sub-word stores remain distinguishing.
				val := uint32(1 + (k*8+i)*3%255)
				threads[k] = append(threads[k], litmusOp{
					store: true, v: v, off: off, size: size, val: val,
				})
				continue
			}
			threads[k] = append(threads[k], litmusOp{
				v: v, off: off, size: size,
				reg:    obsRegPool[loadCount],
				signed: r.chance(0.3),
			})
			loadCount++
		}
	}
	return buildLitmus(fmt.Sprintf("rand-%d", seed), vars, sameLine, threads)
}
