package progen_test

import (
	"fmt"
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/emu"
	"dmdp/internal/progen"
)

// checkLitmus assembles a litmus test and emulates every thread in
// isolation, verifying the structural invariants the multicore machine
// depends on: every thread entry exists, halts, and stays within a
// small dynamic budget.
func checkLitmus(t *testing.T, lt progen.LitmusTest) {
	t.Helper()
	p, err := asm.Assemble(lt.Source)
	if err != nil {
		t.Fatalf("%s: assemble: %v\n%s", lt.Name, err, lt.Source)
	}
	for _, sym := range lt.Shared {
		if _, ok := p.Symbols[sym]; !ok {
			t.Fatalf("%s: shared symbol %q missing", lt.Name, sym)
		}
	}
	for k := 0; k < lt.Threads; k++ {
		entry, ok := p.Symbols[fmt.Sprintf("thread%d", k)]
		if !ok {
			t.Fatalf("%s: thread%d label missing", lt.Name, k)
		}
		tp := *p
		tp.Entry = entry
		tr, err := emu.Run(&tp, 5000)
		if err != nil {
			t.Fatalf("%s thread%d: emulate: %v", lt.Name, k, err)
		}
		if !tr.HitHalt {
			t.Fatalf("%s thread%d: did not halt within budget", lt.Name, k)
		}
	}
	if len(lt.Obs) == 0 {
		t.Fatalf("%s: no observations", lt.Name)
	}
	for _, o := range lt.Obs {
		if o.Thread >= lt.Threads {
			t.Fatalf("%s: observation %s names thread %d of %d", lt.Name, o.Name, o.Thread, lt.Threads)
		}
		if o.Thread < 0 && o.Sym == "" {
			t.Fatalf("%s: memory observation without symbol", lt.Name)
		}
	}
}

func TestLitmusShapes(t *testing.T) {
	shapes := progen.LitmusShapes()
	if len(shapes) != 5 {
		t.Fatalf("expected 5 named shapes, got %d", len(shapes))
	}
	for _, lt := range shapes {
		checkLitmus(t, lt)
	}
	if _, ok := progen.LitmusShapeByName("SB"); !ok {
		t.Fatal("SB shape not resolvable by name")
	}
	if _, ok := progen.LitmusShapeByName("nope"); ok {
		t.Fatal("bogus shape resolved")
	}
}

func TestLitmusRandomGeneration(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		checkLitmus(t, progen.GenerateLitmus(seed))
	}
}

func TestLitmusDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 7, 99999} {
		a, b := progen.GenerateLitmus(seed), progen.GenerateLitmus(seed)
		if a.Source != b.Source || a.Name != b.Name {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if progen.GenerateLitmus(1).Source == progen.GenerateLitmus(2).Source {
		t.Fatal("different seeds produced identical tests")
	}
}
