package progen_test

import (
	"strings"
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/emu"
	"dmdp/internal/progen"
)

// Identical (seed, knobs) must produce byte-identical text — the seed
// and knob vector are the only reproduction coordinates a divergence
// report carries.
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range progen.Presets() {
		a := progen.Generate(42, p.Knobs)
		b := progen.Generate(42, p.Knobs)
		if a != b {
			t.Fatalf("preset %s: two generations with the same seed differ", p.Name)
		}
		if c := progen.Generate(43, p.Knobs); c == a {
			t.Fatalf("preset %s: seeds 42 and 43 produced identical programs", p.Name)
		}
	}
}

// Every generated program must assemble and run to its halt within a
// bounded budget: the body's only backward edge is the counted loop.
func TestGeneratedProgramsAssembleAndTerminate(t *testing.T) {
	for _, p := range progen.Presets() {
		for seed := uint64(1); seed <= 25; seed++ {
			src := progen.Generate(seed, p.Knobs)
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("preset %s seed %d: assemble: %v\n%s", p.Name, seed, err, src)
			}
			tr, err := emu.Run(prog, 200_000)
			if err != nil {
				t.Fatalf("preset %s seed %d: emulate: %v", p.Name, seed, err)
			}
			if !tr.HitHalt {
				t.Fatalf("preset %s seed %d: did not halt in 200k instructions", p.Name, seed)
			}
		}
	}
}

// The knobs must actually steer the traffic mix: presets exist to cover
// distinct store-load communication regimes, so verify the generated
// dynamic streams differ in the advertised directions.
func TestKnobsShapeTraffic(t *testing.T) {
	type shape struct {
		stores, loads, partial, dep int
	}
	measure := func(name string) shape {
		k, ok := progen.PresetByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		var s shape
		for seed := uint64(1); seed <= 5; seed++ {
			prog, err := asm.Assemble(progen.Generate(seed, k))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := emu.Run(prog, 200_000)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tr.Entries {
				e := &tr.Entries[i]
				switch {
				case e.IsStore():
					s.stores++
				case e.IsLoad():
					s.loads++
					if e.DepStore != 0 {
						s.dep++
					}
				}
				if (e.IsLoad() || e.IsStore()) && e.Size < 4 {
					s.partial++
				}
			}
		}
		return s
	}

	mixed := measure("mixed")
	if sh := measure("storeheavy"); sh.stores*mixed.loads <= sh.loads*mixed.stores {
		t.Errorf("storeheavy store:load ratio %d:%d not above mixed %d:%d",
			sh.stores, sh.loads, mixed.stores, mixed.loads)
	}
	if pa := measure("partial"); pa.partial*(mixed.stores+mixed.loads) <= mixed.partial*(pa.stores+pa.loads) {
		t.Errorf("partial preset sub-word fraction not above mixed")
	}
	al := measure("aliasheavy")
	sp := measure("sparse")
	if al.dep*sp.loads <= sp.dep*al.loads {
		t.Errorf("aliasheavy dependent-load fraction %d/%d not above sparse %d/%d",
			al.dep, al.loads, sp.dep, sp.loads)
	}
}

// The generator's header must carry the reproduction coordinates.
func TestHeaderCarriesSeedAndKnobs(t *testing.T) {
	k := progen.DefaultKnobs()
	src := progen.Generate(7, k)
	if !strings.Contains(src, "# progen seed=7") {
		t.Errorf("header missing seed line")
	}
	if !strings.Contains(src, k.String()) {
		t.Errorf("header missing knob vector %q", k)
	}
}
