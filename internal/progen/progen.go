// Package progen generates seeded, fully deterministic random programs
// for the simulator's MIPS-like ISA. The generator is the input side of
// the difftest lockstep harness (internal/difftest): identical (seed,
// knobs) pairs produce byte-identical assembly text, so every failure is
// reproducible from nothing but the seed and the knob vector printed in
// the program header.
//
// Programs are structured so they always terminate and always assemble:
//
//	main:   pointer/value register setup, stack frame, loop counter
//	loop:   a body of Knobs.Body generated slots (ALU ops, loads,
//	        stores, forward-only conditional branches, leaf calls),
//	        repeated Knobs.LoopIters times
//	        epilogue: counter decrement, backward branch, halt
//	leafN:  tiny ALU leaf functions reachable via jal
//	.data:  word arrays with seeded initial contents
//
// Branches inside the body only jump forward (over freshly generated
// slots), so the only backward edge is the counted loop — the program
// retires at most a bounded number of dynamic instructions. All memory
// offsets are aligned to the access size (the emulator treats unaligned
// access as a hard error) and loads can be steered onto recently stored
// addresses to exercise store-load forwarding, cloaking and predication
// at a controlled collision rate and aliasing distance.
package progen

import (
	"fmt"
	"strings"
)

// Knobs are the tunable distribution parameters of the generator. The
// zero value is not useful; start from a preset (Presets, PresetByName)
// or DefaultKnobs and adjust.
type Knobs struct {
	Body      int // static instruction slots per loop iteration
	LoopIters int // trip count of the outer counted loop

	MemFrac       float64 // fraction of body slots that access memory
	StoreFrac     float64 // fraction of memory slots that are stores
	CollisionProb float64 // P(a load reuses a recently stored address)
	AliasDist     int     // how many recent stores a colliding load may target
	BranchFrac    float64 // fraction of body slots that open a forward branch
	PartialFrac   float64 // fraction of memory accesses that are sub-word
	StackFrac     float64 // fraction of memory traffic through $sp
	CallFrac      float64 // fraction of body slots that call a leaf function
}

// String renders the knob vector in a fixed, header-friendly format.
func (k Knobs) String() string {
	return fmt.Sprintf("body=%d iters=%d mem=%.2f store=%.2f coll=%.2f alias=%d branch=%.2f partial=%.2f stack=%.2f call=%.2f",
		k.Body, k.LoopIters, k.MemFrac, k.StoreFrac, k.CollisionProb,
		k.AliasDist, k.BranchFrac, k.PartialFrac, k.StackFrac, k.CallFrac)
}

// DefaultKnobs is the balanced "mixed" preset.
func DefaultKnobs() Knobs { return presets[0].Knobs }

// Preset is a named knob vector.
type Preset struct {
	Name  string
	Knobs Knobs
}

var presets = []Preset{
	{"mixed", Knobs{Body: 120, LoopIters: 8, MemFrac: 0.45, StoreFrac: 0.40, CollisionProb: 0.50, AliasDist: 8, BranchFrac: 0.12, PartialFrac: 0.25, StackFrac: 0.30, CallFrac: 0.04}},
	{"storeheavy", Knobs{Body: 120, LoopIters: 8, MemFrac: 0.60, StoreFrac: 0.70, CollisionProb: 0.40, AliasDist: 12, BranchFrac: 0.08, PartialFrac: 0.20, StackFrac: 0.25, CallFrac: 0.02}},
	{"aliasheavy", Knobs{Body: 110, LoopIters: 9, MemFrac: 0.55, StoreFrac: 0.45, CollisionProb: 0.90, AliasDist: 4, BranchFrac: 0.08, PartialFrac: 0.15, StackFrac: 0.20, CallFrac: 0.02}},
	{"branchy", Knobs{Body: 130, LoopIters: 7, MemFrac: 0.35, StoreFrac: 0.40, CollisionProb: 0.45, AliasDist: 8, BranchFrac: 0.30, PartialFrac: 0.20, StackFrac: 0.30, CallFrac: 0.06}},
	{"partial", Knobs{Body: 110, LoopIters: 9, MemFrac: 0.55, StoreFrac: 0.50, CollisionProb: 0.60, AliasDist: 6, BranchFrac: 0.10, PartialFrac: 0.80, StackFrac: 0.25, CallFrac: 0.02}},
	{"stack", Knobs{Body: 110, LoopIters: 9, MemFrac: 0.50, StoreFrac: 0.45, CollisionProb: 0.55, AliasDist: 8, BranchFrac: 0.10, PartialFrac: 0.30, StackFrac: 0.90, CallFrac: 0.04}},
	{"sparse", Knobs{Body: 140, LoopIters: 7, MemFrac: 0.15, StoreFrac: 0.35, CollisionProb: 0.30, AliasDist: 8, BranchFrac: 0.15, PartialFrac: 0.20, StackFrac: 0.30, CallFrac: 0.05}},
}

// Presets returns the built-in knob vectors (copy; safe to mutate).
func Presets() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	return out
}

// PresetByName resolves a preset name.
func PresetByName(name string) (Knobs, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p.Knobs, true
		}
	}
	return Knobs{}, false
}

// PresetNames returns the preset names in declaration order.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// rng is a splitmix64 generator: tiny, seedable, stable across Go
// versions (math/rand's stream is not part of its compatibility
// promise, and program text must be byte-identical forever).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) chance(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}

// Register pools. The loop counter ($s6), the heap pointers ($s0-$s3),
// the stack pointer and $ra are never written by generated body slots;
// everything else in valueRegs is fair game.
var (
	valueRegs = []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$t8", "$t9", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$s4", "$s5"}
	ptrRegs   = []string{"$s0", "$s1", "$s2", "$s3"}
)

const (
	arrCount   = 4   // heap arrays, one per pointer register
	arrWords   = 64  // words per array
	frameBytes = 256 // stack frame carved below $sp
	leafCount  = 3   // tiny callable leaf functions
)

// storeSite remembers a recent store's target so a later load can be
// aimed at it (full or partial overlap, always aligned).
type storeSite struct {
	base string // base register
	off  int
	size int
}

type gen struct {
	r      rng
	k      Knobs
	b      strings.Builder
	label  int
	stores []storeSite // ring of recent stores, oldest first
}

// Generate produces the assembly text for (seed, knobs). The output is a
// pure function of its arguments: byte-identical across runs, hosts and
// worker counts.
func Generate(seed uint64, k Knobs) string {
	if k.Body <= 0 {
		k.Body = 1
	}
	if k.LoopIters <= 0 {
		k.LoopIters = 1
	}
	if k.AliasDist <= 0 {
		k.AliasDist = 1
	}
	g := &gen{r: rng{s: seed}, k: k}
	g.emit(seed)
	return g.b.String()
}

func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) valReg() string { return valueRegs[g.r.intn(len(valueRegs))] }

func (g *gen) emit(seed uint64) {
	g.line("# progen seed=%d", seed)
	g.line("# knobs: %s", g.k)
	g.line("\t.text")
	g.line("main:")
	for i, p := range ptrRegs {
		g.line("\tla %s, arr%d", p, i)
	}
	g.line("\taddi $sp, $sp, -%d", frameBytes)
	// Seed every value register (and fill the stack frame so partial
	// loads from never-stored frame slots read deterministic bytes —
	// memory is zero-filled anyway, but a non-trivial initial image
	// exercises more forwarding cases).
	for _, v := range valueRegs {
		g.line("\tli %s, %d", v, int32(g.r.next()&0x7fffffff))
	}
	for off := 0; off < frameBytes; off += 4 {
		if g.r.chance(0.25) {
			g.line("\tsw %s, %d($sp)", g.valReg(), off)
		}
	}
	g.line("\tli $s6, %d # loop-counter", g.k.LoopIters)
	g.line("loop:")
	g.line("# body-begin")
	for emitted := 0; emitted < g.k.Body; {
		emitted += g.slot(true)
	}
	g.line("# body-end")
	g.line("\taddi $s6, $s6, -1")
	g.line("\tbnez $s6, loop")
	g.line("\taddi $sp, $sp, %d", frameBytes)
	g.line("\thalt")
	for i := 0; i < leafCount; i++ {
		g.line("leaf%d:", i)
		for n := 2 + g.r.intn(3); n > 0; n-- {
			g.alu()
		}
		g.line("\tjr $ra")
	}
	g.line("")
	g.line("\t.data")
	for i := 0; i < arrCount; i++ {
		g.line("\t.align 2")
		g.line("arr%d:", i)
		for w := 0; w < arrWords; w += 8 {
			vals := make([]string, 8)
			for j := range vals {
				vals[j] = fmt.Sprintf("0x%08x", uint32(g.r.next()))
			}
			g.line("\t.word %s", strings.Join(vals, ", "))
		}
	}
}

// slot emits one body slot and returns how many slots it consumed (a
// forward branch consumes its guarded block too). Only top-level slots
// may open branches or calls — the guarded block stays branch-free so
// labels never nest or cross.
func (g *gen) slot(top bool) int {
	switch {
	case top && g.r.chance(g.k.BranchFrac):
		return g.branch()
	case top && g.r.chance(g.k.CallFrac):
		g.line("\tjal leaf%d", g.r.intn(leafCount))
		return 1
	case g.r.chance(g.k.MemFrac):
		g.memAccess()
		return 1
	default:
		g.alu()
		return 1
	}
}

// branch emits a forward conditional branch over 1-3 generated slots.
func (g *gen) branch() int {
	l := g.label
	g.label++
	ops2 := []string{"beq", "bne"}
	ops1 := []string{"blez", "bgtz", "bltz", "bgez"}
	if g.r.chance(0.5) {
		g.line("\t%s %s, %s, L%d", ops2[g.r.intn(2)], g.valReg(), g.valReg(), l)
	} else {
		g.line("\t%s %s, L%d", ops1[g.r.intn(4)], g.valReg(), l)
	}
	n := 1 + g.r.intn(3)
	for i := 0; i < n; i++ {
		g.slot(false)
	}
	g.line("L%d:", l)
	return n + 1
}

// memAccess emits one load or store with knob-controlled base region,
// access size and (for loads) collision steering.
func (g *gen) memAccess() {
	if g.r.chance(g.k.StoreFrac) {
		base, limit := g.region()
		size := g.accessSize()
		off := g.alignedOff(limit, size)
		g.line("\t%s %s, %d(%s)", map[int]string{1: "sb", 2: "sh", 4: "sw"}[size], g.valReg(), off, base)
		g.stores = append(g.stores, storeSite{base, off, size})
		if len(g.stores) > 64 {
			g.stores = g.stores[1:]
		}
		return
	}

	var base string
	var off, size int
	if len(g.stores) > 0 && g.r.chance(g.k.CollisionProb) {
		// Aim at one of the last AliasDist stores: same word, size no
		// larger than the store's, aligned sub-offset — full overlaps,
		// partial overlaps and narrow re-reads all occur.
		win := g.k.AliasDist
		if win > len(g.stores) {
			win = len(g.stores)
		}
		s := g.stores[len(g.stores)-1-g.r.intn(win)]
		size = g.accessSize()
		for size > s.size {
			size >>= 1
		}
		base = s.base
		off = s.off + g.r.intn(s.size/size)*size
	} else {
		var limit int
		base, limit = g.region()
		size = g.accessSize()
		off = g.alignedOff(limit, size)
	}
	op := map[int]string{4: "lw"}[size]
	if op == "" {
		signed := map[int]string{1: "lb", 2: "lh"}[size]
		if g.r.chance(0.5) {
			op = signed + "u"
		} else {
			op = signed
		}
	}
	g.line("\t%s %s, %d(%s)", op, g.valReg(), off, base)
}

// region picks stack vs heap traffic and returns the base register and
// the byte extent addressable from it.
func (g *gen) region() (base string, limit int) {
	if g.r.chance(g.k.StackFrac) {
		return "$sp", frameBytes
	}
	return ptrRegs[g.r.intn(len(ptrRegs))], arrWords * 4
}

func (g *gen) accessSize() int {
	if g.r.chance(g.k.PartialFrac) {
		if g.r.chance(0.5) {
			return 1
		}
		return 2
	}
	return 4
}

func (g *gen) alignedOff(limit, size int) int {
	return g.r.intn(limit/size) * size
}

// alu emits one computational instruction.
func (g *gen) alu() {
	switch g.r.intn(10) {
	case 0, 1, 2: // R-type arithmetic/logic
		ops := []string{"add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu", "mul", "sllv", "srlv", "srav"}
		g.line("\t%s %s, %s, %s", ops[g.r.intn(len(ops))], g.valReg(), g.valReg(), g.valReg())
	case 3, 4, 5: // I-type
		ops := []string{"addi", "addiu", "andi", "ori", "xori", "slti", "sltiu"}
		g.line("\t%s %s, %s, %d", ops[g.r.intn(len(ops))], g.valReg(), g.valReg(), g.r.intn(0x10000)-0x8000)
	case 6, 7: // immediate shifts
		ops := []string{"sll", "srl", "sra"}
		g.line("\t%s %s, %s, %d", ops[g.r.intn(3)], g.valReg(), g.valReg(), g.r.intn(32))
	case 8:
		g.line("\tlui %s, 0x%x", g.valReg(), g.r.intn(0x10000))
	default: // long-latency ops, occasionally
		ops := []string{"mulh", "div", "rem", "fadd", "fmul", "fdiv"}
		g.line("\t%s %s, %s, %s", ops[g.r.intn(len(ops))], g.valReg(), g.valReg(), g.valReg())
	}
}
