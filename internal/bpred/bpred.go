// Package bpred implements the front-end branch predictor: a gshare
// direction predictor, a branch target buffer for indirect targets and a
// return-address stack. It also exports the global history register the
// path-sensitive Store Distance Predictor indexes with (paper §IV-A d).
package bpred

import "dmdp/internal/isa"

// Config sets predictor geometry.
type Config struct {
	GshareBits  int // log2 of the 2-bit counter table
	BTBEntries  int // direct-mapped BTB size (power of two)
	RASEntries  int
	HistoryBits int // global history length (also feeds the path-sensitive SDP)
	// Tournament adds a bimodal table and a per-PC chooser that selects
	// between the bimodal and gshare components.
	Tournament bool
}

// DefaultConfig is a 64K-entry gshare with a 4K-entry BTB and a 32-deep RAS.
func DefaultConfig() Config {
	return Config{GshareBits: 16, BTBEntries: 4096, RASEntries: 32, HistoryBits: 12}
}

type btbEntry struct {
	tag    uint32
	target uint32
	valid  bool
}

// Predictor is the composite front-end predictor.
type Predictor struct {
	cfg      Config
	counters []uint8 // gshare 2-bit counters
	bimodal  []uint8 // tournament: PC-indexed 2-bit counters
	chooser  []uint8 // tournament: 0-1 favour bimodal, 2-3 favour gshare
	btb      []btbEntry
	ras      []uint32
	rasTop   int
	history  uint32

	// Stats.
	Lookups, Mispredicts int64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:      cfg,
		counters: make([]uint8, 1<<cfg.GshareBits),
		btb:      make([]btbEntry, cfg.BTBEntries),
		ras:      make([]uint32, cfg.RASEntries),
	}
	if cfg.Tournament {
		p.bimodal = make([]uint8, 1<<cfg.GshareBits)
		p.chooser = make([]uint8, 1<<cfg.GshareBits)
		for i := range p.chooser {
			p.chooser[i] = 2 // start favouring gshare
		}
	}
	return p
}

func (p *Predictor) gshareIndex(pc uint32) uint32 {
	return (pc>>2 ^ p.history) & uint32(len(p.counters)-1)
}

func (p *Predictor) btbIndex(pc uint32) uint32 {
	return pc >> 2 & uint32(len(p.btb)-1)
}

// History returns the low HistoryBits of the global branch history
// register (most recent outcome in bit 0).
func (p *Predictor) History() uint32 {
	return p.history & (1<<p.cfg.HistoryBits - 1)
}

// PredictAndTrain predicts the control instruction at pc, immediately
// trains with the actual outcome and returns whether the prediction
// (direction and target) was correct. The trace-driven front end fetches
// down the correct path, so prediction and resolution are combined; the
// core charges the misprediction penalty when this returns false.
func (p *Predictor) PredictAndTrain(pc uint32, op isa.Op, taken bool, target uint32) bool {
	p.Lookups++
	correct := true
	switch {
	case op.IsBranch():
		idx := p.gshareIndex(pc)
		gshareTaken := p.counters[idx] >= 2
		predTaken := gshareTaken
		var bidx uint32
		var bimodalTaken bool
		if p.cfg.Tournament {
			bidx = pc >> 2 & uint32(len(p.bimodal)-1)
			bimodalTaken = p.bimodal[bidx] >= 2
			if p.chooser[bidx] < 2 {
				predTaken = bimodalTaken
			}
		}
		if predTaken != taken {
			correct = false
		} else if taken {
			// Direction right; a taken branch also needs its target,
			// which the BTB provides for PC-relative branches.
			b := &p.btb[p.btbIndex(pc)]
			if !b.valid || b.tag != pc || b.target != target {
				correct = false
			}
		}
		// Train counters, chooser, BTB, history.
		if taken && p.counters[idx] < 3 {
			p.counters[idx]++
		} else if !taken && p.counters[idx] > 0 {
			p.counters[idx]--
		}
		if p.cfg.Tournament {
			if taken && p.bimodal[bidx] < 3 {
				p.bimodal[bidx]++
			} else if !taken && p.bimodal[bidx] > 0 {
				p.bimodal[bidx]--
			}
			// The chooser moves toward whichever component was right
			// when they disagree.
			if gshareTaken != bimodalTaken {
				if gshareTaken == taken && p.chooser[bidx] < 3 {
					p.chooser[bidx]++
				} else if bimodalTaken == taken && p.chooser[bidx] > 0 {
					p.chooser[bidx]--
				}
			}
		}
		if taken {
			p.btb[p.btbIndex(pc)] = btbEntry{tag: pc, target: target, valid: true}
		}
		p.history = p.history<<1 | b2u(taken)
	case op == isa.OpJ:
		// Direct target, known at decode.
	case op == isa.OpJAL:
		p.push(pc + 4)
	case op == isa.OpJALR:
		// Indirect call: target via BTB, push the return address.
		b := &p.btb[p.btbIndex(pc)]
		if !b.valid || b.tag != pc || b.target != target {
			correct = false
		}
		p.btb[p.btbIndex(pc)] = btbEntry{tag: pc, target: target, valid: true}
		p.push(pc + 4)
	case op == isa.OpJR:
		// Return: predict via RAS.
		if p.pop() != target {
			correct = false
		}
	}
	if !correct {
		p.Mispredicts++
	}
	return correct
}

func (p *Predictor) push(addr uint32) {
	p.ras[p.rasTop%len(p.ras)] = addr
	p.rasTop++
}

func (p *Predictor) pop() uint32 {
	if p.rasTop == 0 {
		return 0
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)]
}

// MispredictRate returns Mispredicts/Lookups.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
