package bpred

import (
	"encoding/binary"
	"fmt"
)

// Functional-warming support. Unlike the LRU structures, the predictor's
// state has no timestamps: counters, tables, history and the RAS are
// serialized and restored exactly, so a round trip is the identity.

// WarmStateLen returns the encoded warm-state size for this predictor.
func (p *Predictor) WarmStateLen() int {
	n := 4 + 8 + len(p.counters) + len(p.btb)*9 + 4*len(p.ras)
	if p.cfg.Tournament {
		n += len(p.bimodal) + len(p.chooser)
	}
	return n
}

// AppendWarmState appends the predictor's complete tag state: history,
// rasTop, the gshare counters, the tournament tables when configured,
// the BTB and the RAS.
func (p *Predictor) AppendWarmState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, p.history)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(p.rasTop)))
	buf = append(buf, p.counters...)
	if p.cfg.Tournament {
		buf = append(buf, p.bimodal...)
		buf = append(buf, p.chooser...)
	}
	for i := range p.btb {
		b := &p.btb[i]
		buf = binary.LittleEndian.AppendUint32(buf, b.tag)
		buf = binary.LittleEndian.AppendUint32(buf, b.target)
		v := byte(0)
		if b.valid {
			v = 1
		}
		buf = append(buf, v)
	}
	for _, r := range p.ras {
		buf = binary.LittleEndian.AppendUint32(buf, r)
	}
	return buf
}

// LoadWarmState replaces the predictor's state with the encoded state
// and returns the bytes consumed. The geometry (including the
// tournament flag) must match the predictor the state was captured
// from. Counters (Lookups/Mispredicts) are untouched.
func (p *Predictor) LoadWarmState(buf []byte) (int, error) {
	need := p.WarmStateLen()
	if len(buf) < need {
		return 0, fmt.Errorf("bpred: warm state truncated (%d of %d bytes)", len(buf), need)
	}
	p.history = binary.LittleEndian.Uint32(buf)
	rasTop := int64(binary.LittleEndian.Uint64(buf[4:]))
	if rasTop < 0 {
		return 0, fmt.Errorf("bpred: warm state has negative RAS top")
	}
	p.rasTop = int(rasTop)
	off := 12
	// Out-of-range values are rejected rather than normalized so that
	// every accepted encoding is canonical (load-then-serialize is the
	// identity) and a re-signed hostile payload cannot park a 2-bit
	// counter outside its saturating range.
	load2bit := func(dst []byte) error {
		for i := range dst {
			if buf[off+i] > 3 {
				return fmt.Errorf("bpred: warm state has counter value %d", buf[off+i])
			}
			dst[i] = buf[off+i]
		}
		off += len(dst)
		return nil
	}
	if err := load2bit(p.counters); err != nil {
		return 0, err
	}
	if p.cfg.Tournament {
		if err := load2bit(p.bimodal); err != nil {
			return 0, err
		}
		if err := load2bit(p.chooser); err != nil {
			return 0, err
		}
	}
	for i := range p.btb {
		if v := buf[off+8]; v > 1 {
			return 0, fmt.Errorf("bpred: warm state has BTB valid byte %d", v)
		}
		p.btb[i] = btbEntry{
			tag:    binary.LittleEndian.Uint32(buf[off:]),
			target: binary.LittleEndian.Uint32(buf[off+4:]),
			valid:  buf[off+8] == 1,
		}
		off += 9
	}
	for i := range p.ras {
		p.ras[i] = binary.LittleEndian.Uint32(buf[off:])
		off += 4
	}
	return off, nil
}

// CopyWarmFrom transplants src's state into p (same geometry assumed).
// Counters are untouched.
func (p *Predictor) CopyWarmFrom(src *Predictor) {
	p.history = src.history
	p.rasTop = src.rasTop
	copy(p.counters, src.counters)
	copy(p.bimodal, src.bimodal)
	copy(p.chooser, src.chooser)
	copy(p.btb, src.btb)
	copy(p.ras, src.ras)
}
