package bpred

import (
	"testing"

	"dmdp/internal/isa"
)

func small() Config {
	return Config{GshareBits: 10, BTBEntries: 64, RASEntries: 8, HistoryBits: 8}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(small())
	pc, target := uint32(0x1000), uint32(0x2000)
	var lastFour int
	for i := 0; i < 20; i++ {
		if p.PredictAndTrain(pc, isa.OpBEQ, true, target) && i >= 16 {
			lastFour++
		}
	}
	if lastFour != 4 {
		t.Fatalf("predictor failed to learn always-taken: %d/4 correct at end", lastFour)
	}
}

func TestLearnsNotTaken(t *testing.T) {
	p := New(small())
	pc := uint32(0x3000)
	// Counters start at 0 (strong not-taken), so not-taken branches are
	// predicted correctly immediately (direction only; no target needed).
	if !p.PredictAndTrain(pc, isa.OpBNE, false, 0) {
		t.Fatal("not-taken should predict correctly from cold state")
	}
}

func TestBTBColdMissOnTakenBranch(t *testing.T) {
	p := New(small())
	pc, target := uint32(0x1000), uint32(0x2000)
	// Warm the direction counters (the global history shifts the gshare
	// index each call, so it takes several iterations for the history to
	// saturate and the index to stabilize).
	for i := 0; i < 16; i++ {
		p.PredictAndTrain(pc, isa.OpBEQ, true, target)
	}
	// Now direction predicts taken and BTB has the target.
	if !p.PredictAndTrain(pc, isa.OpBEQ, true, target) {
		t.Fatal("warm taken branch should predict correctly")
	}
	// A different target (e.g. aliased BTB entry) must mispredict once.
	if p.PredictAndTrain(pc, isa.OpBEQ, true, target+8) {
		t.Fatal("changed target must mispredict")
	}
}

func TestDirectJumpsAlwaysCorrect(t *testing.T) {
	p := New(small())
	if !p.PredictAndTrain(0x100, isa.OpJ, true, 0x4000) {
		t.Fatal("j must always be correct")
	}
	if !p.PredictAndTrain(0x104, isa.OpJAL, true, 0x4000) {
		t.Fatal("jal must always be correct")
	}
}

func TestRASCallReturn(t *testing.T) {
	p := New(small())
	p.PredictAndTrain(0x100, isa.OpJAL, true, 0x4000)
	if !p.PredictAndTrain(0x4010, isa.OpJR, true, 0x104) {
		t.Fatal("return should be predicted by RAS")
	}
	// Unbalanced return mispredicts.
	if p.PredictAndTrain(0x4010, isa.OpJR, true, 0x104) {
		t.Fatal("empty RAS should mispredict")
	}
}

func TestRASNested(t *testing.T) {
	p := New(small())
	p.PredictAndTrain(0x100, isa.OpJAL, true, 0x4000)  // ret 0x104
	p.PredictAndTrain(0x4000, isa.OpJAL, true, 0x5000) // ret 0x4004
	if !p.PredictAndTrain(0x5000, isa.OpJR, true, 0x4004) {
		t.Fatal("inner return wrong")
	}
	if !p.PredictAndTrain(0x4004, isa.OpJR, true, 0x104) {
		t.Fatal("outer return wrong")
	}
}

func TestJALRUsesBTBAndPushes(t *testing.T) {
	p := New(small())
	// Cold: BTB miss.
	if p.PredictAndTrain(0x200, isa.OpJALR, true, 0x6000) {
		t.Fatal("cold jalr must mispredict")
	}
	// Warm: correct, and the return is predicted too.
	if !p.PredictAndTrain(0x200, isa.OpJALR, true, 0x6000) {
		t.Fatal("warm jalr should be correct")
	}
	if !p.PredictAndTrain(0x6000, isa.OpJR, true, 0x204) {
		t.Fatal("jalr return should be on the RAS")
	}
}

func TestHistoryTracksOutcomes(t *testing.T) {
	p := New(small())
	p.PredictAndTrain(0x10, isa.OpBEQ, true, 0x40)
	p.PredictAndTrain(0x14, isa.OpBEQ, false, 0)
	p.PredictAndTrain(0x18, isa.OpBEQ, true, 0x40)
	if got := p.History() & 7; got != 0b101 {
		t.Fatalf("history = %03b, want 101", got)
	}
}

func TestHistoryWidthMasked(t *testing.T) {
	p := New(Config{GshareBits: 10, BTBEntries: 64, RASEntries: 8, HistoryBits: 4})
	for i := 0; i < 100; i++ {
		p.PredictAndTrain(0x10, isa.OpBEQ, true, 0x40)
	}
	if p.History() > 0xf {
		t.Fatalf("history exceeds 4 bits: %x", p.History())
	}
}

func TestMispredictRate(t *testing.T) {
	p := New(small())
	p.PredictAndTrain(0x10, isa.OpBEQ, true, 0x40) // cold: wrong
	p.PredictAndTrain(0x10, isa.OpBEQ, false, 0)   // counter now 1 -> predicts NT: right
	if p.Lookups != 2 || p.Mispredicts != 1 {
		t.Fatalf("lookups %d mispredicts %d", p.Lookups, p.Mispredicts)
	}
	if p.MispredictRate() != 0.5 {
		t.Fatalf("rate %f", p.MispredictRate())
	}
}

// A loop-closing branch pattern (N-1 taken, 1 not-taken) should reach high
// accuracy with gshare once history disambiguates the iterations.
func TestLoopPattern(t *testing.T) {
	p := New(small())
	pc, target := uint32(0x100), uint32(0x80)
	correct, total := 0, 0
	for rep := 0; rep < 200; rep++ {
		for i := 0; i < 4; i++ {
			taken := i != 3
			tgt := uint32(0)
			if taken {
				tgt = target
			}
			ok := p.PredictAndTrain(pc, isa.OpBNE, taken, tgt)
			if rep >= 100 {
				total++
				if ok {
					correct++
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("loop accuracy %.2f too low", acc)
	}
}

func TestTournamentBeatsGshareOnBiasedBranches(t *testing.T) {
	// Many independent, strongly biased branches: gshare suffers from
	// history interference on a small table; bimodal nails them; the
	// chooser should learn to use bimodal.
	cfg := Config{GshareBits: 6, BTBEntries: 64, RASEntries: 8, HistoryBits: 8}
	plain := New(cfg)
	cfg.Tournament = true
	tourn := New(cfg)
	run := func(p *Predictor) int64 {
		for i := 0; i < 6000; i++ {
			pc := uint32(0x1000 + 4*(i%37))
			taken := pc%3 == 0 // fixed per-PC bias
			tgt := uint32(0)
			if taken {
				tgt = pc + 64
			}
			p.PredictAndTrain(pc, isa.OpBNE, taken, tgt)
		}
		return p.Mispredicts
	}
	mp, mt := run(plain), run(tourn)
	if mt >= mp {
		t.Fatalf("tournament mispredicts %d, plain gshare %d — chooser not helping", mt, mp)
	}
}

func TestTournamentStillLearnsCorrelated(t *testing.T) {
	cfg := Config{GshareBits: 12, BTBEntries: 64, RASEntries: 8, HistoryBits: 8, Tournament: true}
	p := New(cfg)
	// Alternating pattern is history-predictable (gshare side).
	pc, tgt := uint32(0x2000), uint32(0x2040)
	correct := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		var tg uint32
		if taken {
			tg = tgt
		}
		if p.PredictAndTrain(pc, isa.OpBEQ, taken, tg) && i > 1000 {
			correct++
		}
	}
	if correct < 900 {
		t.Fatalf("tournament failed on alternating pattern: %d/1000", correct)
	}
}
