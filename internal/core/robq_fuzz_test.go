package core

import (
	"testing"
)

// FuzzRobQ drives the ROB ring buffer against a reference slice: each
// input byte selects push / popFront / clear, and after every operation
// the ring's length, emptiness, fullness, front and full contents (via
// at) must match the model. This is the wraparound property test — head
// chases around the ring across clears and refills.
func FuzzRobQ(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 0, 2, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 5 // small ring so wraparound happens constantly
		q := newRobQ(capacity)
		var model []*inst
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				if q.full() {
					continue
				}
				in := &inst{idx: next}
				next++
				q.push(in)
				model = append(model, in)
			case 1: // popFront
				if q.empty() {
					continue
				}
				got := q.popFront()
				if got != model[0] {
					t.Fatalf("popFront returned idx %d, want %d", got.idx, model[0].idx)
				}
				model = model[1:]
			case 2: // clear (pipeline flush)
				q.clear()
				model = model[:0]
			}
			if q.len() != len(model) {
				t.Fatalf("len %d, model %d", q.len(), len(model))
			}
			if q.empty() != (len(model) == 0) || q.full() != (len(model) == capacity) {
				t.Fatalf("empty/full disagree with model size %d", len(model))
			}
			if len(model) > 0 && q.front() != model[0] {
				t.Fatalf("front idx %d, want %d", q.front().idx, model[0].idx)
			}
			for i, want := range model {
				if q.at(i) != want {
					t.Fatalf("at(%d) idx %d, want %d", i, q.at(i).idx, want.idx)
				}
			}
		}
		// Drain what's left: order must survive.
		for len(model) > 0 {
			if got := q.popFront(); got != model[0] {
				t.Fatalf("drain returned idx %d, want %d", got.idx, model[0].idx)
			}
			model = model[1:]
		}
		if !q.empty() {
			t.Fatal("queue not empty after drain")
		}
	})
}
