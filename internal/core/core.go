package core

import (
	"context"
	"fmt"
	"time"

	"dmdp/internal/bpred"
	"dmdp/internal/cache"
	"dmdp/internal/config"
	"dmdp/internal/faults"
	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/memdep"
	"dmdp/internal/tlb"
	"dmdp/internal/trace"
)

// fqCap is the fetch queue capacity. Power of two: the queue is a ring.
const fqCap = 64

// fetchEntry is a fetched instruction waiting to rename.
type fetchEntry struct {
	idx      int
	readyAt  int64
	blocking bool   // mispredicted control op: fetch stalls behind it
	hist     uint32 // global branch history as of this instruction's fetch
}

// robQ is the reorder buffer (FIFO ring of in-flight instructions).
type robQ struct {
	buf  []*inst
	head int
	size int
}

func newRobQ(capacity int) *robQ { return &robQ{buf: make([]*inst, capacity)} }

func (q *robQ) full() bool   { return q.size == len(q.buf) }
func (q *robQ) empty() bool  { return q.size == 0 }
func (q *robQ) len() int     { return q.size }
func (q *robQ) front() *inst { return q.buf[q.head] }

func (q *robQ) push(in *inst) {
	q.buf[(q.head+q.size)%len(q.buf)] = in
	q.size++
}

func (q *robQ) popFront() *inst {
	in := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return in
}

// at returns the i-th oldest instruction.
func (q *robQ) at(i int) *inst { return q.buf[(q.head+i)%len(q.buf)] }

func (q *robQ) clear() {
	for i := 0; i < q.size; i++ {
		q.buf[(q.head+i)%len(q.buf)] = nil
	}
	q.head, q.size = 0, 0
}

// Core is one timing simulation of a trace under a configuration.
type Core struct {
	cfg config.Config
	tr  *trace.Trace

	// Substrates.
	hier  *cache.Hierarchy
	tlb   *tlb.TLB
	bp    *bpred.Predictor
	tssbf *memdep.TSSBF
	sdp   memdep.DistancePredictor
	sets  *memdep.StoreSets
	ssn   memdep.SSN

	// Committed memory state (exactly the retired stores).
	image *mem.Image

	// Pipeline state.
	now     int64
	rf      *regFile
	rob     *robQ
	iqCount int
	ready   readyHeap
	events  eventHeap
	delayed []*uop // gateSSNCommit uops parked until SSN.Commit advances

	fq            []fetchEntry // ring of fqCap entries
	fqHead, fqLen int
	fetchIdx      int
	fetchStalled  bool  // mispredicted control op in flight
	fetchBlockIdx int   // trace idx of the blocking op
	blockInst     *inst // resolved once renamed
	fetchResumeAt int64

	sb  *storeBuffer
	srb *storeRegBuffer

	// instBySeq holds in-flight stores keyed by seq&instSeqMask (store
	// sets). The ring's capacity exceeds the ROB size and in-flight seqs
	// are consecutive, so two live instructions never share a slot;
	// lookups validate the resident's seq (retired entries go stale in
	// place instead of being deleted).
	instBySeq   []*inst
	instSeqMask int64

	seqCounter     int64
	uopSeq         int64
	retired        int64
	lastRetireAt   int64
	divBusyUntil   int64
	fpDivBusyUntil int64
	done           bool

	// Idle-cycle fast-forward: progress records whether the current
	// cycle changed any simulation state; a cycle that provably did
	// nothing lets the core jump straight to the next deadline (see
	// fastForward). ffEnabled gates the whole mechanism — off when the
	// config disables it and under fault injection (the injector draws
	// from its PRNG every cycle, so skipping cycles would change the
	// fault schedule).
	progress  bool
	ffEnabled bool

	// Hardening layer: the first structured failure (oracle divergence,
	// watchdog expiry, desync, refcount underflow), the diagnostic ring
	// of recently retired instructions, and the fault injector (nil when
	// injection is disabled).
	simErr    *SimError
	retireLog [retireLogCap]RetireRecord
	inj       *faults.Injector

	// Commit-stream observer (difftest lockstep; nil when unattached).
	commitHook CommitHook

	// drainHook observes each store-buffer entry as its bytes become
	// globally visible (finishCommit). The multicore Machine uses it as
	// the TSO store-visibility point; nil when unattached.
	drainHook func(e *sbEntry)

	// trackInval: record recently written lines for invalidation
	// injection (periodic or fault-injected).
	trackInval bool

	// Remote-invalidation injection state (paper §IV-F).
	recentLines []uint32
	invalPick   uint32

	// Warmup bookkeeping: the cycle and cache counters at the end of
	// the measurement warmup.
	cycleBase        int64
	warmL1A, warmL1M int64

	// Fire-and-Forget state: load sequence numbers and the pending
	// store->load forwards keyed by target LSN.
	sft        *memdep.SFT
	lsnRename  int64
	lsnRetire  int64
	pendingFwd *fwdRing

	// Free lists and per-cycle scratch: the steady-state cycle loop must
	// not allocate (see the allocation-regression guard in core tests).
	// Retired instructions and their uops are recycled here; squashed ones
	// are abandoned to the GC (flushes are rare, and recycling them would
	// require proving no stale reference survives the squash).
	instPool  []*inst
	uopPool   []*uop
	stash     []*uop    // issue(): uops popped but not issuable this cycle
	srcRegBuf []isa.Reg // srcPhys(): logical source scratch
	srcBuf    []int     // srcPhys(): physical source scratch
	sbRefBuf  []int     // flush(): surviving store-buffer register refs

	// onDepMispredict, when set, observes each dependence exception
	// (diagnostics/tests).
	onDepMispredict func(*inst)

	// progressFn, when set, receives (retired, cycle) every
	// cancelPollInterval loop iterations (streaming stats for dmdpd).
	progressFn func(retired, cycles int64)

	// tracer, when attached, records per-instruction stage timings.
	tracer *PipeTracer

	stats Stats
}

// New builds a core over the analyzed trace.
func New(cfg config.Config, tr *trace.Trace) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.InitMem == nil {
		tr.InitMem = mem.NewImage()
	}
	c := &Core{
		cfg:       cfg,
		tr:        tr,
		hier:      cache.NewHierarchy(cfg.Hierarchy),
		tlb:       tlb.New(cfg.TLB),
		bp:        bpred.New(cfg.BPred),
		tssbf:     memdep.NewTSSBF(cfg.TSSBF),
		sdp:       newDistancePredictor(cfg),
		sets:      memdep.NewStoreSets(cfg.SSITEntries, cfg.StoreSetCount),
		image:     tr.InitMem.Clone(),
		rf:        newRegFile(cfg.PhysRegs),
		rob:       newRobQ(cfg.ROBSize),
		sb:        newStoreBuffer(cfg.StoreBufferSize, cfg.Consistency == config.RMO),
		srb:       newStoreRegBuffer(cfg.ROBSize + cfg.StoreBufferSize + 2),
		fq:        make([]fetchEntry, fqCap),
		srcRegBuf: make([]isa.Reg, 0, 3),
		srcBuf:    make([]int, 0, 3),
	}
	n := nextPow2(cfg.ROBSize + 1)
	c.instBySeq = make([]*inst, n)
	c.instSeqMask = int64(n - 1)
	if cfg.Model == config.FnF {
		c.sft = memdep.NewSFT(memdep.DefaultFnFConfig())
		c.pendingFwd = newFwdRing(cfg.ROBSize + int(cfg.MaxDist()) + 2)
	}
	if cfg.Faults.Enabled() {
		c.inj = faults.NewInjector(cfg.Faults)
	}
	c.trackInval = cfg.InvalidationInterval > 0 || (c.inj != nil && c.inj.WantsInvalidations())
	c.ffEnabled = !cfg.DisableFastForward && c.inj == nil
	return c, nil
}

// Run simulates the whole trace and returns the statistics.
func (c *Core) Run() (*Stats, error) { return c.RunContext(context.Background()) }

// cancelPollInterval is how many cycle-loop iterations RunContext steps
// between context polls and progress callbacks. Polling is off the hot
// path (one counter increment per iteration; the channel read only every
// interval), so cancellation support costs nothing measurable and does
// not perturb simulation state: statistics are byte-identical with or
// without a deadline, as long as it does not fire.
const cancelPollInterval = 4096

// RunContext simulates the whole trace, aborting with a structured
// ErrCanceled SimError when ctx is cancelled or its deadline passes.
// Cancellation is polled every cancelPollInterval loop iterations, so a
// fired deadline surfaces within microseconds of wall clock, never
// mid-cycle: the returned SimError carries a consistent pipeline
// snapshot. A nil ctx behaves as context.Background().
func (c *Core) RunContext(ctx context.Context) (*Stats, error) {
	if len(c.tr.Entries) == 0 {
		return &c.stats, nil
	}
	start := time.Now()
	window := c.cfg.Watchdog.NoRetireWindow
	if window <= 0 {
		window = config.DefaultNoRetireWindow
	}
	maxCycles := c.cfg.Watchdog.MaxCycles
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	poll := 0
	for !c.done {
		c.step(window, maxCycles)
		if poll++; poll >= cancelPollInterval {
			poll = 0
			if done != nil {
				select {
				case <-done:
					c.fail(&SimError{Kind: ErrCanceled, Idx: -1,
						Msg: fmt.Sprintf("run cancelled: %v (retired %d/%d)", ctx.Err(), c.retired, len(c.tr.Entries))})
				default:
				}
			}
			if c.progressFn != nil {
				c.progressFn(c.retired, c.now)
			}
		}
	}
	if c.simErr != nil {
		return nil, c.simErr
	}
	if c.inj != nil {
		c.stats.Faults = c.inj.Counts
	}
	c.stats.Cycles = c.now - c.cycleBase
	c.stats.L1MissRate = c.hier.L1D.MissRate()
	if a := c.hier.L1D.Accesses - c.warmL1A; a > 0 && c.cfg.WarmupInstructions > 0 {
		c.stats.L1MissRate = float64(c.hier.L1D.Misses-c.warmL1M) / float64(a)
	}
	c.stats.L2MissRate = c.hier.L2.MissRate()
	c.stats.L2Accesses = c.hier.L2.Accesses
	c.stats.DRAMAccesses = c.hier.DRAM.Reads + c.hier.DRAM.Writes
	c.stats.TLBAccesses = c.tlb.Accesses
	c.stats.SimWallClockNS = time.Since(start).Nanoseconds()
	return &c.stats, nil
}

// SetProgressFn registers fn to observe simulation progress (retired
// instructions, current cycle) from the cycle loop, sampled every
// cancelPollInterval iterations. Call before Run; fn runs on the
// simulating goroutine and must be fast. A nil fn detaches.
func (c *Core) SetProgressFn(fn func(retired, cycles int64)) { c.progressFn = fn }

// step advances the simulation by one cycle: the body of Run's loop,
// split out so the allocation-regression guard can measure a single
// steady-state cycle.
func (c *Core) step(window, maxCycles int64) {
	c.now++
	c.progress = false
	if c.inj != nil && c.inj.InvalidateLine() {
		c.injectInvalidation()
	}
	if c.cfg.InvalidationInterval > 0 && c.now%c.cfg.InvalidationInterval == 0 {
		c.injectInvalidation()
	}
	c.commitStores()
	c.handleEvents()
	c.retire()
	c.issue()
	c.rename()
	c.fetch()

	if maxCycles > 0 && c.now >= maxCycles {
		c.fail(&SimError{Kind: ErrWatchdog, Idx: -1,
			Msg: fmt.Sprintf("cycle budget %d exhausted (retired %d/%d)", maxCycles, c.retired, len(c.tr.Entries))})
	}
	if c.now-c.lastRetireAt > window {
		c.fail(&SimError{Kind: ErrWatchdog, Idx: -1,
			Msg: fmt.Sprintf("no retirement for %d cycles: deadlock (retired %d/%d)", window, c.retired, len(c.tr.Entries))})
	}
	if !c.progress {
		c.fastForward(window, maxCycles)
	}
}

// fastForward jumps over provably empty cycles. It runs only after a
// cycle in which no pipeline stage changed any state (nothing committed,
// completed, retired, issued, renamed or fetched): everything left in
// flight is waiting on a known future cycle, so the simulation state at
// every intermediate cycle is identical to the current one and stepping
// through them one by one would only burn host time. The core jumps to
// one cycle before the earliest deadline — the next completion event,
// store write-back, front-end resume, re-execution finish, invalidation
// tick or watchdog expiry — and credits the per-cycle stall counters
// (fetch stall, re-execution stall, store-buffer-full stall) for the
// skipped cycles exactly as stepping would have. Statistics are therefore
// bit-identical with the switch on or off (TestFastForwardEquivalence).
func (c *Core) fastForward(window, maxCycles int64) {
	if !c.ffEnabled || c.done || c.simErr != nil || c.ready.Len() > 0 {
		return
	}
	deadline := int64(-1)
	add := func(t int64) {
		if t > c.now && (deadline < 0 || t < deadline) {
			deadline = t
		}
	}
	if t := c.events.nextAt(); t >= 0 {
		add(t)
	}
	for i := range c.sb.entries {
		if e := &c.sb.entries[i]; e.issued {
			add(e.doneAt)
		}
	}
	if c.fetchIdx < len(c.tr.Entries) && !c.fetchStalled {
		add(c.fetchResumeAt)
	}
	if c.fqLen > 0 {
		add(c.fq[c.fqHead].readyAt)
	}
	var head *inst
	if !c.rob.empty() {
		head = c.rob.front()
		if head.reexecAt > 0 {
			add(head.reexecAt)
		}
	}
	if iv := c.cfg.InvalidationInterval; iv > 0 {
		add(c.now + iv - c.now%iv)
	}
	if maxCycles > 0 {
		add(maxCycles)
	}
	add(c.lastRetireAt + window + 1)

	skipped := deadline - c.now - 1
	if skipped <= 0 {
		return
	}
	// The skipped cycles would each have ticked the same per-cycle stall
	// counters this (stateless) cycle ticked: the conditions below are
	// all functions of state that cannot change before the deadline.
	if c.fetchIdx < len(c.tr.Entries) && (c.fetchStalled || c.now < c.fetchResumeAt) {
		c.stats.FetchStallCycles += skipped
	}
	if head != nil && head.complete() {
		switch {
		case head.isLoad() && head.needReexec && (!c.sb.empty() || c.now < head.reexecAt):
			c.stats.ReexecStallCycle += skipped
		case head.isStore() && c.sb.full():
			c.stats.SBFullStall += skipped
		}
	}
	c.now = deadline - 1
}

// instBySeqGet returns the in-flight store with dynamic number seq, or
// nil (retired, squashed, or overwritten by a younger store).
func (c *Core) instBySeqGet(seq int64) *inst {
	if in := c.instBySeq[seq&c.instSeqMask]; in != nil && in.seq == seq {
		return in
	}
	return nil
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// CheckInvariants validates internal consistency (used by tests).
func (c *Core) CheckInvariants() error { return c.rf.checkInvariants() }

// newDistancePredictor picks the configured store distance predictor.
func newDistancePredictor(cfg config.Config) memdep.DistancePredictor {
	if cfg.UseTAGE {
		return memdep.NewTAGESDP(memdep.DefaultTAGEConfig(cfg.SDP.Biased))
	}
	return memdep.NewSDP(cfg.SDP)
}

// injectInvalidation models remote-core consistency traffic (paper
// §IV-F): a recently written cache line is invalidated; its words enter
// the T-SSBF with SSNcommit+1 so vulnerable in-flight loads re-execute.
func (c *Core) injectInvalidation() {
	c.progress = true
	if len(c.recentLines) == 0 {
		return
	}
	line := c.recentLines[int(c.invalPick)%len(c.recentLines)]
	c.invalPick++
	c.hier.Invalidate(line)
	if c.cfg.Model != config.Baseline {
		c.tssbf.InvalidateLine(line, c.hier.LineBytes())
		c.stats.TSSBFWrites += int64(c.hier.LineBytes() / 4)
	}
	c.stats.Invalidations++
}

// ---------- store commit ----------

// commitStores advances the store buffer: completes finished cache writes
// (applying their bytes to the committed image and publishing SSNcommit)
// and issues new ones through a pipelined write port (one issue per
// cycle). TSO completes strictly in order (a younger store's write
// becomes visible no earlier than its elders), with consecutive
// same-word coalescing; RMO may issue any entry whose word has no older
// pending write and completes in any order, with SSNcommit trailing the
// oldest uncommitted store.
func (c *Core) commitStores() {
	// Complete finished writes.
	if c.cfg.Consistency == config.TSO {
		for len(c.sb.entries) > 0 {
			head := &c.sb.entries[0]
			if !head.issued || head.doneAt > c.now {
				break
			}
			c.finishCommit(0)
		}
	} else {
		for {
			progressed := false
			for i := 0; i < len(c.sb.entries); i++ {
				e := &c.sb.entries[i]
				if e.issued && e.doneAt <= c.now {
					c.finishCommit(i)
					progressed = true
					break
				}
			}
			if !progressed {
				break
			}
		}
	}

	// Issue one new commit per cycle (pipelined write port).
	if c.sb.empty() {
		return
	}
	if c.cfg.Consistency == config.TSO {
		var lastDone int64
		for i := 0; i < len(c.sb.entries); i++ {
			e := &c.sb.entries[i]
			if e.issued {
				if e.doneAt > lastDone {
					lastDone = e.doneAt
				}
				continue
			}
			if !c.rf.regs[e.dataPhys].ready {
				return
			}
			c.progress = true
			done := c.hier.Access(c.now, e.addr, true)
			// Enforce in-order visibility behind older stores.
			if done <= lastDone {
				done = lastDone + 1
			}
			e.issued = true
			e.doneAt = done
			if c.cfg.StoreCoalescing {
				// Consecutive stores to the same word ride along.
				for j := i + 1; j < len(c.sb.entries); j++ {
					n := &c.sb.entries[j]
					if n.addr&^3 != e.addr&^3 || !c.rf.regs[n.dataPhys].ready {
						break
					}
					n.issued = true
					n.doneAt = done
					n.coalescedWith = i
					c.stats.StoresCoalesced++
				}
			}
			return
		}
		return
	}
	// RMO: issue the oldest unissued entry whose word has no older
	// pending write (one issue per cycle).
	for i := range c.sb.entries {
		e := &c.sb.entries[i]
		if e.issued || !c.rf.regs[e.dataPhys].ready {
			continue
		}
		if c.sb.hasOlderSameWord(i) {
			continue
		}
		c.progress = true
		e.issued = true
		e.doneAt = c.hier.Access(c.now, e.addr, true)
		break
	}
}

// finishCommit applies entry i's bytes, releases its registers and
// advances SSNcommit.
func (c *Core) finishCommit(i int) {
	c.progress = true
	e := c.sb.entries[i]
	c.image.Write(e.addr, e.size, e.value)
	if c.drainHook != nil {
		c.drainHook(&e)
	}
	if c.trackInval {
		line := e.addr &^ uint32(c.hier.LineBytes()-1)
		if len(c.recentLines) < 8 {
			c.recentLines = append(c.recentLines, line)
		} else {
			c.recentLines[int(e.ssn)%8] = line
		}
	}
	c.rf.dropConsumer(e.dataPhys)
	c.rf.dropConsumer(e.addrPhys)
	c.checkRefs(e.idx)
	c.srb.remove(e.ssn)
	c.sb.entries = append(c.sb.entries[:i], c.sb.entries[i+1:]...)
	c.stats.StoresCommitted++

	var newCommit int64
	if c.cfg.Consistency == config.TSO {
		newCommit = e.ssn
	} else {
		// RMO: SSNcommit trails the oldest store still pending. Every
		// retired store passes through the buffer, so when it drains,
		// everything up to SSNretire has committed.
		newCommit = c.sb.oldestUncommittedSSN(c.ssn.Retire)
		if newCommit < c.ssn.Commit {
			newCommit = c.ssn.Commit
		}
	}
	if newCommit > c.ssn.Commit {
		c.ssn.Commit = newCommit
		c.wakeDelayed()
	}
}

// wakeDelayed re-activates parked uops whose SSNcommit gate opened.
func (c *Core) wakeDelayed() {
	kept := c.delayed[:0]
	for _, u := range c.delayed {
		switch {
		case u.squashed:
		case c.ssn.Commit >= u.gateSSN:
			c.ready.push(u)
		default:
			kept = append(kept, u)
		}
	}
	c.delayed = kept
}

// ---------- events / writeback ----------

func (c *Core) handleEvents() {
	for c.simErr == nil {
		u := c.events.popDue(c.now)
		if u == nil {
			return
		}
		c.progress = true
		c.completeUop(u)
	}
}

// writeback publishes a register value and wakes its waiters.
func (c *Core) writeback(p int) {
	if p < 0 {
		return
	}
	c.stats.RegWrites++
	for _, w := range c.rf.setReady(p, c.now) {
		if w.squashed {
			continue
		}
		w.waitCnt--
		c.stats.IQWakeups++
		if w.waitCnt == 0 {
			c.dispatchReady(w)
		}
	}
}

// dispatchReady routes a uop whose operands are all ready: through its
// gate (delayed-load structure, store-set wait) or into the ready queue;
// zero-cost bookkeeping uops (cloak trackers) complete immediately.
func (c *Core) dispatchReady(u *uop) {
	if u.squashed {
		return
	}
	if u.kind == uopCloakTrack {
		c.completeUop(u)
		return
	}
	switch u.gate {
	case gateSSNCommit:
		if c.ssn.Commit >= u.gateSSN {
			c.ready.push(u)
			return
		}
		// Parked loads leave the IQ for the (unlimited) delayed-load
		// structure (paper §V: NoSQ's delayed-load storage).
		u.parked = true
		c.leaveIQ(u)
		c.delayed = append(c.delayed, u)
	case gateStoreExec:
		// gateSeq mismatch: the gating store retired (its inst was
		// recycled) — a retired store has long resolved its address.
		if u.gateInst == nil || u.gateInst.seq != u.gateSeq ||
			u.gateInst.squashed || u.gateInst.addrReady {
			c.ready.push(u)
			return
		}
		u.gateInst.execWaiters = append(u.gateInst.execWaiters, u)
	default:
		c.ready.push(u)
	}
}

// completeUop handles a finished micro-operation.
func (c *Core) completeUop(u *uop) {
	if u.squashed || u.done {
		return
	}
	u.done = true
	u.doneAt = c.now
	in := u.inst

	switch u.kind {
	case uopALU:
		c.writeback(u.dst)
	case uopBranch:
		c.writeback(u.dst)
		if c.fetchStalled && c.blockInst == in {
			c.fetchStalled = false
			c.blockInst = nil
			c.fetchResumeAt = c.now + c.cfg.RedirectPenalty
		}
	case uopAGI:
		in.addrReady = true
		c.writeback(u.dst)
		if in.isStore() {
			c.sets.StoreExecuted(in.e.PC, in.seq)
			for _, w := range in.execWaiters {
				if !w.squashed {
					c.ready.push(w)
				}
			}
			in.execWaiters = in.execWaiters[:0]
			if c.cfg.Model == config.Baseline {
				c.checkViolations(in)
			}
		}
	case uopLoad:
		c.completeLoadAccess(u)
	case uopCMP:
		c.completeCMP(u)
	case uopCMOV:
		c.completeCMOV(u)
	case uopCloakTrack:
		// The predicted store's data register is ready: the cloaked
		// load's value is available now.
		in.valueAt = c.now
	}

	in.pending--
	if in.pending == 0 {
		in.completedAt = c.now
	}
}

// ---------- issue ----------

func (c *Core) issue() {
	issued := 0
	loadPorts := 0
	stash := c.stash[:0]
	for issued < c.cfg.IssueWidth && c.ready.Len() > 0 {
		u := c.ready.pop()
		if u.squashed {
			continue
		}
		if u.kind == uopLoad && loadPorts >= c.cfg.LoadPorts {
			stash = append(stash, u)
			continue
		}
		if u.kind == uopALU {
			switch u.class {
			case isa.ClassDiv:
				if c.divBusyUntil > c.now {
					stash = append(stash, u)
					continue
				}
			case isa.ClassFPDiv:
				if c.fpDivBusyUntil > c.now {
					stash = append(stash, u)
					continue
				}
			}
		}
		replayed := c.issueUop(u)
		if u.kind == uopLoad {
			loadPorts++
		}
		issued++
		if replayed {
			continue
		}
	}
	for _, u := range stash {
		c.ready.push(u)
	}
	c.stash = stash
}

// leaveIQ releases u's issue queue slot (idempotent).
func (c *Core) leaveIQ(u *uop) {
	if u.counted {
		u.counted = false
		c.iqCount--
	}
}

// issueUop begins execution; returns true when the uop re-gated itself
// (baseline loads discovering an unready forwarder).
func (c *Core) issueUop(u *uop) bool {
	c.progress = true
	in := u.inst
	c.leaveIQ(u)
	u.parked = false
	c.stats.RegReads += int64(srcCount(u))

	switch u.kind {
	case uopLoad:
		return c.issueLoad(u)
	case uopAGI:
		lat := c.cfg.AGILat + c.tlb.Translate(in.e.Addr)
		u.issued = true
		c.events.schedule(c.now+lat, u)
	case uopALU, uopBranch:
		lat := c.latencyFor(u)
		u.issued = true
		c.events.schedule(c.now+lat, u)
	case uopCMP, uopCMOV:
		u.issued = true
		c.events.schedule(c.now+1, u)
	}
	return false
}

func srcCount(u *uop) int {
	n := 0
	for _, s := range u.srcs {
		if s >= 0 {
			n++
		}
	}
	return n
}

func (c *Core) latencyFor(u *uop) int64 {
	switch u.class {
	case isa.ClassMul:
		return c.cfg.MulLat
	case isa.ClassDiv:
		c.divBusyUntil = c.now + c.cfg.DivLat
		return c.cfg.DivLat
	case isa.ClassFP:
		return c.cfg.FPLat
	case isa.ClassFPDiv:
		c.fpDivBusyUntil = c.now + c.cfg.FPDivLat
		return c.cfg.FPDivLat
	case isa.ClassBranch:
		return c.cfg.BranchLat
	default:
		return c.cfg.ALULat
	}
}

// ---------- rename ----------

// spaceFor conservatively checks resources for one instruction (worst
// case: a predicated load = 5 uops, 4 fresh registers).
func (c *Core) spaceFor() bool {
	return !c.rob.full() &&
		c.rf.freeCount() >= 6 &&
		c.iqCount+5 <= c.cfg.IQSize
}

func (c *Core) rename() {
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fqLen == 0 || c.simErr != nil {
			return
		}
		fe := c.fq[c.fqHead]
		if fe.readyAt > c.now || !c.spaceFor() {
			return
		}
		c.fqHead = (c.fqHead + 1) & (fqCap - 1)
		c.fqLen--
		in := c.renameOne(fe.idx, fe.hist)
		if fe.blocking {
			c.blockInst = in
			// If the blocking op completed already (e.g. a no-uop
			// jump), unblock immediately.
			if in.pending == 0 && c.fetchStalled {
				c.fetchStalled = false
				c.blockInst = nil
				c.fetchResumeAt = c.now + c.cfg.RedirectPenalty
			}
		}
	}
}

// allocUop takes a zeroed uop from the free list (or the heap).
func (c *Core) allocUop() *uop {
	n := len(c.uopPool)
	if n == 0 {
		return &uop{}
	}
	u := c.uopPool[n-1]
	c.uopPool[n-1] = nil
	c.uopPool = c.uopPool[:n-1]
	return u
}

// allocInst takes a reset inst from the free list (or the heap).
func (c *Core) allocInst() *inst {
	n := len(c.instPool)
	if n == 0 {
		return &inst{}
	}
	in := c.instPool[n-1]
	c.instPool[n-1] = nil
	c.instPool = c.instPool[:n-1]
	return in
}

// poolInst resets in and its uops and pushes them onto the free lists.
// Callers must guarantee no live reference to them survives the call.
func (c *Core) poolInst(in *inst) {
	for _, u := range in.uops {
		*u = uop{}
		c.uopPool = append(c.uopPool, u)
	}
	uops, auxLog, auxPhys := in.uops[:0], in.auxLog[:0], in.auxPhys[:0]
	ew := in.execWaiters[:0]
	*in = inst{uops: uops, auxLog: auxLog, auxPhys: auxPhys, execWaiters: ew}
	c.instPool = append(c.instPool, in)
}

// recycleInst returns a retired instruction and its uops to the free
// lists. Safe because a retiring instruction has no pending uops: none of
// them sit in the event heap, ready queue, delayed-load structure or
// register waiter lists, and uops gated on a pooled store validate
// gateSeq against gateInst.seq before trusting the pointer.
func (c *Core) recycleInst(in *inst) {
	if in == c.blockInst {
		return // still referenced by the front end; abandon to the GC
	}
	c.poolInst(in)
}

// newUop allocates a uop, wiring operand wakeup.
func (c *Core) newUop(in *inst, kind uopKind, class isa.Class, srcs []int, dst int) *uop {
	c.uopSeq++
	u := c.allocUop()
	u.kind = kind
	u.class = class
	u.inst = in
	u.seq = c.uopSeq
	u.dst = dst
	u.srcs = [3]int{-1, -1, -1}
	for i, s := range srcs {
		u.srcs[i] = s
		if s >= 0 && c.rf.await(s, u) {
			u.waitCnt++
		}
	}
	in.uops = append(in.uops, u)
	in.pending++
	if kind != uopCloakTrack {
		u.counted = true
		c.iqCount++
		c.stats.IQInserts++
	}
	return u
}

// finishUopSetup routes a fresh uop whose operands may already be ready.
func (c *Core) finishUopSetup(u *uop) {
	if u.waitCnt == 0 {
		c.dispatchReady(u)
	}
}

// mapDest allocates and maps a destination register.
func (c *Core) mapDest(in *inst, l isa.Reg) int {
	p := c.rf.alloc()
	c.rf.rat[l] = p
	if in.destLog < 0 && !isHardwareReg(l) {
		in.destLog = int(l)
		in.destPhys = p
	} else {
		in.auxLog = append(in.auxLog, int(l))
		in.auxPhys = append(in.auxPhys, p)
	}
	return p
}

func isHardwareReg(l isa.Reg) bool { return l >= isa.HwAddr }

// mapAux maps a hardware-only logical register.
func (c *Core) mapAux(in *inst, l isa.Reg) int {
	p := c.rf.alloc()
	c.rf.rat[l] = p
	in.auxLog = append(in.auxLog, int(l))
	in.auxPhys = append(in.auxPhys, p)
	return p
}

func (c *Core) renameOne(idx int, hist uint32) *inst {
	c.progress = true
	e := &c.tr.Entries[idx]
	c.seqCounter++
	in := c.allocInst()
	in.idx = idx
	in.e = e
	in.seq = c.seqCounter
	in.renamedAt = c.now
	in.destLog = -1
	in.destPhys = -1
	in.predIdx = -1
	in.forwardIdx = -1
	in.histAtRen = hist
	c.stats.ROBWrites++
	op := e.Instr.Op

	switch {
	case op == isa.OpNOP || op == isa.OpHALT || op == isa.OpJ:
		in.completedAt = c.now
	case op == isa.OpJAL:
		dst := c.mapDest(in, isa.RA)
		u := c.newUop(in, uopALU, isa.ClassALU, nil, dst)
		c.finishUopSetup(u)
	case op.IsLoad():
		c.renameLoad(in)
	case op.IsStore():
		c.renameStore(in)
	case op.IsBranch() || op == isa.OpJR || op == isa.OpJALR:
		srcs := c.srcPhys(e)
		dst := -1
		if op == isa.OpJALR && e.Instr.Dest() != isa.NoReg {
			dst = c.mapDest(in, e.Instr.Dest())
		}
		u := c.newUop(in, uopBranch, isa.ClassBranch, srcs, dst)
		c.finishUopSetup(u)
	default:
		srcs := c.srcPhys(e)
		dst := -1
		if d := e.Instr.Dest(); d != isa.NoReg {
			dst = c.mapDest(in, d)
		}
		u := c.newUop(in, uopALU, op.Class(), srcs, dst)
		c.finishUopSetup(u)
	}

	c.rob.push(in)
	return in
}

// srcPhys maps an instruction's logical sources through the RAT. The
// returned slice aliases per-core scratch: it is only valid until the
// next call (newUop copies it immediately).
func (c *Core) srcPhys(e *trace.Entry) []int {
	logical := e.Instr.Srcs(c.srcRegBuf[:0])
	out := c.srcBuf[:0]
	for _, l := range logical {
		out = append(out, c.rf.rat[l])
	}
	return out
}

// ---------- fetch ----------

func (c *Core) fetch() {
	if c.fetchIdx >= len(c.tr.Entries) {
		return
	}
	if c.fetchStalled || c.now < c.fetchResumeAt {
		c.stats.FetchStallCycles++
		return
	}
	for n := 0; n < c.cfg.FetchWidth && c.fqLen < fqCap && c.fetchIdx < len(c.tr.Entries); n++ {
		idx := c.fetchIdx
		e := &c.tr.Entries[idx]
		fe := fetchEntry{idx: idx, readyAt: c.now + c.cfg.FrontEndDepth, hist: c.bp.History()}
		c.fetchIdx++
		if e.Instr.Op.IsControl() {
			correct := c.bp.PredictAndTrain(e.PC, e.Instr.Op, e.Taken, e.Target)
			if !correct {
				c.stats.BranchMispredicts++
				fe.blocking = true
				c.fqPush(fe)
				c.fetchStalled = true
				c.fetchBlockIdx = idx
				return
			}
		}
		c.fqPush(fe)
	}
}

func (c *Core) fqPush(fe fetchEntry) {
	c.progress = true
	c.fq[(c.fqHead+c.fqLen)&(fqCap-1)] = fe
	c.fqLen++
}

// ---------- retire ----------

func (c *Core) retire() {
	for budget := c.cfg.RetireWidth; budget > 0 && !c.rob.empty(); budget-- {
		in := c.rob.front()
		if !in.complete() {
			return
		}

		if in.isLoad() {
			switch c.verifyLoad(in) {
			case verifyStall:
				return
			case verifyRecoverReplay:
				// Baseline ordering violation: the load itself
				// re-executes; flush everything including it.
				c.flush(in.idx)
				return
			}
		}

		if in.isStore() {
			if c.sb.full() {
				c.stats.SBFullStall++
				return
			}
			c.retireStore(in)
		}

		c.retireCommon(in)
		c.rob.popFront()

		if in.recoverAfter {
			// Memory dependence exception: flush everything younger
			// and refetch after the (now corrected) load.
			refetch := in.idx + 1
			c.recycleInst(in)
			c.flush(refetch)
			return
		}
		stop := c.done
		c.recycleInst(in)
		if stop {
			return
		}
	}
}

func (c *Core) retireStore(in *inst) {
	e := in.e
	c.ssn.Retire = in.ssn
	c.sb.push(sbEntry{
		ssn:      in.ssn,
		idx:      in.idx,
		addr:     e.Addr,
		size:     uint32(e.Size),
		value:    e.Value,
		dataPhys: in.dataPhys,
		addrPhys: in.addrPhys,
	})
	if c.cfg.Model != config.Baseline {
		c.tssbf.Insert(e.WordAddr(), e.BAB(), in.ssn)
		c.stats.TSSBFWrites++
	}
	c.srb.markRetired(in.ssn)
	if i := in.seq & c.instSeqMask; c.instBySeq[i] == in {
		c.instBySeq[i] = nil
	}
}

// retireCommon updates architectural rename state, releases registers and
// accounts statistics.
func (c *Core) retireCommon(in *inst) {
	c.progress = true
	if in.destLog >= 0 {
		old := c.rf.arat[in.destLog]
		c.rf.arat[in.destLog] = in.destPhys
		c.rf.dropProducer(old)
	}
	for i, l := range in.auxLog {
		old := c.rf.arat[l]
		c.rf.arat[l] = in.auxPhys[i]
		c.rf.dropProducer(old)
	}

	c.retired++
	c.lastRetireAt = c.now
	if c.inj != nil && in.isLoad() && c.inj.CorruptValue() {
		// Injected architectural corruption: the lockstep hook (if
		// attached) and the oracle below must catch it.
		in.gotValue ^= 0x8000_0001
	}
	c.recordRetire(in)
	// External commit-stream observer (difftest lockstep) sees the
	// retirement first, then the built-in commit-time oracle: the
	// verification machinery must never let a wrong architectural
	// effect retire.
	c.notifyCommit(in)
	c.oracleRetireCheck(in)
	c.checkRefs(in.idx)
	if c.tracer != nil {
		c.tracer.onRetire(in, c.now)
	}
	if c.cfg.WarmupInstructions > 0 && c.retired == c.cfg.WarmupInstructions {
		// End of warmup: structures stay warm, counters restart. The
		// boundary instruction itself is not measured.
		oracleChecks := c.stats.OracleChecks
		c.stats = Stats{}
		c.stats.OracleChecks = oracleChecks // soundness coverage is not a warmup metric
		c.cycleBase = c.now
		c.warmL1A, c.warmL1M = c.hier.L1D.Accesses, c.hier.L1D.Misses
		if in.isLoad() {
			c.lsnRetire++
		}
	} else {
		c.stats.Instructions++
		n := int64(len(in.uops))
		if n == 0 {
			n = 1
		}
		c.stats.Uops += n

		if in.isLoad() {
			c.lsnRetire++
			c.accountLoad(in)
		}
	}

	if in.e.Instr.Op == isa.OpHALT || c.retired == int64(len(c.tr.Entries)) {
		c.done = true
	}
}

func (c *Core) accountLoad(in *inst) {
	c.stats.LoadCount[in.cat]++
	t := in.valueAt - in.renamedAt
	if t < 0 {
		t = 0
	}
	c.stats.LoadExecTime[in.cat] += t
	c.stats.LoadLatency[latencyBucket(t)]++
	if in.lowConf {
		c.stats.LowConfCount++
		c.stats.LowConfExecTime += t
		switch {
		case !in.actualInFly:
			c.stats.LowConfOutcomes[LowConfIndepStore]++
		case in.e.DepStore == in.ssnByp:
			c.stats.LowConfOutcomes[LowConfCorrect]++
		default:
			c.stats.LowConfOutcomes[LowConfDiffStore]++
		}
	}
}

// ---------- recovery ----------

// flush squashes every in-flight instruction, restores the rename state
// from the architectural map (the paper recovers the reference counters by
// walking the squashed instructions; restoring from the ARAT plus the
// surviving store buffer references is equivalent at a full-window flush)
// and refetches from refetchIdx.
func (c *Core) flush(refetchIdx int) {
	c.progress = true
	// A flush squashes the whole window, so every reference to an
	// in-flight instruction dies with it: the ready queue, delayed-load
	// structure, event heap and register waiter lists hold only stale
	// entries afterwards and are cleared below (resetToARAT empties the
	// waiter lists). That makes it safe to recycle the squashed
	// instructions and uops instead of abandoning them to the GC.
	for i := 0; i < c.rob.len(); i++ {
		in := c.rob.at(i)
		if c.tracer != nil {
			c.tracer.onSquash(in.idx)
		}
		for _, u := range in.uops {
			if !u.done {
				c.stats.SquashedUops++
			}
		}
		c.poolInst(in)
	}
	c.rob.clear()
	c.iqCount = 0
	c.ready = c.ready[:0]
	c.delayed = c.delayed[:0]
	c.events = c.events[:0]

	c.ssn.Rename = c.ssn.Retire
	c.lsnRename = c.lsnRetire
	c.srb.dropYoungerThan(c.ssn.Retire)
	for i := range c.instBySeq {
		c.instBySeq[i] = nil
	}
	c.sets.Invalidate(0) // all tracked stores were in flight: clear LFST

	c.sbRefBuf = c.sb.regRefs(c.sbRefBuf[:0])
	c.rf.resetToARAT(c.sbRefBuf)

	c.fqHead, c.fqLen = 0, 0
	c.fetchIdx = refetchIdx
	c.fetchStalled = false
	c.blockInst = nil
	c.fetchResumeAt = c.now + c.cfg.RecoveryPenalty
}
