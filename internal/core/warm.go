package core

import (
	"fmt"

	"dmdp/internal/warm"
)

// InstallWarmState installs a functional warm snapshot (produced by the
// warm package over the instructions preceding this core's trace) into
// the detailed microarchitectural models: caches, TLB, branch predictor,
// store-distance predictor and T-SSBF. It must be called before Run.
//
// The install is transactional with respect to corruption: the snapshot
// is fully validated into a standalone warm.State first, and only then
// transplanted, so a bad snapshot returns an error and leaves the core
// exactly as cold as New built it — the caller degrades to a cold start,
// never to divergent state. Statistics counters are untouched.
func (c *Core) InstallWarmState(snap []byte) error {
	ws, err := warm.FromSnapshot(warm.ConfigFrom(c.cfg), snap)
	if err != nil {
		return fmt.Errorf("core: warm state rejected: %w", err)
	}
	ws.InstallInto(c.hier, c.tlb, c.bp, c.sdp, c.tssbf)
	return nil
}
