package core

import (
	"dmdp/internal/isa"
	"dmdp/internal/trace"
)

// uopKind enumerates the MicroOp types the decoder/renamer emits.
type uopKind uint8

const (
	uopALU        uopKind = iota // integer/fp computation, jumps with link
	uopBranch                    // conditional branch / indirect jump (resolves fetch)
	uopAGI                       // address generation + TLB translation
	uopLoad                      // cache read (LD)
	uopCMP                       // predication: address comparison -> predicate
	uopCMOV                      // predication: conditional move (two per load)
	uopCloakTrack                // zero-cost tracker: cloaked load's data register readiness
)

// gate describes an extra issue condition beyond operand readiness.
type gateKind uint8

const (
	gateNone      gateKind = iota
	gateSSNCommit          // wait until SSN.Commit >= gateSSN (NoSQ delayed load, baseline partial-overlap)
	gateStoreExec          // wait until the store instruction gateInst's address resolves (store sets)
	// Baseline loads waiting for a forwarder's *data* register replay
	// through the ordinary operand-wakeup path (issueLoadBaseline).
)

// uop is one scheduled micro-operation.
type uop struct {
	kind  uopKind
	class isa.Class // execution class (latency / functional unit)
	inst  *inst
	seq   int64 // global dispatch order (issue priority)

	srcs    [3]int // physical register sources (-1 = unused)
	dst     int    // physical register destination (-1 = none)
	waitCnt int    // unready sources remaining

	gate     gateKind
	gateSSN  int64
	gateInst *inst
	gateSeq  int64 // gateInst's seq when the gate was set (staleness check: insts are pooled)
	parked   bool  // moved into the delayed-load structure
	counted  bool  // currently occupies an IQ slot

	// cmovSel: for uopCMOV, true when this is the predicate-true arm
	// (selects the store data).
	cmovSel bool

	issued   bool
	done     bool
	doneAt   int64
	squashed bool
}

// inst is one in-flight dynamic instruction (a trace entry instance).
type inst struct {
	idx int          // trace index
	e   *trace.Entry // the entry (correct-path ground truth)
	seq int64        // unique dynamic number (monotone across squashes)

	uops    []*uop
	pending int // uops not yet done

	// Rename state.
	destLog  int // logical destination (-1 = none); loads with predication also map HwTmp/HwPred
	destPhys int
	// auxiliary logical mappings created by cracking (HwAddr, HwTmp,
	// HwPred): recorded so retire updates the ARAT for them too.
	auxLog  []int
	auxPhys []int

	renamedAt int64

	// Store state.
	ssn       int64
	dataPhys  int // store data register (consumer-counted until commit)
	addrPhys  int // AGI destination (address register)
	addrReady bool

	// Load state.
	cat         LoadCategory
	lowConf     bool
	predHit     bool  // SDP produced a prediction
	usedDist    int64 // predicted store distance
	ssnByp      int64 // predicted colliding store SSN (0 = none used)
	predIdx     int   // trace index of the predicted store (-1 = none)
	histAtRen   uint32
	actualInFly bool // ground truth: DepStore was in flight at rename

	predicate     bool // CMP outcome: predicted store forwards
	predicateDone bool

	gotValue  uint32 // value the load obtained speculatively
	valueAt   int64  // cycle the value became available
	readCache bool   // value came from the cache (vs an in-flight store)
	ssnNvul   int64  // SSN.Commit captured when the cache was read

	// Fire-and-Forget state.
	lsn       int64 // load sequence number
	fnfTarget int64 // store: target LSN of the registered forward (0 = none)

	violated   bool  // baseline: ordering violation -> recover at head
	srcSSN     int64 // baseline: SSN of the store that supplied the value (-1 = cache read pending)
	forwardIdx int   // baseline: trace index of the forwarding store (-1 = none)

	// Predication register references (consumer-counted).
	predAddrPhys int
	predDataPhys int

	cacheValue     uint32 // raw cache-read result (predication keeps it separate)
	cacheValueSeen bool

	// Retire-time verification state machine.
	verifyChecked bool
	needReexec    bool
	didReexec     bool // the SVW check forced a retire-time re-execution
	tssbfSSN      int64
	tssbfMatch    bool
	tssbfCovered  bool
	reexecAt      int64 // completion cycle of the re-execution (0 = not issued)
	recoverAfter  bool  // exception: flush younger instructions after this retires

	// execWaiters are uops gated on this (store) instruction's address
	// resolution (store sets).
	execWaiters []*uop

	completedAt int64
	squashed    bool
}

func (in *inst) isLoad() bool  { return in.e.IsLoad() }
func (in *inst) isStore() bool { return in.e.IsStore() }

// complete reports whether the instruction can retire (all uops done).
func (in *inst) complete() bool { return in.pending == 0 }

// ---------- ready queue (issue priority by age) ----------

// readyHeap is a hand-rolled binary min-heap ordered by uop.seq. It
// deliberately avoids container/heap: the interface indirection costs a
// dynamic dispatch per sift step, and this queue sits on the per-cycle
// issue path.
type readyHeap []*uop

func (h readyHeap) Len() int { return len(h) }

func (h *readyHeap) push(u *uop) {
	a := append(*h, u)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].seq <= a[i].seq {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func (h *readyHeap) pop() *uop {
	a := *h
	u := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	siftDownReady(a, 0)
	*h = a
	return u
}

func siftDownReady(a []*uop, i int) {
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && a[r].seq < a[l].seq {
			m = r
		}
		if a[i].seq <= a[m].seq {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

// ---------- completion events ----------

type event struct {
	at int64
	u  *uop
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.u.seq < o.u.seq
}

// eventHeap is a hand-rolled binary min-heap of completion events ordered
// by (cycle, uop seq). Like readyHeap it avoids container/heap — and in
// particular the event-struct-to-interface boxing that used to allocate
// on every schedule call.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h *eventHeap) schedule(at int64, u *uop) {
	a := append(*h, event{at: at, u: u})
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].before(a[i]) {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func (h *eventHeap) popMin() event {
	a := *h
	e := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{}
	a = a[:n]
	siftDownEvent(a, 0)
	*h = a
	return e
}

func siftDownEvent(a []event, i int) {
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && a[r].before(a[l]) {
			m = r
		}
		if a[i].before(a[m]) {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

// popDue removes and returns the next event due at or before now, or nil.
func (h *eventHeap) popDue(now int64) *uop {
	for h.Len() > 0 {
		if (*h)[0].at > now {
			return nil
		}
		e := h.popMin()
		if e.u.squashed {
			continue
		}
		return e.u
	}
	return nil
}

// nextAt returns the cycle of the earliest pending event, or -1.
func (h eventHeap) nextAt() int64 {
	if len(h) == 0 {
		return -1
	}
	return h[0].at
}
