package core

import (
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/isa"
)

// ---------- regFile ----------

func TestRegFileInitialState(t *testing.T) {
	rf := newRegFile(64)
	if rf.freeCount() != 64-isa.NumLogicalRegs {
		t.Fatalf("free count %d", rf.freeCount())
	}
	for l := 0; l < isa.NumLogicalRegs; l++ {
		if rf.rat[l] != l || rf.arat[l] != l {
			t.Fatal("initial maps wrong")
		}
		if !rf.regs[l].ready || rf.regs[l].producers != 1 {
			t.Fatal("initial registers must be ready with one producer")
		}
	}
	if err := rf.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegFileAllocRelease(t *testing.T) {
	rf := newRegFile(64)
	p := rf.alloc()
	if rf.regs[p].free || rf.regs[p].producers != 1 {
		t.Fatal("alloc state wrong")
	}
	rf.dropProducer(p)
	if !rf.regs[p].free {
		t.Fatal("register should be free")
	}
	if err := rf.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegFileConsumerDelaysRelease(t *testing.T) {
	rf := newRegFile(64)
	p := rf.alloc()
	rf.addConsumer(p) // e.g. a store pending commit
	rf.dropProducer(p)
	if rf.regs[p].free {
		t.Fatal("consumer must delay release (paper §IV-B)")
	}
	rf.dropConsumer(p)
	if !rf.regs[p].free {
		t.Fatal("register should free once the consumer drops")
	}
}

func TestRegFileDoubleDefinition(t *testing.T) {
	// Cloaking / CMOV pairs: two producers, two virtual releases.
	rf := newRegFile(64)
	p := rf.alloc()
	rf.addProducer(p)
	rf.dropProducer(p)
	if rf.regs[p].free {
		t.Fatal("one producer remains")
	}
	rf.dropProducer(p)
	if !rf.regs[p].free {
		t.Fatal("both definitions released")
	}
}

func TestRegFileNegativeRefRecorded(t *testing.T) {
	rf := newRegFile(64)
	p := rf.alloc()
	rf.dropProducer(p)
	rf.dropProducer(p)
	if rf.badRef == nil {
		t.Fatal("expected refcount underflow to be recorded")
	}
	if rf.badRef.p != p || rf.badRef.producers != -1 {
		t.Fatalf("underflow misattributed: %+v", rf.badRef)
	}
	if err := rf.checkInvariants(); err == nil {
		t.Fatal("checkInvariants must report the underflow")
	}
	// First underflow wins: a later one must not overwrite the record.
	q := rf.alloc()
	rf.dropConsumer(q)
	if rf.badRef.p != p {
		t.Fatalf("first underflow overwritten: %+v", rf.badRef)
	}
}

func TestRegFileWakeup(t *testing.T) {
	rf := newRegFile(64)
	p := rf.alloc()
	u := &uop{}
	if !rf.await(p, u) {
		t.Fatal("fresh register must not be ready")
	}
	woken := rf.setReady(p, 10)
	if len(woken) != 1 || woken[0] != u {
		t.Fatal("waiter not woken")
	}
	if rf.await(p, &uop{}) {
		t.Fatal("ready register must not register waiters")
	}
}

func TestRegFileResetToARAT(t *testing.T) {
	rf := newRegFile(64)
	// Speculative state: remap $t0 to a fresh register.
	p := rf.alloc()
	rf.rat[isa.T0] = p
	// A store buffer entry still references two registers.
	s1, s2 := rf.alloc(), rf.alloc()
	rf.resetToARAT([]int{s1, s2})
	if rf.rat[isa.T0] != rf.arat[isa.T0] {
		t.Fatal("RAT not restored")
	}
	if rf.regs[p].free == false {
		t.Fatal("speculative register should be freed")
	}
	if rf.regs[s1].free || rf.regs[s2].free {
		t.Fatal("store buffer references must survive")
	}
	if rf.regs[s1].consumers != 1 {
		t.Fatal("consumer count not rebuilt")
	}
	if err := rf.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// ---------- robQ ----------

func TestRobQFIFO(t *testing.T) {
	q := newRobQ(4)
	for i := 0; i < 4; i++ {
		q.push(&inst{idx: i})
	}
	if !q.full() {
		t.Fatal("should be full")
	}
	for i := 0; i < 4; i++ {
		if q.front().idx != i {
			t.Fatalf("front %d, want %d", q.front().idx, i)
		}
		q.popFront()
	}
	if !q.empty() {
		t.Fatal("should be empty")
	}
}

func TestRobQWrapAround(t *testing.T) {
	q := newRobQ(3)
	q.push(&inst{idx: 0})
	q.push(&inst{idx: 1})
	q.popFront()
	q.push(&inst{idx: 2})
	q.push(&inst{idx: 3}) // wraps
	if q.len() != 3 {
		t.Fatalf("len %d", q.len())
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if q.at(i).idx != w {
			t.Fatalf("at(%d) = %d, want %d", i, q.at(i).idx, w)
		}
	}
	q.clear()
	if !q.empty() {
		t.Fatal("clear failed")
	}
}

// ---------- storeBuffer ----------

func TestStoreBufferCapacity(t *testing.T) {
	sb := newStoreBuffer(2, false)
	sb.push(sbEntry{ssn: 1})
	if sb.full() {
		t.Fatal("not full yet")
	}
	sb.push(sbEntry{ssn: 2})
	if !sb.full() || sb.len() != 2 {
		t.Fatal("capacity accounting wrong")
	}
}

func TestStoreBufferRegRefs(t *testing.T) {
	sb := newStoreBuffer(4, false)
	sb.push(sbEntry{ssn: 1, dataPhys: 10, addrPhys: 11})
	sb.push(sbEntry{ssn: 2, dataPhys: 12, addrPhys: 13})
	refs := sb.regRefs(nil)
	if len(refs) != 4 {
		t.Fatalf("refs %v", refs)
	}
}

func TestStoreBufferOldestUncommitted(t *testing.T) {
	sb := newStoreBuffer(4, true)
	if got := sb.oldestUncommittedSSN(7); got != 7 {
		t.Fatalf("empty buffer should report retired SSN, got %d", got)
	}
	sb.push(sbEntry{ssn: 5})
	sb.push(sbEntry{ssn: 6})
	if got := sb.oldestUncommittedSSN(7); got != 4 {
		t.Fatalf("got %d, want 4", got)
	}
}

func TestStoreBufferSameWordOrdering(t *testing.T) {
	sb := newStoreBuffer(4, true)
	sb.push(sbEntry{ssn: 1, addr: 0x100})
	sb.push(sbEntry{ssn: 2, addr: 0x102}) // same word
	sb.push(sbEntry{ssn: 3, addr: 0x200})
	if sb.hasOlderSameWord(0) {
		t.Fatal("oldest entry has no older same-word write")
	}
	if !sb.hasOlderSameWord(1) {
		t.Fatal("entry 1 shares a word with entry 0")
	}
	if sb.hasOlderSameWord(2) {
		t.Fatal("entry 2 is alone on its word")
	}
}

// ---------- store coalescing (behavioural, via the core) ----------

func TestStoreCoalescingCountsConsecutiveSameWord(t *testing.T) {
	src := `
	li $t0, 300
	li $t1, 0x10010000
loop:
	sw $t0, 0($t1)
	sw $t0, 0($t1)
	sw $t0, 0($t1)
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 50000)
	st := runModel(t, tr, config.DMDP)
	if st.StoresCoalesced < 200 {
		t.Fatalf("expected consecutive same-word stores to coalesce, got %d", st.StoresCoalesced)
	}
}

func TestLatencyBuckets(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1 << 22: 23, 1 << 40: 23}
	for lat, want := range cases {
		if got := latencyBucket(lat); got != want {
			t.Errorf("latencyBucket(%d) = %d, want %d", lat, got, want)
		}
	}
}

func TestLoadLatencyPercentiles(t *testing.T) {
	var st Stats
	// 90 fast loads (latency 1), 10 slow (latency ~100).
	st.LoadLatency[latencyBucket(1)] = 90
	st.LoadLatency[latencyBucket(100)] = 10
	if p := st.LoadLatencyPercentile(50); p > 2 {
		t.Fatalf("p50 = %d", p)
	}
	if p := st.LoadLatencyPercentile(99); p < 100 {
		t.Fatalf("p99 = %d", p)
	}
	var empty Stats
	if empty.LoadLatencyPercentile(50) != 0 {
		t.Fatal("empty histogram percentile must be 0")
	}
}
