package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// StatsSchemaVersion names the canonical Stats encoding below. It is part
// of every result-store cache key (see internal/artifact), so bumping it
// invalidates all persisted simulation results at once. Bump it whenever
// a Stats field is added, removed, renamed, reordered or retyped —
// TestStatsCodecCoversEveryField fails until the encoder and this
// constant are updated together.
const StatsSchemaVersion = 1

// statsWireSize is the exact length of a canonical encoding: 78 int64
// counters and 2 float64 rates (see MarshalCanonical for the field
// order).
const statsWireSize = 80 * 8

// MarshalCanonical serializes the statistics into the canonical
// little-endian form used by the persistent result store and by
// determinism comparisons. The encoding is fixed-order and fixed-width —
// no maps, no reflection — so equal statistics always produce identical
// bytes. SimWallClockNS is deliberately excluded: it is the one Stats
// field allowed to differ between behaviorally identical runs.
func (s *Stats) MarshalCanonical() []byte {
	buf := make([]byte, 0, statsWireSize)
	i64 := func(v int64) { buf = binary.LittleEndian.AppendUint64(buf, uint64(v)) }
	f64 := func(v float64) { buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)) }

	i64(s.Cycles)
	i64(s.Instructions)
	i64(s.Uops)
	for _, v := range s.LoadCount {
		i64(v)
	}
	for _, v := range s.LoadExecTime {
		i64(v)
	}
	for _, v := range s.LoadLatency {
		i64(v)
	}
	i64(s.LowConfCount)
	i64(s.LowConfExecTime)
	for _, v := range s.LowConfOutcomes {
		i64(v)
	}
	i64(s.DepMispredicts)
	for _, v := range s.DepMispredictsByCat {
		i64(v)
	}
	i64(s.Reexecs)
	i64(s.ReexecStallCycle)
	i64(s.SBFullStall)
	i64(s.Predications)
	i64(s.Cloaks)
	i64(s.DelayedLoads)
	i64(s.Violations)
	i64(s.Invalidations)
	i64(s.BranchMispredicts)
	i64(s.FetchStallCycles)
	i64(s.StoresCommitted)
	i64(s.StoresCoalesced)
	i64(s.RegReads)
	i64(s.RegWrites)
	i64(s.IQWakeups)
	i64(s.IQInserts)
	i64(s.ROBWrites)
	i64(s.SQSearches)
	i64(s.TSSBFReads)
	i64(s.TSSBFWrites)
	i64(s.SDPReads)
	i64(s.SDPWrites)
	i64(s.CacheAccesses)
	i64(s.L2Accesses)
	i64(s.DRAMAccesses)
	i64(s.TLBAccesses)
	i64(s.SquashedUops)
	f64(s.L1MissRate)
	f64(s.L2MissRate)
	i64(s.OracleChecks)
	i64(s.Faults.PredictionFlips)
	i64(s.Faults.ForcedLowConf)
	i64(s.Faults.PredicateCorruptions)
	i64(s.Faults.LineInvalidations)
	i64(s.Faults.ValueCorruptions)
	return buf
}

// UnmarshalCanonicalStats decodes a canonical encoding produced by
// MarshalCanonical. The length is checked exactly; a truncated or padded
// buffer is rejected. SimWallClockNS decodes as 0 (the encoding excludes
// it).
func UnmarshalCanonicalStats(data []byte) (*Stats, error) {
	if len(data) != statsWireSize {
		return nil, fmt.Errorf("core: canonical stats length %d, want %d (schema v%d)",
			len(data), statsWireSize, StatsSchemaVersion)
	}
	s := &Stats{}
	off := 0
	i64 := func() int64 {
		v := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		return v
	}
	f64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		return v
	}

	s.Cycles = i64()
	s.Instructions = i64()
	s.Uops = i64()
	for i := range s.LoadCount {
		s.LoadCount[i] = i64()
	}
	for i := range s.LoadExecTime {
		s.LoadExecTime[i] = i64()
	}
	for i := range s.LoadLatency {
		s.LoadLatency[i] = i64()
	}
	s.LowConfCount = i64()
	s.LowConfExecTime = i64()
	for i := range s.LowConfOutcomes {
		s.LowConfOutcomes[i] = i64()
	}
	s.DepMispredicts = i64()
	for i := range s.DepMispredictsByCat {
		s.DepMispredictsByCat[i] = i64()
	}
	s.Reexecs = i64()
	s.ReexecStallCycle = i64()
	s.SBFullStall = i64()
	s.Predications = i64()
	s.Cloaks = i64()
	s.DelayedLoads = i64()
	s.Violations = i64()
	s.Invalidations = i64()
	s.BranchMispredicts = i64()
	s.FetchStallCycles = i64()
	s.StoresCommitted = i64()
	s.StoresCoalesced = i64()
	s.RegReads = i64()
	s.RegWrites = i64()
	s.IQWakeups = i64()
	s.IQInserts = i64()
	s.ROBWrites = i64()
	s.SQSearches = i64()
	s.TSSBFReads = i64()
	s.TSSBFWrites = i64()
	s.SDPReads = i64()
	s.SDPWrites = i64()
	s.CacheAccesses = i64()
	s.L2Accesses = i64()
	s.DRAMAccesses = i64()
	s.TLBAccesses = i64()
	s.SquashedUops = i64()
	s.L1MissRate = f64()
	s.L2MissRate = f64()
	s.OracleChecks = i64()
	s.Faults.PredictionFlips = i64()
	s.Faults.ForcedLowConf = i64()
	s.Faults.PredicateCorruptions = i64()
	s.Faults.LineInvalidations = i64()
	s.Faults.ValueCorruptions = i64()
	return s, nil
}
