package core

import (
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/emu"
	"dmdp/internal/trace"
)

// traceOf assembles and emulates src, returning the analyzed trace.
func traceOf(t *testing.T, src string, max int64) *trace.Trace {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	tr, err := emu.Run(p, max)
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}
	return tr
}

// runModel simulates the trace under the model, failing on any error or
// broken invariant.
func runModel(t *testing.T, tr *trace.Trace, model config.Model) *Stats {
	t.Helper()
	return runCfg(t, tr, config.Default(model))
}

func runCfg(t *testing.T, tr *trace.Trace, cfg config.Config) *Stats {
	t.Helper()
	c, err := New(cfg, tr)
	if err != nil {
		t.Fatalf("new core: %v", err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatalf("run (%s): %v", cfg.Model, err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants (%s): %v", cfg.Model, err)
	}
	if st.Instructions != int64(len(tr.Entries)) {
		t.Fatalf("retired %d of %d instructions (%s)", st.Instructions, len(tr.Entries), cfg.Model)
	}
	return st
}

var allModels = []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF}

const aluLoop = `
	li $t0, 200
	li $t1, 0
loop:
	add $t1, $t1, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`

func TestALULoopAllModels(t *testing.T) {
	tr := traceOf(t, aluLoop, 100000)
	for _, m := range allModels {
		st := runModel(t, tr, m)
		if st.IPC() <= 0.3 {
			t.Errorf("%s: IPC %.2f implausibly low", m, st.IPC())
		}
		if st.DepMispredicts != 0 {
			t.Errorf("%s: dep mispredicts on a pure ALU loop", m)
		}
	}
}

// Always-colliding pattern: a register spill/fill through the stack.
const acPattern = `
	li $t0, 500
	li $t2, 1
loop:
	sw $t2, -4($sp)
	lw $t3, -4($sp)
	add $t2, $t3, $t2
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`

func TestACPatternCloaks(t *testing.T) {
	tr := traceOf(t, acPattern, 100000)
	for _, m := range []config.Model{config.NoSQ, config.DMDP} {
		st := runModel(t, tr, m)
		if st.Cloaks < 100 {
			t.Errorf("%s: only %d cloaks on an always-colliding pattern", m, st.Cloaks)
		}
		if st.MPKI() > 10 {
			t.Errorf("%s: MPKI %.1f too high on AC pattern", m, st.MPKI())
		}
	}
	// Perfect must bypass these loads too.
	st := runModel(t, tr, config.Perfect)
	if st.Cloaks < 100 {
		t.Errorf("perfect: only %d cloaks", st.Cloaks)
	}
}

// Occasionally-colliding pattern (paper Fig. 1): pointers read from an
// alternating table; the increment collides only when consecutive
// pointers match.
const ocPattern = `
	.data
ptrs:
	.word x0, x1, x0, x0, x1, x0, x1, x1
x0:
	.word 0
x1:
	.word 0
	.text
main:
	li $t0, 300        # outer iterations
outer:
	la $t1, ptrs
	li $t2, 8          # 8 pointers per sweep
inner:
	lw $t3, 0($t1)     # ptr = a[i]
	lw $t4, 0($t3)     # x[ptr]
	addi $t4, $t4, 1
	sw $t4, 0($t3)     # x[ptr]++
	addi $t1, $t1, 4
	addi $t2, $t2, -1
	bnez $t2, inner
	addi $t0, $t0, -1
	bnez $t0, outer
	halt
`

func TestOCPatternMechanisms(t *testing.T) {
	tr := traceOf(t, ocPattern, 100000)

	nosq := runModel(t, tr, config.NoSQ)
	if nosq.DelayedLoads == 0 {
		t.Error("nosq: no delayed loads on an OC pattern")
	}
	if nosq.Predications != 0 {
		t.Error("nosq: must not insert predication")
	}

	dmdp := runModel(t, tr, config.DMDP)
	if dmdp.Predications == 0 {
		t.Error("dmdp: no predications on an OC pattern")
	}
	if dmdp.DelayedLoads != 0 {
		t.Error("dmdp: must not delay loads")
	}

	perfect := runModel(t, tr, config.Perfect)
	if perfect.DepMispredicts != 0 || perfect.Reexecs != 0 {
		t.Error("perfect: must never mispredict or re-execute")
	}

	// The oracle should beat or match both mechanisms.
	if perfect.IPC() < nosq.IPC()*0.98 || perfect.IPC() < dmdp.IPC()*0.98 {
		t.Errorf("perfect IPC %.3f below nosq %.3f / dmdp %.3f",
			perfect.IPC(), nosq.IPC(), dmdp.IPC())
	}
}

func TestBaselineForwarding(t *testing.T) {
	tr := traceOf(t, acPattern, 100000)
	st := runModel(t, tr, config.Baseline)
	if st.SQSearches == 0 {
		t.Error("baseline: no store queue searches")
	}
	if st.Cloaks != 0 || st.Predications != 0 || st.DelayedLoads != 0 {
		t.Error("baseline: SQ-free mechanisms must be off")
	}
}

func TestPartialWordForcedPredication(t *testing.T) {
	// sh/lhu through the same halfword: always-colliding partial-word
	// accesses, which DMDP must predicate rather than cloak.
	src := `
	li $t0, 300
	li $t2, 7
loop:
	sh $t2, -8($sp)
	lhu $t3, -8($sp)
	add $t2, $t2, $t3
	andi $t2, $t2, 0x7fff
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 100000)
	dmdp := runModel(t, tr, config.DMDP)
	if dmdp.Predications < 100 {
		t.Errorf("dmdp: partial-word loads should be predicated, got %d", dmdp.Predications)
	}
	if dmdp.Cloaks != 0 {
		t.Errorf("dmdp: partial-word loads must not cloak, got %d cloaks", dmdp.Cloaks)
	}
}

func TestSilentStoreTraining(t *testing.T) {
	// Two stores to the same address, writing identical values; the
	// load collides with the second (silent) one. The
	// silent-store-aware policy should learn the dependence rather
	// than re-execute forever (paper Fig. 10).
	src := `
	li $t0, 400
	li $t2, 5
loop:
	sw $t2, -16($sp)
	sw $t2, -16($sp)
	lw $t3, -16($sp)
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 100000)
	st := runModel(t, tr, config.DMDP)
	// Re-executions happen at first but training must cap them well
	// below the iteration count.
	if st.Reexecs > 100 {
		t.Errorf("silent stores caused %d re-executions; predictor not learning", st.Reexecs)
	}
}

func TestLoadCategoriesAccounted(t *testing.T) {
	tr := traceOf(t, ocPattern, 100000)
	for _, m := range allModels {
		st := runModel(t, tr, m)
		if st.TotalLoads() != tr.Loads {
			t.Errorf("%s: accounted %d loads, trace has %d", m, st.TotalLoads(), tr.Loads)
		}
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// A store-heavy streaming loop with a tiny store buffer must stall.
	src := `
	li $t0, 2000
	li $t1, 0x10100000
loop:
	sw $t0, 0($t1)
	addi $t1, $t1, 64
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 100000)
	small := config.Default(config.DMDP).WithStoreBuffer(2)
	big := config.Default(config.DMDP).WithStoreBuffer(64)
	s1 := runCfg(t, tr, small)
	s2 := runCfg(t, tr, big)
	if s1.SBFullStall <= s2.SBFullStall {
		t.Errorf("small SB stalls %d should exceed big SB stalls %d", s1.SBFullStall, s2.SBFullStall)
	}
	if s1.Cycles <= s2.Cycles {
		t.Errorf("small SB (%d cycles) should be slower than big SB (%d)", s1.Cycles, s2.Cycles)
	}
}

func TestRMORuns(t *testing.T) {
	tr := traceOf(t, ocPattern, 100000)
	cfg := config.Default(config.DMDP).WithConsistency(config.RMO)
	st := runCfg(t, tr, cfg)
	if st.IPC() <= 0 {
		t.Error("rmo: zero IPC")
	}
}

func TestIssueWidthMatters(t *testing.T) {
	tr := traceOf(t, aluLoop, 100000)
	wide := runCfg(t, tr, config.Default(config.DMDP))
	narrow := runCfg(t, tr, config.Default(config.DMDP).WithIssueWidth(1))
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("1-wide (%d cycles) not slower than 8-wide (%d)", narrow.Cycles, wide.Cycles)
	}
}

func TestBranchMispredictsCostCycles(t *testing.T) {
	// Data-dependent branches on a pseudo-random sequence.
	src := `
	li $t0, 2000
	li $t1, 12345
loop:
	mul $t1, $t1, $t1
	addi $t1, $t1, 17
	andi $t2, $t1, 1
	beqz $t2, skip
	addi $t3, $t3, 1
skip:
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 100000)
	st := runModel(t, tr, config.DMDP)
	if st.BranchMispredicts == 0 {
		t.Error("expected branch mispredictions on random data")
	}
	if st.FetchStallCycles == 0 {
		t.Error("mispredictions should stall fetch")
	}
}

func TestDeterminism(t *testing.T) {
	tr := traceOf(t, ocPattern, 100000)
	for _, m := range allModels {
		a := runModel(t, tr, m)
		b := runModel(t, tr, m)
		// The wall clock is the one field allowed to differ between runs.
		a.SimWallClockNS, b.SimWallClockNS = 0, 0
		if *a != *b {
			t.Errorf("%s: nondeterministic stats", m)
		}
	}
}

func TestRecoveryPreservesCorrectness(t *testing.T) {
	// A hostile pattern: the colliding distance changes every
	// iteration, defeating the distance predictor and forcing
	// exceptions and recoveries. Every model must still retire all
	// loads with correct values (checked internally by Run).
	src := `
	.data
slots:
	.word 0, 0, 0, 0
	.text
main:
	li $t0, 400
	la $t1, slots
loop:
	andi $t2, $t0, 3      # rotating slot index
	sll $t2, $t2, 2
	add $t3, $t1, $t2
	sw $t0, 0($t3)        # store to rotating slot
	andi $t4, $t0, 1
	sll $t4, $t4, 2
	add $t5, $t1, $t4
	lw $t6, 0($t5)        # load from a different rotation
	add $t7, $t7, $t6
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 100000)
	for _, m := range allModels {
		st := runModel(t, tr, m)
		if m != config.Perfect && m != config.Baseline && st.Reexecs == 0 {
			t.Errorf("%s: expected re-executions on hostile pattern", m)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &trace.Trace{}
	c, err := New(config.Default(config.DMDP), tr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil || st.Instructions != 0 {
		t.Fatalf("empty trace: %v %+v", err, st)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := config.Default(config.DMDP)
	cfg.ROBSize = 0
	tr := traceOf(t, "halt", 10)
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestUopsExceedInstructionsUnderPredication(t *testing.T) {
	tr := traceOf(t, ocPattern, 100000)
	dmdp := runModel(t, tr, config.DMDP)
	nosq := runModel(t, tr, config.NoSQ)
	if dmdp.Uops <= nosq.Uops {
		t.Errorf("dmdp uops %d should exceed nosq %d (extra CMP/CMOVs)", dmdp.Uops, nosq.Uops)
	}
}

func TestFnFModel(t *testing.T) {
	tr := traceOf(t, acPattern, 100000)
	st := runModel(t, tr, config.FnF)
	if st.Cloaks < 100 {
		t.Errorf("fnf: store-side forwarding should cloak AC loads, got %d", st.Cloaks)
	}
	if st.Predications != 0 || st.DelayedLoads != 0 {
		t.Error("fnf: must not predicate or delay")
	}
	// OC pattern: FnF must stay correct (value check is internal).
	tr2 := traceOf(t, ocPattern, 100000)
	st2 := runModel(t, tr2, config.FnF)
	if st2.IPC() <= 0 {
		t.Error("fnf: zero IPC on OC pattern")
	}
}

// TestFnFPathInsensitivity measures the paper's stated reason for
// preferring NoSQ (§VII): with branches between store and load choosing
// different store counts, the store-side predictor cannot disambiguate
// paths, while NoSQ's load-side path-sensitive predictor can.
func TestFnFPathInsensitivity(t *testing.T) {
	// Alternating-path store->load pattern: the consumer load's distance
	// from the colliding store differs per path.
	src := `
	.data
slot:	.space 16
	.text
main:
	la $t8, slot
	li $t0, 2000
	li $t2, 7
loop:
	andi $t6, $t0, 1
	sw $t2, 0($t8)
	beqz $t6, skip
	lw $t9, 4($t8)      # extra load shifts the load-distance on this path
skip:
	lw $t3, 0($t8)      # always collides with the sw above
	add $t2, $t2, $t3
	andi $t2, $t2, 1023
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	tr := traceOf(t, src, 100000)
	fnf := runModel(t, tr, config.FnF)
	nosq := runModel(t, tr, config.NoSQ)
	// The load-side predictor sees a constant store distance (0) on both
	// paths; the store-side predictor sees an alternating load distance.
	if fnf.MPKI() < nosq.MPKI() {
		t.Errorf("expected FnF to mispredict at least as much as NoSQ on path-dependent consumers: fnf %.2f vs nosq %.2f",
			fnf.MPKI(), nosq.MPKI())
	}
}

func TestWarmupDiscardsEarlyStats(t *testing.T) {
	tr := traceOf(t, ocPattern, 40000)
	full := runCfg(t, tr, config.Default(config.DMDP))
	warmCfg := config.Default(config.DMDP).WithWarmup(10000)
	c, err := New(warmCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := int64(len(tr.Entries)) - 10000 // warmup includes the boundary instruction
	if warm.Instructions != wantInstr {
		t.Fatalf("measured %d instructions, want %d", warm.Instructions, wantInstr)
	}
	if warm.Cycles >= full.Cycles {
		t.Fatalf("warm window cycles %d should be below full %d", warm.Cycles, full.Cycles)
	}
	// Steady-state IPC with warm structures should not be below the
	// cold-start-inclusive IPC.
	if warm.IPC() < full.IPC()*0.95 {
		t.Fatalf("warm IPC %.3f unexpectedly below full %.3f", warm.IPC(), full.IPC())
	}
}

func TestWarmupEqualToTraceStillTerminates(t *testing.T) {
	tr := traceOf(t, aluLoop, 100000)
	cfg := config.Default(config.DMDP).WithWarmup(int64(len(tr.Entries)))
	c, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 0 {
		t.Fatalf("everything warmed away, measured %d", st.Instructions)
	}
}
