// Package core implements the cycle-level out-of-order processor model
// and its four store-load communication mechanisms: the baseline store
// queue machine, NoSQ (memory cloaking + delayed loads), DMDP (memory
// cloaking + dynamic memory dependence predication — the paper's
// contribution) and a Perfect oracle.
//
// The core is trace-driven over the architecturally correct path produced
// by the functional emulator. Speculation outcomes are exact: the core
// maintains the committed memory image cycle by cycle, so the value a
// load would have obtained from the cache at the moment it read it — and
// hence whether cloaking/predication/delaying produced the right value —
// is computed, not approximated. Branch mispredictions stall the front
// end until the branch resolves; memory dependence mispredictions flush
// the pipeline at retire and refetch, like the machine in the paper.
package core

import (
	"fmt"
	"math"

	"dmdp/internal/faults"
)

// LoadCategory classifies how a load obtained its value (paper Fig. 2).
type LoadCategory uint8

// Load categories.
const (
	// LoadDirect read the cache with no predicted dependence.
	LoadDirect LoadCategory = iota
	// LoadBypass reused an in-flight store's data register (cloaking).
	LoadBypass
	// LoadDelayed waited for the predicted store to commit, then read
	// the cache (NoSQ low-confidence handling).
	LoadDelayed
	// LoadPredicated executed the DMDP CMP/CMOV sequence.
	LoadPredicated

	numLoadCategories
)

func (c LoadCategory) String() string {
	switch c {
	case LoadDirect:
		return "direct"
	case LoadBypass:
		return "bypass"
	case LoadDelayed:
		return "delayed"
	case LoadPredicated:
		return "predicated"
	}
	return "cat?"
}

// LowConfOutcome classifies the dependence-prediction ground truth of a
// low-confidence load (paper Fig. 5).
type LowConfOutcome uint8

// Low-confidence load outcomes.
const (
	// LowConfIndepStore: predicted dependent but actually independent of
	// any in-flight store.
	LowConfIndepStore LowConfOutcome = iota
	// LowConfDiffStore: dependent on a different in-flight store.
	LowConfDiffStore
	// LowConfCorrect: the predicted store was the actual collider.
	LowConfCorrect

	numLowConfOutcomes
)

// Stats aggregates everything the experiments report.
type Stats struct {
	Cycles       int64
	Instructions int64
	Uops         int64

	// Loads by category, with execution-time sums (cycles between rename
	// and the result becoming available, floored at zero).
	LoadCount    [numLoadCategories]int64
	LoadExecTime [numLoadCategories]int64
	// LoadLatency is a power-of-two histogram of load execution times:
	// bucket i counts loads with latency in [2^(i-1), 2^i).
	LoadLatency [latencyBuckets]int64

	// Low-confidence loads (delayed or predicated) tracked separately
	// for Table V / Fig. 5.
	LowConfCount    int64
	LowConfExecTime int64
	LowConfOutcomes [numLowConfOutcomes]int64

	// Memory dependence machinery.
	DepMispredicts      int64                    // full recoveries (exceptions) — Table VI numerator
	DepMispredictsByCat [numLoadCategories]int64 // exception source breakdown
	Reexecs             int64                    // load re-executions issued
	ReexecStallCycle    int64                    // retire-stall cycles waiting for drain + re-execution (Table VII)
	SBFullStall         int64                    // retire-stall cycles because the store buffer was full
	Predications        int64                    // CMP/CMOV sequences inserted (DMDP)
	Cloaks              int64                    // loads renamed onto a store's data register
	DelayedLoads        int64                    // NoSQ delayed loads
	Violations          int64                    // baseline memory ordering violations
	Invalidations       int64                    // injected remote-core line invalidations (§IV-F)

	// Front end.
	BranchMispredicts int64
	FetchStallCycles  int64

	// Stores.
	StoresCommitted int64
	StoresCoalesced int64

	// Structure activity (consumed by the power model).
	RegReads, RegWrites     int64
	IQWakeups, IQInserts    int64
	ROBWrites               int64
	SQSearches              int64 // baseline CAM searches
	TSSBFReads, TSSBFWrites int64
	SDPReads, SDPWrites     int64
	CacheAccesses           int64
	L2Accesses              int64
	DRAMAccesses            int64
	TLBAccesses             int64
	SquashedUops            int64

	// Cache behaviour.
	L1MissRate, L2MissRate float64

	// Hardening layer.
	OracleChecks int64         // commit-time oracle comparisons performed
	Faults       faults.Counts // injected faults by class (zero when disabled)

	// SimWallClockNS is the host wall-clock duration of the Run call in
	// nanoseconds. Observability only: it is the one Stats field allowed
	// to differ between otherwise identical runs, so determinism
	// comparisons (and cmd/statsdigest) must exclude it.
	SimWallClockNS int64
}

// SimIPS returns the simulator's own throughput in simulated instructions
// per host wall-clock second (0 when the wall clock was not recorded).
func (s *Stats) SimIPS() float64 {
	if s.SimWallClockNS == 0 {
		return 0
	}
	return float64(s.Instructions) / (float64(s.SimWallClockNS) / 1e9)
}

// latencyBuckets spans latencies up to 2^23 cycles.
const latencyBuckets = 24

// latencyBucket maps a latency to its histogram bucket.
func latencyBucket(lat int64) int {
	b := 0
	for lat > 0 && b < latencyBuckets-1 {
		lat >>= 1
		b++
	}
	return b
}

// LoadLatencyPercentile returns an upper bound (bucket boundary, a power
// of two) for the p-th percentile load execution time, p in (0,100].
func (s *Stats) LoadLatencyPercentile(p float64) int64 {
	var total int64
	for _, n := range s.LoadLatency {
		total += n
	}
	if total == 0 {
		return 0
	}
	// Ceiling, not truncation: the percentile rank is the smallest k with
	// k >= p/100*total. Truncating put exact bucket boundaries (and p=100
	// with small totals) one bucket too low.
	target := int64(math.Ceil(p / 100 * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.LoadLatency {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			return 1 << uint(i)
		}
	}
	return 1 << (latencyBuckets - 1)
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MPKI returns memory dependence mispredictions per 1000 instructions
// (Table VI).
func (s *Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.DepMispredicts) / float64(s.Instructions)
}

// ReexecStallsPerKilo returns retire-stall cycles per 1000 committed
// instructions (Table VII).
func (s *Stats) ReexecStallsPerKilo() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.ReexecStallCycle) / float64(s.Instructions)
}

// SBStallsPerKilo returns store-buffer-full stall cycles per 1000
// committed instructions (§VI-e).
func (s *Stats) SBStallsPerKilo() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.SBFullStall) / float64(s.Instructions)
}

// TotalLoads returns the number of retired loads.
func (s *Stats) TotalLoads() int64 {
	var n int64
	for _, c := range s.LoadCount {
		n += c
	}
	return n
}

// MeanLoadExecTime returns the average load execution time in cycles
// across all categories (Table IV).
func (s *Stats) MeanLoadExecTime() float64 {
	loads := s.TotalLoads()
	if loads == 0 {
		return 0
	}
	var t int64
	for _, x := range s.LoadExecTime {
		t += x
	}
	return float64(t) / float64(loads)
}

// MeanExecTime returns the mean execution time of one load category.
func (s *Stats) MeanExecTime(c LoadCategory) float64 {
	if s.LoadCount[c] == 0 {
		return 0
	}
	return float64(s.LoadExecTime[c]) / float64(s.LoadCount[c])
}

// MeanLowConfExecTime returns the mean execution time of low-confidence
// loads (Table V).
func (s *Stats) MeanLowConfExecTime() float64 {
	if s.LowConfCount == 0 {
		return 0
	}
	return float64(s.LowConfExecTime) / float64(s.LowConfCount)
}

// DigestLine renders every deterministic counter of one run on a single
// fixed-format line. Two builds of the simulator are behaviorally
// identical iff their digest lines are byte-identical; wall-clock
// observability counters (SimWallClockNS and friends) are deliberately
// excluded — they are the only Stats fields allowed to differ between
// runs. Field order is frozen; do not reorder (diffs against recorded
// digests would churn). Shared by cmd/statsdigest, the committed golden
// files under testdata/goldens/ and the difftest aggregate digest.
func (s *Stats) DigestLine() string {
	return fmt.Sprintf("cyc=%d inst=%d uops=%d loads=%v loadt=%v lat=%v "+
		"lowconf=%d/%d/%v mpred=%d/%v reexec=%d stall=%d sbstall=%d "+
		"pred=%d cloak=%d delay=%d viol=%d inval=%d bmiss=%d fstall=%d "+
		"sc=%d/%d rr=%d rw=%d iqw=%d iqi=%d robw=%d sqs=%d tssbf=%d/%d "+
		"sdp=%d/%d ca=%d l2=%d dram=%d tlb=%d squash=%d miss=%.6f/%.6f oracle=%d",
		s.Cycles, s.Instructions, s.Uops, s.LoadCount, s.LoadExecTime, s.LoadLatency,
		s.LowConfCount, s.LowConfExecTime, s.LowConfOutcomes,
		s.DepMispredicts, s.DepMispredictsByCat, s.Reexecs, s.ReexecStallCycle, s.SBFullStall,
		s.Predications, s.Cloaks, s.DelayedLoads, s.Violations, s.Invalidations,
		s.BranchMispredicts, s.FetchStallCycles,
		s.StoresCommitted, s.StoresCoalesced, s.RegReads, s.RegWrites,
		s.IQWakeups, s.IQInserts, s.ROBWrites, s.SQSearches, s.TSSBFReads, s.TSSBFWrites,
		s.SDPReads, s.SDPWrites, s.CacheAccesses, s.L2Accesses, s.DRAMAccesses,
		s.TLBAccesses, s.SquashedUops, s.L1MissRate, s.L2MissRate, s.OracleChecks)
}
