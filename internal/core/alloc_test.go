package core

import (
	"testing"

	"dmdp/internal/config"
)

// bigOCPattern is the occasionally-colliding pointer sweep of ocPattern
// scaled up so the simulation runs for hundreds of thousands of cycles:
// the allocation guard must be able to warm up and then measure thousands
// of steady-state cycles without the trace running out.
const bigOCPattern = `
	.data
ptrs:
	.word x0, x1, x0, x0, x1, x0, x1, x1
x0:
	.word 0
x1:
	.word 0
	.text
main:
	li $t0, 20000      # outer iterations
outer:
	la $t1, ptrs
	li $t2, 8          # 8 pointers per sweep
inner:
	lw $t3, 0($t1)     # ptr = a[i]
	lw $t4, 0($t3)     # x[ptr]
	addi $t4, $t4, 1
	sw $t4, 0($t3)     # x[ptr]++
	addi $t1, $t1, 4
	addi $t2, $t2, -1
	bnez $t2, inner
	addi $t0, $t0, -1
	bnez $t0, outer
	halt
`

// TestCycleLoopDoesNotAllocate is the allocation-regression guard for the
// tentpole of the perf overhaul: after warmup, one simulated cycle must
// perform zero heap allocations. The workload mixes ALU ops, branches,
// loads, stores, cloaking, predication, retire-time verification and the
// occasional dependence-exception flush, so every stage of the steady
// loop is exercised.
func TestCycleLoopDoesNotAllocate(t *testing.T) {
	tr := traceOf(t, bigOCPattern, 400_000)
	for _, m := range []config.Model{config.Baseline, config.NoSQ, config.DMDP} {
		cfg := config.Default(m)
		c, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		window := cfg.Watchdog.NoRetireWindow
		if window <= 0 {
			window = config.DefaultNoRetireWindow
		}
		// Warm up: fill the pools, grow the scratch slices and heaps to
		// their steady capacity.
		for i := 0; i < 30_000 && !c.done; i++ {
			c.step(window, 0)
		}
		if c.done {
			t.Fatalf("%s: trace too short: simulation finished during warmup", m)
		}
		avg := testing.AllocsPerRun(5_000, func() {
			c.step(window, 0)
		})
		if c.done || c.simErr != nil {
			t.Fatalf("%s: simulation ended during measurement (err=%v)", m, c.simErr)
		}
		if avg != 0 {
			t.Errorf("%s: steady-state cycle loop allocates %.3f objects/cycle, want 0", m, avg)
		}
	}
}
