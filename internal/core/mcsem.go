package core

import (
	"fmt"

	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// The semantic coupling layer. The timing cores replay isolated
// per-thread traces, so their register values are the isolated-world
// ones; under a real interleaving a load may legally observe another
// core's store instead. This layer maintains the true concurrent
// architectural state — per-core register files, a globally ordered
// shared memory with per-word version history, and per-core semantic
// store buffers under TSO — and executes every retiring instruction
// through the shared emu.Exec interpreter.
//
// Load value rule (the machine's consistency enforcement, checked by
// the litmus harness):
//
//   - re-executed at retire (SVW forced a reload with the store buffer
//     drained), or store-sourced (cloaked / predication-selected /
//     forwarded): read the globally visible state at retirement, with
//     own-store-buffer forwarding under TSO. Sound: an intervening
//     remote write would have stamped the T-SSBF sentinel and forced
//     the re-execution case.
//   - cache-sourced and not re-executed: the timing core kept an early
//     cache sample from cycle ValueAt. If no remote write became
//     visible since, reading at retirement is byte-identical and the
//     sample is vacuously consistent. If one did, the retire-time
//     backstop re-reads (EnforcedReads) — unless the build is
//     weakened, in which case the stale sample is reconstructed from
//     the version history as of the sample cycle and kept
//     (StaleReadsKept): the ordering bug the checker must catch.
//
// Every load therefore linearizes at its retirement in the enforced
// build, which keeps all outcomes inside the I2E-allowed set; the
// weakened build re-creates the classic store-buffer reorderings.

type semStore struct {
	addr, size, val uint32
}

type wordVersion struct {
	g   int64 // global cycle the version became visible (-1 = initial)
	val uint32
}

// wordHist is the append-only version history of one aligned word of
// globally visible memory.
type wordHist struct {
	versions []wordVersion
}

func (h *wordHist) last() wordVersion { return h.versions[len(h.versions)-1] }

// asOf returns the word value visible at global cycle g (versions are
// appended in increasing g; the initial version has g = -1).
func (h *wordHist) asOf(g int64) uint32 {
	lo, hi := 0, len(h.versions)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if h.versions[mid].g <= g {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return h.versions[lo].val
}

func sizeMask(size uint32) uint32 {
	if size >= 4 {
		return 0xffffffff
	}
	return 1<<(8*size) - 1
}

// overlayWord writes the low size bytes of val into old at byte offset
// off (little-endian, matching mem.Image).
func overlayWord(old uint32, off, size, val uint32) uint32 {
	m := sizeMask(size) << (8 * off)
	return old&^m | (val&sizeMask(size))<<(8*off)
}

type mcSem struct {
	m      *Machine
	regs   [][isa.NumArchRegs]uint32
	pc     []uint32
	halted []bool

	shmem *mem.Image            // current globally visible bytes
	hist  map[uint32]*wordHist  // word addr -> version history
	sbs   [][]semStore          // per-core semantic store buffers (TSO)

	// divergence records a desync detected inside a memory callback
	// (which cannot return an error); retire surfaces it as a veto.
	divergence string
	// err records a desync detected at drain time (outside any
	// retirement); Machine.Run surfaces it.
	err error
}

func newMCSem(m *Machine, traces []*trace.Trace) (*mcSem, error) {
	s := &mcSem{
		m:      m,
		regs:   make([][isa.NumArchRegs]uint32, len(traces)),
		pc:     make([]uint32, len(traces)),
		halted: make([]bool, len(traces)),
		hist:   make(map[uint32]*wordHist),
		sbs:    make([][]semStore, len(traces)),
	}
	for i, tr := range traces {
		if tr.Prog == nil || tr.InitMem == nil {
			return nil, fmt.Errorf("machine: semantics need program and initial memory (core %d)", i)
		}
		s.regs[i][isa.SP] = emu.StackTop
		s.regs[i][isa.GP] = tr.Prog.DataBase
		s.pc[i] = tr.Prog.Entry
	}
	// All threads run the same program image (different entry points),
	// so any core's initial memory is the shared initial state.
	s.shmem = traces[0].InitMem.Clone()
	return s, nil
}

// retire executes core i's retiring instruction against the semantic
// state. A non-nil error vetoes the retirement (ErrLockstep).
func (s *mcSem) retire(i int, rec CommitRecord) error {
	if s.halted[i] {
		return fmt.Errorf("semantic: core %d retired past HALT", i)
	}
	if rec.PC != s.pc[i] {
		return fmt.Errorf("semantic: core %d PC desync: retired 0x%08x, semantic 0x%08x (interleaving-dependent control flow?)", i, rec.PC, s.pc[i])
	}
	s.divergence = ""
	ent, err := emu.Exec(rec.Instr, rec.PC, &s.regs[i],
		func(addr, size uint32) uint32 { return s.loadValue(i, &rec, addr, size) },
		func(addr, size, val uint32) { s.storeEffect(i, &rec, addr, size, val) })
	if err != nil {
		return fmt.Errorf("semantic: core %d: %v", i, err)
	}
	if s.divergence != "" {
		return fmt.Errorf("semantic: core %d: %s", i, s.divergence)
	}
	s.pc[i] = ent.Target
	if rec.Instr.Op == isa.OpHALT {
		s.halted[i] = true
	}
	return nil
}

// loadValue resolves a memory read for core i per the load value rule.
// It also serves the silent-store probe emu.Exec issues before a store
// (rec.IsStore), which simply reads the current visible state.
func (s *mcSem) loadValue(i int, rec *CommitRecord, addr, size uint32) uint32 {
	if rec.IsLoad {
		if addr != rec.Addr {
			s.divergence = fmt.Sprintf("load address desync at pc 0x%08x: semantic 0x%08x, trace 0x%08x (shared data flowed into an address?)", rec.PC, addr, rec.Addr)
			return 0
		}
		if !rec.Reexecuted && rec.FromCache {
			sampleG := s.m.globalOf(i, rec.ValueAt)
			if s.writtenAfter(addr, sampleG) {
				if s.m.cfg.Weaken {
					s.m.stats.StaleReadsKept++
					return s.readAsOf(addr, size, sampleG)
				}
				s.m.stats.EnforcedReads++
			}
		}
	}
	return s.readNow(i, addr, size)
}

// storeEffect applies a retiring store: immediate global visibility
// under SC, semantic store-buffer entry under TSO (published at the
// timing drain).
func (s *mcSem) storeEffect(i int, rec *CommitRecord, addr, size, val uint32) {
	if addr != rec.Addr || size != uint32(rec.Size) {
		s.divergence = fmt.Sprintf("store address desync at pc 0x%08x: semantic 0x%08x/%d, trace 0x%08x/%d", rec.PC, addr, size, rec.Addr, rec.Size)
		return
	}
	if s.m.cfg.MemModel == MemSC {
		s.publish(i, addr, size, val)
		return
	}
	s.sbs[i] = append(s.sbs[i], semStore{addr: addr, size: size, val: val})
}

// drain publishes the semantic store matching the timing store-buffer
// entry that just became visible (TSO FIFO order: the heads match).
func (s *mcSem) drain(i int, e *sbEntry) {
	sb := s.sbs[i]
	if len(sb) == 0 || sb[0].addr != e.addr || sb[0].size != e.size {
		if s.err == nil {
			s.err = fmt.Errorf("semantic: core %d drain desync at addr 0x%08x (semantic buffer %d entries)", i, e.addr, len(sb))
		}
		return
	}
	st := sb[0]
	s.sbs[i] = sb[1:]
	s.publish(i, st.addr, st.size, st.val)
}

// publish makes a store globally visible at the current global cycle:
// version history, current image, and remote invalidation delivery.
func (s *mcSem) publish(i int, addr, size, val uint32) {
	word := addr &^ 3
	h := s.hist[word]
	if h == nil {
		h = &wordHist{versions: []wordVersion{{g: -1, val: s.shmem.Word(word)}}}
		s.hist[word] = h
	}
	h.versions = append(h.versions, wordVersion{g: s.m.g, val: overlayWord(h.last().val, addr&3, size, val)})
	s.shmem.Write(addr, size, val)
	s.m.remoteInvalidate(i, addr)
}

// writtenAfter reports whether the word containing addr was globally
// written after cycle g (word-granular: a neighbouring-byte write in
// the same word counts, which is conservative and always sound — the
// backstop re-read it triggers is a legal linearization).
func (s *mcSem) writtenAfter(addr uint32, g int64) bool {
	h := s.hist[addr&^3]
	return h != nil && h.last().g > g
}

// readNow composes the value visible to core i right now: own semantic
// store buffer first (youngest entry per byte, TSO forwarding), then
// the globally visible image.
func (s *mcSem) readNow(i int, addr, size uint32) uint32 {
	var v uint32
	for b := uint32(0); b < size; b++ {
		v |= uint32(s.byteNow(i, addr+b)) << (8 * b)
	}
	return v
}

func (s *mcSem) byteNow(i int, a uint32) byte {
	sb := s.sbs[i]
	for k := len(sb) - 1; k >= 0; k-- {
		e := &sb[k]
		if a >= e.addr && a < e.addr+e.size {
			return byte(e.val >> (8 * (a - e.addr)))
		}
	}
	return s.shmem.Byte(a)
}

// readAsOf reconstructs the globally visible value at cycle g from the
// version history (weakened build: the stale early sample).
func (s *mcSem) readAsOf(addr, size uint32, g int64) uint32 {
	word := addr &^ 3
	wv := s.shmem.Word(word)
	if h := s.hist[word]; h != nil {
		wv = h.asOf(g)
	}
	return (wv >> (8 * (addr & 3))) & sizeMask(size)
}

// ---------- machine-level semantic accessors ----------

// FinalRegs returns core i's semantic architectural register file
// (valid after Run; requires semantics).
func (m *Machine) FinalRegs(i int) [isa.NumArchRegs]uint32 {
	return m.sem.regs[i]
}

// ReadShared reads the globally visible memory (valid after Run, when
// every store has been published; requires semantics).
func (m *Machine) ReadShared(addr, size uint32) uint32 {
	return m.sem.shmem.Read(addr, size)
}

// SemanticsAttached reports whether the semantic layer is active.
func (m *Machine) SemanticsAttached() bool { return m.sem != nil }
