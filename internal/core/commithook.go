package core

import (
	"dmdp/internal/isa"
	"dmdp/internal/mem"
)

// This file is the core's commit-stream tap: an external observer (the
// difftest lockstep harness) can watch every retiring instruction and
// veto it. The hook fires after the retire log is updated and — crucially
// — after fault injection has had its chance to corrupt the value, but
// before the built-in oracle runs, so an attached observer is the first
// line of defense and sees exactly what the machine is about to commit.

// CommitRecord is one retiring instruction as seen by the commit stream.
// For loads, Value is the value the timing core actually obtained
// (speculatively, via whichever communication mechanism the model used);
// for stores it is the data value entering the store buffer. Addr and
// Size are meaningful only when IsLoad or IsStore is set.
type CommitRecord struct {
	Idx     int   // trace index of the retiring instruction
	Seq     int64 // dynamic sequence number (monotone across squashes)
	Retired int64 // 1-based retirement count including this instruction
	PC      uint32
	Instr   isa.Instr
	IsLoad  bool
	IsStore bool
	Addr    uint32
	Size    uint8
	Value   uint32

	// Load provenance (multicore semantic coupling): the cycle the value
	// was obtained, whether the retire-stage SVW check forced a
	// re-execution (so Value was re-read with the store buffer drained),
	// and whether the value came from the cache (vs an in-flight store).
	ValueAt    int64
	Reexecuted bool
	FromCache  bool
}

// CommitHook observes a retiring instruction. A non-nil error vetoes the
// retirement: the core raises a structured ErrLockstep SimError carrying
// the full diagnostic bundle and stops the simulation.
type CommitHook func(CommitRecord) error

// AttachCommitHook registers fn as the commit-stream observer. Call
// before Run; only one hook is supported (later calls replace earlier
// ones).
func (c *Core) AttachCommitHook(fn CommitHook) { c.commitHook = fn }

// notifyCommit builds the CommitRecord for a retiring instruction and
// runs the attached hook. Called from retireCommon after recordRetire.
func (c *Core) notifyCommit(in *inst) {
	if c.commitHook == nil || c.simErr != nil {
		return
	}
	e := in.e
	rec := CommitRecord{
		Idx:     in.idx,
		Seq:     in.seq,
		Retired: c.retired,
		PC:      e.PC,
		Instr:   e.Instr,
	}
	switch {
	case in.isLoad():
		rec.IsLoad = true
		rec.Addr, rec.Size, rec.Value = e.Addr, e.Size, in.gotValue
		rec.ValueAt = in.valueAt
		rec.Reexecuted = in.didReexec
		rec.FromCache = in.readCache
	case in.isStore():
		rec.IsStore = true
		rec.Addr, rec.Size, rec.Value = e.Addr, e.Size, e.Value
	}
	if err := c.commitHook(rec); err != nil {
		got, want := rec.Value, e.Value
		c.fail(&SimError{
			Kind: ErrLockstep, Idx: in.idx, PC: e.PC, Disasm: e.Instr.String(),
			Got: got, Want: want,
			Msg: "lockstep: " + err.Error(),
		})
	}
}

// CommittedImage returns a snapshot of architectural memory as of the
// retire stream: the committed image plus any stores still pending in
// the store buffer (the core can finish with an undrained SB; retired
// stores are architecturally committed even before their bytes land).
// Pending entries are applied in retirement order, which matches program
// order for same-word writes under both TSO and RMO drain policies.
func (c *Core) CommittedImage() *mem.Image {
	img := c.image.Clone()
	for i := range c.sb.entries {
		e := &c.sb.entries[i]
		img.Write(e.addr, e.size, e.value)
	}
	return img
}
