package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/trace"
)

// threadTraces assembles a single multi-thread source (entry labels
// thread0:, thread1:, ...) and collects one isolated trace per thread.
func threadTraces(t *testing.T, src string, n int, max int64) []*trace.Trace {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	trs := make([]*trace.Trace, n)
	for i := 0; i < n; i++ {
		sym := fmt.Sprintf("thread%d", i)
		e, ok := p.Symbols[sym]
		if !ok {
			t.Fatalf("no %s label", sym)
		}
		tp := *p
		tp.Entry = e
		tr, err := emu.Run(&tp, max)
		if err != nil {
			t.Fatalf("emulate %s: %v", sym, err)
		}
		if !tr.HitHalt {
			t.Fatalf("%s did not halt", sym)
		}
		trs[i] = tr
	}
	return trs
}

func runMachine(t *testing.T, cfg MachineConfig, trs []*trace.Trace) (*Machine, *MachineStats) {
	t.Helper()
	m, err := NewMachine(cfg, trs)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("machine run: %v", err)
	}
	return m, st
}

// Store-buffering litmus (SB): the canonical SC-vs-TSO discriminator.
// Each thread warms only the line it loads (so the racing load hits
// near issue) and leaves its own store line cold: under TSO the store
// then drains slowly after retirement, which is exactly the window the
// legal r1=r2=0 reordering needs.
const sbSource = `
	.data
	.align 6
sbX:	.word 0
	.align 6
sbY:	.word 0
	.text
thread0:
	la $t1, sbX
	la $t2, sbY
	lw $t4, 0($t2)
	li $t0, 1
	sw $t0, 0($t1)
	lw $t3, 0($t2)
	halt
thread1:
	la $t1, sbY
	la $t2, sbX
	lw $t4, 0($t2)
	li $t0, 1
	sw $t0, 0($t1)
	lw $t3, 0($t2)
	halt
`

// SB with a widened speculation window: a cold private-line load sits
// between warming and the race, so the racing load (an L1 hit, issued
// out of order) samples its value ~a hundred cycles before it can
// retire. The enforced machine re-reads at retire; the weakened one
// keeps the stale sample — this shape is the seeded-bug detector.
const sbWindowSource = `
	.data
	.align 6
sbX:	.word 0
	.align 6
sbY:	.word 0
	.align 6
priv0:	.word 0
	.align 6
priv1:	.word 0
	.text
thread0:
	la $t1, sbX
	la $t2, sbY
	la $t5, priv0
	lw $t4, 0($t2)      # warm y (cold miss)
	li $t7, 200         # delay: let the warming miss settle in the L1
d0:	addi $t7, $t7, -1
	bnez $t7, d0
	li $t0, 1
	lw $t6, 0($t5)      # cold private miss: delays the retire burst
	sw $t0, 0($t1)
	lw $t3, 0($t2)      # racing load: L1 hit, samples far before retire
	halt
thread1:
	la $t1, sbY
	la $t2, sbX
	la $t5, priv1
	lw $t4, 0($t2)
	li $t7, 200
d1:	addi $t7, $t7, -1
	bnez $t7, d1
	li $t0, 1
	lw $t6, 0($t5)
	sw $t0, 0($t1)
	lw $t3, 0($t2)
	halt
`

// Message-passing litmus (MP): data then flag; the observer must not
// see the flag without the data under SC or TSO.
const mpSource = `
	.data
	.align 6
mpData:	.word 0
	.align 6
mpFlag:	.word 0
	.text
thread0:
	la $t1, mpData
	la $t2, mpFlag
	li $t0, 1
	sw $t0, 0($t1)
	sw $t0, 0($t2)
	halt
thread1:
	la $t1, mpFlag
	la $t2, mpData
	lw $t4, 0($t1)
	lw $t4, 0($t2)
	lw $t3, 0($t1)
	lw $t4, 0($t2)
	halt
`

func sbMachineConfig(model config.Model, mm MemModel, seed uint64) MachineConfig {
	cfg := DefaultMachineConfig(2, model, mm)
	cfg.Seed = seed
	cfg.MaxGlobalCycles = 2_000_000
	return cfg
}

// sbOutcome runs an SB-shaped source and returns (r1, r2) = ($t3 on
// core 0, $t3 on core 1).
func sbOutcome(t *testing.T, src string, model config.Model, mm MemModel, seed uint64, weaken bool) (uint32, uint32) {
	t.Helper()
	trs := threadTraces(t, src, 2, 1000)
	cfg := sbMachineConfig(model, mm, seed)
	cfg.Weaken = weaken
	m, _ := runMachine(t, cfg, trs)
	return m.FinalRegs(0)[isa.T0+3], m.FinalRegs(1)[isa.T0+3]
}

// TestMachineSingleCoreSemantics anchors the semantic layer: a 1-core
// machine must reproduce exactly the isolated emulator's architectural
// state (registers and memory), since there is nobody to race with.
func TestMachineSingleCoreSemantics(t *testing.T) {
	tr := traceOf(t, ocPattern, 100000)
	for _, mm := range []MemModel{MemSC, MemTSO} {
		cfg := DefaultMachineConfig(1, config.DMDP, mm)
		cfg.Seed = 7
		cfg.MaxGlobalCycles = 5_000_000
		m, st := runMachine(t, cfg, []*trace.Trace{tr})
		if st.Instructions != int64(len(tr.Entries)) {
			t.Fatalf("%v: retired %d of %d", mm, st.Instructions, len(tr.Entries))
		}
		// Reference: run the emulator to completion.
		e := emu.New(tr.Prog)
		for !e.Halted() {
			if _, err := e.Step(); err != nil {
				t.Fatalf("emu: %v", err)
			}
		}
		if got := m.FinalRegs(0); got != e.Regs {
			t.Fatalf("%v: semantic registers diverge from emulator:\n got %v\nwant %v", mm, got, e.Regs)
		}
		for _, sym := range []string{"x0", "x1"} {
			a := tr.Prog.Symbols[sym]
			if got, want := m.ReadShared(a, 4), e.Mem.Read(a, 4); got != want {
				t.Fatalf("%v: %s: semantic memory %d, emulator %d", mm, sym, got, want)
			}
		}
		if st.StaleReadsKept != 0 {
			t.Fatalf("%v: single core kept %d stale reads", mm, st.StaleReadsKept)
		}
	}
}

// TestMachineDeterminism: identical (config, seed) must give
// byte-identical digests; the machine has no hidden nondeterminism —
// and no goroutines at all (the leak gate pins the lockstep loop as
// strictly single-threaded, so traces can be shared across machines).
func TestMachineDeterminism(t *testing.T) {
	before := runtime.NumGoroutine()
	defer func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	digest := func(seed uint64) string {
		trs := threadTraces(t, sbSource, 2, 1000)
		_, st := runMachine(t, sbMachineConfig(config.DMDP, MemTSO, seed), trs)
		return strings.Join(st.DigestLines(), "\n")
	}
	for _, seed := range []uint64{0, 1, 42} {
		if a, b := digest(seed), digest(seed); a != b {
			t.Fatalf("seed %d: two runs differ:\n%s\n----\n%s", seed, a, b)
		}
	}
}

// TestMachineSBNeverWeakUnderSC: under the enforced SC machine, the
// non-SC outcome r1=r2=0 must never appear, for any model or seed.
func TestMachineSBNeverWeakUnderSC(t *testing.T) {
	for _, model := range []config.Model{config.Baseline, config.DMDP} {
		for _, src := range []string{sbSource, sbWindowSource} {
			for seed := uint64(0); seed < 15; seed++ {
				r1, r2 := sbOutcome(t, src, model, MemSC, seed, false)
				if r1 == 0 && r2 == 0 {
					t.Fatalf("%s seed %d: SB produced r1=0,r2=0 under enforced SC", model, seed)
				}
			}
		}
	}
}

// TestMachineSBWeakenedProducesViolation: the deliberately weakened
// build must let the stale-sample reordering through for at least one
// seed — this is the bug the litmus harness exists to catch.
func TestMachineSBWeakenedProducesViolation(t *testing.T) {
	trs := threadTraces(t, sbWindowSource, 2, 1000)
	for seed := uint64(0); seed < 200; seed++ {
		cfg := sbMachineConfig(config.DMDP, MemSC, seed)
		cfg.Weaken = true
		cfg.MaxStagger = 256 // cross-core DRAM contention skews starts by ~100 cycles
		m, _ := runMachine(t, cfg, trs)
		if m.FinalRegs(0)[isa.T0+3] == 0 && m.FinalRegs(1)[isa.T0+3] == 0 {
			return
		}
	}
	t.Fatal("weakened SC machine never produced SB r1=0,r2=0 in 200 seeds")
}

// TestMachineSBWeakOutcomeUnderTSO: under TSO the r1=r2=0 outcome is
// legal (both stores sit in store buffers past both loads) and the
// machine should actually exhibit it.
func TestMachineSBWeakOutcomeUnderTSO(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		if r1, r2 := sbOutcome(t, sbSource, config.DMDP, MemTSO, seed, false); r1 == 0 && r2 == 0 {
			return
		}
	}
	t.Fatal("TSO machine never exhibited the legal SB r1=0,r2=0 outcome in 200 seeds")
}

// TestMachineMPUnderSCAndTSO: message passing must hold under both
// enforced models: flag observed ⇒ data observed.
func TestMachineMPUnderSCAndTSO(t *testing.T) {
	trs := threadTraces(t, mpSource, 2, 1000)
	for _, mm := range []MemModel{MemSC, MemTSO} {
		for seed := uint64(0); seed < 25; seed++ {
			cfg := sbMachineConfig(config.DMDP, mm, seed)
			m, _ := runMachine(t, cfg, trs)
			flag := m.FinalRegs(1)[isa.T0+3]
			data := m.FinalRegs(1)[isa.T0+4]
			if flag == 1 && data == 0 {
				t.Fatalf("%v seed %d: MP observed flag without data", mm, seed)
			}
		}
	}
}

// TestMachineStatsTraffic: cross-core stores must generate remote
// invalidations and (non-weakened) T-SSBF stamps, and the digest must
// mention them — the counters are the litmus suite's observability.
func TestMachineStatsTraffic(t *testing.T) {
	trs := threadTraces(t, sbSource, 2, 1000)
	_, st := runMachine(t, sbMachineConfig(config.DMDP, MemTSO, 3), trs)
	if st.RemoteInvalidations == 0 {
		t.Error("no remote invalidations despite cross-core stores")
	}
	if st.RemoteStamps == 0 {
		t.Error("no T-SSBF sentinel stamps despite cross-core stores")
	}
	if st.DrainEvents == 0 {
		t.Error("no drain events under TSO")
	}
	if st.IPC() <= 0 {
		t.Error("non-positive machine IPC")
	}
	if len(st.DigestLines()) != 2+len(st.PerCore) {
		t.Errorf("digest shape: %d lines for %d cores", len(st.DigestLines()), len(st.PerCore))
	}
}

// TestMachineRejectsBadConfig: core-count/trace-count mismatch and
// non-TSO per-core drain policies are configuration errors.
func TestMachineRejectsBadConfig(t *testing.T) {
	trs := threadTraces(t, sbSource, 2, 1000)
	cfg := sbMachineConfig(config.DMDP, MemSC, 0)
	if _, err := NewMachine(cfg, trs[:1]); err == nil {
		t.Error("accepted 2-core config with 1 trace")
	}
	bad := cfg
	bad.Core.Consistency = config.RMO
	if _, err := NewMachine(bad, trs); err == nil {
		t.Error("accepted RMO per-core consistency")
	}
}
