package core

import (
	"fmt"
	"io"
	"strings"
)

// StageTimes records one retired instruction's flow through the pipeline
// (cycle numbers), for the pipeline-view debugging tool.
type StageTimes struct {
	Idx      int
	PC       uint32
	Disasm   string
	Renamed  int64
	Complete int64
	Retired  int64
	// ValueAt is when a load's result became available (0 for others).
	ValueAt int64
	IsLoad  bool
	Cat     LoadCategory
	Uops    int
	// Squashes counts how many times this trace index was flushed and
	// refetched before retiring.
	Squashes int
}

// PipeTracer collects StageTimes for the first Max retired instructions.
type PipeTracer struct {
	Max      int
	Records  []StageTimes
	squashes map[int]int
}

// AttachTracer enables pipeline tracing for the first max retired
// instructions. Must be called before Run.
func (c *Core) AttachTracer(max int) *PipeTracer {
	c.tracer = &PipeTracer{Max: max, squashes: make(map[int]int)}
	return c.tracer
}

func (p *PipeTracer) onRetire(in *inst, now int64) {
	if len(p.Records) >= p.Max {
		return
	}
	p.Records = append(p.Records, StageTimes{
		Idx:      in.idx,
		PC:       in.e.PC,
		Disasm:   in.e.Instr.String(),
		Renamed:  in.renamedAt,
		Complete: in.completedAt,
		Retired:  now,
		ValueAt:  in.valueAt,
		IsLoad:   in.isLoad(),
		Cat:      in.cat,
		Uops:     len(in.uops),
		Squashes: p.squashes[in.idx],
	})
}

func (p *PipeTracer) onSquash(idx int) {
	if p.squashes != nil {
		p.squashes[idx]++
	}
}

// Render writes a textual pipeline view: one line per instruction with a
// scaled R(ename)...C(omplete)...X(retire) timeline.
func (p *PipeTracer) Render(w io.Writer) {
	if len(p.Records) == 0 {
		fmt.Fprintln(w, "pipeview: no records")
		return
	}
	base := p.Records[0].Renamed
	const cols = 64
	span := p.Records[len(p.Records)-1].Retired - base + 1
	if span < 1 {
		span = 1
	}
	scale := func(cyc int64) int {
		pos := int((cyc - base) * cols / span)
		if pos < 0 {
			pos = 0
		}
		if pos >= cols {
			pos = cols - 1
		}
		return pos
	}
	fmt.Fprintf(w, "pipeview: %d instructions, cycles %d..%d (R=rename C=complete X=retire, %d cycles/col)\n",
		len(p.Records), base, p.Records[len(p.Records)-1].Retired, span/cols+1)
	for _, r := range p.Records {
		line := []byte(strings.Repeat(".", cols))
		rp, cp, xp := scale(r.Renamed), scale(r.Complete), scale(r.Retired)
		for i := rp; i <= xp && i < cols; i++ {
			line[i] = '-'
		}
		line[rp] = 'R'
		line[cp] = 'C'
		line[xp] = 'X'
		note := ""
		if r.IsLoad {
			note = r.Cat.String()
		}
		if r.Squashes > 0 {
			note += fmt.Sprintf(" squashed x%d", r.Squashes)
		}
		fmt.Fprintf(w, "%6d %08x %-24s |%s| %s\n", r.Idx, r.PC, clip(r.Disasm, 24), line, note)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
