package core

import (
	"fmt"
	"time"

	"dmdp/internal/cache"
	"dmdp/internal/config"
	"dmdp/internal/dram"
	"dmdp/internal/faults"
	"dmdp/internal/trace"
)

// This file is the multicore machine: N timing cores stepped in global
// lockstep over a shared coherent L2, with cross-core store visibility
// delivered as remote line invalidations plus T-SSBF sentinel stamps
// (the paper's §IV-F plumbing made real instead of synthetic). Each
// core's DMDP machinery — T-SSBF, SDP, cloaking, predication, retire
// re-execution — stays private; the machine only couples the cores at
// the two consistency-relevant points: store visibility (retire under
// SC, store-buffer drain under TSO) and load value resolution at retire
// (the semantic coupling layer in mcsem.go).
//
// The cores remain trace-driven: each replays its thread's isolated
// trace, so all intra-core speculation checks stay valid. Concurrent
// semantics (what value a load really sees under this interleaving) are
// computed by the semantic layer at the retire boundary, which is sound
// because litmus programs keep addresses and control flow independent
// of shared data (the machine verifies this and fails otherwise).

// MemModel selects the consistency contract the machine enforces and
// the litmus checker verifies against the I2E reference.
type MemModel int

const (
	// MemSC: sequential consistency. Stores become globally visible at
	// retirement; every load effectively reads at retirement.
	MemSC MemModel = iota
	// MemTSO: total store order. Stores become globally visible when the
	// timing store buffer drains them (FIFO), and loads may forward from
	// the core's own pending stores.
	MemTSO
)

func (m MemModel) String() string {
	if m == MemTSO {
		return "tso"
	}
	return "sc"
}

// ParseMemModel parses "sc" or "tso".
func ParseMemModel(s string) (MemModel, error) {
	switch s {
	case "sc":
		return MemSC, nil
	case "tso":
		return MemTSO, nil
	}
	return 0, fmt.Errorf("unknown memory model %q (want sc or tso)", s)
}

// MachineConfig describes a multicore machine.
type MachineConfig struct {
	Cores int
	// Core is the per-core timing configuration. The machine forces
	// DisableFastForward (lockstep stepping needs every core on the same
	// global clock), clears fault injection and the synthetic
	// invalidation interval (real cross-core traffic replaces it), and
	// requires TSO store-buffer draining.
	Core config.Config
	// MemModel selects the store-visibility point and the contract the
	// semantic layer enforces.
	MemModel MemModel
	// Seed drives the interleaving: per-core start stagger and per-cycle
	// stall jitter are drawn from per-core splitmix64 streams.
	Seed uint64
	// StallProb is the per-core per-cycle probability of skipping the
	// cycle (interleaving diversity). Zero disables jitter.
	StallProb float64
	// MaxStagger bounds the per-core start offset drawn from the seed.
	MaxStagger int64
	// Semantics attaches the semantic coupling layer: per-core
	// architectural register files and a globally ordered memory whose
	// values are resolved at retire. Off = timing-only (IPC studies);
	// cross-core invalidations still fire at store drain.
	Semantics bool
	// Weaken disables the enforcement: remote stores no longer stamp the
	// T-SSBF sentinel, and the retire-time backstop re-read is skipped,
	// so stale early cache samples survive to the architectural state.
	// This is the deliberately broken build the litmus checker must
	// catch (SB r1=r2=0 under SC and friends).
	Weaken bool
	// SharedL2 points every core's hierarchy at one shared L2 and DRAM.
	SharedL2 bool
	// MaxGlobalCycles bounds the global clock (0 = rely on the per-core
	// watchdogs only).
	MaxGlobalCycles int64
}

// DefaultMachineConfig returns an n-core machine over the given per-core
// model with litmus-grade defaults: semantics on, shared L2, moderate
// interleaving jitter.
func DefaultMachineConfig(n int, model config.Model, mm MemModel) MachineConfig {
	return MachineConfig{
		Cores:      n,
		Core:       config.Default(model),
		MemModel:   mm,
		StallProb:  0.2,
		MaxStagger: 32,
		Semantics:  true,
		SharedL2:   true,
	}
}

// MachineStats aggregates a multicore run. Machine-level counters live
// here, deliberately outside core.Stats (whose canonical codec and
// golden digests are frozen).
type MachineStats struct {
	GlobalCycles int64
	Instructions int64 // retired, summed over cores

	// Cross-core visibility traffic.
	DrainEvents         int64 // store-buffer entries drained (all cores)
	RemoteInvalidations int64 // line invalidations delivered to remote L1s
	RemoteStamps        int64 // T-SSBF sentinel stampings delivered

	// Enforcement outcomes for non-re-executed cache-sourced loads whose
	// word was globally written after their sample cycle: the backstop
	// re-read them at retire (enforced) or — weakened build — the stale
	// sample was kept.
	EnforcedReads  int64
	StaleReadsKept int64

	PerCore        []Stats
	SimWallClockNS int64
}

// IPC returns aggregate retired instructions per global cycle.
func (s *MachineStats) IPC() float64 {
	if s.GlobalCycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.GlobalCycles)
}

// DigestLines renders the machine counters in a fixed order (no map
// iteration anywhere: the lines are byte-identical across runs and -j
// widths for identical inputs).
func (s *MachineStats) DigestLines() []string {
	lines := []string{
		fmt.Sprintf("machine cycles=%d instructions=%d ipc=%.4f", s.GlobalCycles, s.Instructions, s.IPC()),
		fmt.Sprintf("machine drains=%d rinval=%d rstamps=%d enforced=%d stale=%d",
			s.DrainEvents, s.RemoteInvalidations, s.RemoteStamps, s.EnforcedReads, s.StaleReadsKept),
	}
	for i := range s.PerCore {
		c := &s.PerCore[i]
		lines = append(lines, fmt.Sprintf("core%d cycles=%d instructions=%d reexecs=%d invals=%d",
			i, c.Cycles, c.Instructions, c.Reexecs, c.Invalidations))
	}
	return lines
}

// mcRand is a splitmix64 stream (stable across Go versions, one stream
// per core so jitter decisions never shift between cores).
type mcRand struct{ s uint64 }

func (r *mcRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *mcRand) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

func (r *mcRand) chance(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}

// Machine runs N cores in global lockstep.
type Machine struct {
	cfg   MachineConfig
	cores []*Core
	sem   *mcSem // nil when cfg.Semantics is off

	g       int64 // global cycle
	rngs    []mcRand
	stagger []int64
	// l2g maps each core's local cycle L (1-based) to the global cycle it
	// executed on: l2g[i][L-1]. Only maintained with semantics attached.
	l2g [][]int64

	window int64 // per-core no-retire watchdog window
	stats  MachineStats
}

// NewMachine builds the machine over one isolated trace per core. With
// semantics attached, every trace must carry its program and initial
// memory, and all initial images must agree (same program, different
// entry points).
func NewMachine(cfg MachineConfig, traces []*trace.Trace) (*Machine, error) {
	if cfg.Cores < 1 || cfg.Cores != len(traces) {
		return nil, fmt.Errorf("machine: %d cores but %d traces", cfg.Cores, len(traces))
	}
	if cfg.Core.Consistency != config.TSO {
		return nil, fmt.Errorf("machine: per-core consistency must be TSO (in-order drain); got %v", cfg.Core.Consistency)
	}
	cc := cfg.Core
	cc.DisableFastForward = true
	cc.InvalidationInterval = 0
	cc.Faults = faults.Config{}

	m := &Machine{
		cfg:     cfg,
		cores:   make([]*Core, cfg.Cores),
		rngs:    make([]mcRand, cfg.Cores),
		stagger: make([]int64, cfg.Cores),
		window:  cc.Watchdog.NoRetireWindow,
	}
	if m.window <= 0 {
		m.window = config.DefaultNoRetireWindow
	}
	for i := range m.cores {
		c, err := New(cc, traces[i])
		if err != nil {
			return nil, fmt.Errorf("machine: core %d: %w", i, err)
		}
		m.cores[i] = c
	}
	if cfg.SharedL2 {
		l2 := cache.NewCache(cc.Hierarchy.L2)
		dr := dram.New(cc.Hierarchy.DRAM)
		for _, c := range m.cores {
			c.hier.L2 = l2
			c.hier.DRAM = dr
		}
	}
	// Per-core interleaving streams: seed mixed with the core index so
	// every (seed, core) pair is an independent splitmix sequence.
	for i := range m.rngs {
		m.rngs[i] = mcRand{s: cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))}
		if cfg.MaxStagger > 0 {
			m.stagger[i] = m.rngs[i].intn(cfg.MaxStagger + 1)
		}
	}
	if cfg.Semantics {
		sem, err := newMCSem(m, traces)
		if err != nil {
			return nil, err
		}
		m.sem = sem
		m.l2g = make([][]int64, cfg.Cores)
	}
	for i, c := range m.cores {
		i := i
		c.AttachCommitHook(func(rec CommitRecord) error { return m.onRetire(i, rec) })
		c.drainHook = func(e *sbEntry) { m.onDrain(i, e) }
	}
	return m, nil
}

// coreFinished reports whether core i has retired everything AND made
// all of its stores globally visible (timing store buffer drained and,
// under TSO semantics, the semantic buffer too). A halted core keeps
// being stepped until then so other cores observe its final stores.
func (m *Machine) coreFinished(i int) bool {
	c := m.cores[i]
	if len(c.tr.Entries) == 0 {
		return true
	}
	if !c.done || !c.sb.empty() {
		return false
	}
	return m.sem == nil || len(m.sem.sbs[i]) == 0
}

// Run steps all cores to completion and returns the machine statistics.
func (m *Machine) Run() (*MachineStats, error) {
	start := time.Now()
	for {
		alive := false
		for i := range m.cores {
			if !m.coreFinished(i) {
				alive = true
				break
			}
		}
		if !alive {
			break
		}
		m.g++
		if max := m.cfg.MaxGlobalCycles; max > 0 && m.g > max {
			return nil, &SimError{Kind: ErrWatchdog, Idx: -1,
				Msg: fmt.Sprintf("machine: global cycle budget %d exhausted", max)}
		}
		for i, c := range m.cores {
			if m.coreFinished(i) || m.g <= m.stagger[i] {
				continue
			}
			if m.cfg.StallProb > 0 && m.rngs[i].chance(m.cfg.StallProb) {
				continue
			}
			if m.l2g != nil {
				m.l2g[i] = append(m.l2g[i], m.g)
			}
			c.step(m.window, 0)
			if c.simErr != nil {
				return nil, fmt.Errorf("machine: core %d: %w", i, c.simErr)
			}
			if m.sem != nil && m.sem.err != nil {
				return nil, m.sem.err
			}
		}
	}
	m.stats.GlobalCycles = m.g
	m.stats.PerCore = make([]Stats, len(m.cores))
	for i, c := range m.cores {
		m.finalizeCore(c)
		m.stats.PerCore[i] = c.stats
		m.stats.Instructions += c.stats.Instructions
	}
	m.stats.SimWallClockNS = time.Since(start).Nanoseconds()
	return &m.stats, nil
}

// finalizeCore mirrors the stats finalization RunContext performs for a
// single-core run (the machine drives step directly, bypassing it).
func (m *Machine) finalizeCore(c *Core) {
	c.stats.Cycles = c.now - c.cycleBase
	c.stats.L1MissRate = c.hier.L1D.MissRate()
	c.stats.L2MissRate = c.hier.L2.MissRate()
	c.stats.L2Accesses = c.hier.L2.Accesses
	c.stats.DRAMAccesses = c.hier.DRAM.Reads + c.hier.DRAM.Writes
	c.stats.TLBAccesses = c.tlb.Accesses
}

// globalOf translates core i's local cycle to the global cycle it ran
// on. Local cycles are 1-based; out-of-range values clamp.
func (m *Machine) globalOf(i int, local int64) int64 {
	l := m.l2g[i]
	switch {
	case local <= 0 || len(l) == 0:
		return 0
	case local > int64(len(l)):
		return l[len(l)-1]
	default:
		return l[local-1]
	}
}

// onRetire is the commit-stream hook for core i: with semantics
// attached it executes the retiring instruction against the semantic
// architectural state (resolving the load value from the global memory
// order) and, under SC, publishes retiring stores immediately. A
// returned error vetoes the retirement (surfacing as ErrLockstep).
func (m *Machine) onRetire(i int, rec CommitRecord) error {
	if m.sem == nil {
		return nil
	}
	return m.sem.retire(i, rec)
}

// onDrain fires when core i's store buffer makes entry e's bytes
// visible: the TSO global visibility point. The semantic layer (if any)
// publishes the matching semantic store; in every mode the drained
// line is invalidated in all remote cores.
func (m *Machine) onDrain(i int, e *sbEntry) {
	m.stats.DrainEvents++
	if m.sem != nil {
		if m.cfg.MemModel == MemTSO {
			m.sem.drain(i, e)
		}
		// Under SC semantics the store was already published (and remote
		// cores invalidated) at retirement; the timing drain is only a
		// pipeline event.
		return
	}
	m.remoteInvalidate(i, e.addr)
}

// remoteInvalidate delivers the coherence consequence of core src
// writing addr: every other core's L1 drops the line and — unless the
// build is weakened — its T-SSBF records the invalidation sentinel so
// vulnerable in-flight loads re-execute at retire (paper §IV-F). With a
// shared L2 the line stays resident there (the write updates it); with
// private L2s both levels are dropped.
func (m *Machine) remoteInvalidate(src int, addr uint32) {
	for j, c := range m.cores {
		if j == src {
			continue
		}
		line := addr &^ uint32(c.hier.LineBytes()-1)
		if m.cfg.SharedL2 {
			c.hier.L1D.Invalidate(line)
		} else {
			c.hier.Invalidate(line)
		}
		m.stats.RemoteInvalidations++
		c.stats.Invalidations++
		if !m.cfg.Weaken && c.cfg.Model != config.Baseline {
			c.tssbf.InvalidateLine(line, c.hier.LineBytes())
			c.stats.TSSBFWrites += int64(c.hier.LineBytes() / 4)
			m.stats.RemoteStamps++
		}
	}
}
