package core

import (
	"errors"
	"fmt"
	"strings"
)

// This file is the diagnostic side of the hardening layer: every internal
// failure the core can detect — a commit-time oracle divergence, a
// watchdog expiry, a sequence-number desync, a register refcount
// underflow — surfaces as a *SimError carrying the cycle, the faulting
// instruction, the last retired instructions and a pipeline occupancy
// snapshot, instead of a bare panic or a one-line fmt.Errorf.

// ErrKind classifies a structured simulation failure.
type ErrKind string

// Failure classes.
const (
	// ErrOracle: a retiring instruction's architectural effects diverged
	// from the golden trace.
	ErrOracle ErrKind = "oracle"
	// ErrWatchdog: the cycle budget ran out or retirement stalled past
	// the no-retire window.
	ErrWatchdog ErrKind = "watchdog"
	// ErrDesync: an internal sequence number (SSN/LSN) or uop ordering
	// invariant broke.
	ErrDesync ErrKind = "desync"
	// ErrRefcount: a physical register reference counter went negative.
	ErrRefcount ErrKind = "refcount"
	// ErrLockstep: an external commit-stream observer (the difftest
	// lockstep harness) rejected a retiring instruction.
	ErrLockstep ErrKind = "lockstep"
	// ErrCanceled: the run's context was cancelled (per-job deadline or
	// caller shutdown) — a scheduling decision, not a simulator defect.
	// Runners must not negative-cache it: the same inputs can succeed
	// under a longer deadline.
	ErrCanceled ErrKind = "canceled"
)

// Canceled reports whether err is (or wraps) a cancellation SimError.
func Canceled(err error) bool {
	var se *SimError
	return errors.As(err, &se) && se.Kind == ErrCanceled
}

// retireLogCap is the depth of the retired-instruction ring buffer kept
// for diagnostics.
const retireLogCap = 16

// RetireRecord is one retired instruction remembered by the diagnostic
// ring buffer.
type RetireRecord struct {
	Cycle  int64
	Idx    int // trace index
	PC     uint32
	Disasm string
	Value  uint32 // load result / store data (meaningful when IsMem)
	IsMem  bool
}

// PipeSnapshot captures pipeline occupancy at the moment of a failure.
type PipeSnapshot struct {
	ROB          int
	ROBHead      string // head instruction summary ("empty" when drained)
	IQ           int
	Ready        int
	Delayed      int
	StoreBuffer  int
	FreeRegs     int
	FetchQueue   int
	FetchIdx     int
	FetchStalled bool
}

// SimError is a structured simulation failure. Error() is a one-line
// summary; Bundle() renders the full diagnostic (last retired
// instructions, pipeline occupancy) for CLIs and failure tables.
type SimError struct {
	Kind  ErrKind
	Msg   string
	Model string

	Cycle    int64
	Retired  int64 // instructions retired when the failure was raised
	TraceLen int   // total instructions in the trace

	// Faulting instruction (Idx < 0 when no single instruction is at
	// fault, e.g. a watchdog expiry).
	Idx    int
	PC     uint32
	Disasm string

	// Oracle divergence values (valid for ErrOracle).
	Got, Want uint32

	LastRetired []RetireRecord // oldest first, up to retireLogCap entries
	Pipeline    PipeSnapshot
}

func (e *SimError) Error() string {
	loc := ""
	if e.Idx >= 0 {
		loc = fmt.Sprintf(" at idx %d pc 0x%x (%s)", e.Idx, e.PC, e.Disasm)
	}
	return fmt.Sprintf("core: %s%s, cycle %d, model %s: %s", e.Kind, loc, e.Cycle, e.Model, e.Msg)
}

// Bundle renders the multi-line diagnostic.
func (e *SimError) Bundle() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== simulation error: %s ===\n", e.Kind)
	fmt.Fprintf(&b, "%s\n", e.Error())
	fmt.Fprintf(&b, "retired %d/%d instructions\n", e.Retired, e.TraceLen)
	if e.Kind == ErrOracle || e.Kind == ErrLockstep {
		fmt.Fprintf(&b, "divergence: got 0x%08x, want 0x%08x\n", e.Got, e.Want)
	}
	p := e.Pipeline
	fmt.Fprintf(&b, "pipeline: rob=%d head={%s} iq=%d ready=%d delayed=%d sb=%d freeregs=%d fq=%d fetchidx=%d stalled=%v\n",
		p.ROB, p.ROBHead, p.IQ, p.Ready, p.Delayed, p.StoreBuffer, p.FreeRegs, p.FetchQueue, p.FetchIdx, p.FetchStalled)
	if len(e.LastRetired) > 0 {
		fmt.Fprintf(&b, "last %d retired instructions (oldest first):\n", len(e.LastRetired))
		fmt.Fprintf(&b, "  %8s %8s %10s  %s\n", "cycle", "idx", "pc", "instr")
		for _, r := range e.LastRetired {
			val := ""
			if r.IsMem {
				val = fmt.Sprintf("  value=0x%08x", r.Value)
			}
			fmt.Fprintf(&b, "  %8d %8d 0x%08x  %s%s\n", r.Cycle, r.Idx, r.PC, r.Disasm, val)
		}
	}
	return b.String()
}

// fail records the run's first structured failure, stamping it with the
// current cycle, retirement progress, the retired-instruction ring and a
// pipeline snapshot, and stops the simulation. Later failures in the
// same (already doomed) cycle are dropped.
func (c *Core) fail(e *SimError) {
	if c.simErr != nil {
		return
	}
	e.Model = c.cfg.Model.String()
	e.Cycle = c.now
	e.Retired = c.retired
	e.TraceLen = len(c.tr.Entries)
	e.LastRetired = c.retireTail()
	e.Pipeline = c.snapshot()
	c.simErr = e
	c.done = true
}

// recordRetire appends in to the diagnostic ring buffer; call after
// c.retired has been incremented. The disassembly string is NOT built
// here — recordRetire runs once per retired instruction, so the ring
// only stores the trace index and retireTail materializes Disasm on the
// (cold) SimError path.
func (c *Core) recordRetire(in *inst) {
	r := RetireRecord{Cycle: c.now, Idx: in.idx, PC: in.e.PC}
	switch {
	case in.isLoad():
		r.Value, r.IsMem = in.gotValue, true
	case in.isStore():
		r.Value, r.IsMem = in.e.Value, true
	}
	c.retireLog[int((c.retired-1)%retireLogCap)] = r
}

// retireTail returns the ring buffer's contents oldest-first, filling in
// the lazily-built disassembly.
func (c *Core) retireTail() []RetireRecord {
	n := c.retired
	if n > retireLogCap {
		n = retireLogCap
	}
	out := make([]RetireRecord, 0, n)
	for i := c.retired - n; i < c.retired; i++ {
		r := c.retireLog[int(i%retireLogCap)]
		r.Disasm = c.tr.Entries[r.Idx].Instr.String()
		out = append(out, r)
	}
	return out
}

// snapshot captures current pipeline occupancy.
func (c *Core) snapshot() PipeSnapshot {
	head := "empty"
	if !c.rob.empty() {
		h := c.rob.front()
		head = fmt.Sprintf("idx=%d %s pending=%d", h.idx, h.e.Instr, h.pending)
	}
	return PipeSnapshot{
		ROB:          c.rob.len(),
		ROBHead:      head,
		IQ:           c.iqCount,
		Ready:        c.ready.Len(),
		Delayed:      len(c.delayed),
		StoreBuffer:  c.sb.len(),
		FreeRegs:     c.rf.freeCount(),
		FetchQueue:   c.fqLen,
		FetchIdx:     c.fetchIdx,
		FetchStalled: c.fetchStalled,
	}
}

// checkRefs surfaces a register refcount underflow recorded by the
// register file as a structured error attributed to the instruction
// whose release triggered it.
func (c *Core) checkRefs(idx int) {
	b := c.rf.badRef
	if b == nil {
		return
	}
	c.rf.badRef = nil
	e := &c.tr.Entries[idx]
	c.fail(&SimError{
		Kind: ErrRefcount, Idx: idx, PC: e.PC, Disasm: e.Instr.String(),
		Msg: fmt.Sprintf("negative refcount on p%d (producers %d, consumers %d)", b.p, b.producers, b.consumers),
	})
}

// oracleRetireCheck is the commit-time oracle: the retiring instruction's
// architectural effects must match the golden trace entry. Loads must
// retire the golden value, stores must carry the golden sequence number,
// taken control ops must have steered fetch to the golden target, and a
// retired destination must be architecturally mapped to a live register.
// Call after retireCommon has updated the ARAT and the retire log.
func (c *Core) oracleRetireCheck(in *inst) {
	if c.simErr != nil {
		return
	}
	e := in.e
	c.stats.OracleChecks++
	switch {
	case in.isLoad():
		if in.gotValue != e.Value {
			c.fail(&SimError{
				Kind: ErrOracle, Idx: in.idx, PC: e.PC, Disasm: e.Instr.String(),
				Got: in.gotValue, Want: e.Value,
				Msg: fmt.Sprintf("load retired value 0x%x, want 0x%x (cat %s)", in.gotValue, e.Value, in.cat),
			})
			return
		}
	case in.isStore():
		if in.ssn != e.StoreSeq() {
			c.fail(&SimError{
				Kind: ErrOracle, Idx: in.idx, PC: e.PC, Disasm: e.Instr.String(),
				Got: uint32(in.ssn), Want: uint32(e.StoreSeq()),
				Msg: fmt.Sprintf("store retired SSN %d, trace says %d", in.ssn, e.StoreSeq()),
			})
			return
		}
	}
	if e.Instr.Op.IsControl() && e.Taken && in.idx+1 < len(c.tr.Entries) {
		if next := c.tr.Entries[in.idx+1].PC; next != e.Target {
			c.fail(&SimError{
				Kind: ErrOracle, Idx: in.idx, PC: e.PC, Disasm: e.Instr.String(),
				Got: next, Want: e.Target,
				Msg: fmt.Sprintf("taken control op followed by pc 0x%x, golden target 0x%x", next, e.Target),
			})
			return
		}
	}
	if in.destLog >= 0 {
		if c.rf.arat[in.destLog] != in.destPhys || c.rf.regs[in.destPhys].free {
			c.fail(&SimError{
				Kind: ErrOracle, Idx: in.idx, PC: e.PC, Disasm: e.Instr.String(),
				Msg: fmt.Sprintf("retired writeback to r%d not architecturally mapped to live p%d", in.destLog, in.destPhys),
			})
		}
	}
}
