package core

import (
	"errors"
	"strings"
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/faults"
	"dmdp/internal/trace"
)

// runHardened simulates without failing the test on error, returning the
// stats or the structured SimError.
func runHardened(t *testing.T, tr *trace.Trace, cfg config.Config) (*Stats, *SimError) {
	t.Helper()
	c, err := New(cfg, tr)
	if err != nil {
		t.Fatalf("new core: %v", err)
	}
	st, err := c.Run()
	if err == nil {
		return st, nil
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("run returned a non-structured error: %v", err)
	}
	return nil, se
}

// Fault-free runs must pass every commit-time oracle check on every
// model: one check per retired instruction, zero divergences, zero
// injected faults.
func TestOracleCleanRunAllModels(t *testing.T) {
	tr := traceOf(t, ocPattern, 50000)
	for _, m := range allModels {
		st := runModel(t, tr, m)
		if st.OracleChecks != st.Instructions {
			t.Errorf("%s: %d oracle checks for %d instructions", m, st.OracleChecks, st.Instructions)
		}
		if st.Faults.Total() != 0 {
			t.Errorf("%s: injected faults reported on a fault-free run: %+v", m, st.Faults)
		}
	}
}

// Benign faults attack the speculative machinery only: the SVW/T-SSBF
// verification must absorb them and the run must still retire the whole
// trace with every oracle check passing. Predicate corruption is the one
// class allowed to escape to the oracle (the T-SSBF filter has false
// negatives), in which case the abort must be a structured divergence.
func TestBenignFaultClassesConverge(t *testing.T) {
	tr := traceOf(t, ocPattern, 50000)
	golden := runModel(t, tr, config.DMDP)
	cases := []struct {
		name      string
		fc        faults.Config
		count     func(faults.Counts) int64
		mayOracle bool
	}{
		{"prediction-flip", faults.Config{Seed: 1, PredictionFlipRate: 0.05},
			func(c faults.Counts) int64 { return c.PredictionFlips }, false},
		{"force-lowconf", faults.Config{Seed: 2, ForceLowConfRate: 0.2},
			func(c faults.Counts) int64 { return c.ForcedLowConf }, false},
		{"predicate-corrupt", faults.Config{Seed: 3, PredicateCorruptRate: 0.05},
			func(c faults.Counts) int64 { return c.PredicateCorruptions }, true},
		{"line-invalidate", faults.Config{Seed: 4, LineInvalidateRate: 0.005},
			func(c faults.Counts) int64 { return c.LineInvalidations }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.Default(config.DMDP).WithFaults(tc.fc)
			st, se := runHardened(t, tr, cfg)
			if se != nil {
				if !tc.mayOracle {
					t.Fatalf("benign %s fault broke the run: %v", tc.name, se)
				}
				if se.Kind != ErrOracle {
					t.Fatalf("escaped %s fault must surface as an oracle divergence, got %v", tc.name, se)
				}
				return
			}
			if st.Instructions != golden.Instructions {
				t.Fatalf("retired %d instructions, golden run retired %d", st.Instructions, golden.Instructions)
			}
			if st.OracleChecks != st.Instructions {
				t.Fatalf("%d oracle checks for %d instructions", st.OracleChecks, st.Instructions)
			}
			if tc.count(st.Faults) == 0 {
				t.Fatalf("no %s faults were injected: %+v", tc.name, st.Faults)
			}
		})
	}
}

// Same (program, config, seed) must reproduce exactly — cycles and
// injected-fault counts included.
func TestFaultInjectionDeterministic(t *testing.T) {
	tr := traceOf(t, ocPattern, 30000)
	cfg := config.Default(config.DMDP).WithFaults(faults.Config{Seed: 9, PredictionFlipRate: 0.05})
	a := runCfg(t, tr, cfg)
	b := runCfg(t, tr, cfg)
	if a.Cycles != b.Cycles || a.Faults != b.Faults {
		t.Fatalf("same seed diverged: %d/%d cycles, %+v vs %+v", a.Cycles, b.Cycles, a.Faults, b.Faults)
	}
	if a.Faults.PredictionFlips == 0 {
		t.Fatal("no prediction flips injected")
	}
}

// Architectural corruption at retire must never slip past the oracle:
// the run aborts with a fully populated diagnostic bundle.
func TestOracleCatchesValueCorruption(t *testing.T) {
	tr := traceOf(t, ocPattern, 50000)
	cfg := config.Default(config.DMDP).WithFaults(faults.Config{Seed: 7, ValueCorruptRate: 0.001})
	_, se := runHardened(t, tr, cfg)
	if se == nil {
		t.Fatal("corrupted load value retired without an oracle divergence")
	}
	if se.Kind != ErrOracle {
		t.Fatalf("kind %q, want %q", se.Kind, ErrOracle)
	}
	if se.Cycle <= 0 {
		t.Errorf("diagnostic missing cycle: %d", se.Cycle)
	}
	if se.PC == 0 || se.Disasm == "" {
		t.Errorf("diagnostic missing faulting instruction: pc=0x%x disasm=%q", se.PC, se.Disasm)
	}
	if se.Got == se.Want {
		t.Errorf("divergence values not captured: got=want=0x%x", se.Got)
	}
	if len(se.LastRetired) < 8 {
		t.Errorf("only %d last-retired entries, want >= 8", len(se.LastRetired))
	}
	b := se.Bundle()
	for _, want := range []string{"oracle", "last", se.Disasm, "pipeline:"} {
		if !strings.Contains(b, want) {
			t.Errorf("bundle missing %q:\n%s", want, b)
		}
	}
}

func TestWatchdogMaxCycles(t *testing.T) {
	tr := traceOf(t, acPattern, 100000)
	cfg := config.Default(config.DMDP).WithWatchdog(100, 0)
	_, se := runHardened(t, tr, cfg)
	if se == nil {
		t.Fatal("run outlived a 100-cycle budget")
	}
	if se.Kind != ErrWatchdog {
		t.Fatalf("kind %q, want %q", se.Kind, ErrWatchdog)
	}
	if se.Cycle < 100 || se.Cycle > 101 {
		t.Errorf("tripped at cycle %d, want ~100", se.Cycle)
	}
	if !strings.Contains(se.Msg, "cycle budget") {
		t.Errorf("message %q does not name the budget", se.Msg)
	}
}

// A no-retire window shorter than the front-end depth trips before the
// first instruction can possibly retire — a guaranteed "deadlock".
func TestWatchdogNoRetireWindow(t *testing.T) {
	tr := traceOf(t, acPattern, 100000)
	cfg := config.Default(config.DMDP).WithWatchdog(0, 3)
	_, se := runHardened(t, tr, cfg)
	if se == nil {
		t.Fatal("3-cycle no-retire window never tripped")
	}
	if se.Kind != ErrWatchdog {
		t.Fatalf("kind %q, want %q", se.Kind, ErrWatchdog)
	}
	if se.Retired != 0 {
		t.Errorf("tripped after %d retirements, want 0", se.Retired)
	}
	if !strings.Contains(se.Msg, "no retirement") {
		t.Errorf("message %q does not name the stall", se.Msg)
	}
	if se.Pipeline.FetchIdx == 0 && se.Pipeline.ROB == 0 && se.Pipeline.FetchQueue == 0 {
		t.Errorf("pipeline snapshot empty: %+v", se.Pipeline)
	}
}

// A refcount underflow surfaces as a structured error naming the
// instruction whose release triggered it, not a panic.
func TestRefcountUnderflowSurfaces(t *testing.T) {
	tr := traceOf(t, aluLoop, 1000)
	c, err := New(config.Default(config.Baseline), tr)
	if err != nil {
		t.Fatalf("new core: %v", err)
	}
	p := c.rf.alloc()
	c.rf.dropProducer(p)
	c.rf.dropProducer(p)
	c.checkRefs(0)
	se := c.simErr
	if se == nil {
		t.Fatal("underflow not surfaced")
	}
	if se.Kind != ErrRefcount {
		t.Fatalf("kind %q, want %q", se.Kind, ErrRefcount)
	}
	if se.PC != tr.Entries[0].PC || se.Disasm == "" {
		t.Errorf("underflow not attributed to the releasing instruction: %+v", se)
	}
	if !strings.Contains(se.Msg, "negative refcount") {
		t.Errorf("message %q does not name the underflow", se.Msg)
	}
	if !c.done {
		t.Error("failed core must stop simulating")
	}
}
