package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"dmdp/internal/config"
	"dmdp/internal/workload"
)

// TestRunContextCancellation: a cancelled context aborts the run with a
// structured ErrCanceled SimError carrying progress and a pipeline
// snapshot.
func TestRunContextCancellation(t *testing.T) {
	s, ok := workload.Get("hmmer")
	if !ok {
		t.Fatal("no hmmer proxy")
	}
	tr, err := s.BuildTrace(200_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // fires at the first poll
	c, err := New(config.Default(config.DMDP), tr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunContext(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrCanceled {
		t.Fatalf("err=%v, want ErrCanceled SimError", err)
	}
	if !Canceled(err) {
		t.Fatalf("Canceled(%v) = false", err)
	}
	if se.TraceLen != len(tr.Entries) {
		t.Fatalf("SimError.TraceLen = %d, want %d", se.TraceLen, len(tr.Entries))
	}
}

// TestRunContextDeadline: a short wall-clock deadline cuts a run off
// mid-flight (not at the end) and surfaces within a small multiple of
// the deadline.
func TestRunContextDeadline(t *testing.T) {
	s, _ := workload.Get("mcf")
	tr, err := s.BuildTrace(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	c, err := New(config.Default(config.Baseline), tr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.RunContext(ctx)
	if !Canceled(err) {
		t.Fatalf("err=%v, want cancellation", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", el)
	}
}

// TestRunContextNoDeadlineIdentical: wiring a live (never-fired) context
// through RunContext must not perturb the simulation — canonical stats
// are byte-identical to a plain Run.
func TestRunContextNoDeadlineIdentical(t *testing.T) {
	s, _ := workload.Get("hmmer")
	tr, err := s.BuildTrace(50_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(config.DMDP)
	c1, _ := New(cfg, tr)
	st1, err := c1.Run()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	c2, _ := New(cfg, tr)
	st2, err := c2.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := st1.MarshalCanonical(), st2.MarshalCanonical()
	if !bytes.Equal(b1, b2) {
		t.Fatal("RunContext with unfired deadline changed the stats")
	}
}

// TestProgressFn: the progress callback observes monotone progress while
// the run advances.
func TestProgressFn(t *testing.T) {
	s, _ := workload.Get("hmmer")
	tr, err := s.BuildTrace(100_000)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(config.Default(config.NoSQ), tr)
	var samples int
	var lastRetired, lastCycle int64
	c.SetProgressFn(func(retired, cycles int64) {
		samples++
		if retired < lastRetired || cycles < lastCycle {
			t.Errorf("progress went backwards: (%d,%d) after (%d,%d)", retired, cycles, lastRetired, lastCycle)
		}
		lastRetired, lastCycle = retired, cycles
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("progress callback never fired")
	}
}
