package core

import (
	"bytes"
	"reflect"
	"testing"

	"dmdp/internal/faults"
)

// TestStatsCodecCoversEveryField recomputes the canonical wire size from
// the Stats struct definition by reflection and compares it with the
// hand-written encoder's output. Adding, removing or retyping a Stats
// field changes the reflected size, fails this test, and forces the
// encoder — and StatsSchemaVersion — to be updated together.
func TestStatsCodecCoversEveryField(t *testing.T) {
	want := 0
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Name == "SimWallClockNS" {
			continue // excluded by design: wall clock is observability only
		}
		switch f.Type.Kind() {
		case reflect.Int64, reflect.Float64:
			want += 8
		case reflect.Array:
			if f.Type.Elem().Kind() != reflect.Int64 {
				t.Fatalf("field %s: unsupported array element %s", f.Name, f.Type.Elem())
			}
			want += 8 * f.Type.Len()
		case reflect.Struct:
			if f.Type != reflect.TypeOf(faults.Counts{}) {
				t.Fatalf("field %s: unsupported struct type %s", f.Name, f.Type)
			}
			want += 8 * f.Type.NumField()
		default:
			t.Fatalf("field %s: unsupported kind %s (extend the codec and bump StatsSchemaVersion)", f.Name, f.Type.Kind())
		}
	}
	if want != statsWireSize {
		t.Fatalf("Stats fields sum to %d wire bytes, encoder writes %d — update MarshalCanonical/UnmarshalCanonicalStats and bump StatsSchemaVersion", want, statsWireSize)
	}
	var s Stats
	if got := len(s.MarshalCanonical()); got != statsWireSize {
		t.Fatalf("MarshalCanonical wrote %d bytes, statsWireSize says %d", got, statsWireSize)
	}
}

// fillStats populates every field with a distinct value so round-trip
// mismatches cannot hide behind zeroes.
func fillStats(t *testing.T) *Stats {
	t.Helper()
	s := &Stats{}
	n := int64(1)
	v := reflect.ValueOf(s).Elem()
	var fill func(v reflect.Value)
	fill = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Int64:
			v.SetInt(n)
			n++
		case reflect.Float64:
			v.SetFloat(float64(n) / 7)
			n++
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				fill(v.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				fill(v.Field(i))
			}
		default:
			t.Fatalf("unsupported kind %s", v.Kind())
		}
	}
	fill(v)
	return s
}

func TestStatsCodecRoundTrip(t *testing.T) {
	s := fillStats(t)
	enc := s.MarshalCanonical()
	dec, err := UnmarshalCanonicalStats(enc)
	if err != nil {
		t.Fatal(err)
	}
	// The wall clock is excluded from the encoding by design.
	want := *s
	want.SimWallClockNS = 0
	if *dec != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *dec, want)
	}
	if !bytes.Equal(dec.MarshalCanonical(), enc) {
		t.Fatal("encode -> decode -> encode is not byte-identical")
	}
}

func TestStatsCodecRejectsBadLength(t *testing.T) {
	s := fillStats(t)
	enc := s.MarshalCanonical()
	for _, n := range []int{0, 1, len(enc) - 1, len(enc) + 1} {
		if _, err := UnmarshalCanonicalStats(enc[:min(n, len(enc))]); n <= len(enc) && err == nil {
			t.Fatalf("length %d accepted", n)
		}
	}
	padded := append(append([]byte(nil), enc...), 0)
	if _, err := UnmarshalCanonicalStats(padded); err == nil {
		t.Fatal("padded encoding accepted")
	}
}

func TestStatsCodecExcludesWallClock(t *testing.T) {
	a, b := fillStats(t), fillStats(t)
	a.SimWallClockNS = 123
	b.SimWallClockNS = 456789
	if !bytes.Equal(a.MarshalCanonical(), b.MarshalCanonical()) {
		t.Fatal("SimWallClockNS leaked into the canonical encoding")
	}
}
