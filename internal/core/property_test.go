package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/emu"
)

// ---------- model-based robQ check ----------

// TestRobQModelBased drives the ring buffer with random operations and
// compares it against a reference slice implementation.
func TestRobQModelBased(t *testing.T) {
	f := func(ops []uint8, capSeed uint8) bool {
		capacity := 1 + int(capSeed%16)
		q := newRobQ(capacity)
		var ref []*inst
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push
				if len(ref) < capacity {
					in := &inst{idx: next}
					next++
					q.push(in)
					ref = append(ref, in)
				}
			case 2: // pop
				if len(ref) > 0 {
					if q.popFront() != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 3: // random access
				if len(ref) > 0 {
					i := int(op) % len(ref)
					if q.at(i) != ref[i] {
						return false
					}
				}
			}
			if q.len() != len(ref) || q.full() != (len(ref) == capacity) ||
				q.empty() != (len(ref) == 0) {
				return false
			}
			if len(ref) > 0 && q.front() != ref[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// ---------- heap ordering properties ----------

func TestReadyHeapPopsInSeqOrder(t *testing.T) {
	f := func(seqs []int64) bool {
		var h readyHeap
		for _, s := range seqs {
			h.push(&uop{seq: s})
		}
		last := int64(math.MinInt64)
		for h.Len() > 0 {
			u := h.pop()
			if u.seq < last {
				return false
			}
			last = u.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEventHeapPopDue(t *testing.T) {
	var h eventHeap
	u1, u2, u3, u4 := &uop{seq: 1}, &uop{seq: 2}, &uop{seq: 3}, &uop{seq: 4}
	h.schedule(10, u3)
	h.schedule(5, u1)
	h.schedule(5, u2)
	h.schedule(20, u4)
	u2.squashed = true

	if got := h.popDue(4); got != nil {
		t.Fatalf("nothing due at 4, got %v", got.seq)
	}
	if got := h.popDue(5); got != u1 {
		t.Fatal("u1 due first (same-cycle ties break by seq)")
	}
	// u2 is squashed: skipped silently.
	if got := h.popDue(10); got != u3 {
		t.Fatal("u3 due at 10 after squashed u2 skipped")
	}
	if got := h.popDue(10); got != nil {
		t.Fatal("u4 not due yet")
	}
	if h.nextAt() != 20 {
		t.Fatalf("nextAt %d", h.nextAt())
	}
}

// ---------- random-program soundness fuzzing ----------

// genProgram emits a random but well-formed program: bounded loops,
// aligned memory accesses over a few small regions, data-dependent
// branches — then every model must retire every load with the
// architecturally correct value (checked inside core.Run).
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	regions := 3
	b.WriteString("\t.data\n")
	for i := 0; i < regions; i++ {
		fmt.Fprintf(&b, "arr%d:\n\t.space %d\n", i, 64+r.Intn(4)*32)
	}
	b.WriteString("\t.text\nmain:\n")
	for i := 0; i < regions; i++ {
		fmt.Fprintf(&b, "\tla $s%d, arr%d\n", i, i)
	}
	fmt.Fprintf(&b, "\tli $s7, %d\n", 200+r.Intn(200))
	b.WriteString("outer:\n")

	body := 10 + r.Intn(25)
	label := 0
	openLabel := -1
	tregs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"}
	reg := func() string { return tregs[r.Intn(len(tregs))] }
	base := func() string { return fmt.Sprintf("$s%d", r.Intn(regions)) }
	for i := 0; i < body; i++ {
		switch r.Intn(10) {
		case 0, 1: // word store
			fmt.Fprintf(&b, "\tsw %s, %d(%s)\n", reg(), 4*r.Intn(16), base())
		case 2, 3: // word load
			fmt.Fprintf(&b, "\tlw %s, %d(%s)\n", reg(), 4*r.Intn(16), base())
		case 4: // halfword pair
			off := 2 * r.Intn(32)
			fmt.Fprintf(&b, "\tsh %s, %d(%s)\n", reg(), off, base())
			fmt.Fprintf(&b, "\tlhu %s, %d(%s)\n", reg(), off, base())
		case 5: // byte ops
			off := r.Intn(64)
			fmt.Fprintf(&b, "\tsb %s, %d(%s)\n", reg(), off, base())
			fmt.Fprintf(&b, "\tlb %s, %d(%s)\n", reg(), off, base())
		case 6: // data-dependent forward branch (one open at a time)
			if openLabel < 0 {
				fmt.Fprintf(&b, "\tandi $t8, %s, %d\n", reg(), 1+r.Intn(7))
				fmt.Fprintf(&b, "\tbeqz $t8, fl%d\n", label)
				fmt.Fprintf(&b, "\taddi %s, %s, %d\n", reg(), reg(), r.Intn(9)-4)
				openLabel = label
				label++
			}
		case 7: // arithmetic
			fmt.Fprintf(&b, "\tadd %s, %s, %s\n", reg(), reg(), reg())
			fmt.Fprintf(&b, "\txor %s, %s, %s\n", reg(), reg(), reg())
		case 8: // multiply chain
			fmt.Fprintf(&b, "\tmul %s, %s, %s\n", reg(), reg(), reg())
		case 9: // shift
			fmt.Fprintf(&b, "\tsll %s, %s, %d\n", reg(), reg(), r.Intn(8))
		}
		if openLabel >= 0 && r.Intn(2) == 0 {
			fmt.Fprintf(&b, "fl%d:\n", openLabel)
			openLabel = -1
		}
	}
	if openLabel >= 0 {
		fmt.Fprintf(&b, "fl%d:\n", openLabel)
	}
	b.WriteString("\taddi $s7, $s7, -1\n\tbnez $s7, outer\n\thalt\n")
	return b.String()
}

// TestRandomProgramSoundness is the generative end-to-end check: random
// programs, every model, every retired load value verified against the
// golden emulator by the core itself.
func TestRandomProgramSoundness(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(r)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		tr, err := emu.Run(p, 15_000)
		if err != nil {
			t.Fatalf("seed %d: emulate: %v", seed, err)
		}
		for _, m := range allModels {
			c, err := New(config.Default(m), tr)
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, m, err)
			}
			st, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, m, err)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("seed %d/%s: %v", seed, m, err)
			}
			if st.Instructions != int64(len(tr.Entries)) {
				t.Fatalf("seed %d/%s: retired %d/%d", seed, m, st.Instructions, len(tr.Entries))
			}
		}
	}
}

// TestRandomProgramConfigMatrix runs a few random programs across the
// configuration axes (width, ROB, SB, consistency, predictor, prefetch,
// invalidations) to shake out interactions.
func TestRandomProgramConfigMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgs := []config.Config{
		config.Default(config.DMDP).WithIssueWidth(2),
		config.Default(config.DMDP).WithROB(64),
		config.Default(config.NoSQ).WithStoreBuffer(4),
		config.Default(config.DMDP).WithConsistency(config.RMO),
		config.Default(config.NoSQ).WithTAGE(true),
		config.Default(config.DMDP).WithPrefetch(true),
		config.Default(config.DMDP).WithInvalidations(500),
		config.Default(config.FnF).WithStoreBuffer(8),
		config.Default(config.Baseline).WithIssueWidth(4),
		config.Default(config.NoSQ).WithSilentStorePolicy(false),
	}
	for seed := 100; seed < 106; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(r)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, err := emu.Run(p, 10_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, cfg := range cfgs {
			c, err := New(cfg, tr)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, i, err)
			}
			if _, err := c.Run(); err != nil {
				t.Fatalf("seed %d cfg %d (%s): %v", seed, i, cfg.Model, err)
			}
		}
	}
}
