package core

import (
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/workload"
)

// TestAllProxiesAllModels is the end-to-end soundness sweep: every proxy
// benchmark runs under every model; Run's internal checks guarantee that
// each retired load carried the architecturally correct value and that no
// pipeline deadlock occurred.
func TestAllProxiesAllModels(t *testing.T) {
	budget := int64(8000)
	if testing.Short() {
		budget = 3000
	}
	for _, s := range workload.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := s.BuildTrace(budget)
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			for _, m := range allModels {
				c, err := New(config.Default(m), tr)
				if err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				st, err := c.Run()
				if err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				if st.Instructions != int64(len(tr.Entries)) {
					t.Fatalf("%s: retired %d/%d", m, st.Instructions, len(tr.Entries))
				}
				if st.IPC() <= 0.05 {
					t.Errorf("%s: IPC %.3f implausible", m, st.IPC())
				}
			}
		})
	}
}

// TestPerfectNeverLoses checks the oracle bound: Perfect is at least as
// fast as NoSQ and DMDP on every proxy (within a small scheduling
// tolerance).
func TestPerfectNeverLoses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"hmmer", "bzip2", "wrf", "gromacs", "milc"} {
		s, _ := workload.Get(name)
		tr, err := s.BuildTrace(8000)
		if err != nil {
			t.Fatal(err)
		}
		ipc := map[config.Model]float64{}
		for _, m := range allModels {
			c, _ := New(config.Default(m), tr)
			st, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m, err)
			}
			ipc[m] = st.IPC()
		}
		if ipc[config.Perfect] < ipc[config.NoSQ]*0.97 || ipc[config.Perfect] < ipc[config.DMDP]*0.97 {
			t.Errorf("%s: perfect %.3f below nosq %.3f / dmdp %.3f",
				name, ipc[config.Perfect], ipc[config.NoSQ], ipc[config.DMDP])
		}
	}
}

// TestRMOProxies is a regression test for the RMO SSNcommit rule: when
// the store buffer drains after out-of-order completions, SSNcommit must
// advance to SSNretire, or parked delayed loads deadlock.
func TestRMOProxies(t *testing.T) {
	for _, name := range []string{"perl", "gcc", "lbm"} {
		s, _ := workload.Get(name)
		tr, err := s.BuildTrace(8000)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []config.Model{config.NoSQ, config.DMDP} {
			cfg := config.Default(m).WithConsistency(config.RMO)
			c, err := New(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(); err != nil {
				t.Fatalf("%s/%s rmo: %v", name, m, err)
			}
		}
	}
}
