package core

import (
	"fmt"

	"dmdp/internal/isa"
)

// physReg is one physical register's bookkeeping state. DMDP extends the
// conventional lifetime rules (paper §IV-B): a register may be defined
// more than once (memory cloaking, the two CMOVs sharing a destination),
// tracked by the producer counter, and may be read after its last
// definition retires (store data/address registers read at commit,
// predication MicroOps reading in-flight store registers), tracked by the
// consumer counter. A register frees only when both counters are zero.
type physReg struct {
	ready     bool
	readyAt   int64 // cycle the value became available
	producers int   // live definitions
	consumers int   // outstanding late readers (stores pending commit, predication uops)
	free      bool
}

// refErr records a reference-count underflow observed by maybeFree; the
// core surfaces it as a structured SimError attributed to the
// instruction whose release triggered it (see Core.checkRefs).
type refErr struct {
	p                    int
	producers, consumers int
}

// regFile is the physical register file plus the speculative and
// architectural rename tables and the free list.
type regFile struct {
	regs     []physReg
	rat      [isa.NumLogicalRegs]int // speculative map
	arat     [isa.NumLogicalRegs]int // architectural (retired) map
	freeList []int

	// waiters maps a physical register to the uops stalled on it.
	waiters [][]*uop

	// badRef holds the first refcount underflow until the core collects
	// it (nil when the counters are consistent).
	badRef *refErr
}

func newRegFile(n int) *regFile {
	rf := &regFile{
		regs:    make([]physReg, n),
		waiters: make([][]*uop, n),
	}
	// Logical registers start mapped to p0..p34, ready and live.
	for l := 0; l < isa.NumLogicalRegs; l++ {
		rf.rat[l] = l
		rf.arat[l] = l
		rf.regs[l] = physReg{ready: true, producers: 1}
	}
	for p := n - 1; p >= isa.NumLogicalRegs; p-- {
		rf.regs[p].free = true
		rf.freeList = append(rf.freeList, p)
	}
	return rf
}

// freeCount returns the number of allocatable registers.
func (rf *regFile) freeCount() int { return len(rf.freeList) }

// alloc takes a register from the free list with one producer.
func (rf *regFile) alloc() int {
	p := rf.freeList[len(rf.freeList)-1]
	rf.freeList = rf.freeList[:len(rf.freeList)-1]
	rf.regs[p] = physReg{free: false, producers: 1}
	rf.waiters[p] = rf.waiters[p][:0]
	return p
}

// addProducer registers an additional definition of p (cloaking, second
// CMOV).
func (rf *regFile) addProducer(p int) { rf.regs[p].producers++ }

// addConsumer extends p's lifetime past release (store regs pending
// commit, predication reads).
func (rf *regFile) addConsumer(p int) { rf.regs[p].consumers++ }

// dropConsumer releases one late-reader reference, freeing p if dead.
func (rf *regFile) dropConsumer(p int) {
	rf.regs[p].consumers--
	rf.maybeFree(p)
}

// dropProducer virtually releases one definition of p (at retire of the
// redefining instruction), freeing p if dead.
func (rf *regFile) dropProducer(p int) {
	rf.regs[p].producers--
	rf.maybeFree(p)
}

func (rf *regFile) maybeFree(p int) {
	r := &rf.regs[p]
	if r.producers < 0 || r.consumers < 0 {
		// Record the underflow (first wins) instead of panicking; the
		// register is left un-freed so the state stays inspectable.
		if rf.badRef == nil {
			rf.badRef = &refErr{p: p, producers: r.producers, consumers: r.consumers}
		}
		return
	}
	if r.producers == 0 && r.consumers == 0 && !r.free {
		r.free = true
		rf.freeList = append(rf.freeList, p)
	}
}

// setReady marks p's value available at cycle and returns the woken
// uops. The returned slice keeps its backing array registered as p's
// (now empty) waiter list — safe to iterate because await never appends
// to a ready register, and p cannot be re-allocated mid-writeback (only
// rename allocates).
func (rf *regFile) setReady(p int, cycle int64) []*uop {
	r := &rf.regs[p]
	r.ready = true
	r.readyAt = cycle
	w := rf.waiters[p]
	rf.waiters[p] = w[:0]
	return w
}

// await registers u as waiting for p; returns false when p is already
// ready (no wait needed).
func (rf *regFile) await(p int, u *uop) bool {
	if rf.regs[p].ready {
		return false
	}
	rf.waiters[p] = append(rf.waiters[p], u)
	return true
}

// resetToARAT rebuilds the speculative state from the architectural map
// after a full-pipeline recovery: the RAT becomes the ARAT, producer
// counts are recomputed from ARAT occupancy, consumer counts are
// recomputed from the surviving late readers (the store buffer's pending
// data/address registers, passed in by the caller), and everything else
// returns to the free list, ready.
func (rf *regFile) resetToARAT(sbRefs []int) {
	rf.rat = rf.arat
	for p := range rf.regs {
		rf.regs[p].producers = 0
		rf.regs[p].consumers = 0
		rf.waiters[p] = rf.waiters[p][:0]
	}
	for _, p := range rf.arat {
		rf.regs[p].producers++
	}
	for _, p := range sbRefs {
		rf.regs[p].consumers++
	}
	rf.freeList = rf.freeList[:0]
	for p := len(rf.regs) - 1; p >= 0; p-- {
		r := &rf.regs[p]
		r.free = r.producers == 0 && r.consumers == 0
		r.ready = true
		if r.free {
			rf.freeList = append(rf.freeList, p)
		}
	}
}

// checkInvariants panics when reference counting is inconsistent (used by
// tests via Core.CheckInvariants).
func (rf *regFile) checkInvariants() error {
	if b := rf.badRef; b != nil {
		return fmt.Errorf("core: negative refcount on p%d (%d/%d)", b.p, b.producers, b.consumers)
	}
	seen := make(map[int]bool, len(rf.freeList))
	for _, p := range rf.freeList {
		if seen[p] {
			return fmt.Errorf("core: p%d on free list twice", p)
		}
		seen[p] = true
		if !rf.regs[p].free {
			return fmt.Errorf("core: p%d on free list but not marked free", p)
		}
		if rf.regs[p].producers != 0 || rf.regs[p].consumers != 0 {
			return fmt.Errorf("core: free p%d has refs %d/%d", p, rf.regs[p].producers, rf.regs[p].consumers)
		}
	}
	for l, p := range rf.rat {
		if rf.regs[p].free {
			return fmt.Errorf("core: RAT[%d] -> free p%d", l, p)
		}
	}
	for l, p := range rf.arat {
		if rf.regs[p].free {
			return fmt.Errorf("core: ARAT[%d] -> free p%d", l, p)
		}
	}
	return nil
}
