package core

import (
	"fmt"

	"dmdp/internal/config"
	"dmdp/internal/isa"
	"dmdp/internal/memdep"
	"dmdp/internal/trace"
)

// This file holds the store-load communication logic of the four models:
// rename-time decisions (direct / cloak / delay / predicate / store-set
// scheduling), load issue (including the baseline's store queue search),
// access completion, the predication MicroOps, the baseline's ordering
// violation detection and the retire-stage SVW verification with its
// predictor training (including the silent-store-aware update policy).

// ---------- rename: stores ----------

func (c *Core) renameStore(in *inst) {
	e := in.e
	// The data register is read at commit: extend its lifetime.
	in.dataPhys = c.rf.rat[e.Instr.Rt]
	c.rf.addConsumer(in.dataPhys)
	// Crack: AGI computes (and translates) the address into a dedicated
	// physical register, also read at commit.
	base := c.rf.rat[e.Instr.Rs]
	in.addrPhys = c.mapAux(in, isa.HwAddr)
	c.rf.addConsumer(in.addrPhys)
	agi := c.newUop(in, uopAGI, isa.ClassALU, []int{base}, in.addrPhys)

	c.ssn.Rename++
	in.ssn = c.ssn.Rename
	if in.ssn != e.StoreSeq() {
		c.fail(&SimError{
			Kind: ErrDesync, Idx: in.idx, PC: e.PC, Disasm: e.Instr.String(),
			Msg: fmt.Sprintf("SSN desync: renamed store got %d, trace says %d", in.ssn, e.StoreSeq()),
		})
	}
	c.srb.add(srbEntry{ssn: in.ssn, idx: in.idx, dataPhys: in.dataPhys, addrPhys: in.addrPhys, inst: in})
	c.instBySeq[in.seq&c.instSeqMask] = in

	switch c.cfg.Model {
	case config.Baseline:
		// Store Sets also serialize the stores of a set: this store's
		// address generation waits for the previous store in its set
		// (Chrysos & Emer's in-order store-set execution rule).
		if prevSeq := c.sets.StoreRenamed(e.PC, in.seq); prevSeq != 0 {
			if prev := c.instBySeqGet(prevSeq); prev != nil && !prev.addrReady {
				agi.gate = gateStoreExec
				agi.gateInst = prev
				agi.gateSeq = prev.seq
			}
		}
	case config.FnF:
		c.renameStoreFnF(in)
	}
	c.finishUopSetup(agi)
}

// ---------- rename: loads ----------

func (c *Core) renameLoad(in *inst) {
	e := in.e
	base := c.rf.rat[e.Instr.Rs]
	in.addrPhys = c.mapAux(in, isa.HwAddr)
	agi := c.newUop(in, uopAGI, isa.ClassALU, []int{base}, in.addrPhys)
	in.actualInFly = e.DepStore > 0 && e.DepStore > c.ssn.Commit
	in.srcSSN = -1

	switch c.cfg.Model {
	case config.Perfect:
		c.renameLoadPerfect(in)
	case config.Baseline:
		c.renameLoadBaseline(in)
	case config.FnF:
		c.renameLoadFnF(in)
	default:
		c.renameLoadSQFree(in)
	}
	c.finishUopSetup(agi)
}

func (c *Core) renameLoadPerfect(in *inst) {
	e := in.e
	d := e.Instr.Dest()
	if d != isa.NoReg && in.actualInFly && e.DepOverlap == trace.OverlapFull {
		if se := c.srb.get(e.DepStore); se != nil {
			in.ssnByp = e.DepStore
			in.predIdx = se.idx
			c.setupCloak(in, d, se)
			return
		}
	}
	c.setupDirectLoad(in, d)
}

func (c *Core) renameLoadBaseline(in *inst) {
	e := in.e
	d := e.Instr.Dest()
	dst := -1
	if d != isa.NoReg {
		dst = c.mapDest(in, d)
	}
	in.cat = LoadDirect
	ld := c.newUop(in, uopLoad, isa.ClassLoad, []int{in.addrPhys}, dst)
	// Store Sets: the load may not issue before its set's last fetched
	// store resolves its address.
	if waitSeq := c.sets.LoadRenamed(e.PC); waitSeq != 0 {
		if st := c.instBySeqGet(waitSeq); st != nil && !st.addrReady {
			ld.gate = gateStoreExec
			ld.gateInst = st
			ld.gateSeq = st.seq
		}
	}
	c.finishUopSetup(ld)
}

// renameLoadSQFree implements NoSQ and DMDP (paper Table I): consult the
// Store Distance Predictor; a confident prediction cloaks, a
// low-confidence one delays (NoSQ) or predicates (DMDP); everything else
// reads the cache directly.
func (c *Core) renameLoadSQFree(in *inst) {
	e := in.e
	d := e.Instr.Dest()
	pred, hit := c.sdp.Predict(e.PC, in.histAtRen)
	c.stats.SDPReads++
	if c.inj != nil && hit {
		// Benign faults: a perturbed distance targets the wrong store and
		// a demoted confidence forces the delay/predication path; the
		// SVW verification must absorb both.
		if c.inj.FlipPrediction() {
			pred.Dist++
		}
		if pred.Confident && c.inj.ForceLowConf() {
			pred.Confident = false
		}
	}
	in.predHit = hit

	var se *srbEntry
	if hit {
		in.usedDist = pred.Dist
		ssnByp := c.ssn.Rename - pred.Dist
		// Table I row 1: no dependence, or the store already committed
		// and updated the cache -> plain cache read.
		if ssnByp >= 1 && ssnByp > c.ssn.Commit {
			se = c.srb.get(ssnByp)
			if se != nil {
				in.ssnByp = ssnByp
				in.predIdx = se.idx
			}
		}
	}
	if se == nil || d == isa.NoReg {
		c.setupDirectLoad(in, d)
		return
	}

	partial := e.Size < 4
	confident := pred.Confident
	if c.cfg.Model == config.DMDP && partial {
		// Partial-word loads are prohibited from cloaking (alignment
		// and sign/zero extension); they are forced onto predication
		// (paper §IV-D).
		confident = false
	}
	if confident {
		c.setupCloak(in, d, se)
		return
	}
	in.lowConf = true
	if c.cfg.Model == config.NoSQ {
		c.setupDelayed(in, d)
	} else {
		c.setupPredicated(in, d, se)
	}
}

func (c *Core) setupDirectLoad(in *inst, d isa.Reg) {
	dst := -1
	if d != isa.NoReg {
		dst = c.mapDest(in, d)
	}
	in.cat = LoadDirect
	ld := c.newUop(in, uopLoad, isa.ClassLoad, []int{in.addrPhys}, dst)
	c.finishUopSetup(ld)
}

// setupCloak renames the load's destination onto the predicted store's
// data register (memory cloaking): the load never reads the cache.
func (c *Core) setupCloak(in *inst, d isa.Reg, se *srbEntry) {
	p := se.dataPhys
	c.rf.addProducer(p)
	c.rf.rat[d] = p
	in.destLog = int(d)
	in.destPhys = p
	in.cat = LoadBypass
	c.stats.Cloaks++
	in.gotValue = forwardValue(&c.tr.Entries[se.idx], in.e)
	in.readCache = false
	// Zero-cost tracker: the load's value is available when the store's
	// data register is (possibly before rename; execution time floors
	// at zero).
	track := c.newUop(in, uopCloakTrack, isa.ClassALU, []int{p}, -1)
	c.finishUopSetup(track)
}

// setupDelayed implements NoSQ's low-confidence handling: the load waits
// in the delayed-load structure until the predicted store commits, then
// reads the cache.
func (c *Core) setupDelayed(in *inst, d isa.Reg) {
	dst := c.mapDest(in, d)
	in.cat = LoadDelayed
	c.stats.DelayedLoads++
	ld := c.newUop(in, uopLoad, isa.ClassLoad, []int{in.addrPhys}, dst)
	ld.gate = gateSSNCommit
	ld.gateSSN = in.ssnByp
	c.finishUopSetup(ld)
}

// setupPredicated inserts the DMDP predication sequence (paper Fig. 8):
//
//	LD   tmp  <- (addr)            ; reads the cache
//	CMP  pred <- (addr == st.addr) ; carries shift/type information
//	CMOV dst  <- pred  ? st.data
//	CMOV dst  <- !pred ? tmp
//
// Both CMOVs share the destination register (producer count 2); the
// store's data and address registers gain consumers so they survive until
// the MicroOps read them.
func (c *Core) setupPredicated(in *inst, d isa.Reg, se *srbEntry) {
	tmp := c.mapAux(in, isa.HwTmp)
	prd := c.mapAux(in, isa.HwPred)
	dst := c.mapDest(in, d)
	c.rf.addProducer(dst) // second CMOV definition

	in.cat = LoadPredicated
	c.stats.Predications++
	in.predAddrPhys = se.addrPhys
	in.predDataPhys = se.dataPhys
	c.rf.addConsumer(se.addrPhys)
	c.rf.addConsumer(se.dataPhys)

	ld := c.newUop(in, uopLoad, isa.ClassLoad, []int{in.addrPhys}, tmp)
	cmp := c.newUop(in, uopCMP, isa.ClassALU, []int{in.addrPhys, se.addrPhys}, prd)
	cm1 := c.newUop(in, uopCMOV, isa.ClassALU, []int{prd, se.dataPhys}, dst)
	cm1.cmovSel = true
	cm2 := c.newUop(in, uopCMOV, isa.ClassALU, []int{prd, tmp}, dst)
	c.finishUopSetup(ld)
	c.finishUopSetup(cmp)
	c.finishUopSetup(cm1)
	c.finishUopSetup(cm2)
}

// ---------- issue: loads ----------

// issueLoad starts a load's memory access. Returns true when the uop
// re-gated itself instead of issuing (baseline replays).
func (c *Core) issueLoad(u *uop) bool {
	if c.cfg.Model == config.Baseline {
		return c.issueLoadBaseline(u)
	}
	in := u.inst
	u.issued = true
	c.stats.CacheAccesses++
	c.events.schedule(c.hier.Access(c.now, in.e.Addr, false), u)
	return false
}

// issueLoadBaseline searches the (conceptual) store queue and store
// buffer: the youngest older in-flight store with a resolved address and
// overlapping bytes forwards (constant SQAccessLat, like the paper's
// 4-cycle SQ/SB/cache access); partial overlap waits for that store to
// commit; no match reads the cache. Older stores with unresolved
// addresses are speculatively ignored — the violation check catches them.
func (c *Core) issueLoadBaseline(u *uop) bool {
	in := u.inst
	e := in.e
	c.stats.SQSearches++

	var found *srbEntry
	for ssn := e.StoresBefore; ssn > c.ssn.Commit; ssn-- {
		se := c.srb.get(ssn)
		if se == nil {
			continue
		}
		if se.inst != nil && !se.inst.addrReady {
			continue // address unknown: speculate past it
		}
		st := &c.tr.Entries[se.idx]
		if st.WordAddr() == e.WordAddr() && st.BAB()&e.BAB() != 0 {
			found = se
			break
		}
	}
	if found == nil {
		u.issued = true
		c.stats.CacheAccesses++
		c.events.schedule(c.hier.Access(c.now, e.Addr, false), u)
		return false
	}
	st := &c.tr.Entries[found.idx]
	if st.BAB()&e.BAB() != e.BAB() {
		// Partial overlap: wait for the store to commit, then retry.
		u.gate = gateSSNCommit
		u.gateSSN = found.ssn
		u.parked = true
		c.delayed = append(c.delayed, u)
		return true
	}
	if found.inst != nil && !c.rf.regs[found.dataPhys].ready {
		// Forwarder's data not produced yet: replay when it is.
		u.waitCnt++
		c.rf.await(found.dataPhys, u)
		return true
	}
	// Forward from the SQ (in-ROB store) or SB (retired store).
	u.issued = true
	in.srcSSN = found.ssn
	in.forwardIdx = found.idx
	c.events.schedule(c.now+c.cfg.SQAccessLat, u)
	return false
}

// ---------- completion ----------

func (c *Core) readCacheValue(e *trace.Entry) uint32 {
	return trace.ExtendLoad(e.Instr.Op, c.image.Read(e.Addr, uint32(e.Size)))
}

func (c *Core) completeLoadAccess(u *uop) {
	in := u.inst
	e := in.e

	if in.cat == LoadPredicated {
		// The LD half of a predication: keep the cache value; the
		// selected CMOV publishes the final result.
		in.cacheValue = c.readCacheValue(e)
		in.cacheValueSeen = true
		in.ssnNvul = c.ssn.Commit
		c.writeback(u.dst)
		return
	}

	if in.forwardIdx >= 0 {
		// Baseline store-queue/store-buffer forwarding.
		in.gotValue = forwardValue(&c.tr.Entries[in.forwardIdx], e)
		in.readCache = false
	} else {
		in.gotValue = c.readCacheValue(e)
		in.readCache = true
		in.ssnNvul = c.ssn.Commit
		if in.srcSSN < 0 {
			in.srcSSN = c.ssn.Commit
		}
	}
	if c.cfg.Model == config.Perfect {
		in.gotValue = e.Value // oracle loads are never wrong
	}
	in.valueAt = c.now
	c.writeback(u.dst)
}

// completeCMP computes the predicate: the predicted store forwards iff
// its word address matches the load's and its byte-access bits cover the
// load's (the predicate also carries the shift amount and load type, so
// the CMOV can align and extend the operand — folded into forwardValue).
func (c *Core) completeCMP(u *uop) {
	in := u.inst
	st := &c.tr.Entries[in.predIdx]
	in.predicate = st.WordAddr() == in.e.WordAddr() && st.BAB()&in.e.BAB() == in.e.BAB()
	if c.inj != nil && c.inj.CorruptPredicate() {
		// Benign fault: the wrong CMOV arm publishes; retire-time
		// verification (or, failing that, the oracle) must catch it.
		in.predicate = !in.predicate
	}
	in.predicateDone = true
	c.rf.dropConsumer(in.predAddrPhys)
	c.checkRefs(in.idx)
	c.writeback(u.dst)
}

func (c *Core) completeCMOV(u *uop) {
	in := u.inst
	if !in.predicateDone {
		c.fail(&SimError{
			Kind: ErrDesync, Idx: in.idx, PC: in.e.PC, Disasm: in.e.Instr.String(),
			Msg: "CMOV executed before its predicate",
		})
		return
	}
	if u.cmovSel {
		c.rf.dropConsumer(in.predDataPhys)
	}
	if u.cmovSel != in.predicate {
		// Predicate not set for this arm: treated as a NOP — no
		// register write, no broadcast — and its definition of the
		// shared destination evaporates (producer counter decrement,
		// paper §IV-B), otherwise the register would leak.
		c.rf.dropProducer(u.dst)
		c.checkRefs(in.idx)
		return
	}
	if in.predicate {
		in.gotValue = forwardValue(&c.tr.Entries[in.predIdx], in.e)
		in.readCache = false
	} else {
		in.gotValue = in.cacheValue
		in.readCache = true
	}
	in.valueAt = c.now
	c.writeback(u.dst)
}

// ---------- baseline ordering violations ----------

// checkViolations runs when a store's address resolves: any younger load
// that already obtained (or requested) its value from an older source
// missed this store and must re-execute — flagged here, recovered when it
// reaches the head (flush + refetch from the load). The store set
// predictor learns the pair.
func (c *Core) checkViolations(st *inst) {
	se := st.e
	for i := 0; i < c.rob.len(); i++ {
		l := c.rob.at(i)
		if l.seq <= st.seq || !l.isLoad() || l.violated {
			continue
		}
		le := l.e
		if le.WordAddr() != se.WordAddr() || le.BAB()&se.BAB() == 0 {
			continue
		}
		if le.StoresBefore < st.ssn {
			continue // the store is younger in program order
		}
		issued := false
		resolved := false
		for _, lu := range l.uops {
			if lu.kind == uopLoad {
				issued = lu.issued
				resolved = lu.done
			}
		}
		if !issued {
			continue // will search again and see this store
		}
		if l.srcSSN >= st.ssn {
			continue // got data from this store or a younger one
		}
		_ = resolved
		l.violated = true
		c.stats.Violations++
		c.sets.OnViolation(le.PC, se.PC)
	}
}

// ---------- retire-time verification ----------

type verifyResult int

const (
	verifyOK verifyResult = iota
	verifyStall
	verifyRecoverReplay
)

// verifyLoad implements the retire-stage check. SQ-free models consult
// the T-SSBF under the SVW policy (paper Table II); a required
// re-execution waits for the store buffer to drain (stalling retirement)
// and raises an exception — full flush — when the reloaded value differs.
func (c *Core) verifyLoad(in *inst) verifyResult {
	switch c.cfg.Model {
	case config.Perfect:
		return verifyOK
	case config.Baseline:
		if in.violated {
			c.stats.DepMispredicts++
			return verifyRecoverReplay
		}
		return verifyOK
	}

	if !in.verifyChecked {
		in.verifyChecked = true
		c.progress = true
		ssn, tagMatch, covered := c.tssbf.LookupCovering(in.e.WordAddr(), in.e.BAB())
		c.stats.TSSBFReads++
		in.tssbfSSN, in.tssbfMatch, in.tssbfCovered = ssn, tagMatch, covered
		if in.readCache {
			in.needReexec = memdep.NeedsReexecCacheSourced(ssn, in.ssnNvul)
		} else {
			in.needReexec = memdep.NeedsReexecStoreSourced(ssn, in.ssnByp) || !covered
		}
		if in.needReexec {
			c.stats.Reexecs++
		}
	}

	if in.needReexec {
		if !c.sb.empty() {
			c.stats.ReexecStallCycle++
			return verifyStall
		}
		if in.reexecAt == 0 {
			in.reexecAt = c.hier.Access(c.now, in.e.Addr, false)
			c.stats.CacheAccesses++
			c.progress = true
		}
		if c.now < in.reexecAt {
			c.stats.ReexecStallCycle++
			return verifyStall
		}
		// Re-execution done: the store buffer is drained, so the
		// reload yields the architectural value.
		exception := in.gotValue != in.e.Value
		if exception {
			c.stats.DepMispredicts++
			c.stats.DepMispredictsByCat[in.cat]++
			if c.onDepMispredict != nil {
				c.onDepMispredict(in)
			}
			in.recoverAfter = true
			in.gotValue = in.e.Value
		}
		// Silent-store-aware policy (paper §IV-C a): learn the observed
		// dependence on every re-execution. The original policy only
		// trains when the reloaded value differs (an exception) — the
		// paper compares both in §VI-a.
		if exception || c.cfg.SilentStoreAwareUpdate {
			if c.cfg.Model == config.FnF {
				c.trainFnFAfterReexec(in)
			} else {
				c.trainAfterReexec(in)
			}
		}
		in.needReexec = false
		in.didReexec = true
		return verifyOK
	}

	if c.cfg.Model == config.FnF {
		c.trainFnFNoReexec(in)
	} else {
		c.trainNoReexec(in)
	}
	return verifyOK
}

// trainAfterReexec applies the silent-store-aware update policy: the
// Store Distance Predictor learns the observed dependence on *every*
// re-execution, not only on exceptions (paper §IV-C a). When the actual
// distance is outside the predictor's 6-bit range but a prediction was
// used, the confidence still drops (the prediction was wrong).
func (c *Core) trainAfterReexec(in *inst) {
	actual := in.e.StoresBefore - in.tssbfSSN
	switch {
	case in.tssbfMatch && actual >= 0 && actual <= c.cfg.MaxDist():
		// Evidence of a real collision (tag match): learn it.
		c.sdp.TrainWrong(in.e.PC, in.histAtRen, actual)
		c.stats.SDPWrites++
	case in.ssnByp > 0:
		// The re-execution came from the conservative fallback or an
		// out-of-range distance; a used prediction still loses
		// confidence.
		c.sdp.TrainWrong(in.e.PC, in.histAtRen, in.usedDist)
		c.stats.SDPWrites++
	}
}

// trainNoReexec updates the confidence of used predictions: correct when
// the actual colliding store (per T-SSBF) is the predicted one.
func (c *Core) trainNoReexec(in *inst) {
	if in.ssnByp == 0 {
		return
	}
	c.stats.SDPWrites++
	if in.tssbfSSN == in.ssnByp {
		c.sdp.TrainCorrect(in.e.PC, in.histAtRen, in.usedDist)
		return
	}
	actual := in.e.StoresBefore - in.tssbfSSN
	if in.tssbfMatch && actual >= 0 && actual <= c.cfg.MaxDist() {
		c.sdp.TrainWrong(in.e.PC, in.histAtRen, actual)
	} else {
		c.sdp.TrainWrong(in.e.PC, in.histAtRen, in.usedDist)
	}
}
