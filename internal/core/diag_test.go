package core

import (
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/workload"
)

// TestDiagBench reports (under -v) which load PCs cause the most
// dependence exceptions on two churn-prone proxies — a calibration aid,
// not an assertion.
func TestDiagBench(t *testing.T) {
	for _, name := range []string{"mcf", "astar"} {
		for _, m := range []config.Model{config.NoSQ, config.DMDP} {
			s, _ := workload.Get(name)
			tr, err := s.BuildTrace(100000)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := New(config.Default(m), tr)
			pcs := map[uint32]int{}
			cats := map[uint32]LoadCategory{}
			c.onDepMispredict = func(in *inst) { pcs[in.e.PC]++; cats[in.e.PC] = in.cat }
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
			for pc, n := range pcs {
				if n > 20 {
					e, _ := tr.Prog.InstrAt(pc)
					t.Logf("%s/%s pc 0x%x %-18s cat=%s n=%d", name, m, pc, e.String(), cats[pc], n)
				}
			}
		}
	}
}
