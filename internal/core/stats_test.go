package core

import (
	"math"
	"testing"

	"dmdp/internal/config"
)

// TestLoadLatencyPercentileBoundaries pins the ceiling semantics of the
// percentile rank: the p-th percentile is the smallest bucket whose
// cumulative count reaches ceil(p/100*total). The old truncating code put
// exact boundaries one bucket too low (e.g. the median of {fast, slow,
// slow} came back "fast").
func TestLoadLatencyPercentileBoundaries(t *testing.T) {
	var st Stats
	// 1 fast load (latency 1 -> bucket 1), 2 slow (latency 100 -> bucket 7).
	st.LoadLatency[latencyBucket(1)] = 1
	st.LoadLatency[latencyBucket(100)] = 2
	// Median of {1, 100, 100} is slow: ceil(0.5*3) = 2 lands in the slow
	// bucket. Truncation computed rank int(1.5) = 1 and returned the fast
	// bucket.
	if p := st.LoadLatencyPercentile(50); p < 100 {
		t.Errorf("p50 of {fast, slow, slow} = %d, want slow bucket bound", p)
	}
	// p just below the 1/3 boundary still selects the fast bucket...
	if p := st.LoadLatencyPercentile(100.0 / 3); p != 2 {
		t.Errorf("p33.3 = %d, want 2", p)
	}
	// ...and p=100 must always reach the last occupied bucket.
	if p := st.LoadLatencyPercentile(100); p < 100 {
		t.Errorf("p100 = %d, want slow bucket bound", p)
	}

	// Exact boundary with an even split: p50 of {50x fast, 50x slow} is
	// rank 50, the last fast load.
	var ev Stats
	ev.LoadLatency[latencyBucket(1)] = 50
	ev.LoadLatency[latencyBucket(100)] = 50
	if p := ev.LoadLatencyPercentile(50); p != 2 {
		t.Errorf("even-split p50 = %d, want 2", p)
	}
	if p := ev.LoadLatencyPercentile(51); p < 100 {
		t.Errorf("even-split p51 = %d, want slow bucket bound", p)
	}

	// Tiny p clamps to rank 1 rather than rank 0.
	var one Stats
	one.LoadLatency[latencyBucket(100)] = 1000
	if p := one.LoadLatencyPercentile(0.001); p < 100 {
		t.Errorf("p0.001 of all-slow = %d, want slow bucket bound", p)
	}

	// Zero-latency loads live in bucket 0 and report 0.
	var z Stats
	z.LoadLatency[0] = 10
	if p := z.LoadLatencyPercentile(100); p != 0 {
		t.Errorf("all-zero-latency p100 = %d, want 0", p)
	}
}

// TestStatsRateHelpersZeroRun asserts that every derived-rate helper is
// total on the zero value: no division by zero, no NaN/Inf.
func TestStatsRateHelpersZeroRun(t *testing.T) {
	var st Stats
	vals := map[string]float64{
		"IPC":                 st.IPC(),
		"MPKI":                st.MPKI(),
		"ReexecStallsPerKilo": st.ReexecStallsPerKilo(),
		"SBStallsPerKilo":     st.SBStallsPerKilo(),
		"MeanLoadExecTime":    st.MeanLoadExecTime(),
		"MeanLowConfExecTime": st.MeanLowConfExecTime(),
		"SimIPS":              st.SimIPS(),
	}
	for c := LoadDirect; c < numLoadCategories; c++ {
		vals["MeanExecTime/"+c.String()] = st.MeanExecTime(c)
	}
	for name, v := range vals {
		if v != 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s on zero Stats = %v, want 0", name, v)
		}
	}
	if st.TotalLoads() != 0 {
		t.Errorf("TotalLoads on zero Stats = %d", st.TotalLoads())
	}
	if st.LoadLatencyPercentile(99) != 0 {
		t.Errorf("LoadLatencyPercentile on zero Stats = %d", st.LoadLatencyPercentile(99))
	}
}

// TestStatsHelpersMinimalRun runs the shortest possible program (a bare
// halt) through every model and checks the helpers stay finite: a run
// that retires almost nothing must not produce NaN in any report column.
func TestStatsHelpersMinimalRun(t *testing.T) {
	tr := traceOf(t, "\t.text\nmain:\n\thalt\n", 100)
	for _, m := range allModels {
		st := runModel(t, tr, m)
		for name, v := range map[string]float64{
			"IPC":                 st.IPC(),
			"MPKI":                st.MPKI(),
			"ReexecStallsPerKilo": st.ReexecStallsPerKilo(),
			"SBStallsPerKilo":     st.SBStallsPerKilo(),
			"MeanLoadExecTime":    st.MeanLoadExecTime(),
			"MeanLowConfExecTime": st.MeanLowConfExecTime(),
			"SimIPS":              st.SimIPS(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s/%s on halt-only run = %v", m, name, v)
			}
		}
	}
}

// TestSimWallClockRecorded checks Run stamps the wall clock and SimIPS
// derives a positive throughput from it.
func TestSimWallClockRecorded(t *testing.T) {
	tr := traceOf(t, ocPattern, 50_000)
	st := runModel(t, tr, config.DMDP)
	if st.SimWallClockNS <= 0 {
		t.Fatalf("SimWallClockNS = %d, want > 0", st.SimWallClockNS)
	}
	if ips := st.SimIPS(); ips <= 0 {
		t.Fatalf("SimIPS = %v, want > 0", ips)
	}
}
