package core

import "dmdp/internal/trace"

// sbEntry is one retired-but-uncommitted store held in the store buffer.
// The store queue is gone in the SQ-free models, but the store buffer is
// still required to overlap store-miss latency and implement the
// consistency model (paper §I, §IV-F). The physical register identities
// are kept so their lifetimes extend to commit (consumer counters).
type sbEntry struct {
	ssn      int64
	idx      int // trace index
	addr     uint32
	size     uint32
	value    uint32
	dataPhys int
	addrPhys int

	issued bool
	doneAt int64
	// coalesced entries commit with the head access (TSO store
	// coalescing of consecutive same-word stores).
	coalescedWith int // index into the buffer of the carrying entry, -1 = self
}

// storeBuffer models the post-retirement store queue with TSO (in-order,
// head-only commit with consecutive coalescing) or RMO (out-of-order
// commit, per-word ordering preserved) policies.
type storeBuffer struct {
	entries []sbEntry
	cap     int
	rmo     bool
}

func newStoreBuffer(capacity int, rmo bool) *storeBuffer {
	return &storeBuffer{cap: capacity, rmo: rmo}
}

func (sb *storeBuffer) full() bool  { return len(sb.entries) >= sb.cap }
func (sb *storeBuffer) empty() bool { return len(sb.entries) == 0 }
func (sb *storeBuffer) len() int    { return len(sb.entries) }

func (sb *storeBuffer) push(e sbEntry) {
	e.coalescedWith = -1
	sb.entries = append(sb.entries, e)
}

// regRefs appends the physical registers still referenced by pending
// stores (used to rebuild consumer counts after a recovery).
func (sb *storeBuffer) regRefs(dst []int) []int {
	for i := range sb.entries {
		dst = append(dst, sb.entries[i].dataPhys, sb.entries[i].addrPhys)
	}
	return dst
}

// oldestUncommittedSSN returns the SSN preceding the oldest pending store
// (the RMO SSNcommit rule) or retired if the buffer is empty (an empty
// buffer means every retired store has committed).
func (sb *storeBuffer) oldestUncommittedSSN(retired int64) int64 {
	if len(sb.entries) == 0 {
		return retired
	}
	min := sb.entries[0].ssn
	for _, e := range sb.entries[1:] {
		if e.ssn < min {
			min = e.ssn
		}
	}
	return min - 1
}

// hasOlderSameWord reports whether an older pending entry writes the same
// word (RMO must preserve per-address order).
func (sb *storeBuffer) hasOlderSameWord(i int) bool {
	w := sb.entries[i].addr &^ 3
	for j := range sb.entries {
		if sb.entries[j].ssn < sb.entries[i].ssn && sb.entries[j].addr&^3 == w {
			return true
		}
	}
	return false
}

// srbEntry is one Store Register Buffer record: the data and address
// physical register identities of an in-flight store, live from rename to
// commit, consulted by memory cloaking and predication insertion (paper
// Fig. 6).
type srbEntry struct {
	ssn      int64
	idx      int // trace index
	dataPhys int
	addrPhys int
	inst     *inst // nil once the store has retired into the SB
}

// storeRegBuffer maps SSN -> register identities for all in-flight
// stores. It is an open ring indexed by ssn&mask (ssn 0 marks an empty
// slot; real SSNs start at 1): live SSNs usually span at most
// ROB+SB entries, but under RMO an old store can stay pending while
// rename advances arbitrarily, so add grows the ring whenever a live
// entry would collide.
type storeRegBuffer struct {
	entries []srbEntry
	mask    int64
}

func newStoreRegBuffer(span int) *storeRegBuffer {
	n := 1
	for n < span {
		n <<= 1
	}
	return &storeRegBuffer{entries: make([]srbEntry, n), mask: int64(n - 1)}
}

func (s *storeRegBuffer) add(e srbEntry) {
	for s.entries[e.ssn&s.mask].ssn != 0 {
		s.grow()
	}
	s.entries[e.ssn&s.mask] = e
}

// grow re-places every live entry into a larger ring, doubling until no
// two live SSNs share a slot.
func (s *storeRegBuffer) grow() {
	old := s.entries
	size := 2 * len(old)
retry:
	for {
		entries := make([]srbEntry, size)
		mask := int64(size - 1)
		for i := range old {
			if old[i].ssn == 0 {
				continue
			}
			if entries[old[i].ssn&mask].ssn != 0 {
				size *= 2
				continue retry
			}
			entries[old[i].ssn&mask] = old[i]
		}
		s.entries, s.mask = entries, mask
		return
	}
}

func (s *storeRegBuffer) get(ssn int64) *srbEntry {
	if e := &s.entries[ssn&s.mask]; e.ssn == ssn {
		return e
	}
	return nil
}

func (s *storeRegBuffer) remove(ssn int64) {
	if e := &s.entries[ssn&s.mask]; e.ssn == ssn {
		*e = srbEntry{}
	}
}

func (s *storeRegBuffer) markRetired(ssn int64) {
	if e := s.get(ssn); e != nil {
		e.inst = nil
	}
}

// dropYoungerThan removes squashed stores (SSN > keep) during recovery.
func (s *storeRegBuffer) dropYoungerThan(keep int64) {
	for i := range s.entries {
		if s.entries[i].ssn > keep {
			s.entries[i] = srbEntry{}
		}
	}
}

// forwardValue computes the value a load obtains when store entry st
// forwards to it (wraps trace.ForwardValue for call sites holding trace
// entries).
func forwardValue(st, ld *trace.Entry) uint32 { return trace.ForwardValue(st, ld) }
