package core

import (
	"fmt"

	"dmdp/internal/isa"
)

// Fire-and-Forget model (paper §VII; Subramaniam & Loh, MICRO 2006).
//
// Like NoSQ/DMDP, FnF has no store queue: stores execute at commit and
// verification happens at retire through the SVW/T-SSBF machinery. The
// difference is the direction of prediction: at rename a *store*
// consults the Store Forwarding Table for the load-distance of its
// predicted consumer and registers a pending forward on that load
// sequence number (LSN). When the load with that LSN renames, it is
// cloaked onto the store's data register. Loads that nobody targets read
// the cache directly — there is no load-side prediction, no delaying and
// no predication.
//
// Because the store cannot observe the branches *between* itself and its
// consumer, the prediction is inherently path-insensitive — the reason
// the paper builds on NoSQ instead (§VII). The alt-fnf experiment
// measures that gap on path-dependent workloads.

// fwdRing holds the pending store->load forwards keyed by target LSN.
// It replaces a map that leaked entries claimed across flushes: slot
// lsn&mask is validated against the stored LSN, and the live key span is
// bounded by ROB depth + the predictor's maximum load distance, so
// distinct live keys never collide.
type fwdRing struct {
	lsn  []int64 // 0 = empty
	ssn  []int64
	mask int64
}

func newFwdRing(span int) *fwdRing {
	n := 1
	for n < span {
		n <<= 1
	}
	return &fwdRing{lsn: make([]int64, n), ssn: make([]int64, n), mask: int64(n - 1)}
}

func (r *fwdRing) put(lsn, ssn int64) {
	i := lsn & r.mask
	r.lsn[i], r.ssn[i] = lsn, ssn
}

func (r *fwdRing) take(lsn int64) (int64, bool) {
	i := lsn & r.mask
	if r.lsn[i] != lsn {
		return 0, false
	}
	r.lsn[i] = 0
	return r.ssn[i], true
}

// renameStoreFnF runs after the common store rename work: consult the
// SFT and register a pending forward.
func (c *Core) renameStoreFnF(in *inst) {
	pred, ok := c.sft.Predict(in.e.PC)
	c.stats.SDPReads++
	if !ok || !pred.Confident {
		return
	}
	target := c.lsnRename + 1 + pred.LoadDist
	c.pendingFwd.put(target, in.ssn)
	in.fnfTarget = target
}

// renameLoadFnF claims a pending forward registered for this load's LSN,
// or reads the cache directly.
func (c *Core) renameLoadFnF(in *inst) {
	c.lsnRename++
	in.lsn = c.lsnRename
	if in.lsn != in.e.LoadSeq() {
		c.fail(&SimError{
			Kind: ErrDesync, Idx: in.idx, PC: in.e.PC, Disasm: in.e.Instr.String(),
			Msg: fmt.Sprintf("LSN desync: renamed load got %d, trace says %d", in.lsn, in.e.LoadSeq()),
		})
	}
	d := in.e.Instr.Dest()
	if ssn, ok := c.pendingFwd.take(in.lsn); ok {
		if se := c.srb.get(ssn); se != nil && d != isa.NoReg {
			in.ssnByp = ssn
			in.predIdx = se.idx
			c.setupCloak(in, d, se)
			return
		}
	}
	c.setupDirectLoad(in, d)
}

// trainFnFAfterReexec applies the FnF training rule after a forced
// re-execution: the actual colliding store (identified through the
// T-SSBF) learns this load as its consumer; a wrong forwarder loses
// confidence.
func (c *Core) trainFnFAfterReexec(in *inst) {
	if in.ssnByp > 0 {
		// The forwarding store picked the wrong consumer.
		st := &c.tr.Entries[in.predIdx]
		c.sft.TrainWrong(st.PC, in.e.LoadsBefore-st.LoadsBefore)
		c.stats.SDPWrites++
	}
	c.trainFnFCollider(in)
}

// trainFnFCollider teaches the actual colliding store (if identifiable
// and within range) to forward to this load next time.
func (c *Core) trainFnFCollider(in *inst) {
	if !in.tssbfMatch || in.tssbfSSN <= 0 {
		return
	}
	idx := c.tr.EntryBySeq(in.tssbfSSN)
	if idx < 0 {
		return
	}
	st := &c.tr.Entries[idx]
	dist := in.e.LoadsBefore - st.LoadsBefore
	if dist < 0 || dist > c.cfg.MaxDist() {
		return
	}
	c.sft.TrainWrong(st.PC, dist)
	c.stats.SDPWrites++
}

// trainFnFNoReexec rewards a correct forwarding.
func (c *Core) trainFnFNoReexec(in *inst) {
	if in.ssnByp == 0 {
		return
	}
	st := &c.tr.Entries[in.predIdx]
	dist := in.e.LoadsBefore - st.LoadsBefore
	c.stats.SDPWrites++
	if in.tssbfSSN == in.ssnByp {
		c.sft.TrainCorrect(st.PC, dist)
		return
	}
	c.sft.TrainWrong(st.PC, dist)
}
