package memdep

import (
	"math"
	"testing"
)

// Table-driven coverage of the remote-invalidation path (paper §IV-F):
// InvalidateLine stamps every word of the line with InvalidatedSSN, and
// the sentinel's interactions with real stores, byte-access bits, the
// conservative fallback and FIFO eviction all have consistency
// consequences the multicore machine depends on.
func TestTSSBFRemoteInvalidationTable(t *testing.T) {
	const line = uint32(0x4000)
	cases := []struct {
		name  string
		setup func(f *TSSBF)

		lookupAddr uint32
		lookupBAB  uint8

		wantSSN      int64
		wantTagMatch bool
		wantCovered  bool
	}{
		{
			name:       "sentinel stamps every word of the line",
			setup:      func(f *TSSBF) { f.InvalidateLine(line, 64) },
			lookupAddr: line + 60, lookupBAB: 0xf,
			wantSSN: InvalidatedSSN, wantTagMatch: true, wantCovered: true,
		},
		{
			name:       "sentinel covers any sub-word access",
			setup:      func(f *TSSBF) { f.InvalidateLine(line, 64) },
			lookupAddr: line + 4, lookupBAB: 0b0010,
			wantSSN: InvalidatedSSN, wantTagMatch: true, wantCovered: true,
		},
		{
			name: "sentinel shadows an older real store",
			setup: func(f *TSSBF) {
				f.Insert(line, 0xf, 100)
				f.InvalidateLine(line, 4)
			},
			lookupAddr: line, lookupBAB: 0xf,
			wantSSN: InvalidatedSSN, wantTagMatch: true, wantCovered: true,
		},
		{
			name: "younger real store shadows the sentinel",
			setup: func(f *TSSBF) {
				f.InvalidateLine(line, 4)
				f.Insert(line, 0b0011, 200)
			},
			lookupAddr: line, lookupBAB: 0b0001,
			// Correct: the local store is now the youngest writer of those
			// bytes, and a load cloaked onto it forwards its value.
			wantSSN: 200, wantTagMatch: true, wantCovered: true,
		},
		{
			name: "disjoint bytes of a post-invalidation store still hit the sentinel",
			setup: func(f *TSSBF) {
				f.InvalidateLine(line, 4)
				f.Insert(line, 0b0011, 200) // local store wrote the low half only
			},
			lookupAddr: line, lookupBAB: 0b1100,
			wantSSN: InvalidatedSSN, wantTagMatch: true, wantCovered: true,
		},
		{
			name: "conservative fallback ignores the sentinel as a lower bound",
			setup: func(f *TSSBF) {
				// Same set, different word: a tag miss falls back to the
				// set-minimum SSN. The sentinel must never be that minimum
				// while a real store is present (it would turn the lower
				// bound into MaxInt64 and force re-execution of everything
				// aliasing the set).
				f.Insert(line, 0xf, 7)
				f.InvalidateLine(line, 4)
			},
			lookupAddr: aliasOf(line), // same set index, different tag
			lookupBAB:  0xf,
			wantSSN:    7, wantTagMatch: false, wantCovered: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewTSSBF(DefaultTSSBFConfig())
			tc.setup(f)
			ssn, match, covered := f.LookupCovering(tc.lookupAddr, tc.lookupBAB)
			if ssn != tc.wantSSN || match != tc.wantTagMatch || covered != tc.wantCovered {
				t.Fatalf("LookupCovering(0x%x, %#b) = (%d, %v, %v), want (%d, %v, %v)",
					tc.lookupAddr, tc.lookupBAB, ssn, match, covered,
					tc.wantSSN, tc.wantTagMatch, tc.wantCovered)
			}
			if got := f.Lookup(tc.lookupAddr, tc.lookupBAB); got != tc.wantSSN {
				t.Fatalf("Lookup = %d, want %d", got, tc.wantSSN)
			}
		})
	}
}

// aliasOf finds a different word address mapping to the same filter set
// (the index hash folds upper address bits, so a fixed stride does not
// alias reliably).
func aliasOf(addr uint32) uint32 {
	f := NewTSSBF(DefaultTSSBFConfig())
	for a := addr + 4; ; a += 4 {
		if f.index(a) == f.index(addr) && f.tag(a) != f.tag(addr) {
			return a
		}
	}
}

// The sentinel is only useful if it is strictly greater than every SSN a
// real store can carry, so it fails the cache-sourced (>) and
// store-sourced (!=) checks for ANY bypass/vulnerability SSN.
func TestInvalidatedSSNSentinelProperties(t *testing.T) {
	if InvalidatedSSN != math.MaxInt64 {
		t.Fatalf("InvalidatedSSN = %d, want math.MaxInt64", int64(InvalidatedSSN))
	}
	for _, real := range []int64{0, 1, 1 << 20, 1 << 40, math.MaxInt64 - 1} {
		if InvalidatedSSN <= real {
			t.Fatalf("sentinel not above real SSN %d", real)
		}
		if !NeedsReexecCacheSourced(InvalidatedSSN, real) {
			t.Errorf("cache-sourced check passed against SSN %d", real)
		}
		if !NeedsReexecStoreSourced(InvalidatedSSN, real) {
			t.Errorf("store-sourced check passed against SSN %d", real)
		}
	}
}

// FIFO eviction is the sentinel's documented hole: enough later stores
// aliasing the same set push the stamp out, and the filter's answer
// degrades to the conservative set minimum — which no longer forces
// re-execution. The multicore machine closes this hole with its
// retire-time backstop re-read; this test pins the hole itself so the
// backstop's reason-to-exist stays visible.
func TestTSSBFSentinelFIFOEviction(t *testing.T) {
	cfg := DefaultTSSBFConfig()
	f := NewTSSBF(cfg)
	f.InvalidateLine(0x8000, 4)
	if got := f.Lookup(0x8000, 0xf); got != InvalidatedSSN {
		t.Fatalf("sentinel not installed: %d", got)
	}
	// Fill the set with younger real stores to the same word: each insert
	// appends a fresh FIFO entry, so Ways inserts evict the stamp.
	for i := 0; i < cfg.Ways; i++ {
		f.Insert(0x8000, 0xf, int64(1000+i))
	}
	got, match, _ := f.LookupCovering(0x8000, 0xf)
	if got == InvalidatedSSN {
		t.Fatal("sentinel survived a full set of younger inserts; FIFO eviction broken")
	}
	if !match || got != int64(1000+cfg.Ways-1) {
		t.Fatalf("youngest real store must win after eviction: ssn=%d match=%v", got, match)
	}
}
