// Package memdep implements the memory dependence machinery of the
// store-queue-free designs: store sequence number (SSN) tracking, the
// Tagged Store Sequence Bloom Filter (T-SSBF), the path-sensitive Store
// Distance Predictor with its confidence counters (balanced update for
// NoSQ, biased divide-by-two update for DMDP), the Store Vulnerability
// Window re-execution policy, and the Store Sets predictor used by the
// baseline store-queue machine.
package memdep

import "math"

// SSN tracks the three globally observable store sequence registers
// (paper §IV): Rename is incremented when a store renames, Retire when it
// leaves the ROB for the store buffer, Commit when it writes the cache.
type SSN struct {
	Rename int64
	Retire int64
	Commit int64
}

// TSSBFConfig sets the filter geometry. The paper's configuration is
// 128 entries, 4-way set associative (32 sets), 20-bit SSN + 4-bit BAB +
// 25-bit tag per entry (6.125 Kbit total).
type TSSBFConfig struct {
	Sets int
	Ways int
}

// DefaultTSSBFConfig matches the paper.
func DefaultTSSBFConfig() TSSBFConfig { return TSSBFConfig{Sets: 32, Ways: 4} }

type tssbfEntry struct {
	tag   uint32
	ssn   int64
	bab   uint8
	valid bool
}

// TSSBF is the Tagged Store Sequence Bloom Filter: an N-way
// set-associative structure indexed by the (hashed) word address whose
// sets behave as FIFOs of the last N store SSNs mapping there (paper
// §IV-A b). Retiring stores insert; retiring loads look up their
// youngest colliding store's SSN.
//
// Storage is one flat array (set i occupies entries[i*Ways:] with lens[i]
// valid slots, ordered oldest..youngest): the filter is probed once per
// retiring load and store, and the flat layout avoids the extra pointer
// hop and per-set slice headers of a [][]entry.
type TSSBF struct {
	cfg     TSSBFConfig
	entries []tssbfEntry
	lens    []int

	Inserts, Lookups, TagMisses int64
}

// NewTSSBF builds the filter.
func NewTSSBF(cfg TSSBFConfig) *TSSBF {
	return &TSSBF{
		cfg:     cfg,
		entries: make([]tssbfEntry, cfg.Sets*cfg.Ways),
		lens:    make([]int, cfg.Sets),
	}
}

// set returns set si's valid entries, oldest first.
func (t *TSSBF) set(si uint32) []tssbfEntry {
	base := int(si) * t.cfg.Ways
	return t.entries[base : base+t.lens[si]]
}

func (t *TSSBF) index(wordAddr uint32) uint32 {
	w := wordAddr >> 2
	// Fold the upper bits in so distinct regions spread across sets.
	return (w ^ w>>5 ^ w>>11) & uint32(t.cfg.Sets-1)
}

func (t *TSSBF) tag(wordAddr uint32) uint32 { return wordAddr >> 2 }

// Insert records a retiring store's word address, byte-access bits and
// SSN. Sets are FIFOs: the oldest entry leaves when the set is full. A
// store writing a word already present still inserts a fresh entry (the
// youngest match wins on lookup, like the paper's FIFO organization).
func (t *TSSBF) Insert(wordAddr uint32, bab uint8, ssn int64) {
	t.Inserts++
	si := t.index(wordAddr)
	set := t.set(si)
	n := len(set)
	if n == t.cfg.Ways {
		copy(set, set[1:])
		n--
	}
	t.entries[int(si)*t.cfg.Ways+n] = tssbfEntry{tag: t.tag(wordAddr), ssn: ssn, bab: bab, valid: true}
	t.lens[si] = n + 1
}

// Lookup returns the SSN of the youngest store whose word address matches
// and whose byte-access bits overlap the load's. When no entry matches,
// the smallest SSN in the set is returned (a conservative lower bound: the
// colliding store, if any, retired at least that long ago). An empty set
// returns 0 (no possible in-flight collision).
func (t *TSSBF) Lookup(wordAddr uint32, bab uint8) int64 {
	t.Lookups++
	set := t.set(t.index(wordAddr))
	tag := t.tag(wordAddr)
	// Youngest first: scan from the back of the FIFO.
	for i := len(set) - 1; i >= 0; i-- {
		e := set[i]
		if e.valid && e.tag == tag && e.bab&bab != 0 {
			return e.ssn
		}
	}
	t.TagMisses++
	min := int64(0)
	for _, e := range set {
		if e.valid && (min == 0 || e.ssn < min) {
			min = e.ssn
		}
	}
	return min
}

// LookupCovering reports, in addition to Lookup, whether a real tag match
// was found (vs the conservative set-minimum fallback) and whether the
// matching store's byte-access bits fully cover the load's (store.bab &
// load.bab == load.bab, paper Fig. 11). Training should only create
// dependencies on tag matches; the fallback SSN is an upper bound for the
// vulnerability check, not evidence of a collision.
func (t *TSSBF) LookupCovering(wordAddr uint32, bab uint8) (ssn int64, tagMatch, covered bool) {
	set := t.set(t.index(wordAddr))
	tag := t.tag(wordAddr)
	for i := len(set) - 1; i >= 0; i-- {
		e := set[i]
		if e.valid && e.tag == tag && e.bab&bab != 0 {
			return e.ssn, true, e.bab&bab == bab
		}
	}
	return t.Lookup(wordAddr, bab), false, false
}

// InvalidatedSSN marks a filter entry written by a remote-core line
// invalidation. It is strictly greater than any real store's SSN, so it
// unconditionally fails BOTH re-execution checks: cache-sourced
// (collidingSSN > ssnNvul) and store-sourced (collidingSSN != ssnByp).
// No forward-looking real SSN has that property — the paper's commit+1
// stamp (and even rename+1) can coincide with the SSN a later store
// renames with; a load wrongly cloaked onto that store then sees
// collidingSSN == ssnByp, skips its re-execution and retires a stale
// forwarded value. Training paths ignore the sentinel: EntryBySeq
// resolves it to no store and the distance computation goes negative.
const InvalidatedSSN = math.MaxInt64

// InvalidateLine implements the multi-core consistency hook (paper §IV-F):
// when another core invalidates a cache line, every word of that line is
// written into the filter with full byte-access bits and InvalidatedSSN,
// so loads that touched those words re-execute unconditionally.
func (t *TSSBF) InvalidateLine(lineAddr uint32, lineBytes int) {
	for off := 0; off < lineBytes; off += 4 {
		t.Insert(lineAddr+uint32(off), 0xf, InvalidatedSSN)
	}
}
