package memdep

import (
	"encoding/binary"
	"fmt"
)

// Functional-warming support for the store-distance predictor and the
// T-SSBF. The SDP tables are LRU structures and use the same
// rank-normalized canonical encoding as the caches; the T-SSBF sets are
// FIFOs whose order is already explicit in the flat layout, so they
// serialize exactly.

const (
	sdpEntryBytes   = 4 + 8 + 1 // tag + dist + conf
	tssbfEntryBytes = 4 + 8 + 1 // tag + ssn + bab
)

// WarmStateLen returns the maximum encoded warm-state size.
func (s *SDP) WarmStateLen() int {
	return 2 * len(s.ps.sets) * (1 + s.cfg.Ways*sdpEntryBytes)
}

// AppendWarmState appends both tables' canonical warm encodings
// (path-insensitive first): per set, a count byte then the valid ways
// oldest-to-youngest as tag, dist and confidence.
func (s *SDP) AppendWarmState(buf []byte) []byte {
	buf = s.pi.appendWarm(buf)
	return s.ps.appendWarm(buf)
}

// LoadWarmState replaces both tables' state with the encoded state and
// returns the bytes consumed. Counters are untouched.
func (s *SDP) LoadWarmState(buf []byte) (int, error) {
	n1, err := s.pi.loadWarm(buf, s.cfg.Ways, s.cfg.ConfMax)
	if err != nil {
		return 0, fmt.Errorf("sdp pi: %w", err)
	}
	n2, err := s.ps.loadWarm(buf[n1:], s.cfg.Ways, s.cfg.ConfMax)
	if err != nil {
		return 0, fmt.Errorf("sdp ps: %w", err)
	}
	return n1 + n2, nil
}

// CopyWarmFrom transplants src's table state into s (same geometry
// assumed). Counters are untouched.
func (s *SDP) CopyWarmFrom(src *SDP) {
	s.pi.copyFrom(src.pi)
	s.ps.copyFrom(src.ps)
}

func (t *sdpTable) appendWarm(buf []byte) []byte {
	var orderBuf [64]int
	order := orderBuf[:]
	for si := range t.sets {
		set := t.sets[si]
		if len(set) > len(order) {
			order = make([]int, len(set))
		}
		n := 0
		for i := range set {
			if !set[i].valid {
				continue
			}
			j := n
			for j > 0 && set[order[j-1]].used > set[i].used {
				order[j] = order[j-1]
				j--
			}
			order[j] = i
			n++
		}
		buf = append(buf, byte(n))
		for k := 0; k < n; k++ {
			e := &set[order[k]]
			buf = binary.LittleEndian.AppendUint32(buf, e.tag)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.dist))
			buf = append(buf, e.conf)
		}
	}
	return buf
}

func (t *sdpTable) loadWarm(buf []byte, ways int, confMax uint8) (int, error) {
	off := 0
	for si := range t.sets {
		set := t.sets[si]
		if off >= len(buf) {
			return 0, fmt.Errorf("warm state truncated at set %d", si)
		}
		n := int(buf[off])
		off++
		if n > ways {
			return 0, fmt.Errorf("warm state set %d holds %d ways (table has %d)", si, n, ways)
		}
		if off+n*sdpEntryBytes > len(buf) {
			return 0, fmt.Errorf("warm state truncated in set %d", si)
		}
		for i := range set {
			set[i] = sdpEntry{}
		}
		for k := 0; k < n; k++ {
			conf := buf[off+12]
			// Reject rather than clamp: every accepted encoding must be
			// canonical (load-then-serialize is the identity).
			if conf > confMax {
				return 0, fmt.Errorf("warm state set %d has confidence %d (max %d)", si, conf, confMax)
			}
			set[k] = sdpEntry{
				tag:   binary.LittleEndian.Uint32(buf[off:]),
				dist:  int64(binary.LittleEndian.Uint64(buf[off+4:])),
				conf:  conf,
				valid: true,
				used:  int64(k + 1),
			}
			off += sdpEntryBytes
		}
	}
	t.tick = int64(ways)
	return off, nil
}

func (t *sdpTable) copyFrom(src *sdpTable) {
	for si := range t.sets {
		copy(t.sets[si], src.sets[si])
	}
	t.tick = src.tick
}

// WarmStateLen returns the maximum encoded warm-state size.
func (t *TSSBF) WarmStateLen() int {
	return t.cfg.Sets * (1 + t.cfg.Ways*tssbfEntryBytes)
}

// AppendWarmState appends the filter's exact state: per set, a count
// byte then the valid entries oldest-to-youngest (FIFO order) as tag,
// SSN and byte-access bits.
func (t *TSSBF) AppendWarmState(buf []byte) []byte {
	for si := 0; si < t.cfg.Sets; si++ {
		set := t.set(uint32(si))
		buf = append(buf, byte(len(set)))
		for i := range set {
			buf = binary.LittleEndian.AppendUint32(buf, set[i].tag)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(set[i].ssn))
			buf = append(buf, set[i].bab)
		}
	}
	return buf
}

// LoadWarmState replaces the filter's state with the encoded state and
// returns the bytes consumed. Counters are untouched.
func (t *TSSBF) LoadWarmState(buf []byte) (int, error) {
	off := 0
	for si := 0; si < t.cfg.Sets; si++ {
		if off >= len(buf) {
			return 0, fmt.Errorf("tssbf: warm state truncated at set %d", si)
		}
		n := int(buf[off])
		off++
		if n > t.cfg.Ways {
			return 0, fmt.Errorf("tssbf: warm state set %d holds %d ways (filter has %d)", si, n, t.cfg.Ways)
		}
		if off+n*tssbfEntryBytes > len(buf) {
			return 0, fmt.Errorf("tssbf: warm state truncated in set %d", si)
		}
		base := si * t.cfg.Ways
		for k := 0; k < t.cfg.Ways; k++ {
			t.entries[base+k] = tssbfEntry{}
		}
		for k := 0; k < n; k++ {
			t.entries[base+k] = tssbfEntry{
				tag:   binary.LittleEndian.Uint32(buf[off:]),
				ssn:   int64(binary.LittleEndian.Uint64(buf[off+4:])),
				bab:   buf[off+12],
				valid: true,
			}
			off += tssbfEntryBytes
		}
		t.lens[si] = n
	}
	return off, nil
}

// CopyWarmRebased transplants src's state into t with every SSN shifted
// down by base. Functional warming counts stores with absolute SSNs
// (1..N over the profiled prefix); an interval's detailed core restarts
// its SSN registers at zero, so the pre-interval stores must appear as
// SSNs <= 0 — older than anything the interval renames — while their
// tag presence still answers "which store last wrote this word" with
// the true distance: (StoresBefore + base) - ssn == StoresBefore -
// (ssn - base). Counters are untouched.
func (t *TSSBF) CopyWarmRebased(src *TSSBF, base int64) {
	copy(t.entries, src.entries)
	copy(t.lens, src.lens)
	for i := range t.entries {
		if t.entries[i].valid {
			t.entries[i].ssn -= base
		}
	}
}
