package memdep

// DistancePredictor is the interface between the rename stage and a
// store distance predictor implementation: the paper's two-table
// path-sensitive design (SDP) or the TAGE-like alternative below.
type DistancePredictor interface {
	// Predict returns the store-distance prediction for the load at pc
	// under the given global branch history; ok is false when the load
	// is predicted independent.
	Predict(pc, hist uint32) (p Prediction, ok bool)
	// TrainCorrect rewards a correct dependence prediction.
	TrainCorrect(pc, hist uint32, dist int64)
	// TrainWrong records a mispredicted or newly discovered dependence
	// with the observed distance.
	TrainWrong(pc, hist uint32, actualDist int64)
}

var (
	_ DistancePredictor = (*SDP)(nil)
	_ DistancePredictor = (*TAGESDP)(nil)
)

// TAGEConfig configures the TAGE-like store distance predictor: a tagless
// base table plus tagged tables indexed with geometrically increasing
// history lengths (Seznec & Michaud), adapted to distance prediction the
// way Perais & Seznec's Instruction Distance Predictor is — the paper's
// related-work section notes such a predictor "could be tuned as a Store
// Distance Predictor and adopted to DMDP" (§VII).
type TAGEConfig struct {
	BaseEntries  int   // tagless base table (power of two)
	TableEntries int   // per tagged table (power of two)
	HistoryLens  []int // geometric history lengths, shortest first
	TagBits      int
	ConfInit     uint8
	ConfMax      uint8
	ConfHigh     uint8
	Biased       bool // divide-by-two on mispredict (DMDP) vs -1 (NoSQ)
	UsefulMax    uint8
}

// DefaultTAGEConfig sizes the predictor comparably to the paper's 8.75KB
// two-table SDP.
func DefaultTAGEConfig(biased bool) TAGEConfig {
	return TAGEConfig{
		BaseEntries:  1024,
		TableEntries: 256,
		HistoryLens:  []int{2, 4, 8, 16},
		TagBits:      10,
		ConfInit:     64,
		ConfMax:      127,
		ConfHigh:     63,
		Biased:       biased,
		UsefulMax:    3,
	}
}

type tageEntry struct {
	tag    uint32
	dist   int64
	conf   uint8
	useful uint8
	valid  bool
}

type tageTable struct {
	entries []tageEntry
	histLen int
}

// TAGESDP is the TAGE-like store distance predictor.
type TAGESDP struct {
	cfg    TAGEConfig
	base   []sdpEntry // tagless: dist + conf per PC hash
	tables []tageTable

	Predictions, TaggedHits, BaseHits, Allocs int64
}

// NewTAGESDP builds the predictor.
func NewTAGESDP(cfg TAGEConfig) *TAGESDP {
	t := &TAGESDP{cfg: cfg, base: make([]sdpEntry, cfg.BaseEntries)}
	for _, l := range cfg.HistoryLens {
		t.tables = append(t.tables, tageTable{
			entries: make([]tageEntry, cfg.TableEntries),
			histLen: l,
		})
	}
	return t
}

// foldHistory compresses the low bits of hist into width bits.
func foldHistory(hist uint32, bits, width int) uint32 {
	h := hist & (1<<bits - 1)
	var f uint32
	for h != 0 {
		f ^= h & (1<<width - 1)
		h >>= width
	}
	return f
}

func (t *TAGESDP) index(ti int, pc, hist uint32) uint32 {
	tab := &t.tables[ti]
	w := log2int(len(tab.entries))
	f := foldHistory(hist, tab.histLen, w)
	return (pc>>2 ^ pc>>(2+uint(w)) ^ f) & uint32(len(tab.entries)-1)
}

func (t *TAGESDP) tagOf(ti int, pc, hist uint32) uint32 {
	tab := &t.tables[ti]
	f := foldHistory(hist, tab.histLen, t.cfg.TagBits-1)
	return (pc>>2 ^ pc>>7 ^ f<<1) & (1<<t.cfg.TagBits - 1)
}

func (t *TAGESDP) baseIndex(pc uint32) uint32 {
	return pc >> 2 & uint32(len(t.base)-1)
}

func log2int(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// provider finds the longest-history tag match (-1 = base table).
func (t *TAGESDP) provider(pc, hist uint32) int {
	for ti := len(t.tables) - 1; ti >= 0; ti-- {
		e := &t.tables[ti].entries[t.index(ti, pc, hist)]
		if e.valid && e.tag == t.tagOf(ti, pc, hist) {
			return ti
		}
	}
	return -1
}

// Predict implements DistancePredictor.
func (t *TAGESDP) Predict(pc, hist uint32) (Prediction, bool) {
	t.Predictions++
	if ti := t.provider(pc, hist); ti >= 0 {
		t.TaggedHits++
		e := &t.tables[ti].entries[t.index(ti, pc, hist)]
		return Prediction{Dist: e.dist, Confident: e.conf > t.cfg.ConfHigh, PathSensitive: true}, true
	}
	b := &t.base[t.baseIndex(pc)]
	if !b.valid {
		return Prediction{}, false
	}
	t.BaseHits++
	return Prediction{Dist: b.dist, Confident: b.conf > t.cfg.ConfHigh}, true
}

// TrainCorrect implements DistancePredictor.
func (t *TAGESDP) TrainCorrect(pc, hist uint32, dist int64) {
	if ti := t.provider(pc, hist); ti >= 0 {
		e := &t.tables[ti].entries[t.index(ti, pc, hist)]
		if e.conf < t.cfg.ConfMax {
			e.conf++
		}
		if e.useful < t.cfg.UsefulMax {
			e.useful++
		}
		e.dist = dist
	}
	b := &t.base[t.baseIndex(pc)]
	if !b.valid {
		*b = sdpEntry{dist: dist, conf: t.cfg.ConfInit, valid: true}
		return
	}
	if b.conf < t.cfg.ConfMax {
		b.conf++
	}
	b.dist = dist
}

// TrainWrong implements DistancePredictor.
func (t *TAGESDP) TrainWrong(pc, hist uint32, actualDist int64) {
	// Update the base table first; its confidence seeds allocations.
	b := &t.base[t.baseIndex(pc)]
	if !b.valid {
		*b = sdpEntry{dist: actualDist, conf: t.cfg.ConfInit, valid: true}
	} else {
		if t.cfg.Biased {
			b.conf >>= 1
		} else if b.conf > 0 {
			b.conf--
		}
		b.dist = actualDist
	}

	ti := t.provider(pc, hist)
	if ti >= 0 {
		e := &t.tables[ti].entries[t.index(ti, pc, hist)]
		if t.cfg.Biased {
			e.conf >>= 1
		} else if e.conf > 0 {
			e.conf--
		}
		if e.useful > 0 {
			e.useful--
		}
		e.dist = actualDist
	}

	// Allocate one entry in a longer-history table (anti-ping-pong:
	// only into a non-useful slot; inherit the base confidence so
	// per-path variants of an unstable dependence do not restart
	// confident).
	start := ti + 1
	for k := start; k < len(t.tables); k++ {
		idx := t.index(k, pc, hist)
		e := &t.tables[k].entries[idx]
		if !e.valid || e.useful == 0 {
			t.Allocs++
			*e = tageEntry{
				tag:   t.tagOf(k, pc, hist),
				dist:  actualDist,
				conf:  minU8(b.conf, t.cfg.ConfInit),
				valid: true,
			}
			return
		}
		// Slot defended itself: age it.
		e.useful--
	}
}

func minU8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}
