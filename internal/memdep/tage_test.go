package memdep

import "testing"

func newTestTAGE() *TAGESDP {
	return NewTAGESDP(DefaultTAGEConfig(true))
}

func TestTAGEColdMiss(t *testing.T) {
	g := newTestTAGE()
	if _, ok := g.Predict(0x400100, 0); ok {
		t.Fatal("cold predictor should predict independent")
	}
}

func TestTAGELearnsBaseDistance(t *testing.T) {
	g := newTestTAGE()
	g.TrainWrong(0x400100, 0, 5)
	p, ok := g.Predict(0x400100, 0)
	if !ok || p.Dist != 5 {
		t.Fatalf("prediction %+v ok=%v", p, ok)
	}
	if !p.Confident {
		t.Fatal("new dependence starts confident (ConfInit=64)")
	}
}

func TestTAGETaggedOverridesBase(t *testing.T) {
	g := newTestTAGE()
	// Base learns distance 3; a tagged entry for history 0b01 learns 7.
	g.TrainWrong(0x400200, 0b01, 3)
	// The first TrainWrong allocates a tagged entry too; train it to a
	// different distance under the same history.
	g.TrainWrong(0x400200, 0b01, 7)
	p, ok := g.Predict(0x400200, 0b01)
	if !ok || p.Dist != 7 || !p.PathSensitive {
		t.Fatalf("tagged prediction %+v ok=%v", p, ok)
	}
	// A different history that misses the tagged tables falls back to
	// the base table's latest distance.
	p2, ok := g.Predict(0x400200, 0b10111011)
	if !ok {
		t.Fatal("base fallback missing")
	}
	if p2.PathSensitive && p2.Dist == 7 {
		t.Log("different history aliased into the tagged entry (acceptable)")
	}
}

func TestTAGEPathDisambiguation(t *testing.T) {
	g := newTestTAGE()
	pc := uint32(0x400300)
	// Two histories, two stable distances, trained alternately.
	for i := 0; i < 40; i++ {
		g.TrainWrong(pc, 0b0, 2)
		g.TrainWrong(pc, 0b1, 9)
	}
	for i := 0; i < 100; i++ {
		g.TrainCorrect(pc, 0b0, 2)
		g.TrainCorrect(pc, 0b1, 9)
	}
	pa, oka := g.Predict(pc, 0b0)
	pb, okb := g.Predict(pc, 0b1)
	if !oka || !okb {
		t.Fatal("both paths should predict")
	}
	if pa.Dist != 2 || pb.Dist != 9 {
		t.Fatalf("path distances %d/%d, want 2/9", pa.Dist, pb.Dist)
	}
	if !pa.Confident || !pb.Confident {
		t.Fatal("stable paths should become confident")
	}
}

func TestTAGEBiasedConfidenceDrop(t *testing.T) {
	g := newTestTAGE()
	pc := uint32(0x400400)
	g.TrainWrong(pc, 0, 1)
	for i := 0; i < 40; i++ {
		g.TrainCorrect(pc, 0, 1)
	}
	p, _ := g.Predict(pc, 0)
	if !p.Confident {
		t.Fatal("should be confident after a correct streak")
	}
	g.TrainWrong(pc, 0, 2) // biased: conf halves
	p, _ = g.Predict(pc, 0)
	if p.Confident {
		t.Fatal("one biased misprediction should drop below the threshold")
	}
}

func TestTAGEUsefulProtectsEntries(t *testing.T) {
	cfg := DefaultTAGEConfig(false)
	cfg.TableEntries = 2 // force conflicts
	cfg.HistoryLens = []int{2}
	g := NewTAGESDP(cfg)
	// Establish a useful entry.
	g.TrainWrong(0x100, 0, 1)
	for i := 0; i < 5; i++ {
		g.TrainCorrect(0x100, 0, 1)
	}
	allocsBefore := g.Allocs
	// A conflicting PC tries to allocate into the same set repeatedly;
	// the useful entry defends itself at least once (aging).
	g.TrainWrong(0x108, 0, 3)
	g.TrainWrong(0x108, 0, 3)
	if g.Allocs == allocsBefore+2 {
		t.Log("both allocations succeeded; indexes did not conflict (layout-dependent)")
	}
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 8, 4) != 0 {
		t.Fatal("zero history folds to zero")
	}
	// Folding is stable and bounded.
	f := foldHistory(0xabcd, 16, 5)
	if f >= 1<<5 {
		t.Fatalf("fold exceeds width: %x", f)
	}
	if f != foldHistory(0xabcd, 16, 5) {
		t.Fatal("fold not deterministic")
	}
	// Only the low `bits` participate.
	if foldHistory(0xff03, 2, 4) != foldHistory(0x3, 2, 4) {
		t.Fatal("fold must mask history length")
	}
}

func TestTAGEImplementsInterface(t *testing.T) {
	var p DistancePredictor = newTestTAGE()
	p.TrainWrong(0x500, 0, 1)
	if _, ok := p.Predict(0x500, 0); !ok {
		t.Fatal("interface round trip failed")
	}
	p.TrainCorrect(0x500, 0, 1)
}
