package memdep

// SDPConfig configures the Store Distance Predictor (paper §V: two 4-way
// associative 1K-entry tables — one path-insensitive indexed by the load
// PC, one path-sensitive indexed by PC ⊕ 8-bit branch history — each
// entry holding a 7-bit confidence counter, a tag and a 6-bit distance).
type SDPConfig struct {
	Sets        int // sets per table (1K entries / 4 ways = 256)
	Ways        int
	HistoryBits int   // branch history bits folded into the PS index
	ConfInit    uint8 // initial confidence for a new dependence (64)
	ConfMax     uint8 // saturation (127, 7-bit)
	ConfHigh    uint8 // > ConfHigh -> memory cloaking (63)
	Biased      bool  // true: divide-by-two on mispredict (DMDP); false: -1 (NoSQ)
}

// DefaultSDPConfig matches the paper's predictor.
func DefaultSDPConfig(biased bool) SDPConfig {
	return SDPConfig{
		Sets:        256,
		Ways:        4,
		HistoryBits: 8,
		ConfInit:    64,
		ConfMax:     127,
		ConfHigh:    63,
		Biased:      biased,
	}
}

type sdpEntry struct {
	tag   uint32
	dist  int64
	conf  uint8
	valid bool
	used  int64
}

type sdpTable struct {
	sets [][]sdpEntry
	tick int64
}

func newSDPTable(sets, ways int) *sdpTable {
	t := &sdpTable{sets: make([][]sdpEntry, sets)}
	for i := range t.sets {
		t.sets[i] = make([]sdpEntry, ways)
	}
	return t
}

func (t *sdpTable) find(index, tag uint32) *sdpEntry {
	set := t.sets[index%uint32(len(t.sets))]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			t.tick++
			set[i].used = t.tick
			return &set[i]
		}
	}
	return nil
}

func (t *sdpTable) insert(index, tag uint32, dist int64, conf uint8) *sdpEntry {
	set := t.sets[index%uint32(len(t.sets))]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	t.tick++
	set[victim] = sdpEntry{tag: tag, dist: dist, conf: conf, valid: true, used: t.tick}
	return &set[victim]
}

// Prediction is one Store Distance Predictor outcome.
type Prediction struct {
	Dist          int64 // predicted store distance (0 = the most recent store)
	Confident     bool  // conf > ConfHigh: use memory cloaking
	PathSensitive bool  // supplied by the path-sensitive table
}

// SDP is the two-table Store Distance Predictor.
type SDP struct {
	cfg SDPConfig
	ps  *sdpTable // path-sensitive: indexed by PC xor history
	pi  *sdpTable // path-insensitive: indexed by PC

	Predictions, PSHits, PIHits, Trainings int64
}

// NewSDP builds the predictor.
func NewSDP(cfg SDPConfig) *SDP {
	return &SDP{
		cfg: cfg,
		ps:  newSDPTable(cfg.Sets, cfg.Ways),
		pi:  newSDPTable(cfg.Sets, cfg.Ways),
	}
}

func (s *SDP) psIndex(pc, hist uint32) uint32 {
	h := hist & (1<<s.cfg.HistoryBits - 1)
	return (pc >> 2) ^ h
}

func (s *SDP) piIndex(pc uint32) uint32 { return pc >> 2 }

func (s *SDP) tag(pc uint32) uint32 { return pc >> 2 }

// Predict looks up both tables simultaneously; the path-sensitive
// prediction wins when available (paper §IV-A d). The boolean result is
// false when the load misses both tables, in which case it is predicted
// independent and may read the cache as soon as its address is ready.
func (s *SDP) Predict(pc, hist uint32) (Prediction, bool) {
	s.Predictions++
	if e := s.ps.find(s.psIndex(pc, hist), s.tag(pc)); e != nil {
		s.PSHits++
		return Prediction{Dist: e.dist, Confident: e.conf > s.cfg.ConfHigh, PathSensitive: true}, true
	}
	if e := s.pi.find(s.piIndex(pc), s.tag(pc)); e != nil {
		s.PIHits++
		return Prediction{Dist: e.dist, Confident: e.conf > s.cfg.ConfHigh}, true
	}
	return Prediction{}, false
}

// TrainCorrect rewards a correct dependence prediction for the load at pc:
// the confidence counters increment (saturating) in both tables. The
// path-insensitive table trains first; a missing path-sensitive entry is
// seeded from the (updated) path-insensitive confidence, so per-path
// variants of an already-known dependence do not restart at full
// confidence.
func (s *SDP) TrainCorrect(pc, hist uint32, dist int64) {
	s.Trainings++
	piConf := s.trainTable(s.pi, s.piIndex(pc), pc, dist, true, s.cfg.ConfInit)
	s.trainTable(s.ps, s.psIndex(pc, hist), pc, dist, true, piConf)
}

// TrainWrong records a mispredicted (or newly discovered) dependence with
// the actual observed distance. The confidence update is balanced (-1,
// NoSQ) or biased (÷2, DMDP) per the configuration. A genuinely new
// dependence starts at ConfInit (paper §V); a new path-sensitive variant
// of a known unstable dependence inherits the path-insensitive
// confidence instead of resetting to confident.
func (s *SDP) TrainWrong(pc, hist uint32, actualDist int64) {
	s.Trainings++
	piConf := s.trainTable(s.pi, s.piIndex(pc), pc, actualDist, false, s.cfg.ConfInit)
	s.trainTable(s.ps, s.psIndex(pc, hist), pc, actualDist, false, piConf)
}

// trainTable updates (or inserts at insertConf) one table's entry and
// returns the entry's resulting confidence.
func (s *SDP) trainTable(t *sdpTable, index uint32, pc uint32, dist int64, correct bool, insertConf uint8) uint8 {
	e := t.find(index, s.tag(pc))
	if e == nil {
		e = t.insert(index, s.tag(pc), dist, insertConf)
		return e.conf
	}
	if correct {
		if e.conf < s.cfg.ConfMax {
			e.conf++
		}
		e.dist = dist
		return e.conf
	}
	if s.cfg.Biased {
		e.conf >>= 1
	} else if e.conf > 0 {
		e.conf--
	}
	e.dist = dist
	return e.conf
}

// Confidence returns the current confidence for pc in the path-sensitive
// table (or the path-insensitive one as fallback); used by tests and
// introspection tools.
func (s *SDP) Confidence(pc, hist uint32) (uint8, bool) {
	if e := s.ps.find(s.psIndex(pc, hist), s.tag(pc)); e != nil {
		return e.conf, true
	}
	if e := s.pi.find(s.piIndex(pc), s.tag(pc)); e != nil {
		return e.conf, true
	}
	return 0, false
}
