package memdep

// StoreSets implements the Store Set memory dependence predictor
// (Chrysos & Emer, ISCA '98) used by the baseline store-queue machine.
// The Store Set ID Table (SSIT) maps load and store PCs to a store-set
// id; the Last Fetched Store Table (LFST) tracks the most recently
// renamed store of each set. A load renames with a dependence on its
// set's last fetched store and may not issue before that store executes.
type StoreSets struct {
	ssit    []int32 // PC-indexed (direct mapped); -1 = no set
	lfst    []int64 // set id -> inum of last renamed store (0 = none)
	nextSet int32
	numSets int

	Violations, Assignments int64
}

// NewStoreSets builds the predictor with an SSIT of ssitEntries (power of
// two) and numSets store sets.
func NewStoreSets(ssitEntries, numSets int) *StoreSets {
	s := &StoreSets{
		ssit:    make([]int32, ssitEntries),
		lfst:    make([]int64, numSets),
		numSets: numSets,
	}
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	return s
}

func (s *StoreSets) index(pc uint32) uint32 {
	return pc >> 2 & uint32(len(s.ssit)-1)
}

// OnViolation records a memory ordering violation between the load at
// loadPC and the store at storePC, assigning or merging their store sets
// (simplified merge: both adopt the lower-numbered existing set).
func (s *StoreSets) OnViolation(loadPC, storePC uint32) {
	s.Violations++
	li, si := s.index(loadPC), s.index(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls < 0 && ss < 0:
		s.Assignments++
		id := s.nextSet % int32(s.numSets)
		s.nextSet++
		s.ssit[li], s.ssit[si] = id, id
	case ls < 0:
		s.ssit[li] = ss
	case ss < 0:
		s.ssit[si] = ls
	case ls < ss:
		s.ssit[si] = ls
	default:
		s.ssit[li] = ss
	}
}

// StoreRenamed is called when a store renames: it returns the dynamic
// instruction number of the previous store in its set that this store
// must order behind (0 = none), and records this store as the set's last
// fetched store.
func (s *StoreSets) StoreRenamed(storePC uint32, inum int64) int64 {
	id := s.ssit[s.index(storePC)]
	if id < 0 {
		return 0
	}
	prev := s.lfst[id]
	s.lfst[id] = inum
	return prev
}

// StoreExecuted clears the LFST entry if this store is still the set's
// last fetched store (so later loads need not wait for it).
func (s *StoreSets) StoreExecuted(storePC uint32, inum int64) {
	id := s.ssit[s.index(storePC)]
	if id >= 0 && s.lfst[id] == inum {
		s.lfst[id] = 0
	}
}

// LoadRenamed returns the dynamic instruction number of the store the
// load must wait for before issuing (0 = unconstrained).
func (s *StoreSets) LoadRenamed(loadPC uint32) int64 {
	id := s.ssit[s.index(loadPC)]
	if id < 0 {
		return 0
	}
	return s.lfst[id]
}

// Invalidate clears LFST entries referring to squashed instructions
// (inum greater than the recovery point).
func (s *StoreSets) Invalidate(afterInum int64) {
	for i := range s.lfst {
		if s.lfst[i] > afterInum {
			s.lfst[i] = 0
		}
	}
}
