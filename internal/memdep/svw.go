package memdep

// Store Vulnerability Window re-execution policy (paper Table II).
//
// Every speculative load is verified at retire by consulting the T-SSBF
// for its youngest colliding store's SSN. Re-execution — which must wait
// for the store buffer to drain — is required only when the colliding
// store may have changed memory after the load obtained its value.

// NeedsReexecCacheSourced applies the policy for loads that read their
// data from the cache: re-execute iff the colliding store committed after
// the load read (colliding SSN > the SSNcommit captured at execute,
// "SSNnvul").
func NeedsReexecCacheSourced(collidingSSN, ssnNvul int64) bool {
	return collidingSSN > ssnNvul
}

// NeedsReexecStoreSourced applies the policy for loads whose data was
// forwarded from an in-flight store (memory cloaking, or a predication
// CMOV that selected the store's data): re-execute iff the actual
// colliding store differs from the predicted one.
func NeedsReexecStoreSourced(collidingSSN, ssnByp int64) bool {
	return collidingSSN != ssnByp
}
