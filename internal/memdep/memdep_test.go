package memdep

import (
	"testing"
	"testing/quick"
)

// ---------- T-SSBF ----------

func TestTSSBFInsertLookup(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	f.Insert(0x1000, 0xf, 10)
	if got := f.Lookup(0x1000, 0xf); got != 10 {
		t.Fatalf("lookup = %d, want 10", got)
	}
}

func TestTSSBFYoungestWins(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	f.Insert(0x1000, 0xf, 10)
	f.Insert(0x1000, 0xf, 20)
	if got := f.Lookup(0x1000, 0xf); got != 20 {
		t.Fatalf("lookup = %d, want youngest 20", got)
	}
}

func TestTSSBFBABOverlap(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	f.Insert(0x1000, 0b0011, 5) // store wrote low half
	// Disjoint BAB does not tag-match: the lookup takes the conservative
	// miss path (set minimum — here coincidentally also 5, so check the
	// miss counter rather than the value).
	before := f.TagMisses
	f.Lookup(0x1000, 0b1100)
	if f.TagMisses != before+1 {
		t.Fatal("disjoint BAB must take the miss path")
	}
	if got := f.Lookup(0x1000, 0b0010); got != 5 || f.TagMisses != before+1 {
		t.Fatalf("overlapping BAB should match, got %d", got)
	}
}

func TestTSSBFMissReturnsSetMinimum(t *testing.T) {
	cfg := TSSBFConfig{Sets: 1, Ways: 4} // everything in one set
	f := NewTSSBF(cfg)
	f.Insert(0x1000, 0xf, 30)
	f.Insert(0x2000, 0xf, 10)
	f.Insert(0x3000, 0xf, 20)
	// A miss (different tag) returns the smallest SSN in the set.
	if got := f.Lookup(0x9000, 0xf); got != 10 {
		t.Fatalf("miss lookup = %d, want set minimum 10", got)
	}
}

func TestTSSBFEmptySetReturnsZero(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	if got := f.Lookup(0x4000, 0xf); got != 0 {
		t.Fatalf("empty lookup = %d", got)
	}
}

func TestTSSBFFIFOEviction(t *testing.T) {
	cfg := TSSBFConfig{Sets: 1, Ways: 2}
	f := NewTSSBF(cfg)
	f.Insert(0x1000, 0xf, 1)
	f.Insert(0x2000, 0xf, 2)
	f.Insert(0x3000, 0xf, 3) // evicts ssn 1
	if got := f.Lookup(0x1000, 0xf); got == 1 {
		t.Fatal("oldest entry should have been evicted")
	}
	if got := f.Lookup(0x2000, 0xf); got != 2 {
		t.Fatalf("ssn 2 should remain, got %d", got)
	}
}

func TestTSSBFAliasingIsConservative(t *testing.T) {
	// A different word address never tag-matches (the tag is the full
	// word address); it takes the conservative miss path, whose result
	// (the set minimum) may still name the other store's SSN — that is
	// the structure's intended conservatism, not a false positive.
	f := NewTSSBF(TSSBFConfig{Sets: 2, Ways: 4})
	f.Insert(0x1000, 0xf, 50)
	before := f.TagMisses
	f.Lookup(0x1008, 0xf)
	if f.TagMisses != before+1 {
		t.Fatal("different word address must take the miss path")
	}
}

func TestTSSBFLookupCovering(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	f.Insert(0x1000, 0b0011, 7) // store wrote the low half
	ssn, match, covered := f.LookupCovering(0x1000, 0b0001)
	if ssn != 7 || !match || !covered {
		t.Fatalf("byte within stored half: ssn=%d match=%v covered=%v", ssn, match, covered)
	}
	ssn, match, covered = f.LookupCovering(0x1000, 0b0111)
	if ssn != 7 || !match || covered {
		t.Fatalf("wider load must not be covered: ssn=%d match=%v covered=%v", ssn, match, covered)
	}
	if _, match, _ = f.LookupCovering(0x9000, 0b1111); match {
		t.Fatal("different word must not tag-match")
	}
}

func TestTSSBFInvalidateLine(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	f.InvalidateLine(0x2000, 16)
	for off := uint32(0); off < 16; off += 4 {
		got := f.Lookup(0x2000+off, 0xf)
		if got != InvalidatedSSN {
			t.Fatalf("word 0x%x = %d, want the InvalidatedSSN sentinel", 0x2000+off, got)
		}
		// The sentinel must trip both re-execution checks for every
		// possible real SSN — that is the whole point of it.
		if !NeedsReexecCacheSourced(got, 1<<40) || !NeedsReexecStoreSourced(got, 1<<40) {
			t.Fatal("invalidated word did not force re-execution")
		}
	}
}

// Property: after inserting a store, looking it up with any overlapping
// BAB returns an SSN >= that store's (it or a younger alias).
func TestTSSBFNeverForgetsYoungest(t *testing.T) {
	f := NewTSSBF(DefaultTSSBFConfig())
	ssn := int64(0)
	check := func(addr uint32, bab uint8) bool {
		if bab == 0 {
			bab = 0xf
		}
		ssn++
		wa := addr &^ 3
		f.Insert(wa, bab, ssn)
		got := f.Lookup(wa, bab)
		return got == ssn
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// ---------- SVW policy ----------

func TestSVWPolicy(t *testing.T) {
	// Cache-sourced: re-exec iff colliding > nvul.
	if NeedsReexecCacheSourced(5, 10) {
		t.Error("store committed before read: no reexec")
	}
	if NeedsReexecCacheSourced(10, 10) {
		t.Error("equal SSN: store included in read: no reexec")
	}
	if !NeedsReexecCacheSourced(11, 10) {
		t.Error("younger colliding store: reexec")
	}
	// Store-sourced: re-exec iff mismatch.
	if NeedsReexecStoreSourced(7, 7) {
		t.Error("matching predicted store: no reexec")
	}
	if !NeedsReexecStoreSourced(8, 7) || !NeedsReexecStoreSourced(6, 7) {
		t.Error("different store: reexec")
	}
}

// ---------- SDP ----------

func TestSDPMissPredictsIndependent(t *testing.T) {
	s := NewSDP(DefaultSDPConfig(false))
	if _, ok := s.Predict(0x400100, 0); ok {
		t.Fatal("cold SDP should miss")
	}
}

func TestSDPLearnsDistance(t *testing.T) {
	s := NewSDP(DefaultSDPConfig(false))
	s.TrainWrong(0x400100, 0, 3) // discover dependence at distance 3
	p, ok := s.Predict(0x400100, 0)
	if !ok || p.Dist != 3 {
		t.Fatalf("prediction %+v ok=%v", p, ok)
	}
	if !p.Confident {
		t.Fatal("fresh entry starts at ConfInit=64 > 63: confident")
	}
}

func TestSDPPathSensitivePriority(t *testing.T) {
	s := NewSDP(DefaultSDPConfig(false))
	pc := uint32(0x400100)
	// Train with history 0x5 (PS index pc^5) and distance 2.
	s.TrainWrong(pc, 0x5, 2)
	p, ok := s.Predict(pc, 0x5)
	if !ok || !p.PathSensitive || p.Dist != 2 {
		t.Fatalf("PS prediction %+v", p)
	}
	// A different history misses PS but hits PI.
	p, ok = s.Predict(pc, 0xa3)
	if !ok || p.PathSensitive {
		t.Fatalf("expected PI fallback, got %+v ok=%v", p, ok)
	}
}

func TestSDPPathSensitiveDifferentDistances(t *testing.T) {
	s := NewSDP(DefaultSDPConfig(false))
	pc := uint32(0x400200)
	s.TrainWrong(pc, 0x1, 2)
	s.TrainWrong(pc, 0x2, 5)
	// PI now holds the last-trained distance; PS disambiguates per path.
	p1, _ := s.Predict(pc, 0x1)
	p2, _ := s.Predict(pc, 0x2)
	if p1.Dist != 2 || p2.Dist != 5 {
		t.Fatalf("path-sensitive distances %d/%d, want 2/5", p1.Dist, p2.Dist)
	}
}

func TestSDPBalancedVsBiasedConfidence(t *testing.T) {
	bal := NewSDP(DefaultSDPConfig(false))
	bia := NewSDP(DefaultSDPConfig(true))
	pc := uint32(0x400300)
	for _, s := range []*SDP{bal, bia} {
		s.TrainWrong(pc, 0, 1) // conf=64
		for i := 0; i < 36; i++ {
			s.TrainCorrect(pc, 0, 1) // conf=100
		}
	}
	// One misprediction.
	bal.TrainWrong(pc, 0, 2)
	bia.TrainWrong(pc, 0, 2)
	cb, _ := bal.Confidence(pc, 0)
	ci, _ := bia.Confidence(pc, 0)
	if cb != 99 {
		t.Fatalf("balanced conf = %d, want 99", cb)
	}
	if ci != 50 {
		t.Fatalf("biased conf = %d, want 50", ci)
	}
	// Balanced is still confident; biased fell below the threshold.
	pb, _ := bal.Predict(pc, 0)
	pi, _ := bia.Predict(pc, 0)
	if !pb.Confident || pi.Confident {
		t.Fatalf("confidence flags: balanced=%v biased=%v", pb.Confident, pi.Confident)
	}
}

func TestSDPConfidenceSaturates(t *testing.T) {
	s := NewSDP(DefaultSDPConfig(false))
	pc := uint32(0x400400)
	s.TrainWrong(pc, 0, 1)
	for i := 0; i < 200; i++ {
		s.TrainCorrect(pc, 0, 1)
	}
	c, _ := s.Confidence(pc, 0)
	if c != 127 {
		t.Fatalf("conf = %d, want saturation at 127", c)
	}
	// Balanced decrement floors at 0.
	for i := 0; i < 300; i++ {
		s.TrainWrong(pc, 0, 1)
	}
	c, _ = s.Confidence(pc, 0)
	if c != 0 {
		t.Fatalf("conf = %d, want floor 0", c)
	}
}

func TestSDPLRUWithinSet(t *testing.T) {
	cfg := DefaultSDPConfig(false)
	cfg.Sets = 1
	cfg.Ways = 2
	s := NewSDP(cfg)
	s.TrainWrong(0x100, 0, 1)
	s.TrainWrong(0x200, 0, 2)
	s.TrainCorrect(0x100, 0, 1) // touch 0x100
	s.TrainWrong(0x300, 0, 3)   // evicts 0x200
	if _, ok := s.Predict(0x100, 0); !ok {
		t.Fatal("0x100 evicted despite recent use")
	}
	if p, ok := s.Predict(0x200, 0); ok && p.Dist == 2 {
		t.Fatal("0x200 should have been evicted")
	}
}

// ---------- Store Sets ----------

func TestStoreSetsViolationCreatesDependence(t *testing.T) {
	s := NewStoreSets(1024, 128)
	loadPC, storePC := uint32(0x400100), uint32(0x400200)
	if s.LoadRenamed(loadPC) != 0 {
		t.Fatal("cold load should be unconstrained")
	}
	s.OnViolation(loadPC, storePC)
	s.StoreRenamed(storePC, 42)
	if got := s.LoadRenamed(loadPC); got != 42 {
		t.Fatalf("load should wait for store 42, got %d", got)
	}
	s.StoreExecuted(storePC, 42)
	if got := s.LoadRenamed(loadPC); got != 0 {
		t.Fatalf("after store executes load is unconstrained, got %d", got)
	}
}

func TestStoreSetsStoreOrdering(t *testing.T) {
	s := NewStoreSets(1024, 128)
	s.OnViolation(0x100, 0x200)
	s.OnViolation(0x100, 0x300) // merge: same set now
	prev := s.StoreRenamed(0x200, 10)
	if prev != 0 {
		t.Fatalf("first store unconstrained, got %d", prev)
	}
	prev = s.StoreRenamed(0x300, 11)
	if prev != 10 {
		t.Fatalf("second store in set must order behind 10, got %d", prev)
	}
}

func TestStoreSetsInvalidate(t *testing.T) {
	s := NewStoreSets(1024, 128)
	s.OnViolation(0x100, 0x200)
	s.StoreRenamed(0x200, 50)
	s.Invalidate(40) // store 50 squashed
	if got := s.LoadRenamed(0x100); got != 0 {
		t.Fatalf("squashed store still constrains load: %d", got)
	}
}

func TestStoreSetsMergeKeepsLowerID(t *testing.T) {
	s := NewStoreSets(1024, 128)
	s.OnViolation(0x100, 0x200) // set 0
	s.OnViolation(0x300, 0x400) // set 1
	s.OnViolation(0x100, 0x400) // merge: both end up in set 0
	id1 := s.ssit[s.index(0x100)]
	id2 := s.ssit[s.index(0x400)]
	if id1 != id2 {
		t.Fatalf("merge failed: %d vs %d", id1, id2)
	}
}

// ---------- SSN ----------

func TestSSNOrderingInvariant(t *testing.T) {
	var ssn SSN
	ssn.Rename = 10
	ssn.Retire = 7
	ssn.Commit = 5
	if !(ssn.Commit <= ssn.Retire && ssn.Retire <= ssn.Rename) {
		t.Fatal("SSN registers must be monotone: commit <= retire <= rename")
	}
}
