package memdep

// Fire-and-Forget (Subramaniam & Loh, MICRO 2006) is the other
// store-queue-free design the paper discusses (§VII): instead of the
// *load* predicting which store it depends on, the *store* predicts
// which upcoming load consumes its value and forwards to it directly.
// The paper chose NoSQ as its substrate because store-side prediction
// cannot see the branches between the store and the dependent load —
// it is inherently path-insensitive. The FnF model in this reproduction
// exists to measure exactly that claim (experiment alt-fnf).

// FnFConfig sizes the Store Forwarding Table.
type FnFConfig struct {
	Sets     int
	Ways     int
	ConfInit uint8
	ConfMax  uint8
	ConfHigh uint8
}

// DefaultFnFConfig matches the SDP's storage budget.
func DefaultFnFConfig() FnFConfig {
	return FnFConfig{Sets: 256, Ways: 4, ConfInit: 64, ConfMax: 127, ConfHigh: 63}
}

// FnFPrediction is a store's consumer-load prediction.
type FnFPrediction struct {
	// LoadDist is the number of loads renamed between this store and
	// its predicted consumer (0 = the next load).
	LoadDist int64
	// Confident gates forwarding.
	Confident bool
}

// SFT is the Store Forwarding Table: store PC -> predicted consumer load
// distance, measured in load sequence numbers (LSNs).
type SFT struct {
	cfg   FnFConfig
	table *sdpTable

	Predictions, Hits, Trainings int64
}

// NewSFT builds the table.
func NewSFT(cfg FnFConfig) *SFT {
	return &SFT{cfg: cfg, table: newSDPTable(cfg.Sets, cfg.Ways)}
}

func (s *SFT) index(pc uint32) uint32 { return pc >> 2 }

// Predict returns the store's consumer-load prediction (ok=false when the
// store has no known consumer).
func (s *SFT) Predict(storePC uint32) (FnFPrediction, bool) {
	s.Predictions++
	e := s.table.find(s.index(storePC), s.index(storePC))
	if e == nil {
		return FnFPrediction{}, false
	}
	s.Hits++
	return FnFPrediction{LoadDist: e.dist, Confident: e.conf > s.cfg.ConfHigh}, true
}

// TrainCorrect rewards a correct forwarding.
func (s *SFT) TrainCorrect(storePC uint32, loadDist int64) {
	s.Trainings++
	e := s.table.find(s.index(storePC), s.index(storePC))
	if e == nil {
		s.table.insert(s.index(storePC), s.index(storePC), loadDist, s.cfg.ConfInit)
		return
	}
	if e.conf < s.cfg.ConfMax {
		e.conf++
	}
	e.dist = loadDist
}

// TrainWrong records a mispredicted or newly discovered consumer.
func (s *SFT) TrainWrong(storePC uint32, actualLoadDist int64) {
	s.Trainings++
	e := s.table.find(s.index(storePC), s.index(storePC))
	if e == nil {
		s.table.insert(s.index(storePC), s.index(storePC), actualLoadDist, s.cfg.ConfInit)
		return
	}
	if e.conf > 0 {
		e.conf--
	}
	e.dist = actualLoadDist
}
