package litmus

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/progen"
)

// checkNoGoroutineLeak snapshots the goroutine count and asserts (with
// retries, since pool-worker exits are asynchronous) that it returns to
// baseline — the PR 6 goleak-style gate without the dependency.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func allowedOf(t *testing.T, name string, model core.MemModel) []string {
	t.Helper()
	lt, ok := progen.LitmusShapeByName(name)
	if !ok {
		t.Fatalf("no shape %s", name)
	}
	p, traces, err := prep(lt, 20000)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOracle(model, lt, p, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	allowed, err := o.Allowed()
	if err != nil {
		t.Fatal(err)
	}
	return allowed
}

func contains(set []string, s string) bool {
	for _, a := range set {
		if a == s {
			return true
		}
	}
	return false
}

// TestOracleSB: the canonical discriminator. SC forbids r1=r2=0; TSO
// allows it (both stores buffered past both loads).
func TestOracleSB(t *testing.T) {
	weak := "0:t0=0 1:t0=0 mem:x=1 mem:y=1"
	sc := allowedOf(t, "SB", core.MemSC)
	if len(sc) != 3 || contains(sc, weak) {
		t.Fatalf("SC allowed set wrong: %v", sc)
	}
	tso := allowedOf(t, "SB", core.MemTSO)
	if len(tso) != 4 || !contains(tso, weak) {
		t.Fatalf("TSO allowed set wrong: %v", tso)
	}
}

// TestOracleMPLBCoRRIRIW: shapes whose weak outcomes are forbidden
// under BOTH models (TSO preserves load-load, store-store and
// coherence order).
func TestOracleMPLBCoRRIRIW(t *testing.T) {
	for _, model := range []core.MemModel{core.MemSC, core.MemTSO} {
		if s := allowedOf(t, "MP", model); contains(s, "1:t0=1 1:t1=0 mem:data=1 mem:flag=1") {
			t.Errorf("%v: MP allows flag-without-data: %v", model, s)
		}
		for _, s := range allowedOf(t, "LB", model) {
			if strings.Contains(s, "0:t0=1 1:t0=1") {
				t.Errorf("%v: LB allows r1=r2=1: %v", model, s)
			}
		}
		if s := allowedOf(t, "CoRR", model); contains(s, "1:t0=2 1:t1=1 mem:x=2") {
			t.Errorf("%v: CoRR allows new-then-old: %v", model, s)
		}
		if s := allowedOf(t, "IRIW", model); contains(s, "2:t0=1 2:t1=0 3:t0=1 3:t1=0 mem:x=1 mem:y=1") {
			t.Errorf("%v: IRIW allows divergent write orders: %v", model, s)
		}
	}
}

// TestOracleCoRRMonotone: every TSO-allowed CoRR outcome respects
// coherence (a later read of the same word never sees an older value).
func TestOracleCoRRMonotone(t *testing.T) {
	for _, s := range allowedOf(t, "CoRR", core.MemTSO) {
		var r1, r2, memx uint32
		if _, err := fmt.Sscanf(s, "1:t0=%d 1:t1=%d mem:x=%d", &r1, &r2, &memx); err != nil {
			t.Fatalf("bad outcome %q: %v", s, err)
		}
		if r1 > r2 {
			t.Errorf("CoRR outcome %q violates coherence monotonicity", s)
		}
	}
}

// TestCheckEnforcedShapes: the full checker over every named shape
// under both models with the DMDP core: zero violations, and the
// digest is identical across -j widths (satellite 2's -j1/-j8 gate).
func TestCheckEnforcedShapes(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	tests, err := Suite(progen.LitmusShapeNames(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []core.MemModel{core.MemSC, core.MemTSO} {
		opt := Options{Model: model, CoreModel: config.DMDP, Seeds: 20}
		opt.Jobs = 1
		r1, v1, err := CheckAll(tests, opt)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		opt.Jobs = 8
		r8, v8, err := CheckAll(tests, opt)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if len(v1) != 0 || len(v8) != 0 {
			t.Fatalf("%v: enforced machine violated: %+v %+v", model, v1, v8)
		}
		if Digest(r1) != Digest(r8) {
			t.Fatalf("%v: digest differs between -j1 and -j8", model)
		}
	}
}

// TestCheckRandomSuite: seeded random aliasing tests stay within the
// allowed set under the enforced machine.
func TestCheckRandomSuite(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	tests, err := Suite(nil, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []core.MemModel{core.MemSC, core.MemTSO} {
		_, viol, err := CheckAll(tests, Options{Model: model, CoreModel: config.DMDP, Seeds: 10, Jobs: 4})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if len(viol) != 0 {
			t.Fatalf("%v: random suite violations: %+v", model, viol)
		}
	}
}

// TestCheckWeakenedCaughtAndMinimized: the deliberately weakened build
// must be caught and the violation ddmin-ed to a <=50-instruction
// runnable repro — the acceptance criterion for the whole harness.
func TestCheckWeakenedCaughtAndMinimized(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	lt, _ := progen.LitmusShapeByName("SB")
	res, err := Check(lt, Options{
		Model: core.MemSC, CoreModel: config.DMDP,
		Seeds: 200, Jobs: 8, Weaken: true, Minimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("weakened machine produced no violation in 200 seeds")
	}
	v := &res.Violations[0]
	if v.Repro == nil {
		t.Fatal("violation was not minimized")
	}
	if v.Repro.Static > 50 {
		t.Fatalf("minimized repro has %d static instructions (want <=50):\n%s", v.Repro.Static, v.Repro.Source)
	}
}

// TestCheckDeterministicDigest: running the identical check twice gives
// byte-identical digest lines (no map-iteration order anywhere).
func TestCheckDeterministicDigest(t *testing.T) {
	lt, _ := progen.LitmusShapeByName("MP")
	opt := Options{Model: core.MemTSO, CoreModel: config.DMDP, Seeds: 15, Jobs: 4}
	a, err := Check(lt, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(lt, opt)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := strings.Join(a.DigestLines(), "\n"), strings.Join(b.DigestLines(), "\n")
	if la != lb {
		t.Fatalf("digest lines differ between identical runs:\n%s\n----\n%s", la, lb)
	}
}
