package litmus

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/difftest"
	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/progen"
	"dmdp/internal/sched"
	"dmdp/internal/trace"
)

// Options configures a litmus check run.
type Options struct {
	Model     core.MemModel // consistency contract to enforce and verify
	CoreModel config.Model  // per-core timing model (zero value = Baseline)
	Seeds     int           // interleaving seeds per test (default 50)
	Jobs      int           // worker pool width (default 1)
	Weaken    bool          // run the deliberately weakened machine
	Minimize  bool          // ddmin the first violation to a small repro
	MaxStates int           // oracle state cap (default 2M)
	Stagger   int64         // interleaving start-stagger bound (default 256)
	Budget    int64         // per-thread isolated emulation budget (default 20000)
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 50
	}
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	if o.Stagger <= 0 {
		o.Stagger = 256
	}
	if o.Budget <= 0 {
		o.Budget = 20000
	}
	return o
}

// Violation is one simulator final state outside the I2E-allowed set.
type Violation struct {
	Test    string
	Seed    uint64
	Outcome string
	Repro   *difftest.Repro // non-nil when minimization ran
}

func (v *Violation) Error() string {
	return fmt.Sprintf("litmus %s seed %d: outcome %q not allowed by the reference", v.Test, v.Seed, v.Outcome)
}

// Result is one litmus test's verdict across all interleaving seeds.
type Result struct {
	Test       string
	Allowed    []string       // sorted I2E-allowed final states
	Outcomes   map[string]int // observed final state -> #seeds
	Violations []Violation
}

// Covered returns how many allowed states the simulator actually hit.
func (r *Result) Covered() int {
	n := 0
	for _, a := range r.Allowed {
		if r.Outcomes[a] > 0 {
			n++
		}
	}
	return n
}

// DigestLines renders the result deterministically: allowed set, then
// observed outcomes sorted by state string. Identical inputs produce
// byte-identical lines regardless of -j width or host.
func (r *Result) DigestLines() []string {
	lines := []string{fmt.Sprintf("test %s allowed=%d", r.Test, len(r.Allowed))}
	for _, a := range r.Allowed {
		lines = append(lines, "  allow "+a)
	}
	obs := make([]string, 0, len(r.Outcomes))
	for s := range r.Outcomes {
		obs = append(obs, s)
	}
	sort.Strings(obs)
	for _, s := range obs {
		lines = append(lines, fmt.Sprintf("  seen  %s x%d", s, r.Outcomes[s]))
	}
	for i := range r.Violations {
		lines = append(lines, "  VIOLATION "+r.Violations[i].Outcome)
	}
	return lines
}

// Digest hashes a result set into one aggregate line.
func Digest(results []*Result) string {
	h := sha256.New()
	for _, r := range results {
		for _, l := range r.DigestLines() {
			h.Write([]byte(l))
			h.Write([]byte{'\n'})
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// prep assembles a litmus source and collects the per-thread isolated
// traces the machine replays.
func prep(lt progen.LitmusTest, budget int64) (*isa.Program, []*trace.Trace, error) {
	p, err := asm.Assemble(lt.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("litmus %s: assemble: %w", lt.Name, err)
	}
	traces := make([]*trace.Trace, lt.Threads)
	for k := 0; k < lt.Threads; k++ {
		entry, ok := p.Symbols[fmt.Sprintf("thread%d", k)]
		if !ok {
			return nil, nil, fmt.Errorf("litmus %s: no thread%d label", lt.Name, k)
		}
		tp := *p
		tp.Entry = entry
		tr, err := emu.Run(&tp, budget)
		if err != nil {
			return nil, nil, fmt.Errorf("litmus %s thread %d: %w", lt.Name, k, err)
		}
		if !tr.HitHalt {
			return nil, nil, fmt.Errorf("litmus %s thread %d: no halt within %d instructions", lt.Name, k, budget)
		}
		traces[k] = tr
	}
	return p, traces, nil
}

// machineConfig builds the machine configuration for one seed.
func machineConfig(lt progen.LitmusTest, opt Options, seed uint64) core.MachineConfig {
	cfg := core.DefaultMachineConfig(lt.Threads, opt.CoreModel, opt.Model)
	cfg.Seed = seed
	cfg.Weaken = opt.Weaken
	cfg.MaxStagger = opt.Stagger
	cfg.MaxGlobalCycles = 10_000_000
	return cfg
}

// runSeed executes one (test, seed) machine run and renders its final
// state. Traces are shared read-only across concurrent runs.
func runSeed(lt progen.LitmusTest, o *Oracle, traces []*trace.Trace, opt Options, seed uint64) (string, error) {
	m, err := core.NewMachine(machineConfig(lt, opt, seed), traces)
	if err != nil {
		return "", err
	}
	if _, err := m.Run(); err != nil {
		return "", err
	}
	return o.OutcomeOf(m), nil
}

// Check verifies one litmus test: enumerate the allowed set, sweep
// interleaving seeds on a sched pool, compare. The returned Result is
// deterministic (seed-indexed slots, no map-order dependence); err is
// non-nil only for structural failures, not consistency violations.
func Check(lt progen.LitmusTest, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	p, traces, err := prep(lt, opt.Budget)
	if err != nil {
		return nil, err
	}
	o, err := NewOracle(opt.Model, lt, p, traces, opt.MaxStates)
	if err != nil {
		return nil, err
	}
	allowed, err := o.Allowed()
	if err != nil {
		return nil, err
	}
	allowedSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowedSet[a] = true
	}

	outcomes := make([]string, opt.Seeds)
	errs := make([]error, opt.Seeds)
	sched.Pool(opt.Jobs, opt.Seeds, func(i int) {
		outcomes[i], errs[i] = runSeed(lt, o, traces, opt, uint64(i))
	})
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("litmus %s seed %d: %w", lt.Name, i, e)
		}
	}

	res := &Result{Test: lt.Name, Allowed: allowed, Outcomes: make(map[string]int)}
	for seed, out := range outcomes {
		res.Outcomes[out]++
		if !allowedSet[out] {
			res.Violations = append(res.Violations, Violation{
				Test: lt.Name, Seed: uint64(seed), Outcome: out,
			})
		}
	}
	if len(res.Violations) > 0 && opt.Minimize {
		v := &res.Violations[0]
		v.Repro = MinimizeViolation(lt, opt, v.Seed)
	}
	return res, nil
}

// stillViolates is the ddmin predicate: the candidate source must still
// assemble, trace, enumerate, and produce an outcome outside its OWN
// re-enumerated allowed set on the recorded seed (the allowed set is
// re-derived per candidate — removing lines legitimately changes it).
func stillViolates(lt progen.LitmusTest, opt Options, seed uint64) difftest.CheckFunc {
	return func(src string) bool {
		cand := lt
		cand.Source = src
		p, traces, err := prep(cand, opt.Budget)
		if err != nil {
			return false
		}
		o, err := NewOracle(opt.Model, cand, p, traces, opt.MaxStates)
		if err != nil {
			return false
		}
		allowed, err := o.Allowed()
		if err != nil {
			return false
		}
		out, err := runSeed(cand, o, traces, opt, seed)
		if err != nil {
			return false
		}
		for _, a := range allowed {
			if a == out {
				return false
			}
		}
		return true
	}
}

// MinimizeViolation delta-debugs a violating litmus test down to a
// small source that still produces a disallowed outcome on the same
// interleaving seed, reusing the difftest ddmin pipeline.
func MinimizeViolation(lt progen.LitmusTest, opt Options, seed uint64) *difftest.Repro {
	opt = opt.withDefaults()
	check := stillViolates(lt, opt, seed)
	if !check(lt.Source) {
		return nil // not reproducible in isolation; keep the full source
	}
	return difftest.MinimizeSource(lt.Source, check)
}

// CheckAll runs a set of tests and aggregates: results in input order,
// all violations, and the deterministic digest.
func CheckAll(tests []progen.LitmusTest, opt Options) ([]*Result, []Violation, error) {
	var results []*Result
	var violations []Violation
	for _, lt := range tests {
		r, err := Check(lt, opt)
		if err != nil {
			return results, violations, err
		}
		results = append(results, r)
		violations = append(violations, r.Violations...)
	}
	return results, violations, nil
}

// Suite builds the standard test list: every named shape plus nRandom
// seeded random tests.
func Suite(shapes []string, nRandom int, firstSeed uint64) ([]progen.LitmusTest, error) {
	var tests []progen.LitmusTest
	for _, name := range shapes {
		lt, ok := progen.LitmusShapeByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown litmus shape %q (have %s)", name, strings.Join(progen.LitmusShapeNames(), ", "))
		}
		tests = append(tests, lt)
	}
	for i := 0; i < nRandom; i++ {
		tests = append(tests, progen.GenerateLitmus(firstSeed+uint64(i)))
	}
	return tests, nil
}
