// Package litmus verifies the multicore machine's memory-consistency
// enforcement against an I2E (instantaneous instruction execution)
// reference: for every litmus test it enumerates the complete set of
// final states an idealized machine may produce under the chosen model
// (SC or TSO), runs the timing simulator across many interleaving
// seeds, and fails if the simulator ever commits a final state outside
// the allowed set. Violations are delta-debugged down to a small
// runnable repro via the difftest minimizer.
//
// The reference works on shared-memory EVENTS, not instructions: each
// thread's delay loops, private-line window misses and address setup
// commute with everything and would only inflate the interleaving
// space. Litmus programs are data-race-deterministic by construction
// (progen: addresses, control flow and store data never depend on
// shared loads), so each thread's event sequence is fixed and can be
// read off its isolated single-thread trace.
package litmus

import (
	"fmt"
	"sort"

	"dmdp/internal/core"
	"dmdp/internal/isa"
	"dmdp/internal/progen"
	"dmdp/internal/trace"
)

// Event is one shared-memory access of one thread, in program order.
type Event struct {
	Store bool
	Addr  uint32
	Size  uint32
	Val   uint32  // stores: raw data register value (low Size bytes matter)
	Op    isa.Op  // loads: mnemonic, for sign/zero extension
	Reg   isa.Reg // loads: destination observation register
}

// Oracle holds one litmus test's extracted events and reference state.
type Oracle struct {
	lt      progen.LitmusTest
	prog    *isa.Program
	events  [][]Event
	addrs   []uint32       // shared byte addresses, ascending
	idx     map[uint32]int // byte address -> index into the mem vector
	initMem []byte

	slotOf [][]int // per (thread, event) -> load slot, -1 for stores
	nLoads int
	// regSlot maps (thread, reg) to the load slot observing it.
	regSlot map[[2]int]int
	symAddr map[string]uint32

	storesUpTo [][]int // per thread: #stores among events[0:i]
	storeIdx   [][]int // per thread: ordinal -> event index

	model     core.MemModel
	maxStates int
	states    int
	overflow  bool
	memo      map[string]map[string]struct{}
}

// NewOracle extracts the shared-event sequences for lt from the
// per-thread isolated traces and prepares enumeration under model.
// maxStates caps the explored state count (<=0 picks a default).
func NewOracle(model core.MemModel, lt progen.LitmusTest, p *isa.Program, traces []*trace.Trace, maxStates int) (*Oracle, error) {
	if len(traces) != lt.Threads {
		return nil, fmt.Errorf("litmus %s: %d traces for %d threads", lt.Name, len(traces), lt.Threads)
	}
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	o := &Oracle{
		lt: lt, prog: p, model: model, maxStates: maxStates,
		idx:     make(map[uint32]int),
		regSlot: make(map[[2]int]int),
		symAddr: make(map[string]uint32),
		memo:    make(map[string]map[string]struct{}),
	}
	for _, sym := range lt.Shared {
		a, ok := p.Symbols[sym]
		if !ok {
			return nil, fmt.Errorf("litmus %s: shared symbol %q not in program", lt.Name, sym)
		}
		o.symAddr[sym] = a
		for b := uint32(0); b < 4; b++ {
			if _, dup := o.idx[a+b]; !dup {
				o.addrs = append(o.addrs, a+b)
			}
		}
	}
	sort.Slice(o.addrs, func(i, j int) bool { return o.addrs[i] < o.addrs[j] })
	for i, a := range o.addrs {
		o.idx[a] = i
	}
	o.initMem = make([]byte, len(o.addrs))
	for i, a := range o.addrs {
		o.initMem[i] = traces[0].InitMem.Byte(a)
	}

	obsRegs := make(map[int]map[isa.Reg]bool)
	for _, ob := range lt.Obs {
		if ob.Thread >= 0 {
			if obsRegs[ob.Thread] == nil {
				obsRegs[ob.Thread] = make(map[isa.Reg]bool)
			}
			obsRegs[ob.Thread][ob.Reg] = true
		}
	}

	o.events = make([][]Event, lt.Threads)
	o.slotOf = make([][]int, lt.Threads)
	for t, tr := range traces {
		for i := range tr.Entries {
			e := &tr.Entries[i]
			switch {
			case e.IsStore():
				in, err := o.inShared(e.Addr, uint32(e.Size))
				if err != nil {
					return nil, fmt.Errorf("litmus %s thread %d pc 0x%x: %v", lt.Name, t, e.PC, err)
				}
				if !in {
					continue
				}
				o.events[t] = append(o.events[t], Event{
					Store: true, Addr: e.Addr, Size: uint32(e.Size), Val: e.Value,
				})
				o.slotOf[t] = append(o.slotOf[t], -1)
			case e.IsLoad():
				dest := e.Instr.Dest()
				if !obsRegs[t][dest] {
					continue
				}
				in, err := o.inShared(e.Addr, uint32(e.Size))
				if err != nil {
					return nil, fmt.Errorf("litmus %s thread %d pc 0x%x: %v", lt.Name, t, e.PC, err)
				}
				if !in {
					return nil, fmt.Errorf("litmus %s thread %d pc 0x%x: observation register %v loaded from non-shared 0x%x", lt.Name, t, e.PC, dest, e.Addr)
				}
				key := [2]int{t, int(dest)}
				if _, dup := o.regSlot[key]; dup {
					return nil, fmt.Errorf("litmus %s thread %d: observation register %v loaded twice", lt.Name, t, dest)
				}
				o.regSlot[key] = o.nLoads
				o.events[t] = append(o.events[t], Event{
					Addr: e.Addr, Size: uint32(e.Size), Op: e.Instr.Op, Reg: dest,
				})
				o.slotOf[t] = append(o.slotOf[t], o.nLoads)
				o.nLoads++
			}
		}
	}

	o.storesUpTo = make([][]int, lt.Threads)
	o.storeIdx = make([][]int, lt.Threads)
	for t, evs := range o.events {
		o.storesUpTo[t] = make([]int, len(evs)+1)
		for i, ev := range evs {
			o.storesUpTo[t][i+1] = o.storesUpTo[t][i]
			if ev.Store {
				o.storesUpTo[t][i+1]++
				o.storeIdx[t] = append(o.storeIdx[t], i)
			}
		}
	}
	return o, nil
}

// Events returns the extracted per-thread shared-event sequences.
func (o *Oracle) Events() [][]Event { return o.events }

// inShared reports whether [addr, addr+size) lies inside a shared
// word; straddling a shared boundary is a structural error.
func (o *Oracle) inShared(addr, size uint32) (bool, error) {
	n := 0
	for b := uint32(0); b < size; b++ {
		if _, ok := o.idx[addr+b]; ok {
			n++
		}
	}
	switch n {
	case 0:
		return false, nil
	case int(size):
		return true, nil
	}
	return false, fmt.Errorf("access 0x%x+%d straddles a shared-variable boundary", addr, size)
}

// ---------- enumeration ----------

type ostate struct {
	pos     []uint8
	drained []uint8 // TSO: stores made globally visible, per thread
	mem     []byte
}

func (s *ostate) clone() *ostate {
	ns := &ostate{
		pos:     append([]uint8(nil), s.pos...),
		drained: append([]uint8(nil), s.drained...),
		mem:     append([]byte(nil), s.mem...),
	}
	return ns
}

func (s *ostate) key() string {
	b := make([]byte, 0, len(s.pos)+len(s.drained)+len(s.mem))
	b = append(b, s.pos...)
	b = append(b, s.drained...)
	b = append(b, s.mem...)
	return string(b)
}

// suffix outcomes are encoded as nLoads*5 bytes (set flag + LE32 value)
// followed by the final mem vector.
func (o *Oracle) encodeSuffix(slots []int64, m []byte) string {
	b := make([]byte, 0, o.nLoads*5+len(m))
	for _, v := range slots {
		if v < 0 {
			b = append(b, 0, 0, 0, 0, 0)
		} else {
			b = append(b, 1, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	}
	return string(append(b, m...))
}

func (o *Oracle) decodeSuffix(s string) (slots []int64, m []byte) {
	b := []byte(s)
	slots = make([]int64, o.nLoads)
	for i := range slots {
		p := b[i*5 : i*5+5]
		if p[0] == 0 {
			slots[i] = -1
		} else {
			slots[i] = int64(uint32(p[1]) | uint32(p[2])<<8 | uint32(p[3])<<16 | uint32(p[4])<<24)
		}
	}
	return slots, b[o.nLoads*5:]
}

func (o *Oracle) withSlot(suffix string, slot int, val uint32) string {
	slots, m := o.decodeSuffix(suffix)
	slots[slot] = int64(val)
	return o.encodeSuffix(slots, m)
}

// applyStore overlays a store's bytes onto the mem vector.
func (o *Oracle) applyStore(m []byte, ev *Event) {
	for b := uint32(0); b < ev.Size; b++ {
		m[o.idx[ev.Addr+b]] = byte(ev.Val >> (8 * b))
	}
}

// loadValue composes a load's raw value: under TSO the thread's own
// undrained stores forward byte-granularly (youngest first), then the
// global mem vector; under SC only the mem vector exists.
func (o *Oracle) loadValue(s *ostate, t int, ev *Event) uint32 {
	var raw uint32
	for b := uint32(0); b < ev.Size; b++ {
		a := ev.Addr + b
		v := s.mem[o.idx[a]]
		if o.model == core.MemTSO {
			pending := o.storesUpTo[t][s.pos[t]]
			for k := pending - 1; k >= int(s.drained[t]); k-- {
				st := &o.events[t][o.storeIdx[t][k]]
				if a >= st.Addr && a < st.Addr+st.Size {
					v = byte(st.Val >> (8 * (a - st.Addr)))
					break
				}
			}
		}
		raw |= uint32(v) << (8 * b)
	}
	return trace.ExtendLoad(ev.Op, raw)
}

// closure executes TSO stores into their store buffers: entering the
// buffer has no globally visible effect, so it never branches (partial
// order reduction; drains remain nondeterministic).
func (o *Oracle) closure(s *ostate) {
	if o.model != core.MemTSO {
		return
	}
	for t := range o.events {
		for int(s.pos[t]) < len(o.events[t]) && o.events[t][s.pos[t]].Store {
			s.pos[t]++
		}
	}
}

func (o *Oracle) terminal(s *ostate) bool {
	for t := range o.events {
		if int(s.pos[t]) != len(o.events[t]) {
			return false
		}
		if o.model == core.MemTSO && int(s.drained[t]) != len(o.storeIdx[t]) {
			return false
		}
	}
	return true
}

// explore returns the set of encoded suffix outcomes reachable from s.
// Suffix outcomes do not depend on the path that led to s (each load
// slot is written exactly once, at its own event), so they memoize on
// the state alone.
func (o *Oracle) explore(s *ostate) map[string]struct{} {
	o.closure(s)
	key := s.key()
	if out, ok := o.memo[key]; ok {
		return out
	}
	o.states++
	if o.states > o.maxStates {
		o.overflow = true
		return nil
	}
	out := make(map[string]struct{})
	if o.terminal(s) {
		unset := make([]int64, o.nLoads)
		for i := range unset {
			unset[i] = -1
		}
		out[o.encodeSuffix(unset, s.mem)] = struct{}{}
		o.memo[key] = out
		return out
	}
	for t := range o.events {
		if int(s.pos[t]) < len(o.events[t]) {
			ev := &o.events[t][s.pos[t]]
			ns := s.clone()
			if ev.Store { // SC only; TSO stores were closed into the buffer
				o.applyStore(ns.mem, ev)
				ns.pos[t]++
				for suf := range o.explore(ns) {
					out[suf] = struct{}{}
				}
			} else {
				val := o.loadValue(s, t, ev)
				slot := o.slotOf[t][s.pos[t]]
				ns.pos[t]++
				for suf := range o.explore(ns) {
					out[o.withSlot(suf, slot, val)] = struct{}{}
				}
			}
		}
		if o.model == core.MemTSO && int(s.drained[t]) < o.storesUpTo[t][s.pos[t]] {
			ns := s.clone()
			o.applyStore(ns.mem, &o.events[t][o.storeIdx[t][s.drained[t]]])
			ns.drained[t]++
			for suf := range o.explore(ns) {
				out[suf] = struct{}{}
			}
		}
	}
	o.memo[key] = out
	return out
}

// Allowed enumerates the model's complete set of final states, rendered
// in the observation-spec display format, sorted.
func (o *Oracle) Allowed() ([]string, error) {
	init := &ostate{
		pos:     make([]uint8, o.lt.Threads),
		drained: make([]uint8, o.lt.Threads),
		mem:     append([]byte(nil), o.initMem...),
	}
	suffixes := o.explore(init)
	if o.overflow {
		return nil, fmt.Errorf("litmus %s: state space exceeds %d states", o.lt.Name, o.maxStates)
	}
	seen := make(map[string]bool)
	var out []string
	for suf := range suffixes {
		slots, m := o.decodeSuffix(suf)
		disp := o.display(func(t int, r isa.Reg) uint32 {
			if slot, ok := o.regSlot[[2]int{t, int(r)}]; ok && slots[slot] >= 0 {
				return uint32(slots[slot])
			}
			return 0 // observation register never loaded (e.g. minimized away)
		}, func(sym string) uint32 {
			a := o.symAddr[sym]
			var v uint32
			for b := uint32(0); b < 4; b++ {
				v |= uint32(m[o.idx[a+b]]) << (8 * b)
			}
			return v
		})
		if !seen[disp] {
			seen[disp] = true
			out = append(out, disp)
		}
	}
	sort.Strings(out)
	return out, nil
}

// display renders one final state in observation order.
func (o *Oracle) display(reg func(int, isa.Reg) uint32, memw func(string) uint32) string {
	out := ""
	for i, ob := range o.lt.Obs {
		if i > 0 {
			out += " "
		}
		if ob.Thread >= 0 {
			out += fmt.Sprintf("%s=%d", ob.Name, reg(ob.Thread, ob.Reg))
		} else {
			out += fmt.Sprintf("%s=%d", ob.Name, memw(ob.Sym))
		}
	}
	return out
}

// OutcomeOf renders a finished machine run's final state in the same
// format as Allowed, so membership is a string comparison.
func (o *Oracle) OutcomeOf(m *core.Machine) string {
	return o.display(func(t int, r isa.Reg) uint32 {
		return m.FinalRegs(t)[r]
	}, func(sym string) uint32 {
		return m.ReadShared(o.symAddr[sym], 4)
	})
}
