package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Fatalf("geomean(1s) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(empty) = %f", g)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMeanAndSpeedup(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %f", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("mean(empty)")
	}
	if p := SpeedupPct(1.0717); math.Abs(p-7.17) > 1e-9 {
		t.Fatalf("speedup = %f", p)
	}
	if s := Pct(1.0717); s != "+7.17%" {
		t.Fatalf("Pct = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "bench", "ipc", "note")
	tb.Add("perl", "1.23", "x")
	tb.AddF(2, "bzip2", 1.5, 42)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "bench") {
		t.Fatal("missing title/header")
	}
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "42") {
		t.Fatalf("AddF formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: every row has the same prefix width for column 2.
	if !strings.Contains(lines[3], "perl ") {
		t.Fatalf("alignment wrong: %q", lines[3])
	}
}

func TestTableDropsExtraCells(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("1", "2", "3", "4")
	if strings.Contains(tb.String(), "3") {
		t.Fatal("extra cells must be dropped")
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F formatting wrong")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.Add("x", "1.5")
	tb.Add("has,comma", "q\"uote")
	out := tb.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[2], `"has,comma"`) {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
}
