// Package stats provides the aggregation and text-rendering helpers the
// experiment harness uses: geometric means (the paper reports Int/FP
// geomeans), ratios and aligned tables.
package stats

import (
	"encoding/csv"
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which indicate an upstream bug).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SpeedupPct converts a ratio to a percentage gain: 1.05 -> +5.0.
func SpeedupPct(ratio float64) float64 { return (ratio - 1) * 100 }

// Table renders aligned fixed-width text tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with prec decimals, ints render plainly.
func (t *Table) AddF(prec int, cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			out = append(out, v)
		case float64:
			out = append(out, F(v, prec))
		case int:
			out = append(out, fmt.Sprintf("%d", v))
		case int64:
			out = append(out, fmt.Sprintf("%d", v))
		default:
			out = append(out, fmt.Sprint(v))
		}
	}
	t.Add(out...)
}

// F formats a float with prec decimals.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a signed percentage ("+7.17%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.2f%%", SpeedupPct(ratio)) }

// CSV renders the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Headers)
	for _, row := range t.rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}
