package artifact

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"dmdp/internal/emu"
	"dmdp/internal/mem"
)

func testCheckpoint() *emu.Checkpoint {
	ck := &emu.Checkpoint{
		At:      123456,
		PC:      0x40,
		HasArch: true,
		Pages:   map[uint32]*[mem.PageSize]byte{},
	}
	for i := range ck.Regs {
		ck.Regs[i] = uint32(i * 7)
	}
	for _, base := range []uint32{0x1000, 0x7fff_f000} {
		pg := new([mem.PageSize]byte)
		for j := range pg {
			pg[j] = byte(j) ^ byte(base>>12)
		}
		ck.Pages[base] = pg
	}
	return ck
}

func ckEqual(a, b *emu.Checkpoint) bool {
	if a.At != b.At || a.PC != b.PC || a.HasArch != b.HasArch || a.Regs != b.Regs {
		return false
	}
	if len(a.Pages) != len(b.Pages) {
		return false
	}
	for base, pg := range a.Pages {
		q, ok := b.Pages[base]
		if !ok || *pg != *q {
			return false
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CheckpointKey(Key(sha256.Sum256([]byte("trace"))), 123456)
	if _, ok := s.LoadCheckpoint(key); ok {
		t.Fatal("unexpected hit on empty store")
	}
	ck := testCheckpoint()
	s.StoreCheckpoint(key, ck)
	got, ok := s.LoadCheckpoint(key)
	if !ok {
		t.Fatal("expected hit after store")
	}
	if !ckEqual(ck, got) {
		t.Fatal("round trip changed the checkpoint")
	}
	c := s.Counters()
	if c.CheckpointHits != 1 || c.CheckpointMisses != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestCheckpointCorruptIsMissAndDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CheckpointKey(Key(sha256.Sum256([]byte("t"))), 7)
	s.StoreCheckpoint(key, testCheckpoint())
	path := filepath.Join(dir, key.String()+checkpointSuffix)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadCheckpoint(key); ok {
		t.Fatal("corrupt checkpoint must be a miss")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint must be dropped in rw mode")
	}
	if s.Counters().CorruptDropped != 1 {
		t.Fatal("corrupt drop not counted")
	}
}

func TestCheckpointKeyDistinctPerStart(t *testing.T) {
	tk := Key(sha256.Sum256([]byte("trace")))
	if CheckpointKey(tk, 0) == CheckpointKey(tk, 1) {
		t.Fatal("keys must differ per start")
	}
	tk2 := Key(sha256.Sum256([]byte("other")))
	if CheckpointKey(tk, 0) == CheckpointKey(tk2, 0) {
		t.Fatal("keys must differ per trace")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := PlanKey(Key(sha256.Sum256([]byte("trace"))), "auto:4", 1)
	p := &PlanRecord{
		ChunkLen: 100_000,
		Total:    10_000_000,
		Warmup:   5000,
		HitHalt:  false,
		Intervals: []PlanInterval{
			{Start: 0, End: 100_000, Weight: 0.25},
			{Start: 400_000, End: 500_000, Weight: 0.75},
		},
	}
	if _, ok := s.LoadPlan(key); ok {
		t.Fatal("unexpected plan hit")
	}
	s.StorePlan(key, p)
	got, ok := s.LoadPlan(key)
	if !ok {
		t.Fatal("expected plan hit")
	}
	if got.ChunkLen != p.ChunkLen || got.Total != p.Total || got.Warmup != p.Warmup ||
		got.HitHalt != p.HitHalt || len(got.Intervals) != len(p.Intervals) {
		t.Fatalf("plan mismatch: %+v", got)
	}
	for i := range p.Intervals {
		if got.Intervals[i] != p.Intervals[i] {
			t.Fatalf("interval %d mismatch: %+v vs %+v", i, got.Intervals[i], p.Intervals[i])
		}
	}
}

func TestPlanKeySpecSensitivity(t *testing.T) {
	tk := Key(sha256.Sum256([]byte("trace")))
	if PlanKey(tk, "auto:4", 1) == PlanKey(tk, "auto:8", 1) {
		t.Fatal("plan keys must differ per spec")
	}
	if PlanKey(tk, "auto:4", 1) == PlanKey(tk, "auto:4", 2) {
		t.Fatal("plan keys must differ per planner version")
	}
}

func TestPlanCorruptIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := PlanKey(Key(sha256.Sum256([]byte("t"))), "10x100", 1)
	s.StorePlan(key, &PlanRecord{ChunkLen: 100, Total: 1000, Intervals: []PlanInterval{{0, 100, 1}}})
	path := filepath.Join(dir, key.String()+planSuffix)
	buf, _ := os.ReadFile(path)
	buf[len(buf)-1] ^= 1
	os.WriteFile(path, buf, 0o644)
	if _, ok := s.LoadPlan(key); ok {
		t.Fatal("corrupt plan must be a miss")
	}
}

// mapCount returns the process's virtual-memory-mapping count, or -1
// where /proc is unavailable.
func mapCount(t *testing.T) int {
	t.Helper()
	data, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		return -1
	}
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}

// Checkpoint restores happen once per interval per sampled run, so the
// load path must not hold a kernel resource per read. The mmap-backed
// trace read path deliberately never unmaps; when checkpoints loaded
// through it, every restore leaked one mapping and a long-lived daemon
// (or a benchmark loop) crashed the Go runtime against vm.max_map_count
// after ~65k restores.
func TestCheckpointLoadDoesNotLeakMappings(t *testing.T) {
	before := mapCount(t)
	if before < 0 {
		t.Skip("no /proc/self/maps on this platform")
	}
	s, err := Open(t.TempDir(), RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CheckpointKey(Key(sha256.Sum256([]byte("trace"))), 1)
	s.StoreCheckpoint(key, testCheckpoint())
	for i := 0; i < 2000; i++ {
		if _, ok := s.LoadCheckpoint(key); !ok {
			t.Fatal("checkpoint miss")
		}
	}
	// The runtime may grow its heap by a handful of mappings; 2000 leaked
	// reads would exceed any such noise by orders of magnitude.
	if after := mapCount(t); after > before+100 {
		t.Fatalf("mapping count grew %d -> %d across 2000 checkpoint loads", before, after)
	}
}
