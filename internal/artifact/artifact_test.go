package artifact

import (
	"bytes"
	"os"
	"testing"
	"time"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

const testBudget = 5_000

func buildTestTrace(t *testing.T, bench string) (*workload.Spec, *trace.Trace) {
	t.Helper()
	spec, ok := workload.Get(bench)
	if !ok {
		t.Fatalf("unknown workload %s", bench)
	}
	tr, err := spec.BuildTrace(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	return spec, tr
}

func runStats(t *testing.T, cfg config.Config, tr *trace.Trace) *core.Stats {
	t.Helper()
	c, err := core.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func openRW(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTraceRoundTrip(t *testing.T) {
	spec, tr := buildTestTrace(t, "gcc")
	s := openRW(t)
	key := TraceKey(spec.SourceHash(), testBudget)

	if _, ok := s.LoadTrace(key); ok {
		t.Fatal("hit before store")
	}
	s.StoreTrace(key, tr)
	got, ok := s.LoadTrace(key)
	if !ok {
		t.Fatal("miss after store")
	}

	// Semantic equality: re-encoding the decoded trace must reproduce
	// the original file bytes exactly (same entries, program, memory
	// image, counters — and a canonical encoder).
	a, b := encodeTrace(tr), encodeTrace(got)
	if !bytes.Equal(a, b) {
		t.Fatal("decoded trace re-encodes differently")
	}

	// Behavioral equality: a simulation over the decoded trace produces
	// byte-identical canonical stats.
	cfg := config.Default(config.DMDP)
	st1 := runStats(t, cfg, tr)
	st2 := runStats(t, cfg, got)
	if !bytes.Equal(st1.MarshalCanonical(), st2.MarshalCanonical()) {
		t.Fatal("decoded trace simulates differently")
	}
}

func TestTraceEncodingCanonical(t *testing.T) {
	_, tr := buildTestTrace(t, "perl")
	a := encodeTrace(tr)
	b := encodeTrace(tr)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same trace differ")
	}
	// Decode → encode must also be canonical even though maps (symbols,
	// memory pages) were rebuilt with fresh iteration order.
	dec := decodeTrace(append([]byte(nil), a...))
	if dec == nil {
		t.Fatal("decode failed")
	}
	if !bytes.Equal(encodeTrace(dec), a) {
		t.Fatal("encoding depends on map iteration order")
	}
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	spec, tr := buildTestTrace(t, "mcf")
	s := openRW(t)
	key := TraceKey(spec.SourceHash(), testBudget)
	s.StoreTrace(key, tr)
	// Load once so the in-process verification memo is hot: every
	// corruption below rewrites the file, which must invalidate the memo
	// and force a full checksum pass (and therefore a miss).
	if _, ok := s.LoadTrace(key); !ok {
		t.Fatal("miss after store")
	}
	path := s.path(key, traceSuffix)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := map[string]func([]byte) []byte{
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"empty":           func([]byte) []byte { return nil },
		"flipped payload": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"flipped header":  func(b []byte) []byte { b[0] ^= 0xff; return b },
		"wrong version":   func(b []byte) []byte { b[7] = '9'; return b },
		"foreign layout":  func(b []byte) []byte { b[8] ^= 0xff; return b },
		"header only":     func(b []byte) []byte { return b[:traceHeaderSize] },
		"garbage":         func(b []byte) []byte { return []byte("not a cache entry") },
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, fn(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.LoadTrace(key); ok {
				t.Fatal("corrupt entry hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not dropped by rw store")
			}
			// The store rewrites it on the next StoreTrace, and it hits
			// again.
			s.StoreTrace(key, tr)
			if _, ok := s.LoadTrace(key); !ok {
				t.Fatal("rewritten entry missed")
			}
		})
	}
	if c := s.Counters(); c.CorruptDropped != int64(len(mutate)) {
		t.Fatalf("corrupt counter = %d, want %d", c.CorruptDropped, len(mutate))
	}
}

func TestStatsRoundTripAndCorruption(t *testing.T) {
	s := openRW(t)
	st := &core.Stats{Cycles: 123, Instructions: 456, SimWallClockNS: 999}
	st.LoadCount[1] = 7
	cfg := config.Default(config.NoSQ)
	key := ResultKey(Key{1}, cfg.Digest(), testBudget)

	if _, _, ok := s.LoadStats(key); ok {
		t.Fatal("hit before store")
	}
	s.StoreStats(key, st)
	got, path, ok := s.LoadStats(key)
	if !ok {
		t.Fatal("miss after store")
	}
	if got.Cycles != 123 || got.Instructions != 456 || got.LoadCount[1] != 7 {
		t.Fatalf("wrong stats decoded: %+v", got)
	}
	if got.SimWallClockNS != 0 {
		t.Fatal("wall clock should not round-trip")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.LoadStats(key); ok {
		t.Fatal("corrupt stats entry hit")
	}
}

func TestReadOnlyStoreNeverWrites(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, tr := buildTestTrace(t, "lbm")
	key := TraceKey(spec.SourceHash(), testBudget)
	rw.StoreTrace(key, tr)

	ro, err := Open(dir, RO, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.LoadTrace(key); !ok {
		t.Fatal("ro store missed existing entry")
	}
	other := TraceKey(spec.SourceHash(), testBudget+1)
	ro.StoreTrace(other, tr)
	if _, err := os.Stat(ro.path(other, traceSuffix)); !os.IsNotExist(err) {
		t.Fatal("ro store wrote a file")
	}
	// A corrupt entry must not be deleted by an ro store either.
	path := ro.path(key, traceSuffix)
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.LoadTrace(key); ok {
		t.Fatal("junk hit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("ro store removed a corrupt entry")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if s.Mode() != Off || s.Dir() != "" || s.Summary() != "" || s.VerifyEnabled() {
		t.Fatal("nil store accessors wrong")
	}
	if _, ok := s.LoadTrace(Key{}); ok {
		t.Fatal("nil store hit")
	}
	if _, _, ok := s.LoadStats(Key{}); ok {
		t.Fatal("nil store hit")
	}
	s.StoreTrace(Key{}, nil)
	s.StoreStats(Key{}, nil)
	if c := s.Counters(); c != (Counters{}) {
		t.Fatal("nil store counted something")
	}
	if s, err := Open("unused", Off, 0); s != nil || err != nil {
		t.Fatal("Open(Off) should return a nil store")
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Cap at exactly three result entries: the fourth write must evict.
	entryBytes := int64(len(encodeStats(&core.Stats{})))
	s, err := Open(dir, RW, 3*entryBytes)
	if err != nil {
		t.Fatal(err)
	}
	st := &core.Stats{Cycles: 1}
	keys := []Key{{1}, {2}, {3}}
	for i, k := range keys {
		s.StoreStats(k, st)
		// Distinct mtimes so LRU order is unambiguous.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(s.path(k, resultSuffix), old, old)
	}
	// A hit refreshes key 1; storing one more must evict key 2 (now the
	// oldest), not key 1.
	if _, _, ok := s.LoadStats(keys[0]); !ok {
		t.Fatal("miss")
	}
	s.StoreStats(Key{4}, st)
	if _, err := os.Stat(s.path(keys[0], resultSuffix)); err != nil {
		t.Fatal("recently used entry evicted")
	}
	if _, err := os.Stat(s.path(keys[1], resultSuffix)); !os.IsNotExist(err) {
		t.Fatal("least recently used entry survived")
	}
	if c := s.Counters(); c.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
	var total int64
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		info, _ := de.Info()
		total += info.Size()
	}
	if total > 3*entryBytes {
		t.Fatalf("directory %d bytes over cap", total)
	}
}

func TestKeysSeparateInputs(t *testing.T) {
	spec, _ := workload.Get("gcc")
	other, _ := workload.Get("mcf")
	k1 := TraceKey(spec.SourceHash(), 1000)
	if k1 == TraceKey(spec.SourceHash(), 2000) {
		t.Fatal("budget not in trace key")
	}
	if k1 == TraceKey(other.SourceHash(), 1000) {
		t.Fatal("workload not in trace key")
	}
	c1, c2 := config.Default(config.NoSQ), config.Default(config.DMDP)
	d1, d2 := c1.Digest(), c2.Digest()
	if ResultKey(k1, d1, 1000) == ResultKey(k1, d2, 1000) {
		t.Fatal("config not in result key")
	}
	if ResultKey(k1, d1, 1000) == ResultKey(k1, d1, 2000) {
		t.Fatal("budget not in result key")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"off": Off, "ro": RO, "rw": RW, "verify": Verify} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Mode(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParseMode("always"); err == nil {
		t.Fatal("bad mode accepted")
	}
}
