package artifact

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/emu"
	"dmdp/internal/warm"
)

// fuzzWarmBytes builds a real encoded warm-state record (full-frame
// snapshot captured over a short trace) to seed the corpus.
func fuzzWarmBytes(tb testing.TB) []byte {
	tb.Helper()
	src := "\t.text\nmain:\n\tli $t0, 40\nloop:\n\tsw $t0, 0($gp)\n\tlw $t1, 0($gp)\n\taddi $t0, $t0, -1\n\tbne $t0, $zero, loop\n\thalt\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := emu.Run(prog, 500)
	if err != nil {
		tb.Fatal(err)
	}
	s := warm.New(warm.ConfigFrom(config.Default(config.DMDP)))
	s.UpdateChunk(tr.Entries)
	return encodeWarm(&WarmRecord{At: int64(len(tr.Entries)), BaseAt: -1, Payload: s.Snapshot()})
}

// FuzzWarmStateDecode feeds mutated DMDPCKP2 bytes to the warm-state
// decoder — the mirror of FuzzTraceDecode. The contract: any input
// yields either a miss (nil, degrading the interval to a cold start) or
// a structurally sound record — never a panic and never silently wrong
// warm state. Each mutation is decoded twice: as-is (exercising the
// magic/CRC gate) and re-signed with a recomputed payload CRC, which
// drives the fuzzer past the checksum into the structural decoder and,
// for full frames, into warm.FromSnapshot's section validation.
func FuzzWarmStateDecode(f *testing.F) {
	valid := fuzzWarmBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-payload
	f.Add(valid[:warmHeaderSize])      // header only
	f.Add([]byte{})                    // empty
	f.Add([]byte("DMDPCKP2 not real")) // magic, garbage rest
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	cfg := warm.ConfigFrom(config.Default(config.DMDP))
	check := func(t *testing.T, r *WarmRecord) {
		if r == nil {
			return // a miss is always a fine outcome
		}
		if r.At < 0 {
			t.Fatalf("decoded record at negative boundary %d", r.At)
		}
		if r.BaseAt != -1 && (r.BaseAt < 0 || r.BaseAt >= r.At) {
			t.Fatalf("decoded record has invalid base %d for boundary %d", r.BaseAt, r.At)
		}
		if r.BaseAt != -1 {
			return // a delta is opaque until its base resolves
		}
		// A full frame that FromSnapshot accepts must be canonical: the
		// rebuilt state re-encodes to the same bytes. Anything else would
		// be the "silently wrong warm state" failure mode.
		st, err := warm.FromSnapshot(cfg, r.Payload)
		if err != nil {
			return
		}
		if !bytes.Equal(st.Snapshot(), r.Payload) {
			t.Fatal("accepted snapshot is not a serialize-load fixed point")
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		check(t, decodeWarm(data))

		// Re-sign the mutation so the structural decoder runs.
		if len(data) < warmHeaderSize+warmFixed {
			return
		}
		patched := append([]byte(nil), data...)
		copy(patched[:8], warmMagic[:])
		binary.LittleEndian.PutUint32(patched[8:12], crc32.Checksum(patched[warmHeaderSize:], crcTable))
		check(t, decodeWarm(patched))
	})
}

// TestWarmRecordRoundTrip pins the store round trip: encode, decode,
// and the loaded record equals the stored one.
func TestWarmRecordRoundTrip(t *testing.T) {
	valid := fuzzWarmBytes(t)
	r := decodeWarm(valid)
	if r == nil {
		t.Fatal("valid record did not decode")
	}
	again := decodeWarm(encodeWarm(r))
	if again == nil || again.At != r.At || again.BaseAt != r.BaseAt || !bytes.Equal(again.Payload, r.Payload) {
		t.Fatal("warm record round trip mismatch")
	}
}
