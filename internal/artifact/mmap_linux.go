//go:build linux

package artifact

import (
	"os"
	"syscall"
)

// readEntire maps the file privately and returns its bytes. A private
// (copy-on-write) read-write mapping is deliberate: decoded traces alias
// the mapping, and MAP_PRIVATE guarantees that even an accidental write
// through an aliased entry can never reach the cache file. Mappings are
// intentionally never unmapped — decoded traces live for the process
// lifetime in the runner's in-memory cache, and the handful of proxy
// traces is small. That bargain only holds for traces: every other
// entry kind decodes by copying and must load through readEntireOwned,
// or each read leaks a mapping (see that function's comment). Eviction
// unlinking a mapped file is safe: the pages stay valid until the
// mapping goes away, and writers only ever rename fresh inodes into
// place (entries are immutable once published).
func readEntire(path string) ([]byte, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil || info.Size() == 0 {
		return nil, err == nil // an empty file is a (corrupt) cache entry
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(info.Size()),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		// Fall back to a plain read (e.g. filesystems without mmap).
		data, rerr := os.ReadFile(path)
		return data, rerr == nil
	}
	return buf, true
}

// statID returns the file's identity for checksum-verification
// memoization: device, inode, size and mtime. Any in-place rewrite,
// truncation or rename-over changes at least one component.
func statID(path string) (fileID, bool) {
	info, err := os.Stat(path)
	if err != nil {
		return fileID{}, false
	}
	st, ok := info.Sys().(*syscall.Stat_t)
	if !ok {
		return fileID{}, false
	}
	return fileID{
		dev: uint64(st.Dev), ino: st.Ino,
		size: info.Size(), mtimeNS: info.ModTime().UnixNano(),
	}, true
}
