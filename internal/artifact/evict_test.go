package artifact

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeEntry drops a fake complete cache entry of the given size and
// mtime directly into the store directory (eviction only looks at
// directory metadata, not entry contents).
func writeEntry(t *testing.T, dir, name string, size int, mtime time.Time) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

func survivors(t *testing.T, dir string) map[string]bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, de := range ents {
		out[de.Name()] = true
	}
	return out
}

// Equal-mtime entries must evict in deterministic (name) order, not in
// whatever order os.ReadDir returned them — the old behavior was
// filesystem-dependent. This pins the boundary: four same-mtime entries,
// a cap that forces exactly two evictions, and the two lexicographically
// smallest names must be the ones that go.
func TestEnforceCapEqualMtimeTieBreak(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, RW, 2*100)
	if err != nil {
		t.Fatal(err)
	}
	tick := time.Now().Add(-time.Hour).Truncate(time.Second)
	// Deliberately created in non-lexicographic order so a listing-order
	// eviction would pick a different pair.
	for _, name := range []string{"cc", "aa", "dd", "bb"} {
		writeEntry(t, dir, name, 100, tick)
	}
	s.enforceCap()
	got := survivors(t, dir)
	if len(got) != 2 || !got["cc"] || !got["dd"] {
		t.Fatalf("survivors = %v, want exactly {cc, dd} (evict smallest names first within an mtime tie)", got)
	}
}

// mtime still dominates: an older entry evicts before a newer one even
// when its name sorts later; the name is only the tie-break.
func TestEnforceCapMtimePrimary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, RW, 2*100)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour).Truncate(time.Second)
	writeEntry(t, dir, "zz-oldest", 100, base.Add(-2*time.Second))
	writeEntry(t, dir, "aa-newer", 100, base)
	writeEntry(t, dir, "bb-newer", 100, base)
	s.enforceCap()
	got := survivors(t, dir)
	if len(got) != 2 || got["zz-oldest"] {
		t.Fatalf("survivors = %v, want zz-oldest evicted first despite its name", got)
	}
	if !got["bb-newer"] || !got["aa-newer"] {
		t.Fatalf("survivors = %v, want both newer entries kept", got)
	}
}

// At the exact cap no eviction happens (the cap is inclusive).
func TestEnforceCapAtBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, RW, 3*100)
	if err != nil {
		t.Fatal(err)
	}
	tick := time.Now().Truncate(time.Second)
	for _, name := range []string{"aa", "bb", "cc"} {
		writeEntry(t, dir, name, 100, tick)
	}
	s.enforceCap()
	if got := survivors(t, dir); len(got) != 3 {
		t.Fatalf("survivors = %v, want all three (total == cap must not evict)", got)
	}
}
