package artifact

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
)

// TestOpenUnusableDirDegradesToReadOnly: pointing -cachedir at a path
// that cannot become a directory (here: an existing regular file) must
// not surface as a run error — Open succeeds, the store is degraded to
// read-only, and both reads and writes are safe no-ops.
func TestOpenUnusableDirDegradesToReadOnly(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(filepath.Join(file, "cache"), RW, 0)
	if err != nil {
		t.Fatalf("Open must degrade, not error: %v", err)
	}
	if s == nil || !s.Degraded() {
		t.Fatalf("store not degraded (s=%v)", s)
	}
	if why := s.DegradedReason(); !strings.Contains(why, "read-only") {
		t.Fatalf("reason %q lacks read-only note", why)
	}
	// Writes are silent no-ops; reads are plain misses.
	cfg := config.Default(config.DMDP)
	key := ResultKey(Key{1}, cfg.Digest(), 1000)
	s.StoreStats(key, &core.Stats{Instructions: 42})
	if _, _, hit := s.LoadStats(key); hit {
		t.Fatal("degraded store claims a hit it could not have written")
	}
	if c := s.Counters(); !c.Degraded || c.Writes != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestPublishFailureDegradesOnce: a write failure mid-run (the cache
// directory vanishes, as ENOSPC or an operator rm would) degrades the
// store to read-only with exactly one warning; previously published
// entries keep serving from the in-memory layer and the run continues.
func TestPublishFailureDegradesOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	s.SetWarnFn(func(msg string) { warnings = append(warnings, msg) })

	cfgB := config.Default(config.Baseline)
	good := ResultKey(Key{1}, cfgB.Digest(), 1000)
	s.StoreStats(good, &core.Stats{Instructions: 7})
	if _, _, hit := s.LoadStats(good); !hit {
		t.Fatal("pre-degradation entry should hit")
	}
	if s.Degraded() {
		t.Fatal("degraded too early")
	}

	// Make every later write fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	cfgD := config.Default(config.DMDP)
	k2 := ResultKey(Key{2}, cfgD.Digest(), 1000)
	s.StoreStats(k2, &core.Stats{Instructions: 8})
	s.StoreStats(k2, &core.Stats{Instructions: 8}) // second failure: no second warning
	if !s.Degraded() {
		t.Fatal("publish failure did not degrade the store")
	}
	if len(warnings) != 1 {
		t.Fatalf("got %d warnings, want exactly 1: %q", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "read-only") || !strings.Contains(warnings[0], "simulation continues") {
		t.Fatalf("warning not structured: %q", warnings[0])
	}
	if !strings.Contains(s.Summary(), "DEGRADED") {
		t.Fatalf("summary lacks degradation note: %q", s.Summary())
	}
}

// TestSetWarnFnAfterDegradation: registering the sink after the store
// already degraded (Open-time failure) still delivers the warning.
func TestSetWarnFnAfterDegradation(t *testing.T) {
	file := filepath.Join(t.TempDir(), "f")
	os.WriteFile(file, nil, 0o644)
	s, err := Open(filepath.Join(file, "cache"), Verify, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	s.SetWarnFn(func(msg string) { got = append(got, msg) })
	if len(got) != 1 {
		t.Fatalf("late SetWarnFn delivered %d warnings, want 1", len(got))
	}
}
