package artifact

import (
	"encoding/binary"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"dmdp/internal/isa"
	"dmdp/internal/mem"
	"dmdp/internal/trace"
)

// Trace store format v1 ("DMDPTRC1"). Little endian throughout.
//
//	header (16 bytes, excluded from the checksum):
//	  [8]  magic+version  "DMDPTRC1"
//	  [4]  layout fingerprint of the compiled trace.Entry (see entryFingerprint)
//	  [4]  payload checksum (see payloadChecksum: chunked CRC32C)
//	payload:
//	  [8]  entry count     [8] stores     [8] loads
//	  [1]  hitHalt         [7] zero padding (keeps the payload 8-aligned)
//	  program section:
//	    [4] textBase  [4] entry  [4] dataBase
//	    [4] text len (instrs)  [4] data len (bytes)  [4] symbol count
//	    text: len × 12 bytes (Op Rd Rs Rt, i32 imm, u32 target)
//	    data: raw bytes
//	    symbols, sorted by name: per symbol [4] name len, name bytes, [4] addr
//	  init-memory section:
//	    [4] page count, then per page (ascending base): [4] base, 4096 bytes
//	  [0..7] zero padding to an 8-byte boundary
//	  entries: count × 56 bytes — trace.Entry verbatim
//
// The entries section is the in-memory []trace.Entry layout, so encoding
// is one unsafe slice view and decoding is a pointer cast into the
// mapped (or read) file: no per-field work for 300k records. The layout
// fingerprint binds files to the exact compiled struct — a build whose
// Entry layout differs (new field, different offsets, big-endian target)
// computes a different fingerprint, sees every existing file as a miss,
// and rewrites it. Symbols and pages are sorted so identical traces
// always produce identical bytes despite Go's randomized map iteration.
var traceMagic = [8]byte{'D', 'M', 'D', 'P', 'T', 'R', 'C', '1'}

const (
	traceHeaderSize = 16
	entrySize       = int(unsafe.Sizeof(trace.Entry{}))
	traceSuffix     = ".trace"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcChunkSize is the unit of the trace payload checksum. Multi-chunk
// payloads are checksummed per chunk so decode can verify on all cores.
const crcChunkSize = 1 << 22 // 4 MiB

// payloadChecksum is the trace-format integrity check: the CRC32C of
// each 4 MiB chunk, folded by a CRC32C over the little-endian chunk
// CRCs. Single-chunk payloads degenerate to a plain CRC32C. Any flipped
// bit changes its chunk's CRC and therefore the folded value, so the
// detection strength matches a whole-payload CRC — but the chunks
// verify in parallel, which keeps a trace-store hit an order of
// magnitude cheaper than rebuilding the trace even though the hit
// rereads tens of megabytes. The fold is deterministic (chunk order is
// positional), so identical payloads always store identical checksums.
func payloadChecksum(p []byte) uint32 {
	n := (len(p) + crcChunkSize - 1) / crcChunkSize
	if n <= 1 {
		return crc32.Checksum(p, crcTable)
	}
	sums := make([]byte, 4*n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Single-CPU hosts skip the goroutine machinery: same chunking,
		// same folded value, no scheduler overhead.
		for i := 0; i < n; i++ {
			lo := i * crcChunkSize
			hi := lo + crcChunkSize
			if hi > len(p) {
				hi = len(p)
			}
			binary.LittleEndian.PutUint32(sums[4*i:],
				crc32.Checksum(p[lo:hi], crcTable))
		}
		return crc32.Checksum(sums, crcTable)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				lo := i * crcChunkSize
				hi := lo + crcChunkSize
				if hi > len(p) {
					hi = len(p)
				}
				binary.LittleEndian.PutUint32(sums[4*i:],
					crc32.Checksum(p[lo:hi], crcTable))
			}
		}()
	}
	wg.Wait()
	return crc32.Checksum(sums, crcTable)
}

// entryFingerprint hashes the compiled layout of trace.Entry — size and
// the offset of every field, plus a host-endianness probe — into 32
// bits. It changes whenever the raw 56-byte record format would.
func entryFingerprint() uint32 {
	var e trace.Entry
	probe := [4]byte{}
	binary.NativeEndian.PutUint32(probe[:], 0x01020304)
	vals := []uint64{
		uint64(unsafe.Sizeof(e)),
		uint64(unsafe.Offsetof(e.PC)),
		uint64(unsafe.Offsetof(e.Instr)),
		uint64(unsafe.Sizeof(e.Instr)),
		uint64(unsafe.Offsetof(e.Target)),
		uint64(unsafe.Offsetof(e.Addr)),
		uint64(unsafe.Offsetof(e.Value)),
		uint64(unsafe.Offsetof(e.Taken)),
		uint64(unsafe.Offsetof(e.Silent)),
		uint64(unsafe.Offsetof(e.DepOverlap)),
		uint64(unsafe.Offsetof(e.Size)),
		uint64(unsafe.Offsetof(e.StoresBefore)),
		uint64(unsafe.Offsetof(e.LoadsBefore)),
		uint64(unsafe.Offsetof(e.DepStore)),
		uint64(binary.LittleEndian.Uint32(probe[:])),
	}
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return crc32.Checksum(buf, crcTable)
}

var layoutFingerprint = entryFingerprint()

// encodeTrace serializes tr into the v1 format. Returns nil when the
// trace cannot be represented (it always can in practice; the guard is
// belt and braces for 32-bit section length fields).
func encodeTrace(tr *trace.Trace) []byte {
	p := tr.Prog
	if p == nil || len(p.Text) > 1<<28 || len(p.Data) > 1<<30 {
		return nil
	}
	pageCount := 0
	if tr.InitMem != nil {
		pageCount = tr.InitMem.Pages()
	}

	symNames := make([]string, 0, len(p.Symbols))
	symBytes := 0
	for name := range p.Symbols {
		symNames = append(symNames, name)
		symBytes += 8 + len(name)
	}
	sortStrings(symNames)

	progSize := 6*4 + len(p.Text)*12 + len(p.Data) + symBytes
	memSize := 4 + pageCount*(4+mem.PageSize)
	prefix := 3*8 + 8 + progSize + memSize
	pad := (8 - prefix%8) % 8
	total := traceHeaderSize + prefix + pad + len(tr.Entries)*entrySize

	buf := make([]byte, 0, total)
	buf = append(buf, traceMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, layoutFingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC patched below

	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(tr.Entries)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tr.Stores))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tr.Loads))
	var flags [8]byte
	if tr.HitHalt {
		flags[0] = 1
	}
	buf = append(buf, flags[:]...)

	buf = binary.LittleEndian.AppendUint32(buf, p.TextBase)
	buf = binary.LittleEndian.AppendUint32(buf, p.Entry)
	buf = binary.LittleEndian.AppendUint32(buf, p.DataBase)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Text)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(symNames)))
	for _, in := range p.Text {
		buf = append(buf, byte(in.Op), byte(in.Rd), byte(in.Rs), byte(in.Rt))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
		buf = binary.LittleEndian.AppendUint32(buf, in.Target)
	}
	buf = append(buf, p.Data...)
	for _, name := range symNames {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, p.Symbols[name])
	}

	buf = binary.LittleEndian.AppendUint32(buf, uint32(pageCount))
	if tr.InitMem != nil {
		tr.InitMem.ForEachPage(func(base uint32, data *[mem.PageSize]byte) {
			buf = binary.LittleEndian.AppendUint32(buf, base)
			buf = append(buf, data[:]...)
		})
	}

	for len(buf)%8 != 0 {
		buf = append(buf, 0)
	}
	if len(tr.Entries) > 0 {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(&tr.Entries[0])),
			len(tr.Entries)*entrySize)
		buf = append(buf, raw...)
	}

	crc := payloadChecksum(buf[traceHeaderSize:])
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	return buf
}

// decodeTrace parses a v1 file image. The returned trace's Entries slice
// aliases buf (zero-copy), so buf must stay reachable — and unmodified —
// for the trace's lifetime; mmap-backed buffers are mapped privately so
// even a stray write cannot reach the file. Any structural problem
// (short file, bad magic, foreign layout, checksum mismatch, lengths
// that disagree with the file size) returns nil: the caller treats it
// as a miss.
func decodeTrace(buf []byte) (tr *trace.Trace) {
	// The CRC makes accidental corruption unreachable below, but a file
	// whose stored CRC happens to match inconsistent section lengths
	// must degrade to a miss, not an index panic.
	defer func() {
		if recover() != nil {
			tr = nil
		}
	}()
	if len(buf) < traceHeaderSize+4*8 {
		return nil
	}
	if [8]byte(buf[:8]) != traceMagic {
		return nil
	}
	if binary.LittleEndian.Uint32(buf[8:12]) != layoutFingerprint {
		return nil
	}
	wantCRC := binary.LittleEndian.Uint32(buf[12:16])
	if payloadChecksum(buf[traceHeaderSize:]) != wantCRC {
		return nil
	}

	p := buf[traceHeaderSize:]
	off := 0
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(p[off:])
		off += 8
		return v
	}
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(p[off:])
		off += 4
		return v
	}

	entryCount := u64()
	stores := int64(u64())
	loads := int64(u64())
	hitHalt := p[off] == 1
	off += 8

	prog := &isa.Program{}
	prog.TextBase = u32()
	prog.Entry = u32()
	prog.DataBase = u32()
	textLen := int(u32())
	dataLen := int(u32())
	symCount := int(u32())
	if textLen < 0 || dataLen < 0 || symCount < 0 ||
		off+textLen*12+dataLen > len(p) {
		return nil
	}
	prog.Text = make([]isa.Instr, textLen)
	for i := range prog.Text {
		prog.Text[i] = isa.Instr{
			Op: isa.Op(p[off]), Rd: isa.Reg(p[off+1]),
			Rs: isa.Reg(p[off+2]), Rt: isa.Reg(p[off+3]),
			Imm:    int32(binary.LittleEndian.Uint32(p[off+4:])),
			Target: binary.LittleEndian.Uint32(p[off+8:]),
		}
		off += 12
	}
	prog.Data = append([]byte(nil), p[off:off+dataLen]...)
	off += dataLen
	if symCount > (len(p)-off)/8 {
		// Each symbol occupies at least 8 bytes; a count the remaining
		// payload cannot hold is corruption. Checking before the make
		// keeps a hostile count from pre-sizing a multi-gigabyte map.
		return nil
	}
	prog.Symbols = make(map[string]uint32, symCount)
	for i := 0; i < symCount; i++ {
		if off+4 > len(p) {
			return nil
		}
		nameLen := int(u32())
		if nameLen < 0 || off+nameLen+4 > len(p) {
			return nil
		}
		name := string(p[off : off+nameLen])
		off += nameLen
		prog.Symbols[name] = u32()
	}

	if off+4 > len(p) {
		return nil
	}
	pageCount := int(u32())
	img := mem.NewImage()
	for i := 0; i < pageCount; i++ {
		if off+4+mem.PageSize > len(p) {
			return nil
		}
		base := u32()
		img.SetPage(base, (*[mem.PageSize]byte)(p[off:off+mem.PageSize]))
		off += mem.PageSize
	}

	off += (8 - off%8) % 8
	want := uint64(len(p)-off) / uint64(entrySize)
	if entryCount != want || int(entryCount)*entrySize != len(p)-off {
		return nil
	}
	tr = &trace.Trace{
		Prog: prog, InitMem: img,
		Stores: stores, Loads: loads, HitHalt: hitHalt,
	}
	if entryCount > 0 {
		if uintptr(unsafe.Pointer(&p[off]))%unsafe.Alignof(trace.Entry{}) == 0 {
			tr.Entries = unsafe.Slice(
				(*trace.Entry)(unsafe.Pointer(&p[off])), int(entryCount))
		} else {
			// A heap buffer (portable read path) is not guaranteed to
			// land entry-aligned; copy once instead of casting.
			tr.Entries = make([]trace.Entry, entryCount)
			raw := unsafe.Slice((*byte)(unsafe.Pointer(&tr.Entries[0])),
				int(entryCount)*entrySize)
			copy(raw, p[off:])
		}
	}
	return tr
}

// sortStrings is an allocation-light insertion sort (symbol tables are
// small and nearly sorted).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// loadedTrace is one memoized decoded trace: the trace and the identity
// of the file it was decoded (and checksum-verified) from.
type loadedTrace struct {
	id fileID
	tr *trace.Trace
}

// remember records tr as the decoded trace for key, tagged with the
// file's current (post-touch) identity.
func (s *Store) remember(key Key, path string, tr *trace.Trace) {
	id, ok := statID(path)
	if !ok {
		return
	}
	s.loadedMu.Lock()
	if s.loaded == nil {
		s.loaded = make(map[Key]loadedTrace)
	}
	s.loaded[key] = loadedTrace{id: id, tr: tr}
	s.loadedMu.Unlock()
}

// LoadTrace fetches the trace stored under key, or (nil, false) on any
// miss — absent, corrupt, truncated or foreign-format entries all read
// as misses (corrupt ones are deleted in read-write modes so the caller
// rewrites them). The returned trace aliases a private file mapping that
// stays live for the process lifetime, and callers must treat it as
// read-only: reloading a file this process already decoded (same
// device, inode, size and mtime) returns the same *trace.Trace — one
// mapping and one checksum pass per distinct file content, which is
// what keeps a trace-store hit orders of magnitude cheaper than
// rebuilding the trace.
func (s *Store) LoadTrace(key Key) (*trace.Trace, bool) {
	if s == nil {
		return nil, false
	}
	path := s.path(key, traceSuffix)
	if id, ok := statID(path); ok {
		s.loadedMu.Lock()
		m, hit := s.loaded[key]
		s.loadedMu.Unlock()
		if hit && m.id == id {
			s.traceHits.Add(1)
			s.touch(path)
			s.remember(key, path, m.tr) // refresh the post-touch mtime
			return m.tr, true
		}
	}
	buf, ok := readEntire(path)
	if !ok {
		s.traceMisses.Add(1)
		return nil, false
	}
	tr := decodeTrace(buf)
	if tr == nil {
		s.drop(path)
		s.traceMisses.Add(1)
		return nil, false
	}
	s.traceHits.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	s.touch(path)
	s.remember(key, path, tr)
	return tr, true
}

// StoreTrace persists tr under key (no-op for nil or read-only stores,
// or for traces the format cannot hold).
func (s *Store) StoreTrace(key Key, tr *trace.Trace) {
	if !s.writable() || tr == nil {
		return
	}
	if buf := encodeTrace(tr); buf != nil {
		s.publish(s.path(key, traceSuffix), buf)
	}
}
