//go:build !linux

package artifact

import "os"

// readEntire reads the whole file. Non-Linux builds take the portable
// path (one buffered read into the heap); the Linux build maps the file
// instead, which avoids copying and zeroing the entries section.
func readEntire(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	return data, err == nil
}

// statID returns a portable file identity (size and mtime only; no
// device/inode outside Linux). Good enough for verification
// memoization: rewrites bump mtime.
func statID(path string) (fileID, bool) {
	info, err := os.Stat(path)
	if err != nil {
		return fileID{}, false
	}
	return fileID{size: info.Size(), mtimeNS: info.ModTime().UnixNano()}, true
}
