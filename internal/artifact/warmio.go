package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
)

// Warm-state store format v2 checkpoint companion ("DMDPCKP2").
//
//	[8] magic+version  [4] CRC32C of the payload
//	payload:
//	  [8] at  [8] baseAt (two's complement; -1 = self-contained frame)
//	  rest: warm blob — a full warm snapshot when baseAt < 0, otherwise a
//	  block delta (internal/warm) against the snapshot stored at baseAt
//
// Warm state rides next to the DMDPCKP1 architectural checkpoints: one
// record per planned checkpoint boundary, delta-compressed against the
// previous boundary's snapshot with periodic keyframes so a lost or
// corrupt record only costs cold-starting the intervals that needed it
// — never a wrong simulation. The artifact layer treats the blob as
// opaque bytes; the warm package owns the snapshot and delta formats.
var warmMagic = [8]byte{'D', 'M', 'D', 'P', 'C', 'K', 'P', '2'}

const (
	warmSuffix     = ".warm"
	warmHeaderSize = checkpointHeaderSize
	warmFixed      = 8 + 8
)

// WarmRecord is one boundary's persisted warm state.
type WarmRecord struct {
	// At is the instruction index of the boundary the state was captured
	// at.
	At int64
	// BaseAt is the boundary whose snapshot the payload is a delta
	// against, or -1 when the payload is a self-contained snapshot.
	BaseAt int64
	// Payload is the warm snapshot or delta bytes (opaque here).
	Payload []byte
}

// WarmKey derives the warm-state store key for the functional warm
// state at instruction index at of the trace identified by traceKey,
// captured by a warmer with the given parameter digest (warm-relevant
// configuration plus format version — see warm.Config.ParamsHash).
func WarmKey(traceKey Key, at int64, params [sha256.Size]byte) Key {
	h := sha256.New()
	h.Write([]byte("dmdp-warm\x00"))
	h.Write(warmMagic[:])
	h.Write(traceKey[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(at))
	h.Write(b[:])
	h.Write(params[:])
	var k Key
	h.Sum(k[:0])
	return k
}

func encodeWarm(r *WarmRecord) []byte {
	payload := make([]byte, 0, warmFixed+len(r.Payload))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.At))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.BaseAt))
	payload = append(payload, r.Payload...)
	buf := make([]byte, 0, warmHeaderSize+len(payload))
	buf = append(buf, warmMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

func decodeWarm(buf []byte) *WarmRecord {
	if len(buf) < warmHeaderSize || [8]byte(buf[:8]) != warmMagic {
		return nil
	}
	payload := buf[warmHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[8:12]) {
		return nil
	}
	if len(payload) < warmFixed {
		return nil
	}
	r := &WarmRecord{
		At:     int64(binary.LittleEndian.Uint64(payload[0:8])),
		BaseAt: int64(binary.LittleEndian.Uint64(payload[8:16])),
	}
	if r.At < 0 || (r.BaseAt < 0 && r.BaseAt != -1) || r.BaseAt >= r.At && r.BaseAt != -1 {
		return nil
	}
	r.Payload = append([]byte(nil), payload[warmFixed:]...)
	return r
}

// LoadWarm fetches the warm-state record stored under key, or
// (nil, false) on any miss. Corrupt entries are deleted in read-write
// modes and count as misses — the sampling layer degrades the affected
// intervals to cold starts.
func (s *Store) LoadWarm(key Key) (*WarmRecord, bool) {
	if s == nil {
		return nil, false
	}
	path := s.path(key, warmSuffix)
	buf, ok := readEntireOwned(path)
	if !ok {
		s.warmMisses.Add(1)
		return nil, false
	}
	r := decodeWarm(buf)
	if r == nil {
		s.drop(path)
		s.warmMisses.Add(1)
		return nil, false
	}
	s.warmHits.Add(1)
	s.warmBytes.Add(int64(len(r.Payload)))
	s.bytesRead.Add(int64(len(buf)))
	s.touch(path)
	return r, true
}

// StoreWarm persists r under key (no-op for nil or read-only stores).
func (s *Store) StoreWarm(key Key, r *WarmRecord) {
	if !s.writable() || r == nil {
		return
	}
	s.publish(s.path(key, warmSuffix), encodeWarm(r))
}
