package artifact

import "os"

// readEntireOwned reads the whole file into an owned buffer. Store
// entries whose decoders copy everything out of the raw bytes —
// checkpoints, plans, stats — must use this instead of readEntire: the
// mmap-backed readEntire is deliberately never unmapped (decoded traces
// alias the mapping for the process lifetime), so routing high-frequency
// loads through it — one checkpoint restore per interval per sampled
// run — leaks a mapping per read until the kernel's vm.max_map_count is
// exhausted, at which point the Go runtime aborts on its next heap
// mapping. An empty file reads as (empty, true): a corrupt cache entry
// for the decoder to reject, not a miss.
func readEntireOwned(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	return data, true
}
