package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"math"
	"sort"

	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/mem"
)

// Checkpoint store format v1 ("DMDPCKP1").
//
//	[8] magic+version  [4] CRC32C of the payload
//	payload:
//	  [8] at  [4] pc  [1] hasArch  [3] zero pad
//	  NumArchRegs x [4] regs
//	  [4] page count, then per page (ascending base address):
//	    [4] base  [PageSize] content
//
// Checkpoints are memory-image deltas plus architectural state; they are
// independently restorable, so corruption of one checkpoint only costs a
// longer roll-forward from an earlier one (or from the program start).
var checkpointMagic = [8]byte{'D', 'M', 'D', 'P', 'C', 'K', 'P', '1'}

// Plan store format v1 ("DMDPPLN1").
//
//	[8] magic+version  [4] CRC32C of the payload
//	payload:
//	  [8] chunkLen  [8] total  [8] warmup  [1] hitHalt  [7] zero pad
//	  [8] interval count, then per interval: [8] start [8] end [8] weight bits
var planMagic = [8]byte{'D', 'M', 'D', 'P', 'P', 'L', 'N', '1'}

const (
	checkpointHeaderSize = 12
	checkpointSuffix     = ".ckpt"
	planSuffix           = ".plan"
)

// CheckpointKey derives the checkpoint-store key for the architectural
// state at instruction index start of the trace identified by traceKey
// (which already encodes workload, budget and trace format).
func CheckpointKey(traceKey Key, start int64) Key {
	h := sha256.New()
	h.Write([]byte("dmdp-ckpt\x00"))
	h.Write(checkpointMagic[:])
	h.Write(traceKey[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(start))
	h.Write(b[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// PlanKey derives the plan-store key for a sampling plan computed over
// the trace identified by traceKey with the given sampling spec string
// and planner algorithm version.
func PlanKey(traceKey Key, spec string, version int64) Key {
	h := sha256.New()
	h.Write([]byte("dmdp-plan\x00"))
	h.Write(planMagic[:])
	h.Write(traceKey[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(version))
	h.Write(b[:])
	h.Write([]byte(spec))
	var k Key
	h.Sum(k[:0])
	return k
}

func encodeCheckpoint(ck *emu.Checkpoint) []byte {
	bases := make([]uint32, 0, len(ck.Pages))
	for base := range ck.Pages {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	size := 8 + 4 + 4 + 4*isa.NumArchRegs + 4 + len(bases)*(4+mem.PageSize)
	payload := make([]byte, 0, size)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(ck.At))
	payload = binary.LittleEndian.AppendUint32(payload, ck.PC)
	hasArch := byte(0)
	if ck.HasArch {
		hasArch = 1
	}
	payload = append(payload, hasArch, 0, 0, 0)
	for _, r := range ck.Regs {
		payload = binary.LittleEndian.AppendUint32(payload, r)
	}
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(bases)))
	for _, base := range bases {
		payload = binary.LittleEndian.AppendUint32(payload, base)
		payload = append(payload, ck.Pages[base][:]...)
	}

	buf := make([]byte, 0, checkpointHeaderSize+len(payload))
	buf = append(buf, checkpointMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

func decodeCheckpoint(buf []byte) *emu.Checkpoint {
	if len(buf) < checkpointHeaderSize || [8]byte(buf[:8]) != checkpointMagic {
		return nil
	}
	payload := buf[checkpointHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[8:12]) {
		return nil
	}
	fixed := 8 + 4 + 4 + 4*isa.NumArchRegs + 4
	if len(payload) < fixed {
		return nil
	}
	ck := &emu.Checkpoint{
		At:      int64(binary.LittleEndian.Uint64(payload[0:8])),
		PC:      binary.LittleEndian.Uint32(payload[8:12]),
		HasArch: payload[12] == 1,
	}
	off := 16
	for i := range ck.Regs {
		ck.Regs[i] = binary.LittleEndian.Uint32(payload[off : off+4])
		off += 4
	}
	n := int(binary.LittleEndian.Uint32(payload[off : off+4]))
	off += 4
	if len(payload) != fixed+n*(4+mem.PageSize) {
		return nil
	}
	ck.Pages = make(map[uint32]*[mem.PageSize]byte, n)
	for i := 0; i < n; i++ {
		base := binary.LittleEndian.Uint32(payload[off : off+4])
		off += 4
		pg := new([mem.PageSize]byte)
		copy(pg[:], payload[off:off+mem.PageSize])
		off += mem.PageSize
		ck.Pages[base] = pg
	}
	return ck
}

// LoadCheckpoint fetches the checkpoint stored under key, or (nil, false)
// on any miss. Corrupt entries are deleted in read-write modes and count
// as misses — the sampling layer degrades to rolling forward from an
// earlier checkpoint (ultimately re-simulation from the start).
func (s *Store) LoadCheckpoint(key Key) (*emu.Checkpoint, bool) {
	if s == nil {
		return nil, false
	}
	path := s.path(key, checkpointSuffix)
	buf, ok := readEntireOwned(path)
	if !ok {
		s.ckptMisses.Add(1)
		return nil, false
	}
	ck := decodeCheckpoint(buf)
	if ck == nil {
		s.drop(path)
		s.ckptMisses.Add(1)
		return nil, false
	}
	s.ckptHits.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	s.touch(path)
	return ck, true
}

// StoreCheckpoint persists ck under key (no-op for nil or read-only
// stores).
func (s *Store) StoreCheckpoint(key Key, ck *emu.Checkpoint) {
	if !s.writable() || ck == nil {
		return
	}
	s.publish(s.path(key, checkpointSuffix), encodeCheckpoint(ck))
}

// PlanInterval is one sampled interval of a persisted plan, in trace
// entry indices. The artifact layer stores plans in this neutral form so
// it does not depend on the sampling package (which imports artifact).
type PlanInterval struct {
	Start, End int64
	Weight     float64
}

// PlanRecord is a persisted sampling plan plus the stream facts needed
// to reuse it without re-streaming the trace.
type PlanRecord struct {
	// ChunkLen is the BBV chunk length the plan was computed over.
	ChunkLen int64
	// Total is the number of instructions the plan's stream executed
	// (may be below the budget when the program halted).
	Total int64
	// Warmup is the per-interval warm-up length the plan was built for.
	Warmup int64
	// HitHalt reports whether the stream reached HALT before the budget.
	HitHalt   bool
	Intervals []PlanInterval
}

func encodePlan(p *PlanRecord) []byte {
	payload := make([]byte, 0, 40+24*len(p.Intervals))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(p.ChunkLen))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(p.Total))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(p.Warmup))
	hitHalt := byte(0)
	if p.HitHalt {
		hitHalt = 1
	}
	payload = append(payload, hitHalt, 0, 0, 0, 0, 0, 0, 0)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(p.Intervals)))
	for _, iv := range p.Intervals {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(iv.Start))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(iv.End))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(iv.Weight))
	}
	buf := make([]byte, 0, checkpointHeaderSize+len(payload))
	buf = append(buf, planMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

func decodePlan(buf []byte) *PlanRecord {
	if len(buf) < checkpointHeaderSize || [8]byte(buf[:8]) != planMagic {
		return nil
	}
	payload := buf[checkpointHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[8:12]) {
		return nil
	}
	const fixed = 40
	if len(payload) < fixed {
		return nil
	}
	p := &PlanRecord{
		ChunkLen: int64(binary.LittleEndian.Uint64(payload[0:8])),
		Total:    int64(binary.LittleEndian.Uint64(payload[8:16])),
		Warmup:   int64(binary.LittleEndian.Uint64(payload[16:24])),
		HitHalt:  payload[24] == 1,
	}
	n := int(binary.LittleEndian.Uint64(payload[32:40]))
	if n < 0 || len(payload) != fixed+24*n {
		return nil
	}
	p.Intervals = make([]PlanInterval, n)
	for i := range p.Intervals {
		off := fixed + 24*i
		p.Intervals[i] = PlanInterval{
			Start:  int64(binary.LittleEndian.Uint64(payload[off : off+8])),
			End:    int64(binary.LittleEndian.Uint64(payload[off+8 : off+16])),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16 : off+24])),
		}
	}
	return p
}

// LoadPlan fetches the sampling plan stored under key, or (nil, false)
// on any miss. Corrupt entries are deleted in read-write modes.
func (s *Store) LoadPlan(key Key) (*PlanRecord, bool) {
	if s == nil {
		return nil, false
	}
	path := s.path(key, planSuffix)
	buf, ok := readEntireOwned(path)
	if !ok {
		s.ckptMisses.Add(1)
		return nil, false
	}
	p := decodePlan(buf)
	if p == nil {
		s.drop(path)
		s.ckptMisses.Add(1)
		return nil, false
	}
	s.ckptHits.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	s.touch(path)
	return p, true
}

// StorePlan persists p under key (no-op for nil or read-only stores).
func (s *Store) StorePlan(key Key, p *PlanRecord) {
	if !s.writable() || p == nil {
		return
	}
	s.publish(s.path(key, planSuffix), encodePlan(p))
}
