// Package artifact is the persistent, content-addressed cache behind the
// experiment runner: a trace store (binary-encoded trace.Trace, §DESIGN
// 9) and a result store (canonical core.Stats encodings). Entries are
// keyed by SHA-256 over every input that determines their content plus
// an explicit format/schema version, written via temp file + atomic
// rename, and validated (magic, version, layout fingerprint, CRC32C,
// exact length) on read — anything that fails validation is a miss, and
// read-write stores overwrite it with a fresh entry. A size cap evicts
// least-recently-used files (hits refresh mtime).
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmdp/internal/config"
	"dmdp/internal/core"
)

// Mode selects how a store participates in a run.
type Mode int

// Cache modes, in the order the -cache flag documents them.
const (
	// Off disables the cache entirely (Open returns a nil store).
	Off Mode = iota
	// RO reads existing entries but never writes or evicts.
	RO
	// RW reads and writes (the normal warm-cache mode).
	RW
	// Verify reads and writes like RW, but callers re-simulate every
	// result hit and fail loudly on mismatch (the stale-artifact
	// oracle); see VerifyError.
	Verify
)

func (m Mode) String() string {
	switch m {
	case RO:
		return "ro"
	case RW:
		return "rw"
	case Verify:
		return "verify"
	}
	return "off"
}

// ParseMode parses a -cache flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "ro":
		return RO, nil
	case "rw":
		return RW, nil
	case "verify":
		return Verify, nil
	}
	return Off, fmt.Errorf("artifact: unknown cache mode %q (want off, ro, rw or verify)", s)
}

// DefaultDir returns the default cache directory
// (os.UserCacheDir()/dmdp, or a .dmdp-cache fallback when the user cache
// dir is undefined).
func DefaultDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "dmdp")
	}
	return ".dmdp-cache"
}

// DefaultMaxBytes caps the cache directory at 2 GiB unless overridden.
const DefaultMaxBytes = 2 << 30

// Key addresses one cache entry. Keys are SHA-256 digests over the
// entry's inputs and format version, so distinct content never aliases
// and format bumps invalidate wholesale.
type Key [sha256.Size]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// TraceKey derives the trace-store key for a workload (identified by the
// SHA-256 of its generated source, see workload.Spec.SourceHash) at an
// instruction budget. The trace format version is part of the hash.
func TraceKey(sourceHash [sha256.Size]byte, budget int64) Key {
	h := sha256.New()
	h.Write([]byte("dmdp-trace\x00"))
	h.Write(traceMagic[:])
	h.Write(sourceHash[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(budget))
	h.Write(b[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// ResultKey derives the result-store key for one simulation: the trace
// key (which already encodes workload, budget and trace format), the
// configuration digest (which covers every Config field), and the stats
// schema version.
func ResultKey(traceKey Key, cfg config.Digest, budget int64) Key {
	h := sha256.New()
	h.Write([]byte("dmdp-result\x00"))
	h.Write(traceKey[:])
	h.Write(cfg[:])
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(budget))
	binary.LittleEndian.PutUint64(b[8:], core.StatsSchemaVersion)
	h.Write(b[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// Counters aggregates a store's activity for the run summary. All fields
// count events since Open.
type Counters struct {
	TraceHits, TraceMisses   int64
	ResultHits, ResultMisses int64
	// CheckpointHits/CheckpointMisses count checkpoint and sampling-plan
	// artifact lookups (both kinds share the pair: a plan hit without its
	// checkpoints still re-streams, so they degrade together).
	CheckpointHits, CheckpointMisses int64
	// WarmHits/WarmMisses count functional-warm-state artifact lookups; a
	// warm miss at a sampled interval degrades that interval to a cold
	// start, not a failure. WarmBytes is the total decoded snapshot bytes
	// served from warm hits.
	WarmHits, WarmMisses int64
	WarmBytes            int64
	Writes               int64
	BytesRead, BytesWritten   int64
	Evictions, CorruptDropped int64
	// Degraded reports a write-failure fallback to read-only (see
	// Store.Degraded).
	Degraded bool
}

// Store is an on-disk artifact cache rooted at one directory. A nil
// *Store is valid and behaves as an always-miss, never-write cache, so
// callers thread it unconditionally. Methods are safe for concurrent
// use.
type Store struct {
	dir      string
	mode     Mode
	maxBytes int64

	// degraded flips (once, permanently) when a write fails — an
	// unwritable directory at Open, ENOSPC or any other publish error.
	// A degraded store keeps serving reads but never writes again: the
	// cache is best-effort and the simulation must not die for it. The
	// first degradation records a structured reason and fires warnFn.
	degraded    atomic.Bool
	degradeOnce sync.Once
	degradedWhy atomic.Value // string
	warnFn      func(msg string)

	evictMu sync.Mutex // serializes size-cap walks

	// loaded memoizes decoded traces per key, tagged with the identity
	// of the file they were decoded from (see traceio.go). Reloading an
	// unchanged file returns the already-verified, already-mapped trace
	// — no second mapping (mappings are never unmapped, so repeated
	// loads must not map repeatedly) and no second checksum pass. Any
	// rewrite, truncation or eviction changes the identity and forces a
	// fresh verified decode.
	loadedMu sync.Mutex
	loaded   map[Key]loadedTrace

	traceHits, traceMisses   atomic.Int64
	resultHits, resultMisses atomic.Int64
	ckptHits, ckptMisses     atomic.Int64
	warmHits, warmMisses     atomic.Int64
	warmBytes                atomic.Int64
	writes                   atomic.Int64
	bytesRead, bytesWritten  atomic.Int64
	evictions, corrupt       atomic.Int64
}

// fileID identifies one published cache file's content for in-process
// memoization (see Store.loaded). Platform stat code fills it; the zero
// value never matches a real file.
type fileID struct {
	dev, ino uint64
	size     int64
	mtimeNS  int64
}

// Open creates (if needed) the cache directory and returns a store in
// the given mode. Mode Off returns (nil, nil): the nil store misses
// everything and persists nothing. maxBytes <= 0 means DefaultMaxBytes;
// the cap is enforced after each write in a read-write mode.
func Open(dir string, mode Mode, maxBytes int64) (*Store, error) {
	if mode == Off {
		return nil, nil
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{dir: dir, mode: mode, maxBytes: maxBytes}
	if mode != RO {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			// An unwritable cache directory must not surface as a run
			// error: degrade to read-only (existing entries, if any,
			// still serve) and keep simulating.
			s.degrade(fmt.Sprintf("cache directory unusable (%v)", err))
		}
	}
	return s, nil
}

// SetWarnFn registers the sink for the store's one-time degradation
// warning (nil discards it). Call before the first write. If the store
// already degraded (e.g. during Open), fn fires immediately.
func (s *Store) SetWarnFn(fn func(msg string)) {
	if s == nil {
		return
	}
	s.warnFn = fn
	if fn != nil && s.degraded.Load() {
		fn(s.DegradedReason())
	}
}

// Degraded reports whether the store fell back to read-only after a
// write failure (false for a nil store).
func (s *Store) Degraded() bool { return s != nil && s.degraded.Load() }

// DegradedReason returns the structured one-line reason for the
// degradation ("" when not degraded).
func (s *Store) DegradedReason() string {
	if s == nil {
		return ""
	}
	if why, ok := s.degradedWhy.Load().(string); ok {
		return why
	}
	return ""
}

// degrade permanently flips the store to read-only with a one-time
// structured warning. Reads keep working; every later write is a
// silent no-op. Concurrent degradations keep the first reason.
func (s *Store) degrade(cause string) {
	s.degradeOnce.Do(func() {
		msg := fmt.Sprintf(
			"artifact: cache degraded %s -> read-only: %s (dir %s); simulation continues without persisting new entries",
			s.mode, cause, s.dir)
		s.degradedWhy.Store(msg)
		s.degraded.Store(true)
		if s.warnFn != nil {
			s.warnFn(msg)
		}
	})
}

// Mode returns the store's mode (Off for a nil store).
func (s *Store) Mode() Mode {
	if s == nil {
		return Off
	}
	return s.mode
}

// Dir returns the cache directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// VerifyEnabled reports whether result hits must be re-simulated and
// compared.
func (s *Store) VerifyEnabled() bool { return s != nil && s.mode == Verify }

func (s *Store) writable() bool { return s != nil && s.mode != RO && !s.degraded.Load() }

// Counters returns a snapshot of the store's activity (zero for a nil
// store).
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	return Counters{
		TraceHits:        s.traceHits.Load(),
		TraceMisses:      s.traceMisses.Load(),
		ResultHits:       s.resultHits.Load(),
		ResultMisses:     s.resultMisses.Load(),
		CheckpointHits:   s.ckptHits.Load(),
		CheckpointMisses: s.ckptMisses.Load(),
		WarmHits:         s.warmHits.Load(),
		WarmMisses:       s.warmMisses.Load(),
		WarmBytes:        s.warmBytes.Load(),
		Writes:           s.writes.Load(),
		BytesRead:      s.bytesRead.Load(),
		BytesWritten:   s.bytesWritten.Load(),
		Evictions:      s.evictions.Load(),
		CorruptDropped: s.corrupt.Load(),
		Degraded:       s.degraded.Load(),
	}
}

// Summary renders the counters as one human-readable line for the
// experiments summary ("" for a nil store).
func (s *Store) Summary() string {
	if s == nil {
		return ""
	}
	c := s.Counters()
	line := fmt.Sprintf(
		"cache %s (%s): traces %d hit / %d miss, results %d hit / %d miss, %d written (%.1f MiB out, %.1f MiB in)",
		s.mode, s.dir,
		c.TraceHits, c.TraceMisses, c.ResultHits, c.ResultMisses,
		c.Writes, float64(c.BytesWritten)/(1<<20), float64(c.BytesRead)/(1<<20))
	if c.CheckpointHits > 0 || c.CheckpointMisses > 0 {
		line += fmt.Sprintf(", checkpoints %d hit / %d miss", c.CheckpointHits, c.CheckpointMisses)
	}
	if c.WarmHits > 0 || c.WarmMisses > 0 {
		line += fmt.Sprintf(", warm state %d hit / %d miss (%.1f MiB)",
			c.WarmHits, c.WarmMisses, float64(c.WarmBytes)/(1<<20))
	}
	if c.Evictions > 0 || c.CorruptDropped > 0 {
		line += fmt.Sprintf(", %d evicted, %d corrupt dropped", c.Evictions, c.CorruptDropped)
	}
	if s.Degraded() {
		line += ", DEGRADED to read-only"
	}
	return line
}

// VerifyError reports a verify-mode mismatch: a cached result entry
// whose canonical encoding differs from a fresh re-simulation with
// identical inputs. It means the entry is stale or the simulator became
// nondeterministic — either way the cache cannot be trusted.
type VerifyError struct {
	Key       Key    // result-store key of the poisoned entry
	Path      string // file the entry was read from
	Bench     string // workload name
	Label     string // configuration label
	CachedSHA string // SHA-256 of the cached canonical encoding
	FreshSHA  string // SHA-256 of the re-simulated canonical encoding
	FirstDiff int    // first differing byte offset in the canonical encoding
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf(
		"artifact: verify mismatch for %s/%s: cached stats %s != re-simulated %s (first differing byte %d, key %s, file %s)",
		e.Bench, e.Label, e.CachedSHA, e.FreshSHA, e.FirstDiff, e.Key, e.Path)
}

// NewVerifyError builds the structured diagnostic for a poisoned result
// entry from the two canonical encodings.
func NewVerifyError(key Key, path, bench, label string, cached, fresh []byte) *VerifyError {
	diff := len(cached)
	if len(fresh) < diff {
		diff = len(fresh)
	}
	first := diff
	for i := 0; i < diff; i++ {
		if cached[i] != fresh[i] {
			first = i
			break
		}
	}
	cs, fs := sha256.Sum256(cached), sha256.Sum256(fresh)
	return &VerifyError{
		Key: key, Path: path, Bench: bench, Label: label,
		CachedSHA: hex.EncodeToString(cs[:8]), FreshSHA: hex.EncodeToString(fs[:8]),
		FirstDiff: first,
	}
}

// path returns the file for a key with the given suffix.
func (s *Store) path(key Key, suffix string) string {
	return filepath.Join(s.dir, key.String()+suffix)
}

// publish atomically installs data at path via a temp file + rename, then
// enforces the size cap. A failed write (unwritable directory, ENOSPC
// mid-write, rename failure) degrades the whole store to read-only with
// a one-time warning — the entry stays absent, later writes stop being
// attempted, and the run continues.
func (s *Store) publish(path string, data []byte) {
	if !s.writable() {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		s.degrade(fmt.Sprintf("cannot create cache entry (%v)", err))
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		s.degrade(fmt.Sprintf("cache entry write failed (%v)", werr))
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.degrade(fmt.Sprintf("cache entry publish failed (%v)", err))
		return
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(data)))
	s.enforceCap()
}

// touch refreshes a file's mtime so LRU eviction sees the hit. Read-only
// stores leave mtimes alone.
func (s *Store) touch(path string) {
	if s.writable() {
		now := time.Now()
		os.Chtimes(path, now, now)
	}
}

// drop removes a corrupt entry (read-write modes only) and counts it.
func (s *Store) drop(path string) {
	s.corrupt.Add(1)
	if s.writable() {
		os.Remove(path)
	}
}

// enforceCap deletes least-recently-used cache files until the directory
// is under maxBytes. Only complete entries (never tmp files being
// written elsewhere) are considered; races with concurrent writers are
// benign because entries are immutable once renamed in.
func (s *Store) enforceCap() {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		total += info.Size()
		if len(de.Name()) >= 4 && de.Name()[:4] == "tmp-" {
			continue // in-flight writes are not eviction candidates
		}
		files = append(files, file{
			path:  filepath.Join(s.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
	}
	if total <= s.maxBytes {
		return
	}
	// LRU by mtime, ties broken by file name: coarse filesystem
	// timestamps make equal mtimes common (a warm-up burst can publish
	// dozens of entries in one tick), and without the secondary key the
	// eviction order within a tie would be whatever os.ReadDir's
	// directory listing happened to be — filesystem-dependent and
	// irreproducible.
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.evictions.Add(1)
		}
	}
}
