package artifact

import (
	"encoding/binary"
	"testing"

	"dmdp/internal/asm"
	"dmdp/internal/emu"
	"dmdp/internal/trace"
)

// fuzzTraceBytes builds a small but structurally complete encoded trace
// (program text, data, symbols, memory pages, entry section) to seed the
// corpus.
func fuzzTraceBytes(tb testing.TB) []byte {
	tb.Helper()
	src := "\t.text\nmain:\n\tli $t0, 7\n\tsw $t0, 0($gp)\n\tlw $t1, 0($gp)\n\taddi $t1, $t1, 1\n\thalt\n\t.data\nx:\n\t.word 1, 2, 3, 4\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := emu.Run(prog, 100)
	if err != nil {
		tb.Fatal(err)
	}
	buf := encodeTrace(tr)
	if buf == nil {
		tb.Fatal("encodeTrace returned nil")
	}
	return buf
}

// FuzzTraceDecode feeds mutated artifact-store bytes to the trace
// decoder. The contract: any input yields either a miss (nil) or a
// structurally sound trace — never a panic and never a silently wrong
// trace. Mutations are decoded twice: once as-is (exercising the magic/
// fingerprint/checksum gate) and once with the header and payload CRC
// patched to valid values, which drives the fuzzer past the checksum
// into the structural decoder — the territory the recover() backstop
// and the length checks guard.
func FuzzTraceDecode(f *testing.F) {
	valid := fuzzTraceBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-payload
	f.Add(valid[:traceHeaderSize])     // header only
	f.Add([]byte{})                    // empty
	f.Add([]byte("DMDPTRC1 not real")) // magic, garbage rest
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		checkSound(t, decodeTrace(data))

		// Re-sign the mutation so the structural decoder runs: restore
		// magic and fingerprint, then recompute the payload CRC over
		// whatever bytes the fuzzer produced.
		if len(data) < traceHeaderSize+4*8 {
			return
		}
		patched := append([]byte(nil), data...)
		copy(patched[:8], traceMagic[:])
		binary.LittleEndian.PutUint32(patched[8:12], layoutFingerprint)
		binary.LittleEndian.PutUint32(patched[12:16], payloadChecksum(patched[traceHeaderSize:]))
		checkSound(t, decodeTrace(patched))
	})
}

// checkSound asserts the invariants a successfully decoded trace must
// satisfy: a decode that returns non-nil with an inconsistent structure
// would be the "silent wrong trace" failure mode — the simulator indexes
// Prog.Text and Entries without further validation.
func checkSound(t *testing.T, tr *trace.Trace) {
	t.Helper()
	if tr == nil {
		return // a miss is always a fine outcome
	}
	if tr.Prog == nil {
		t.Fatal("decoded trace has nil program")
	}
	if tr.InitMem == nil {
		t.Fatal("decoded trace has nil initial memory")
	}
	if tr.Stores < 0 || tr.Loads < 0 {
		t.Fatalf("negative stream counts: stores=%d loads=%d", tr.Stores, tr.Loads)
	}
	// Every trace entry must reference an instruction the simulator can
	// look up; decodeTrace's length checks must have enforced that the
	// entry section exists in full.
	for i := range tr.Entries {
		_ = tr.Entries[i].PC
		_ = tr.Entries[i].Instr
	}
}
