package artifact

import (
	"encoding/binary"
	"hash/crc32"

	"dmdp/internal/core"
)

// Result store format v1 ("DMDPRES1").
//
//	[8] magic+version  [4] CRC32C of the payload
//	payload: one canonical core.Stats encoding (fixed width; see
//	core.MarshalCanonical). The stats schema version is part of the
//	cache key, not the file, so a schema bump changes keys and the old
//	files simply age out.
var resultMagic = [8]byte{'D', 'M', 'D', 'P', 'R', 'E', 'S', '1'}

const (
	resultHeaderSize = 12
	resultSuffix     = ".stats"
)

func encodeStats(st *core.Stats) []byte {
	payload := st.MarshalCanonical()
	buf := make([]byte, 0, resultHeaderSize+len(payload))
	buf = append(buf, resultMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

func decodeStats(buf []byte) *core.Stats {
	if len(buf) < resultHeaderSize || [8]byte(buf[:8]) != resultMagic {
		return nil
	}
	payload := buf[resultHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[8:12]) {
		return nil
	}
	st, err := core.UnmarshalCanonicalStats(payload)
	if err != nil {
		return nil
	}
	return st
}

// LoadStats fetches the simulation result stored under key, or
// (nil, "", false) on any miss. The returned path names the file the
// entry was read from (for verify-mode diagnostics). Corrupt entries
// are deleted in read-write modes.
func (s *Store) LoadStats(key Key) (*core.Stats, string, bool) {
	if s == nil {
		return nil, "", false
	}
	path := s.path(key, resultSuffix)
	buf, ok := readEntireOwned(path)
	if !ok {
		s.resultMisses.Add(1)
		return nil, "", false
	}
	st := decodeStats(buf)
	if st == nil {
		s.drop(path)
		s.resultMisses.Add(1)
		return nil, "", false
	}
	s.resultHits.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	s.touch(path)
	return st, path, true
}

// StoreStats persists st under key (no-op for nil or read-only stores).
// Callers must not persist failed or fault-injected runs — the store
// cannot tell them apart from clean ones.
func (s *Store) StoreStats(key Key, st *core.Stats) {
	if !s.writable() || st == nil {
		return
	}
	s.publish(s.path(key, resultSuffix), encodeStats(st))
}
