package workload

import (
	"strings"
	"testing"
)

func TestSuiteComposition(t *testing.T) {
	if got := len(Names()); got != 21 {
		t.Fatalf("expected 21 benchmarks, got %d", got)
	}
	if got := len(IntNames()); got != 10 {
		t.Fatalf("expected 10 Integer benchmarks, got %d", got)
	}
	if got := len(FloatNames()); got != 11 {
		t.Fatalf("expected 11 Float benchmarks, got %d", got)
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate benchmark %q", n)
		}
		seen[n] = true
	}
}

func TestGet(t *testing.T) {
	s, ok := Get("hmmer")
	if !ok || s.Name != "hmmer" || s.Class != Int {
		t.Fatalf("Get(hmmer) = %+v, %v", s, ok)
	}
	if _, ok := Get("nonexistent"); ok {
		t.Fatal("Get must fail for unknown names")
	}
}

func TestAllProxiesAssembleAndRun(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			tr, err := s.BuildTrace(20000)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if len(tr.Entries) != 20000 {
				t.Fatalf("trace has %d entries, want 20000 (budget)", len(tr.Entries))
			}
			if tr.Loads == 0 || tr.Stores == 0 {
				t.Fatalf("proxy has no memory traffic: %d loads, %d stores", tr.Loads, tr.Stores)
			}
		})
	}
}

func TestSourcesAreDeterministic(t *testing.T) {
	for _, s := range All() {
		a, b := s.Source(), s.Source()
		if a != b {
			t.Fatalf("%s: nondeterministic source generation", s.Name)
		}
	}
}

func TestSignaturesDocumented(t *testing.T) {
	for _, s := range All() {
		if s.Signature == "" {
			t.Errorf("%s: missing signature documentation", s.Name)
		}
		if !strings.Contains(s.Source(), "# signature:") {
			t.Errorf("%s: source missing signature comment", s.Name)
		}
	}
}

func TestOCProxiesHaveCollidingLoads(t *testing.T) {
	// Benchmarks built on the occasionally-colliding kernel must show
	// loads whose last writer is a nearby store.
	for _, name := range []string{"bzip2", "gromacs", "astar", "hmmer"} {
		s, _ := Get(name)
		tr, err := s.BuildTrace(30000)
		if err != nil {
			t.Fatal(err)
		}
		var nearDeps int64
		for i := range tr.Entries {
			e := &tr.Entries[i]
			if e.IsLoad() && e.DepStore > 0 && e.DepDist() <= 4 {
				nearDeps++
			}
		}
		if nearDeps < 100 {
			t.Errorf("%s: only %d near-distance dependent loads", name, nearDeps)
		}
	}
}

func TestStreamProxiesMostlyIndependent(t *testing.T) {
	for _, name := range []string{"leslie3d", "bwaves"} {
		s, _ := Get(name)
		tr, err := s.BuildTrace(30000)
		if err != nil {
			t.Fatal(err)
		}
		var near, loads int64
		for i := range tr.Entries {
			e := &tr.Entries[i]
			if e.IsLoad() {
				loads++
				if e.DepStore > 0 && e.DepDist() <= 8 {
					near++
				}
			}
		}
		if loads == 0 || float64(near)/float64(loads) > 0.2 {
			t.Errorf("%s: %d/%d near-dependent loads; streaming should be mostly independent", name, near, loads)
		}
	}
}

func TestPartialWordProxyUsesHalfwords(t *testing.T) {
	s, _ := Get("bzip2")
	src := s.Source()
	if !strings.Contains(src, "lhu") || !strings.Contains(src, "sh ") {
		t.Error("bzip2 proxy must use halfword accesses (Fig. 13)")
	}
}

func TestSilentStoresPresentInHmmer(t *testing.T) {
	s, _ := Get("hmmer")
	tr, err := s.BuildTrace(30000)
	if err != nil {
		t.Fatal(err)
	}
	var silent int64
	for i := range tr.Entries {
		if tr.Entries[i].IsStore() && tr.Entries[i].Silent {
			silent++
		}
	}
	if silent < 100 {
		t.Errorf("hmmer proxy has only %d silent stores", silent)
	}
}
