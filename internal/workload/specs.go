package workload

// Class separates the Integer and Float suites (the paper reports
// separate geometric means).
type Class int

// Suite classes.
const (
	Int Class = iota
	Float
)

func (c Class) String() string {
	if c == Float {
		return "FP"
	}
	return "Int"
}

// Spec describes one SPEC CPU2006 proxy benchmark.
type Spec struct {
	Name      string
	Class     Class
	Seed      int64
	Signature string // the paper behaviour this proxy reproduces
	emit      func(b *builder)
}

// specs lists the 21 benchmarks of the paper's evaluation (§V), in paper
// order: 10 Integer then 11 Float.
var specs = []Spec{
	{
		Name: "perl", Class: Int, Seed: 101,
		Signature: "branchy interpreter: stack spills (AC), moderate OC, data-dependent branches",
		emit: func(b *builder) {
			b.stack(4, 32, 4)
			b.branchyStoreLoad(16, 4)
			b.ocPointer(96, 256, 0.45, 0, 16, 6, false)
			b.compute(24)
		},
	},
	{
		Name: "bzip2", Class: Int, Seed: 102,
		Signature: "Fig. 13: halfword pointer table with duplicates at varying gaps -> unstable distances; DMDP gains big but has more MPKI than NoSQ",
		emit: func(b *builder) {
			b.ocPointer(12, 512, 0.5, 0.16, 12, 10, true)
			b.stream(32<<10, 64, 8, 3, false)
			b.compute(16)
		},
	},
	{
		Name: "gcc", Class: Int, Seed: 103,
		Signature: ">10% delayed loads: hashed symbol updates + path-dependent distances",
		emit: func(b *builder) {
			b.hashRMW(1024, 24, 6)
			b.branchyStoreLoad(12, 6)
			b.ocPointer(128, 256, 0.45, 0.02, 12, 8, false)
			b.stack(3, 20, 2)
		},
	},
	{
		Name: "mcf", Class: Int, Seed: 104,
		Signature: "pointer chasing with miss-dependent colliding stores: bypassing is slower than delaying (paper §II)",
		emit: func(b *builder) {
			b.linkedRMW(1<<15, 24)
			b.linked(1<<15, 24)
			b.ocPointer(96, 128, 0.45, 0, 12, 6, false)
		},
	},
	{
		Name: "gobmk", Class: Int, Seed: 105,
		Signature: "branch-heavy game tree with board updates",
		emit: func(b *builder) {
			b.branchyStoreLoad(16, 8)
			b.stack(5, 24, 3)
			b.hashRMW(2048, 12, 6)
			b.compute(20)
		},
	},
	{
		Name: "hmmer", Class: Int, Seed: 106,
		Signature: "silent stores with jittering distances: the silent-store-aware update policy backfires for NoSQ (3.06 MPKI, -20% vs baseline); DMDP recovers most of it",
		emit: func(b *builder) {
			b.silentVar(32, 6)
			b.ocPointer(16, 256, 0.45, 0.15, 16, 8, false)
			b.stream(16<<10, 32, 8, 3, false)
		},
	},
	{
		Name: "sjeng", Class: Int, Seed: 107,
		Signature: "chess search: branches + stack frames + transposition table",
		emit: func(b *builder) {
			b.branchyStoreLoad(12, 6)
			b.stack(6, 28, 4)
			b.hashRMW(2048, 10, 6)
			b.compute(16)
		},
	},
	{
		Name: "lib", Class: Int, Seed: 108,
		Signature: "libquantum: long streaming sweeps, very few low-confidence loads, latency-bound",
		emit: func(b *builder) {
			b.stream(2<<20, 96, 8, 3, true)
			b.compute(10)
		},
	},
	{
		Name: "h264ref", Class: Int, Seed: 109,
		Signature: ">10% delayed loads: partial-word pixel updates + reference-frame streaming",
		emit: func(b *builder) {
			b.ocPointer(64, 384, 0.45, 0.03, 12, 8, true)
			b.stream(256<<10, 64, 8, 3, false)
			b.stack(3, 16, 2)
		},
	},
	{
		Name: "astar", Class: Int, Seed: 110,
		Signature: ">10% delayed loads: open-list pointer updates + graph chasing",
		emit: func(b *builder) {
			b.ocPointer(128, 384, 0.45, 0, 16, 6, false)
			b.linked(1<<13, 16)
			b.branchyStoreLoad(8, 6)
		},
	},

	{
		Name: "bwaves", Class: Float, Seed: 201,
		Signature: "blast-wave solver: wide FP streaming",
		emit: func(b *builder) {
			b.fpStream(4<<20, 64, 8, 0)
			b.compute(10)
		},
	},
	{
		Name: "milc", Class: Float, Seed: 202,
		Signature: "lattice QCD: hashed site updates -> IndepStore-dominated low-confidence loads (naive misprediction 23.5%)",
		emit: func(b *builder) {
			b.hashRMW(4096, 32, 8)
			b.fpStream(1<<20, 32, 8, 0)
		},
	},
	{
		Name: "zeusmp", Class: Float, Seed: 203,
		Signature: "astrophysical CFD: FP streaming + stable stack traffic",
		emit: func(b *builder) {
			b.fpStream(1<<20, 48, 8, 0)
			b.stack(4, 24, 3)
		},
	},
	{
		Name: "gromacs", Class: Float, Seed: 204,
		Signature: "molecular dynamics: stable OC neighbour updates -> DMDP cuts load time 32.1->11.4 cycles",
		emit: func(b *builder) {
			b.ocPointer(256, 384, 0.48, 0, 16, 5, false)
			b.fpStream(64<<10, 48, 8, 0)
		},
	},
	{
		Name: "leslie3d", Class: Float, Seed: 205,
		Signature: "turbulence CFD: FP streaming, large footprint",
		emit: func(b *builder) {
			b.fpStream(2<<20, 64, 8, 0)
		},
	},
	{
		Name: "namd", Class: Float, Seed: 206,
		Signature: "molecular dynamics kernel: compute-bound, modest memory traffic",
		emit: func(b *builder) {
			b.compute(48)
			b.fpStream(128<<10, 16, 8, 8)
		},
	},
	{
		Name: "Gems", Class: Float, Seed: 207,
		Signature: "GemsFDTD: field updates streaming + scattered accumulations",
		emit: func(b *builder) {
			b.fpStream(2<<20, 48, 8, 0)
			b.hashRMW(1024, 12, 6)
		},
	},
	{
		Name: "tonto", Class: Float, Seed: 208,
		Signature: "quantum chemistry: stack-managed temporaries + stable OC -> cloaking-friendly",
		emit: func(b *builder) {
			b.stack(5, 24, 4)
			b.ocPointer(128, 256, 0.95, 0, 32, 5, false)
			b.fpStream(128<<10, 16, 8, 8)
		},
	},
	{
		Name: "lbm", Class: Float, Seed: 209,
		Signature: "lattice Boltzmann: write-heavy streaming, store-miss-bound -> most re-execution stalls (Table VII) and biggest store-buffer sensitivity (Fig. 14); naive misprediction 28.6%",
		emit: func(b *builder) {
			b.splitFPStream(3<<20, 64, 16)
			b.hashRMW(8192, 10, 4)
		},
	},
	{
		Name: "wrf", Class: Float, Seed: 210,
		Signature: "weather model: low-confidence loads on the serial critical path -> NoSQ below baseline, DMDP +34.1% over NoSQ (§VI-c)",
		emit: func(b *builder) {
			b.wrfChain(40, 64, 3)
			b.fpStream(64<<10, 12, 8, 0)
		},
	},
	{
		Name: "sphinx3", Class: Float, Seed: 211,
		Signature: "speech recognition: FP streaming + hashed scoring, small DMDP deltas",
		emit: func(b *builder) {
			b.fpStream(1<<20, 40, 8, 0)
			b.hashRMW(2048, 16, 6)
			b.branchyStoreLoad(8, 4)
		},
	},
}
