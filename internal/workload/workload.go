package workload

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strings"

	"dmdp/internal/asm"
	"dmdp/internal/emu"
	"dmdp/internal/isa"
	"dmdp/internal/trace"
)

// Names returns the benchmark names in paper order (Integer suite first).
func Names() []string {
	out := make([]string, len(specs))
	for i := range specs {
		out[i] = specs[i].Name
	}
	return out
}

// IntNames returns the Integer suite.
func IntNames() []string { return byClass(Int) }

// FloatNames returns the Float suite.
func FloatNames() []string { return byClass(Float) }

func byClass(c Class) []string {
	var out []string
	for i := range specs {
		if specs[i].Class == c {
			out = append(out, specs[i].Name)
		}
	}
	return out
}

// Get returns the spec for a benchmark name.
func Get(name string) (*Spec, bool) {
	for i := range specs {
		if specs[i].Name == name {
			return &specs[i], true
		}
	}
	return nil, false
}

// All returns every spec in paper order.
func All() []*Spec {
	out := make([]*Spec, len(specs))
	for i := range specs {
		out[i] = &specs[i]
	}
	return out
}

// Source generates the proxy's assembly program. The kernel blocks run
// inside an effectively unbounded outer loop; the simulation instruction
// budget bounds execution.
func (s *Spec) Source() string {
	b := newBuilder(s.Seed)
	s.emit(b) // fills text/data/init

	var hdr strings.Builder
	fmt.Fprintf(&hdr, "# %s proxy (%s suite)\n", s.Name, s.Class)
	fmt.Fprintf(&hdr, "# signature: %s\n", s.Signature)
	hdr.WriteString("\t.text\n")
	hdr.WriteString("main:\n")
	fmt.Fprintf(&hdr, "\tli $s6, %d\n", 12345+s.Seed) // LCG state
	hdr.WriteString(b.init.String())                  // cursor registers
	hdr.WriteString("\tli $s7, 100000000\n")          // outer iterations (budget-bounded)
	hdr.WriteString("outer:\n")
	var src strings.Builder
	src.WriteString(hdr.String())
	src.WriteString(b.text.String())
	src.WriteString("\taddi $s7, $s7, -1\n")
	src.WriteString("\tbnez $s7, outer\n")
	src.WriteString("\thalt\n")
	src.WriteString("\t.data\n")
	src.WriteString(b.data.String())
	return src.String()
}

// SourceHash returns the SHA-256 of the generated assembly source. It is
// the workload component of persistent cache keys: two specs hash equal
// exactly when they generate the same program, so renaming a proxy never
// aliases and regenerating identical source always hits.
func (s *Spec) SourceHash() [sha256.Size]byte {
	return sha256.Sum256([]byte(s.Source()))
}

// Program assembles the proxy.
func (s *Spec) Program() (*isa.Program, error) {
	p, err := asm.Assemble(s.Source())
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return p, nil
}

// BuildTrace assembles, emulates and analyzes the proxy for at most
// maxInstr instructions.
func (s *Spec) BuildTrace(maxInstr int64) (*trace.Trace, error) {
	return s.BuildTraceCtx(nil, maxInstr)
}

// BuildTraceCtx is BuildTrace with cancellation: the emulation polls ctx
// periodically and aborts with a *trace.BuildCanceled error (which
// unwraps to the context error) when a deadline or cancel fires
// mid-build. A nil ctx never cancels.
func (s *Spec) BuildTraceCtx(ctx context.Context, maxInstr int64) (*trace.Trace, error) {
	p, err := s.Program()
	if err != nil {
		return nil, err
	}
	tr, err := emu.RunCtx(ctx, p, maxInstr)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return tr, nil
}
