// Package workload provides the 21 synthetic SPEC CPU2006 proxy
// benchmarks the reproduction evaluates (the paper's benchmark list, §V).
// Each proxy is an assembly program composed from parameterized kernels
// whose knobs — never/always/occasionally-colliding load mix, dependence
// distance stability, silent-store rate, partial-word rate, footprint
// (cache-miss rate), branchiness, FP latency pressure — are set to match
// the qualitative per-benchmark signatures the paper reports. See
// DESIGN.md §1 for the substitution rationale.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// builder accumulates the init, text and data sections of a generated
// program. Kernels with a persistent cursor (sweeping a table or array
// across outer iterations) hold it in a callee-saved register allocated
// with sreg and initialized once before the outer loop.
type builder struct {
	init    strings.Builder
	text    strings.Builder
	data    strings.Builder
	rng     *rand.Rand
	blockID int
	sRegs   int
}

func newBuilder(seed int64) *builder {
	return &builder{rng: rand.New(rand.NewSource(seed))}
}

// prefix returns a unique label prefix for the next kernel block.
func (b *builder) prefix() string {
	b.blockID++
	return fmt.Sprintf("k%d_", b.blockID)
}

func (b *builder) t(format string, args ...any) {
	fmt.Fprintf(&b.text, format+"\n", args...)
}

func (b *builder) d(format string, args ...any) {
	fmt.Fprintf(&b.data, format+"\n", args...)
}

func (b *builder) i(format string, args ...any) {
	fmt.Fprintf(&b.init, format+"\n", args...)
}

// sreg allocates a callee-saved cursor register ($s0..$s5).
func (b *builder) sreg() string {
	if b.sRegs >= 6 {
		panic("workload: out of cursor registers")
	}
	r := fmt.Sprintf("$s%d", b.sRegs)
	b.sRegs++
	return r
}

// Kernel conventions: $s7 holds the outer loop counter and $s6 the shared
// LCG state — kernels must preserve $s7 and may step $s6. $t0..$t9 are
// block-local scratch; $a0..$a3/$v0/$v1 carry the ALU padding chains.

// pad emits n independent ALU instructions, diluting memory density to
// SPEC-like levels (~25-30% memory operations).
func (b *builder) pad(n int) {
	ops := []string{
		"\tadd $a0, $a0, $v0",
		"\txor $a1, $a1, $a0",
		"\taddi $v0, $v0, 3",
		"\tsll $a2, $a1, 1",
		"\tsub $a3, $a2, $v0",
		"\tor $v1, $a3, $a0",
	}
	for i := 0; i < n; i++ {
		b.t("%s", ops[i%len(ops)])
	}
}

// ocPointer emits the paper's Fig. 1 occasionally-colliding pattern:
// pointers are read from a table and the pointed-to word is incremented;
// consecutive equal pointers create store-to-load collisions at distance
// zero. adjDup is the probability a table entry repeats its predecessor
// (stable, learnable distance); gapDup is the probability it repeats a
// random earlier entry (unstable distance — the bzip2 Fig. 13
// behaviour). A large slot pool makes non-adjacent reuse land on
// long-committed stores (the IndepStore case DMDP handles); a small pool
// keeps the alternative writer in flight (the DiffStore case it cannot).
func (b *builder) ocPointer(slots, tableLen int, adjDup, gapDup float64, iters, padN int, partial bool) {
	p := b.prefix()
	elem := 4
	if partial {
		elem = 2
	}
	b.d("%sslots:", p)
	b.d("\t.space %d", slots*elem)
	b.d("\t.align 2")
	b.d("%sptrs:", p)
	// Non-duplicate entries advance round-robin, so a slot recurs only
	// after ~slots stores: by then its writer has committed and the
	// mispredicted case is cleanly IndepStore. gapDup reintroduces
	// short-range recurrence (in-flight DiffStore churn, Fig. 13).
	prev := 0
	hist := make([]int, 0, tableLen)
	for i := 0; i < tableLen; i++ {
		var s int
		switch r := b.rng.Float64(); {
		case i > 0 && r < adjDup:
			s = prev
		case len(hist) > 8 && r < adjDup+gapDup:
			s = hist[len(hist)-2-b.rng.Intn(6)]
		default:
			s = (prev + 1) % slots
		}
		hist = append(hist, s)
		prev = s
		b.d("\t.word %sslots+%d", p, s*elem)
	}
	b.d("%sptrs_end:", p)

	ld, st := "lw", "sw"
	if partial {
		ld, st = "lhu", "sh"
	}
	// The register cursor persists across outer iterations so the whole
	// table is swept cyclically: slot recurrence distances stay long
	// (committed writers) except for the engineered adjacent/gap
	// duplicates.
	cur := b.sreg()
	b.i("\tla %s, %sptrs", cur, p)
	b.t("\tla $t8, %sptrs_end", p)
	b.t("\tli $t1, %d", min(iters, tableLen))
	b.t("%sloop:", p)
	b.t("\tlw $t2, 0(%s)", cur) // ptr = a[i]
	b.t("\t%s $t3, 0($t2)", ld) // x[ptr]
	b.t("\taddi $t3, $t3, 1")
	b.t("\t%s $t3, 0($t2)", st) // x[ptr]++
	b.pad(padN)
	b.t("\taddi %s, %s, 4", cur, cur)
	b.t("\tbne %s, $t8, %snowrap", cur, p)
	b.t("\tla %s, %sptrs", cur, p)
	b.t("%snowrap:", p)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// stream emits a sequential sweep over a large array (never-colliding
// loads; footprint sets the cache-miss rate). When write is true every
// element is read-modified-written (dirty evictions, store misses — the
// lbm signature).
func (b *builder) stream(bytes, iters, stride, padN int, write bool) {
	p := b.prefix()
	b.d("%sarr:", p)
	b.d("\t.space %d", bytes)
	b.d("%send:", p)
	cur := b.sreg()
	b.i("\tla %s, %sarr", cur, p)
	b.t("\tla $t8, %send", p)
	b.t("\tli $t1, %d", iters)
	b.t("%sloop:", p)
	b.t("\tlw $t2, 0(%s)", cur)
	b.t("\taddi $t2, $t2, 3")
	if write {
		b.t("\tsw $t2, 0(%s)", cur)
	}
	b.pad(padN)
	b.t("\taddi %s, %s, %d", cur, cur, stride)
	b.t("\tbne %s, $t8, %snowrap", cur, p)
	b.t("\tla %s, %sarr", cur, p)
	b.t("%snowrap:", p)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// stack emits register spill/fill traffic: always-colliding loads with
// stable distances — the bread and butter of memory cloaking.
func (b *builder) stack(depth, iters, padN int) {
	p := b.prefix()
	b.d("%sframe:", p)
	b.d("\t.space %d", depth*4+16)
	b.t("\tla $t9, %sframe", p)
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t2, 1")
	b.t("%sloop:", p)
	for i := 0; i < depth; i++ {
		b.t("\tsw $t2, %d($t9)", i*4)
	}
	b.pad(padN)
	for i := 0; i < depth; i++ {
		b.t("\tlw $t%d, %d($t9)", 3+i%4, i*4)
	}
	b.t("\tadd $t2, $t2, $t3")
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// linked emits a serial pointer chase over a randomly permuted cyclic
// list: never-colliding, cache-missing, latency-bound (the mcf
// signature).
func (b *builder) linked(nodes, iters int) {
	p := b.prefix()
	perm := b.rng.Perm(nodes)
	next := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		next[perm[i]] = perm[(i+1)%nodes]
	}
	b.d("%snodes:", p)
	for i := 0; i < nodes; i++ {
		b.d("\t.word %snodes+%d", p, next[i]*4)
	}
	cur := b.sreg()
	b.i("\tla %s, %snodes", cur, p)
	b.t("\tli $t1, %d", iters)
	b.t("%sloop:", p)
	b.t("\tlw %s, 0(%s)", cur, cur)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// linkedRMW is the mcf flavour: chase a pointer, then store a value
// derived from the (cache-missing) load and immediately reload it — the
// colliding store depends on a miss, so even bypassing is slow (paper
// §II: mcf's bypassing loads are slower than its delayed loads).
func (b *builder) linkedRMW(nodes, iters int) {
	p := b.prefix()
	perm := b.rng.Perm(nodes)
	next := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		next[perm[i]] = perm[(i+1)%nodes]
	}
	b.d("%snodes:", p)
	for i := 0; i < nodes; i++ {
		b.d("\t.word %snodes+%d", p, next[i]*4)
	}
	b.d("%sacc:", p)
	b.d("\t.word 0")
	cur := b.sreg()
	b.i("\tla %s, %snodes", cur, p)
	b.t("\tla $t8, %sacc", p)
	b.t("\tli $t1, %d", iters)
	b.t("%sloop:", p)
	b.t("\tlw %s, 0(%s)", cur, cur) // miss-prone chase
	b.t("\tsw %s, 0($t8)", cur)     // store depends on the miss
	b.t("\tlw $t2, 0($t8)")         // always collides (AC) but data is late
	b.pad(2)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// lcgStep emits an LCG advance of $s6 into $t5 (pseudo-random data for
// branches and indices; deterministic per seed).
func (b *builder) lcgStep() {
	b.t("\tli $t4, 1103515245")
	b.t("\tmul $s6, $s6, $t4")
	b.t("\taddi $s6, $s6, 12345")
	b.t("\tsrl $t5, $s6, 9")
}

// hashRMW emits hashed read-modify-write bucket updates: loads are
// predicted dependent after rare same-bucket repeats but are almost
// always independent of any in-flight store — the IndepStore-dominated
// low-confidence population of Fig. 5 (milc/lbm signature).
func (b *builder) hashRMW(buckets, iters, padN int) {
	p := b.prefix()
	b.d("%stab:", p)
	b.d("\t.space %d", buckets*4)
	b.t("\tla $t0, %stab", p)
	b.t("\tli $t1, %d", iters)
	b.t("%sloop:", p)
	b.lcgStep()
	b.t("\tandi $t5, $t5, %d", buckets-1)
	b.t("\tsll $t5, $t5, 2")
	b.t("\tadd $t6, $t0, $t5")
	b.t("\tlw $t7, 0($t6)")
	b.t("\taddi $t7, $t7, 1")
	b.t("\tsw $t7, 0($t6)")
	b.pad(padN)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// branchyStoreLoad emits path-dependent store distances: a data-dependent
// branch inserts an extra store between a store and its dependent load,
// so the distance is 0 on one path and 1 on the other — exercising the
// path-sensitive Store Distance Predictor.
func (b *builder) branchyStoreLoad(iters, padN int) {
	p := b.prefix()
	b.d("%sslot:", p)
	b.d("\t.space 16")
	b.t("\tla $t8, %sslot", p)
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t2, 7")
	b.t("%sloop:", p)
	// Deterministic alternation: the branch itself predicts well and the
	// path-sensitive Store Distance Predictor can learn both distances
	// (the paper's motivation for the path-sensitive table, §IV-A d).
	b.t("\tandi $t6, $t1, 1")
	b.t("\tsw $t2, 0($t8)")
	b.t("\tbeqz $t6, %sskip", p)
	b.t("\tsw $t2, 8($t8)") // extra store shifts the distance on this path
	b.t("%sskip:", p)
	b.t("\tlw $t3, 0($t8)")
	b.t("\tadd $t2, $t2, $t3")
	b.pad(padN)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// silentVar emits silent stores (repeatedly writing the same value) with
// a data-dependent intervening store that perturbs the dependence
// distance — the hmmer signature where the silent-store-aware predictor
// update creates hard-to-predict dependencies (paper §VI-a).
func (b *builder) silentVar(iters, padN int) {
	p := b.prefix()
	b.d("%sslot:", p)
	b.d("\t.space 16")
	b.t("\tla $t8, %sslot", p)
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t2, 42") // the silent value: never changes
	b.t("%sloop:", p)
	b.lcgStep()
	b.t("\tandi $t6, $t5, 15")
	b.t("\tsw $t2, 0($t8)") // silent store
	b.t("\tbnez $t6, %sskip", p)
	b.t("\tsw $t5, 4($t8)") // occasional pad store: distance jitters
	b.t("%sskip:", p)
	b.t("\tlw $t3, 0($t8)")
	b.t("\tadd $t7, $t7, $t3")
	b.pad(padN)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// fpStream emits a floating-point streaming kernel: loads feed
// long-latency FP-proxy chains whose results are stored back.
func (b *builder) fpStream(bytes, iters, stride, divEvery int) {
	p := b.prefix()
	b.d("%sarr:", p)
	b.d("\t.space %d", bytes)
	b.d("%send:", p)
	cur := b.sreg()
	b.i("\tla %s, %sarr", cur, p)
	b.t("\tla $t8, %send", p)
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t7, 3")
	b.t("%sloop:", p)
	b.t("\tlw $t2, 0(%s)", cur)
	b.t("\tfmul $t3, $t2, $t7")
	b.t("\tfadd $t3, $t3, $t2")
	if divEvery > 0 {
		b.t("\tandi $t6, $t1, %d", divEvery-1)
		b.t("\tbnez $t6, %snodiv", p)
		b.t("\tfdiv $t3, $t3, $t7")
		b.t("%snodiv:", p)
	}
	b.t("\tsw $t3, 0(%s)", cur)
	b.pad(3)
	b.t("\taddi %s, %s, %d", cur, cur, stride)
	b.t("\tbne %s, $t8, %snowrap", cur, p)
	b.t("\tla %s, %sarr", cur, p)
	b.t("%snowrap:", p)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// splitFPStream reads one large array and writes a second one (the lbm
// lattice-to-lattice pattern): the stores miss the cache, so commit
// latency is long and the store buffer is the bottleneck — the paper's
// most store-buffer-sensitive benchmark (Fig. 14) with the most
// re-execution stalls (Table VII).
func (b *builder) splitFPStream(bytes, iters, stride int) {
	p := b.prefix()
	b.d("%ssrc:", p)
	b.d("\t.space %d", bytes)
	b.d("%ssrcend:", p)
	b.d("%sdst:", p)
	b.d("\t.space %d", bytes)
	src := b.sreg()
	dst := b.sreg()
	b.i("\tla %s, %ssrc", src, p)
	b.i("\tla %s, %sdst", dst, p)
	b.t("\tla $t8, %ssrcend", p)
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t7, 3")
	b.t("%sloop:", p)
	b.t("\tlw $t2, 0(%s)", src)
	b.t("\tfmul $t3, $t2, $t7")
	b.t("\tfadd $t3, $t3, $t2")
	b.t("\tsw $t3, 0(%s)", dst)
	b.pad(3)
	b.t("\taddi %s, %s, %d", src, src, stride)
	b.t("\taddi %s, %s, %d", dst, dst, stride)
	b.t("\tbne %s, $t8, %snowrap", src, p)
	b.t("\tla %s, %ssrc", src, p)
	b.t("\tla %s, %sdst", dst, p)
	b.t("%snowrap:", p)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// compute emits a pure register-register dependency chain (dilutes memory
// traffic; the namd signature).
func (b *builder) compute(iters int) {
	p := b.prefix()
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t2, 17")
	b.t("\tli $t3, 5")
	b.t("%sloop:", p)
	b.t("\tmul $t2, $t2, $t3")
	b.t("\taddi $t2, $t2, 11")
	b.t("\txor $t3, $t3, $t2")
	b.t("\tandi $t3, $t3, 1023")
	b.t("\taddi $t3, $t3, 3")
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

// wrfChain emits a serial accumulator threaded through memory where the
// store's target alternates between two slots in long phases (period
// 2*phase iterations): within a phase the dependence is stable (cloaking
// works), at the boundary it flips. During the non-colliding phase the
// load's actual writer is long committed, so DMDP's predication reads the
// cache correctly while NoSQ keeps delaying — and because the program's
// critical path runs through the load, NoSQ serializes the loop (the wrf
// signature, §VI-c: +34.1% over NoSQ, NoSQ below baseline).
func (b *builder) wrfChain(iters, phase, padN int) {
	p := b.prefix()
	b.d("%sslots:", p)
	b.d("\t.space 16")
	b.t("\tla $t8, %sslots", p)
	b.t("\tli $t1, %d", iters)
	b.t("\tli $t2, 1")
	b.t("%sloop:", p)
	b.t("\tandi $t6, $s7, %d", phase) // slow phase bit from the outer counter
	b.t("\tsrl $t6, $t6, %d", log2(phase)-2)
	b.t("\tadd $t7, $t8, $t6")
	b.t("\tsw $t2, 0($t7)")   // store to slot 0 or slot 4+
	b.t("\tlw $t3, 0($t8)")   // collides only in phase 0
	b.t("\taddi $t2, $t3, 1") // serial chain through the load
	b.pad(padN)
	b.t("\taddi $t1, $t1, -1")
	b.t("\tbnez $t1, %sloop", p)
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
