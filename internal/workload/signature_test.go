package workload

import (
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
)

// These tests pin each proxy's paper-documented signature (DESIGN.md §1):
// if a future retuning breaks the qualitative behaviour an experiment
// depends on, it fails here rather than silently skewing EXPERIMENTS.md.

func runBench(t *testing.T, name string, m config.Model, budget int64) *core.Stats {
	t.Helper()
	s, ok := Get(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	tr, err := s.BuildTrace(budget)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(config.Default(m), tr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatalf("%s/%s: %v", name, m, err)
	}
	return st
}

func TestSignatureHmmerSilentStores(t *testing.T) {
	// hmmer: NoSQ mispredicts much more than DMDP (paper 3.06 vs 1.03).
	nosq := runBench(t, "hmmer", config.NoSQ, 80_000)
	dmdp := runBench(t, "hmmer", config.DMDP, 80_000)
	if nosq.MPKI() < dmdp.MPKI() {
		t.Errorf("hmmer: NoSQ MPKI %.2f should exceed DMDP %.2f", nosq.MPKI(), dmdp.MPKI())
	}
	if nosq.MPKI() < 0.5 {
		t.Errorf("hmmer: NoSQ MPKI %.2f too low for the silent-store pathology", nosq.MPKI())
	}
}

func TestSignatureBzip2InvertedMPKI(t *testing.T) {
	// bzip2: DMDP mispredicts more than NoSQ (paper: ~2x) because the
	// colliding distance churns (Fig. 13), yet DMDP still wins IPC.
	nosq := runBench(t, "bzip2", config.NoSQ, 120_000)
	dmdp := runBench(t, "bzip2", config.DMDP, 120_000)
	if dmdp.MPKI() < nosq.MPKI() {
		t.Errorf("bzip2: DMDP MPKI %.2f should exceed NoSQ %.2f (inversion)", dmdp.MPKI(), nosq.MPKI())
	}
	if dmdp.IPC() < nosq.IPC() {
		t.Errorf("bzip2: DMDP IPC %.3f should still beat NoSQ %.3f", dmdp.IPC(), nosq.IPC())
	}
}

func TestSignatureWrfCriticalPath(t *testing.T) {
	// wrf: NoSQ's delayed loads serialize the critical path; DMDP's
	// predication gives the biggest relative win.
	nosq := runBench(t, "wrf", config.NoSQ, 80_000)
	dmdp := runBench(t, "wrf", config.DMDP, 80_000)
	if gain := dmdp.IPC() / nosq.IPC(); gain < 1.10 {
		t.Errorf("wrf: DMDP over NoSQ %+.1f%%, expected >10%%", 100*(gain-1))
	}
}

func TestSignatureLbmMemoryBound(t *testing.T) {
	// lbm: write-heavy streaming, high L1 miss rate, heavy SB pressure
	// with a small store buffer.
	st := runBench(t, "lbm", config.DMDP, 80_000)
	if st.L1MissRate < 0.02 {
		t.Errorf("lbm: L1 miss rate %.3f too low for a streaming proxy", st.L1MissRate)
	}
	s, _ := Get("lbm")
	tr, err := s.BuildTrace(80_000)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := core.New(config.Default(config.DMDP).WithStoreBuffer(16), tr)
	small, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if small.SBStallsPerKilo() < 50 {
		t.Errorf("lbm: 16-entry SB stalls %.1f/1k too low (paper: most SB-sensitive)", small.SBStallsPerKilo())
	}
}

func TestSignatureMcfLatencyBound(t *testing.T) {
	// mcf: pointer chasing -> by far the longest load execution times.
	mcf := runBench(t, "mcf", config.Baseline, 60_000)
	perl := runBench(t, "perl", config.Baseline, 60_000)
	if mcf.MeanLoadExecTime() < 2*perl.MeanLoadExecTime() {
		t.Errorf("mcf loads %.1f cycles should dwarf perl %.1f",
			mcf.MeanLoadExecTime(), perl.MeanLoadExecTime())
	}
}

func TestSignatureStackBenchmarksCloak(t *testing.T) {
	// sjeng/gobmk/perl: stack-spill-heavy -> bypassing dominates in NoSQ.
	for _, name := range []string{"sjeng", "gobmk"} {
		st := runBench(t, name, config.NoSQ, 60_000)
		byp := float64(st.LoadCount[core.LoadBypass]) / float64(st.TotalLoads())
		if byp < 0.5 {
			t.Errorf("%s: bypassing share %.2f, expected cloaking-dominated", name, byp)
		}
	}
}

func TestSignatureStreamsAreDirect(t *testing.T) {
	// lib/bwaves/leslie3d/namd: streaming, essentially all direct loads.
	for _, name := range []string{"lib", "bwaves", "leslie3d", "namd"} {
		st := runBench(t, name, config.NoSQ, 60_000)
		direct := float64(st.LoadCount[core.LoadDirect]) / float64(st.TotalLoads())
		if direct < 0.95 {
			t.Errorf("%s: direct share %.2f, expected streaming-direct", name, direct)
		}
	}
}

func TestSignatureMilcIndepStore(t *testing.T) {
	// milc: hashed updates -> low-confidence loads dominated by
	// IndepStore (paper Fig. 5 names milc's naive misprediction 23.5%).
	st := runBench(t, "milc", config.DMDP, 80_000)
	if st.LowConfCount == 0 {
		t.Fatal("milc: no low-confidence loads")
	}
	indep := float64(st.LowConfOutcomes[core.LowConfIndepStore]) / float64(st.LowConfCount)
	if indep < 0.8 {
		t.Errorf("milc: IndepStore share %.2f, expected dominant", indep)
	}
}

func TestSignatureDMDPNeverFarBehindNoSQ(t *testing.T) {
	// The paper's headline: DMDP outperforms NoSQ on every benchmark. At
	// small budgets we allow a small tolerance for warm-up noise.
	for _, name := range Names() {
		nosq := runBench(t, name, config.NoSQ, 60_000)
		dmdp := runBench(t, name, config.DMDP, 60_000)
		if dmdp.IPC() < nosq.IPC()*0.95 {
			t.Errorf("%s: DMDP %.3f more than 5%% behind NoSQ %.3f",
				name, dmdp.IPC(), nosq.IPC())
		}
	}
}
