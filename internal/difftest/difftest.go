// Package difftest is the lockstep differential-verification harness: it
// retires the timing core against the architectural emulator
// instruction-by-instruction and reports any divergence through the
// core's structured SimError bundle.
//
// The protocol: the harness attaches a commit hook to the core
// (core.AttachCommitHook) and steps a fresh functional emulator once per
// retirement, checking
//
//  1. the retiring PC matches the emulator's PC,
//  2. the retiring instruction is the one the emulator decodes,
//  3. a retiring load's destination value (whatever the model's
//     communication mechanism produced — forwarding, cloaking,
//     predication, delaying, cache read) matches the architecturally
//     executed value,
//  4. a retiring store's (address, size, data) matches the emulator's,
//
// and, after the run, that the retirement count matches the emulator's
// instruction count and the committed memory image (including stores
// still pending in the store buffer) is byte-identical to the emulator's
// final memory. The hook fires before the core's built-in commit-time
// oracle, so the lockstep observer — not the oracle — is the component
// under test's first line of defense; injected value corruption
// (internal/faults) surfaces as an ErrLockstep divergence.
//
// Inputs come from internal/progen; a divergence carries the (seed,
// knobs) vector and can be delta-debugged down to a small runnable .s
// repro (see Minimize).
package difftest

import (
	"fmt"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/emu"
	"dmdp/internal/faults"
	"dmdp/internal/mem"
	"dmdp/internal/progen"
	"dmdp/internal/trace"
)

// AllModels is the full model sweep: every store-load communication
// mechanism the core implements.
var AllModels = []config.Model{
	config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF,
}

// Options configure a differential run.
type Options struct {
	Budget   int64          // dynamic instruction budget per program
	Models   []config.Model // nil = AllModels
	Faults   faults.Config  // zero value = no injection
	PhysRegs int            // physical register file size (0 = model default)
}

func (o Options) models() []config.Model {
	if len(o.Models) == 0 {
		return AllModels
	}
	return o.Models
}

func (o Options) config(m config.Model) config.Config {
	cfg := config.Default(m)
	if o.Faults != (faults.Config{}) {
		cfg = cfg.WithFaults(o.Faults)
	}
	if o.PhysRegs > 0 {
		cfg = cfg.WithPhysRegs(o.PhysRegs)
	}
	return cfg
}

// Divergence is one lockstep failure, carrying everything needed to
// reproduce it from the CLI: the generator coordinates, the model and
// the structured simulation error.
type Divergence struct {
	Seed   uint64
	Preset string
	Knobs  progen.Knobs
	Model  config.Model
	Source string
	Err    error // usually a *core.SimError (ErrLockstep or ErrOracle)
}

func (d *Divergence) String() string {
	return fmt.Sprintf("seed=%d preset=%s model=%s: %v", d.Seed, d.Preset, d.Model, d.Err)
}

// Bundle renders the divergence's full diagnostic.
func (d *Divergence) Bundle() string {
	hdr := fmt.Sprintf("difftest divergence: seed=%d preset=%s knobs={%s} model=%s\n",
		d.Seed, d.Preset, d.Knobs, d.Model)
	if se, ok := d.Err.(*core.SimError); ok {
		return hdr + se.Bundle()
	}
	return hdr + d.Err.Error() + "\n"
}

// Lockstep runs one timing simulation with the emulator in lockstep.
// The returned error is a *core.SimError on any divergence the commit
// hook or the core's own hardening layer detected; the final-state
// checks (retire count, committed memory) are folded into the same
// error type so callers render one kind of bundle.
func Lockstep(cfg config.Config, tr *trace.Trace) (*core.Stats, error) {
	em := emu.New(tr.Prog)
	c, err := core.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	c.AttachCommitHook(func(rec core.CommitRecord) error {
		if em.Halted() {
			return fmt.Errorf("emulator already halted, core retires idx %d pc 0x%08x", rec.Idx, rec.PC)
		}
		if em.PC != rec.PC {
			return fmt.Errorf("PC diverged: core retires 0x%08x, emulator at 0x%08x", rec.PC, em.PC)
		}
		ent, err := em.Step()
		if err != nil {
			return fmt.Errorf("emulator fault at pc 0x%08x: %v", rec.PC, err)
		}
		if ent.Instr != rec.Instr {
			return fmt.Errorf("instruction diverged at pc 0x%08x: core retires %q, emulator executes %q",
				rec.PC, rec.Instr, ent.Instr)
		}
		if rec.IsLoad && ent.Value != rec.Value {
			return fmt.Errorf("load %s retired value 0x%08x, architectural value 0x%08x",
				rec.Instr, rec.Value, ent.Value)
		}
		if rec.IsStore && (ent.Addr != rec.Addr || ent.Size != rec.Size || ent.Value != rec.Value) {
			return fmt.Errorf("store %s retired (addr 0x%08x size %d value 0x%08x), architectural (addr 0x%08x size %d value 0x%08x)",
				rec.Instr, rec.Addr, rec.Size, rec.Value, ent.Addr, ent.Size, ent.Value)
		}
		return nil
	})
	st, err := c.Run()
	if err != nil {
		return st, err
	}
	if got, want := em.InstrCount(), int64(len(tr.Entries)); got != want {
		return st, &core.SimError{
			Kind: core.ErrLockstep, Idx: -1, Model: cfg.Model.String(),
			Retired: want, TraceLen: len(tr.Entries),
			Msg: fmt.Sprintf("lockstep: emulator executed %d instructions, core retired %d", got, want),
		}
	}
	if msg := diffImages(c.CommittedImage(), em.Mem); msg != "" {
		return st, &core.SimError{
			Kind: core.ErrLockstep, Idx: -1, Model: cfg.Model.String(),
			Retired: int64(len(tr.Entries)), TraceLen: len(tr.Entries),
			Msg: "lockstep: final memory diverged: " + msg,
		}
	}
	return st, nil
}

// diffImages compares two sparse memory images byte-for-byte; a page
// missing on one side compares as zero-filled. Returns "" when equal,
// else a description of the first differing word.
func diffImages(got, want *mem.Image) string {
	var zero [mem.PageSize]byte
	pages := map[uint32][2]*[mem.PageSize]byte{}
	got.ForEachPage(func(base uint32, data *[mem.PageSize]byte) {
		p := pages[base]
		p[0] = data
		pages[base] = p
	})
	want.ForEachPage(func(base uint32, data *[mem.PageSize]byte) {
		p := pages[base]
		p[1] = data
		pages[base] = p
	})
	for base, p := range pages {
		g, w := p[0], p[1]
		if g == nil {
			g = &zero
		}
		if w == nil {
			w = &zero
		}
		if *g == *w {
			continue
		}
		for i := range g {
			if g[i] != w[i] {
				a := (base + uint32(i)) &^ 3
				return fmt.Sprintf("word 0x%08x: committed 0x%08x, architectural 0x%08x",
					a, got.Word(a), want.Word(a))
			}
		}
	}
	return ""
}

// RunSeed generates the program for (seed, knobs), builds its trace and
// runs every model in lockstep. It returns one canonical digest line per
// model ("seed=N model=M <stats digest>", fixed order — the aggregate
// sweep digest is built from these, so output is schedule-independent),
// the first divergence (nil if clean), and a non-nil err only for
// infrastructure failures (the generated program failed to assemble or
// trace — a generator bug, not a core divergence).
func RunSeed(seed uint64, preset string, k progen.Knobs, opt Options) ([]string, *Divergence, error) {
	src := progen.Generate(seed, k)
	tr, err := BuildTrace(src, opt.Budget)
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d (%s): %w", seed, preset, err)
	}
	lines := make([]string, 0, len(opt.models()))
	for _, m := range opt.models() {
		st, err := Lockstep(opt.config(m), tr)
		if err != nil {
			return nil, &Divergence{Seed: seed, Preset: preset, Knobs: k, Model: m, Source: src, Err: err}, nil
		}
		lines = append(lines, fmt.Sprintf("seed=%d preset=%s model=%s %s", seed, preset, m, st.DigestLine()))
	}
	return lines, nil, nil
}

// BuildTrace assembles source and collects its architectural trace.
func BuildTrace(src string, budget int64) (*trace.Trace, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("assemble: %w", err)
	}
	tr, err := emu.Run(prog, budget)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return tr, nil
}
