package difftest

import (
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/faults"
	"dmdp/internal/progen"
)

// A small randomized sweep: every preset, several seeds, all five
// models, zero divergence. The CI sweep (cmd/difftest) runs the same
// harness over 10k seeds; this keeps `go test ./...` fast while still
// exercising every model × preset combination.
func TestLockstepCleanSweep(t *testing.T) {
	opt := Options{Budget: 3000}
	presets := progen.Presets()
	for _, p := range presets {
		for seed := uint64(1); seed <= 4; seed++ {
			lines, div, err := RunSeed(seed, p.Name, p.Knobs, opt)
			if err != nil {
				t.Fatalf("infrastructure failure: %v", err)
			}
			if div != nil {
				t.Fatalf("divergence:\n%s", div.Bundle())
			}
			if len(lines) != len(AllModels) {
				t.Fatalf("seed %d: %d digest lines, want %d", seed, len(lines), len(AllModels))
			}
		}
	}
}

// RunSeed's digest lines must be a pure function of (seed, knobs): the
// CLI builds its aggregate sweep digest from them, and -j1/-j8 output
// must be byte-identical.
func TestRunSeedDeterministic(t *testing.T) {
	p := progen.Presets()[0]
	a, _, err := RunSeed(11, p.Name, p.Knobs, Options{Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunSeed(11, p.Name, p.Knobs, Options{Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("digest line %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// Injected architectural value corruption (internal/faults) must be
// caught by the lockstep hook — not the downstream oracle — and must
// minimize to a small runnable repro.
func TestLockstepCatchesInjectedCorruption(t *testing.T) {
	opt := Options{
		Budget: 3000,
		Faults: faults.Config{Seed: 5, ValueCorruptRate: 1},
	}
	p := progen.Presets()[0]
	_, div, err := RunSeed(3, p.Name, p.Knobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("value corruption at rate 1 not caught")
	}
	se, ok := div.Err.(*core.SimError)
	if !ok {
		t.Fatalf("divergence error is %T, want *core.SimError", div.Err)
	}
	if se.Kind != core.ErrLockstep {
		t.Fatalf("divergence kind %q, want %q (the lockstep observer must fire before the oracle)", se.Kind, core.ErrLockstep)
	}

	r := div.Minimize(opt)
	if r.Static > 50 {
		t.Fatalf("minimized repro has %d static instructions, want <= 50:\n%s", r.Static, r.Source)
	}
	if !div.Check(opt)(r.Source) {
		t.Fatal("minimized repro does not reproduce the failure")
	}
}

// A silently corrupted trace — the exact failure mode a broken artifact
// cache would produce — must be caught even though the core's built-in
// oracle can't see it (the oracle compares against the same corrupted
// trace). The lockstep emulator is the independent reference.
func TestLockstepCatchesTraceCorruption(t *testing.T) {
	p := progen.Presets()[0]
	src := progen.Generate(9, p.Knobs)
	tr, err := BuildTrace(src, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the data value of the first store in the trace: the core
	// will faithfully commit the wrong byte pattern.
	idx := -1
	for i := range tr.Entries {
		if tr.Entries[i].IsStore() {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no store in trace")
	}
	tr.Entries[idx].Value ^= 0xdead_beef

	_, err = Lockstep(config.Default(config.DMDP), tr)
	if err == nil {
		t.Fatal("corrupted trace not caught by lockstep")
	}
	se, ok := err.(*core.SimError)
	if !ok || se.Kind != core.ErrLockstep {
		t.Fatalf("got %v, want an ErrLockstep SimError", err)
	}
}

// CommittedImage must fold stores still pending in the store buffer into
// the snapshot: the core can reach done with an undrained SB, and the
// final-memory comparison depends on seeing those bytes.
func TestLockstepFinalMemoryIncludesPendingStores(t *testing.T) {
	// Covered implicitly by every clean sweep (the comparison runs at
	// the end of each Lockstep call and generated programs end with
	// stores near the halt), but pin one config explicitly.
	p, _ := progen.PresetByName("storeheavy")
	src := progen.Generate(2, p)
	tr, err := BuildTrace(src, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllModels {
		if _, err := Lockstep(config.Default(m), tr); err != nil {
			t.Fatalf("model %s: %v", m, err)
		}
	}
}
