package difftest

import (
	"fmt"
	"strings"

	"dmdp/internal/asm"
)

// This file is the repro minimizer: given a diverging generated program,
// delta-debug (ddmin over source lines) it down to a small program that
// still fails, so a CI divergence lands as a handful of instructions
// instead of a ~200-line generated body.

// Repro is a minimized failing program.
type Repro struct {
	Source string
	Static int // static instructions in the minimized program
	Trials int // candidate programs evaluated during minimization
}

// CheckFunc reports whether a candidate source still reproduces the
// failure under investigation. It must return false for candidates that
// do not assemble or trace.
type CheckFunc func(src string) bool

// Check builds the standard reproduction predicate for a divergence: the
// candidate still assembles, traces, and fails lockstep for the same
// model (any lockstep/oracle/hardening error counts — the minimizer must
// not chase an exact message that shifts as context lines disappear).
func (d *Divergence) Check(opt Options) CheckFunc {
	cfg := opt.config(d.Model)
	return func(src string) bool {
		tr, err := BuildTrace(src, opt.Budget)
		if err != nil {
			return false
		}
		_, err = Lockstep(cfg, tr)
		return err != nil
	}
}

// Minimize delta-debugs the divergence's source program. The result is
// the smallest program the line-granular ddmin pass reaches; with
// deterministic failures (e.g. value corruption at rate 1) this is
// typically a handful of instructions.
func (d *Divergence) Minimize(opt Options) *Repro {
	return MinimizeSource(d.Source, d.Check(opt))
}

// removable reports whether a source line may be deleted. The control
// skeleton (labels, directives, the loop counter and its decrement/
// backward branch, halt, leaf returns) stays; every other instruction
// line is fair game — deleting a register initializer or a branch is
// fine because unreferenced labels and zero-valued registers are both
// legal.
func removable(line string) bool {
	t := strings.TrimSpace(line)
	if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, ".") {
		return false
	}
	if strings.HasSuffix(strings.SplitN(t, " ", 2)[0], ":") {
		return false
	}
	switch {
	case strings.Contains(t, "# loop-counter"),
		strings.HasPrefix(t, "addi $s6"),
		strings.HasPrefix(t, "bnez $s6"),
		strings.HasPrefix(t, "jr "),
		strings.HasPrefix(t, "halt"):
		return false
	}
	return true
}

// MinimizeSource runs ddmin over the removable lines of src, keeping a
// candidate whenever check still reports failure. It then tries to
// collapse the loop trip count to 1. check(src) must be true on entry.
func MinimizeSource(src string, check CheckFunc) *Repro {
	lines := strings.Split(src, "\n")
	var cand []int // indices of removable lines
	for i, l := range lines {
		if removable(l) {
			cand = append(cand, i)
		}
	}
	dead := make([]bool, len(lines))
	build := func() string {
		var b strings.Builder
		for i, l := range lines {
			if !dead[i] {
				b.WriteString(l)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	trials := 0
	try := func(drop []int) bool {
		for _, i := range drop {
			dead[i] = true
		}
		trials++
		if check(build()) {
			return true
		}
		for _, i := range drop {
			dead[i] = false
		}
		return false
	}

	// ddmin: sweep with shrinking chunk sizes until a full pass at
	// chunk 1 removes nothing.
	alive := func() []int {
		var out []int
		for _, i := range cand {
			if !dead[i] {
				out = append(out, i)
			}
		}
		return out
	}
	for chunk := (len(cand) + 1) / 2; chunk >= 1; {
		removed := false
		a := alive()
		for start := 0; start < len(a); {
			end := start + chunk
			if end > len(a) {
				end = len(a)
			}
			if try(a[start:end]) {
				a = append(a[:start:start], a[end:]...)
				removed = true
			} else {
				start = end
			}
		}
		if chunk == 1 {
			if !removed {
				break
			}
			continue
		}
		chunk /= 2
	}

	// Collapse the loop: a one-iteration repro is easier to read.
	for i, l := range lines {
		if !dead[i] && strings.Contains(l, "# loop-counter") {
			saved := lines[i]
			lines[i] = "\tli $s6, 1 # loop-counter"
			trials++
			if !check(build()) {
				lines[i] = saved
			}
			break
		}
	}

	// Sweep labels that no surviving line references (semantically inert,
	// but they clutter the repro); verified with one final check.
	var swept []int
	for i, l := range lines {
		t := strings.TrimSpace(l)
		if dead[i] || !strings.HasSuffix(t, ":") || !strings.HasPrefix(t, "L") {
			continue
		}
		// Branch targets are always the last operand, so a label is
		// referenced iff some surviving line's last token is its name.
		name := strings.TrimSuffix(t, ":")
		used := false
		for j, m := range lines {
			if j == i || dead[j] {
				continue
			}
			f := strings.Fields(m)
			if len(f) > 0 && f[len(f)-1] == name {
				used = true
				break
			}
		}
		if !used {
			dead[i] = true
			swept = append(swept, i)
		}
	}
	if len(swept) > 0 {
		trials++
		if !check(build()) {
			for _, i := range swept {
				dead[i] = false
			}
		}
	}

	out := build()
	static := 0
	if p, err := asm.Assemble(out); err == nil {
		static = len(p.Text)
	}
	return &Repro{Source: out, Static: static, Trials: trials}
}

// ReproFile renders the minimized repro as a self-describing runnable .s
// file: the original generator coordinates and the failure line ride
// along as comments so the file alone is enough to rerun and triage.
func (d *Divergence) ReproFile(r *Repro) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# difftest repro: seed=%d preset=%s model=%s\n", d.Seed, d.Preset, d.Model)
	fmt.Fprintf(&b, "# knobs: %s\n", d.Knobs)
	fmt.Fprintf(&b, "# failure: %v\n", d.Err)
	fmt.Fprintf(&b, "# static instructions: %d (minimized in %d trials)\n", r.Static, r.Trials)
	b.WriteString(r.Source)
	return b.String()
}
