// Package dram models a DDR-style main memory with banks and an open-page
// row-buffer policy, in the spirit of DRAMSim2 (which the paper embedded)
// but simplified to the features the evaluation is sensitive to: variable
// access latency from row-buffer locality and bank-level parallelism. All
// timing is expressed in CPU cycles.
package dram

// Config sets the geometry and timing of the memory system.
type Config struct {
	Banks     int    // number of banks (power of two)
	RowBytes  uint32 // bytes covered by one row buffer
	TRCD      int64  // activate -> column command
	TCAS      int64  // column command -> first data
	TRP       int64  // precharge
	TBurst    int64  // data transfer occupancy per access
	QueueWait int64  // fixed controller/queueing overhead per access
}

// DefaultConfig is a DDR3-1600-like part behind a 3.2 GHz core
// (≈2 core cycles per DRAM cycle).
func DefaultConfig() Config {
	return Config{
		Banks:     8,
		RowBytes:  8192,
		TRCD:      22,
		TCAS:      22,
		TRP:       22,
		TBurst:    8,
		QueueWait: 20,
	}
}

type bank struct {
	openRow  int64 // -1 when precharged
	readyAt  int64 // bank busy until this cycle
	accesses int64
	rowHits  int64
}

// DRAM is a deterministic bank/row timing model.
type DRAM struct {
	cfg   Config
	banks []bank

	// Stats.
	Reads, Writes    int64
	RowHits, RowMiss int64
}

// New builds a DRAM with the given configuration.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d
}

// bankAndRow maps a physical address onto a bank and a row. Banks are
// interleaved at row granularity.
func (d *DRAM) bankAndRow(addr uint32) (int, int64) {
	rowGlobal := int64(addr / d.cfg.RowBytes)
	b := int(rowGlobal) & (d.cfg.Banks - 1)
	return b, rowGlobal >> uint(bits(d.cfg.Banks))
}

func bits(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Access issues a read or write at cycle now and returns the cycle at
// which the data transfer completes.
func (d *DRAM) Access(now int64, addr uint32, write bool) int64 {
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	bi, row := d.bankAndRow(addr)
	bk := &d.banks[bi]
	start := now + d.cfg.QueueWait
	if bk.readyAt > start {
		start = bk.readyAt
	}
	var lat int64
	switch {
	case bk.openRow == row:
		lat = d.cfg.TCAS
		d.RowHits++
		bk.rowHits++
	case bk.openRow < 0:
		lat = d.cfg.TRCD + d.cfg.TCAS
		d.RowMiss++
	default:
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		d.RowMiss++
	}
	done := start + lat + d.cfg.TBurst
	bk.openRow = row
	bk.readyAt = done
	bk.accesses++
	return done
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	total := d.RowHits + d.RowMiss
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}
