package dram

import "testing"

func cfg() Config {
	return Config{Banks: 4, RowBytes: 1024, TRCD: 20, TCAS: 20, TRP: 20, TBurst: 8, QueueWait: 10}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(cfg())
	first := d.Access(0, 0x1000, false)      // closed row: TRCD+TCAS
	second := d.Access(first, 0x1004, false) // same row: TCAS only
	lat1 := first - 0
	lat2 := second - first
	if lat2 >= lat1 {
		t.Fatalf("row hit latency %d !< closed-row latency %d", lat2, lat1)
	}
	if d.RowHits != 1 || d.RowMiss != 1 {
		t.Fatalf("row stats %d/%d", d.RowHits, d.RowMiss)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	d := New(cfg())
	// Same bank, different rows: banks interleave per row, so rows
	// 0 and 4 (addr 0 and 4*1024*... ) share bank 0.
	a := d.Access(0, 0, false)
	stride := uint32(4 * 1024) // 4 banks * 1KiB rows → next row in bank 0
	b := d.Access(a, stride, false)
	conflictLat := b - a
	closedLat := a - int64(0)
	if conflictLat <= closedLat {
		t.Fatalf("conflict %d !> closed %d", conflictLat, closedLat)
	}
}

func TestBankParallelism(t *testing.T) {
	d := New(cfg())
	// Two different banks issued at the same cycle should overlap.
	a := d.Access(0, 0, false)
	b := d.Access(0, 1024, false) // next row → next bank
	serial := a + (a - 0)
	if b >= serial {
		t.Fatalf("no bank parallelism: a=%d b=%d", a, b)
	}
}

func TestSameBankSerializes(t *testing.T) {
	d := New(cfg())
	a := d.Access(0, 0, false)
	b := d.Access(0, 4, false) // same row, same bank, same cycle
	if b <= a {
		t.Fatalf("same-bank accesses did not serialize: %d then %d", a, b)
	}
}

func TestStats(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0, false)
	d.Access(100, 0, true)
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("reads %d writes %d", d.Reads, d.Writes)
	}
	if r := d.RowHitRate(); r != 0.5 {
		t.Fatalf("row hit rate %f", r)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		d := New(DefaultConfig())
		var out []int64
		for i := 0; i < 200; i++ {
			addr := uint32(i*3331) % (1 << 20)
			out = append(out, d.Access(int64(i*7), addr, i%3 == 0))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
