package dmdpserver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dmdp/internal/artifact"
	"dmdp/internal/asm"
	"dmdp/internal/cliutil"
	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/emu"
	"dmdp/internal/experiments"
	"dmdp/internal/faults"
	"dmdp/internal/isa"
	"dmdp/internal/sampling"
	"dmdp/internal/sched"
	"dmdp/internal/workload"
)

// jobRequest is the POST /v1/jobs body. Exactly one of Bench / Source
// names the workload.
type jobRequest struct {
	// Bench is a proxy benchmark name (see workload.Names); Source is
	// an inline assembly program simulated in its place.
	Bench  string `json:"bench,omitempty"`
	Source string `json:"source,omitempty"`
	// Model selects the machine: baseline | nosq | dmdp | perfect | fnf
	// (default dmdp).
	Model string `json:"model,omitempty"`
	// Budget is the instruction budget; it takes the -instr forms
	// ("300000", "300_000", "300k") or a plain JSON number. Empty: the
	// daemon default.
	Budget json.RawMessage `json:"budget,omitempty"`
	// Priority orders the queue (higher first); Tenant attributes the
	// job for rate limits and quotas.
	Priority int    `json:"priority,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	// DeadlineMS bounds queue wait + execution; 0 means the daemon's
	// default timeout.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Stream switches the response to NDJSON: accepted + periodic
	// progress events + one terminal done/error event.
	Stream bool `json:"stream,omitempty"`
	// Machine-knob overrides (0 = model default).
	StoreBuffer int `json:"sb,omitempty"`
	IssueWidth  int `json:"width,omitempty"`
	ROB         int `json:"rob,omitempty"`
	// Fault injection (never persisted to the artifact cache).
	FlipRate  float64 `json:"flip_rate,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
	// ChaosPanic makes the job panic inside the worker instead of
	// simulating — the chaos suite's probe that panic isolation keeps
	// the daemon serving. Refused unless the daemon runs with -chaos.
	ChaosPanic bool `json:"chaos_panic,omitempty"`
	// Sample switches the job to checkpointed interval sampling:
	// "auto", "auto:K" or "COUNTxLEN", optionally "+WARMUP" (the -sample
	// CLI forms). Sampled jobs stream the trace — the full budget is
	// never materialized — so 100M+ budgets stay within memory.
	Sample string `json:"sample,omitempty"`
	// Checkpoint persists/restores sampling checkpoints and plans in
	// the daemon's artifact cache (sampled jobs only).
	Checkpoint bool `json:"checkpoint,omitempty"`
	// Warm functionally warms caches/TLB/predictors from the sampled
	// job's profiling pass before each interval (sampled jobs only;
	// forced off under fault injection).
	Warm bool `json:"warm,omitempty"`
}

// statsSummary is the subset of simulation statistics the response
// inlines; DigestLine and StatsSHA256 on jobReply cover every
// deterministic counter.
type statsSummary struct {
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	IPC          float64 `json:"ipc"`
	MPKI         float64 `json:"mpki"`
}

// jobReply is the terminal success document (the whole response body,
// or the "done" event's payload when streaming).
type jobReply struct {
	JobID        uint64       `json:"job_id"`
	Workload     string       `json:"workload"`
	Model        string       `json:"model"`
	ConfigDigest string       `json:"config_digest"`
	Budget       int64        `json:"budget"`
	Deduped      bool         `json:"deduped"`
	QueuedMS     float64      `json:"queued_ms"`
	RunMS        float64      `json:"run_ms"`
	Stats        statsSummary `json:"stats"`
	// StatsSHA256 is the SHA-256 of the canonical stats encoding —
	// equal across daemon, cache and direct CLI runs of the same
	// (workload, config digest, budget) by construction.
	StatsSHA256 string `json:"stats_sha256"`
	DigestLine  string `json:"digest_line"`
}

// jobPlan is a validated request: everything the Run closure needs.
type jobPlan struct {
	workload string // bench name or "inline:<hash8>"
	bench    string // non-empty for the named-proxy path
	source   string // non-empty for the inline path
	model    config.Model
	cfg      config.Config
	budget   int64
	key      string // sched dedup key
	chaos    bool
	// Sampled-job fields (sampled reports Sample/Checkpoint were set).
	sampled    bool
	sample     sampling.Spec
	checkpoint bool
	warm       bool
}

// parseJob validates a request into a plan.
func (s *Server) parseJob(req *jobRequest) (*jobPlan, error) {
	p := &jobPlan{chaos: req.ChaosPanic}
	switch {
	case req.Bench != "" && req.Source != "":
		return nil, fmt.Errorf("bench and source are mutually exclusive")
	case req.Bench != "":
		if _, ok := workload.Get(req.Bench); !ok {
			return nil, fmt.Errorf("unknown benchmark %q", req.Bench)
		}
		p.bench, p.workload = req.Bench, req.Bench
	case req.Source != "":
		h := sha256.Sum256([]byte(req.Source))
		p.source = req.Source
		p.workload = "inline:" + hex.EncodeToString(h[:4])
	default:
		return nil, fmt.Errorf("one of bench or source is required")
	}
	if req.ChaosPanic && !s.cfg.Chaos {
		return nil, fmt.Errorf("chaos_panic requires a daemon started with -chaos")
	}

	model := req.Model
	if model == "" {
		model = "dmdp"
	}
	switch strings.ToLower(model) {
	case "baseline":
		p.model = config.Baseline
	case "nosq":
		p.model = config.NoSQ
	case "dmdp":
		p.model = config.DMDP
	case "perfect":
		p.model = config.Perfect
	case "fnf":
		p.model = config.FnF
	default:
		return nil, fmt.Errorf("unknown model %q (baseline|nosq|dmdp|perfect|fnf)", model)
	}

	budget, err := parseBudget(req.Budget, s.cfg.defaultBudget())
	if err != nil {
		return nil, err
	}
	if budget > s.cfg.maxBudget() {
		return nil, fmt.Errorf("budget %d exceeds the daemon cap %d", budget, s.cfg.maxBudget())
	}
	p.budget = budget

	cfg := config.Default(p.model)
	if req.StoreBuffer > 0 {
		cfg = cfg.WithStoreBuffer(req.StoreBuffer)
	}
	if req.IssueWidth > 0 {
		cfg = cfg.WithIssueWidth(req.IssueWidth)
	}
	if req.ROB > 0 {
		cfg = cfg.WithROB(req.ROB)
	}
	if req.FlipRate != 0 {
		seed := req.FaultSeed
		if seed == 0 {
			seed = 1
		}
		cfg = cfg.WithFaults(faults.Config{Seed: seed, PredictionFlipRate: req.FlipRate})
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p.cfg = cfg

	if req.Sample != "" {
		spec, err := cliutil.ParseSampleSpec(req.Sample)
		if err != nil {
			return nil, fmt.Errorf("sample: %w", err)
		}
		p.sampled, p.sample, p.checkpoint, p.warm = true, spec, req.Checkpoint, req.Warm
	} else if req.Checkpoint {
		return nil, fmt.Errorf("checkpoint requires sample")
	} else if req.Warm {
		return nil, fmt.Errorf("warm requires sample")
	}

	// The dedup key is the run's identity: two jobs with equal keys
	// compute the same bits, so the scheduler shares one execution.
	// Chaos panics are keyed apart — they must not poison (or ride on)
	// a real run of the same machine.
	id := p.bench
	if p.source != "" {
		h := sha256.Sum256([]byte(p.source))
		id = "inline/" + hex.EncodeToString(h[:])
	}
	p.key = fmt.Sprintf("%s/%s/%d", id, cfg.Digest().String(), budget)
	if p.sampled {
		// A sampled run computes different bits from a full run of the
		// same machine (and from a differently-specified sampled run),
		// so the spec and checkpoint mode join the identity.
		// Warming changes the computed bits (intervals start with
		// installed tag state), so it joins the identity too.
		p.key += fmt.Sprintf("/sample:%s/ckpt:%t/warm:%t", p.sample.String(), p.checkpoint, p.warm)
	}
	if p.chaos {
		p.key = "" // never dedup an injected panic
	}
	return p, nil
}

// parseBudget accepts a JSON string in the -instr forms or a plain
// JSON number.
func parseBudget(raw json.RawMessage, def int64) (int64, error) {
	if len(raw) == 0 {
		return def, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		var n int64
		if err := json.Unmarshal(raw, &n); err != nil {
			return 0, fmt.Errorf("bad budget %s", raw)
		}
		s = fmt.Sprint(n)
	}
	n, err := cliutil.ParseInstr(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// run executes a planned job. Named proxies go through the budget's
// experiments runner (trace/result caching, retry policy, negative
// caching of deterministic failures); inline programs are assembled,
// emulated and simulated here, with results persisted to the artifact
// store unless fault injection is on. Sampled jobs stream regardless of
// workload form and return a *sampling.Combined instead of *core.Stats.
func (s *Server) run(ctx context.Context, p *jobPlan) (any, error) {
	if p.chaos {
		panic("chaos: injected job panic (requested via chaos_panic)")
	}
	if p.sampled {
		return s.runSampled(ctx, p)
	}
	if p.bench != "" {
		return s.runner(p.budget).RunCtx(ctx, p.bench, p.cfg, p.model.String())
	}
	return s.runInline(ctx, p)
}

// runSampled executes a checkpointed sampled job on the streaming path:
// the program is assembled, profiled chunk by chunk, and intervals
// re-materialize from checkpoints — the full trace never exists in
// memory, so budgets far beyond the daemon's full-run practicality
// remain serviceable.
func (s *Server) runSampled(ctx context.Context, p *jobPlan) (*sampling.Combined, error) {
	var prog *isa.Program
	var srcHash [sha256.Size]byte
	var err error
	if p.bench != "" {
		spec, _ := workload.Get(p.bench) // validated by parseJob
		srcHash = spec.SourceHash()
		prog, err = spec.Program()
	} else {
		srcHash = sha256.Sum256([]byte(p.source))
		prog, err = asm.Assemble(p.source)
	}
	if err != nil {
		return nil, err
	}
	out, err := sampling.Execute(ctx, p.cfg, sampling.Request{
		Spec: p.sample, Budget: p.budget, Jobs: 1,
		Checkpoint: p.checkpoint, Store: s.cfg.Cache,
		TraceKey: artifact.TraceKey(srcHash, p.budget),
		Prog:     prog, Warm: p.warm,
	})
	if err != nil {
		return nil, err
	}
	return out.Combined, nil
}

// runInline simulates an inline assembly program, using the artifact
// store for trace and result caching (keyed by the source hash, exactly
// like cmd/dmdpsim -file).
func (s *Server) runInline(ctx context.Context, p *jobPlan) (*core.Stats, error) {
	traceKey := artifact.TraceKey(sha256.Sum256([]byte(p.source)), p.budget)
	persistable := !p.cfg.Faults.Enabled()
	var resultKey artifact.Key
	if persistable {
		resultKey = artifact.ResultKey(traceKey, p.cfg.Digest(), p.budget)
		if st, _, hit := s.cfg.Cache.LoadStats(resultKey); hit && !s.cfg.Cache.VerifyEnabled() {
			return st, nil
		}
	}
	tr, hit := s.cfg.Cache.LoadTrace(traceKey)
	if !hit {
		prog, err := asm.Assemble(p.source)
		if err != nil {
			return nil, fmt.Errorf("assemble: %w", err)
		}
		tr, err = emu.RunCtx(ctx, prog, p.budget)
		if err != nil {
			return nil, err
		}
		s.cfg.Cache.StoreTrace(traceKey, tr)
	}
	c, err := core.New(p.cfg, tr)
	if err != nil {
		return nil, err
	}
	if fn := progressFrom(ctx); fn != nil {
		c.SetProgressFn(fn)
	}
	st, err := c.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if persistable {
		s.cfg.Cache.StoreStats(resultKey, st)
	}
	return st, nil
}

// inlineProgressKey lets runInline receive the same per-job tap the
// experiments runner reads via experiments.WithProgress.
type inlineProgressKey struct{}

func withProgress(ctx context.Context, fn experiments.ProgressFn) context.Context {
	return experiments.WithProgress(context.WithValue(ctx, inlineProgressKey{}, fn), fn)
}

func progressFrom(ctx context.Context) experiments.ProgressFn {
	fn, _ := ctx.Value(inlineProgressKey{}).(experiments.ProgressFn)
	return fn
}

// handleJobs is POST /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method", "POST only", 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body", err.Error(), 0)
		return
	}
	var req jobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "json", err.Error(), 0)
		return
	}
	plan, err := s.parseJob(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err.Error(), 0)
		return
	}

	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}

	// Streaming jobs tap simulation progress through a small buffered
	// channel; the handler goroutine owns the response writer. A full
	// channel drops the sample — progress is advisory, results are not.
	var progress chan [2]int64
	if req.Stream {
		progress = make(chan [2]int64, 8)
	}
	run := func(ctx context.Context) (any, error) {
		if progress != nil {
			ctx = withProgress(ctx, func(retired, cycles int64) {
				select {
				case progress <- [2]int64{retired, cycles}:
				default:
				}
			})
		}
		st, err := s.run(ctx, plan)
		if err != nil {
			return nil, err
		}
		return st, nil
	}

	h, err := s.sched.Submit(sched.Job{
		Key: plan.key, Tenant: req.Tenant, Priority: req.Priority,
		Deadline: deadline, Run: run,
	})
	if err != nil {
		if ae, ok := sched.IsShed(err); ok {
			status := http.StatusTooManyRequests
			if ae.Reason == sched.ShedDraining {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, string(ae.Reason), ae.Error(), ae.RetryAfter)
			return
		}
		writeError(w, http.StatusInternalServerError, "submit", err.Error(), 0)
		return
	}

	if req.Stream {
		s.streamResult(w, r, h, plan, progress)
		return
	}
	select {
	case <-h.Done():
	case <-r.Context().Done():
		// The client went away; the job keeps running (its result stays
		// cached for the next request).
		return
	}
	res := h.Result()
	if res.Err != nil {
		status, kind := errStatus(res)
		writeError(w, status, kind, firstLine(res.Err.Error()), 0)
		return
	}
	writeJSON(w, http.StatusOK, s.reply(h, plan, res))
}

// streamResult writes the NDJSON event stream: accepted, progress...,
// then exactly one done or error event.
func (s *Server) streamResult(w http.ResponseWriter, r *http.Request, h *sched.Handle, plan *jobPlan, progress chan [2]int64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		b, _ := json.Marshal(v)
		w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
	type event struct {
		Event   string    `json:"event"`
		JobID   uint64    `json:"job_id,omitempty"`
		Retired int64     `json:"retired,omitempty"`
		Cycles  int64     `json:"cycles,omitempty"`
		Error   string    `json:"error,omitempty"`
		Kind    string    `json:"kind,omitempty"`
		Done    *jobReply `json:"done,omitempty"`
	}
	emit(event{Event: "accepted", JobID: h.ID()})

	// Throttle progress to ~20 events/s: the core samples far more
	// often than a client can usefully render.
	var last time.Time
	for {
		select {
		case p := <-progress:
			if now := time.Now(); now.Sub(last) >= 50*time.Millisecond {
				last = now
				emit(event{Event: "progress", JobID: h.ID(), Retired: p[0], Cycles: p[1]})
			}
		case <-r.Context().Done():
			return // client went away; job continues
		case <-h.Done():
			res := h.Result()
			if res.Err != nil {
				_, kind := errStatus(res)
				emit(event{Event: "error", JobID: h.ID(), Kind: kind, Error: firstLine(res.Err.Error())})
				return
			}
			emit(event{Event: "done", JobID: h.ID(), Done: s.reply(h, plan, res)})
			return
		}
	}
}

// reply builds the terminal success document. Sampled jobs carry a
// *sampling.Combined: the summary holds the weighted estimates and the
// stats hash covers the combined canonical encoding, which is
// byte-identical across daemons, -j widths and checkpoint warm/cold
// runs by construction.
func (s *Server) reply(h *sched.Handle, plan *jobPlan, res sched.Result) *jobReply {
	rep := &jobReply{
		JobID:        h.ID(),
		Workload:     plan.workload,
		Model:        plan.model.String(),
		ConfigDigest: plan.cfg.Digest().String(),
		Budget:       plan.budget,
		Deduped:      res.Deduped,
		QueuedMS:     float64(res.Queued) / float64(time.Millisecond),
		RunMS:        float64(res.Ran) / float64(time.Millisecond),
	}
	switch v := res.Value.(type) {
	case *sampling.Combined:
		enc := v.MarshalCanonical()
		sum := sha256.Sum256(enc)
		rep.Stats = statsSummary{
			Instructions: v.TotalInstructions,
			Cycles:       v.TotalCycles,
			IPC:          v.WeightedIPC,
			MPKI:         v.WeightedMPKI,
		}
		rep.StatsSHA256 = hex.EncodeToString(sum[:])
		rep.DigestLine = fmt.Sprintf("sampled %s intervals=%d ipc=%.6f mpki=%.6f",
			plan.sample.String(), len(v.Results), v.WeightedIPC, v.WeightedMPKI)
	case *core.Stats:
		enc := v.MarshalCanonical()
		sum := sha256.Sum256(enc)
		rep.Stats = statsSummary{
			Instructions: v.Instructions,
			Cycles:       v.Cycles,
			IPC:          v.IPC(),
			MPKI:         v.MPKI(),
		}
		rep.StatsSHA256 = hex.EncodeToString(sum[:])
		rep.DigestLine = v.DigestLine()
	}
	return rep
}

// errStatus maps a job failure to an HTTP status and error kind.
func errStatus(res sched.Result) (int, string) {
	err := res.Err
	switch {
	case res.Panicked:
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, sched.ErrAborted):
		return http.StatusServiceUnavailable, "aborted"
	case experiments.IsCanceled(err):
		return http.StatusGatewayTimeout, "deadline"
	}
	var se *core.SimError
	if errors.As(err, &se) {
		return http.StatusInternalServerError, string(se.Kind)
	}
	return http.StatusInternalServerError, "error"
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
