package dmdpserver

// The chaos suite: the daemon under deliberately hostile load — panics
// injected inside workers, fault-injected simulations, unmeetable
// deadlines, a mid-flight drain, and on-disk cache corruption — with
// three invariants checked throughout:
//
//  1. exactly-once: every submitted request gets exactly one terminal
//     response, and the scheduler's books balance
//     (accepted = completed + failed, nothing still queued or running);
//  2. no wrong bits: every 200 carries the stats SHA a direct in-process
//     runner computes for the same (workload, config digest, budget);
//  3. no collateral damage: the daemon keeps serving after every fault,
//     and no goroutines leak.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/experiments"
)

// chaosOutcome is one request's terminal result.
type chaosOutcome struct {
	status int
	kind   string
	sha    string // stats_sha256 on 200
	key    string // workload/model/budget identity
}

func TestChaosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}
	leak := checkNoGoroutineLeak(t)
	dir := t.TempDir()
	store, err := artifact.Open(dir, artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, QueueDepth: 64, Cache: store, Chaos: true,
		DefaultBudget: testBudget, MaxBudget: 10_000_000})
	ts := httptest.NewServer(s.Handler())

	benches := []string{"hmmer", "bzip2", "gcc", "milc"}
	models := []string{"baseline", "nosq", "dmdp", "perfect"}

	// Phase 1: a mixed concurrent barrage. Deterministic mix by index:
	// every 5th job panics in the worker, every 7th runs with fault
	// injection, every 11th carries a 1ms deadline it cannot meet.
	const n = 60
	outcomes := make([]chaosOutcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := map[string]any{
				"bench":  benches[i%len(benches)],
				"model":  models[(i/len(benches))%len(models)],
				"tenant": []string{"alice", "bob", "carol"}[i%3],
			}
			switch {
			case i%5 == 0:
				req["chaos_panic"] = true
			case i%7 == 0:
				req["flip_rate"] = 0.01
				req["fault_seed"] = i
			case i%11 == 0:
				req["budget"] = "5m"
				req["deadline_ms"] = 1
			}
			status, out := postJobNoFatal(ts.URL, req)
			oc := chaosOutcome{status: status}
			if out != nil {
				oc.kind, _ = out["kind"].(string)
				oc.sha, _ = out["stats_sha256"].(string)
				if status == http.StatusOK {
					oc.key = out["workload"].(string) + "/" + out["model"].(string) +
						"/" + out["config_digest"].(string)
				}
			}
			outcomes[i] = oc
		}(i)
	}
	wg.Wait()

	// Invariant 1a: every request terminated with a classified status.
	panics, deadlines, oks := 0, 0, 0
	byKey := map[string]string{}
	for i, oc := range outcomes {
		switch oc.status {
		case http.StatusOK:
			oks++
			if prev, seen := byKey[oc.key]; seen && prev != oc.sha {
				t.Fatalf("job %d: key %s returned two different stats (%s vs %s)", i, oc.key, prev, oc.sha)
			}
			byKey[oc.key] = oc.sha
		case http.StatusInternalServerError:
			if oc.kind == "panic" {
				panics++
			}
		case http.StatusGatewayTimeout:
			deadlines++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// admission control under burst — legitimate
		default:
			t.Fatalf("job %d: unclassified outcome %+v", i, oc)
		}
	}
	if panics == 0 {
		t.Fatal("no injected panic surfaced as a 500/panic — isolation untested")
	}
	if deadlines == 0 {
		t.Fatal("no unmeetable deadline surfaced as 504 — deadline path untested")
	}
	if oks == 0 {
		t.Fatal("no job succeeded under chaos")
	}

	// Invariant 1b: the scheduler's books balance.
	c := s.sched.Stats()
	if c.Accepted != c.Completed+c.Failed || c.QueueLen != 0 || c.Running != 0 {
		t.Fatalf("accounting: %+v", c)
	}
	if c.Panics == 0 {
		t.Fatalf("scheduler saw no panics: %+v", c)
	}

	// Invariant 2: healthy responses carry the exact bits a direct
	// runner computes (fault-injected runs are keyed by their own
	// config digest and compared only among themselves above).
	direct := experiments.NewRunner(experiments.Options{Budget: testBudget, Parallel: false})
	for _, bench := range benches {
		for mi, m := range []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect} {
			cfg := config.Default(m)
			key := bench + "/" + models[mi] + "/" + cfg.Digest().String()
			sha, seen := byKey[key]
			if !seen {
				continue
			}
			st, err := direct.RunModel(bench, m)
			if err != nil {
				t.Fatalf("direct %s/%s: %v", bench, m, err)
			}
			if want := statsSHA(st.MarshalCanonical()); sha != want {
				t.Fatalf("%s: daemon %s, direct %s — wrong bits under chaos", key, sha, want)
			}
		}
	}

	// Phase 2: drain mid-flight (the SIGTERM path): fire a wave, then
	// drain while it is in the air. Every request must still terminate,
	// with either a result or a shed — never a hang, never a loss.
	const m = 24
	var wg2 sync.WaitGroup
	statuses := make([]int, m)
	for i := 0; i < m; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			status, _ := postJobNoFatal(ts.URL, map[string]any{
				"bench": benches[i%len(benches)], "model": "dmdp",
			})
			statuses[i] = status
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some of the wave take flight
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	wg2.Wait()
	for i, status := range statuses {
		if status != http.StatusOK && status != http.StatusServiceUnavailable {
			t.Fatalf("drain-wave job %d: status %d, want 200 (finished) or 503 (shed)", i, status)
		}
	}
	c = s.sched.Stats()
	if c.Accepted != c.Completed+c.Failed || c.QueueLen != 0 || c.Running != 0 {
		t.Fatalf("post-drain accounting: %+v", c)
	}
	ts.Close()

	// Phase 3: cache corruption. Flip bytes in every persisted result,
	// then serve the same jobs from a fresh daemon on the same cache
	// dir: corrupt entries must read as misses (and be dropped), and
	// re-simulation must reproduce the exact pre-corruption bits.
	entries, err := filepath.Glob(filepath.Join(dir, "*.stats"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no persisted results to corrupt (%v, %d files)", err, len(entries))
	}
	for _, path := range entries {
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] ^= 0xA5
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store2, err := artifact.Open(dir, artifact.RW, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, Cache: store2, DefaultBudget: testBudget})
	ts2 := httptest.NewServer(s2.Handler())
	for _, bench := range benches {
		status, out := postJobNoFatal(ts2.URL, map[string]any{"bench": bench, "model": "dmdp"})
		if status != http.StatusOK {
			t.Fatalf("%s after corruption: status %d (%v)", bench, status, out)
		}
		cfg := config.Default(config.DMDP)
		key := bench + "/dmdp/" + cfg.Digest().String()
		if want, seen := byKey[key]; seen && out["stats_sha256"] != want {
			t.Fatalf("%s: corrupted cache produced wrong bits (%v, want %s)", bench, out["stats_sha256"], want)
		}
	}
	if cc := store2.Counters(); cc.CorruptDropped == 0 {
		t.Fatalf("corrupt entries were not detected: %+v", cc)
	}
	s2.Abort()
	ts2.Close()
	leak()
}
