package dmdpserver

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/sampling"
	"dmdp/internal/workload"
)

// TestSampledJobMatchesDirectExecute: a sampled daemon job computes the
// same bits as sampling.Execute run directly on the streaming path.
func TestSampledJobMatchesDirectExecute(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, out := postJob(t, ts.URL, map[string]any{
		"bench": "gcc", "model": "dmdp", "sample": "4x2k+500",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if dl, _ := out["digest_line"].(string); !strings.Contains(dl, "sampled 4x2000+500") {
		t.Fatalf("digest line %q does not identify the sampled run", out["digest_line"])
	}

	spec, _ := workload.Get("gcc")
	prog, err := spec.Program()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sampling.Execute(context.Background(), config.Default(config.DMDP), sampling.Request{
		Spec:   sampling.Spec{Count: 4, Len: 2000, Warmup: 500},
		Budget: testBudget, Jobs: 1,
		TraceKey: artifact.TraceKey(spec.SourceHash(), testBudget),
		Prog:     prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := statsSHA(direct.Combined.MarshalCanonical()); out["stats_sha256"] != want {
		t.Fatalf("daemon sampled sha %v, direct %v — results diverge", out["stats_sha256"], want)
	}

	// Same job again: identical bits, and the dedup key kept it apart
	// from any full run of the same machine (different digest_line).
	code2, out2 := postJob(t, ts.URL, map[string]any{
		"bench": "gcc", "model": "dmdp", "sample": "4x2k+500",
	})
	if code2 != http.StatusOK || out2["stats_sha256"] != out["stats_sha256"] {
		t.Fatalf("resubmission diverged: %d %v vs %v", code2, out2["stats_sha256"], out["stats_sha256"])
	}
}

// TestSampledJobValidation: bad specs and checkpoint-without-sample are
// rejected up front, not at run time.
func TestSampledJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []map[string]any{
		{"bench": "gcc", "sample": "nonsense"},
		{"bench": "gcc", "sample": "0x100"},
		{"bench": "gcc", "checkpoint": true},
		{"bench": "gcc", "warm": true},
	} {
		if code, out := postJob(t, ts.URL, body); code != http.StatusBadRequest {
			t.Fatalf("body %v: status %d (%v), want 400", body, code, out)
		}
	}
}

// TestSampledWarmJob: a warmed sampled job computes the same bits as a
// direct warmed Execute, and is keyed apart from the unwarmed job.
func TestSampledWarmJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, out := postJob(t, ts.URL, map[string]any{
		"bench": "gcc", "model": "dmdp", "sample": "4x2k+500", "warm": true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}

	spec, _ := workload.Get("gcc")
	prog, err := spec.Program()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sampling.Execute(context.Background(), config.Default(config.DMDP), sampling.Request{
		Spec:   sampling.Spec{Count: 4, Len: 2000, Warmup: 500},
		Budget: testBudget, Jobs: 1, Warm: true,
		TraceKey: artifact.TraceKey(spec.SourceHash(), testBudget),
		Prog:     prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := statsSHA(direct.Combined.MarshalCanonical()); out["stats_sha256"] != want {
		t.Fatalf("daemon warmed sha %v, direct %v — results diverge", out["stats_sha256"], want)
	}

	// The unwarmed job must not be served from the warmed job's dedup
	// slot (warming changes the computed bits).
	code2, out2 := postJob(t, ts.URL, map[string]any{
		"bench": "gcc", "model": "dmdp", "sample": "4x2k+500",
	})
	if code2 != http.StatusOK {
		t.Fatalf("status %d: %v", code2, out2)
	}
	if out2["stats_sha256"] == out["stats_sha256"] {
		t.Fatal("warmed and unwarmed sampled jobs returned identical bits")
	}
}

// TestSampledInlineJob: the inline-source path streams and samples too.
func TestSampledInlineJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, out := postJob(t, ts.URL, map[string]any{
		"source": inlineProgram, "model": "baseline", "budget": "30k", "sample": "3x1k",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	st, _ := out["stats"].(map[string]any)
	if st == nil || st["instructions"].(float64) != 3000 {
		t.Fatalf("sampled inline stats: %v", out)
	}
}
