package dmdpserver

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"dmdp/internal/config"
	"dmdp/internal/experiments"
	"dmdp/internal/sched"
)

const testBudget = 50_000

// inlineProgram is a tiny store/load kernel for the inline-source path.
const inlineProgram = "\t.text\n" +
	"main:\n" +
	"\tli $t0, 100000000\n" +
	"\tli $t1, 0\n" +
	"loop:\n" +
	"\tsw $t1, 0($zero)\n" +
	"\tlw $t2, 0($zero)\n" +
	"\taddi $t1, $t1, 1\n" +
	"\taddi $t0, $t0, -1\n" +
	"\tbnez $t0, loop\n" +
	"\thalt\n"

// checkNoGoroutineLeak snapshots the goroutine count and asserts (with
// retries, since exits are asynchronous) that it returns to baseline —
// a goleak-style gate without the dependency.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// newTestServer starts a Server plus an httptest front end and
// registers ordered cleanup: scheduler shutdown, HTTP close, then the
// goroutine-leak gate (t.Cleanup runs after every test defer).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	leak := checkNoGoroutineLeak(t)
	if cfg.DefaultBudget == 0 {
		cfg.DefaultBudget = testBudget
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Abort()
		ts.Close()
		leak()
	})
	return s, ts
}

// postJob submits a job and decodes the response.
func postJob(t *testing.T, url string, body map[string]any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode (%d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// directSHA computes the stats SHA the daemon must reproduce, through
// the same runner machinery but with no daemon in the way.
func directSHA(t *testing.T, bench string, m config.Model, budget int64) string {
	t.Helper()
	r := experiments.NewRunner(experiments.Options{Budget: budget, Parallel: false})
	st, err := r.RunModel(bench, m)
	if err != nil {
		t.Fatal(err)
	}
	return statsSHA(st.MarshalCanonical())
}

func statsSHA(enc []byte) string {
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

func TestJobEndToEndMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, out := postJob(t, ts.URL, map[string]any{"bench": "hmmer", "model": "dmdp"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	want := directSHA(t, "hmmer", config.DMDP, testBudget)
	if got := out["stats_sha256"]; got != want {
		t.Fatalf("daemon stats sha %v, direct run %v — results diverge", got, want)
	}
	if out["workload"] != "hmmer" || out["model"] != "dmdp" {
		t.Fatalf("reply identity: %v", out)
	}
	if dl, _ := out["digest_line"].(string); !strings.Contains(dl, "inst=") {
		t.Fatalf("digest line missing: %v", out["digest_line"])
	}
}

func TestInlineSourceJob(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	code, out := postJob(t, ts.URL, map[string]any{"source": inlineProgram, "model": "baseline", "budget": "20k"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	st, _ := out["stats"].(map[string]any)
	if st == nil || st["instructions"].(float64) < 19_000 {
		t.Fatalf("inline run stats: %v", out)
	}
	if w, _ := out["workload"].(string); !strings.HasPrefix(w, "inline:") {
		t.Fatalf("workload label %q", w)
	}
	// Identical resubmission returns identical bits.
	code2, out2 := postJob(t, ts.URL, map[string]any{"source": inlineProgram, "model": "baseline", "budget": "20k"})
	if code2 != http.StatusOK || out2["stats_sha256"] != out["stats_sha256"] {
		t.Fatalf("resubmission diverged: %d %v vs %v", code2, out2["stats_sha256"], out["stats_sha256"])
	}
	_ = srv
}

func TestConcurrentIdenticalJobsSimulateOnce(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4})

	const n = 8
	shas := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			code, out := postJobNoFatal(ts.URL, map[string]any{"bench": "bzip2", "model": "nosq"})
			if code != http.StatusOK {
				shas <- fmt.Sprintf("status %d", code)
				return
			}
			shas <- out["stats_sha256"].(string)
		}()
	}
	first := <-shas
	for i := 1; i < n; i++ {
		if got := <-shas; got != first {
			t.Fatalf("response %d diverged: %q vs %q", i, got, first)
		}
	}
	// The scheduler's key dedup plus the runner's result cache mean the
	// core executed exactly once regardless of arrival order.
	if sims := srv.Sims(); sims != 1 {
		t.Fatalf("%d core executions for %d identical jobs, want 1", sims, n)
	}
}

// postJobNoFatal is postJob for goroutines (no *testing.T calls off the
// test goroutine).
func postJobNoFatal(url string, body map[string]any) (int, map[string]any) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestRateLimitSheds429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TenantRate: 0.001, TenantBurst: 1})

	if code, out := postJob(t, ts.URL, map[string]any{"bench": "hmmer", "tenant": "alice"}); code != http.StatusOK {
		t.Fatalf("first job: %d %v", code, out)
	}
	b, _ := json.Marshal(map[string]any{"bench": "gcc", "tenant": "alice"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant is unaffected.
	if code, out := postJob(t, ts.URL, map[string]any{"bench": "hmmer", "tenant": "bob"}); code != http.StatusOK {
		t.Fatalf("other tenant: %d %v", code, out)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Occupy the only worker and fill the one queue slot with blocking
	// jobs submitted straight to the scheduler.
	block := make(chan struct{})
	running := make(chan struct{})
	h1, err := srv.sched.Submit(sched.Job{Run: func(ctx context.Context) (any, error) {
		close(running)
		<-block
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	h2, err := srv.sched.Submit(sched.Job{Run: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}

	code, out := postJob(t, ts.URL, map[string]any{"bench": "hmmer"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%v), want 429", code, out)
	}
	if out["kind"] != string(sched.ShedQueueFull) {
		t.Fatalf("kind %v, want %v", out["kind"], sched.ShedQueueFull)
	}
	close(block)
	h1.Result()
	h2.Result()
}

func TestDrainGraceful(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	// A job is mid-flight when the drain starts.
	block := make(chan struct{})
	running := make(chan struct{})
	h, err := srv.sched.Submit(sched.Job{Run: func(ctx context.Context) (any, error) {
		close(running)
		<-block
		return "finished", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-running

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitUntil(t, func() bool { return srv.Draining() })

	// Readiness flips; new jobs shed with 503.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d during drain, want 503", resp.StatusCode)
	}
	if code, out := postJob(t, ts.URL, map[string]any{"bench": "hmmer"}); code != http.StatusServiceUnavailable {
		t.Fatalf("job during drain: %d %v, want 503", code, out)
	}
	// Liveness holds throughout.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// The in-flight job completes and the drain finishes cleanly.
	close(block)
	if res := h.Result(); res.Err != nil || res.Value != "finished" {
		t.Fatalf("in-flight job lost to drain: %+v", res)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestJobDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DefaultBudget: 5_000_000, MaxBudget: 10_000_000})

	code, out := postJob(t, ts.URL, map[string]any{
		"bench": "gcc", "budget": "5m", "deadline_ms": 1,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", code, out)
	}
	if out["kind"] != "deadline" {
		t.Fatalf("kind %v, want deadline", out["kind"])
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	for name, body := range map[string]map[string]any{
		"no workload":    {"model": "dmdp"},
		"both workloads": {"bench": "hmmer", "source": "x"},
		"bad bench":      {"bench": "nonesuch"},
		"bad model":      {"bench": "hmmer", "model": "quantum"},
		"bad budget":     {"bench": "hmmer", "budget": "-3"},
		"over budget":    {"bench": "hmmer", "budget": "900m"},
		"chaos disabled": {"bench": "hmmer", "chaos_panic": true},
	} {
		code, out := postJob(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", name, code, out)
		}
	}
}

func TestStatzAndStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Streamed job: accepted first, exactly one terminal event.
	b, _ := json.Marshal(map[string]any{"bench": "hmmer", "model": "perfect", "stream": true})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 2 || events[0]["event"] != "accepted" {
		t.Fatalf("stream events: %v", events)
	}
	terminal := 0
	for _, ev := range events {
		switch ev["event"] {
		case "done", "error":
			terminal++
		}
	}
	last := events[len(events)-1]
	if terminal != 1 || last["event"] != "done" {
		t.Fatalf("want exactly one terminal done event at the end, got %v", events)
	}
	done := last["done"].(map[string]any)
	if done["stats_sha256"] == "" {
		t.Fatalf("done event without stats sha: %v", done)
	}

	// /statz reflects the completed job.
	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statz statzReply
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Sched.Completed < 1 || statz.Sims < 1 {
		t.Fatalf("statz after a job: %+v", statz)
	}
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
