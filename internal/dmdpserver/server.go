// Package dmdpserver implements the simulation-as-a-service daemon
// behind cmd/dmdpd: an HTTP front end over the reusable scheduling core
// (internal/sched) and the experiments runner. Jobs — a named proxy
// benchmark or an inline assembly program, a machine model, an
// instruction budget — are admitted through per-tenant rate limits and
// a bounded priority queue, executed with per-job deadlines and panic
// isolation, deduplicated in flight, and served from the shared
// artifact cache. The daemon drains gracefully on SIGTERM: it stops
// accepting (503 on /readyz and /v1/jobs), finishes in-flight jobs,
// and exits 0.
//
// Determinism contract: a job's stats are byte-identical to a direct
// cmd/experiments or cmd/dmdpsim run of the same (workload, config
// digest, budget) — the response carries the SHA-256 of the canonical
// stats encoding so clients (cmd/dmdpload -verify, the chaos suite)
// can prove it.
package dmdpserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dmdp/internal/artifact"
	"dmdp/internal/experiments"
	"dmdp/internal/sched"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers is the number of concurrently executing simulations
	// (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue; a full queue sheds with
	// 429 + Retry-After (<= 0: 256).
	QueueDepth int
	// TenantRate / TenantBurst / TenantMaxActive are the per-tenant
	// admission limits (0: unlimited; see sched.Config).
	TenantRate      float64
	TenantBurst     int
	TenantMaxActive int
	// DefaultTimeout bounds jobs that do not carry a deadline_ms of
	// their own (0: unbounded).
	DefaultTimeout time.Duration
	// DefaultBudget is the instruction budget for jobs that omit one
	// (<= 0: 300_000). MaxBudget caps what a job may request
	// (<= 0: 100_000_000).
	DefaultBudget int64
	MaxBudget     int64
	// Cache is the shared persistent artifact store (nil: in-memory
	// caching only).
	Cache *artifact.Store
	// Chaos enables fault-oriented job options (chaos_panic). Off by
	// default: a production daemon refuses chaos requests with 400.
	Chaos bool
}

func (c Config) defaultBudget() int64 {
	if c.DefaultBudget > 0 {
		return c.DefaultBudget
	}
	return 300_000
}

func (c Config) maxBudget() int64 {
	if c.MaxBudget > 0 {
		return c.MaxBudget
	}
	return 100_000_000
}

// Server is the daemon state: the scheduler, and one experiments
// runner per instruction budget (the runner's result cache is keyed
// per budget; runners share the artifact store underneath).
type Server struct {
	cfg   Config
	sched *sched.Scheduler
	start time.Time

	mu      sync.Mutex
	runners map[int64]*experiments.Runner
}

// New builds a Server (start its HTTP front end with Handler).
func New(cfg Config) *Server {
	return &Server{
		cfg: cfg,
		sched: sched.New(sched.Config{
			Workers:         cfg.Workers,
			QueueDepth:      cfg.QueueDepth,
			TenantRate:      cfg.TenantRate,
			TenantBurst:     cfg.TenantBurst,
			TenantMaxActive: cfg.TenantMaxActive,
			DefaultTimeout:  cfg.DefaultTimeout,
		}),
		start:   time.Now(),
		runners: make(map[int64]*experiments.Runner),
	}
}

// runner returns the experiments runner for one instruction budget,
// creating it on first use. Runners run jobs on the caller's goroutine
// (Parallel off): concurrency is the scheduler's worker pool, and the
// runner contributes trace/result caching and in-flight dedup.
func (s *Server) runner(budget int64) *experiments.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runners[budget]
	if !ok {
		r = experiments.NewRunner(experiments.Options{
			Budget: budget, Parallel: false, Cache: s.cfg.Cache,
		})
		s.runners[budget] = r
	}
	return r
}

// Sims returns the total number of actual core executions across all
// budgets (cache hits and deduped jobs excluded).
func (s *Server) Sims() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, r := range s.runners {
		n += r.Sims()
	}
	return n
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// Drain gracefully shuts the scheduler down: new submissions shed with
// 503, queued and running jobs finish (bounded by ctx — an expired
// drain cancels what remains and still resolves every handle). The
// HTTP listener itself is the caller's to close (http.Server.Shutdown
// after Drain returns).
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Abort shuts down immediately (tests; the SIGTERM path uses Drain).
func (s *Server) Abort() { s.sched.Abort() }

// Draining reports whether the daemon has begun shutting down.
func (s *Server) Draining() bool { return s.sched.Draining() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.sched.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// statzReply is the /statz JSON document.
type statzReply struct {
	Sched    sched.Counters    `json:"sched"`
	Cache    artifact.Counters `json:"cache"`
	Cached   bool              `json:"cache_enabled"`
	Sims     int64             `json:"sims"`
	UptimeS  float64           `json:"uptime_s"`
	Chaos    bool              `json:"chaos"`
	Draining bool              `json:"draining"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	reply := statzReply{
		Sched:    s.sched.Stats(),
		Sims:     s.Sims(),
		UptimeS:  time.Since(s.start).Seconds(),
		Chaos:    s.cfg.Chaos,
		Draining: s.sched.Draining(),
	}
	if s.cfg.Cache != nil {
		reply.Cache = s.cfg.Cache.Counters()
		reply.Cached = true
	}
	writeJSON(w, http.StatusOK, reply)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorReply is the JSON error document every non-2xx response carries.
type errorReply struct {
	Error      string `json:"error"`
	Kind       string `json:"kind,omitempty"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

func writeError(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	reply := errorReply{Error: msg, Kind: kind}
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		reply.RetryAfter = secs
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	writeJSON(w, status, reply)
}
