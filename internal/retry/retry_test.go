package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelayCap: the pre-jitter schedule grows exponentially and clamps
// at MaxDelay, never overflowing past the cap for large attempt counts.
func TestDelayCap(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Attempt numbers far past the cap stay at the cap (no overflow).
	if got := p.Delay(500); got != 80*time.Millisecond {
		t.Errorf("Delay(500) = %v, want 80ms", got)
	}
}

// TestJitterBounds: every jittered delay lies in [d*(1-Jitter), d], and
// a seeded policy draws the same sequence twice.
func TestJitterBounds(t *testing.T) {
	for _, jitter := range []float64{0, 0.25, 0.5, 1} {
		p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 200 * time.Millisecond, Multiplier: 2, Jitter: jitter, Seed: 42}
		var first []time.Duration
		for trial := 0; trial < 2; trial++ {
			var got []time.Duration
			p2 := p
			p2.Sleep = func(_ context.Context, d time.Duration) error {
				got = append(got, d)
				return nil
			}
			fail := errors.New("x")
			p2.Do(context.Background(), func(int) error { return fail })
			if len(got) != p.MaxAttempts-1 {
				t.Fatalf("jitter %v: slept %d times, want %d", jitter, len(got), p.MaxAttempts-1)
			}
			for i, d := range got {
				upper := p.Delay(i + 1)
				lower := time.Duration(float64(upper) * (1 - jitter))
				if d < lower || d > upper {
					t.Errorf("jitter %v: sleep %d = %v outside [%v, %v]", jitter, i+1, d, lower, upper)
				}
			}
			if trial == 0 {
				first = got
			} else {
				for i := range got {
					if got[i] != first[i] {
						t.Errorf("jitter %v: seeded sequence not deterministic at %d: %v vs %v", jitter, i, got[i], first[i])
					}
				}
			}
		}
	}
}

// TestDoSucceedsAfterTransient: a failure that clears on a later attempt
// returns nil and consumed exactly the failing attempts.
func TestDoSucceedsAfterTransient(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Nanosecond}
	calls := 0
	err := p.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

// TestDoExhausted: the final attempt's error is returned verbatim.
func TestDoExhausted(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	last := errors.New("still broken")
	calls := 0
	if err := p.Do(context.Background(), func(int) error { calls++; return last }); !errors.Is(err, last) {
		t.Fatalf("err=%v, want %v", err, last)
	}
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
}

// TestPermanentStopsImmediately: a Permanent error short-circuits the
// remaining attempts and is still errors.Is-able to its cause.
func TestPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	cause := errors.New("bad input")
	calls := 0
	err := p.Do(context.Background(), func(int) error { calls++; return Permanent(cause) })
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if !errors.Is(err, cause) || !IsPermanent(err) {
		t.Fatalf("err=%v: want permanent wrapping %v", err, cause)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}

// TestCancellationDuringSleep: cancelling the context while Do sleeps
// aborts with the context error (wrapped so errors.Is sees it).
func TestCancellationDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // would sleep forever
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(int) error { calls++; return errors.New("transient") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
}

// TestCancelledBeforeStart: an already-cancelled context runs nothing.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{MaxAttempts: 3}.Do(ctx, func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d, want Canceled/0", err, calls)
	}
}

// TestZeroPolicy: the zero value is a plain single attempt.
func TestZeroPolicy(t *testing.T) {
	calls := 0
	if err := (Policy{}).Do(nil, func(int) error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want nil/1", err, calls)
	}
}
