// Package retry implements capped exponential backoff with jitter for
// transient failures. It is the one retry policy shared by the batch
// experiment runner (which used to hand-roll a retry-once path) and the
// dmdpd scheduling core: context-aware (a cancelled context aborts both
// the sleep and the remaining attempts), deterministic when seeded (the
// jitter PRNG is explicit, so tests and reproductions see the same delay
// sequence), and explicit about permanent failures (a Permanent-wrapped
// error stops the loop immediately).
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes one backoff schedule. The zero value retries nothing
// (one attempt, no delay); DefaultPolicy is the shared transient-failure
// schedule.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (values < 1 behave as 1).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure. Zero
	// means no sleeping between attempts.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter exponential growth (0 = no cap).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (values <= 1 behave
	// as 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the slept delay is uniform in [d*(1-Jitter), d]. Full
	// jitter (1) decorrelates retry storms; 0 sleeps exactly d.
	Jitter float64
	// Seed initializes the jitter PRNG (0 seeds from 1, so the zero
	// policy is still deterministic).
	Seed int64
	// Sleep, when set, replaces the context-aware timer sleep (tests).
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy is the shared schedule for transient simulation and IO
// failures: 3 attempts, 10ms base, 2x growth capped at 250ms, full
// jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 250 * time.Millisecond, Multiplier: 2, Jitter: 1}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns it (unwrapped
// errors.Is/As still see the cause). A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// attempts returns the effective attempt budget.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the pre-jitter backoff before attempt (1-based: Delay(1)
// is slept after the first failure). It is the deterministic upper bound
// of the jittered sleep, exported so tests can assert the cap.
func (p Policy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	maxD := float64(p.MaxDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if maxD > 0 && d >= maxD {
			d = maxD
			break
		}
	}
	if maxD > 0 && d > maxD {
		d = maxD
	}
	return time.Duration(d)
}

// jittered draws the slept delay for attempt from rng: uniform in
// [d*(1-Jitter), d].
func (p Policy) jittered(rng *rand.Rand, attempt int) time.Duration {
	d := p.Delay(attempt)
	if d <= 0 || p.Jitter <= 0 {
		return d
	}
	j := p.Jitter
	if j > 1 {
		j = 1
	}
	lo := float64(d) * (1 - j)
	return time.Duration(lo + rng.Float64()*(float64(d)-lo))
}

// sleep waits for d or until ctx is cancelled, whichever comes first.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs f up to MaxAttempts times (attempt is 1-based), sleeping the
// jittered backoff between failures. It returns nil on the first
// success, f's error once attempts are exhausted, a Permanent error
// immediately, and the context's error if ctx is cancelled before or
// between attempts. ctx may be nil (never cancelled).
func (p Policy) Do(ctx context.Context, f func(attempt int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := p.attempts()
	var err error
	for attempt := 1; attempt <= n; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("%w (after %d attempts: %v)", cerr, attempt-1, err)
			}
			return cerr
		}
		err = f(attempt)
		if err == nil {
			return nil
		}
		if IsPermanent(err) || attempt == n {
			return err
		}
		if serr := p.sleep(ctx, p.jittered(rng, attempt)); serr != nil {
			return fmt.Errorf("%w (after %d attempts: %v)", serr, attempt, err)
		}
	}
	return err
}
