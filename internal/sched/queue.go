package sched

import "container/heap"

// jobQueue is a bounded max-priority queue of pending jobs. Higher
// Priority pops first; within a priority, admission order (seq) breaks
// ties, so equal-priority scheduling is FIFO and deterministic. The
// bound is enforced by the Scheduler (admission control), not here.
type jobQueue struct {
	items []*job
}

func (q *jobQueue) Len() int { return len(q.items) }

func (q *jobQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func (q *jobQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].heapIdx = i
	q.items[j].heapIdx = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(q.items)
	q.items = append(q.items, j)
}

func (q *jobQueue) Pop() any {
	old := q.items
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	q.items = old[:n-1]
	return j
}

func (q *jobQueue) push(j *job) { heap.Push(q, j) }

func (q *jobQueue) pop() *job {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(q).(*job)
}
