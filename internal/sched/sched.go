package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Config sizes a Scheduler. The zero value gets sensible defaults
// (GOMAXPROCS workers, 256-deep queue, no rate limits).
type Config struct {
	// Workers is the number of concurrently executing jobs (<= 0 means
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue; a full queue sheds new
	// submissions with ErrQueueFull (<= 0 means 256).
	QueueDepth int
	// TenantRate is each tenant's sustained admission rate in jobs per
	// second (0 = unlimited); TenantBurst is the bucket capacity
	// (<= 0 means 16 when rate limiting is on).
	TenantRate  float64
	TenantBurst int
	// TenantMaxActive caps one tenant's queued + running jobs
	// (0 = unlimited). Exceeding it sheds with ErrTenantQuota.
	TenantMaxActive int
	// DefaultTimeout bounds jobs that carry no deadline of their own
	// (0 = unbounded).
	DefaultTimeout time.Duration
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) depth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 256
}

// Shed reasons: why admission control rejected a submission.
const (
	ShedQueueFull   = "queue-full"
	ShedRateLimited = "rate-limited"
	ShedTenantQuota = "tenant-quota"
	ShedDraining    = "draining"
)

// AdmissionError reports a rejected submission. Reason is one of the
// Shed constants; RetryAfter, when non-zero, is the server's hint for
// when capacity should be back (an HTTP transport maps this to
// 429 + Retry-After, or 503 for ShedDraining).
type AdmissionError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("sched: rejected (%s), retry after %s", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("sched: rejected (%s)", e.Reason)
}

// IsShed reports whether err is an admission rejection, returning it.
func IsShed(err error) (*AdmissionError, bool) {
	var ae *AdmissionError
	ok := errors.As(err, &ae)
	return ae, ok
}

// ErrAborted resolves jobs cut off by an expired drain: the job was
// accepted but the service shut down before (or while) it ran. It is a
// final result — the job is reported, not lost.
var ErrAborted = errors.New("sched: job aborted by shutdown")

// Job is one unit of work submitted to a Scheduler.
type Job struct {
	// Key dedups in-flight work: while a job with the same non-empty
	// Key is queued or running, later submissions attach to it and share
	// its result instead of executing again.
	Key string
	// Tenant attributes the job for rate limits and quotas ("" is a
	// tenant like any other).
	Tenant string
	// Priority orders the queue (higher pops first; FIFO within a
	// priority).
	Priority int
	// Deadline, when non-zero, bounds queue wait + execution: the job's
	// context is cancelled at Deadline, and a job still queued past it
	// fails without running.
	Deadline time.Time
	// Run executes the job. It must honor ctx for deadlines and drain
	// aborts to be prompt. Panics are isolated and surface as errors.
	Run func(ctx context.Context) (any, error)
}

// Result is one job's final outcome. Exactly one Result is delivered
// per accepted Handle.
type Result struct {
	Value    any
	Err      error
	Panicked bool          // Run panicked; Err carries the trimmed stack
	Deduped  bool          // resolved by attaching to an identical in-flight job
	Queued   time.Duration // admission -> start (0 when never started)
	Ran      time.Duration // start -> resolution
}

// Handle tracks one accepted job.
type Handle struct {
	id   uint64
	done chan struct{}
	res  Result
}

// ID returns the scheduler-unique job id.
func (h *Handle) ID() uint64 { return h.id }

// Done is closed when the result is available.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result blocks until the job resolves.
func (h *Handle) Result() Result {
	<-h.done
	return h.res
}

// job is the scheduler's internal job record.
type job struct {
	Job
	seq        uint64
	heapIdx    int
	enqueuedAt time.Time
	handle     *Handle
	waiters    []*Handle          // deduped handles sharing this result
	cancel     context.CancelFunc // set while running
}

// Counters is a snapshot of scheduler activity (see Stats).
type Counters struct {
	Accepted  int64 // submissions admitted to the queue
	Deduped   int64 // submissions attached to an in-flight job
	Completed int64 // accepted jobs resolved without error
	Failed    int64 // accepted jobs resolved with an error
	Panics    int64 // failed jobs whose Run panicked
	Expired   int64 // failed jobs whose deadline passed while queued
	Aborted   int64 // failed jobs cut off by an expired drain

	ShedQueueFull   int64
	ShedRateLimited int64
	ShedTenantQuota int64
	ShedDraining    int64

	QueueLen int // gauge: currently queued
	Running  int // gauge: currently executing
	Draining bool
}

// Scheduler is the service core: admission control in Submit, a bounded
// priority queue, a fixed worker pool, and exactly-once resolution of
// every accepted Handle — through completion, failure, panic, deadline
// expiry or drain abort.
type Scheduler struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond // wakes workers on queue push / stop
	queue       jobQueue
	keyed       map[string]*job // in-flight (queued or running) job per dedup key
	tenants     map[string]*bucket
	running     map[*job]struct{}
	seq         uint64
	nextID      uint64
	outstanding int           // accepted but unresolved jobs
	draining    bool          // no new admissions
	stopping    bool          // workers exit when the queue is empty
	drained     chan struct{} // closed when draining && outstanding == 0
	execEWMA    time.Duration // smoothed job execution time (Retry-After hint)

	c Counters

	wg sync.WaitGroup
}

// New starts a scheduler with cfg.workers() worker goroutines. Callers
// must end it with Drain (graceful) or Abort (immediate).
func New(cfg Config) *Scheduler {
	s := &Scheduler{
		cfg:     cfg,
		keyed:   make(map[string]*job),
		tenants: make(map[string]*bucket),
		running: make(map[*job]struct{}),
		drained: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit admits, dedups or sheds a job. On admission the returned
// Handle resolves exactly once; on rejection the error is an
// *AdmissionError (or a validation error for a nil Run).
func (s *Scheduler) Submit(j Job) (*Handle, error) {
	if j.Run == nil {
		return nil, errors.New("sched: job has no Run function")
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.c.ShedDraining++
		return nil, &AdmissionError{Reason: ShedDraining}
	}
	if j.Key != "" {
		if p, ok := s.keyed[j.Key]; ok {
			h := s.newHandleLocked()
			p.waiters = append(p.waiters, h)
			s.c.Deduped++
			return h, nil
		}
	}
	b := s.tenants[j.Tenant]
	if b == nil {
		b = &bucket{}
		s.tenants[j.Tenant] = b
	}
	if s.cfg.TenantMaxActive > 0 && b.active >= s.cfg.TenantMaxActive {
		s.c.ShedTenantQuota++
		return nil, &AdmissionError{Reason: ShedTenantQuota, RetryAfter: s.backlogHintLocked()}
	}
	burst := s.cfg.TenantBurst
	if burst <= 0 {
		burst = 16
	}
	if !b.take(now, s.cfg.TenantRate, burst) {
		s.c.ShedRateLimited++
		return nil, &AdmissionError{Reason: ShedRateLimited, RetryAfter: b.retryAfter(s.cfg.TenantRate)}
	}
	if s.queue.Len() >= s.cfg.depth() {
		s.c.ShedQueueFull++
		return nil, &AdmissionError{Reason: ShedQueueFull, RetryAfter: s.backlogHintLocked()}
	}

	s.seq++
	jb := &job{Job: j, seq: s.seq, enqueuedAt: now, handle: s.newHandleLocked()}
	b.active++
	s.outstanding++
	s.c.Accepted++
	s.queue.push(jb)
	if j.Key != "" {
		s.keyed[j.Key] = jb
	}
	s.cond.Signal()
	return jb.handle, nil
}

// newHandleLocked allocates a handle with the next job id.
func (s *Scheduler) newHandleLocked() *Handle {
	s.nextID++
	return &Handle{id: s.nextID, done: make(chan struct{})}
}

// backlogHintLocked estimates how long until queue capacity frees up:
// the backlog drained at the observed per-job execution time across the
// worker pool, clamped to [1s, 60s].
func (s *Scheduler) backlogHintLocked() time.Duration {
	per := s.execEWMA
	if per <= 0 {
		per = 100 * time.Millisecond
	}
	d := time.Duration(float64(per) * float64(s.queue.Len()+len(s.running)) / float64(s.cfg.workers()))
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// worker pops and executes jobs until stopped.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		jb := s.queue.pop()
		s.running[jb] = struct{}{}
		s.mu.Unlock()
		s.execute(jb)
	}
}

// execute runs one popped job with panic isolation and deadline wiring,
// then resolves its handles.
func (s *Scheduler) execute(jb *job) {
	start := time.Now()
	ctx := context.Background()
	var cancel context.CancelFunc
	switch {
	case !jb.Deadline.IsZero():
		ctx, cancel = context.WithDeadline(ctx, jb.Deadline)
	case s.cfg.DefaultTimeout > 0:
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
	default:
		ctx, cancel = context.WithCancel(ctx)
	}
	s.mu.Lock()
	jb.cancel = cancel
	aborting := s.draining && s.drainAborted()
	s.mu.Unlock()

	res := Result{Queued: start.Sub(jb.enqueuedAt)}
	switch {
	case aborting:
		res.Err = ErrAborted
	case ctx.Err() != nil:
		// The deadline passed while the job sat in the queue: it is
		// reported (exactly once) without consuming a worker slot.
		res.Err = fmt.Errorf("sched: deadline passed after %s in queue: %w", res.Queued.Round(time.Millisecond), ctx.Err())
		s.mu.Lock()
		s.c.Expired++
		s.mu.Unlock()
	default:
		res.Value, res.Err, res.Panicked = runIsolated(ctx, jb.Run)
	}
	cancel()
	res.Ran = time.Since(start)
	s.resolve(jb, res)
}

// runIsolated invokes run, converting a panic into an error so one bad
// job cannot take down a worker (or the daemon).
func runIsolated(ctx context.Context, run func(context.Context) (any, error)) (v any, err error, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			v = nil
			err = fmt.Errorf("sched: job panic: %v\n%s", rec, trimStack(debug.Stack()))
			panicked = true
		}
	}()
	v, err = run(ctx)
	return v, err, false
}

// trimStack keeps the top frames of a panic stack.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimSpace(string(stack)), "\n")
	const keep = 13
	if len(lines) > keep {
		lines = append(lines[:keep], "...")
	}
	return strings.Join(lines, "\n")
}

// resolve delivers the result to the job's handle and every attached
// waiter, releases its dedup key and tenant slot, and signals drain
// completion when the last outstanding job ends.
func (s *Scheduler) resolve(jb *job, res Result) {
	s.mu.Lock()
	if jb.Key != "" && s.keyed[jb.Key] == jb {
		delete(s.keyed, jb.Key)
	}
	delete(s.running, jb)
	if b := s.tenants[jb.Tenant]; b != nil {
		b.active--
	}
	if res.Err == nil {
		s.c.Completed++
		// EWMA of successful execution time feeds the Retry-After hint.
		if s.execEWMA == 0 {
			s.execEWMA = res.Ran
		} else {
			s.execEWMA += (res.Ran - s.execEWMA) / 8
		}
	} else {
		s.c.Failed++
		if res.Panicked {
			s.c.Panics++
		}
		if errors.Is(res.Err, ErrAborted) {
			s.c.Aborted++
		}
	}
	waiters := jb.waiters
	jb.waiters = nil
	s.outstanding--
	if s.draining && s.outstanding == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()

	jb.handle.res = res
	close(jb.handle.done)
	shared := res
	shared.Deduped = true
	for _, w := range waiters {
		w.res = shared
		close(w.done)
	}
}

// drainAborted reports whether Drain's context already expired (set via
// abortLocked having cancelled everything). Callers hold s.mu.
func (s *Scheduler) drainAborted() bool { return s.stopping }

func (s *Scheduler) closeDrainedLocked() {
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

// Draining reports whether the scheduler has stopped accepting work
// (the /readyz signal).
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats returns a snapshot of the counters and gauges.
func (s *Scheduler) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.c
	c.QueueLen = s.queue.Len()
	c.Running = len(s.running)
	c.Draining = s.draining
	return c
}

// Drain gracefully shuts the scheduler down: new submissions are shed
// with ErrDraining immediately, queued and running jobs finish and
// resolve normally, then the workers exit. If ctx expires first, every
// running job's context is cancelled and still-queued jobs resolve with
// ErrAborted — each accepted job still gets exactly one result — and
// Drain returns ctx's error once they have. Drain is idempotent; later
// calls wait for the first to finish.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.outstanding == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()

	var err error
	select {
	case <-s.drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.abort()
		// abort cancelled running jobs and resolved queued ones; running
		// jobs that honor their context resolve promptly.
		<-s.drained
	}
	s.mu.Lock()
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Abort shuts down without grace: equivalent to a Drain whose context
// is already expired. Every accepted job still resolves exactly once
// (queued with ErrAborted, running via context cancellation).
func (s *Scheduler) Abort() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

// abort empties the queue (resolving each entry with ErrAborted) and
// cancels every running job's context.
func (s *Scheduler) abort() {
	s.mu.Lock()
	s.draining = true
	s.stopping = true // execute() fast-fails jobs popped after this
	var queued []*job
	for s.queue.Len() > 0 {
		queued = append(queued, s.queue.pop())
	}
	for jb := range s.running {
		if jb.cancel != nil {
			jb.cancel()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, jb := range queued {
		s.resolve(jb, Result{Err: ErrAborted, Queued: time.Since(jb.enqueuedAt)})
	}
}
