// Package sched is the reusable scheduling core behind both the batch
// experiment runner and the dmdpd daemon. It provides two layers:
//
//   - Pool / PoolCtx: the deterministic atomic-counter fan-out primitive
//     the experiment runner and difftest sweep schedule on (extracted
//     from internal/experiments). Work items are claimed by index, so
//     callers that write results into slot i get schedule-independent
//     output at any worker count.
//
//   - Scheduler: a long-running job service — bounded priority queue,
//     admission control with load shedding, per-tenant token-bucket rate
//     limits and quotas, in-flight dedup by job key, per-job deadlines,
//     panic isolation, and graceful drain. Every accepted job resolves
//     its Handle exactly once; that invariant is what the dmdpd chaos
//     suite leans on.
package sched

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool runs f(0..n-1) on an atomic-counter worker pool of the given
// width (jobs <= 1 runs serially on the caller's goroutine).
func Pool(jobs, n int, f func(i int)) { PoolCtx(nil, jobs, n, f) }

// PoolCtx is Pool with cooperative cancellation: once ctx is done,
// workers stop claiming new items (items already started still finish —
// f is responsible for observing ctx itself if it wants mid-item
// cancellation). A nil ctx never cancels. Returns the number of items
// actually started.
func PoolCtx(ctx context.Context, jobs, n int, f func(i int)) int {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		started := 0
		for i := 0; i < n; i++ {
			if cancelled() {
				break
			}
			started++
			f(i)
		}
		return started
	}
	var next, started atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				started.Add(1)
				f(i)
			}
		}()
	}
	wg.Wait()
	return int(started.Load())
}
