package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// checkNoGoroutineLeak snapshots the goroutine count and asserts (with
// retries, since exits are asynchronous) that the count returns to the
// baseline after the test body — a goleak-style gate without the
// dependency.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func instantJob(v any) Job {
	return Job{Run: func(context.Context) (any, error) { return v, nil }}
}

// TestCompletesJobs: the basic path — submit N, all resolve with their
// values, counters add up, workers exit on drain.
func TestCompletesJobs(t *testing.T) {
	leak := checkNoGoroutineLeak(t)
	s := New(Config{Workers: 4, QueueDepth: 64})
	const n = 50
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		h, err := s.Submit(instantJob(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res := h.Result()
		if res.Err != nil || res.Value.(int) != i {
			t.Fatalf("job %d: %+v", i, res)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c := s.Stats()
	if c.Accepted != n || c.Completed != n || c.Failed != 0 {
		t.Fatalf("counters: %+v", c)
	}
	leak()
}

// TestGracefulDrain: SIGTERM semantics — jobs in flight when Drain
// starts all complete normally, new submissions shed with
// ShedDraining, Drain returns nil.
func TestGracefulDrain(t *testing.T) {
	leak := checkNoGoroutineLeak(t)
	s := New(Config{Workers: 2, QueueDepth: 64})
	release := make(chan struct{})
	const n = 8
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		h, err := s.Submit(Job{Run: func(ctx context.Context) (any, error) {
			<-release
			return "done", nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	// Wait for draining to take effect, then verify shedding.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(instantJob(nil)); err == nil {
		t.Fatal("submit during drain should shed")
	} else if ae, ok := IsShed(err); !ok || ae.Reason != ShedDraining {
		t.Fatalf("err=%v, want ShedDraining", err)
	}
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, h := range handles {
		if res := h.Result(); res.Err != nil || res.Value != "done" {
			t.Fatalf("job %d lost by drain: %+v", i, res)
		}
	}
	leak()
}

// TestDrainTimeoutAbortsExactlyOnce: when the drain context expires,
// running jobs are cancelled via their context and queued jobs resolve
// with ErrAborted — every accepted handle still resolves exactly once.
func TestDrainTimeoutAbortsExactlyOnce(t *testing.T) {
	leak := checkNoGoroutineLeak(t)
	s := New(Config{Workers: 2, QueueDepth: 64})
	const n = 10
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		h, err := s.Submit(Job{Run: func(ctx context.Context) (any, error) {
			<-ctx.Done() // runs until cancelled
			return nil, ctx.Err()
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err=%v, want deadline exceeded", err)
	}
	resolved := 0
	for i, h := range handles {
		select {
		case <-h.Done():
			resolved++
			if res := h.Result(); res.Err == nil {
				t.Fatalf("job %d resolved without error after aborted drain", i)
			}
		default:
			t.Fatalf("job %d never resolved (lost)", i)
		}
	}
	if resolved != n {
		t.Fatalf("resolved %d/%d", resolved, n)
	}
	c := s.Stats()
	if c.Completed+c.Failed != c.Accepted {
		t.Fatalf("accounting leak: %+v", c)
	}
	leak()
}

// TestQueueFullSheds: a saturated queue sheds with ShedQueueFull and a
// Retry-After hint, no goroutines leak, and accounting stays exact.
func TestQueueFullSheds(t *testing.T) {
	leak := checkNoGoroutineLeak(t)
	s := New(Config{Workers: 1, QueueDepth: 2})
	block := make(chan struct{})
	// One running + two queued fills the service. Wait for the worker to
	// pop the first job before filling the queue, so the depth check is
	// deterministic.
	var accepted []*Handle
	for i := 0; i < 3; i++ {
		h, err := s.Submit(Job{Run: func(context.Context) (any, error) { <-block; return nil, nil }})
		if err != nil {
			t.Fatalf("submit %d rejected early: %v", i, err)
		}
		accepted = append(accepted, h)
		if i == 0 {
			waitUntil(t, func() bool { return s.Stats().Running == 1 })
		}
	}

	h, err := s.Submit(instantJob(nil))
	if err == nil {
		_ = h
		t.Fatal("4th submission should shed")
	}
	ae, ok := IsShed(err)
	if !ok || ae.Reason != ShedQueueFull {
		t.Fatalf("err=%v, want ShedQueueFull", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("queue-full rejection carries no Retry-After hint: %+v", ae)
	}
	close(block)
	for _, h := range accepted {
		h.Result()
	}
	s.Drain(context.Background())
	c := s.Stats()
	if c.ShedQueueFull != 1 || c.Accepted != 3 {
		t.Fatalf("counters: %+v", c)
	}
	leak()
}

// TestDedupSharesResult: concurrent submissions with one key execute
// once; attached handles see Deduped and the same value.
func TestDedupSharesResult(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Drain(context.Background())
	var execs atomic.Int64
	gate := make(chan struct{})
	run := func(context.Context) (any, error) {
		execs.Add(1)
		<-gate
		return "shared", nil
	}
	h1, err := s.Submit(Job{Key: "k", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	var attached []*Handle
	for i := 0; i < 5; i++ {
		h, err := s.Submit(Job{Key: "k", Run: run})
		if err != nil {
			t.Fatal(err)
		}
		attached = append(attached, h)
	}
	close(gate)
	if res := h1.Result(); res.Err != nil || res.Value != "shared" || res.Deduped {
		t.Fatalf("primary: %+v", res)
	}
	for _, h := range attached {
		if res := h.Result(); res.Err != nil || res.Value != "shared" || !res.Deduped {
			t.Fatalf("attached: %+v", res)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	if c := s.Stats(); c.Deduped != 5 || c.Accepted != 1 {
		t.Fatalf("counters: %+v", c)
	}
	// After resolution the key is free again: a new submit executes.
	h2, err := s.Submit(Job{Key: "k", Run: func(context.Context) (any, error) { return "fresh", nil }})
	if err != nil {
		t.Fatal(err)
	}
	if res := h2.Result(); res.Value != "fresh" || res.Deduped {
		t.Fatalf("post-release: %+v", res)
	}
}

// TestPanicIsolation: a panicking job resolves with an error (stack
// attached) and the workers keep serving.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Drain(context.Background())
	h, err := s.Submit(Job{Run: func(context.Context) (any, error) { panic("boom") }})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Result()
	if res.Err == nil || !res.Panicked {
		t.Fatalf("panic not isolated: %+v", res)
	}
	// The single worker survived: the next job runs.
	h2, _ := s.Submit(instantJob(7))
	if res := h2.Result(); res.Err != nil || res.Value.(int) != 7 {
		t.Fatalf("worker died after panic: %+v", res)
	}
	if c := s.Stats(); c.Panics != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestDeadlineExpiredInQueue: a job whose deadline passes while queued
// resolves with an error without ever running.
func TestDeadlineExpiredInQueue(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Drain(context.Background())
	block := make(chan struct{})
	s.Submit(Job{Run: func(context.Context) (any, error) { <-block; return nil, nil }})
	waitUntil(t, func() bool { return s.Stats().Running == 1 })
	ran := false
	h, err := s.Submit(Job{
		Deadline: time.Now().Add(20 * time.Millisecond),
		Run:      func(context.Context) (any, error) { ran = true; return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(block)
	res := h.Result()
	if res.Err == nil || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("res=%+v, want queue-expiry error", res)
	}
	if ran {
		t.Fatal("expired job still ran")
	}
	if c := s.Stats(); c.Expired != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestRunningJobDeadline: a running job's context fires at its deadline.
func TestRunningJobDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Drain(context.Background())
	h, err := s.Submit(Job{
		Deadline: time.Now().Add(30 * time.Millisecond),
		Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Result(); !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("res=%+v, want deadline exceeded", res)
	}
}

// TestTenantRateLimit: a tenant burns its burst, gets rate-limited with
// a Retry-After hint, and other tenants are unaffected.
func TestTenantRateLimit(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 1024, TenantRate: 1, TenantBurst: 3})
	defer s.Drain(context.Background())
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(Job{Tenant: "a", Run: instantJob(nil).Run}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(Job{Tenant: "a", Run: instantJob(nil).Run})
	ae, ok := IsShed(err)
	if !ok || ae.Reason != ShedRateLimited || ae.RetryAfter <= 0 {
		t.Fatalf("err=%v, want rate-limited with hint", err)
	}
	if _, err := s.Submit(Job{Tenant: "b", Run: instantJob(nil).Run}); err != nil {
		t.Fatalf("tenant b affected by a's limit: %v", err)
	}
}

// TestTenantQuota: TenantMaxActive bounds one tenant's queued+running
// jobs.
func TestTenantQuota(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64, TenantMaxActive: 2})
	block := make(chan struct{})
	blocked := func(context.Context) (any, error) { <-block; return nil, nil }
	s.Submit(Job{Tenant: "a", Run: blocked})
	s.Submit(Job{Tenant: "a", Run: blocked})
	_, err := s.Submit(Job{Tenant: "a", Run: blocked})
	if ae, ok := IsShed(err); !ok || ae.Reason != ShedTenantQuota {
		t.Fatalf("err=%v, want tenant-quota", err)
	}
	if _, err := s.Submit(Job{Tenant: "b", Run: blocked}); err != nil {
		t.Fatalf("tenant b hit a's quota: %v", err)
	}
	close(block)
	s.Drain(context.Background())
}

// TestPriorityOrder: with one worker, higher-priority jobs pop first;
// equal priorities stay FIFO.
func TestPriorityOrder(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64})
	var mu sync.Mutex
	var order []string
	block := make(chan struct{})
	s.Submit(Job{Run: func(context.Context) (any, error) { <-block; return nil, nil }})
	waitUntil(t, func() bool { return s.Stats().Running == 1 })
	add := func(name string, prio int) *Handle {
		h, err := s.Submit(Job{Priority: prio, Run: func(context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hs := []*Handle{add("low1", 0), add("high", 5), add("low2", 0), add("mid", 3)}
	close(block)
	for _, h := range hs {
		h.Result()
	}
	s.Drain(context.Background())
	want := []string{"high", "mid", "low1", "low2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolCtxStopsClaiming: a cancelled context stops the pool from
// starting new items; already-started items finish.
func TestPoolCtxStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	n := PoolCtx(ctx, 4, 1000, func(i int) {
		if started.Add(1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if n >= 1000 {
		t.Fatalf("started all %d items despite cancellation", n)
	}
	if n != int(started.Load()) {
		t.Fatalf("PoolCtx returned %d, started %d", n, started.Load())
	}
}

// TestPoolDeterministicCoverage: every index is claimed exactly once at
// any width.
func TestPoolDeterministicCoverage(t *testing.T) {
	for _, jobs := range []int{1, 3, 8} {
		var hits [257]atomic.Int64
		Pool(jobs, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("jobs=%d: index %d claimed %d times", jobs, i, hits[i].Load())
			}
		}
	}
}
