package sched

import "time"

// bucket is one tenant's token bucket. Tokens refill continuously at
// rate per second up to burst; each admitted job spends one token.
// Access is serialized by the Scheduler's mutex.
type bucket struct {
	tokens float64
	last   time.Time

	// active counts the tenant's queued + running jobs (quota).
	active int
}

// take refills by the elapsed wall clock and spends one token if
// available. rate <= 0 disables rate limiting (always admits).
func (b *bucket) take(now time.Time, rate float64, burst int) bool {
	if rate <= 0 {
		return true
	}
	if burst < 1 {
		burst = 1
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * rate
	} else {
		b.tokens = float64(burst) // first sight: full bucket
	}
	b.last = now
	if b.tokens > float64(burst) {
		b.tokens = float64(burst)
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfter estimates how long until the next token accrues — the
// Retry-After hint a 429 response carries.
func (b *bucket) retryAfter(rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	need := 1 - b.tokens
	if need <= 0 {
		return 0
	}
	d := time.Duration(need / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
