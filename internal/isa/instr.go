package isa

import "fmt"

// Instr is one decoded instruction.
//
// Field usage by format:
//   - R-type ALU:  Rd = dest, Rs/Rt = sources (shifts-by-immediate use Imm).
//   - I-type ALU:  Rt = dest, Rs = source, Imm = immediate.
//   - Loads:       Rt = dest, Rs = base, Imm = offset.
//   - Stores:      Rt = data source, Rs = base, Imm = offset.
//   - Branches:    Rs (and Rt for beq/bne) = sources, Imm = word displacement
//     relative to the next instruction.
//   - J/JAL:       Target = absolute word index (byte address >> 2).
//   - JR/JALR:     Rs = target register, Rd = link register (jalr).
type Instr struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Imm    int32
	Target uint32
}

// Dest returns the destination logical register, or NoReg.
func (i Instr) Dest() Reg {
	var d Reg
	switch {
	case i.Op == OpJAL:
		d = RA
	case i.Op == OpJALR:
		d = i.Rd
	case i.Op.IsLoad():
		d = i.Rt
	case i.Op == OpNOP, i.Op == OpHALT, i.Op.IsStore(), i.Op.IsBranch(),
		i.Op == OpJ, i.Op == OpJR:
		return NoReg
	case isIType(i.Op):
		d = i.Rt
	default:
		d = i.Rd
	}
	if d == Zero {
		return NoReg // writes to $0 are discarded
	}
	return d
}

// Srcs appends the source logical registers to dst and returns it. $0 is
// included (it renames trivially) but NoReg slots are not.
func (i Instr) Srcs(dst []Reg) []Reg {
	switch {
	case i.Op == OpNOP, i.Op == OpHALT, i.Op == OpJ, i.Op == OpJAL,
		i.Op == OpLUI:
		return dst
	case i.Op == OpJR, i.Op == OpJALR:
		return append(dst, i.Rs)
	case i.Op.IsLoad():
		return append(dst, i.Rs)
	case i.Op.IsStore():
		return append(dst, i.Rs, i.Rt)
	case i.Op == OpBEQ, i.Op == OpBNE:
		return append(dst, i.Rs, i.Rt)
	case i.Op.IsBranch():
		return append(dst, i.Rs)
	case i.Op == OpSLL, i.Op == OpSRL, i.Op == OpSRA:
		return append(dst, i.Rt) // shift amount in Imm
	case isIType(i.Op):
		return append(dst, i.Rs)
	default:
		return append(dst, i.Rs, i.Rt)
	}
}

func isIType(o Op) bool {
	switch o {
	case OpADDI, OpADDIU, OpANDI, OpORI, OpXORI, OpSLTI, OpSLTIU, OpLUI:
		return true
	}
	return false
}

// String disassembles the instruction in conventional MIPS syntax.
func (i Instr) String() string {
	switch {
	case i.Op == OpNOP || i.Op == OpHALT:
		return i.Op.String()
	case i.Op == OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", i.Rt, uint16(i.Imm))
	case i.Op.IsMem():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rt, i.Imm, i.Rs)
	case i.Op == OpBEQ || i.Op == OpBNE:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs, i.Rt, i.Imm)
	case i.Op.IsBranch():
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs, i.Imm)
	case i.Op == OpJ || i.Op == OpJAL:
		return fmt.Sprintf("%s 0x%x", i.Op, i.Target<<2)
	case i.Op == OpJR:
		return fmt.Sprintf("jr %s", i.Rs)
	case i.Op == OpJALR:
		return fmt.Sprintf("jalr %s, %s", i.Rd, i.Rs)
	case i.Op == OpSLL || i.Op == OpSRL || i.Op == OpSRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rt, i.Imm)
	case isIType(i.Op):
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rt, i.Rs, i.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs, i.Rt)
	}
}

// Program is an assembled unit ready for emulation.
type Program struct {
	// TextBase is the byte address of Text[0]. Instruction k sits at
	// TextBase + 4k.
	TextBase uint32
	Text     []Instr
	// DataBase is the byte address of Data[0].
	DataBase uint32
	Data     []byte
	// Entry is the initial PC.
	Entry uint32
	// Symbols maps labels to byte addresses (both text and data).
	Symbols map[string]uint32
}

// InstrAt returns the instruction at byte address pc.
func (p *Program) InstrAt(pc uint32) (Instr, bool) {
	if pc < p.TextBase || pc&3 != 0 {
		return Instr{}, false
	}
	idx := (pc - p.TextBase) >> 2
	if idx >= uint32(len(p.Text)) {
		return Instr{}, false
	}
	return p.Text[idx], true
}
