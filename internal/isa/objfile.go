package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary object format ("DMO1"): a compact container for assembled
// programs so workloads can be built once and shipped/loaded without the
// assembler. Layout (little endian):
//
//	magic    [4]byte "DMO1"
//	textBase uint32
//	dataBase uint32
//	entry    uint32
//	nText    uint32   // instruction count
//	nData    uint32   // data byte count
//	nSyms    uint32
//	text     nText * uint32 (encoded instructions)
//	data     nData bytes
//	syms     nSyms * { nameLen uint16, name bytes, addr uint32 }
const objMagic = "DMO1"

// MarshalBinary serializes the program into the DMO1 object format.
func (p *Program) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(objMagic)
	hdr := []uint32{
		p.TextBase, p.DataBase, p.Entry,
		uint32(len(p.Text)), uint32(len(p.Data)), uint32(len(p.Symbols)),
	}
	for _, v := range hdr {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	for i, in := range p.Text {
		w, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("isa: object: instruction %d (%v): %w", i, in, err)
		}
		if err := binary.Write(&buf, binary.LittleEndian, w); err != nil {
			return nil, err
		}
	}
	buf.Write(p.Data)
	// Deterministic symbol order.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if len(n) > 0xffff {
			return nil, fmt.Errorf("isa: object: symbol name too long")
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint16(len(n))); err != nil {
			return nil, err
		}
		buf.WriteString(n)
		if err := binary.Write(&buf, binary.LittleEndian, p.Symbols[n]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// IsObjectFile reports whether data starts with the DMO1 magic.
func IsObjectFile(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == objMagic
}

// UnmarshalProgram parses a DMO1 object back into a Program.
func UnmarshalProgram(data []byte) (*Program, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != objMagic {
		return nil, fmt.Errorf("isa: object: bad magic")
	}
	var hdr [6]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("isa: object: truncated header: %w", err)
		}
	}
	p := &Program{
		TextBase: hdr[0],
		DataBase: hdr[1],
		Entry:    hdr[2],
		Symbols:  make(map[string]uint32, hdr[5]),
	}
	nText, nData, nSyms := hdr[3], hdr[4], hdr[5]
	const maxSection = 1 << 28
	if nText > maxSection/4 || nData > maxSection || nSyms > 1<<20 {
		return nil, fmt.Errorf("isa: object: implausible section sizes")
	}
	p.Text = make([]Instr, nText)
	for i := range p.Text {
		var w uint32
		if err := binary.Read(r, binary.LittleEndian, &w); err != nil {
			return nil, fmt.Errorf("isa: object: truncated text: %w", err)
		}
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: object: instruction %d: %w", i, err)
		}
		p.Text[i] = in
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(r, p.Data); err != nil {
		return nil, fmt.Errorf("isa: object: truncated data: %w", err)
	}
	for i := uint32(0); i < nSyms; i++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("isa: object: truncated symbols: %w", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("isa: object: truncated symbol name: %w", err)
		}
		var addr uint32
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("isa: object: truncated symbol addr: %w", err)
		}
		p.Symbols[string(name)] = addr
	}
	return p, nil
}
