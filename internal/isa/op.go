package isa

// Op enumerates the instruction opcodes of the simulated ISA.
type Op uint8

// Opcode set. Integer arithmetic/logic follows MIPS-I; MUL/MULH/DIVOP/REMOP
// replace the HI/LO pair for simplicity (documented deviation); FADD/FMUL/
// FDIV are floating-point proxies that compute on integer registers but
// carry floating-point execution latency and energy, so the Float proxy
// benchmarks stress the same long-latency producer chains the paper's FP
// suite does.
const (
	OpInvalid Op = iota

	// R-type ALU.
	OpADD
	OpADDU
	OpSUB
	OpSUBU
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT
	OpSLTU
	OpSLL // shift by immediate
	OpSRL
	OpSRA
	OpSLLV // shift by register
	OpSRLV
	OpSRAV
	OpMUL   // low 32 bits of product
	OpMULH  // high 32 bits of signed product
	OpDIVOP // signed quotient (0 divisor -> 0)
	OpREMOP // signed remainder (0 divisor -> 0)

	// I-type ALU.
	OpADDI
	OpADDIU
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpSLTIU
	OpLUI

	// Loads/stores.
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpSB
	OpSH
	OpSW

	// Branches (no delay slots).
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpBLTZ
	OpBGEZ

	// Jumps.
	OpJ
	OpJAL
	OpJR
	OpJALR

	// Floating-point proxies (integer semantics, FP latency class).
	OpFADD
	OpFMUL
	OpFDIV

	// Misc.
	OpNOP
	OpHALT

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpADDU: "addu", OpSUB: "sub", OpSUBU: "subu",
	OpAND: "and", OpOR: "or", OpXOR: "xor", OpNOR: "nor",
	OpSLT: "slt", OpSLTU: "sltu",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpSLLV: "sllv", OpSRLV: "srlv", OpSRAV: "srav",
	OpMUL: "mul", OpMULH: "mulh", OpDIVOP: "div", OpREMOP: "rem",
	OpADDI: "addi", OpADDIU: "addiu", OpANDI: "andi", OpORI: "ori",
	OpXORI: "xori", OpSLTI: "slti", OpSLTIU: "sltiu", OpLUI: "lui",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu", OpLW: "lw",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpBEQ: "beq", OpBNE: "bne", OpBLEZ: "blez", OpBGTZ: "bgtz",
	OpBLTZ: "bltz", OpBGEZ: "bgez",
	OpJ: "j", OpJAL: "jal", OpJR: "jr", OpJALR: "jalr",
	OpFADD: "fadd", OpFMUL: "fmul", OpFDIV: "fdiv",
	OpNOP: "nop", OpHALT: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// OpByName resolves an assembler mnemonic.
func OpByName(name string) (Op, bool) {
	for i := Op(1); i < numOps; i++ {
		if opNames[i] == name {
			return i, true
		}
	}
	return OpInvalid, false
}

// Class groups opcodes by execution resource/latency class.
type Class uint8

// Execution classes used by the core's functional units and the power model.
const (
	ClassALU   Class = iota // 1-cycle integer
	ClassMul                // integer multiply
	ClassDiv                // integer divide
	ClassFP                 // FP-proxy add/mul
	ClassFPDiv              // FP-proxy divide
	ClassLoad
	ClassStore
	ClassBranch
	ClassNop
)

// Class returns the execution class of the opcode.
func (o Op) Class() Class {
	switch o {
	case OpLB, OpLBU, OpLH, OpLHU, OpLW:
		return ClassLoad
	case OpSB, OpSH, OpSW:
		return ClassStore
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ, OpJ, OpJAL, OpJR, OpJALR:
		return ClassBranch
	case OpMUL, OpMULH:
		return ClassMul
	case OpDIVOP, OpREMOP:
		return ClassDiv
	case OpFADD, OpFMUL:
		return ClassFP
	case OpFDIV:
		return ClassFPDiv
	case OpNOP, OpHALT:
		return ClassNop
	}
	return ClassALU
}

// IsLoad reports whether the opcode reads memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports whether the opcode is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return true
	}
	return false
}

// IsJump reports whether the opcode is an unconditional control transfer.
func (o Op) IsJump() bool {
	switch o {
	case OpJ, OpJAL, OpJR, OpJALR:
		return true
	}
	return false
}

// IsControl reports whether the opcode changes control flow.
func (o Op) IsControl() bool { return o.IsBranch() || o.IsJump() }

// MemBytes returns the access size in bytes for memory opcodes, 0 otherwise.
func (o Op) MemBytes() uint32 {
	switch o {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpSW:
		return 4
	}
	return 0
}

// SignExtendsLoad reports whether a sub-word load sign-extends its result.
func (o Op) SignExtendsLoad() bool { return o == OpLB || o == OpLH }
