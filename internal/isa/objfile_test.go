package isa

import (
	"testing"
)

func sampleProgram() *Program {
	return &Program{
		TextBase: 0x0040_0000,
		DataBase: 0x1000_0000,
		Entry:    0x0040_0004,
		Text: []Instr{
			{Op: OpADDI, Rt: T0, Rs: Zero, Imm: 5},
			{Op: OpLW, Rt: T1, Rs: T0, Imm: 8},
			{Op: OpSW, Rt: T1, Rs: T0, Imm: 12},
			{Op: OpBEQ, Rs: T0, Rt: T1, Imm: -2},
			{Op: OpJ, Target: 0x100},
			{Op: OpHALT},
		},
		Data:    []byte{1, 2, 3, 4, 5, 6, 7},
		Symbols: map[string]uint32{"main": 0x0040_0004, "buf": 0x1000_0000},
	}
}

func TestObjectRoundTrip(t *testing.T) {
	p := sampleProgram()
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsObjectFile(blob) {
		t.Fatal("magic missing")
	}
	q, err := UnmarshalProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.TextBase != p.TextBase || q.DataBase != p.DataBase || q.Entry != p.Entry {
		t.Fatal("header fields wrong")
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text length %d", len(q.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Fatalf("instr %d: %v != %v", i, q.Text[i], p.Text[i])
		}
	}
	if string(q.Data) != string(p.Data) {
		t.Fatal("data mismatch")
	}
	if len(q.Symbols) != 2 || q.Symbols["main"] != p.Symbols["main"] || q.Symbols["buf"] != p.Symbols["buf"] {
		t.Fatalf("symbols %v", q.Symbols)
	}
}

func TestObjectDeterministic(t *testing.T) {
	p := sampleProgram()
	a, _ := p.MarshalBinary()
	b, _ := p.MarshalBinary()
	if string(a) != string(b) {
		t.Fatal("marshal not deterministic (symbol order?)")
	}
}

func TestObjectRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("DMO1"),             // truncated header
		[]byte("DMO1\x00\x00\x00"), // still truncated
	}
	for i, c := range cases {
		if _, err := UnmarshalProgram(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Valid header then truncated text.
	p := sampleProgram()
	blob, _ := p.MarshalBinary()
	if _, err := UnmarshalProgram(blob[:40]); err == nil {
		t.Error("truncated object should fail")
	}
	if IsObjectFile([]byte("nope")) {
		t.Error("IsObjectFile false positive")
	}
}

func TestObjectHardwareRegisterRejected(t *testing.T) {
	p := &Program{Text: []Instr{{Op: OpADD, Rd: HwAddr, Rs: T0, Rt: T1}}}
	if _, err := p.MarshalBinary(); err == nil {
		t.Fatal("hardware-only registers are not encodable")
	}
}
