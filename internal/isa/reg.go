// Package isa defines the MIPS-I-like 32-bit instruction set used by the
// DMDP reproduction: instruction semantics, binary encoding/decoding and
// disassembly.
//
// The ISA follows MIPS-I conventions (32 general-purpose registers, $0
// hard-wired to zero, little-endian memory, 4-byte words) but, like the
// machine simulated in the paper, has no branch delay slots. Three
// additional logical registers ($32..$34) exist only inside the hardware:
// they are the destinations of cracked MicroOps (address generation,
// predicated load temporaries and predicates) and are never encodable in
// program text.
package isa

import "fmt"

// Reg identifies a logical (architectural or hardware-only) register.
type Reg uint8

// Architectural registers $0..$31 plus the hardware-only registers used by
// MicroOp cracking (paper §IV-A, Fig. 7/8).
const (
	Zero Reg = 0 // $0, hard-wired zero
	AT   Reg = 1 // $1, assembler temporary
	V0   Reg = 2 // $2..$3, results
	V1   Reg = 3
	A0   Reg = 4 // $4..$7, arguments
	A1   Reg = 5
	A2   Reg = 6
	A3   Reg = 7
	T0   Reg = 8 // $8..$15, caller-saved temporaries
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // $16..$23, callee-saved
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26
	K1   Reg = 27
	GP   Reg = 28
	SP   Reg = 29
	FP   Reg = 30
	RA   Reg = 31

	// Hardware-only registers, visible to MicroOps but not to programs.
	HwAddr Reg = 32 // $32: address-generation destination (paper Fig. 7)
	HwTmp  Reg = 33 // $33: predicated-load cache-read temporary (Fig. 8)
	HwPred Reg = 34 // $34: predicate produced by CMP (Fig. 8)

	// NumArchRegs counts the program-visible registers.
	NumArchRegs = 32
	// NumLogicalRegs counts architectural plus hardware-only registers;
	// this is the size of the rename table.
	NumLogicalRegs = 35

	// NoReg marks "no register" in source/destination slots.
	NoReg Reg = 0xFF
)

var regNames = [NumLogicalRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
	"hwaddr", "hwtmp", "hwpred",
}

// String returns the conventional MIPS name prefixed with '$'.
func (r Reg) String() string {
	if r == NoReg {
		return "$none"
	}
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$?%d", uint8(r))
}

// Valid reports whether r names a logical register.
func (r Reg) Valid() bool { return r < NumLogicalRegs }

// Architectural reports whether r is program-visible ($0..$31).
func (r Reg) Architectural() bool { return r < NumArchRegs }

// RegByName resolves a register name ("t0", "$t0", "$8", "8") to a Reg.
func RegByName(name string) (Reg, bool) {
	if name == "" {
		return NoReg, false
	}
	if name[0] == '$' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	// Numeric form.
	v := 0
	for _, c := range name {
		if c < '0' || c > '9' {
			return NoReg, false
		}
		v = v*10 + int(c-'0')
		if v >= NumLogicalRegs {
			return NoReg, false
		}
	}
	return Reg(v), true
}
