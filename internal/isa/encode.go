package isa

import "fmt"

// Binary encoding follows the MIPS-I formats:
//
//	R-type: op(6)=0 | rs(5) | rt(5) | rd(5) | shamt(5) | funct(6)
//	I-type: op(6) | rs(5) | rt(5) | imm(16)
//	J-type: op(6) | target(26)
//
// MUL/MULH/DIV/REM live in SPECIAL2 (opcode 0x1c) like MIPS32 MUL; the
// FP-proxy ops use the otherwise-unused opcode 0x1d; HALT is opcode 0x3f.
// Branch displacements are relative to the *next* instruction (the ISA has
// no delay slots). Hardware-only registers are not encodable: MicroOps are
// a rename-stage construct and never appear in program text.
const (
	opcSpecial  = 0x00
	opcRegimm   = 0x01
	opcJ        = 0x02
	opcJAL      = 0x03
	opcBEQ      = 0x04
	opcBNE      = 0x05
	opcBLEZ     = 0x06
	opcBGTZ     = 0x07
	opcADDI     = 0x08
	opcADDIU    = 0x09
	opcSLTI     = 0x0a
	opcSLTIU    = 0x0b
	opcANDI     = 0x0c
	opcORI      = 0x0d
	opcXORI     = 0x0e
	opcLUI      = 0x0f
	opcSpecial2 = 0x1c
	opcFP       = 0x1d
	opcLB       = 0x20
	opcLH       = 0x21
	opcLW       = 0x23
	opcLBU      = 0x24
	opcLHU      = 0x25
	opcSB       = 0x28
	opcSH       = 0x29
	opcSW       = 0x2b
	opcHALT     = 0x3f

	fnSLL  = 0x00
	fnSRL  = 0x02
	fnSRA  = 0x03
	fnSLLV = 0x04
	fnSRLV = 0x06
	fnSRAV = 0x07
	fnJR   = 0x08
	fnJALR = 0x09
	fnADD  = 0x20
	fnADDU = 0x21
	fnSUB  = 0x22
	fnSUBU = 0x23
	fnAND  = 0x24
	fnOR   = 0x25
	fnXOR  = 0x26
	fnNOR  = 0x27
	fnSLT  = 0x2a
	fnSLTU = 0x2b

	fn2MUL  = 0x02
	fn2MULH = 0x03
	fn2DIV  = 0x1a
	fn2REM  = 0x1b

	fnFADD = 0x00
	fnFMUL = 0x02
	fnFDIV = 0x03

	rtBLTZ = 0x00
	rtBGEZ = 0x01
)

func rtype(funct uint32, rs, rt, rd Reg, shamt uint32) uint32 {
	return uint32(rs)&31<<21 | uint32(rt)&31<<16 | uint32(rd)&31<<11 |
		shamt&31<<6 | funct&63
}

func itype(opc uint32, rs, rt Reg, imm int32) uint32 {
	return opc<<26 | uint32(rs)&31<<21 | uint32(rt)&31<<16 | uint32(uint16(imm))
}

// Encode produces the 32-bit machine word for the instruction. It returns
// an error when a field does not fit the format (e.g. a hardware-only
// register, or an immediate outside 16 bits for ops that need one).
func (i Instr) Encode() (uint32, error) {
	checkReg := func(rs ...Reg) error {
		for _, r := range rs {
			if r != NoReg && !r.Architectural() {
				return fmt.Errorf("isa: register %s is not encodable", r)
			}
		}
		return nil
	}
	if err := checkReg(i.Rd, i.Rs, i.Rt); err != nil {
		return 0, err
	}
	imm16 := func() (int32, error) {
		if i.Imm < -0x8000 || i.Imm > 0x7fff {
			return 0, fmt.Errorf("isa: immediate %d out of 16-bit range in %s", i.Imm, i)
		}
		return i.Imm, nil
	}
	uimm16 := func() (int32, error) {
		if i.Imm < 0 || i.Imm > 0xffff {
			return 0, fmt.Errorf("isa: immediate %d out of unsigned 16-bit range in %s", i.Imm, i)
		}
		return i.Imm, nil
	}

	switch i.Op {
	case OpNOP:
		return 0, nil
	case OpHALT:
		return opcHALT << 26, nil
	case OpSLL, OpSRL, OpSRA:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("isa: shift amount %d out of range", i.Imm)
		}
		fn := map[Op]uint32{OpSLL: fnSLL, OpSRL: fnSRL, OpSRA: fnSRA}[i.Op]
		return rtype(fn, 0, i.Rt, i.Rd, uint32(i.Imm)), nil
	case OpSLLV, OpSRLV, OpSRAV, OpADD, OpADDU, OpSUB, OpSUBU, OpAND,
		OpOR, OpXOR, OpNOR, OpSLT, OpSLTU:
		fn := map[Op]uint32{
			OpSLLV: fnSLLV, OpSRLV: fnSRLV, OpSRAV: fnSRAV,
			OpADD: fnADD, OpADDU: fnADDU, OpSUB: fnSUB, OpSUBU: fnSUBU,
			OpAND: fnAND, OpOR: fnOR, OpXOR: fnXOR, OpNOR: fnNOR,
			OpSLT: fnSLT, OpSLTU: fnSLTU,
		}[i.Op]
		return rtype(fn, i.Rs, i.Rt, i.Rd, 0), nil
	case OpJR:
		return rtype(fnJR, i.Rs, 0, 0, 0), nil
	case OpJALR:
		return rtype(fnJALR, i.Rs, 0, i.Rd, 0), nil
	case OpMUL, OpMULH, OpDIVOP, OpREMOP:
		fn := map[Op]uint32{
			OpMUL: fn2MUL, OpMULH: fn2MULH, OpDIVOP: fn2DIV, OpREMOP: fn2REM,
		}[i.Op]
		return opcSpecial2<<26 | rtype(fn, i.Rs, i.Rt, i.Rd, 0), nil
	case OpFADD, OpFMUL, OpFDIV:
		fn := map[Op]uint32{OpFADD: fnFADD, OpFMUL: fnFMUL, OpFDIV: fnFDIV}[i.Op]
		return opcFP<<26 | rtype(fn, i.Rs, i.Rt, i.Rd, 0), nil
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU:
		opc := map[Op]uint32{
			OpADDI: opcADDI, OpADDIU: opcADDIU, OpSLTI: opcSLTI, OpSLTIU: opcSLTIU,
		}[i.Op]
		imm, err := imm16()
		if err != nil {
			return 0, err
		}
		return itype(opc, i.Rs, i.Rt, imm), nil
	case OpANDI, OpORI, OpXORI, OpLUI:
		opc := map[Op]uint32{
			OpANDI: opcANDI, OpORI: opcORI, OpXORI: opcXORI, OpLUI: opcLUI,
		}[i.Op]
		imm, err := uimm16()
		if err != nil {
			return 0, err
		}
		return itype(opc, i.Rs, i.Rt, imm), nil
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpSB, OpSH, OpSW:
		opc := map[Op]uint32{
			OpLB: opcLB, OpLBU: opcLBU, OpLH: opcLH, OpLHU: opcLHU, OpLW: opcLW,
			OpSB: opcSB, OpSH: opcSH, OpSW: opcSW,
		}[i.Op]
		imm, err := imm16()
		if err != nil {
			return 0, err
		}
		return itype(opc, i.Rs, i.Rt, imm), nil
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ:
		opc := map[Op]uint32{
			OpBEQ: opcBEQ, OpBNE: opcBNE, OpBLEZ: opcBLEZ, OpBGTZ: opcBGTZ,
		}[i.Op]
		imm, err := imm16()
		if err != nil {
			return 0, err
		}
		return itype(opc, i.Rs, i.Rt, imm), nil
	case OpBLTZ:
		imm, err := imm16()
		if err != nil {
			return 0, err
		}
		return itype(opcRegimm, i.Rs, Reg(rtBLTZ), imm), nil
	case OpBGEZ:
		imm, err := imm16()
		if err != nil {
			return 0, err
		}
		return itype(opcRegimm, i.Rs, Reg(rtBGEZ), imm), nil
	case OpJ, OpJAL:
		if i.Target >= 1<<26 {
			return 0, fmt.Errorf("isa: jump target 0x%x out of range", i.Target)
		}
		opc := uint32(opcJ)
		if i.Op == OpJAL {
			opc = opcJAL
		}
		return opc<<26 | i.Target, nil
	}
	return 0, fmt.Errorf("isa: cannot encode op %s", i.Op)
}

// Decode reverses Encode. Unknown encodings yield an error.
func Decode(w uint32) (Instr, error) {
	if w == 0 {
		return Instr{Op: OpNOP}, nil
	}
	opc := w >> 26
	rs := Reg(w >> 21 & 31)
	rt := Reg(w >> 16 & 31)
	rd := Reg(w >> 11 & 31)
	shamt := int32(w >> 6 & 31)
	funct := w & 63
	imm := int32(int16(w & 0xffff))
	uimm := int32(w & 0xffff)

	switch opc {
	case opcSpecial:
		switch funct {
		case fnSLL, fnSRL, fnSRA:
			op := map[uint32]Op{fnSLL: OpSLL, fnSRL: OpSRL, fnSRA: OpSRA}[funct]
			return Instr{Op: op, Rd: rd, Rt: rt, Imm: shamt}, nil
		case fnSLLV, fnSRLV, fnSRAV, fnADD, fnADDU, fnSUB, fnSUBU,
			fnAND, fnOR, fnXOR, fnNOR, fnSLT, fnSLTU:
			op := map[uint32]Op{
				fnSLLV: OpSLLV, fnSRLV: OpSRLV, fnSRAV: OpSRAV,
				fnADD: OpADD, fnADDU: OpADDU, fnSUB: OpSUB, fnSUBU: OpSUBU,
				fnAND: OpAND, fnOR: OpOR, fnXOR: OpXOR, fnNOR: OpNOR,
				fnSLT: OpSLT, fnSLTU: OpSLTU,
			}[funct]
			return Instr{Op: op, Rd: rd, Rs: rs, Rt: rt}, nil
		case fnJR:
			return Instr{Op: OpJR, Rs: rs}, nil
		case fnJALR:
			return Instr{Op: OpJALR, Rd: rd, Rs: rs}, nil
		}
	case opcSpecial2:
		switch funct {
		case fn2MUL:
			return Instr{Op: OpMUL, Rd: rd, Rs: rs, Rt: rt}, nil
		case fn2MULH:
			return Instr{Op: OpMULH, Rd: rd, Rs: rs, Rt: rt}, nil
		case fn2DIV:
			return Instr{Op: OpDIVOP, Rd: rd, Rs: rs, Rt: rt}, nil
		case fn2REM:
			return Instr{Op: OpREMOP, Rd: rd, Rs: rs, Rt: rt}, nil
		}
	case opcFP:
		switch funct {
		case fnFADD:
			return Instr{Op: OpFADD, Rd: rd, Rs: rs, Rt: rt}, nil
		case fnFMUL:
			return Instr{Op: OpFMUL, Rd: rd, Rs: rs, Rt: rt}, nil
		case fnFDIV:
			return Instr{Op: OpFDIV, Rd: rd, Rs: rs, Rt: rt}, nil
		}
	case opcRegimm:
		switch uint32(rt) {
		case rtBLTZ:
			return Instr{Op: OpBLTZ, Rs: rs, Imm: imm}, nil
		case rtBGEZ:
			return Instr{Op: OpBGEZ, Rs: rs, Imm: imm}, nil
		}
	case opcJ:
		return Instr{Op: OpJ, Target: w & (1<<26 - 1)}, nil
	case opcJAL:
		return Instr{Op: OpJAL, Target: w & (1<<26 - 1)}, nil
	case opcBEQ:
		return Instr{Op: OpBEQ, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcBNE:
		return Instr{Op: OpBNE, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcBLEZ:
		return Instr{Op: OpBLEZ, Rs: rs, Imm: imm}, nil
	case opcBGTZ:
		return Instr{Op: OpBGTZ, Rs: rs, Imm: imm}, nil
	case opcADDI:
		return Instr{Op: OpADDI, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcADDIU:
		return Instr{Op: OpADDIU, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcSLTI:
		return Instr{Op: OpSLTI, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcSLTIU:
		return Instr{Op: OpSLTIU, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcANDI:
		return Instr{Op: OpANDI, Rs: rs, Rt: rt, Imm: uimm}, nil
	case opcORI:
		return Instr{Op: OpORI, Rs: rs, Rt: rt, Imm: uimm}, nil
	case opcXORI:
		return Instr{Op: OpXORI, Rs: rs, Rt: rt, Imm: uimm}, nil
	case opcLUI:
		return Instr{Op: OpLUI, Rt: rt, Imm: uimm}, nil
	case opcLB:
		return Instr{Op: OpLB, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcLBU:
		return Instr{Op: OpLBU, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcLH:
		return Instr{Op: OpLH, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcLHU:
		return Instr{Op: OpLHU, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcLW:
		return Instr{Op: OpLW, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcSB:
		return Instr{Op: OpSB, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcSH:
		return Instr{Op: OpSH, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcSW:
		return Instr{Op: OpSW, Rs: rs, Rt: rt, Imm: imm}, nil
	case opcHALT:
		return Instr{Op: OpHALT}, nil
	}
	return Instr{}, fmt.Errorf("isa: cannot decode word 0x%08x", w)
}
