package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randInstr builds a random but encodable instruction for op.
func randInstr(r *rand.Rand, op Op) Instr {
	reg := func() Reg { return Reg(r.Intn(NumArchRegs)) }
	in := Instr{Op: op, Rd: reg(), Rs: reg(), Rt: reg()}
	switch {
	case op == OpSLL || op == OpSRL || op == OpSRA:
		in.Imm = int32(r.Intn(32))
	case op == OpANDI || op == OpORI || op == OpXORI || op == OpLUI:
		in.Imm = int32(r.Intn(0x10000))
	case op == OpJ || op == OpJAL:
		in.Rd, in.Rs, in.Rt = 0, 0, 0
		in.Target = uint32(r.Intn(1 << 26))
	case op == OpNOP || op == OpHALT:
		in = Instr{Op: op}
	default:
		in.Imm = int32(int16(r.Uint32()))
	}
	return in
}

// encodableOps lists every op that has a binary encoding.
func encodableOps() []Op {
	var ops []Op
	for o := Op(1); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, op := range encodableOps() {
		for k := 0; k < 200; k++ {
			in := randInstr(r, op)
			w, err := in.Encode()
			if err != nil {
				t.Fatalf("encode %v: %v", in, err)
			}
			out, err := Decode(w)
			if err != nil {
				t.Fatalf("decode %v (0x%08x): %v", in, w, err)
			}
			// Canonicalize fields that the encoding legitimately drops.
			want := canonical(in)
			got := canonical(out)
			if want != got {
				t.Fatalf("round trip op %s: %+v -> 0x%08x -> %+v", op, want, w, got)
			}
		}
	}
}

// canonical zeroes fields the format does not carry, so round-trip
// comparison is meaningful.
func canonical(in Instr) Instr {
	switch in.Op {
	case OpNOP, OpHALT:
		return Instr{Op: in.Op}
	case OpJ, OpJAL:
		return Instr{Op: in.Op, Target: in.Target}
	case OpJR:
		return Instr{Op: OpJR, Rs: in.Rs}
	case OpJALR:
		return Instr{Op: OpJALR, Rd: in.Rd, Rs: in.Rs}
	case OpSLL, OpSRL, OpSRA:
		return Instr{Op: in.Op, Rd: in.Rd, Rt: in.Rt, Imm: in.Imm}
	case OpLUI:
		return Instr{Op: OpLUI, Rt: in.Rt, Imm: in.Imm}
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return Instr{Op: in.Op, Rs: in.Rs, Imm: in.Imm}
	}
	if isIType(in.Op) || in.Op.IsMem() || in.Op == OpBEQ || in.Op == OpBNE {
		return Instr{Op: in.Op, Rs: in.Rs, Rt: in.Rt, Imm: in.Imm}
	}
	return Instr{Op: in.Op, Rd: in.Rd, Rs: in.Rs, Rt: in.Rt}
}

func TestDecodeZeroIsNop(t *testing.T) {
	in, err := Decode(0)
	if err != nil || in.Op != OpNOP {
		t.Fatalf("Decode(0) = %v, %v; want nop", in, err)
	}
}

func TestEncodeRejectsHardwareRegs(t *testing.T) {
	in := Instr{Op: OpADD, Rd: HwAddr, Rs: T0, Rt: T1}
	if _, err := in.Encode(); err == nil {
		t.Fatal("expected error encoding hardware-only register")
	}
}

func TestEncodeRejectsOutOfRangeImm(t *testing.T) {
	cases := []Instr{
		{Op: OpADDI, Rt: T0, Rs: T1, Imm: 40000},
		{Op: OpADDI, Rt: T0, Rs: T1, Imm: -40000},
		{Op: OpORI, Rt: T0, Rs: T1, Imm: -1},
		{Op: OpSLL, Rd: T0, Rt: T1, Imm: 32},
		{Op: OpJ, Target: 1 << 26},
	}
	for _, in := range cases {
		if _, err := in.Encode(); err == nil {
			t.Errorf("expected range error encoding %+v", in)
		}
	}
}

func TestDestAndSrcs(t *testing.T) {
	cases := []struct {
		in   Instr
		dest Reg
		srcs []Reg
	}{
		{Instr{Op: OpADD, Rd: T0, Rs: T1, Rt: T2}, T0, []Reg{T1, T2}},
		{Instr{Op: OpADDI, Rt: T0, Rs: T1, Imm: 4}, T0, []Reg{T1}},
		{Instr{Op: OpLW, Rt: T0, Rs: SP, Imm: 8}, T0, []Reg{SP}},
		{Instr{Op: OpSW, Rt: T0, Rs: SP, Imm: 8}, NoReg, []Reg{SP, T0}},
		{Instr{Op: OpBEQ, Rs: T0, Rt: T1}, NoReg, []Reg{T0, T1}},
		{Instr{Op: OpBLTZ, Rs: T0}, NoReg, []Reg{T0}},
		{Instr{Op: OpJ, Target: 4}, NoReg, nil},
		{Instr{Op: OpJAL, Target: 4}, RA, nil},
		{Instr{Op: OpJR, Rs: RA}, NoReg, []Reg{RA}},
		{Instr{Op: OpJALR, Rd: T9, Rs: T0}, T9, []Reg{T0}},
		{Instr{Op: OpLUI, Rt: T0, Imm: 5}, T0, nil},
		{Instr{Op: OpSLL, Rd: T0, Rt: T1, Imm: 3}, T0, []Reg{T1}},
		{Instr{Op: OpNOP}, NoReg, nil},
		{Instr{Op: OpHALT}, NoReg, nil},
		// Writes to $0 are discarded.
		{Instr{Op: OpADD, Rd: Zero, Rs: T1, Rt: T2}, NoReg, []Reg{T1, T2}},
	}
	for _, c := range cases {
		if got := c.in.Dest(); got != c.dest {
			t.Errorf("%v Dest = %v, want %v", c.in, got, c.dest)
		}
		got := c.in.Srcs(nil)
		if len(got) != len(c.srcs) {
			t.Errorf("%v Srcs = %v, want %v", c.in, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v Srcs = %v, want %v", c.in, got, c.srcs)
				break
			}
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLW.IsLoad() || OpLW.IsStore() || OpLW.MemBytes() != 4 {
		t.Error("lw misclassified")
	}
	if !OpSB.IsStore() || OpSB.MemBytes() != 1 {
		t.Error("sb misclassified")
	}
	if OpLH.MemBytes() != 2 || !OpLH.SignExtendsLoad() || OpLHU.SignExtendsLoad() {
		t.Error("halfword loads misclassified")
	}
	if !OpBEQ.IsBranch() || OpBEQ.IsJump() || !OpBEQ.IsControl() {
		t.Error("beq misclassified")
	}
	if !OpJR.IsJump() || OpJR.IsBranch() {
		t.Error("jr misclassified")
	}
	if OpFDIV.Class() != ClassFPDiv || OpFADD.Class() != ClassFP {
		t.Error("fp proxies misclassified")
	}
	if OpDIVOP.Class() != ClassDiv || OpMUL.Class() != ClassMul {
		t.Error("mul/div misclassified")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for o := Op(1); o < numOps; o++ {
		got, ok := OpByName(o.String())
		if !ok || got != o {
			t.Errorf("OpByName(%q) = %v, %v", o.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
}

func TestRegByName(t *testing.T) {
	cases := map[string]Reg{
		"$t0": T0, "t0": T0, "$8": T0, "8": T0,
		"$zero": Zero, "sp": SP, "ra": RA, "$hwaddr": HwAddr,
	}
	for name, want := range cases {
		got, ok := RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	for _, bad := range []string{"", "$t10x", "99", "$99", "xyz"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestRegString(t *testing.T) {
	if T0.String() != "$t0" || HwPred.String() != "$hwpred" || NoReg.String() != "$none" {
		t.Error("register names wrong")
	}
}

func TestDisasmForms(t *testing.T) {
	cases := map[string]Instr{
		"add $t0, $t1, $t2": {Op: OpADD, Rd: T0, Rs: T1, Rt: T2},
		"addi $t0, $t1, -4": {Op: OpADDI, Rt: T0, Rs: T1, Imm: -4},
		"lw $t0, 8($sp)":    {Op: OpLW, Rt: T0, Rs: SP, Imm: 8},
		"sw $t0, -8($sp)":   {Op: OpSW, Rt: T0, Rs: SP, Imm: -8},
		"beq $t0, $t1, 5":   {Op: OpBEQ, Rs: T0, Rt: T1, Imm: 5},
		"bltz $t0, -2":      {Op: OpBLTZ, Rs: T0, Imm: -2},
		"j 0x40":            {Op: OpJ, Target: 0x10},
		"jr $ra":            {Op: OpJR, Rs: RA},
		"sll $t0, $t1, 3":   {Op: OpSLL, Rd: T0, Rt: T1, Imm: 3},
		"lui $t0, 0x1000":   {Op: OpLUI, Rt: T0, Imm: 0x1000},
		"nop":               {Op: OpNOP},
		"halt":              {Op: OpHALT},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// Property: every decodable word that re-encodes yields the same word.
func TestDecodeEncodeFixedPoint(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // not all words decode; that is fine
		}
		w2, err := in.Encode()
		if err != nil {
			return false
		}
		// NOP has two encodings in real MIPS (any sll $0,..); ours is
		// canonical zero.
		if in.Op == OpNOP {
			return w2 == 0
		}
		// Fields outside the format (e.g. shamt bits on R-type ALU ops,
		// rs/rt bits on lui) are dropped by Decode, so compare via a
		// second decode instead of raw words.
		in2, err := Decode(w2)
		return err == nil && canonical(in2) == canonical(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramInstrAt(t *testing.T) {
	p := &Program{
		TextBase: 0x1000,
		Text: []Instr{
			{Op: OpADDI, Rt: T0, Rs: Zero, Imm: 1},
			{Op: OpHALT},
		},
	}
	if in, ok := p.InstrAt(0x1000); !ok || in.Op != OpADDI {
		t.Fatal("InstrAt(base) failed")
	}
	if in, ok := p.InstrAt(0x1004); !ok || in.Op != OpHALT {
		t.Fatal("InstrAt(base+4) failed")
	}
	if _, ok := p.InstrAt(0x1008); ok {
		t.Fatal("InstrAt past end should fail")
	}
	if _, ok := p.InstrAt(0x0ffc); ok {
		t.Fatal("InstrAt below base should fail")
	}
	if _, ok := p.InstrAt(0x1002); ok {
		t.Fatal("InstrAt unaligned should fail")
	}
}

func TestStringContainsMnemonic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, op := range encodableOps() {
		in := randInstr(r, op)
		if !strings.Contains(in.String(), op.String()) &&
			!(op == OpDIVOP || op == OpREMOP) {
			t.Errorf("String of %v missing mnemonic %q", in, op)
		}
	}
}
