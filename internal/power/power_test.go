package power

import (
	"testing"

	"dmdp/internal/core"
)

func TestComputeBasic(t *testing.T) {
	st := &core.Stats{
		Cycles:       1000,
		Instructions: 2000,
		Uops:         2500,
		RegReads:     4000,
		RegWrites:    2000,
	}
	p := DefaultParams()
	r := Compute(st, p)
	wantDyn := p.RegRead*4000 + p.RegWrite*2000 + p.UopExec*2500
	if r.DynamicPJ != wantDyn {
		t.Fatalf("dynamic %f, want %f", r.DynamicPJ, wantDyn)
	}
	if r.StaticPJ != p.Static*1000 {
		t.Fatalf("static %f", r.StaticPJ)
	}
	if r.TotalPJ != r.DynamicPJ+r.StaticPJ {
		t.Fatal("total mismatch")
	}
	if r.EDP != r.TotalPJ*1000 {
		t.Fatal("EDP mismatch")
	}
	if r.EPI != r.TotalPJ/2000 {
		t.Fatal("EPI mismatch")
	}
}

func TestZeroStats(t *testing.T) {
	r := Compute(&core.Stats{}, DefaultParams())
	if r.TotalPJ != 0 || r.EDP != 0 || r.EPI != 0 {
		t.Fatalf("zero stats must give zero energy: %+v", r)
	}
}

func TestSQSearchesCostBaselineEnergy(t *testing.T) {
	p := DefaultParams()
	withSQ := Compute(&core.Stats{Cycles: 100, SQSearches: 1000}, p)
	without := Compute(&core.Stats{Cycles: 100}, p)
	if withSQ.TotalPJ-without.TotalPJ != p.SQSearch*1000 {
		t.Fatal("SQ search energy not accounted")
	}
}

func TestFasterRunWinsEDPDespiteMoreEnergy(t *testing.T) {
	p := DefaultParams()
	// DMDP-like: slightly more dynamic events, fewer cycles.
	slow := Compute(&core.Stats{Cycles: 2000, Uops: 1000}, p)
	fast := Compute(&core.Stats{Cycles: 1500, Uops: 1200}, p)
	if fast.EDP >= slow.EDP {
		t.Fatalf("faster run should win EDP: %f vs %f", fast.EDP, slow.EDP)
	}
}

func TestBreakdownSumsToDynamic(t *testing.T) {
	st := &core.Stats{
		Cycles: 100, Uops: 50, RegReads: 10, RegWrites: 5,
		SQSearches: 3, CacheAccesses: 7, DRAMAccesses: 1,
	}
	r := Compute(st, DefaultParams())
	var sum float64
	for _, c := range r.Breakdown {
		sum += c.EnergyPJ
	}
	if diff := sum - r.DynamicPJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown sums to %f, dynamic %f", sum, r.DynamicPJ)
	}
	// Sorted descending.
	for i := 1; i < len(r.Breakdown); i++ {
		if r.Breakdown[i].EnergyPJ > r.Breakdown[i-1].EnergyPJ {
			t.Fatal("breakdown not sorted")
		}
	}
}

func TestTopConsumers(t *testing.T) {
	st := &core.Stats{Cycles: 10, DRAMAccesses: 100, Uops: 1}
	r := Compute(st, DefaultParams())
	top := r.TopConsumers(1)
	if len(top) != 1 || top[0].Name != "dram" {
		t.Fatalf("top consumer %+v", top)
	}
	if len(r.TopConsumers(100)) != len(r.Breakdown) {
		t.Fatal("TopConsumers must clamp")
	}
}
