// Package power implements the event-based dynamic energy model standing
// in for the paper's McPAT 1.4 setup. Each microarchitectural event costs
// a fixed energy; static power accrues per cycle. The paper's power claim
// is relative (DMDP's EDP normalized to NoSQ), which depends on cycle
// counts and event-count deltas — extra CMP/CMOV MicroOps, removed store
// queue CAM searches, added recoveries — all of which the core counts
// exactly. Absolute joules are not calibrated.
package power

import (
	"sort"

	"dmdp/internal/core"
)

// Params is the per-event energy table (picojoules) plus static power
// (picojoules per cycle). Defaults are in the range McPAT reports for a
// 32 nm high-performance core.
type Params struct {
	RegRead    float64
	RegWrite   float64
	IQInsert   float64
	IQWakeup   float64
	ROBWrite   float64
	SQSearch   float64 // associative store queue search (baseline only)
	TSSBF      float64 // per read or write
	SDP        float64 // store distance predictor access
	TLBAccess  float64
	L1Access   float64
	L2Access   float64
	DRAMAccess float64
	UopExec    float64 // functional unit energy per executed uop
	SquashUop  float64 // recovery overhead per squashed uop
	Static     float64 // per-cycle leakage + clock tree
}

// DefaultParams returns the reference energy table.
func DefaultParams() Params {
	return Params{
		RegRead:    0.8,
		RegWrite:   1.2,
		IQInsert:   1.6,
		IQWakeup:   1.0,
		ROBWrite:   1.1,
		SQSearch:   6.0, // CAM: the expensive structure the SQ-free designs remove
		TSSBF:      0.7,
		SDP:        0.8,
		TLBAccess:  0.6,
		L1Access:   22,
		L2Access:   95,
		DRAMAccess: 4000,
		UopExec:    3.2,
		SquashUop:  2.5,
		Static:     45,
	}
}

// Component identifies one energy sink in the breakdown.
type Component struct {
	Name     string
	EnergyPJ float64
}

// Result is the energy accounting for one run.
type Result struct {
	DynamicPJ float64
	StaticPJ  float64
	TotalPJ   float64
	// EDP is energy × delay (pJ·cycles); meaningful in ratios.
	EDP float64
	// EPI is energy per retired instruction (pJ).
	EPI float64
	// Breakdown lists per-structure dynamic energy, largest first.
	Breakdown []Component
}

// Compute evaluates the model over a run's statistics.
func Compute(st *core.Stats, p Params) Result {
	parts := []Component{
		{"regfile-read", p.RegRead * float64(st.RegReads)},
		{"regfile-write", p.RegWrite * float64(st.RegWrites)},
		{"iq-insert", p.IQInsert * float64(st.IQInserts)},
		{"iq-wakeup", p.IQWakeup * float64(st.IQWakeups)},
		{"rob", p.ROBWrite * float64(st.ROBWrites)},
		{"sq-cam", p.SQSearch * float64(st.SQSearches)},
		{"t-ssbf", p.TSSBF * float64(st.TSSBFReads+st.TSSBFWrites)},
		{"sdp", p.SDP * float64(st.SDPReads+st.SDPWrites)},
		{"tlb", p.TLBAccess * float64(st.TLBAccesses)},
		{"l1d", p.L1Access * float64(st.CacheAccesses)},
		{"l2", p.L2Access * float64(st.L2Accesses)},
		{"dram", p.DRAMAccess * float64(st.DRAMAccesses)},
		{"execute", p.UopExec * float64(st.Uops)},
		{"squash", p.SquashUop * float64(st.SquashedUops)},
	}
	var dyn float64
	for _, c := range parts {
		dyn += c.EnergyPJ
	}
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].EnergyPJ > parts[j].EnergyPJ })
	static := p.Static * float64(st.Cycles)
	total := dyn + static
	r := Result{
		DynamicPJ: dyn,
		StaticPJ:  static,
		TotalPJ:   total,
		EDP:       total * float64(st.Cycles),
		Breakdown: parts,
	}
	if st.Instructions > 0 {
		r.EPI = total / float64(st.Instructions)
	}
	return r
}

// TopConsumers returns the n largest dynamic-energy components.
func (r *Result) TopConsumers(n int) []Component {
	if n > len(r.Breakdown) {
		n = len(r.Breakdown)
	}
	return r.Breakdown[:n]
}
