package experiments

import (
	"fmt"
	"math"

	"dmdp/internal/config"
	"dmdp/internal/sampling"
	"dmdp/internal/stats"
)

// sampErrModels are the machines the sampled-error experiment compares
// (every model the evaluation uses).
var sampErrModels = []config.Model{
	config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF,
}

// sampSpec resolves the sampling spec for samp-err: the explicit
// Options.Sample when one was given, otherwise a budget-derived default
// of 10 centered intervals covering ~20% of the trace, each preceded by
// two interval-lengths of warm-up. The heavy warm-up matters: intervals
// restore exact architectural state from checkpoints but start with
// cold caches and predictors, and the cold-start bias decays only over
// ~100k+ instructions on cache-bound proxies (mcf). With warm-up =
// 2x length the mid-budget error is <4% on compute-bound proxies (with
// length/4 it was >30%); streaming proxies keep a structural cold-start
// bias no warm-up length can remove — see EXPERIMENTS.md
// ("Sampled-budget methodology") for the measured L2-saturation trigger.
func (r *Runner) sampSpec() sampling.Spec {
	if s := r.opt.Sample; s.Auto || s.Count > 0 {
		return s
	}
	l := r.opt.Budget / 50
	if l < 500 {
		l = 500
	}
	if l > 1_000_000 {
		l = 1_000_000
	}
	// At tiny (test) budgets the 500-entry floor would overflow the
	// trace; cap the ten intervals at half the budget so the plan
	// always fits.
	if fit := r.opt.Budget / 20; l > fit {
		l = fit
	}
	if l < 1 {
		l = 1
	}
	return sampling.Spec{Count: 10, Len: int(l), Warmup: int(2 * l)}
}

// SampErrRuns declares the full-trace reference runs: all five models.
func SampErrRuns(r *Runner) []RunSpec {
	specs := make([]RunSpec, 0, len(sampErrModels))
	for _, m := range sampErrModels {
		specs = append(specs, modelSpec(m))
	}
	return r.suite(specs...)
}

// SampErr validates the sampling methodology (paper §V): for every
// benchmark and model, the full-budget IPC is compared against the
// weighted sampled estimate, and the signed error is tabulated. The
// sampled runs reuse the runner's cached traces (and, when
// Options.SampleCheckpoint is set, restore intervals from persisted
// checkpoints), so the marginal cost over the reference suite is the
// sampled intervals themselves.
func SampErr(r *Runner) (string, error) {
	spec := r.sampSpec()
	t := stats.NewTable(
		fmt.Sprintf("Sampled-vs-full IPC error, spec %s, budget %d", spec.String(), r.opt.Budget),
		"bench", "baseline", "nosq", "dmdp", "perfect", "fnf")
	// With Options.SampleWarm each benchmark gets a second, functionally
	// warmed row (suffix "+warm"): same intervals, but cache/TLB/predictor
	// tag state installed from the profiling pass before detailed
	// simulation. Rows where any interval fell back to a cold start
	// (missing/corrupt warm state) are marked with a trailing dagger: the
	// estimate is still correct, just less representative.
	warmModes := []bool{false}
	if r.opt.SampleWarm {
		warmModes = append(warmModes, true)
	}
	perModel := make([][][]float64, len(warmModes))
	for mi := range warmModes {
		perModel[mi] = make([][]float64, len(sampErrModels))
	}
	var share []float64
	daggered := false
	for _, b := range r.Benchmarks() {
		tr, err := r.Trace(b)
		if err != nil {
			continue // failure recorded; row omitted
		}
		key, _ := r.traceKey(b)
		for mi, warmed := range warmModes {
			label := b
			if warmed {
				label += "+warm"
			}
			cells := []string{label}
			errs := make([]float64, 0, len(sampErrModels))
			coldStarts := false
			for _, m := range sampErrModels {
				full, err := r.RunModel(b, m)
				if err != nil || full.IPC() == 0 {
					cells = nil
					break
				}
				out, err := sampling.Execute(r.ctx(), config.Default(m), sampling.Request{
					Spec: spec, Budget: r.opt.Budget, Jobs: r.jobs(),
					Checkpoint: r.opt.SampleCheckpoint, Store: r.opt.Cache,
					TraceKey: key, Trace: tr, Warm: warmed,
				})
				if err != nil {
					cells = nil
					break
				}
				if out.ColdStartIntervals > 0 {
					coldStarts = true
				}
				e := 100 * (out.Combined.WeightedIPC - full.IPC()) / full.IPC()
				errs = append(errs, e)
				cells = append(cells, fmt.Sprintf("%+.2f%%", e))
				if m == config.DMDP && !warmed {
					share = append(share,
						100*float64(out.Combined.TotalInstructions)/float64(len(tr.Entries)))
				}
			}
			if cells == nil {
				continue // failure recorded; row omitted
			}
			if coldStarts {
				cells[0] += " †"
				daggered = true
			}
			for i, e := range errs {
				perModel[mi][i] = append(perModel[mi][i], math.Abs(e))
			}
			t.Add(cells...)
		}
	}
	out := t.String()
	for mi, warmed := range warmModes {
		if warmed {
			out += "mean |error| (warmed):"
		} else {
			out += "mean |error|:"
		}
		for i, m := range sampErrModels {
			out += fmt.Sprintf(" %s %.2f%%", m, stats.Mean(perModel[mi][i]))
		}
		out += "\n"
	}
	out += fmt.Sprintf("sampled share: %.1f%% of the full trace (dmdp runs)\n", stats.Mean(share))
	if daggered {
		out += "† at least one interval cold-started (warm state missing or corrupt)\n"
	}
	return out, nil
}
