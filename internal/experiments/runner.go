// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment function renders the same rows/series
// the paper reports; cmd/experiments drives them all and EXPERIMENTS.md
// records paper-vs-measured values. Traces and simulation results are
// cached so experiments sharing runs (most of them share the four default
// model runs) do not repeat work.
package experiments

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/power"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

// Options configures a reproduction run.
type Options struct {
	// Budget is the instruction count simulated per proxy (the paper
	// uses 100M-instruction SimPoint intervals; our stationary proxies
	// converge much faster).
	Budget int64
	// Benchmarks restricts the suite (default: all 21).
	Benchmarks []string
	// Parallel runs benchmarks concurrently (deterministic results;
	// scheduling only affects wall clock).
	Parallel bool
}

// DefaultOptions runs the full suite at 300k instructions per proxy.
func DefaultOptions() Options { return Options{Budget: 300_000, Parallel: true} }

// runResult caches one (benchmark, label) simulation outcome. Failures
// are cached too (negative caching): a deterministic failure would fail
// again, so experiments sharing the run all see the same error without
// re-simulating — and without consuming the retry a second time.
type runResult struct {
	st  *core.Stats
	err error
}

// Runner caches traces and simulation results across experiments.
type Runner struct {
	opt Options

	mu       sync.Mutex
	traces   map[string]*trace.Trace
	results  map[string]runResult
	failures []Failure
}

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	if opt.Budget <= 0 {
		opt.Budget = DefaultOptions().Budget
	}
	if len(opt.Benchmarks) == 0 {
		opt.Benchmarks = workload.Names()
	}
	return &Runner{
		opt:     opt,
		traces:  make(map[string]*trace.Trace),
		results: make(map[string]runResult),
	}
}

// Benchmarks returns the active suite.
func (r *Runner) Benchmarks() []string { return r.opt.Benchmarks }

func (r *Runner) intBenchmarks() []string { return r.filterClass(workload.Int) }
func (r *Runner) fpBenchmarks() []string  { return r.filterClass(workload.Float) }

func (r *Runner) filterClass(c workload.Class) []string {
	var out []string
	for _, n := range r.opt.Benchmarks {
		if s, ok := workload.Get(n); ok && s.Class == c {
			out = append(out, n)
		}
	}
	return out
}

// Trace returns (building and caching) the proxy's analyzed trace.
func (r *Runner) Trace(name string) (*trace.Trace, error) {
	r.mu.Lock()
	tr, ok := r.traces[name]
	r.mu.Unlock()
	if ok {
		return tr, nil
	}
	s, ok := workload.Get(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	tr, err := s.BuildTrace(r.opt.Budget)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.traces[name] = tr
	r.mu.Unlock()
	return tr, nil
}

// Run simulates the benchmark under cfg, caching by (benchmark, label).
// A failed run (error or panic) is retried once with the pipeline tracer
// attached; if it fails again the failure is cached and recorded (see
// Failures) so the rest of the suite proceeds without it.
func (r *Runner) Run(name string, cfg config.Config, label string) (*core.Stats, error) {
	key := name + "/" + label
	r.mu.Lock()
	res, ok := r.results[key]
	r.mu.Unlock()
	if ok {
		return res.st, res.err
	}
	tr, err := r.Trace(name)
	if err != nil {
		wrapped := fmt.Errorf("experiments: %s (%s): %w", name, label, err)
		r.cacheResult(key, runResult{err: wrapped})
		r.recordFailure(Failure{Bench: name, Label: label, Err: err})
		return nil, wrapped
	}
	st, runErr, panicked := simulate(cfg, tr, false)
	retried := false
	if runErr != nil {
		// Retry once, tracer attached: a transient failure recovers, a
		// deterministic one is declared failed with diagnostics.
		retried = true
		st, runErr, panicked = simulate(cfg, tr, true)
	}
	if runErr != nil {
		wrapped := fmt.Errorf("experiments: %s (%s): %w", name, label, runErr)
		r.cacheResult(key, runResult{err: wrapped})
		r.recordFailure(Failure{
			Bench: name, Label: label, Err: runErr,
			Panicked: panicked, Retried: retried,
			Diagnostic: diagnosticFor(runErr),
		})
		return nil, wrapped
	}
	r.cacheResult(key, runResult{st: st})
	return st, nil
}

func (r *Runner) cacheResult(key string, res runResult) {
	r.mu.Lock()
	r.results[key] = res
	r.mu.Unlock()
}

// simulate builds a core and runs it to completion, converting panics
// into errors so one corrupted benchmark cannot take down the suite.
func simulate(cfg config.Config, tr *trace.Trace, withTracer bool) (st *core.Stats, err error, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			st = nil
			err = fmt.Errorf("panic: %v\n%s", rec, trimStack(debug.Stack()))
			panicked = true
		}
	}()
	c, err := core.New(cfg, tr)
	if err != nil {
		return nil, err, false
	}
	if withTracer {
		c.AttachTracer(64)
	}
	st, err = c.Run()
	return st, err, false
}

// trimStack keeps the top frames of a panic stack — enough to locate the
// fault without drowning the failure table.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimSpace(string(stack)), "\n")
	const keep = 13 // goroutine header + 6 frames (2 lines each)
	if len(lines) > keep {
		lines = append(lines[:keep], "...")
	}
	return strings.Join(lines, "\n")
}

// RunModel simulates under the default configuration for a model.
func (r *Runner) RunModel(name string, m config.Model) (*core.Stats, error) {
	return r.Run(name, config.Default(m), m.String())
}

// Prefetch warms the trace and default-model caches, in parallel when
// configured. Results remain fully deterministic. Individual failures do
// not abort the warm-up: they are negatively cached and recorded (see
// Failures), and the experiments that wanted those runs skip them.
func (r *Runner) Prefetch() error {
	if !r.opt.Parallel {
		return nil
	}
	type job struct {
		bench string
		model config.Model
	}
	var jobs []job
	for _, b := range r.opt.Benchmarks {
		for _, m := range []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect} {
			jobs = append(jobs, job{b, m})
		}
	}
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.RunModel(j.bench, j.model)
		}(j)
	}
	wg.Wait()
	return nil
}

// Energy evaluates the power model for a cached run.
func (r *Runner) Energy(name string, m config.Model) (power.Result, error) {
	st, err := r.RunModel(name, m)
	if err != nil {
		return power.Result{}, err
	}
	return power.Compute(st, power.DefaultParams()), nil
}

// Experiment identifies one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Figure 2: NoSQ load instruction distribution", Fig2},
		{"fig3", "Figure 3: delayed vs bypassing load execution time (NoSQ)", Fig3},
		{"fig5", "Figure 5: low-confidence load prediction outcomes (DMDP)", Fig5},
		{"fig12", "Figure 12: speedup over the baseline", Fig12},
		{"fig14", "Figure 14: store buffer size sweep (DMDP)", Fig14},
		{"fig15", "Figure 15: EDP of DMDP normalized to NoSQ", Fig15},
		{"tab4", "Table IV: average execution time of all loads", TableIV},
		{"tab5", "Table V: average execution time of low-confidence loads", TableV},
		{"tab6", "Table VI: memory dependence mispredictions (MPKI)", TableVI},
		{"tab7", "Table VII: re-execution stall cycles per 1k instructions", TableVII},
		{"alt-issue4", "§VI-g: 4-issue width", AltIssue4},
		{"alt-rob512", "§VI-g: 512-entry ROB", AltROB512},
		{"alt-rmo", "§VI-g: RMO consistency", AltRMO},
		{"alt-prf160", "§VI-f: halved physical register file", AltPRF160},
		{"abl-silent", "Ablation: silent-store-aware predictor update (§VI-a)", AblSilentPolicy},
		{"abl-biased", "Ablation: biased vs balanced confidence (§IV-E)", AblBiasedConfidence},
		{"abl-tage", "Ablation: TAGE-like store distance predictor (§VII)", AblTAGE},
		{"abl-coalesce", "Ablation: store coalescing (§V)", AblCoalescing},
		{"abl-inval", "Ablation: remote invalidation traffic (§IV-F)", AblInvalidations},
		{"alt-fnf", "Alt: Fire-and-Forget comparison (§VII)", AltFnF},
		{"abl-prefetch", "Ablation: next-line L1 prefetcher", AblPrefetch},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
