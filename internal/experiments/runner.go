// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment function renders the same rows/series
// the paper reports; cmd/experiments drives them all and EXPERIMENTS.md
// records paper-vs-measured values. Traces and simulation results are
// cached so experiments sharing runs (most of them share the four default
// model runs) do not repeat work. Results are keyed by the configuration's
// content digest, not by label, so two experiments that describe the same
// machine under different names share one simulation.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/power"
	"dmdp/internal/retry"
	"dmdp/internal/sampling"
	"dmdp/internal/sched"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

// Options configures a reproduction run.
type Options struct {
	// Budget is the instruction count simulated per proxy (the paper
	// uses 100M-instruction SimPoint intervals; our stationary proxies
	// converge much faster).
	Budget int64
	// Benchmarks restricts the suite (default: all 21).
	Benchmarks []string
	// Parallel runs benchmarks concurrently (deterministic results;
	// scheduling only affects wall clock).
	Parallel bool
	// Jobs is the worker-pool width for parallel warm-up (0 =
	// GOMAXPROCS). Ignored when Parallel is false.
	Jobs int
	// Cache is the persistent artifact store (nil = in-memory caching
	// only). Lookups go memory -> disk -> simulate; results of failed
	// or fault-injected runs are never persisted.
	Cache *artifact.Store
	// Context, when set, bounds every run the runner starts (wall-clock
	// -timeout on the CLIs, per-service shutdown in daemons): once it is
	// done, in-flight simulations abort with a structured canceled error
	// and pooled warm-ups stop claiming new work. Nil means no bound.
	Context context.Context
	// Retry is the transient-failure policy for simulations (zero value:
	// DefaultRetry — one immediate-ish retry with the tracer attached).
	Retry retry.Policy
	// Sample overrides the samp-err experiment's sampling spec (zero
	// value: a budget-derived default, see Runner.sampSpec).
	Sample sampling.Spec
	// SampleCheckpoint persists/restores sampling checkpoints and plans
	// in Cache during sampled runs.
	SampleCheckpoint bool
	// SampleWarm adds functionally-warmed rows to the samp-err
	// experiment: each benchmark is sampled twice, cold-start (the
	// paper's checkpoint semantics) and with cache/TLB/predictor tag
	// state installed from the profiling pass.
	SampleWarm bool
}

// DefaultRetry preserves the historical retry-once behavior with the
// shared backoff machinery: 2 attempts, a short jittered pause between
// them (deterministically seeded), context-aware.
func DefaultRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 50 * time.Millisecond, Multiplier: 2, Jitter: 1, Seed: 1}
}

// DefaultOptions runs the full suite at 300k instructions per proxy.
func DefaultOptions() Options { return Options{Budget: 300_000, Parallel: true} }

// RunSpec names one simulation an experiment needs: a benchmark, the
// machine configuration, and the display label its tables use. Two specs
// with equal (Bench, Cfg.Digest()) describe the same run regardless of
// label.
type RunSpec struct {
	Bench string
	Cfg   config.Config
	Label string
}

// runKey identifies a simulation in the result cache. Labels are
// display-only; the digest covers every Config field, so distinct
// machines never alias and identical machines always share.
type runKey struct {
	bench  string
	digest config.Digest
	budget int64
}

// runResult is one completed (or failed) simulation. Failures are cached
// too (negative caching): a deterministic failure would fail again, so
// experiments sharing the run all see the same error without
// re-simulating — and without consuming the retry a second time.
type runResult struct {
	st         *core.Stats
	err        error // bare cause; labels are attached per caller
	panicked   bool
	retried    bool
	canceled   bool // context cancellation, never negative-cached
	diagnostic string
}

// runCall is an in-flight or completed simulation (inline singleflight):
// the first caller executes, every later caller with the same key waits
// on wg and shares the result.
type runCall struct {
	wg  sync.WaitGroup
	res runResult
}

// traceCall is the singleflight slot for one proxy's trace build.
type traceCall struct {
	wg  sync.WaitGroup
	tr  *trace.Trace
	err error
}

// keyCall memoizes one benchmark's trace-store key (the SHA-256 of its
// generated source is not free to recompute per run).
type keyCall struct {
	once sync.Once
	key  artifact.Key
	ok   bool
}

// Runner caches traces and simulation results across experiments.
type Runner struct {
	opt  Options
	sims atomic.Int64 // actual core executions (not cache hits)

	mu       sync.Mutex
	traces   map[string]*traceCall
	calls    map[runKey]*runCall
	keys     map[string]*keyCall
	failures []Failure
}

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	if opt.Budget <= 0 {
		opt.Budget = DefaultOptions().Budget
	}
	if len(opt.Benchmarks) == 0 {
		opt.Benchmarks = workload.Names()
	}
	if opt.Retry.MaxAttempts == 0 {
		opt.Retry = DefaultRetry()
	}
	return &Runner{
		opt:    opt,
		traces: make(map[string]*traceCall),
		calls:  make(map[runKey]*runCall),
		keys:   make(map[string]*keyCall),
	}
}

// Cache returns the persistent store the runner was built with (nil when
// the cache is off).
func (r *Runner) Cache() *artifact.Store { return r.opt.Cache }

// ctx returns the runner's base context (never nil).
func (r *Runner) ctx() context.Context {
	if r.opt.Context != nil {
		return r.opt.Context
	}
	return context.Background()
}

// Sims returns the number of actual core executions so far (cache hits
// excluded) — the /statz gauge and the warm-cache test oracle.
func (r *Runner) Sims() int64 { return r.sims.Load() }

// traceKey returns the persistent trace-store key for a benchmark
// (ok=false for unknown names). Keys are memoized: the underlying source
// hash regenerates the proxy's assembly.
func (r *Runner) traceKey(name string) (artifact.Key, bool) {
	r.mu.Lock()
	c, ok := r.keys[name]
	if !ok {
		c = &keyCall{}
		r.keys[name] = c
	}
	r.mu.Unlock()
	c.once.Do(func() {
		if s, ok := workload.Get(name); ok {
			c.key = artifact.TraceKey(s.SourceHash(), r.opt.Budget)
			c.ok = true
		}
	})
	return c.key, c.ok
}

// Benchmarks returns the active suite.
func (r *Runner) Benchmarks() []string { return r.opt.Benchmarks }

func (r *Runner) intBenchmarks() []string { return r.filterClass(workload.Int) }
func (r *Runner) fpBenchmarks() []string  { return r.filterClass(workload.Float) }

func (r *Runner) filterClass(c workload.Class) []string {
	var out []string
	for _, n := range r.opt.Benchmarks {
		if s, ok := workload.Get(n); ok && s.Class == c {
			out = append(out, n)
		}
	}
	return out
}

// jobs returns the effective worker-pool width.
func (r *Runner) jobs() int {
	if !r.opt.Parallel {
		return 1
	}
	if r.opt.Jobs > 0 {
		return r.opt.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Trace returns (building and caching) the proxy's analyzed trace. Builds
// are deduplicated: concurrent callers for the same proxy share one
// build.
func (r *Runner) Trace(name string) (*trace.Trace, error) {
	r.mu.Lock()
	c, ok := r.traces[name]
	if ok {
		r.mu.Unlock()
		c.wg.Wait()
		return c.tr, c.err
	}
	c = &traceCall{}
	c.wg.Add(1)
	r.traces[name] = c
	r.mu.Unlock()

	if s, ok := workload.Get(name); ok {
		key, kok := r.traceKey(name)
		if kok {
			if tr, hit := r.opt.Cache.LoadTrace(key); hit {
				c.tr = tr
			}
		}
		if c.tr == nil {
			// Builds poll the runner's base context: a daemon drain or
			// deadline aborts a multi-minute 100M-entry emulation mid-way
			// instead of running it to completion first.
			c.tr, c.err = s.BuildTraceCtx(r.ctx(), r.opt.Budget)
			if c.err == nil && kok {
				r.opt.Cache.StoreTrace(key, c.tr)
			}
		}
	} else {
		c.err = fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	c.wg.Done()
	return c.tr, c.err
}

// traceLen returns the entry count of an already-built trace (0 when the
// build failed or never ran). Used for longest-trace-first scheduling.
func (r *Runner) traceLen(name string) int {
	r.mu.Lock()
	c, ok := r.traces[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	c.wg.Wait()
	if c.tr == nil {
		return 0
	}
	return len(c.tr.Entries)
}

// Run simulates the benchmark under cfg, caching by (benchmark, config
// digest, budget) — the label only names the run in tables and failure
// rows. Concurrent callers requesting the same machine share one
// simulation. A failed run (error or panic) is retried under the
// runner's retry policy with the pipeline tracer attached; if it keeps
// failing the failure is cached and recorded (see Failures) so the rest
// of the suite proceeds without it.
func (r *Runner) Run(name string, cfg config.Config, label string) (*core.Stats, error) {
	return r.RunCtx(r.ctx(), name, cfg, label)
}

// RunCtx is Run bounded by ctx: the executing simulation aborts with a
// structured canceled error when ctx fires. Cancellations are delivered
// to every waiter sharing the call but are NOT negatively cached — the
// same machine can succeed under a longer deadline, so the next request
// re-executes. Concurrent callers still share one in-flight simulation
// (the first caller's context governs it; attached callers inherit the
// outcome).
func (r *Runner) RunCtx(ctx context.Context, name string, cfg config.Config, label string) (*core.Stats, error) {
	key := runKey{bench: name, digest: cfg.Digest(), budget: r.opt.Budget}
	r.mu.Lock()
	c, ok := r.calls[key]
	if ok {
		r.mu.Unlock()
		c.wg.Wait()
		return r.deliver(name, label, c.res)
	}
	c = &runCall{}
	c.wg.Add(1)
	r.calls[key] = c
	r.mu.Unlock()

	c.res = r.execute(ctx, name, cfg, label)
	if c.res.canceled {
		// A cancellation is a scheduling outcome, not a property of the
		// machine: evict the negative entry so a later request (longer
		// deadline, post-drain restart) simulates afresh.
		r.mu.Lock()
		if r.calls[key] == c {
			delete(r.calls, key)
		}
		r.mu.Unlock()
	}
	c.wg.Done()
	return r.deliver(name, label, c.res)
}

// execute performs the out-of-memory-cache simulation: persistent result
// store first (a hit skips even the trace build; in verify mode the hit
// is re-simulated and compared), then trace build + run under the retry
// policy (later attempts carry the pipeline tracer). Fault-injected
// configurations and failed runs are never persisted.
func (r *Runner) execute(ctx context.Context, name string, cfg config.Config, label string) runResult {
	resultKey, keyed := r.traceKey(name)
	persistable := keyed && !cfg.Faults.Enabled()
	if persistable {
		resultKey = artifact.ResultKey(resultKey, cfg.Digest(), r.opt.Budget)
		if st, path, hit := r.opt.Cache.LoadStats(resultKey); hit {
			if !r.opt.Cache.VerifyEnabled() {
				return runResult{st: st}
			}
			return r.verifyHit(ctx, name, label, cfg, resultKey, path, st)
		}
	}
	tr, err := r.Trace(name)
	if err != nil {
		// A canceled build is a scheduling outcome like a canceled run:
		// flag it so RunCtx evicts the negative cache entry and a later
		// request (longer deadline) rebuilds.
		return runResult{err: err, canceled: IsCanceled(err)}
	}
	var st *core.Stats
	var runErr error
	var panicked bool
	attempts := 0
	doErr := r.opt.Retry.Do(ctx, func(attempt int) error {
		attempts = attempt
		r.sims.Add(1)
		// Later attempts run with the tracer attached: a transient
		// failure recovers, a deterministic one is declared failed with
		// stage-timing diagnostics.
		st, runErr, panicked = simulate(ctx, cfg, tr, attempt > 1)
		if runErr == nil {
			return nil
		}
		if core.Canceled(runErr) {
			return retry.Permanent(runErr) // deadline hit: retrying cannot help
		}
		return runErr
	})
	retried := attempts > 1
	if runErr == nil && doErr != nil {
		// Cancelled before the first attempt started.
		runErr = doErr
	}
	if runErr != nil {
		return runResult{
			err: runErr, panicked: panicked, retried: retried,
			canceled:   core.Canceled(runErr) || ctx.Err() != nil,
			diagnostic: diagnosticFor(runErr),
		}
	}
	if persistable {
		r.opt.Cache.StoreStats(resultKey, st)
	}
	return runResult{st: st}
}

// verifyHit is the stale-artifact oracle (-cache verify): re-simulate a
// result-store hit from scratch and compare canonical encodings. A
// mismatch is a hard failure with a structured diagnostic — the cached
// entry is stale or the simulator is nondeterministic. On success the
// cached stats are returned (not the fresh ones), so verify-mode output
// is byte-identical to a plain warm run.
func (r *Runner) verifyHit(ctx context.Context, name, label string, cfg config.Config, key artifact.Key, path string, cached *core.Stats) runResult {
	tr, err := r.Trace(name)
	if err != nil {
		return runResult{err: err}
	}
	r.sims.Add(1)
	fresh, runErr, panicked := simulate(ctx, cfg, tr, false)
	if runErr != nil {
		return runResult{
			err: runErr, panicked: panicked,
			canceled:   core.Canceled(runErr),
			diagnostic: diagnosticFor(runErr),
		}
	}
	cb, fb := cached.MarshalCanonical(), fresh.MarshalCanonical()
	if !bytes.Equal(cb, fb) {
		verr := artifact.NewVerifyError(key, path, name, label, cb, fb)
		return runResult{err: verr, diagnostic: verr.Error()}
	}
	return runResult{st: cached}
}

// deliver converts a cached result into this caller's view: successes
// pass through, failures are recorded under the caller's label (each
// labelled use of a broken run gets its own failure row, deduplicated).
func (r *Runner) deliver(name, label string, res runResult) (*core.Stats, error) {
	if res.err != nil {
		r.recordFailure(Failure{
			Bench: name, Label: label, Err: res.err,
			Panicked: res.panicked, Retried: res.retried,
			Diagnostic: res.diagnostic,
		})
		return nil, fmt.Errorf("experiments: %s (%s): %w", name, label, res.err)
	}
	return res.st, nil
}

// progressKey carries a per-run progress tap in a context (see
// WithProgress).
type progressKey struct{}

// ProgressFn observes a running simulation: retired instructions and
// elapsed cycles, reported at the core's cancellation-poll cadence.
type ProgressFn = func(retired, cycles int64)

// WithProgress returns a context carrying a progress tap: every
// simulation the runner starts under the returned context reports
// (retired, cycles) periodically from the simulating goroutine. Callers
// that serve multiple jobs attach one tap per job context, so
// concurrent runs never interleave on a shared sink.
func WithProgress(ctx context.Context, fn ProgressFn) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// simulate builds a core and runs it to completion under ctx, converting
// panics into errors so one corrupted benchmark cannot take down the
// suite.
func simulate(ctx context.Context, cfg config.Config, tr *trace.Trace, withTracer bool) (st *core.Stats, err error, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			st = nil
			err = fmt.Errorf("panic: %v\n%s", rec, trimStack(debug.Stack()))
			panicked = true
		}
	}()
	c, err := core.New(cfg, tr)
	if err != nil {
		return nil, err, false
	}
	if fn, ok := ctx.Value(progressKey{}).(ProgressFn); ok && fn != nil {
		c.SetProgressFn(fn)
	}
	if withTracer {
		c.AttachTracer(64)
	}
	st, err = c.RunContext(ctx)
	return st, err, false
}

// trimStack keeps the top frames of a panic stack — enough to locate the
// fault without drowning the failure table.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimSpace(string(stack)), "\n")
	const keep = 13 // goroutine header + 6 frames (2 lines each)
	if len(lines) > keep {
		lines = append(lines[:keep], "...")
	}
	return strings.Join(lines, "\n")
}

// RunModel simulates under the default configuration for a model.
func (r *Runner) RunModel(name string, m config.Model) (*core.Stats, error) {
	return r.Run(name, config.Default(m), m.String())
}

// suite crosses the given labelled configurations with every active
// benchmark (benchmark-major order, so one proxy's runs are adjacent).
func (r *Runner) suite(specs ...RunSpec) []RunSpec {
	out := make([]RunSpec, 0, len(specs)*len(r.opt.Benchmarks))
	for _, b := range r.opt.Benchmarks {
		for _, s := range specs {
			s.Bench = b
			out = append(out, s)
		}
	}
	return out
}

// modelSpec is the default-configuration spec for a model.
func modelSpec(m config.Model) RunSpec {
	return RunSpec{Cfg: config.Default(m), Label: m.String()}
}

// WarmUp executes every run the selected experiments declare, on a
// worker pool sized by Options (Jobs, or GOMAXPROCS; 1 when Parallel is
// off). The union of run sets is deduplicated by configuration digest,
// traces are built first, and specs are scheduled longest-trace-first so
// the slowest proxies never straggle at the tail. Rendering the selected
// experiments afterwards hits only warm cache. Individual failures do
// not abort the warm-up: they are negatively cached and recorded (see
// Failures), and an aggregate count is returned as an error.
func (r *Runner) WarmUp(selected ...Experiment) error {
	var specs []RunSpec
	for _, e := range selected {
		if e.Runs != nil {
			specs = append(specs, e.Runs(r)...)
		}
	}
	return r.warm(specs)
}

// Prefetch warms the trace and default-model caches (the runs most
// experiments share) on the worker pool. Results remain fully
// deterministic. Returns an aggregate error when any run failed.
func (r *Runner) Prefetch() error {
	return r.warm(r.suite(
		modelSpec(config.Baseline), modelSpec(config.NoSQ),
		modelSpec(config.DMDP), modelSpec(config.Perfect),
	))
}

// warm deduplicates specs by run key (first-encounter label wins, which
// keeps failure rows deterministic), builds the traces, then executes
// the runs on the pool, longest trace first.
func (r *Runner) warm(specs []RunSpec) error {
	seen := make(map[runKey]bool, len(specs))
	uniq := specs[:0]
	var benches []string
	seenBench := make(map[string]bool)
	for _, s := range specs {
		key := runKey{bench: s.Bench, digest: s.Cfg.Digest(), budget: r.opt.Budget}
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, s)
		if !seenBench[s.Bench] {
			seenBench[s.Bench] = true
			benches = append(benches, s.Bench)
		}
	}
	if len(uniq) == 0 {
		return nil
	}
	ctx := r.ctx()

	// Traces first: they gate every run of their proxy and their lengths
	// drive the schedule.
	r.forEachPooled(ctx, len(benches), func(i int) {
		r.Trace(benches[i])
	})

	// Longest trace first; stable sort keeps first-encounter order for
	// equal lengths, so the schedule is deterministic.
	sort.SliceStable(uniq, func(i, j int) bool {
		return r.traceLen(uniq[i].Bench) > r.traceLen(uniq[j].Bench)
	})

	var failed atomic.Int64
	started := r.forEachPooled(ctx, len(uniq), func(i int) {
		if _, err := r.RunCtx(ctx, uniq[i].Bench, uniq[i].Cfg, uniq[i].Label); err != nil {
			failed.Add(1)
		}
	})
	if skipped := len(uniq) - started; skipped > 0 {
		return fmt.Errorf("experiments: warm-up cancelled (%v): %d of %d runs never started, %d failed (see the failure table)",
			ctx.Err(), skipped, len(uniq), failed.Load())
	}
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("experiments: %d of %d warm-up runs failed (see the failure table)", n, len(uniq))
	}
	return nil
}

// forEachPooled runs f(0..n-1) on the runner's worker pool, claiming no
// new items once ctx is done; returns the number of items started.
func (r *Runner) forEachPooled(ctx context.Context, n int, f func(i int)) int {
	return sched.PoolCtx(ctx, r.jobs(), n, f)
}

// Pool runs f(0..n-1) on an atomic-counter worker pool of the given
// width (jobs <= 1 runs serially on the caller's goroutine). It is the
// scheduling primitive shared with other harnesses (cmd/difftest):
// work items are claimed by index, so callers that write results into
// slot i get schedule-independent output. It now lives in
// internal/sched (the reusable scheduling core); this forwarder keeps
// the historical call sites.
func Pool(jobs, n int, f func(i int)) { sched.Pool(jobs, n, f) }

// Energy evaluates the power model for a cached run.
func (r *Runner) Energy(name string, m config.Model) (power.Result, error) {
	st, err := r.RunModel(name, m)
	if err != nil {
		return power.Result{}, err
	}
	return power.Compute(st, power.DefaultParams()), nil
}

// Experiment identifies one reproducible artifact. Runs declares the
// experiment's full simulation set up front so the runner can execute
// the union across experiments on the worker pool before any rendering
// starts; Run then renders from warm cache.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (string, error)
	Runs  func(r *Runner) []RunSpec
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Figure 2: NoSQ load instruction distribution", Fig2, Fig2Runs},
		{"fig3", "Figure 3: delayed vs bypassing load execution time (NoSQ)", Fig3, Fig3Runs},
		{"fig5", "Figure 5: low-confidence load prediction outcomes (DMDP)", Fig5, Fig5Runs},
		{"fig12", "Figure 12: speedup over the baseline", Fig12, Fig12Runs},
		{"fig14", "Figure 14: store buffer size sweep (DMDP)", Fig14, Fig14Runs},
		{"fig15", "Figure 15: EDP of DMDP normalized to NoSQ", Fig15, Fig15Runs},
		{"tab4", "Table IV: average execution time of all loads", TableIV, TableIVRuns},
		{"tab5", "Table V: average execution time of low-confidence loads", TableV, TableVRuns},
		{"tab6", "Table VI: memory dependence mispredictions (MPKI)", TableVI, TableVIRuns},
		{"tab7", "Table VII: re-execution stall cycles per 1k instructions", TableVII, TableVIIRuns},
		{"alt-issue4", "§VI-g: 4-issue width", AltIssue4, AltIssue4Runs},
		{"alt-rob512", "§VI-g: 512-entry ROB", AltROB512, AltROB512Runs},
		{"alt-rmo", "§VI-g: RMO consistency", AltRMO, AltRMORuns},
		{"alt-prf160", "§VI-f: halved physical register file", AltPRF160, AltPRF160Runs},
		{"abl-silent", "Ablation: silent-store-aware predictor update (§VI-a)", AblSilentPolicy, AblSilentPolicyRuns},
		{"abl-biased", "Ablation: biased vs balanced confidence (§IV-E)", AblBiasedConfidence, AblBiasedConfidenceRuns},
		{"abl-tage", "Ablation: TAGE-like store distance predictor (§VII)", AblTAGE, AblTAGERuns},
		{"abl-coalesce", "Ablation: store coalescing (§V)", AblCoalescing, AblCoalescingRuns},
		{"abl-inval", "Ablation: remote invalidation traffic (§IV-F)", AblInvalidations, AblInvalidationsRuns},
		{"alt-fnf", "Alt: Fire-and-Forget comparison (§VII)", AltFnF, AltFnFRuns},
		{"abl-prefetch", "Ablation: next-line L1 prefetcher", AblPrefetch, AblPrefetchRuns},
		{"samp-err", "Methodology: sampled-vs-full IPC error (§V)", SampErr, SampErrRuns},
		{"mc-ipc", "Multicore: aggregate IPC scaling over a shared L2", McIPC, McIPCRuns},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
