package experiments

import (
	"fmt"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/stats"
	"dmdp/internal/trace"
)

// mcCoreCounts are the machine sizes the multicore table sweeps.
var mcCoreCounts = []int{1, 2, 4}

// mcBenchCap bounds the multicore table to the first few proxies: each
// cell is an uncached N-core machine run (machine results deliberately
// stay outside the single-core artifact store), so the table pays
// cores × benches full simulations every time.
const mcBenchCap = 6

func mcBenchmarks(r *Runner) []string {
	b := r.Benchmarks()
	if len(b) > mcBenchCap {
		b = b[:mcBenchCap]
	}
	return b
}

// McIPCRuns declares no cached runs: every cell is a multicore machine
// simulation executed inline by McIPC (the core.Stats result cache only
// understands single-core runs).
func McIPCRuns(r *Runner) []RunSpec { return nil }

// mcRun executes one N-core machine with the workload trace replicated
// on every core: a homogeneous-rate contention study over the shared
// L2 (timing only — the semantic coupling layer is for litmus programs
// whose addresses are independent of shared data).
func mcRun(tr *trace.Trace, model config.Model, n int) (*core.MachineStats, error) {
	cfg := core.DefaultMachineConfig(n, model, core.MemTSO)
	cfg.Semantics = false
	// Litmus-grade interleaving jitter is noise for an IPC study: run
	// deterministic lockstep (start skew only).
	cfg.StallProb = 0
	traces := make([]*trace.Trace, n)
	for i := range traces {
		traces[i] = tr
	}
	m, err := core.NewMachine(cfg, traces)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// McIPC renders the multicore scaling table: aggregate IPC of 1, 2 and
// 4 identical cores over a shared L2, baseline vs DMDP. Replicating the
// same address stream is the worst case for coherence (every store
// invalidates every remote L1 and stamps its T-SSBF), so per-core IPC
// degrades with the core count while DMDP's margin over the baseline
// persists.
func McIPC(r *Runner) (string, error) {
	t := stats.NewTable("Multicore: aggregate IPC over a shared L2 (same trace per core)",
		"bench", "base 1c", "base 2c", "base 4c", "dmdp 1c", "dmdp 2c", "dmdp 4c", "dmdp stamps 4c")
	for _, b := range mcBenchmarks(r) {
		tr, err := r.Trace(b)
		if err != nil {
			continue // trace build failure already recorded by the runner
		}
		row := []any{b}
		var stamps int64
		ok := true
		for _, model := range []config.Model{config.Baseline, config.DMDP} {
			for _, n := range mcCoreCounts {
				st, err := mcRun(tr, model, n)
				if err != nil {
					ok = false
					break
				}
				row = append(row, st.IPC())
				if model == config.DMDP && n == mcCoreCounts[len(mcCoreCounts)-1] {
					stamps = st.RemoteStamps
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		row = append(row, fmt.Sprintf("%d", stamps))
		t.AddF(3, row...)
	}
	out := t.String()
	out += "aggregate IPC; remote T-SSBF sentinel stamps shown for the 4-core DMDP machine\n"
	out += "(replicated traces share read misses in the L2 — superlinear baseline scaling —\n" +
		" while every store invalidates all remote L1s and stamps their T-SSBFs)\n"
	return out, nil
}
