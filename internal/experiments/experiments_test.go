package experiments

import (
	"strings"
	"testing"

	"dmdp/internal/config"
)

// smallRunner uses a tiny budget and a benchmark subset so every
// experiment can execute quickly in tests.
func smallRunner() *Runner {
	return NewRunner(Options{
		Budget:     4000,
		Benchmarks: []string{"perl", "hmmer", "milc", "wrf"},
		Parallel:   false,
	})
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	r := smallRunner()
	for _, e := range All() {
		out, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if !strings.Contains(out, "perl") && !strings.Contains(out, "dmdp") {
			t.Errorf("%s: output lacks benchmark rows:\n%s", e.ID, out)
		}
		// Every benchmark in the subset appears.
		for _, b := range r.Benchmarks() {
			if e.ID == "alt-prf160" {
				continue // summary-only output
			}
			if !strings.Contains(out, b) {
				t.Errorf("%s: missing row for %s", e.ID, b)
			}
		}
	}
}

// TestSampErrWarmRows: with SampleWarm the samp-err table carries a
// "+warm" row per benchmark, a separate warmed mean-|error| footer, and
// no cold-start daggers (the materialized path always reconstructs warm
// state).
func TestSampErrWarmRows(t *testing.T) {
	r := NewRunner(Options{
		Budget:     20_000,
		Benchmarks: []string{"gcc", "mcf"},
		Parallel:   false,
		SampleWarm: true,
	})
	out, err := SampErr(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gcc+warm", "mcf+warm", "mean |error| (warmed):", "mean |error|:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("samp-err output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "†") {
		t.Fatalf("materialized samp-err rows claim cold starts:\n%s", out)
	}
}

func TestRunnerCachesResults(t *testing.T) {
	r := smallRunner()
	a, err := r.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("expected pointer-identical cached result")
	}
}

func TestRunnerUnknownBenchmark(t *testing.T) {
	r := smallRunner()
	if _, err := r.Trace("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs length %d vs All %d", len(ids), len(All()))
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("ByID accepted bogus id")
	}
}

func TestBenchmarkClassSplit(t *testing.T) {
	r := smallRunner()
	ints := r.intBenchmarks()
	fps := r.fpBenchmarks()
	if len(ints)+len(fps) != len(r.Benchmarks()) {
		t.Fatal("class split loses benchmarks")
	}
	for _, b := range ints {
		if isFP(r, b) {
			t.Errorf("%s misclassified as FP", b)
		}
	}
	for _, b := range fps {
		if !isFP(r, b) {
			t.Errorf("%s misclassified as Int", b)
		}
	}
}

func TestPrefetchParallelMatchesSerial(t *testing.T) {
	par := NewRunner(Options{Budget: 3000, Benchmarks: []string{"perl", "milc"}, Parallel: true})
	if err := par.Prefetch(); err != nil {
		t.Fatal(err)
	}
	ser := NewRunner(Options{Budget: 3000, Benchmarks: []string{"perl", "milc"}, Parallel: false})
	for _, b := range []string{"perl", "milc"} {
		for _, m := range []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect} {
			a, err := par.RunModel(b, m)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ser.RunModel(b, m)
			if err != nil {
				t.Fatal(err)
			}
			ac, sc := *a, *s
			ac.SimWallClockNS, sc.SimWallClockNS = 0, 0 // host timing may differ
			if ac != sc {
				t.Errorf("%s/%s: parallel and serial runs differ", b, m)
			}
		}
	}
}

// TestExperimentsByteIdenticalAcrossRuns renders every experiment twice
// with independent runners and requires byte-identical output. This is
// the regression guard for map-iteration-order bugs: any report that
// ranges over a Go map without a fixed key order will eventually differ
// between runs.
func TestExperimentsByteIdenticalAcrossRuns(t *testing.T) {
	render := func() map[string]string {
		r := smallRunner()
		out := make(map[string]string, len(All()))
		for _, e := range All() {
			s, err := e.Run(r)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out[e.ID] = s
		}
		return out
	}
	a, b := render(), render()
	for _, e := range All() {
		if a[e.ID] != b[e.ID] {
			t.Errorf("%s: output differs between two identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				e.ID, a[e.ID], b[e.ID])
		}
	}
}

// TestLabelIsDisplayOnly is the label-aliasing guard: results are keyed
// by configuration digest, so two different machines submitted under the
// same label must produce distinct cached results, and the same machine
// under two labels must share one simulation.
func TestLabelIsDisplayOnly(t *testing.T) {
	r := smallRunner()
	a, err := r.Run("perl", config.Default(config.DMDP), "dmdp")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("perl", config.Default(config.DMDP).WithStoreBuffer(16), "dmdp")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different configs under one label aliased to one cached run")
	}
	if a.Cycles == b.Cycles && a.SBFullStall == b.SBFullStall {
		t.Fatal("different machines produced identical stats; digest keying suspect")
	}
	c, err := r.Run("perl", config.Default(config.DMDP), "dmdp-alias")
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("identical configs under different labels must share one cached run")
	}
}

// TestWarmUpCoversAllRenders checks every experiment's Runs declaration:
// after a WarmUp over all experiments, rendering them must hit only warm
// cache (no further simulations).
func TestWarmUpCoversAllRenders(t *testing.T) {
	r := smallRunner()
	if err := r.WarmUp(All()...); err != nil {
		t.Fatal(err)
	}
	warm := r.sims.Load()
	for _, e := range All() {
		if e.Runs == nil {
			t.Errorf("%s: no Runs declaration", e.ID)
		}
		if _, err := e.Run(r); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	if got := r.sims.Load(); got != warm {
		t.Errorf("rendering simulated %d undeclared runs; every run must be declared in Runs()", got-warm)
	}
}

// TestDigestDedupAcrossExperiments: the sb32 point of fig14 and the
// prf320 points of alt-prf160 describe the default machines, so the
// digest-keyed cache must fold them into the shared default runs.
func TestDigestDedupAcrossExperiments(t *testing.T) {
	r := smallRunner()
	a, err := r.Run("perl", config.Default(config.DMDP).WithStoreBuffer(32), "dmdp-sb32")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dmdp-sb32 did not dedup against the default dmdp run")
	}
	if r.sims.Load() != 1 {
		t.Fatalf("expected 1 simulation, got %d", r.sims.Load())
	}
}

// TestParallelismDoesNotChangeOutput runs the reduced suite at -j 1 and
// -j 8 and requires byte-identical experiment output and an identical
// failure table: worker count and completion order must never leak into
// results.
func TestParallelismDoesNotChangeOutput(t *testing.T) {
	render := func(jobs int) (map[string]string, string) {
		r := NewRunner(Options{
			Budget:     4000,
			Benchmarks: []string{"perl", "hmmer", "milc", "wrf"},
			Parallel:   true,
			Jobs:       jobs,
		})
		if err := r.WarmUp(All()...); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(All()))
		for _, e := range All() {
			s, err := e.Run(r)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out[e.ID] = s
		}
		return out, r.FailureTable()
	}
	a, fa := render(1)
	b, fb := render(8)
	for _, e := range All() {
		if a[e.ID] != b[e.ID] {
			t.Errorf("%s: output differs between -j 1 and -j 8\n--- j1 ---\n%s\n--- j8 ---\n%s",
				e.ID, a[e.ID], b[e.ID])
		}
	}
	if fa != fb {
		t.Errorf("failure table differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", fa, fb)
	}
}

func TestDefaultOptionsFillIn(t *testing.T) {
	r := NewRunner(Options{})
	if r.opt.Budget != DefaultOptions().Budget {
		t.Fatal("budget not defaulted")
	}
	if len(r.Benchmarks()) != 21 {
		t.Fatal("benchmarks not defaulted")
	}
}
