package experiments

import (
	"strings"
	"testing"

	"dmdp/internal/config"
)

// smallRunner uses a tiny budget and a benchmark subset so every
// experiment can execute quickly in tests.
func smallRunner() *Runner {
	return NewRunner(Options{
		Budget:     4000,
		Benchmarks: []string{"perl", "hmmer", "milc", "wrf"},
		Parallel:   false,
	})
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	r := smallRunner()
	for _, e := range All() {
		out, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if !strings.Contains(out, "perl") && !strings.Contains(out, "dmdp") {
			t.Errorf("%s: output lacks benchmark rows:\n%s", e.ID, out)
		}
		// Every benchmark in the subset appears.
		for _, b := range r.Benchmarks() {
			if e.ID == "alt-prf160" {
				continue // summary-only output
			}
			if !strings.Contains(out, b) {
				t.Errorf("%s: missing row for %s", e.ID, b)
			}
		}
	}
}

func TestRunnerCachesResults(t *testing.T) {
	r := smallRunner()
	a, err := r.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("expected pointer-identical cached result")
	}
}

func TestRunnerUnknownBenchmark(t *testing.T) {
	r := smallRunner()
	if _, err := r.Trace("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs length %d vs All %d", len(ids), len(All()))
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("ByID accepted bogus id")
	}
}

func TestBenchmarkClassSplit(t *testing.T) {
	r := smallRunner()
	ints := r.intBenchmarks()
	fps := r.fpBenchmarks()
	if len(ints)+len(fps) != len(r.Benchmarks()) {
		t.Fatal("class split loses benchmarks")
	}
	for _, b := range ints {
		if isFP(r, b) {
			t.Errorf("%s misclassified as FP", b)
		}
	}
	for _, b := range fps {
		if !isFP(r, b) {
			t.Errorf("%s misclassified as Int", b)
		}
	}
}

func TestPrefetchParallelMatchesSerial(t *testing.T) {
	par := NewRunner(Options{Budget: 3000, Benchmarks: []string{"perl", "milc"}, Parallel: true})
	if err := par.Prefetch(); err != nil {
		t.Fatal(err)
	}
	ser := NewRunner(Options{Budget: 3000, Benchmarks: []string{"perl", "milc"}, Parallel: false})
	for _, b := range []string{"perl", "milc"} {
		for _, m := range []config.Model{config.Baseline, config.NoSQ, config.DMDP, config.Perfect} {
			a, err := par.RunModel(b, m)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ser.RunModel(b, m)
			if err != nil {
				t.Fatal(err)
			}
			ac, sc := *a, *s
			ac.SimWallClockNS, sc.SimWallClockNS = 0, 0 // host timing may differ
			if ac != sc {
				t.Errorf("%s/%s: parallel and serial runs differ", b, m)
			}
		}
	}
}

// TestExperimentsByteIdenticalAcrossRuns renders every experiment twice
// with independent runners and requires byte-identical output. This is
// the regression guard for map-iteration-order bugs: any report that
// ranges over a Go map without a fixed key order will eventually differ
// between runs.
func TestExperimentsByteIdenticalAcrossRuns(t *testing.T) {
	render := func() map[string]string {
		r := smallRunner()
		out := make(map[string]string, len(All()))
		for _, e := range All() {
			s, err := e.Run(r)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out[e.ID] = s
		}
		return out
	}
	a, b := render(), render()
	for _, e := range All() {
		if a[e.ID] != b[e.ID] {
			t.Errorf("%s: output differs between two identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				e.ID, a[e.ID], b[e.ID])
		}
	}
}

func TestDefaultOptionsFillIn(t *testing.T) {
	r := NewRunner(Options{})
	if r.opt.Budget != DefaultOptions().Budget {
		t.Fatal("budget not defaulted")
	}
	if len(r.Benchmarks()) != 21 {
		t.Fatal("benchmarks not defaulted")
	}
}
