package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dmdp/internal/config"
	"dmdp/internal/trace"
)

// TestCancelledRunNotNegativelyCached: a run cut off by its context
// fails with a structured canceled error, but the negative cache does
// not remember it — the same machine re-simulates and succeeds once the
// pressure is gone. (Deterministic failures, by contrast, stay cached:
// TestFailureNegativelyCached.)
func TestCancelledRunNotNegativelyCached(t *testing.T) {
	r := NewRunner(Options{Budget: 50_000, Benchmarks: []string{"hmmer"}, Parallel: false})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunCtx(ctx, "hmmer", config.Default(config.DMDP), "dmdp")
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !IsCanceled(err) {
		t.Fatalf("err=%v, want cancellation", err)
	}
	// The failure row is recorded (partial FailureTable support)...
	if fs := r.Failures(); len(fs) != 1 {
		t.Fatalf("failure rows: %+v", fs)
	}
	// ...but the result cache forgot it: the rerun simulates and succeeds.
	st, err := r.RunModel("hmmer", config.DMDP)
	if err != nil {
		t.Fatalf("rerun after cancellation failed: %v", err)
	}
	if st.Instructions == 0 {
		t.Fatal("rerun produced empty stats")
	}
}

// TestCancelledTraceBuildStructuredError: the emulator polls the
// runner's base context during trace builds, so a canceled runner
// aborts a build mid-way with a structured *trace.BuildCanceled error
// instead of emulating the full budget first — under the old code a
// drained daemon still paid the entire O(budget) emulation. The
// canceled build is evicted from the negative result cache exactly like
// a canceled run.
func TestCancelledTraceBuildStructuredError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Options{Budget: 200_000, Benchmarks: []string{"gcc"}, Parallel: false, Context: ctx})
	_, err := r.RunCtx(context.Background(), "gcc", config.Default(config.DMDP), "dmdp")
	if err == nil {
		t.Fatal("build under a canceled runner returned nil error")
	}
	var bc *trace.BuildCanceled
	if !errors.As(err, &bc) {
		t.Fatalf("err=%v, want a *trace.BuildCanceled cause", err)
	}
	if bc.Entries >= 200_000 {
		t.Fatalf("build ran to completion (%d entries) despite cancellation", bc.Entries)
	}
	if !IsCanceled(err) {
		t.Fatalf("structured build-cancel error must unwrap to a context error: %v", err)
	}
	r.mu.Lock()
	cached := len(r.calls)
	r.mu.Unlock()
	if cached != 0 {
		t.Fatal("canceled build was negatively cached")
	}
}

// TestWarmUpCancellation: cancelling mid-warm-up stops claiming new
// runs, surfaces an aggregate cancellation error, and leaves the runner
// usable for partial rendering.
func TestWarmUpCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r := NewRunner(Options{Budget: 300_000, Parallel: true, Jobs: 2, Context: ctx})
	err := r.Prefetch()
	if err == nil {
		t.Skip("host too fast: full prefetch beat the 50ms deadline")
	}
	if !strings.Contains(err.Error(), "cancelled") && !strings.Contains(err.Error(), "failed") {
		t.Fatalf("aggregate error does not mention cancellation: %v", err)
	}
	// The failure table renders (partial results path does not panic).
	_ = r.FailureTable()
}
