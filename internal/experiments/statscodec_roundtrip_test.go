package experiments

import (
	"bytes"
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
)

// TestStatsCanonicalRoundTripAllRuns is the cache-determinism oracle for
// the persistent result store: for every proxy × every model, the
// canonical Stats encoding must round-trip byte-identically
// (encode → decode → encode) and must be stable across repeated
// encodings of the same value. The encoder is map-free and fixed-order
// by construction (see core.MarshalCanonical), so any map-iteration or
// scheduling nondeterminism upstream would surface here as a byte
// difference between encodings of equal stats.
func TestStatsCanonicalRoundTripAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full proxy x model cross at a reduced budget")
	}
	models := []config.Model{
		config.Baseline, config.NoSQ, config.DMDP, config.Perfect, config.FnF,
	}
	r := NewRunner(Options{Budget: 3_000, Parallel: true})
	for _, bench := range r.Benchmarks() {
		for _, m := range models {
			st, err := r.RunModel(bench, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, m, err)
			}
			enc := st.MarshalCanonical()
			if again := st.MarshalCanonical(); !bytes.Equal(enc, again) {
				t.Fatalf("%s/%s: two encodings of the same stats differ", bench, m)
			}
			dec, err := core.UnmarshalCanonicalStats(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", bench, m, err)
			}
			if reenc := dec.MarshalCanonical(); !bytes.Equal(enc, reenc) {
				t.Fatalf("%s/%s: encode -> decode -> encode not byte-identical", bench, m)
			}
		}
	}
}
