package experiments

import (
	"fmt"
	"strings"

	"dmdp/internal/config"
	"dmdp/internal/stats"
)

// AltFnFRuns declares the Fire-and-Forget comparison's simulations.
func AltFnFRuns(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.Baseline), modelSpec(config.FnF),
		modelSpec(config.NoSQ), modelSpec(config.DMDP))
}

// AltFnF compares the three store-queue-free designs: NoSQ (load-side
// path-sensitive prediction), FnF (store-side, path-insensitive
// prediction) and DMDP. The paper chose NoSQ over Fire-and-Forget
// because "when FnF is predicting a store, the branches between the
// store and the dependent load are not considered" (§VII); this
// experiment quantifies the gap.
func AltFnF(r *Runner) (string, error) {
	t := stats.NewTable("Alt: Fire-and-Forget vs NoSQ vs DMDP (IPC vs baseline)",
		"bench", "fnf", "nosq", "dmdp", "fnf MPKI", "nosq MPKI")
	var rel []float64
	for _, b := range r.Benchmarks() {
		base, err := r.RunModel(b, config.Baseline)
		if err != nil {
			return "", err
		}
		fnf, err := r.RunModel(b, config.FnF)
		if err != nil {
			return "", err
		}
		nosq, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			return "", err
		}
		dmdp, err := r.RunModel(b, config.DMDP)
		if err != nil {
			return "", err
		}
		rel = append(rel, nosq.IPC()/fnf.IPC())
		t.AddF(3, b,
			fnf.IPC()/base.IPC(), nosq.IPC()/base.IPC(), dmdp.IPC()/base.IPC(),
			stats.F(fnf.MPKI(), 2), stats.F(nosq.MPKI(), 2))
	}
	var out strings.Builder
	out.WriteString(t.String())
	fmt.Fprintf(&out, "geomean nosq over fnf: %s (paper's rationale: store-side prediction is path-insensitive)\n",
		stats.Pct(stats.Geomean(rel)))
	return out.String(), nil
}
