package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"dmdp/internal/core"
)

// IsCanceled reports whether err is a cancellation outcome — either a
// structured core ErrCanceled SimError (deadline fired mid-simulation)
// or a bare context error (cancelled before the run started). Canceled
// runs are never negatively cached.
func IsCanceled(err error) bool {
	return core.Canceled(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Failure records one benchmark run the runner could not complete. The
// hardened runner isolates faults per (benchmark, label): a failed run is
// cached as failed (so no experiment re-triggers it), its row drops out
// of every table that wanted it, and the suite carries on. cmd/experiments
// prints the collected table at the end and exits non-zero.
type Failure struct {
	Bench, Label string
	Err          error
	// Panicked reports that the core panicked (the runner converted the
	// panic into an error with a trimmed stack).
	Panicked bool
	// Retried reports that the run was retried once (with the pipeline
	// tracer attached) before being declared failed.
	Retried bool
	// Diagnostic is the structured bundle for SimErrors (cycle, PC,
	// disassembly, last-retired ring, pipeline occupancy), empty
	// otherwise — the panic stack already lives in Err.
	Diagnostic string
}

// recordFailure stores f, deduplicating by (benchmark, label): every
// experiment that consults the same cached run reports the same failure
// once.
func (r *Runner) recordFailure(f Failure) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.failures {
		if g.Bench == f.Bench && g.Label == f.Label {
			return
		}
	}
	r.failures = append(r.failures, f)
}

// Failures returns the failed benchmark runs, sorted by benchmark then
// label.
func (r *Runner) Failures() []Failure {
	r.mu.Lock()
	out := make([]Failure, len(r.failures))
	copy(out, r.failures)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// FailureTable renders the per-benchmark failure summary followed by the
// diagnostic bundle of each failure that produced one. Empty when every
// run succeeded.
func (r *Runner) FailureTable() string {
	fs := r.Failures()
	if len(fs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d benchmark run(s) failed; their rows are omitted from the results above.\n\n", len(fs))
	fmt.Fprintf(&b, "%-12s %-14s %-9s %s\n", "benchmark", "label", "kind", "error")
	for _, f := range fs {
		kind := "error"
		if f.Panicked {
			kind = "panic"
		}
		var se *core.SimError
		if errors.As(f.Err, &se) {
			kind = string(se.Kind)
		}
		fmt.Fprintf(&b, "%-12s %-14s %-9s %s\n", f.Bench, f.Label, kind, firstLine(f.Err.Error()))
	}
	for _, f := range fs {
		if f.Diagnostic != "" {
			fmt.Fprintf(&b, "\n--- %s/%s ---\n%s\n", f.Bench, f.Label, f.Diagnostic)
		}
	}
	return b.String()
}

// diagnosticFor extracts the structured diagnostic bundle when err wraps
// a core.SimError. Cancellations carry no bundle: a deadline hit is a
// scheduling outcome, and pages of pipeline state per cancelled run
// would drown the failure table's real diagnostics.
func diagnosticFor(err error) string {
	var se *core.SimError
	if errors.As(err, &se) && se.Kind != core.ErrCanceled {
		return se.Bundle()
	}
	return ""
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
